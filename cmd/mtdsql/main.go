// Command mtdsql is a small multi-tenant SQL shell over the paper's
// running example (Figure 4): it provisions the Account schema with the
// health-care and automotive extensions under a chosen layout, loads
// the example rows, and executes logical SQL for a tenant — showing the
// rewritten physical SQL and, on request, the physical plan.
//
// Statements run through one interactive session, so transaction
// control works across statements: BEGIN (or START TRANSACTION),
// COMMIT, ROLLBACK, SAVEPOINT name, and ROLLBACK TO name. Statements
// between BEGIN and COMMIT see the transaction's snapshot and commit or
// roll back atomically — including every physical statement a logical
// DML rewrites into.
//
// Usage:
//
//	mtdsql -layout chunk -tenant 17 "SELECT Beds FROM Account WHERE Hospital = 'State'"
//	echo "SELECT * FROM Account" | mtdsql -layout pivot -tenant 42 -explain
//	mtdsql -tenant 17 "BEGIN" "UPDATE Account SET Beds = 200 WHERE Aid = 1" "ROLLBACK"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
)

func buildLayout(name string, schema *core.Schema) (core.Layout, error) {
	switch name {
	case "private":
		return core.NewPrivateLayout(schema)
	case "extension":
		return core.NewExtensionLayout(schema)
	case "universal":
		return core.NewUniversalLayout(schema, 16)
	case "pivot":
		return core.NewPivotLayout(schema, true)
	case "chunk":
		return core.NewChunkLayout(schema, core.ChunkOptions{})
	case "chunk-flat":
		return core.NewChunkLayout(schema, core.ChunkOptions{Flattened: true})
	case "vertical":
		return core.NewVerticalLayout(schema, nil)
	case "chunkfold":
		return core.NewChunkFoldingLayout(schema, core.FoldingOptions{
			ConventionalExtensions: []string{"HealthcareAccount"},
		})
	}
	return nil, fmt.Errorf("unknown layout %q (private, extension, universal, pivot, chunk, chunk-flat, vertical, chunkfold)", name)
}

func exampleSchema() *core.Schema {
	return &core.Schema{
		Tables: []*core.Table{{
			Name: "Account",
			Key:  "Aid",
			Columns: []core.Column{
				{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Name", Type: types.VarcharType(50)},
			},
		}},
		Extensions: []*core.Extension{
			{Name: "HealthcareAccount", Base: "Account", Columns: []core.Column{
				{Name: "Hospital", Type: types.VarcharType(50)},
				{Name: "Beds", Type: types.IntType},
			}},
			{Name: "AutomotiveAccount", Base: "Account", Columns: []core.Column{
				{Name: "Dealers", Type: types.IntType},
			}},
		},
	}
}

func main() { os.Exit(run()) }

// run executes the shell and returns the process exit code: 0 only if
// every statement succeeded. The mapper's session is always closed on
// the way out — end of arguments, stdin EOF, or an early error — which
// rolls back any transaction left open.
func run() (code int) {
	var (
		layoutName = flag.String("layout", "chunk", "schema-mapping layout")
		tenant     = flag.Int64("tenant", 17, "tenant ID (17, 35, or 42)")
		explain    = flag.Bool("explain", false, "also print the physical plan")
	)
	flag.Parse()

	schema := exampleSchema()
	layout, err := buildLayout(*layoutName, schema)
	fatalIf(err)
	db := engine.Open(engine.Config{})
	fatalIf(layout.Create(db, []*core.Tenant{
		{ID: 17, Extensions: []string{"HealthcareAccount"}},
		{ID: 35},
		{ID: 42, Extensions: []string{"AutomotiveAccount"}},
	}))
	m := core.NewSessionMapper(db, layout)
	defer func() {
		if m.Session != nil {
			m.Session.Close()
		}
	}()
	// fail marks the run as failed (non-zero exit) but keeps the shell
	// processing the remaining statements, like sqlite3 does.
	fail := func(err error) {
		fmt.Println("error:", err)
		code = 1
	}
	load := []struct {
		tenant int64
		q      string
	}{
		{17, "INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (1, 'Acme', 'St. Mary', 135), (2, 'Gump', 'State', 1042)"},
		{35, "INSERT INTO Account (Aid, Name) VALUES (1, 'Ball')"},
		{42, "INSERT INTO Account (Aid, Name, Dealers) VALUES (1, 'Big', 65)"},
	}
	for _, l := range load {
		if _, err := m.Exec(l.tenant, l.q); err != nil {
			fail(err)
			return
		}
	}

	var stmts []string
	if flag.NArg() > 0 {
		stmts = flag.Args()
	} else {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				stmts = append(stmts, line)
			}
		}
	}
	var img *engine.CrashImage
	for _, stmt := range stmts {
		fmt.Printf("tenant %d> %s\n", *tenant, stmt)
		// Meta-commands for the durability subsystem: `.crash` kills the
		// volatile state (buffer pool and WAL tail), `.recover` rebuilds
		// the database from the durable log + disk image.
		if strings.HasPrefix(stmt, ".") {
			fields := strings.Fields(stmt)
			switch fields[0] {
			case ".schema":
				// `.schema <physical-table>`: the engine catalog's version
				// chain for one table — every live schema version with its
				// commit stamp and column list (dropped slots marked), i.e.
				// what an online ALTER has published and what old snapshots
				// may still be reading under.
				if img != nil {
					fail(fmt.Errorf("crashed (use .recover)"))
					continue
				}
				if len(fields) != 2 {
					fail(fmt.Errorf("usage: .schema <physical-table>"))
					continue
				}
				tab, err := db.Catalog().Table(fields[1])
				if err != nil {
					fail(fmt.Errorf("%w (physical tables: %s)", err, strings.Join(db.Catalog().TableNames(), ", ")))
					continue
				}
				for _, v := range tab.Schemas.Versions() {
					fmt.Printf("  version %d (commit ts %d):\n", v.Ver, v.CommitTS)
					for _, c := range v.Cols {
						note := ""
						if c.Dropped {
							note = "  -- dropped"
						}
						fmt.Printf("    %s %s%s\n", c.Name, c.Type, note)
					}
				}
			case ".migrate-status":
				// `.migrate-status`: background backfill progress for every
				// table an online ALTER has touched. A stuck migration (idle
				// passes piling up with stale rows left) fails the run so
				// scripts can gate on it.
				if img != nil {
					fail(fmt.Errorf("crashed (use .recover)"))
					continue
				}
				db.NudgeBackfill()
				status := db.BackfillStatus()
				if len(status) == 0 {
					fmt.Println("  no migrations")
					continue
				}
				for _, p := range status {
					state := "migrating"
					switch {
					case p.Done:
						state = "done"
					case p.Stuck():
						state = "STUCK"
					}
					fmt.Printf("  %s: %s (passes %d, scanned %d, rewritten %d, skipped %d, residual %d)\n",
						p.Table, state, p.Passes, p.Scanned, p.Rewritten, p.Skipped, p.Residual)
					if p.Stuck() {
						fail(fmt.Errorf("migration of %s is stuck", p.Table))
					}
				}
			case ".crash":
				if img != nil {
					fail(fmt.Errorf("already crashed (use .recover)"))
					continue
				}
				img = db.Crash()
				fmt.Println("  crashed: buffer pool and WAL tail dropped")
			case ".recover":
				if img == nil {
					img = db.Crash()
				}
				db2, rep, err := engine.Recover(img)
				if err != nil {
					fail(fmt.Errorf("recover: %w", err))
					return
				}
				db, img = db2, nil
				m = core.NewSessionMapper(db, layout)
				fmt.Printf("  recovered: %d durable records, %d statements committed, %d replayed, %d skipped\n",
					rep.DurableRecords, rep.Committed, rep.Replayed, rep.Skipped)
			case ".checkpoint":
				if img != nil {
					fail(fmt.Errorf("crashed (use .recover)"))
					continue
				}
				if err := db.Checkpoint(); err != nil {
					fail(err)
					continue
				}
				fmt.Println("  checkpoint written, log truncated")
			default:
				fail(fmt.Errorf("unknown meta-command %q (.schema <table>, .migrate-status, .crash, .recover, .checkpoint)", stmt))
			}
			continue
		}
		if img != nil {
			fail(fmt.Errorf("database is crashed (use .recover)"))
			continue
		}
		// ALTER is physical DDL: it targets an engine table by its
		// physical name (like .schema does) and bypasses tenant
		// rewriting — the layouts own the logical-to-physical column
		// mapping, the engine owns the online evolution of the physical
		// tables underneath. The statement returns as soon as the new
		// schema version is published; rows migrate lazily and in the
		// background (.migrate-status shows the backfill).
		if strings.EqualFold(firstWord(stmt), "ALTER") {
			if _, err := db.Exec(stmt); err != nil {
				fail(err)
			} else {
				fmt.Println("  ok (new schema version published; rows migrate lazily)")
			}
			continue
		}
		// Transaction control runs through the mapper's session as-is —
		// no tenant rewriting, and subsequent statements join the open
		// transaction until COMMIT or ROLLBACK.
		if isTxnControl(stmt) {
			if _, err := m.Exec(*tenant, stmt); err != nil {
				fail(err)
			} else {
				fmt.Println("  ok")
			}
			continue
		}
		phys, err := m.RewriteSQL(*tenant, stmt)
		if err != nil {
			fail(err)
			continue
		}
		for _, p := range phys {
			fmt.Println("  physical:", p)
		}
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "SELECT") {
			if *explain {
				plan, err := m.Explain(*tenant, stmt)
				if err == nil {
					fmt.Println("  plan:")
					for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
						fmt.Println("    " + line)
					}
				}
			}
			rows, err := m.Query(*tenant, stmt)
			if err != nil {
				fail(err)
				continue
			}
			fmt.Println("  " + strings.Join(rows.Columns, " | "))
			for _, r := range rows.Data {
				cells := make([]string, len(r))
				for i, v := range r {
					cells[i] = v.String()
				}
				fmt.Println("  " + strings.Join(cells, " | "))
			}
		} else {
			res, err := m.Exec(*tenant, stmt)
			if err != nil {
				fail(err)
				continue
			}
			fmt.Printf("  %d row(s) affected\n", res.RowsAffected)
		}
	}
	return code
}

// firstWord returns the first whitespace-delimited token of stmt.
func firstWord(stmt string) string {
	f := strings.Fields(stmt)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// isTxnControl reports whether stmt is BEGIN/COMMIT/ROLLBACK/SAVEPOINT
// (including ROLLBACK TO), which bypass tenant rewriting.
func isTxnControl(stmt string) bool {
	word := strings.ToUpper(firstWord(stmt))
	switch word {
	case "BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT", "START":
		return true
	}
	return false
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
