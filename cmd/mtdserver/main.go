// Command mtdserver serves the multi-tenant engine over the wire
// protocol (internal/protocol): a credentialed handshake per
// connection, simple and prepared statements, interactive
// transactions, streaming results, per-tenant session quotas and
// statement rate limits, and an append-only audit log.
//
// Two modes:
//
//   - Raw mode (default): clients send physical SQL straight to engine
//     sessions. Trusted deployments and the network benchmarks.
//   - Layout mode (-layout NAME): the paper's demo schema (Account with
//     the health-care and automotive extensions, tenants 17/35/42) is
//     provisioned under the named schema-mapping layout, and clients
//     send LOGICAL SQL that is tenant-rewritten per their handshake
//     credentials — a connection can only touch its own tenant's rows.
//
// A third mode turns the process into a WAL-shipping read replica:
//
//   - Replica mode (-replica-of ADDR): subscribe to the primary
//     mtdserver at ADDR, bootstrap from its snapshot, apply its WAL
//     stream continuously, and serve read-only sessions pinned at the
//     last applied commit LSN. Writes are fenced with a read-only
//     error.
//
// Usage:
//
//	mtdserver -addr :7070
//	mtdserver -addr :7070 -layout chunk -auth "17:alpha,35:beta,42:gamma" \
//	    -max-sessions 64 -stmt-rate 1000 -audit audit.jsonl
//	mtdserver -addr :7071 -replica-of 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/types"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr        = flag.String("addr", ":7070", "listen address")
		layoutName  = flag.String("layout", "", "layout mode: serve logical SQL under this schema-mapping layout (private, extension, universal, pivot, chunk, chunk-flat, vertical, chunkfold); empty = raw physical SQL")
		authSpec    = flag.String("auth", "", "tenant credentials as \"tenant:token,...\"; empty = open access")
		maxSessions = flag.Int("max-sessions", 0, "per-tenant concurrent session quota (0 = unlimited)")
		stmtRate    = flag.Float64("stmt-rate", 0, "per-tenant statements/sec rate limit (0 = unlimited)")
		auditPath   = flag.String("audit", "", "append audit records as JSON lines to this file (\"-\" = stderr)")
		auditStmts  = flag.Bool("audit-statements", false, "also audit every statement (high volume)")
		batchRows   = flag.Int("batch-rows", 256, "rows per result batch frame")
		replicaOf   = flag.String("replica-of", "", "run as a read replica of the primary mtdserver at this address")
		replTenant  = flag.Int64("replica-tenant", 0, "tenant credential for the replication subscription handshake")
		replToken   = flag.String("replica-token", "", "token credential for the replication subscription handshake")
	)
	flag.Parse()

	var db *engine.DB
	if *replicaOf != "" {
		if *layoutName != "" {
			fmt.Fprintln(os.Stderr, "-replica-of and -layout are mutually exclusive: a replica's schema comes from the primary's stream")
			return 1
		}
		rep, err := repl.Connect(repl.ReplicaConfig{
			Addr:   *replicaOf,
			Tenant: *replTenant,
			Token:  *replToken,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "replica bootstrap from %s: %v\n", *replicaOf, err)
			return 1
		}
		defer rep.Close()
		// Serve the replica's database. Known limitation: if the primary
		// truncates history past our position the replica re-bootstraps
		// into a FRESH engine, and sessions opened on the old one keep
		// reading a frozen snapshot until they reconnect. Keeping the
		// follower close to the primary (the normal state) avoids this.
		db = rep.DB()
		fmt.Fprintf(os.Stderr, "mtdserver: replicating from %s (applied LSN %d)\n", *replicaOf, rep.AppliedLSN())
	} else {
		db = engine.Open(engine.Config{})
	}
	cfg := server.Config{DB: db, MaxRowBatch: *batchRows}

	if *layoutName != "" {
		layout, err := buildLayout(*layoutName, exampleSchema())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := layout.Create(db, []*core.Tenant{
			{ID: 17, Extensions: []string{"HealthcareAccount"}},
			{ID: 35},
			{ID: 42, Extensions: []string{"AutomotiveAccount"}},
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.Layout = layout
	}

	if *authSpec != "" {
		auth := server.NewAuthenticator()
		for _, pair := range strings.Split(*authSpec, ",") {
			tenantStr, token, ok := strings.Cut(strings.TrimSpace(pair), ":")
			if !ok {
				fmt.Fprintf(os.Stderr, "bad -auth entry %q (want tenant:token)\n", pair)
				return 1
			}
			tenant, err := strconv.ParseInt(tenantStr, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad tenant id %q: %v\n", tenantStr, err)
				return 1
			}
			auth.Register(tenant, server.Credentials{
				Token:            token,
				MaxSessions:      *maxSessions,
				StatementsPerSec: *stmtRate,
			})
		}
		cfg.Auth = auth
	}

	if *auditPath != "" {
		w := os.Stderr
		if *auditPath != "-" {
			f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer f.Close()
			w = f
		}
		cfg.Audit = server.NewAuditLog(0, w)
		cfg.Audit.Statements = *auditStmts
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// SIGINT/SIGTERM drain the server: every live session is reaped
	// (open transactions rolled back) before the process exits.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "mtdserver: %s, draining\n", sig)
		srv.Close()
	}()

	mode := "raw"
	if cfg.Layout != nil {
		mode = "layout:" + *layoutName
	}
	if *replicaOf != "" {
		mode = "replica:" + *replicaOf
	}
	fmt.Fprintf(os.Stderr, "mtdserver: listening on %s (%s mode)\n", *addr, mode)
	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func buildLayout(name string, schema *core.Schema) (core.Layout, error) {
	switch name {
	case "private":
		return core.NewPrivateLayout(schema)
	case "extension":
		return core.NewExtensionLayout(schema)
	case "universal":
		return core.NewUniversalLayout(schema, 16)
	case "pivot":
		return core.NewPivotLayout(schema, true)
	case "chunk":
		return core.NewChunkLayout(schema, core.ChunkOptions{})
	case "chunk-flat":
		return core.NewChunkLayout(schema, core.ChunkOptions{Flattened: true})
	case "vertical":
		return core.NewVerticalLayout(schema, nil)
	case "chunkfold":
		return core.NewChunkFoldingLayout(schema, core.FoldingOptions{
			ConventionalExtensions: []string{"HealthcareAccount"},
		})
	}
	return nil, fmt.Errorf("unknown layout %q", name)
}

// exampleSchema is the paper's Figure 4 running example, shared with
// cmd/mtdsql.
func exampleSchema() *core.Schema {
	return &core.Schema{
		Tables: []*core.Table{{
			Name: "Account",
			Key:  "Aid",
			Columns: []core.Column{
				{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Name", Type: types.VarcharType(50)},
			},
		}},
		Extensions: []*core.Extension{
			{Name: "HealthcareAccount", Base: "Account", Columns: []core.Column{
				{Name: "Hospital", Type: types.VarcharType(50)},
				{Name: "Beds", Type: types.IntType},
			}},
			{Name: "AutomotiveAccount", Base: "Account", Columns: []core.Column{
				{Name: "Dealers", Type: types.IntType},
			}},
		},
	}
}
