// Command chunkbench reproduces the paper's §6.2 experiments over
// Chunk Tables: Figure 9 (warm-cache response times), Figure 10
// (logical page reads), Figure 11 (cold-cache response times), and
// Figure 12 (Chunk Folding vs vertical partitioning), swept over chunk
// widths and Q2 scale factors. With -explain it prints the Figure 8
// physical plan of the chunked Q2 query.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chunkexp"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		parents  = flag.Int("parents", 300, "parent rows (paper: 10000)")
		children = flag.Int("children", 10, "children per parent (paper: 100)")
		widths   = flag.String("widths", "3,6,15,30,90", "chunk widths (# data columns)")
		scales   = flag.String("scales", "3,9,18,30,45,60,90", "Q2 scale factors")
		runs     = flag.Int("runs", 5, "timed executions per point")
		memMB    = flag.Int64("mem-mb", 24, "memory budget in MiB")
		latency  = flag.Duration("latency", 60*time.Microsecond, "simulated I/O latency per miss")
		figure   = flag.Int("fig", 0, "restrict output to one figure (9, 10, 11, or 12); 0 = all")
		explain  = flag.Bool("explain", false, "print the Figure 8 plan for Q2 scale 3 on Chunk6 and exit")
		grouping = flag.Bool("grouping", false, "also run the grouping-query additional test")
	)
	flag.Parse()

	cfg := chunkexp.Config{
		Parents: *parents, ChildrenPerParent: *children,
		MemoryBytes: *memMB << 20, ReadLatency: *latency,
	}

	if *explain {
		in, err := chunkexp.NewChunk(cfg, 6, false)
		check(err)
		check(in.Load())
		sqlText, err := in.RewriteSQL(chunkexp.Q2(3))
		check(err)
		fmt.Println("Transformed SQL (Q2 scale 3 over Chunk6):")
		fmt.Println(sqlText)
		fmt.Println()
		plan, err := in.Explain(chunkexp.Q2(3))
		check(err)
		fmt.Println("Figure 8: physical plan")
		fmt.Print(plan)
		return
	}

	ws, err := parseInts(*widths)
	check(err)
	ss, err := parseInts(*scales)
	check(err)

	type series struct {
		name string
		m    map[int]chunkexp.Measurement // scale -> measurement
	}
	var all []series

	measure := func(in *chunkexp.Instance) series {
		fmt.Fprintf(os.Stderr, "loading %s...\n", in.Name)
		check(in.Load())
		s := series{name: in.Name, m: map[int]chunkexp.Measurement{}}
		for _, scale := range ss {
			q := chunkexp.Q2(scale)
			if *grouping {
				q = chunkexp.Q2Grouping(scale)
			}
			m, err := in.MeasureQ2(q, *runs, int64(1+scale%cfg.Parents))
			check(err)
			s.m[scale] = m
		}
		return s
	}

	conv, err := chunkexp.NewConventional(cfg)
	check(err)
	all = append(all, measure(conv))
	for _, w := range ws {
		in, err := chunkexp.NewChunk(cfg, w, false)
		check(err)
		all = append(all, measure(in))
	}
	var verticals []series
	if *figure == 0 || *figure == 12 {
		for _, w := range ws {
			in, err := chunkexp.NewVertical(cfg, w)
			check(err)
			verticals = append(verticals, measure(in))
		}
	}

	printSeries := func(title, unit string, f func(chunkexp.Measurement) float64) {
		fmt.Printf("\n%s\n", title)
		fmt.Printf("%-14s", "config")
		for _, scale := range ss {
			fmt.Printf(" %10s", fmt.Sprintf("s=%d", scale))
		}
		fmt.Printf("   [%s]\n", unit)
		for _, s := range all {
			fmt.Printf("%-14s", s.name)
			for _, scale := range ss {
				fmt.Printf(" %10.2f", f(s.m[scale]))
			}
			fmt.Println()
		}
	}

	if *figure == 0 || *figure == 9 {
		printSeries("Figure 9: response times with warm cache", "ms", func(m chunkexp.Measurement) float64 {
			return float64(m.WarmTime) / float64(time.Millisecond)
		})
	}
	if *figure == 0 || *figure == 10 {
		printSeries("Figure 10: logical page reads", "pages", func(m chunkexp.Measurement) float64 {
			return float64(m.LogicalReads)
		})
	}
	if *figure == 0 || *figure == 11 {
		printSeries("Figure 11: response times with cold cache", "ms", func(m chunkexp.Measurement) float64 {
			return float64(m.ColdTime) / float64(time.Millisecond)
		})
	}
	if *figure == 0 || *figure == 12 {
		fmt.Printf("\nFigure 12: response-time improvement of Chunk Folding over vertical partitioning [%%]\n")
		fmt.Printf("%-14s", "width")
		for _, scale := range ss {
			fmt.Printf(" %10s", fmt.Sprintf("s=%d", scale))
		}
		fmt.Println()
		for i, w := range ws {
			folded := all[i+1] // after "conventional"
			vert := verticals[i]
			fmt.Printf("%-14d", w)
			for _, scale := range ss {
				fmt.Printf(" %10.1f", chunkexp.Improvement(folded.m[scale], vert.m[scale]))
			}
			fmt.Println()
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
