// The -repl benchmark measures the WAL-shipping replication tier end
// to end, over the real network stack: a primary mtdserver process
// image, replicas subscribed through repl.Connect (wire-protocol
// snapshot bootstrap + frame stream), each replica fronted by its own
// read-only server, and a placement-aware client router pinning each
// tenant's reads to one replica.
//
// Two experiments land in BENCH_8.json:
//
//   - Read scaling: a fixed point-read workload (16 reader tenants,
//     pooled connections, router-placed) swept over the replica count
//     0/1/2/3. Replica 0 is the baseline — every read lands on the
//     primary — so the series shows what fan-out across followers buys.
//   - Catch-up: a replica subscribes AFTER the primary has committed a
//     large backlog (default 10 000 autocommit updates), and the lag
//     (primary durable LSN minus replica applied LSN) is sampled until
//     it reaches zero. The run fails loudly if lag does not converge,
//     if the caught-up replica's aggregate disagrees with the primary,
//     or if the primary's own repl_lag_bytes telemetry does not also
//     drop to zero — which makes -repl-smoke a CI canary for the whole
//     ship/ack/apply loop.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/types"
)

type replScalingPoint struct {
	Replicas int   `json:"replicas"`
	Readers  int   `json:"readers"`
	Reads    int64 `json:"reads"`
	// Writers hammer the primary for the whole measured window — the
	// scenario replicas exist for. At replicas=0 the same server absorbs
	// both roles; with replicas the router moves every read off the
	// primary.
	Writers      int     `json:"writers"`
	Writes       int64   `json:"writes"`
	WritesPerSec float64 `json:"writes_per_sec"`

	ElapsedMs   float64 `json:"elapsed_ms"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	// Speedup is relative to the replicas=0 point (all reads on the
	// primary), the series' baseline.
	Speedup   float64 `json:"speedup"`
	P50ReadUs float64 `json:"p50_read_us"`
	P99ReadUs float64 `json:"p99_read_us"`
	// AddrsUsed is how many distinct server addresses served reads —
	// the router's placement spread for this point.
	AddrsUsed int `json:"addrs_used"`
	// FinalLagBytes is every replica's lag after the writers stop: the
	// per-point convergence proof (always 0, or the run aborts).
	FinalLagBytes int64 `json:"final_lag_bytes"`
}

type replLagSample struct {
	Ms       float64 `json:"ms"`
	LagBytes int64   `json:"lag_bytes"`
}

type replCatchup struct {
	BacklogCommits int   `json:"backlog_commits"`
	BacklogBytes   int64 `json:"backlog_bytes"`
	// BootstrapMs is the blocking repl.Connect call: dial, handshake,
	// snapshot transfer, image restore.
	BootstrapMs float64 `json:"bootstrap_ms"`
	// CatchupMs is from Connect start until applied == durable.
	CatchupMs     float64         `json:"catchup_ms"`
	FinalLagBytes int64           `json:"final_lag_bytes"`
	AckRoundTrips int64           `json:"ack_round_trips"`
	Samples       []replLagSample `json:"samples"`
}

// replSeedPrimary opens a primary engine with one indexed account
// table of rows rows (bal = 100 each) and serves it on a loopback
// port. The engine config travels inside the bootstrap image, so every
// replica runs the same buffer-pool budget and simulated I/O latency
// as the primary — symmetric nodes.
func replSeedPrimary(rows int, cfg engine.Config, slots int) (*engine.DB, *server.Server, string) {
	db := engine.Open(cfg)
	mustBenchExec(db, "CREATE TABLE acct (k INTEGER NOT NULL, v VARCHAR(40), bal INTEGER)")
	mustBenchExec(db, "CREATE UNIQUE INDEX acct_pk ON acct (k)")
	for k := 0; k < rows; k++ {
		mustBenchExec(db, "INSERT INTO acct VALUES (?, ?, 100)",
			types.NewInt(int64(k)), types.NewString(fmt.Sprintf("v-%04d", k)))
	}
	srv, err := server.New(server.Config{DB: db, MaxConcurrent: slots})
	if err != nil {
		fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	return db, srv, addr.String()
}

func mustBenchExec(db *engine.DB, q string, params ...types.Value) {
	if _, err := db.Exec(q, params...); err != nil {
		fatal(fmt.Errorf("%s: %w", q, err))
	}
}

// runReplScalingPoint spins up nReplicas wire-protocol replicas behind
// their own servers, waits for all of them to reach the primary's
// durable horizon, and then drives totalReads point reads through a
// placement router with readers concurrent reader tenants — while
// writers connections keep the primary busy with autocommit updates.
// After the window it proves convergence: every replica must drain its
// lag to zero once the writers stop.
func runReplScalingPoint(nReplicas, readers, writers, totalReads, rows int, cfg engine.Config, slots int, seed int64) replScalingPoint {
	db, psrv, paddr := replSeedPrimary(rows, cfg, slots)
	defer psrv.Close()

	var (
		reps  []*repl.Replica
		rsrvs []*server.Server
		raddr []string
	)
	defer func() {
		for _, s := range rsrvs {
			s.Close()
		}
		for _, r := range reps {
			r.Close()
		}
	}()
	for i := 0; i < nReplicas; i++ {
		rep, err := repl.Connect(repl.ReplicaConfig{Addr: paddr})
		if err != nil {
			fatal(fmt.Errorf("replica %d connect: %w", i, err))
		}
		reps = append(reps, rep)
		if err := rep.WaitForLSN(db.WAL().DurableLSN(), 30*time.Second); err != nil {
			fatal(fmt.Errorf("replica %d catch-up: %w", i, err))
		}
		rsrv, err := server.New(server.Config{DB: rep.DB(), MaxConcurrent: slots})
		if err != nil {
			fatal(err)
		}
		a, err := rsrv.Start("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		rsrvs = append(rsrvs, rsrv)
		raddr = append(raddr, a.String())
	}

	router := client.NewRouter(client.RouterConfig{
		Placement: core.PlacementMap{Primary: paddr, Replicas: raddr},
		MaxConns:  readers,
	})
	defer router.Close()

	addrs := map[string]bool{}
	for i := 0; i < readers; i++ {
		addrs[router.ReadAddr(int64(i+1))] = true
	}
	if nReplicas > 0 && addrs[paddr] {
		fatal(fmt.Errorf("%d-replica point routed reads to the primary", nReplicas))
	}
	if nReplicas >= 2 && readers >= 8 && len(addrs) < 2 {
		fatal(fmt.Errorf("%d-replica point used %d address(es); placement is not spreading reads", nReplicas, len(addrs)))
	}

	base, extra := totalReads/readers, totalReads%readers
	var (
		reads  atomic.Int64
		writes atomic.Int64
		latMu  sync.Mutex
		lats   []time.Duration
	)
	start := make(chan struct{})
	stopWrites := make(chan struct{})
	ready := make(chan error, readers+writers)
	var wg, writeWg sync.WaitGroup

	// Background write load on the primary: autocommit balance bumps,
	// running for the whole measured window. Their WAL records stream to
	// the replicas while the readers run.
	for i := 0; i < writers; i++ {
		writeWg.Add(1)
		go func(i int) {
			defer writeWg.Done()
			pool := router.WritePool(int64(100 + i))
			c, err := pool.Get()
			ready <- err
			if err != nil {
				return
			}
			defer pool.Put(c)
			<-start
			rng := rand.New(rand.NewSource(seed + 9973*int64(i)))
			for {
				select {
				case <-stopWrites:
					return
				default:
				}
				k := rng.Intn(rows)
				if _, err := c.Exec("UPDATE acct SET bal = bal + 1 WHERE k = ?", types.NewInt(int64(k))); err != nil {
					fatal(fmt.Errorf("primary write (writer %d): %w", i, err))
				}
				writes.Add(1)
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pool := router.ReadPool(int64(i + 1))
			c, err := pool.Get()
			ready <- err
			if err != nil {
				return
			}
			defer pool.Put(c)
			<-start
			share := base
			if i < extra {
				share++
			}
			rng := rand.New(rand.NewSource(seed + int64(i)))
			local := make([]time.Duration, 0, share)
			for n := 0; n < share; n++ {
				k := rng.Intn(rows)
				t0 := time.Now()
				res, err := c.Query("SELECT bal FROM acct WHERE k = ?", types.NewInt(int64(k)))
				if err != nil {
					fatal(fmt.Errorf("routed read (reader %d): %w", i, err))
				}
				local = append(local, time.Since(t0))
				// bal moves under the writers; the invariant is exactly one
				// row at or above the seeded balance.
				if len(res.Data) != 1 || res.Data[0][0].Int < 100 {
					fatal(fmt.Errorf("reader %d: k=%d returned %v, want one row bal>=100", i, k, res.Data))
				}
				reads.Add(1)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(i)
	}
	for i := 0; i < readers+writers; i++ {
		if err := <-ready; err != nil {
			fatal(fmt.Errorf("dial: %w", err))
		}
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	close(stopWrites)
	writeWg.Wait()

	// Convergence proof: with the writers stopped, every replica must
	// drain the stream to the primary's durable horizon.
	durable := db.WAL().DurableLSN()
	for i, rep := range reps {
		if err := rep.WaitForLSN(durable, 30*time.Second); err != nil {
			fatal(fmt.Errorf("replica %d lag did not converge after writers stopped: %w", i, err))
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return replScalingPoint{
		Replicas:     nReplicas,
		Readers:      readers,
		Reads:        reads.Load(),
		Writers:      writers,
		Writes:       writes.Load(),
		WritesPerSec: float64(writes.Load()) / elapsed.Seconds(),
		ElapsedMs:    float64(elapsed.Microseconds()) / 1000,
		ReadsPerSec:  float64(reads.Load()) / elapsed.Seconds(),
		P50ReadUs:    float64(quantile(lats, 0.50).Nanoseconds()) / 1000,
		P99ReadUs:    float64(quantile(lats, 0.99).Nanoseconds()) / 1000,
		AddrsUsed:    len(addrs),
	}
}

// runReplCatchup commits a backlog on an unsubscribed primary, then
// connects a replica and samples its lag until it converges to zero.
func runReplCatchup(backlog, rows int) replCatchup {
	db, psrv, paddr := replSeedPrimary(rows, engine.Config{}, 0)
	defer psrv.Close()

	before := db.WAL().DurableLSN()
	for n := 0; n < backlog; n++ {
		mustBenchExec(db, "UPDATE acct SET bal = bal + 1 WHERE k = ?", types.NewInt(int64(n%rows)))
	}
	backlogBytes := int64(db.WAL().DurableLSN() - before)
	durable := db.WAL().DurableLSN()

	t0 := time.Now()
	rep, err := repl.Connect(repl.ReplicaConfig{Addr: paddr})
	if err != nil {
		fatal(fmt.Errorf("catch-up connect: %w", err))
	}
	defer rep.Close()
	bootstrapMs := float64(time.Since(t0).Microseconds()) / 1000

	var samples []replLagSample
	deadline := time.Now().Add(60 * time.Second)
	for {
		lag := int64(durable) - int64(rep.AppliedLSN())
		if lag < 0 {
			lag = 0
		}
		samples = append(samples, replLagSample{
			Ms:       float64(time.Since(t0).Microseconds()) / 1000,
			LagBytes: lag,
		})
		if lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("replication lag did not converge: still %d bytes behind after %s", lag, time.Since(t0)))
		}
		time.Sleep(2 * time.Millisecond)
	}
	catchupMs := float64(time.Since(t0).Microseconds()) / 1000

	// The caught-up replica must agree with the primary exactly.
	want, err := db.Query("SELECT SUM(bal) FROM acct")
	if err != nil {
		fatal(err)
	}
	got, err := rep.DB().Query("SELECT SUM(bal) FROM acct")
	if err != nil {
		fatal(fmt.Errorf("replica aggregate after catch-up: %w", err))
	}
	if got.Data[0][0].Int != want.Data[0][0].Int {
		fatal(fmt.Errorf("replica SUM(bal) = %d after catch-up, primary has %d",
			got.Data[0][0].Int, want.Data[0][0].Int))
	}

	// The primary's own telemetry must agree: once the replica acks the
	// tail, repl_lag_bytes on the primary server drops to zero too.
	st := psrv.Stats()
	ackDeadline := time.Now().Add(10 * time.Second)
	for st.ReplLagBytes != 0 || st.ReplAckedLSN < uint64(durable) {
		if time.Now().After(ackDeadline) {
			fatal(fmt.Errorf("primary telemetry never converged: repl_lag_bytes=%d repl_acked_lsn=%d durable=%d",
				st.ReplLagBytes, st.ReplAckedLSN, uint64(durable)))
		}
		time.Sleep(time.Millisecond)
		st = psrv.Stats()
	}

	return replCatchup{
		BacklogCommits: backlog,
		BacklogBytes:   backlogBytes,
		BootstrapMs:    bootstrapMs,
		CatchupMs:      catchupMs,
		FinalLagBytes:  st.ReplLagBytes,
		AckRoundTrips:  st.ReplAckRoundTrips,
		Samples:        thinLagSamples(samples, 64),
	}
}

// thinLagSamples keeps at most max evenly spaced samples (always
// including the first and last) so the JSON stays readable.
func thinLagSamples(s []replLagSample, max int) []replLagSample {
	if len(s) <= max {
		return s
	}
	out := make([]replLagSample, 0, max)
	for i := 0; i < max-1; i++ {
		out = append(out, s[i*(len(s)-1)/(max-1)])
	}
	return append(out, s[len(s)-1])
}

// runReplBench runs both replication experiments and writes BENCH_8.
func runReplBench(jsonOut string, smoke bool) {
	rows, readers, writers, totalReads := 8192, 16, 8, 8000
	replicaCounts := []int{0, 1, 2, 3}
	backlog := 10000
	// Each node is deliberately latency-bound, the paper's setting: a
	// buffer pool much smaller than the working set, a simulated I/O
	// cost per miss, and a small fair-admission gate. A node's capacity
	// is then slots/latency rather than CPU, so read throughput scales
	// with the number of nodes the router can spread tenants over — and
	// at replicas=0 the writers compete with every read for the
	// primary's slots.
	cfg := engine.Config{
		MemoryBytes: 160 << 10,
		PageSize:    4096,
		ReadLatency: 500 * time.Microsecond,
	}
	slots := 4
	if smoke {
		rows, readers, writers, totalReads = 2048, 8, 2, 800
		cfg.MemoryBytes = 96 << 10
		replicaCounts = []int{0, 1}
		backlog = 1000
	}
	const seed = 2008

	fmt.Println("WAL-Shipping Replication: routed read scaling under write load, and catch-up")
	fmt.Printf("%-10s %-9s %-8s %-12s %-10s %-12s %-12s %-12s %s\n",
		"Replicas", "Readers", "Reads", "Reads/sec", "Speedup", "Writes/sec", "p50(us)", "p99(us)", "Addrs")
	var pts []replScalingPoint
	for _, n := range replicaCounts {
		fmt.Fprintf(os.Stderr, "scaling point: %d replica(s), %d readers + %d writers, %d reads...\n", n, readers, writers, totalReads)
		p := runReplScalingPoint(n, readers, writers, totalReads, rows, cfg, slots, seed)
		if len(pts) > 0 {
			p.Speedup = p.ReadsPerSec / pts[0].ReadsPerSec
		} else {
			p.Speedup = 1
		}
		pts = append(pts, p)
		fmt.Printf("%-10d %-9d %-8d %-12.1f %-10.2f %-12.1f %-12.1f %-12.1f %d\n",
			p.Replicas, p.Readers, p.Reads, p.ReadsPerSec, p.Speedup, p.WritesPerSec, p.P50ReadUs, p.P99ReadUs, p.AddrsUsed)
	}
	fmt.Println("\nconvergence: every point's replicas drained to the primary's durable horizon after the writers stopped")

	fmt.Fprintf(os.Stderr, "catch-up: %d-commit backlog...\n", backlog)
	cu := runReplCatchup(backlog, rows)
	fmt.Printf("\nCatch-up after a %d-commit backlog (%d WAL bytes)\n", cu.BacklogCommits, cu.BacklogBytes)
	fmt.Printf("  bootstrap (snapshot+restore): %.1f ms\n", cu.BootstrapMs)
	fmt.Printf("  lag zero after:               %.1f ms\n", cu.CatchupMs)
	fmt.Printf("  ack round trips:              %d\n", cu.AckRoundTrips)
	fmt.Printf("  final lag:                    %d bytes\n", cu.FinalLagBytes)

	out := struct {
		Benchmark   string                 `json:"benchmark"`
		Config      map[string]interface{} `json:"config"`
		ReadScaling []replScalingPoint     `json:"read_scaling"`
		Catchup     replCatchup            `json:"catchup"`
	}{
		Benchmark: "wal_shipping_replication",
		Config: map[string]interface{}{
			"rows":            rows,
			"readers":         readers,
			"writers":         writers,
			"total_reads":     totalReads,
			"memory_bytes":    cfg.MemoryBytes,
			"page_size":       cfg.PageSize,
			"read_latency":    cfg.ReadLatency.String(),
			"exec_slots":      slots,
			"backlog_commits": backlog,
			"placement":       "rendezvous per tenant",
			"fresh_per_point": true,
			"seed":            seed,
			"smoke":           smoke,
		},
		ReadScaling: pts,
		Catchup:     cu,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
}
