// The -alter benchmark measures what online schema evolution costs the
// tenants who are NOT evolving: the CRM workload runs at steady state
// while every physical table is ALTERed (add, widen, drop — the full
// online repertoire, each publishing a schema version and queueing a
// background backfill) and one tenant is live-moved to a different
// layout through the LayoutMux. The report compares actions/sec before,
// during, and after the churn window; the design target is a dip of
// less than 10% (the ALTERs hold only the shared DDL latch and table
// write latches for metadata flips, and the move gates a single tenant
// for one final delta). Results land in BENCH_7.json.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/testbed"
)

type alterBenchResult struct {
	Tenants  int `json:"tenants"`
	Workers  int `json:"workers"`
	RowsPerT int `json:"rows_per_table"`

	BaselineActionsPerSec float64 `json:"baseline_actions_per_sec"`
	ChurnActionsPerSec    float64 `json:"churn_actions_per_sec"`
	PostActionsPerSec     float64 `json:"post_actions_per_sec"`
	// DipFraction is 1 - churn/baseline (negative = faster during churn).
	DipFraction float64 `json:"dip_fraction"`

	Alters           int     `json:"alters"`
	ChurnSeconds     float64 `json:"churn_seconds"`
	TablesBackfilled int     `json:"tables_backfilled"`
	RowsRewritten    int64   `json:"rows_rewritten"`
	RowsSkipped      int64   `json:"rows_skipped"`

	MoveRounds      int     `json:"move_rounds"`
	MoveRowsCopied  int64   `json:"move_rows_copied"`
	MoveGatePauseMs float64 `json:"move_gate_pause_ms"`

	CacheHitRate float64 `json:"rewrite_cache_hit_rate"`
	Errors       int64   `json:"errors"`
}

// runAlterBench drives the benchmark and writes the JSON report.
func runAlterBench(out string, smoke bool) {
	tenants, rows, workers := 24, 40, 8
	baseDur := 2 * time.Second
	if smoke {
		tenants, rows, workers = 8, 12, 4
		baseDur = 400 * time.Millisecond
	}

	bed, err := testbed.Setup(testbed.Config{
		Tenants:      tenants,
		RowsPerTable: rows,
		Seed:         2008,
		NewLayout: func(s *core.Schema) (core.Layout, error) {
			l, err := core.NewExtensionLayout(s)
			if err != nil {
				return nil, err
			}
			return core.NewLayoutMux(l), nil
		},
	})
	if err != nil {
		fatal(err)
	}
	mux := bed.Layout.(*core.LayoutMux)
	bed.Mapper.Cache = core.NewRewriteCache(bed.DB, bed.Layout, 0)

	// The move destination: a private layout on the same database
	// (per-tenant physical names, so it coexists with the shared one).
	dst, err := core.NewPrivateLayout(bed.Layout.Schema())
	if err != nil {
		fatal(err)
	}
	if err := dst.Create(bed.DB, nil); err != nil {
		fatal(err)
	}

	var errCount atomic.Int64
	runPhase := func(until func() bool) (actions int64, elapsed time.Duration) {
		var (
			done  atomic.Bool
			count atomic.Int64
			wg    sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(4200 + int64(w)))
				deck := testbed.BuildDeck(rng)
				var adminSeq int64
				for i := 0; !done.Load(); i++ {
					class := deck[i%len(deck)]
					if class == testbed.Admin {
						class = testbed.SelectLight
					}
					a := bed.Workload.NextAction(rng, class, &adminSeq)
					ok := true
					for _, q := range a.Queries {
						if _, err := bed.Mapper.Query(a.Tenant, q); err != nil {
							errCount.Add(1)
							ok = false
						}
					}
					for _, e := range a.Execs {
						if _, err := bed.Mapper.Exec(a.Tenant, e); err != nil {
							errCount.Add(1)
							ok = false
						}
					}
					if ok {
						count.Add(1)
					}
				}
			}(w)
		}
		for !until() {
			time.Sleep(5 * time.Millisecond)
		}
		done.Store(true)
		wg.Wait()
		return count.Load(), time.Since(start)
	}
	timed := func(d time.Duration) func() bool {
		deadline := time.Now().Add(d)
		return func() bool { return time.Now().After(deadline) }
	}

	// Warmup (unreported): fills the rewrite cache, the plan cache, and
	// the buffer pool, and gets past the small-dataset transient so the
	// baseline is measured at the same footing as the later phases.
	runPhase(timed(baseDur / 2))

	// Phase 1: steady state.
	baseActions, baseElapsed := runPhase(timed(baseDur))

	// Phase 2: the same workload while every physical table evolves and
	// one tenant moves. The churn runner owns the phase length: the
	// window closes when the last ALTER's backfill has drained and the
	// move has cut over.
	tables := bed.DB.Catalog().TableNames()
	alters := 0
	var rep *core.MoveReport
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for _, tb := range tables {
			if _, err := bed.DB.Exec(fmt.Sprintf("ALTER TABLE %s ADD COLUMN Evo0 INTEGER", tb)); err != nil {
				errCount.Add(1)
				continue
			}
			alters++
			if _, err := bed.DB.Exec(fmt.Sprintf("ALTER TABLE %s ALTER COLUMN Evo0 TYPE FLOAT", tb)); err != nil {
				errCount.Add(1)
			} else {
				alters++
			}
			if _, err := bed.DB.Exec(fmt.Sprintf("ALTER TABLE %s DROP COLUMN Evo0", tb)); err != nil {
				errCount.Add(1)
			} else {
				alters++
			}
		}
		mover := &core.Mover{DB: bed.DB, Mux: mux, Cache: bed.Mapper.Cache}
		var merr error
		rep, merr = mover.Move(1, dst)
		if merr != nil {
			errCount.Add(1)
			fmt.Fprintln(os.Stderr, "tenant move:", merr)
		}
		if err := bed.DB.WaitBackfill(60 * time.Second); err != nil {
			errCount.Add(1)
			fmt.Fprintln(os.Stderr, "backfill:", err)
		}
	}()
	churnActions, churnElapsed := runPhase(func() bool {
		select {
		case <-churnDone:
			return true
		default:
			return false
		}
	})

	// Phase 3: steady state again, post-evolution.
	postActions, postElapsed := runPhase(timed(baseDur))

	base := float64(baseActions) / baseElapsed.Seconds()
	churn := float64(churnActions) / churnElapsed.Seconds()
	post := float64(postActions) / postElapsed.Seconds()
	// The dataset grows throughout the run (the deck keeps inserting),
	// so raw phase-1 throughput overstates the counterfactual. The churn
	// window sits between the two steady-state phases; their average
	// brackets the growth and is the fair baseline for the dip.
	steady := (base + post) / 2
	res := alterBenchResult{
		Tenants:  tenants,
		Workers:  workers,
		RowsPerT: rows,

		BaselineActionsPerSec: base,
		ChurnActionsPerSec:    churn,
		PostActionsPerSec:     post,
		DipFraction:           1 - churn/steady,

		Alters:       alters,
		ChurnSeconds: churnElapsed.Seconds(),
		CacheHitRate: bed.Mapper.Cache.Stats().HitRate(),
		Errors:       errCount.Load(),
	}
	for _, p := range bed.DB.BackfillStatus() {
		res.TablesBackfilled++
		res.RowsRewritten += p.Rewritten
		res.RowsSkipped += p.Skipped
	}
	if rep != nil {
		res.MoveRounds = rep.Rounds
		res.MoveRowsCopied = rep.RowsCopied
		res.MoveGatePauseMs = float64(rep.GatePause) / float64(time.Millisecond)
	}

	fmt.Printf("alter bench: baseline %.0f a/s, during churn %.0f a/s (dip %.1f%%), after %.0f a/s\n",
		base, churn, res.DipFraction*100, post)
	fmt.Printf("  %d online ALTERs over %d tables in %.2fs, %d rows backfilled, move: %d rounds, %d rows, gate %.3fms, errors %d\n",
		res.Alters, len(tables), res.ChurnSeconds, res.RowsRewritten, res.MoveRounds, res.MoveRowsCopied, res.MoveGatePauseMs, res.Errors)
	if res.DipFraction > 0.10 {
		fmt.Printf("  WARNING: churn dip %.1f%% exceeds the 10%% target\n", res.DipFraction*100)
	}

	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", out)
}
