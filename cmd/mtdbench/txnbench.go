// The -txn benchmark measures the interactive-transaction subsystem:
// concurrent sessions run short BEGIN/UPDATE*/COMMIT transactions over
// a shared accounts table with a deliberately hot key range, so write
// contention grows with the session count. Each point reports committed
// transactions per second, the conflict-abort rate, p50/p99 COMMIT
// latency, and the engine's contention telemetry (admission-gate and
// row-wait outcomes, commit-pipeline depth). Results land in
// BENCH_5.json; -txn-smoke runs a small fast sweep for CI.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
)

type txnPoint struct {
	Sessions      int     `json:"sessions"`
	Txns          int64   `json:"transactions"`
	Commits       int64   `json:"commits"`
	Aborts        int64   `json:"aborts"`
	Conflicts     int64   `json:"conflicts"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	ConflictRate  float64 `json:"conflict_abort_rate"`
	ElapsedMs     float64 `json:"elapsed_ms"`

	// COMMIT statement latency over successful commits (includes the
	// group-commit sync and in-order timestamp publication).
	P50CommitUs float64 `json:"p50_commit_us"`
	P99CommitUs float64 `json:"p99_commit_us"`

	// Contention telemetry (engine.Stats deltas for this point).
	AdmissionWaits     int64   `json:"admission_waits"`
	AdmissionTimeouts  int64   `json:"admission_timeouts"`
	AdmissionWaitMs    float64 `json:"admission_wait_ms"`
	RowWaits           int64   `json:"row_waits"`
	RowWaitTimeouts    int64   `json:"row_wait_timeouts"`
	RowWaitRescues     int64   `json:"row_wait_rescues"`
	ImmediateConflicts int64   `json:"immediate_conflicts"`
	LockWaits          int64   `json:"lock_waits"`
	CommitPipelineMax  int64   `json:"commit_pipeline_max"`
	PublishBatches     int64   `json:"publish_batches"`
	PublishedTxns      int64   `json:"published_txns"`
}

// quantile returns the q-th quantile (0..1) of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runTxnPoint drives txnsPerSession transactions through each of n
// concurrent sessions. Every transaction updates stmtsPerTxn account
// balances; a write-write conflict aborts the transaction, which the
// driver acknowledges with ROLLBACK and counts — no retry, so the
// conflict rate is the raw first-updater-wins loss rate.
func runTxnPoint(n, txnsPerSession, stmtsPerTxn, accounts, hotKeys int, seed int64) txnPoint {
	db := engine.Open(engine.Config{MemoryBytes: 32 << 20, CheckpointBytes: -1})
	if _, err := db.Exec("CREATE TABLE acct (k INTEGER NOT NULL, bal INTEGER)"); err != nil {
		fatal(err)
	}
	if _, err := db.Exec("CREATE UNIQUE INDEX acct_pk ON acct (k)"); err != nil {
		fatal(err)
	}
	for k := 0; k < accounts; k++ {
		if _, err := db.Exec("INSERT INTO acct VALUES (?, ?)", types.NewInt(int64(k)), types.NewInt(1000)); err != nil {
			fatal(err)
		}
	}
	db.ResetStats()

	var latMu sync.Mutex
	var commitLat []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			rng := rand.New(rand.NewSource(seed + int64(s)))
			lat := make([]time.Duration, 0, txnsPerSession)
			for i := 0; i < txnsPerSession; i++ {
				if _, err := sess.Exec("BEGIN"); err != nil {
					fatal(err)
				}
				ok := true
				for j := 0; j < stmtsPerTxn; j++ {
					// Mostly hot keys: contention scales with sessions.
					k := int64(rng.Intn(hotKeys))
					if rng.Intn(100) < 25 {
						k = int64(rng.Intn(accounts))
					}
					if _, err := sess.Exec("UPDATE acct SET bal = bal + 1 WHERE k = ?", types.NewInt(k)); err != nil {
						ok = false
						break
					}
				}
				if ok {
					t0 := time.Now()
					if _, err := sess.Exec("COMMIT"); err != nil {
						ok = false
					} else {
						lat = append(lat, time.Since(t0))
					}
				}
				if !ok {
					if _, err := sess.Exec("ROLLBACK"); err != nil {
						fatal(err)
					}
				}
			}
			latMu.Lock()
			commitLat = append(commitLat, lat...)
			latMu.Unlock()
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(commitLat, func(i, j int) bool { return commitLat[i] < commitLat[j] })

	st := db.Stats()
	p := txnPoint{
		Sessions:      n,
		Txns:          st.TxnBegins,
		Commits:       st.TxnCommits,
		Aborts:        st.TxnAborts,
		Conflicts:     st.TxnConflicts,
		CommitsPerSec: float64(st.TxnCommits) / elapsed.Seconds(),
		ElapsedMs:     float64(elapsed.Microseconds()) / 1000,

		P50CommitUs: float64(quantile(commitLat, 0.50).Nanoseconds()) / 1000,
		P99CommitUs: float64(quantile(commitLat, 0.99).Nanoseconds()) / 1000,

		AdmissionWaits:     st.AdmissionWaits,
		AdmissionTimeouts:  st.AdmissionTimeouts,
		AdmissionWaitMs:    float64(st.AdmissionWaitNanos) / 1e6,
		RowWaits:           st.RowWaits,
		RowWaitTimeouts:    st.RowWaitTimeouts,
		RowWaitRescues:     st.RowWaitRescues,
		ImmediateConflicts: st.ImmediateConflicts,
		LockWaits:          st.LockWaits,
		CommitPipelineMax:  st.CommitPipelineMax,
		PublishBatches:     st.PublishBatches,
		PublishedTxns:      st.PublishedTxns,
	}
	if st.TxnBegins > 0 {
		p.ConflictRate = float64(st.TxnConflicts) / float64(st.TxnBegins)
	}
	return p
}

// runTxnBench sweeps the session count and writes jsonOut. smoke runs
// a reduced sweep (fewer sessions, fewer transactions) as a fast
// regression canary for CI.
func runTxnBench(jsonOut string, smoke bool) {
	const (
		stmtsPerTxn = 4
		accounts    = 512
		hotKeys     = 16
		seed        = 2008
	)
	txnsPerSession := 600
	sweep := []int{1, 2, 4, 8, 16, 32}
	if smoke {
		txnsPerSession = 100
		sweep = []int{1, 8}
	}
	fmt.Println("Interactive Transactions: snapshot isolation under contention")
	fmt.Printf("%-10s %-8s %-8s %-10s %-12s %-13s %-12s %s\n",
		"Sessions", "Commits", "Aborts", "Conflicts", "Commits/sec", "ConflictRate", "p50(us)", "p99(us)")
	var pts []txnPoint
	for _, n := range sweep {
		p := runTxnPoint(n, txnsPerSession, stmtsPerTxn, accounts, hotKeys, seed)
		pts = append(pts, p)
		fmt.Printf("%-10d %-8d %-8d %-10d %-12.1f %-13.3f %-12.1f %.1f\n",
			p.Sessions, p.Commits, p.Aborts, p.Conflicts, p.CommitsPerSec, p.ConflictRate,
			p.P50CommitUs, p.P99CommitUs)
	}
	fmt.Println("\nContention telemetry")
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s %-10s %-10s %-10s %s\n",
		"Sessions", "AdmWaits", "AdmTimeout", "RowWaits", "Timeouts", "Rescues", "InstaConf", "PipeMax", "Txns/Batch")
	for _, p := range pts {
		perBatch := 0.0
		if p.PublishBatches > 0 {
			perBatch = float64(p.PublishedTxns) / float64(p.PublishBatches)
		}
		fmt.Printf("%-10d %-12d %-12d %-10d %-10d %-10d %-10d %-10d %.2f\n",
			p.Sessions, p.AdmissionWaits, p.AdmissionTimeouts, p.RowWaits,
			p.RowWaitTimeouts, p.RowWaitRescues, p.ImmediateConflicts, p.CommitPipelineMax, perBatch)
	}

	out := struct {
		Benchmark string                 `json:"benchmark"`
		Config    map[string]interface{} `json:"config"`
		Points    []txnPoint             `json:"points"`
	}{
		Benchmark: "interactive_transactions",
		Config: map[string]interface{}{
			"txns_per_session": txnsPerSession,
			"stmts_per_txn":    stmtsPerTxn,
			"accounts":         accounts,
			"hot_keys":         hotKeys,
			"seed":             seed,
			"smoke":            smoke,
		},
		Points: pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
}
