// The -txn benchmark measures the interactive-transaction subsystem:
// concurrent sessions run short BEGIN/UPDATE*/COMMIT transactions over
// a shared accounts table with a deliberately hot key range, so
// first-updater-wins conflicts appear as the session count grows. Each
// point reports committed transactions per second and the conflict-
// abort rate. Results land in BENCH_5.json.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
)

type txnPoint struct {
	Sessions      int     `json:"sessions"`
	Txns          int64   `json:"transactions"`
	Commits       int64   `json:"commits"`
	Aborts        int64   `json:"aborts"`
	Conflicts     int64   `json:"conflicts"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	ConflictRate  float64 `json:"conflict_abort_rate"`
	ElapsedMs     float64 `json:"elapsed_ms"`
}

// runTxnPoint drives txnsPerSession transactions through each of n
// concurrent sessions. Every transaction updates stmtsPerTxn account
// balances; a write-write conflict aborts the transaction, which the
// driver acknowledges with ROLLBACK and counts — no retry, so the
// conflict rate is the raw first-updater-wins loss rate.
func runTxnPoint(n, txnsPerSession, stmtsPerTxn, accounts, hotKeys int, seed int64) txnPoint {
	db := engine.Open(engine.Config{MemoryBytes: 32 << 20, CheckpointBytes: -1})
	if _, err := db.Exec("CREATE TABLE acct (k INTEGER NOT NULL, bal INTEGER)"); err != nil {
		fatal(err)
	}
	if _, err := db.Exec("CREATE UNIQUE INDEX acct_pk ON acct (k)"); err != nil {
		fatal(err)
	}
	for k := 0; k < accounts; k++ {
		if _, err := db.Exec("INSERT INTO acct VALUES (?, ?)", types.NewInt(int64(k)), types.NewInt(1000)); err != nil {
			fatal(err)
		}
	}
	db.ResetStats()

	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			rng := rand.New(rand.NewSource(seed + int64(s)))
			for i := 0; i < txnsPerSession; i++ {
				if _, err := sess.Exec("BEGIN"); err != nil {
					fatal(err)
				}
				ok := true
				for j := 0; j < stmtsPerTxn; j++ {
					// Mostly hot keys: contention scales with sessions.
					k := int64(rng.Intn(hotKeys))
					if rng.Intn(100) < 25 {
						k = int64(rng.Intn(accounts))
					}
					if _, err := sess.Exec("UPDATE acct SET bal = bal + 1 WHERE k = ?", types.NewInt(k)); err != nil {
						ok = false
						break
					}
				}
				if ok {
					if _, err := sess.Exec("COMMIT"); err != nil {
						ok = false
					}
				}
				if !ok {
					if _, err := sess.Exec("ROLLBACK"); err != nil {
						fatal(err)
					}
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := db.Stats()
	p := txnPoint{
		Sessions:      n,
		Txns:          st.TxnBegins,
		Commits:       st.TxnCommits,
		Aborts:        st.TxnAborts,
		Conflicts:     st.TxnConflicts,
		CommitsPerSec: float64(st.TxnCommits) / elapsed.Seconds(),
		ElapsedMs:     float64(elapsed.Microseconds()) / 1000,
	}
	if st.TxnBegins > 0 {
		p.ConflictRate = float64(st.TxnConflicts) / float64(st.TxnBegins)
	}
	return p
}

// runTxnBench sweeps the session count and writes BENCH_5.json.
func runTxnBench(jsonOut string) {
	const (
		txnsPerSession = 600
		stmtsPerTxn    = 4
		accounts       = 512
		hotKeys        = 16
		seed           = 2008
	)
	fmt.Println("Interactive Transactions: snapshot isolation under contention")
	fmt.Printf("%-10s %-8s %-8s %-10s %-14s %s\n",
		"Sessions", "Commits", "Aborts", "Conflicts", "Commits/sec", "ConflictRate")
	var pts []txnPoint
	for _, n := range []int{1, 4, 16} {
		p := runTxnPoint(n, txnsPerSession, stmtsPerTxn, accounts, hotKeys, seed)
		pts = append(pts, p)
		fmt.Printf("%-10d %-8d %-8d %-10d %-14.1f %.3f\n",
			p.Sessions, p.Commits, p.Aborts, p.Conflicts, p.CommitsPerSec, p.ConflictRate)
	}

	out := struct {
		Benchmark string                 `json:"benchmark"`
		Config    map[string]interface{} `json:"config"`
		Points    []txnPoint             `json:"points"`
	}{
		Benchmark: "interactive_transactions",
		Config: map[string]interface{}{
			"txns_per_session": txnsPerSession,
			"stmts_per_txn":    stmtsPerTxn,
			"accounts":         accounts,
			"hot_keys":         hotKeys,
			"seed":             seed,
		},
		Points: pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
}
