// The -recovery benchmark measures the durability subsystem from both
// ends: what WAL syncing costs the commit path (with and without group
// commit) and what the log costs at restart (recovery time as a
// function of the checkpoint interval). Results land in BENCH_4.json.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
)

type commitPoint struct {
	Mode           string  `json:"mode"`
	Sessions       int     `json:"sessions"`
	Commits        int64   `json:"commits"`
	Syncs          int64   `json:"syncs"`
	SyncsPerCommit float64 `json:"syncs_per_commit"`
	BatchSizes     []int64 `json:"group_commit_batch_histogram"`
	MeanLatencyUs  float64 `json:"mean_commit_latency_us"`
	P95LatencyUs   float64 `json:"p95_commit_latency_us"`
	StmtsPerSec    float64 `json:"stmts_per_sec"`
}

type recoveryPoint struct {
	CheckpointBytes int64   `json:"checkpoint_bytes"`
	Checkpoints     int64   `json:"checkpoints"`
	WALBytes        int64   `json:"wal_bytes_written"`
	DurableRecords  int     `json:"durable_records_at_crash"`
	Replayed        int     `json:"records_replayed"`
	RecoveryMs      float64 `json:"recovery_ms"`
}

// runCommitBench drives per-tenant insert streams through one database
// and reports commit-path durability costs. Each session owns a table,
// as tenants do, so commits from different sessions overlap and group
// commit has batches to form.
func runCommitBench(sessions, stmtsPerSession int, syncLatency time.Duration, noGroup bool) commitPoint {
	db := engine.Open(engine.Config{
		MemoryBytes:     32 << 20,
		SyncLatency:     syncLatency,
		NoGroupCommit:   noGroup,
		CheckpointBytes: -1,
	})
	for s := 0; s < sessions; s++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE tenant%d (id INT NOT NULL, val TEXT)", s)); err != nil {
			fatal(err)
		}
	}
	db.ResetStats()

	lat := make([][]time.Duration, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			q := fmt.Sprintf("INSERT INTO tenant%d VALUES (?, 'payload-payload-payload')", s)
			lat[s] = make([]time.Duration, 0, stmtsPerSession)
			for i := 0; i < stmtsPerSession; i++ {
				t0 := time.Now()
				if _, err := db.Exec(q, types.NewInt(int64(i))); err != nil {
					fatal(err)
				}
				lat[s] = append(lat[s], time.Since(t0))
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	st := db.Stats().WAL
	mode := "group_commit"
	if noGroup {
		mode = "sync_per_commit"
	}
	return commitPoint{
		Mode:           mode,
		Sessions:       sessions,
		Commits:        st.Commits,
		Syncs:          st.Syncs,
		SyncsPerCommit: float64(st.Syncs) / float64(st.Commits),
		BatchSizes:     st.BatchSizes[:],
		MeanLatencyUs:  float64(sum.Microseconds()) / float64(len(all)),
		P95LatencyUs:   float64(all[len(all)*95/100].Microseconds()),
		StmtsPerSec:    float64(len(all)) / elapsed.Seconds(),
	}
}

// runRecoveryPoint loads a fixed workload under one checkpoint interval,
// crashes, and times the rebuild.
func runRecoveryPoint(ckptBytes int64, stmts int) recoveryPoint {
	db := engine.Open(engine.Config{
		MemoryBytes:     8 << 20,
		PageSize:        2048,
		CheckpointBytes: ckptBytes,
	})
	const tables = 8
	for s := 0; s < tables; s++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE tenant%d (id INT NOT NULL, val TEXT)", s)); err != nil {
			fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf("CREATE UNIQUE INDEX tenant%d_pk ON tenant%d (id)", s, s)); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < stmts; i++ {
		q := fmt.Sprintf("INSERT INTO tenant%d VALUES (?, 'wwwwwwwwwwwwwwwwwwwwwwww')", i%tables)
		if _, err := db.Exec(q, types.NewInt(int64(i/tables))); err != nil {
			fatal(err)
		}
	}
	st := db.Stats().WAL

	t0 := time.Now()
	_, rep, err := engine.Recover(db.Crash())
	if err != nil {
		fatal(err)
	}
	return recoveryPoint{
		CheckpointBytes: ckptBytes,
		Checkpoints:     st.Checkpoints,
		WALBytes:        st.BytesAppended,
		DurableRecords:  rep.DurableRecords,
		Replayed:        rep.Replayed,
		RecoveryMs:      float64(time.Since(t0).Microseconds()) / 1000,
	}
}

func runRecoveryBench(jsonOut string) {
	const sessions, perSession = 8, 150
	// A sync latency in the disk-flush range makes the trade visible:
	// batching amortizes the wait, sync-per-commit pays it every time.
	const syncLatency = 200 * time.Microsecond

	fmt.Println("Commit path: group commit vs sync-per-commit")
	fmt.Printf("%-18s %-10s %-9s %-8s %-16s %-14s %-14s %s\n",
		"Mode", "Sessions", "Commits", "Syncs", "Syncs/commit", "Mean lat [us]", "p95 lat [us]", "Stmts/sec")
	var commits []commitPoint
	for _, noGroup := range []bool{true, false} {
		p := runCommitBench(sessions, perSession, syncLatency, noGroup)
		commits = append(commits, p)
		fmt.Printf("%-18s %-10d %-9d %-8d %-16.2f %-14.1f %-14.1f %.0f\n",
			p.Mode, p.Sessions, p.Commits, p.Syncs, p.SyncsPerCommit,
			p.MeanLatencyUs, p.P95LatencyUs, p.StmtsPerSec)
	}

	fmt.Println()
	fmt.Println("Recovery time vs checkpoint interval (fixed workload, crash, rebuild)")
	fmt.Printf("%-18s %-13s %-12s %-18s %-10s %s\n",
		"Ckpt bytes", "Checkpoints", "WAL bytes", "Durable records", "Replayed", "Recovery [ms]")
	const stmts = 4000
	var recoveries []recoveryPoint
	for _, ckpt := range []int64{-1, 1 << 20, 256 << 10, 64 << 10} {
		p := runRecoveryPoint(ckpt, stmts)
		recoveries = append(recoveries, p)
		label := fmt.Sprintf("%d", p.CheckpointBytes)
		if p.CheckpointBytes < 0 {
			label = "disabled"
		}
		fmt.Printf("%-18s %-13d %-12d %-18d %-10d %.2f\n",
			label, p.Checkpoints, p.WALBytes, p.DurableRecords, p.Replayed, p.RecoveryMs)
	}

	out := struct {
		Benchmark string                 `json:"benchmark"`
		Config    map[string]interface{} `json:"config"`
		Commit    []commitPoint          `json:"commit_path"`
		Recovery  []recoveryPoint        `json:"recovery"`
	}{
		Benchmark: "wal_recovery",
		Config: map[string]interface{}{
			"sessions":           sessions,
			"stmts_per_session":  perSession,
			"sync_latency":       syncLatency.String(),
			"recovery_stmts":     stmts,
			"recovery_page_size": 2048,
		},
		Commit:   commits,
		Recovery: recoveries,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
