// The -net benchmark drives the §4 CRM workload through the whole
// network stack — client connection, wire protocol, per-tenant auth,
// server session registry, schema-mapping rewrite, engine — instead of
// calling the mapper in-process. It sweeps the concurrent connection
// count (default 64/256/1024); every connection authenticates as one
// tenant and runs its share of the card deck, with each DML action
// wrapped in an explicit BEGIN/COMMIT over the wire. By default each
// action's statements travel pipelined in one Batch frame (one round
// trip per action instead of one per statement); -net-pipeline=false
// restores the statement-at-a-time path for comparison. Each point
// reports commits/sec, statements/sec, p50/p99 whole-action latency,
// and the statement-path telemetry (rewrite-cache hit rate, plan-cache
// hits, executor queueing), and then asserts the drain invariant:
// after every client disconnects, the server must hold zero sessions,
// zero active transactions, and zero pinned snapshots — a leaked
// session would pin the MVCC GC horizon forever. Results land in
// BENCH_6.json; -net-smoke runs a reduced sweep for CI.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/server"
	"repro/internal/testbed"
)

type netPoint struct {
	Conns int `json:"conns"`
	// ActionsTarget is the point's exact share of the sweep's total:
	// base = target/conns actions per connection, with the remainder
	// dealt one extra to the first target%conns connections.
	ActionsTarget  int   `json:"actions_target"`
	ActionsPerConn int   `json:"actions_per_conn"` // base share (min per conn)
	Actions        int64 `json:"actions"`
	Statements     int64 `json:"statements"` // server-side count for this point
	Batches        int64 `json:"batches"`    // pipelined frames for this point
	Commits        int64 `json:"commits"`
	Conflicts      int64 `json:"conflicts"`
	Errors         int64 `json:"errors"`

	ElapsedMs        float64 `json:"elapsed_ms"`
	CommitsPerSec    float64 `json:"commits_per_sec"`
	StatementsPerSec float64 `json:"statements_per_sec"`
	P50ActionUs      float64 `json:"p50_action_us"`
	P99ActionUs      float64 `json:"p99_action_us"`

	// Statement-path telemetry, as deltas over the point's window.
	RewriteHits        int64   `json:"rewrite_hits"`
	RewriteMisses      int64   `json:"rewrite_misses"`
	RewriteUncacheable int64   `json:"rewrite_uncacheable"`
	RewriteHitRate     float64 `json:"rewrite_hit_rate"`
	PlanCacheHits      int64   `json:"plan_cache_hits"`
	PlanCacheMisses    int64   `json:"plan_cache_misses"`
	ExecWaits          int64   `json:"exec_waits"`
	ExecWaitMicros     int64   `json:"exec_wait_micros"`
	ExecQueueMax       int     `json:"exec_queue_max"` // cumulative high-water

	// Drain invariant after every connection closed: all must be zero.
	LeakedSessions  int   `json:"leaked_sessions"`
	ActiveTxns      int64 `json:"active_txns"`
	PinnedSnapshots int64 `json:"pinned_snapshots"`
}

// runNetPoint runs one sweep point: conns concurrent connections, each
// bound to tenant (connIdx % tenants) + 1. totalActions is dealt
// exactly: the first totalActions%conns connections run one extra
// action on top of the totalActions/conns base.
func runNetPoint(srv *server.Server, addr string, bed *testbed.Bed, conns, totalActions, tenants int, seed int64, pipeline bool) netPoint {
	deck := testbed.BuildDeck(rand.New(rand.NewSource(seed)))
	var deckNext atomic.Int64
	base, extra := totalActions/conns, totalActions%conns

	before := srv.Stats()
	var (
		commits, conflicts, errs, actions atomic.Int64
		latMu                             sync.Mutex
		lats                              []time.Duration
	)

	// Every worker dials and signals ready before any runs an action, so
	// the measured window excludes the connection ramp-up; workers park
	// again after their last action so it excludes the teardown too
	// (1024 Goodbyes would otherwise bill the high-fan-in points for
	// their own disconnect storm).
	start := make(chan struct{})
	finish := make(chan struct{})
	ready := make(chan error, conns)
	var wg, actWg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		actWg.Add(1)
		go func(i int) {
			defer wg.Done()
			done := func() { actWg.Done() }
			defer func() { done() }()
			tenantIdx := i % tenants
			c, err := client.Dial(client.Config{
				Addr:   addr,
				Tenant: int64(tenantIdx + 1),
				Token:  netToken(tenantIdx + 1),
			})
			ready <- err
			if err != nil {
				return
			}
			defer c.Close()
			<-start

			share := base
			if i < extra {
				share++
			}
			var adminSeq int64 // never advanced: Admin cards are remapped
			local := make([]time.Duration, 0, share)
			for n := 0; n < share; n++ {
				idx := deckNext.Add(1)
				class := deck[int(idx)%len(deck)]
				if class == testbed.Admin {
					// Tenant provisioning is DDL the wire protocol does not
					// carry; deal the card as a light select instead.
					class = testbed.SelectLight
				}
				// The action rng is seeded by the card index, not the
				// connection, so every sweep point runs the same 6000
				// concrete actions — otherwise each point would draw a
				// different statement mix and the cross-point comparison
				// would measure deck luck along with concurrency.
				rng := rand.New(rand.NewSource(seed + 7919*idx))
				a := bed.Workload.NextActionFor(rng, class, tenantIdx, &adminSeq)
				t0 := time.Now()
				if pipeline {
					runNetActionPipelined(c, a.Queries, a.Execs, &commits, &conflicts, &errs)
				} else {
					for _, q := range a.Queries {
						if _, err := c.Query(q); err != nil {
							errs.Add(1)
						}
					}
					if len(a.Execs) > 0 {
						runNetTxn(c, a.Execs, &commits, &conflicts, &errs)
					}
				}
				local = append(local, time.Since(t0))
				actions.Add(1)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
			done()
			done = func() {}
			<-finish
		}(i)
	}
	for i := 0; i < conns; i++ {
		if err := <-ready; err != nil {
			fatal(fmt.Errorf("dial (conn %d/%d): %w", i+1, conns, err))
		}
	}
	// The ramp-up (dials, handshakes, session setup) is excluded from
	// the measured window; collect its garbage outside the window too,
	// so the first in-window GC cycles don't pay for it.
	runtime.GC()
	t0 := time.Now()
	close(start)
	actWg.Wait()
	elapsed := time.Since(t0)
	close(finish)
	wg.Wait()

	// Drain: every client Closed (best-effort Goodbye) on the way out of
	// its goroutine; the server must reap all of them and release every
	// engine resource. Poll because reaping is asynchronous.
	leak := srv.Stats()
	deadline := time.Now().Add(10 * time.Second)
	for leak.OpenSessions != 0 || leak.ActiveTxns != 0 || leak.PinnedSnapshots != 0 {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("leak after %d-conn point: sessions=%d active_txns=%d pinned=%d",
				conns, leak.OpenSessions, leak.ActiveTxns, leak.PinnedSnapshots))
		}
		time.Sleep(time.Millisecond)
		leak = srv.Stats()
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rwHits := (leak.RewriteHits + leak.RewriteTemplateHits) - (before.RewriteHits + before.RewriteTemplateHits)
	rwMisses := leak.RewriteMisses - before.RewriteMisses
	rwUncache := leak.RewriteUncacheable - before.RewriteUncacheable
	// Hit rate over cacheable lookups; uncacheable statements (BEGIN/
	// COMMIT/INSERT) bypass the cache and are reported separately.
	var rwRate float64
	if total := rwHits + rwMisses; total > 0 {
		rwRate = float64(rwHits) / float64(total)
	}
	p := netPoint{
		Conns:          conns,
		ActionsTarget:  totalActions,
		ActionsPerConn: base,
		Actions:        actions.Load(),
		Statements:     leak.Statements - before.Statements,
		Batches:        leak.Batches - before.Batches,
		Commits:        commits.Load(),
		Conflicts:      conflicts.Load(),
		Errors:         errs.Load(),

		ElapsedMs:        float64(elapsed.Microseconds()) / 1000,
		CommitsPerSec:    float64(commits.Load()) / elapsed.Seconds(),
		StatementsPerSec: float64(leak.Statements-before.Statements) / elapsed.Seconds(),
		P50ActionUs:      float64(quantile(lats, 0.50).Nanoseconds()) / 1000,
		P99ActionUs:      float64(quantile(lats, 0.99).Nanoseconds()) / 1000,

		RewriteHits:        rwHits,
		RewriteMisses:      rwMisses,
		RewriteUncacheable: rwUncache,
		RewriteHitRate:     rwRate,
		PlanCacheHits:      leak.PlanCacheHits - before.PlanCacheHits,
		PlanCacheMisses:    leak.PlanCacheMisses - before.PlanCacheMisses,
		ExecWaits:          leak.ExecWaits - before.ExecWaits,
		ExecWaitMicros:     leak.ExecWaitMicros - before.ExecWaitMicros,
		ExecQueueMax:       leak.ExecQueueMax,

		LeakedSessions:  leak.OpenSessions,
		ActiveTxns:      leak.ActiveTxns,
		PinnedSnapshots: leak.PinnedSnapshots,
	}
	if p.Actions != int64(totalActions) {
		fatal(fmt.Errorf("%d-conn point ran %d actions, dealt %d", conns, p.Actions, totalActions))
	}
	return p
}

// runNetActionPipelined sends one action — its queries plus its DML
// wrapped in BEGIN/COMMIT — as a single Batch frame: one network round
// trip and one flush for the whole action. The server's poison rule
// guarantees the COMMIT never runs after an earlier failure; the
// client classifies the first real failure (conflict vs error) and
// acknowledges with ROLLBACK, the same no-retry policy as the
// statement-at-a-time path.
func runNetActionPipelined(c *client.Conn, queries, execs []string, commits, conflicts, errs *atomic.Int64) {
	stmts := make([]client.PipelineStmt, 0, len(queries)+len(execs)+2)
	for _, q := range queries {
		stmts = append(stmts, client.PipelineStmt{Query: true, SQL: q})
	}
	txn := len(execs) > 0
	if txn {
		stmts = append(stmts, client.PipelineStmt{SQL: "BEGIN"})
		for _, e := range execs {
			stmts = append(stmts, client.PipelineStmt{SQL: e})
		}
		stmts = append(stmts, client.PipelineStmt{SQL: "COMMIT"})
	}
	if len(stmts) == 0 {
		return
	}
	results, err := c.Pipeline(stmts)
	if err != nil {
		errs.Add(1)
		return
	}
	failed := false
	for _, r := range results {
		if r.Err == nil || r.Poisoned() {
			continue
		}
		// First real failure decides the action's outcome.
		if !failed {
			failed = true
			if client.IsConflict(r.Err) {
				conflicts.Add(1)
			} else {
				errs.Add(1)
			}
		}
	}
	if !txn {
		return
	}
	if failed {
		// The transaction is still open (and possibly aborted); clear it.
		if _, err := c.Exec("ROLLBACK"); err != nil {
			errs.Add(1)
		}
		return
	}
	commits.Add(1)
}

// runNetTxn wraps one action's DML in an explicit wire transaction,
// one round trip per statement (the -net-pipeline=false path).
// A first-updater-wins conflict aborts the transaction server-side;
// the client acknowledges with ROLLBACK and the action counts as a
// conflict, not an error — the same no-retry policy as the -txn bench.
func runNetTxn(c *client.Conn, execs []string, commits, conflicts, errs *atomic.Int64) {
	if _, err := c.Exec("BEGIN"); err != nil {
		errs.Add(1)
		return
	}
	ok := true
	for _, e := range execs {
		if _, err := c.Exec(e); err != nil {
			if client.IsConflict(err) {
				conflicts.Add(1)
			} else {
				errs.Add(1)
			}
			ok = false
			break
		}
	}
	if ok {
		if _, err := c.Exec("COMMIT"); err != nil {
			if client.IsConflict(err) {
				conflicts.Add(1)
			} else {
				errs.Add(1)
			}
			ok = false
		}
	}
	if ok {
		commits.Add(1)
	} else {
		if _, err := c.Exec("ROLLBACK"); err != nil {
			errs.Add(1)
		}
	}
}

func netToken(tenantID int) string { return fmt.Sprintf("bench-%d", tenantID) }

// runNetBench sweeps the concurrent connection count over the wire
// protocol. Every point gets a freshly provisioned CRM testbed and a
// fresh server on a loopback port (setup is outside the measured
// window), and totalActions is dealt exactly across the point's
// connections — so every point does identical total work from
// identical starting state. Sharing one database across points would
// confound the sweep: each point's INSERTs grow the tables, and later
// points would scan more data than earlier ones.
func runNetBench(jsonOut, connsList string, totalActions int, smoke, pipeline bool, slots int) {
	const (
		tenants      = 32
		rowsPerTable = 16
		seed         = 2008
	)
	var conns []int
	for _, s := range strings.Split(connsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad conn count %q", s))
		}
		conns = append(conns, n)
	}

	auth := server.NewAuthenticator()
	for id := 1; id <= tenants; id++ {
		auth.Register(int64(id), server.Credentials{Token: netToken(id)})
	}

	mode := "pipelined"
	if !pipeline {
		mode = "statement-at-a-time"
	}
	fmt.Printf("Network Front Door: CRM workload over the wire protocol (%s)\n", mode)
	fmt.Printf("%-8s %-8s %-10s %-10s %-9s %-7s %-13s %-12s %-10s %-12s %-12s %s\n",
		"Conns", "Actions", "Commits", "Conflicts", "Errors", "Stmts", "Commits/sec", "Stmts/sec", "RwHit%", "p50(us)", "p99(us)", "ExecWaits")
	var pts []netPoint
	execSlots := 0
	for _, n := range conns {
		fmt.Fprintf(os.Stderr, "setting up CRM testbed (%d tenants, %d rows/table) for %d conns...\n", tenants, rowsPerTable, n)
		bed, err := testbed.Setup(testbed.Config{
			Tenants: tenants, Instances: 1, RowsPerTable: rowsPerTable,
			Sessions: 1, Actions: 1, Seed: seed, MemoryBytes: 64 << 20,
		})
		if err != nil {
			fatal(err)
		}
		srv, err := server.New(server.Config{DB: bed.DB, Layout: bed.Layout, Auth: auth, MaxConcurrent: slots})
		if err != nil {
			fatal(err)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		execSlots = srv.Stats().ExecSlots
		p := runNetPoint(srv, addr.String(), bed, n, totalActions, tenants, seed, pipeline)
		srv.Close()
		pts = append(pts, p)
		fmt.Printf("%-8d %-8d %-10d %-10d %-9d %-7d %-13.1f %-12.1f %-10.1f %-12.1f %-12.1f %d\n",
			p.Conns, p.Actions, p.Commits, p.Conflicts, p.Errors, p.Statements,
			p.CommitsPerSec, p.StatementsPerSec, 100*p.RewriteHitRate, p.P50ActionUs, p.P99ActionUs, p.ExecWaits)
	}
	fmt.Println("\ndrain invariant: all points ended with 0 sessions, 0 active txns, 0 pinned snapshots")

	out := struct {
		Benchmark string                 `json:"benchmark"`
		Config    map[string]interface{} `json:"config"`
		Points    []netPoint             `json:"points"`
	}{
		Benchmark: "network_frontdoor",
		Config: map[string]interface{}{
			"tenants":         tenants,
			"rows_per_table":  rowsPerTable,
			"total_actions":   totalActions,
			"layout":          "basic",
			"txn_per_dml":     true,
			"pipeline":        pipeline,
			"exec_slots":      execSlots,
			"fresh_per_point": true,
			"admin_cards":     "remapped to select-light (no DDL on the wire)",
			"seed":            seed,
			"smoke":           smoke,
		},
		Points: pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
}
