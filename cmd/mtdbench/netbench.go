// The -net benchmark drives the §4 CRM workload through the whole
// network stack — client connection, wire protocol, per-tenant auth,
// server session registry, schema-mapping rewrite, engine — instead of
// calling the mapper in-process. It sweeps the concurrent connection
// count (default 64/256/1024); every connection authenticates as one
// tenant and runs its share of the card deck, with each DML action
// wrapped in an explicit BEGIN/COMMIT over the wire. Each point
// reports commits/sec, statements/sec, and p50/p99 whole-action
// latency, and then asserts the drain invariant: after every client
// disconnects, the server must hold zero sessions, zero active
// transactions, and zero pinned snapshots — a leaked session would
// pin the MVCC GC horizon forever. Results land in BENCH_6.json;
// -net-smoke runs a reduced sweep for CI.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/server"
	"repro/internal/testbed"
)

type netPoint struct {
	Conns          int   `json:"conns"`
	ActionsPerConn int   `json:"actions_per_conn"`
	Actions        int64 `json:"actions"`
	Statements     int64 `json:"statements"` // server-side count for this point
	Commits        int64 `json:"commits"`
	Conflicts      int64 `json:"conflicts"`
	Errors         int64 `json:"errors"`

	ElapsedMs        float64 `json:"elapsed_ms"`
	CommitsPerSec    float64 `json:"commits_per_sec"`
	StatementsPerSec float64 `json:"statements_per_sec"`
	P50ActionUs      float64 `json:"p50_action_us"`
	P99ActionUs      float64 `json:"p99_action_us"`

	// Drain invariant after every connection closed: all must be zero.
	LeakedSessions  int   `json:"leaked_sessions"`
	ActiveTxns      int64 `json:"active_txns"`
	PinnedSnapshots int64 `json:"pinned_snapshots"`
}

// runNetPoint runs one sweep point: conns concurrent connections, each
// bound to tenant (connIdx % tenants) + 1, each running actionsPerConn
// dealt cards against the shared server.
func runNetPoint(srv *server.Server, addr string, bed *testbed.Bed, conns, actionsPerConn, tenants int, seed int64) netPoint {
	deck := testbed.BuildDeck(rand.New(rand.NewSource(seed)))
	var deckNext atomic.Int64

	before := srv.Stats()
	var (
		commits, conflicts, errs, actions atomic.Int64
		latMu                             sync.Mutex
		lats                              []time.Duration
	)

	// Every worker dials and signals ready before any runs an action, so
	// the measured window excludes the connection ramp-up.
	start := make(chan struct{})
	ready := make(chan error, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenantIdx := i % tenants
			c, err := client.Dial(client.Config{
				Addr:   addr,
				Tenant: int64(tenantIdx + 1),
				Token:  netToken(tenantIdx + 1),
			})
			ready <- err
			if err != nil {
				return
			}
			defer c.Close()
			<-start

			rng := rand.New(rand.NewSource(seed + 7919*int64(i)))
			var adminSeq int64 // never advanced: Admin cards are remapped
			local := make([]time.Duration, 0, actionsPerConn)
			for n := 0; n < actionsPerConn; n++ {
				class := deck[int(deckNext.Add(1))%len(deck)]
				if class == testbed.Admin {
					// Tenant provisioning is DDL the wire protocol does not
					// carry; deal the card as a light select instead.
					class = testbed.SelectLight
				}
				a := bed.Workload.NextActionFor(rng, class, tenantIdx, &adminSeq)
				t0 := time.Now()
				for _, q := range a.Queries {
					if _, err := c.Query(q); err != nil {
						errs.Add(1)
					}
				}
				if len(a.Execs) > 0 {
					runNetTxn(c, a.Execs, &commits, &conflicts, &errs)
				}
				local = append(local, time.Since(t0))
				actions.Add(1)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(i)
	}
	for i := 0; i < conns; i++ {
		if err := <-ready; err != nil {
			fatal(fmt.Errorf("dial (conn %d/%d): %w", i+1, conns, err))
		}
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	// Drain: every client Closed (best-effort Goodbye) on the way out of
	// its goroutine; the server must reap all of them and release every
	// engine resource. Poll because reaping is asynchronous.
	leak := srv.Stats()
	deadline := time.Now().Add(10 * time.Second)
	for leak.OpenSessions != 0 || leak.ActiveTxns != 0 || leak.PinnedSnapshots != 0 {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("leak after %d-conn point: sessions=%d active_txns=%d pinned=%d",
				conns, leak.OpenSessions, leak.ActiveTxns, leak.PinnedSnapshots))
		}
		time.Sleep(time.Millisecond)
		leak = srv.Stats()
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p := netPoint{
		Conns:          conns,
		ActionsPerConn: actionsPerConn,
		Actions:        actions.Load(),
		Statements:     leak.Statements - before.Statements,
		Commits:        commits.Load(),
		Conflicts:      conflicts.Load(),
		Errors:         errs.Load(),

		ElapsedMs:        float64(elapsed.Microseconds()) / 1000,
		CommitsPerSec:    float64(commits.Load()) / elapsed.Seconds(),
		StatementsPerSec: float64(leak.Statements-before.Statements) / elapsed.Seconds(),
		P50ActionUs:      float64(quantile(lats, 0.50).Nanoseconds()) / 1000,
		P99ActionUs:      float64(quantile(lats, 0.99).Nanoseconds()) / 1000,

		LeakedSessions:  leak.OpenSessions,
		ActiveTxns:      leak.ActiveTxns,
		PinnedSnapshots: leak.PinnedSnapshots,
	}
	return p
}

// runNetTxn wraps one action's DML in an explicit wire transaction.
// A first-updater-wins conflict aborts the transaction server-side;
// the client acknowledges with ROLLBACK and the action counts as a
// conflict, not an error — the same no-retry policy as the -txn bench.
func runNetTxn(c *client.Conn, execs []string, commits, conflicts, errs *atomic.Int64) {
	if _, err := c.Exec("BEGIN"); err != nil {
		errs.Add(1)
		return
	}
	ok := true
	for _, e := range execs {
		if _, err := c.Exec(e); err != nil {
			if client.IsConflict(err) {
				conflicts.Add(1)
			} else {
				errs.Add(1)
			}
			ok = false
			break
		}
	}
	if ok {
		if _, err := c.Exec("COMMIT"); err != nil {
			if client.IsConflict(err) {
				conflicts.Add(1)
			} else {
				errs.Add(1)
			}
			ok = false
		}
	}
	if ok {
		commits.Add(1)
	} else {
		if _, err := c.Exec("ROLLBACK"); err != nil {
			errs.Add(1)
		}
	}
}

func netToken(tenantID int) string { return fmt.Sprintf("bench-%d", tenantID) }

// runNetBench provisions a CRM testbed, serves it over TCP on a
// loopback port in layout mode with per-tenant credentials, and sweeps
// the concurrent connection count. totalActions is split across the
// connections of each point (at least 4 per connection) so every point
// does comparable total work.
func runNetBench(jsonOut, connsList string, totalActions int, smoke bool) {
	const (
		tenants      = 32
		rowsPerTable = 16
		seed         = 2008
	)
	var conns []int
	for _, s := range strings.Split(connsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad conn count %q", s))
		}
		conns = append(conns, n)
	}

	fmt.Fprintf(os.Stderr, "setting up CRM testbed (%d tenants, %d rows/table)...\n", tenants, rowsPerTable)
	bed, err := testbed.Setup(testbed.Config{
		Tenants: tenants, Instances: 1, RowsPerTable: rowsPerTable,
		Sessions: 1, Actions: 1, Seed: seed, MemoryBytes: 64 << 20,
	})
	if err != nil {
		fatal(err)
	}

	auth := server.NewAuthenticator()
	for id := 1; id <= tenants; id++ {
		auth.Register(int64(id), server.Credentials{Token: netToken(id)})
	}
	srv, err := server.New(server.Config{DB: bed.DB, Layout: bed.Layout, Auth: auth})
	if err != nil {
		fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	fmt.Println("Network Front Door: CRM workload over the wire protocol")
	fmt.Printf("%-8s %-8s %-10s %-10s %-9s %-7s %-13s %-12s %-12s %s\n",
		"Conns", "Actions", "Commits", "Conflicts", "Errors", "Stmts", "Commits/sec", "Stmts/sec", "p50(us)", "p99(us)")
	var pts []netPoint
	for _, n := range conns {
		per := totalActions / n
		if per < 4 {
			per = 4
		}
		p := runNetPoint(srv, addr.String(), bed, n, per, tenants, seed)
		pts = append(pts, p)
		fmt.Printf("%-8d %-8d %-10d %-10d %-9d %-7d %-13.1f %-12.1f %-12.1f %.1f\n",
			p.Conns, p.Actions, p.Commits, p.Conflicts, p.Errors, p.Statements,
			p.CommitsPerSec, p.StatementsPerSec, p.P50ActionUs, p.P99ActionUs)
	}
	fmt.Println("\ndrain invariant: all points ended with 0 sessions, 0 active txns, 0 pinned snapshots")

	out := struct {
		Benchmark string                 `json:"benchmark"`
		Config    map[string]interface{} `json:"config"`
		Points    []netPoint             `json:"points"`
	}{
		Benchmark: "network_frontdoor",
		Config: map[string]interface{}{
			"tenants":        tenants,
			"rows_per_table": rowsPerTable,
			"total_actions":  totalActions,
			"layout":         "basic",
			"txn_per_dml":    true,
			"admin_cards":    "remapped to select-light (no DDL on the wire)",
			"seed":           seed,
			"smoke":          smoke,
		},
		Points: pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
}
