package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/chunkexp"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// runWideBench is the -widebench mode: it measures the batch-at-a-time
// executor with column pruning against the row-at-a-time unpruned
// baseline on a wide-table/narrow-projection microbenchmark, re-runs
// the §6.2 chunk-width sweep through both paths to show the results are
// unchanged, and writes everything to jsonOut (BENCH_3.json).
func runWideBench(jsonOut string) {
	type pathResult struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		Rows        int   `json:"rows"`
	}
	type sweepPoint struct {
		Instance     string  `json:"instance"`
		ChunkWidth   int     `json:"chunk_width"`
		Scale        int     `json:"scale"`
		BatchNsPerOp int64   `json:"batch_ns_per_op"`
		RowNsPerOp   int64   `json:"row_ns_per_op"`
		Rows         int     `json:"rows"`
		ResultsEqual bool    `json:"results_equal"`
		Speedup      float64 `json:"speedup"`
	}

	// --- Wide table, narrow projection ---------------------------------
	const wideRows = 2000
	cat := wideCatalog(wideRows)
	const query = "SELECT k0, k1, k2, k3 FROM wide WHERE k1 > 100"

	batchPlan := mustPlan(cat, query)
	rowPlan := mustPlan(cat, query)
	plan.DisablePruning(rowPlan)

	measure := func(run func() (int, error)) pathResult {
		var rows int
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := run()
				if err != nil {
					fmt.Fprintf(os.Stderr, "widebench: %v\n", err)
					os.Exit(1)
				}
				rows = n
			}
		})
		return pathResult{
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Rows:        rows,
		}
	}
	batch := measure(func() (int, error) {
		rows, err := exec.Collect(batchPlan, nil)
		return len(rows), err
	})
	row := measure(func() (int, error) {
		rows, err := exec.CollectRowAtATime(rowPlan, nil)
		return len(rows), err
	})

	// Decode savings of the pruned batch path, from the exec counters.
	var st exec.Stats
	if _, err := exec.CollectStats(batchPlan, nil, &st); err != nil {
		fmt.Fprintf(os.Stderr, "widebench stats: %v\n", err)
		os.Exit(1)
	}
	counters := st.Snapshot()

	fmt.Println("Wide table (20 columns, 16 VARCHAR), 4-column projection, 2000 rows")
	fmt.Printf("%-14s %-14s %-14s %-14s %s\n", "Path", "ns/op", "allocs/op", "B/op", "rows")
	fmt.Printf("%-14s %-14d %-14d %-14d %d\n", "batch", batch.NsPerOp, batch.AllocsPerOp, batch.BytesPerOp, batch.Rows)
	fmt.Printf("%-14s %-14d %-14d %-14d %d\n", "row-baseline", row.NsPerOp, row.AllocsPerOp, row.BytesPerOp, row.Rows)
	speedup := float64(row.NsPerOp) / float64(batch.NsPerOp)
	allocRatio := float64(row.AllocsPerOp) / float64(batch.AllocsPerOp)
	fmt.Printf("speedup %.2fx, %.1fx fewer allocations; decode: %d values materialized, %d skipped\n\n",
		speedup, allocRatio, counters.ValuesDecoded, counters.ValuesSkipped)

	// --- §6.2 chunk-width sweep through both paths ---------------------
	cfg := chunkexp.Config{Parents: 80, ChildrenPerParent: 8, MemoryBytes: 16 << 20}
	const scale = 30
	var sweep []sweepPoint
	fmt.Println("§6.2 Q2 sweep (scale 30), batch vs row path, result equality")
	fmt.Printf("%-16s %-14s %-14s %-10s %-8s %s\n", "Instance", "batch-ns/op", "row-ns/op", "speedup", "rows", "equal")
	for _, mk := range []func() (*chunkexp.Instance, error){
		func() (*chunkexp.Instance, error) { return chunkexp.NewConventional(cfg) },
		func() (*chunkexp.Instance, error) { return chunkexp.NewChunk(cfg, 3, false) },
		func() (*chunkexp.Instance, error) { return chunkexp.NewChunk(cfg, 15, false) },
		func() (*chunkexp.Instance, error) { return chunkexp.NewChunk(cfg, 90, false) },
	} {
		in, err := mk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "widebench sweep: %v\n", err)
			os.Exit(1)
		}
		if err := in.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "widebench load: %v\n", err)
			os.Exit(1)
		}
		logical := chunkexp.Q2(scale)
		physical, err := in.RewriteSQL(logical)
		if err != nil {
			fmt.Fprintf(os.Stderr, "widebench rewrite: %v\n", err)
			os.Exit(1)
		}
		if strings.Contains(physical, ";") {
			fmt.Fprintf(os.Stderr, "widebench: multi-statement rewrite unsupported\n")
			os.Exit(1)
		}
		pcat := in.DB.Catalog()
		bPlan := mustPlan(pcat, physical)
		rPlan := mustPlan(pcat, physical)
		plan.DisablePruning(rPlan)
		params := []types.Value{types.NewInt(2)}

		bRows, err := exec.Collect(bPlan, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "widebench batch: %v\n", err)
			os.Exit(1)
		}
		rRows, err := exec.CollectRowAtATime(rPlan, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "widebench row: %v\n", err)
			os.Exit(1)
		}
		equal := sameResultSet(bRows, rRows)

		bRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.Collect(bPlan, params); err != nil {
					fmt.Fprintf(os.Stderr, "widebench: %v\n", err)
					os.Exit(1)
				}
			}
		})
		rRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.CollectRowAtATime(rPlan, params); err != nil {
					fmt.Fprintf(os.Stderr, "widebench: %v\n", err)
					os.Exit(1)
				}
			}
		})
		p := sweepPoint{
			Instance:     in.Name,
			ChunkWidth:   in.Width,
			Scale:        scale,
			BatchNsPerOp: bRes.NsPerOp(),
			RowNsPerOp:   rRes.NsPerOp(),
			Rows:         len(bRows),
			ResultsEqual: equal,
			Speedup:      float64(rRes.NsPerOp()) / float64(bRes.NsPerOp()),
		}
		sweep = append(sweep, p)
		fmt.Printf("%-16s %-14d %-14d %-10.2f %-8d %v\n",
			p.Instance, p.BatchNsPerOp, p.RowNsPerOp, p.Speedup, p.Rows, p.ResultsEqual)
	}
	fmt.Println()

	out := struct {
		Benchmark string                 `json:"benchmark"`
		Config    map[string]interface{} `json:"config"`
		WideTable map[string]interface{} `json:"wide_table"`
		ChunkQ2   []sweepPoint           `json:"chunk_q2_sweep"`
	}{
		Benchmark: "batch_execution_column_pruning",
		Config: map[string]interface{}{
			"wide_rows":         wideRows,
			"wide_columns":      20,
			"projected_columns": 4,
			"query":             query,
			"chunk_parents":     cfg.Parents,
			"chunk_children":    cfg.ChildrenPerParent,
			"q2_scale":          scale,
		},
		WideTable: map[string]interface{}{
			"batch":           batch,
			"row_baseline":    row,
			"speedup":         speedup,
			"alloc_reduction": allocRatio,
			"values_decoded":  counters.ValuesDecoded,
			"values_skipped":  counters.ValuesSkipped,
		},
		ChunkQ2: sweep,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", jsonOut, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonOut)
}

// wideCatalog builds the 20-column wide table (16 VARCHAR attributes,
// 4 INTEGER keys) used by the microbenchmark.
func wideCatalog(rows int) *catalog.Catalog {
	pool := storage.NewBufferPool(storage.NewDisk(0), 64<<20)
	cat := catalog.New(pool, catalog.Config{MemoryBytes: 64 << 20})
	cols := []catalog.Column{
		{Name: "k0", Type: types.IntType, NotNull: true},
		{Name: "k1", Type: types.IntType},
	}
	for i := 0; i < 16; i++ {
		cols = append(cols, catalog.Column{Name: fmt.Sprintf("attr%02d", i), Type: types.StringType})
	}
	cols = append(cols,
		catalog.Column{Name: "k2", Type: types.IntType},
		catalog.Column{Name: "k3", Type: types.IntType},
	)
	tab, err := cat.CreateTable("wide", cols)
	if err != nil {
		fmt.Fprintf(os.Stderr, "widebench setup: %v\n", err)
		os.Exit(1)
	}
	r := rand.New(rand.NewSource(2008))
	row := make([]types.Value, len(cols))
	for i := 1; i <= rows; i++ {
		row[0] = types.NewInt(int64(i))
		row[1] = types.NewInt(int64(r.Intn(1000)))
		for j := 0; j < 16; j++ {
			row[2+j] = types.NewString(fmt.Sprintf("attribute-%02d-value-%06d", j, r.Intn(1_000_000)))
		}
		row[18] = types.NewInt(int64(r.Intn(1000)))
		row[19] = types.NewInt(int64(r.Intn(1000)))
		if _, err := tab.InsertRow(row); err != nil {
			fmt.Fprintf(os.Stderr, "widebench insert: %v\n", err)
			os.Exit(1)
		}
	}
	return cat
}

func mustPlan(cat *catalog.Catalog, query string) plan.Node {
	st, err := sql.Parse(query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "widebench parse: %v\n", err)
		os.Exit(1)
	}
	n, err := plan.New(cat, plan.Sophisticated).PlanStatement(st)
	if err != nil {
		fmt.Fprintf(os.Stderr, "widebench plan: %v\n", err)
		os.Exit(1)
	}
	return n
}

// sameResultSet compares two result sets order-insensitively.
func sameResultSet(a, b [][]types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	render := func(rows [][]types.Value) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			var sb strings.Builder
			for _, v := range r {
				sb.WriteString(v.SQLLiteral())
				sb.WriteByte('|')
			}
			out[i] = sb.String()
		}
		sort.Strings(out)
		return out
	}
	ra, rb := render(a), render(b)
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}
