// Command mtdbench reproduces the paper's §5 "handling many tables"
// experiment: a fixed tenant population with a fixed per-tenant dataset
// and a fixed session count, swept over schema variability — the number
// of CRM schema instances tenants are consolidated into (Table 1). It
// prints the Table 2 metric block (baseline compliance, throughput,
// 95 % response times per action class, buffer-pool hit ratios), which
// also yields the Figure 7 series.
//
// With -scaling it instead sweeps the concurrent session count at
// schema variability 0 and reports statements/sec and scaling
// efficiency per session count, optionally writing the sweep as JSON
// (-json-out BENCH_1.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/testbed"
)

func main() {
	var (
		tenants   = flag.Int("tenants", 120, "number of tenants (paper: 10000)")
		rows      = flag.Int("rows", 12, "rows per tenant per table (stands in for 1.4 MB/tenant)")
		sessions  = flag.Int("sessions", 8, "concurrent client sessions (paper: 40)")
		actions   = flag.Int("actions", 1200, "action cards per configuration")
		memMB     = flag.Int64("mem-mb", 12, "database memory budget in MiB")
		latency   = flag.Duration("latency", 80*time.Microsecond, "simulated I/O latency per buffer-pool miss")
		varList   = flag.String("variability", "0,0.5,0.65,0.8,1.0", "comma-separated schema variabilities")
		seed      = flag.Int64("seed", 2008, "random seed")
		appendIns = flag.Bool("append-insert", false, "use append heap placement instead of best-fit (§5 insert anomaly ablation)")
		confOnly  = flag.Bool("print-config", false, "print Table 1 and exit")
		layoutFl  = flag.String("layout", "basic", "schema-mapping layout: basic, extension, chunk, chunkfold, universal")
		withExts  = flag.Bool("extensions", false, "enable tenant extensions in schema and workload (§7's complete setting; needs a non-basic layout)")
		scaling   = flag.Bool("scaling", false, "run the multi-session scaling sweep instead of the variability sweep")
		widebench = flag.Bool("widebench", false, "run the batch-execution/column-pruning benchmark and §6.2 Q2 sweep")
		recovery  = flag.Bool("recovery", false, "run the WAL/recovery benchmark (commit latency with and without group commit, recovery time vs checkpoint interval)")
		txnBench  = flag.Bool("txn", false, "run the interactive-transaction benchmark (commits/sec and conflict-abort rate vs session count)")
		txnSmoke  = flag.Bool("txn-smoke", false, "with -txn, run the reduced smoke sweep (CI regression canary; writes to the system temp dir unless -json-out is given)")
		alterBn   = flag.Bool("alter", false, "run the online-schema-evolution benchmark: CRM steady state while ALTERing every table and live-moving a tenant")
		alterSmk  = flag.Bool("alter-smoke", false, "with -alter, run the reduced smoke configuration (CI regression canary; writes to the system temp dir unless -json-out is given)")
		replBench = flag.Bool("repl", false, "run the replication benchmark: routed read scaling over 0-3 WAL-shipping replicas, plus catch-up after a large commit backlog")
		replSmoke = flag.Bool("repl-smoke", false, "with -repl, run the reduced smoke configuration (CI canary: lag must converge to 0; writes to the system temp dir unless -json-out is given)")
		netBench  = flag.Bool("net", false, "run the network benchmark: the CRM workload over the wire protocol, swept over concurrent connections")
		netSmoke  = flag.Bool("net-smoke", false, "with -net, run the reduced smoke sweep (CI regression canary; writes to the system temp dir unless -json-out is given)")
		netConns  = flag.String("net-conns", "64,256,1024", "comma-separated connection counts for -net")
		netActs   = flag.Int("net-actions", 6000, "total actions per -net sweep point, split across its connections")
		netPipe   = flag.Bool("net-pipeline", true, "with -net, pipeline each action's statements into one Batch frame (false: one round trip per statement)")
		netSlots  = flag.Int("net-slots", 0, "with -net, the server's fair-admission slot count (0: server default, negative: unlimited)")
		sessList  = flag.String("scaling-sessions", "1,2,4,8,16", "comma-separated session counts for -scaling")
		jsonOut   = flag.String("json-out", "", "with -scaling, also write the sweep as JSON to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *scaling {
		runScaling(*sessList, *tenants, *rows, *actions, *memMB, *latency, *seed, *jsonOut)
		return
	}
	if *widebench {
		out := *jsonOut
		if out == "" {
			out = "BENCH_3.json"
		}
		runWideBench(out)
		return
	}
	if *recovery {
		out := *jsonOut
		if out == "" {
			out = "BENCH_4.json"
		}
		runRecoveryBench(out)
		return
	}
	if *alterBn {
		out := *jsonOut
		if out == "" {
			if *alterSmk {
				out = filepath.Join(os.TempDir(), "BENCH_7_smoke.json")
			} else {
				out = "BENCH_7.json"
			}
		}
		runAlterBench(out, *alterSmk)
		return
	}
	if *replBench {
		out := *jsonOut
		if out == "" {
			if *replSmoke {
				out = filepath.Join(os.TempDir(), "BENCH_8_smoke.json")
			} else {
				out = "BENCH_8.json"
			}
		}
		runReplBench(out, *replSmoke)
		return
	}
	if *netBench {
		out := *jsonOut
		connsList, actions := *netConns, *netActs
		if *netSmoke {
			connsList, actions = "4,16", 240
			if out == "" {
				out = filepath.Join(os.TempDir(), "BENCH_6_smoke.json")
			}
		} else if out == "" {
			out = "BENCH_6.json"
		}
		runNetBench(out, connsList, actions, *netSmoke, *netPipe, *netSlots)
		return
	}
	if *txnBench {
		out := *jsonOut
		if out == "" {
			if *txnSmoke {
				out = filepath.Join(os.TempDir(), "BENCH_5_smoke.json")
			} else {
				out = "BENCH_5.json"
			}
		}
		runTxnBench(out, *txnSmoke)
		return
	}

	var variabilities []float64
	for _, s := range strings.Split(*varList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad variability %q: %v\n", s, err)
			os.Exit(1)
		}
		variabilities = append(variabilities, v)
	}

	// Table 1: schema variability and data distribution.
	fmt.Println("Table 1: Schema Variability and Data Distribution")
	fmt.Printf("%-12s %-18s %-22s %s\n", "Variability", "Schema instances", "Tenants per instance", "Total tables")
	for _, v := range variabilities {
		inst := testbed.VariabilityConfig(v, *tenants)
		lo, hi := *tenants/inst, (*tenants+inst-1)/inst
		span := fmt.Sprintf("%d", lo)
		if hi != lo {
			span = fmt.Sprintf("%d-%d", lo, hi)
		}
		fmt.Printf("%-12.2f %-18d %-22s %d\n", v, inst, span, inst*len(testbed.CRMTables))
	}
	fmt.Println()
	if *confOnly {
		return
	}

	mode := storage.InsertBestFit
	if *appendIns {
		mode = storage.InsertAppend
	}
	var newLayout func(*core.Schema) (core.Layout, error)
	switch *layoutFl {
	case "basic":
		newLayout = nil // testbed default
	case "extension":
		newLayout = func(s *core.Schema) (core.Layout, error) { return core.NewExtensionLayout(s) }
	case "chunk":
		newLayout = func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkLayout(s, core.ChunkOptions{Defs: core.UniformChunkDefs(s, 8)})
		}
	case "chunkfold":
		newLayout = func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkFoldingLayout(s, core.FoldingOptions{})
		}
	case "universal":
		newLayout = func(s *core.Schema) (core.Layout, error) { return core.NewUniversalLayout(s, 32) }
	default:
		fmt.Fprintf(os.Stderr, "unknown layout %q\n", *layoutFl)
		os.Exit(1)
	}
	if *withExts && *layoutFl == "basic" {
		fmt.Fprintln(os.Stderr, "-extensions needs a non-basic -layout")
		os.Exit(1)
	}

	type runOut struct {
		v   float64
		res *testbed.Result
	}
	var runs []runOut
	for _, v := range variabilities {
		inst := testbed.VariabilityConfig(v, *tenants)
		fmt.Fprintf(os.Stderr, "setting up variability %.2f (%d instances, %d tables)...\n",
			v, inst, inst*len(testbed.CRMTables))
		bed, err := testbed.Setup(testbed.Config{
			Tenants: *tenants, Instances: inst, RowsPerTable: *rows,
			Sessions: *sessions, Actions: *actions, Seed: *seed,
			MemoryBytes: *memMB << 20, ReadLatency: *latency, InsertMode: mode,
			NewLayout: newLayout, WithExtensions: *withExts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "setup: %v\n", err)
			os.Exit(1)
		}
		res, err := bed.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "run: %v\n", err)
			os.Exit(1)
		}
		runs = append(runs, runOut{v, res})
	}

	baseline := testbed.BaselineOf(runs[0].res)

	// Table 2: experimental results.
	fmt.Println("Table 2: Experimental Results")
	head := []string{"Metric"}
	for _, r := range runs {
		head = append(head, fmt.Sprintf("%.2f", r.v))
	}
	fmt.Println(strings.Join(pad(head), " "))
	row := func(name string, f func(*testbed.Result) string) {
		cells := []string{name}
		for _, r := range runs {
			cells = append(cells, f(r.res))
		}
		fmt.Println(strings.Join(pad(cells), " "))
	}
	row("Baseline Compliance [%]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.1f", r.Compliance(baseline))
	})
	row("Throughput [1/min]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.1f", r.Throughput())
	})
	for c := testbed.SelectLight; c <= testbed.UpdateHeavy; c++ {
		c := c
		row("95% RT "+c.String()+" [ms]", func(r *testbed.Result) string {
			return fmt.Sprintf("%.2f", float64(r.Quantile(c, 0.95))/float64(time.Millisecond))
		})
	}
	row("Bufferpool Hit Data [%]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.2f", 100*r.Stats.Pool.HitRatio(storage.CatData))
	})
	row("Bufferpool Hit Index [%]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.2f", 100*r.Stats.Pool.HitRatio(storage.CatIndex))
	})
	fmt.Println()
	fmt.Println("Figure 7 series: (a) compliance, (b) throughput, (c) hit ratios — columns above.")
}

// runScaling sweeps the concurrent session count over the §4 CRM
// workload at schema variability 0 (one shared schema instance) and
// prints statements/sec, speedup, and efficiency per point. The same
// numbers land in -json-out for machine consumption (BENCH_1.json).
func runScaling(sessList string, tenants, rows, actions int, memMB int64, latency time.Duration, seed int64, jsonOut string) {
	var sessions []int
	for _, s := range strings.Split(sessList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad session count %q\n", s)
			os.Exit(1)
		}
		sessions = append(sessions, n)
	}
	pts, err := testbed.RunScaling(testbed.Config{
		Tenants: tenants, Instances: 1, RowsPerTable: rows,
		Actions: actions, Seed: seed,
		MemoryBytes: memMB << 20, ReadLatency: latency,
	}, sessions)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("Multi-Session Scaling (schema variability 0)")
	fmt.Printf("%-10s %-12s %-12s %-12s %-10s %s\n",
		"Sessions", "Stmts", "Stmts/sec", "Actions/min", "Speedup", "Efficiency")
	for _, p := range pts {
		fmt.Printf("%-10d %-12d %-12.1f %-12.1f %-10.2f %.2f\n",
			p.Sessions, p.Statements, p.StatementsPerSec, p.ActionsPerMin, p.Speedup, p.Efficiency)
	}

	if jsonOut != "" {
		out := struct {
			Benchmark string                 `json:"benchmark"`
			Config    map[string]interface{} `json:"config"`
			Points    []testbed.ScalingPoint `json:"points"`
		}{
			Benchmark: "multi_session_scaling",
			Config: map[string]interface{}{
				"tenants":        tenants,
				"rows_per_table": rows,
				"actions":        actions,
				"memory_mb":      memMB,
				"read_latency":   latency.String(),
				"seed":           seed,
			},
			Points: pts,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", jsonOut)
	}
}

func pad(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		w := 12
		if i == 0 {
			w = 28
		}
		out[i] = fmt.Sprintf("%-*s", w, c)
	}
	return out
}
