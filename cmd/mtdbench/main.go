// Command mtdbench reproduces the paper's §5 "handling many tables"
// experiment: a fixed tenant population with a fixed per-tenant dataset
// and a fixed session count, swept over schema variability — the number
// of CRM schema instances tenants are consolidated into (Table 1). It
// prints the Table 2 metric block (baseline compliance, throughput,
// 95 % response times per action class, buffer-pool hit ratios), which
// also yields the Figure 7 series.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/testbed"
)

func main() {
	var (
		tenants   = flag.Int("tenants", 120, "number of tenants (paper: 10000)")
		rows      = flag.Int("rows", 12, "rows per tenant per table (stands in for 1.4 MB/tenant)")
		sessions  = flag.Int("sessions", 8, "concurrent client sessions (paper: 40)")
		actions   = flag.Int("actions", 1200, "action cards per configuration")
		memMB     = flag.Int64("mem-mb", 12, "database memory budget in MiB")
		latency   = flag.Duration("latency", 80*time.Microsecond, "simulated I/O latency per buffer-pool miss")
		varList   = flag.String("variability", "0,0.5,0.65,0.8,1.0", "comma-separated schema variabilities")
		seed      = flag.Int64("seed", 2008, "random seed")
		appendIns = flag.Bool("append-insert", false, "use append heap placement instead of best-fit (§5 insert anomaly ablation)")
		confOnly  = flag.Bool("print-config", false, "print Table 1 and exit")
		layoutFl  = flag.String("layout", "basic", "schema-mapping layout: basic, extension, chunk, chunkfold, universal")
		withExts  = flag.Bool("extensions", false, "enable tenant extensions in schema and workload (§7's complete setting; needs a non-basic layout)")
	)
	flag.Parse()

	var variabilities []float64
	for _, s := range strings.Split(*varList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad variability %q: %v\n", s, err)
			os.Exit(1)
		}
		variabilities = append(variabilities, v)
	}

	// Table 1: schema variability and data distribution.
	fmt.Println("Table 1: Schema Variability and Data Distribution")
	fmt.Printf("%-12s %-18s %-22s %s\n", "Variability", "Schema instances", "Tenants per instance", "Total tables")
	for _, v := range variabilities {
		inst := testbed.VariabilityConfig(v, *tenants)
		lo, hi := *tenants/inst, (*tenants+inst-1)/inst
		span := fmt.Sprintf("%d", lo)
		if hi != lo {
			span = fmt.Sprintf("%d-%d", lo, hi)
		}
		fmt.Printf("%-12.2f %-18d %-22s %d\n", v, inst, span, inst*len(testbed.CRMTables))
	}
	fmt.Println()
	if *confOnly {
		return
	}

	mode := storage.InsertBestFit
	if *appendIns {
		mode = storage.InsertAppend
	}
	var newLayout func(*core.Schema) (core.Layout, error)
	switch *layoutFl {
	case "basic":
		newLayout = nil // testbed default
	case "extension":
		newLayout = func(s *core.Schema) (core.Layout, error) { return core.NewExtensionLayout(s) }
	case "chunk":
		newLayout = func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkLayout(s, core.ChunkOptions{Defs: core.UniformChunkDefs(s, 8)})
		}
	case "chunkfold":
		newLayout = func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkFoldingLayout(s, core.FoldingOptions{})
		}
	case "universal":
		newLayout = func(s *core.Schema) (core.Layout, error) { return core.NewUniversalLayout(s, 32) }
	default:
		fmt.Fprintf(os.Stderr, "unknown layout %q\n", *layoutFl)
		os.Exit(1)
	}
	if *withExts && *layoutFl == "basic" {
		fmt.Fprintln(os.Stderr, "-extensions needs a non-basic -layout")
		os.Exit(1)
	}

	type runOut struct {
		v   float64
		res *testbed.Result
	}
	var runs []runOut
	for _, v := range variabilities {
		inst := testbed.VariabilityConfig(v, *tenants)
		fmt.Fprintf(os.Stderr, "setting up variability %.2f (%d instances, %d tables)...\n",
			v, inst, inst*len(testbed.CRMTables))
		bed, err := testbed.Setup(testbed.Config{
			Tenants: *tenants, Instances: inst, RowsPerTable: *rows,
			Sessions: *sessions, Actions: *actions, Seed: *seed,
			MemoryBytes: *memMB << 20, ReadLatency: *latency, InsertMode: mode,
			NewLayout: newLayout, WithExtensions: *withExts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "setup: %v\n", err)
			os.Exit(1)
		}
		res, err := bed.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "run: %v\n", err)
			os.Exit(1)
		}
		runs = append(runs, runOut{v, res})
	}

	baseline := testbed.BaselineOf(runs[0].res)

	// Table 2: experimental results.
	fmt.Println("Table 2: Experimental Results")
	head := []string{"Metric"}
	for _, r := range runs {
		head = append(head, fmt.Sprintf("%.2f", r.v))
	}
	fmt.Println(strings.Join(pad(head), " "))
	row := func(name string, f func(*testbed.Result) string) {
		cells := []string{name}
		for _, r := range runs {
			cells = append(cells, f(r.res))
		}
		fmt.Println(strings.Join(pad(cells), " "))
	}
	row("Baseline Compliance [%]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.1f", r.Compliance(baseline))
	})
	row("Throughput [1/min]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.1f", r.Throughput())
	})
	for c := testbed.SelectLight; c <= testbed.UpdateHeavy; c++ {
		c := c
		row("95% RT "+c.String()+" [ms]", func(r *testbed.Result) string {
			return fmt.Sprintf("%.2f", float64(r.Quantile(c, 0.95))/float64(time.Millisecond))
		})
	}
	row("Bufferpool Hit Data [%]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.2f", 100*r.Stats.Pool.HitRatio(storage.CatData))
	})
	row("Bufferpool Hit Index [%]", func(r *testbed.Result) string {
		return fmt.Sprintf("%.2f", 100*r.Stats.Pool.HitRatio(storage.CatIndex))
	})
	fmt.Println()
	fmt.Println("Figure 7 series: (a) compliance, (b) throughput, (c) hit ratios — columns above.")
}

func pad(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		w := 12
		if i == 0 {
			w = 28
		}
		out[i] = fmt.Sprintf("%-*s", w, c)
	}
	return out
}
