package client

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/types"
)

// TestRouterReadsFromReplica is the end-to-end placement path: a
// primary server, a network replica subscribed over the wire protocol,
// and a router sending writes to the primary and reads to the replica.
func TestRouterReadsFromReplica(t *testing.T) {
	_, db, paddr := startServer(t, server.Config{})

	rep, err := repl.Connect(repl.ReplicaConfig{Addr: paddr.String()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)
	rsrv, err := server.New(server.Config{DB: rep.DB()})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := rsrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Close() })

	router := NewRouter(RouterConfig{Placement: core.PlacementMap{
		Primary:  paddr.String(),
		Replicas: []string{raddr.String()},
	}})
	defer router.Close()

	const tenant = 7
	if got := router.ReadAddr(tenant); got != raddr.String() {
		t.Fatalf("tenant %d reads at %q, want replica %q", tenant, got, raddr)
	}

	// Write through the router: must land on the primary.
	wp := router.WritePool(tenant)
	wc, err := wp.Get()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := wc.Exec("UPDATE t SET v = 77 WHERE k = 3"); err != nil || n != 1 {
		t.Fatalf("routed write: n=%d err=%v", n, err)
	}
	wp.Put(wc)

	// Read-your-writes: wait for the replica to apply the primary's
	// durable horizon, then read through the router.
	if err := rep.WaitForLSN(db.WAL().DurableLSN(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rp := router.ReadPool(tenant)
	rc, err := rp.Get()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rc.Query("SELECT v FROM t WHERE k = ?", types.NewInt(3))
	if err != nil {
		t.Fatalf("routed read: %v", err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 77 {
		t.Fatalf("replica read got %v, want 77", rows.Data)
	}

	// The replica fences writes; the connection survives the rejection.
	if _, err := rc.Exec("UPDATE t SET v = 1 WHERE k = 0"); err == nil {
		t.Fatal("write accepted by read-only replica")
	}
	if err := rc.Ping(); err != nil {
		t.Fatalf("ping after rejected write: %v", err)
	}
	rp.Put(rc)

	// Write and read pools route to different addresses for this tenant.
	if router.ReadAddr(tenant) == router.cfg.Placement.WriteAddr() {
		t.Fatal("reads and writes landed on the same address despite a live replica")
	}
}
