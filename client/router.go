package client

import (
	"sync"
	"time"

	"repro/internal/core"
)

// RouterConfig configures a placement-aware connection router.
type RouterConfig struct {
	// Placement maps tenants onto the primary and its read replicas.
	Placement core.PlacementMap
	// Creds builds the dial Config for reaching addr as tenant. The
	// default fills in only Addr and Tenant; deployments with per-tenant
	// tokens or custom timeouts supply their own.
	Creds func(addr string, tenant int64) Config
	// Pool tuning, applied to every per-(address, tenant) pool.
	MaxConns       int
	HealthInterval time.Duration
	IdlePingAfter  time.Duration
}

// Router hands out pooled connections placed by tenant: ReadPool routes
// to the tenant's pinned replica (the primary when there are none),
// WritePool always to the primary. Pools are created lazily per
// (address, tenant) pair — connections carry tenant credentials, so
// tenants never share a pool.
type Router struct {
	cfg RouterConfig

	mu     sync.Mutex
	pools  map[routeKey]*Pool
	closed bool
}

type routeKey struct {
	addr   string
	tenant int64
}

// NewRouter builds a router over a placement map.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Creds == nil {
		cfg.Creds = func(addr string, tenant int64) Config {
			return Config{Addr: addr, Tenant: tenant}
		}
	}
	return &Router{cfg: cfg, pools: map[routeKey]*Pool{}}
}

// ReadPool is the pool serving tenant's reads.
func (r *Router) ReadPool(tenant int64) *Pool {
	return r.pool(r.cfg.Placement.ReadAddr(tenant), tenant)
}

// WritePool is the pool serving tenant's writes: the primary's.
func (r *Router) WritePool(tenant int64) *Pool {
	return r.pool(r.cfg.Placement.WriteAddr(), tenant)
}

// ReadAddr exposes the routing decision without opening a pool.
func (r *Router) ReadAddr(tenant int64) string {
	return r.cfg.Placement.ReadAddr(tenant)
}

func (r *Router) pool(addr string, tenant int64) *Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := routeKey{addr, tenant}
	if p, ok := r.pools[k]; ok {
		return p
	}
	p := NewPool(PoolConfig{
		Conn:           r.cfg.Creds(addr, tenant),
		MaxConns:       r.cfg.MaxConns,
		HealthInterval: r.cfg.HealthInterval,
		IdlePingAfter:  r.cfg.IdlePingAfter,
	})
	r.pools[k] = p
	return p
}

// Close shuts every pool.
func (r *Router) Close() {
	r.mu.Lock()
	pools := make([]*Pool, 0, len(r.pools))
	for _, p := range r.pools {
		pools = append(pools, p)
	}
	r.pools = map[routeKey]*Pool{}
	r.closed = true
	r.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}
