package client

import (
	"sync"
	"time"
)

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Conn is the per-connection dial configuration.
	Conn Config
	// MaxConns bounds total live connections (default 8). Get blocks
	// while all of them are checked out.
	MaxConns int
	// HealthInterval is how often the background checker pings idle
	// connections and discards dead ones (default 30s; negative
	// disables the background loop — Get still verifies stale conns).
	HealthInterval time.Duration
	// IdlePingAfter: a connection idle longer than this is pinged
	// before being handed out by Get (default 10s; 0 uses the default,
	// negative disables the check).
	IdlePingAfter time.Duration
}

// pooled is an idle connection plus when it was returned.
type pooled struct {
	conn   *Conn
	idleAt time.Time
}

// Pool is a bounded pool of protocol connections with health checks:
// dead connections (server restart, dropped TCP) are detected by the
// background pinger or the checkout-time staleness ping and replaced
// with fresh dials instead of being handed to workers.
type Pool struct {
	cfg PoolConfig

	// sem holds one token per allowed live connection.
	sem chan struct{}

	mu     sync.Mutex
	idle   []pooled // newest at the end
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup

	dials   int64 // connections ever dialed (stats/tests)
	evicted int64 // connections discarded by a health check
}

// NewPool builds a pool; connections are dialed lazily by Get.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 8
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 30 * time.Second
	}
	if cfg.IdlePingAfter == 0 {
		cfg.IdlePingAfter = 10 * time.Second
	}
	p := &Pool{
		cfg:  cfg,
		sem:  make(chan struct{}, cfg.MaxConns),
		stop: make(chan struct{}),
	}
	if cfg.HealthInterval > 0 {
		p.wg.Add(1)
		go p.healthLoop()
	}
	return p
}

// Get checks out a healthy connection, dialing a new one when no idle
// connection is available. It blocks while MaxConns are checked out.
// Return the connection with Put (healthy) or Discard (broken).
func (p *Pool) Get() (*Conn, error) {
	select {
	case p.sem <- struct{}{}:
	case <-p.stop:
		return nil, ErrPoolClosed
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		<-p.sem
		return nil, ErrPoolClosed
	}
	for {
		c, idleFor, ok := p.popIdle()
		if !ok {
			break
		}
		if !c.Healthy() {
			p.countEvict()
			c.Close()
			continue
		}
		if p.cfg.IdlePingAfter > 0 && idleFor > p.cfg.IdlePingAfter {
			if c.Ping() != nil {
				p.countEvict()
				c.Close()
				continue
			}
		}
		return c, nil
	}
	c, err := Dial(p.cfg.Conn)
	if err != nil {
		<-p.sem
		return nil, err
	}
	p.mu.Lock()
	p.dials++
	p.mu.Unlock()
	return c, nil
}

// popIdle pops the most recently used idle connection.
func (p *Pool) popIdle() (c *Conn, idleFor time.Duration, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.idle) == 0 {
		return nil, 0, false
	}
	e := p.idle[len(p.idle)-1]
	p.idle = p.idle[:len(p.idle)-1]
	return e.conn, time.Since(e.idleAt), true
}

func (p *Pool) countEvict() {
	p.mu.Lock()
	p.evicted++
	p.mu.Unlock()
}

// Put returns a connection for reuse. Broken connections are closed
// and their slot freed (equivalent to Discard).
func (p *Pool) Put(c *Conn) {
	if c == nil {
		<-p.sem
		return
	}
	if !c.Healthy() {
		p.Discard(c)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		<-p.sem
		return
	}
	p.idle = append(p.idle, pooled{conn: c, idleAt: time.Now()})
	p.mu.Unlock()
	<-p.sem
}

// Discard closes a checked-out connection and frees its slot; the
// next Get dials a replacement.
func (p *Pool) Discard(c *Conn) {
	if c != nil {
		c.Close()
	}
	<-p.sem
}

// healthLoop periodically pings every idle connection and evicts the
// dead ones, so a server restart does not leave the pool full of
// corpses for Get to trip over one by one.
func (p *Pool) healthLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		p.mu.Lock()
		idle := p.idle
		p.idle = nil
		p.mu.Unlock()
		var alive []pooled
		for _, e := range idle {
			if e.conn.Healthy() && e.conn.Ping() == nil {
				alive = append(alive, e)
			} else {
				p.countEvict()
				e.conn.Close()
			}
		}
		p.mu.Lock()
		if p.closed {
			for _, e := range alive {
				e.conn.Close()
			}
		} else {
			p.idle = append(p.idle, alive...)
		}
		p.mu.Unlock()
	}
}

// Stats reports the pool's lifetime dial and eviction counts plus the
// current idle size.
func (p *Pool) Stats() (dials, evicted int64, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials, p.evicted, len(p.idle)
}

// Close stops the health loop and closes every idle connection.
// Checked-out connections are the caller's to Close.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.stop)
	for _, e := range idle {
		e.conn.Close()
	}
	p.wg.Wait()
}
