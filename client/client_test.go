package client

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/types"
)

// startServer builds a raw-mode server over a small table.
func startServer(t *testing.T, cfg server.Config) (*server.Server, *engine.DB, net.Addr) {
	t.Helper()
	db := engine.Open(engine.Config{CheckpointBytes: -1})
	for _, q := range []string{
		"CREATE TABLE t (k INTEGER NOT NULL, v INTEGER)",
		"CREATE UNIQUE INDEX t_pk ON t (k)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 8; k++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, 0)", types.NewInt(int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	cfg.DB = db
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, db, addr
}

func TestConnRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, server.Config{})
	c, err := Dial(Config{Addr: addr.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SessionID() == 0 {
		t.Fatal("no session id")
	}

	n, err := c.Exec("UPDATE t SET v = 3 WHERE k = 1")
	if err != nil || n != 1 {
		t.Fatalf("exec: n=%d err=%v", n, err)
	}
	rows, err := c.Query("SELECT v FROM t WHERE k = ?", types.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 3 {
		t.Fatalf("query got %v", rows.Data)
	}

	// Statement error: typed, connection survives.
	_, err = c.Exec("UPDATE nosuch SET v = 1")
	if code, ok := ErrorCode(err); !ok || code != protocol.CodeSQL {
		t.Fatalf("expected CodeSQL, got %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after error: %v", err)
	}

	// Prepared statement.
	st, err := c.Prepare("SELECT v FROM t WHERE k = ?")
	if err != nil || !st.IsQuery() {
		t.Fatalf("prepare: %v", err)
	}
	rows, err = st.Query(types.NewInt(1))
	if err != nil || rows.Data[0][0].Int != 3 {
		t.Fatalf("stmt query: %v %v", rows, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Transaction.
	for _, q := range []string{"BEGIN", "UPDATE t SET v = 4 WHERE k = 1", "COMMIT"} {
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if b, err := c.ServerStats(); err != nil || !strings.Contains(string(b), "statements") {
		t.Fatalf("server stats: %s %v", b, err)
	}
}

func TestConnConflictMapping(t *testing.T) {
	_, _, addr := startServer(t, server.Config{})
	c1, err := Dial(Config{Addr: addr.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(Config{Addr: addr.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	mustExec := func(c *Conn, q string) {
		t.Helper()
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(c1, "BEGIN")
	mustExec(c1, "UPDATE t SET v = 1 WHERE k = 2")
	mustExec(c2, "BEGIN")
	_, err = c2.Exec("UPDATE t SET v = 2 WHERE k = 2")
	if !IsConflict(err) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// The server rolled c2 back; ROLLBACK clears the client state.
	mustExec(c2, "ROLLBACK")
	mustExec(c1, "COMMIT")
}

func TestDialAuthFailure(t *testing.T) {
	auth := server.NewAuthenticator()
	auth.Register(1, server.Credentials{Token: "right"})
	_, _, addr := startServer(t, server.Config{Auth: auth})
	_, err := Dial(Config{Addr: addr.String(), Tenant: 1, Token: "wrong"})
	if code, ok := ErrorCode(err); !ok || code != protocol.CodeAuth {
		t.Fatalf("expected CodeAuth, got %v", err)
	}
}

func TestPoolReuseAndConcurrency(t *testing.T) {
	srv, db, addr := startServer(t, server.Config{})
	p := NewPool(PoolConfig{Conn: Config{Addr: addr.String()}, MaxConns: 4, HealthInterval: -1})
	defer p.Close()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				c, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Query("SELECT v FROM t WHERE k = ?", types.NewInt(int64(w%8))); err != nil {
					t.Error(err)
					p.Discard(c)
					return
				}
				p.Put(c)
			}
		}(w)
	}
	wg.Wait()
	dials, _, idle := p.Stats()
	if dials > 4 {
		t.Fatalf("pool dialed %d conns with MaxConns=4", dials)
	}
	if idle == 0 {
		t.Fatal("no idle connections after drain")
	}
	_ = srv
	_ = db
}

// TestPoolHealthCheckEvictsDead: connections killed server-side must
// be evicted by the checkout-time staleness ping, and Get must hand
// back a fresh working connection.
func TestPoolHealthCheckEvictsDead(t *testing.T) {
	srv, db, addr := startServer(t, server.Config{})
	p := NewPool(PoolConfig{
		Conn:           Config{Addr: addr.String()},
		MaxConns:       2,
		HealthInterval: -1,
		IdlePingAfter:  time.Nanosecond, // every checkout pings
	})
	defer p.Close()

	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	p.Put(c)

	// Kill every server-side session behind the pool's back.
	deadline := time.Now().Add(5 * time.Second)
	for srv.OpenSessions() > 0 {
		srv.CloseSessions()
		if time.Now().After(deadline) {
			t.Fatal("sessions did not die")
		}
		time.Sleep(time.Millisecond)
	}

	// The idle conn is now dead; Get must evict it and dial fresh.
	time.Sleep(10 * time.Millisecond)
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatalf("replacement conn unhealthy: %v", err)
	}
	p.Put(c2)
	dials, evicted, _ := p.Stats()
	if evicted == 0 || dials < 2 {
		t.Fatalf("expected an eviction and a redial: dials=%d evicted=%d", dials, evicted)
	}
	_ = db
}

// TestPoolBackgroundHealthLoop: the periodic pinger prunes dead idle
// connections without any Get traffic.
func TestPoolBackgroundHealthLoop(t *testing.T) {
	srv, _, addr := startServer(t, server.Config{})
	p := NewPool(PoolConfig{
		Conn:           Config{Addr: addr.String()},
		MaxConns:       2,
		HealthInterval: 5 * time.Millisecond,
		IdlePingAfter:  -1,
	})
	defer p.Close()

	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c)
	deadline := time.Now().Add(5 * time.Second)
	for srv.OpenSessions() > 0 {
		srv.CloseSessions()
		if time.Now().After(deadline) {
			t.Fatal("sessions did not die")
		}
		time.Sleep(time.Millisecond)
	}
	for {
		_, evicted, idle := p.Stats()
		if evicted >= 1 && idle == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health loop never evicted: evicted=%d idle=%d", evicted, idle)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConnPipeline: one Batch frame carries a whole transaction; the
// results come back index-matched, and a mid-pipeline failure surfaces
// as the real error at its index with everything after Poisoned.
func TestConnPipeline(t *testing.T) {
	_, _, addr := startServer(t, server.Config{})
	c, err := Dial(Config{Addr: addr.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results, err := c.Pipeline([]PipelineStmt{
		{SQL: "BEGIN"},
		{SQL: "UPDATE t SET v = 21 WHERE k = ?", Params: []types.Value{types.NewInt(1)}},
		{SQL: "COMMIT"},
		{Query: true, SQL: "SELECT v FROM t WHERE k = 1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].RowsAffected != 1 {
		t.Fatalf("update: %+v", results[1])
	}
	if results[3].Rows == nil || results[3].Rows.Data[0][0].Int != 21 {
		t.Fatalf("select: %+v", results[3])
	}

	// A failing statement poisons the tail; the connection survives and
	// ROLLBACK clears the open transaction.
	results, err = c.Pipeline([]PipelineStmt{
		{SQL: "BEGIN"},
		{SQL: "UPDATE nosuch SET v = 1"},
		{SQL: "UPDATE t SET v = 99 WHERE k = 1"},
		{SQL: "COMMIT"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, ok := ErrorCode(results[1].Err); !ok || code != protocol.CodeSQL {
		t.Fatalf("stmt 1: %+v", results[1])
	}
	for _, i := range []int{2, 3} {
		if !results[i].Poisoned() {
			t.Fatalf("stmt %d not poisoned: %+v", i, results[i])
		}
	}
	if _, err := c.Exec("ROLLBACK"); err != nil {
		t.Fatalf("rollback after poisoned batch: %v", err)
	}
	rows, err := c.Query("SELECT v FROM t WHERE k = 1")
	if err != nil || rows.Data[0][0].Int != 21 {
		t.Fatalf("poisoned write leaked: %v %v", rows, err)
	}

	// Empty and oversized batches are client-side errors.
	if res, err := c.Pipeline(nil); res != nil || err != nil {
		t.Fatalf("empty pipeline: %v %v", res, err)
	}
	big := make([]PipelineStmt, protocol.MaxBatch+1)
	if _, err := c.Pipeline(big); err == nil {
		t.Fatal("oversized pipeline accepted")
	}
	if !c.Healthy() {
		t.Fatal("connection should survive client-side validation errors")
	}
}
