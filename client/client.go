// Package client is the Go client for the mtdserver network front
// door: Dial opens one authenticated protocol connection, Conn offers
// Exec/Query/Prepare over it (including interactive transactions —
// BEGIN/COMMIT/ROLLBACK travel as ordinary statements), and Pool keeps
// a bounded set of healthy connections warm for concurrent workers.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/types"
)

// Client errors.
var (
	// ErrConnClosed: the connection was closed (locally or by a
	// transport failure) and can no longer carry requests.
	ErrConnClosed = errors.New("client: connection is closed")
	// ErrPoolClosed: Get after Pool.Close.
	ErrPoolClosed = errors.New("client: pool is closed")
)

// Config tells Dial where and who.
type Config struct {
	// Addr is the server's "host:port".
	Addr string
	// Tenant and Token are the handshake credentials.
	Tenant int64
	Token  string
	// DialTimeout bounds connection establishment plus the handshake
	// round-trip (default 5s).
	DialTimeout time.Duration
}

// Rows is a materialized query result.
type Rows struct {
	Columns []string
	Data    [][]types.Value
}

// Conn is one protocol connection: a single logical session on the
// server, carrying one request/response exchange at a time (methods
// serialize internally; use a Pool for concurrency).
type Conn struct {
	nc        net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	sessionID uint64

	reqMu  sync.Mutex
	broken bool // transport failed; the connection is dead
	closed bool
}

// Dial connects and performs the credentialed handshake.
func Dial(cfg Config) (*Conn, error) {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", cfg.Addr, timeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(timeout))
	c := &Conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	if err := protocol.WriteFrame(c.bw, protocol.Encode(&protocol.Hello{
		Version: protocol.Version,
		Tenant:  cfg.Tenant,
		Token:   cfg.Token,
	})); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	m, err := readMsg(c.br)
	if err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	switch m := m.(type) {
	case *protocol.HelloOK:
		c.sessionID = m.SessionID
		return c, nil
	case *protocol.Error:
		nc.Close()
		return nil, m
	}
	nc.Close()
	return nil, fmt.Errorf("client: unexpected handshake reply %T", m)
}

// SessionID is the server-assigned session id from the handshake.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// readMsg reads and decodes one frame.
func readMsg(r io.Reader) (any, error) {
	payload, err := protocol.ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return protocol.Decode(payload)
}

// roundTrip sends one message and reads one reply, marking the
// connection broken on any transport failure.
func (c *Conn) roundTrip(m any) (any, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	return c.roundTripLocked(m)
}

func (c *Conn) roundTripLocked(m any) (any, error) {
	if c.closed || c.broken {
		return nil, ErrConnClosed
	}
	if err := protocol.WriteFrame(c.bw, protocol.Encode(m)); err != nil {
		c.broken = true
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = true
		return nil, err
	}
	reply, err := readMsg(c.br)
	if err != nil {
		c.broken = true
		return nil, err
	}
	return reply, nil
}

// Exec runs one statement (DML, DDL, or transaction control) and
// returns the affected row count. A server-reported failure comes back
// as *protocol.Error (see ErrorCode); the connection stays usable.
func (c *Conn) Exec(sql string, params ...types.Value) (int64, error) {
	reply, err := c.roundTrip(&protocol.Exec{SQL: sql, Params: params})
	if err != nil {
		return 0, err
	}
	switch m := reply.(type) {
	case *protocol.Result:
		return m.RowsAffected, nil
	case *protocol.Error:
		return 0, m
	}
	return 0, c.protocolViolation(reply)
}

// Query runs a SELECT and materializes the streamed result.
func (c *Conn) Query(sql string, params ...types.Value) (*Rows, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	reply, err := c.roundTripLocked(&protocol.Query{SQL: sql, Params: params})
	if err != nil {
		return nil, err
	}
	return c.collectRowsLocked(reply)
}

// collectRowsLocked turns a RowsHeader + RowBatch* stream into Rows.
func (c *Conn) collectRowsLocked(first any) (*Rows, error) {
	switch m := first.(type) {
	case *protocol.Error:
		return nil, m
	case *protocol.RowsHeader:
		rows := &Rows{Columns: m.Columns}
		for {
			reply, err := readMsg(c.br)
			if err != nil {
				c.broken = true
				return nil, err
			}
			b, ok := reply.(*protocol.RowBatch)
			if !ok {
				return nil, c.protocolViolation(reply)
			}
			rows.Data = append(rows.Data, b.Rows...)
			if b.Last {
				return rows, nil
			}
		}
	}
	return nil, c.protocolViolation(first)
}

// protocolViolation marks the connection dead: the reply stream is out
// of sync with the requests, nothing after it can be trusted.
func (c *Conn) protocolViolation(got any) error {
	c.broken = true
	return fmt.Errorf("client: unexpected reply %T", got)
}

// --- pipelining --------------------------------------------------------------

// PipelineStmt is one statement in a pipelined batch. Query selects
// the streamed-rows reply shape; everything else answers a row count.
type PipelineStmt struct {
	Query  bool
	SQL    string
	Params []types.Value
}

// PipelineResult is one statement's outcome, index-matched to the
// batch. Exactly one of Err, Rows (queries), or RowsAffected (execs)
// is meaningful.
type PipelineResult struct {
	Err          error // *protocol.Error for server-side failures
	RowsAffected int64
	Rows         *Rows // non-nil for successful queries
}

// Poisoned reports that this statement was never executed because an
// earlier statement in the batch failed (see protocol.CodePoisoned).
func (r PipelineResult) Poisoned() bool {
	code, ok := ErrorCode(r.Err)
	return ok && code == protocol.CodePoisoned
}

// Pipeline sends all statements in one Batch frame and collects the
// tagged replies — one network round trip for the whole sequence
// instead of one per statement.
//
// The server executes strictly in order and stops at the first
// failure: the failing statement's result carries the real error, and
// every later statement comes back Poisoned (not executed). A
// transaction pipelined as BEGIN…COMMIT therefore cannot half-commit;
// on error the caller owns cleanup (typically a ROLLBACK — the
// connection itself stays usable).
//
// The returned slice always has len(stmts) entries unless the
// transport failed, in which case the error is non-nil and the
// connection is broken.
func (c *Conn) Pipeline(stmts []PipelineStmt) ([]PipelineResult, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	if len(stmts) > protocol.MaxBatch {
		return nil, fmt.Errorf("client: batch of %d exceeds protocol.MaxBatch (%d)", len(stmts), protocol.MaxBatch)
	}
	b := &protocol.Batch{Stmts: make([]protocol.BatchStmt, len(stmts))}
	for i, st := range stmts {
		b.Stmts[i] = protocol.BatchStmt{Query: st.Query, SQL: st.SQL, Params: st.Params}
	}

	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if c.closed || c.broken {
		return nil, ErrConnClosed
	}
	if err := protocol.WriteFrame(c.bw, protocol.Encode(b)); err != nil {
		c.broken = true
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = true
		return nil, err
	}

	results := make([]PipelineResult, len(stmts))
	seen := make([]bool, len(stmts))
	take := func(idx uint32) (int, error) {
		i := int(idx)
		if i >= len(stmts) || seen[i] {
			c.broken = true
			return 0, fmt.Errorf("client: batch reply for bad index %d", idx)
		}
		seen[i] = true
		return i, nil
	}
	for {
		reply, err := readMsg(c.br)
		if err != nil {
			c.broken = true
			return nil, err
		}
		switch m := reply.(type) {
		case *protocol.BatchResult:
			i, err := take(m.Index)
			if err != nil {
				return nil, err
			}
			results[i] = PipelineResult{RowsAffected: m.RowsAffected}
		case *protocol.BatchError:
			i, err := take(m.Index)
			if err != nil {
				return nil, err
			}
			results[i] = PipelineResult{Err: &protocol.Error{Code: m.Code, Msg: m.Msg}}
		case *protocol.BatchRowsHeader:
			i, err := take(m.Index)
			if err != nil {
				return nil, err
			}
			rows := &Rows{Columns: m.Columns}
			for {
				next, err := readMsg(c.br)
				if err != nil {
					c.broken = true
					return nil, err
				}
				rb, ok := next.(*protocol.RowBatch)
				if !ok {
					return nil, c.protocolViolation(next)
				}
				rows.Data = append(rows.Data, rb.Rows...)
				if rb.Last {
					break
				}
			}
			results[i] = PipelineResult{Rows: rows}
		case *protocol.BatchDone:
			for i := range seen {
				if !seen[i] {
					c.broken = true
					return nil, fmt.Errorf("client: BatchDone with statement %d unanswered", i)
				}
			}
			return results, nil
		case *protocol.Error:
			// A non-batch error (e.g. protocol-level) aborts the exchange;
			// the reply stream is no longer 1:1 with the batch.
			c.broken = true
			return nil, m
		default:
			return nil, c.protocolViolation(reply)
		}
	}
}

// Ping round-trips a health check.
func (c *Conn) Ping() error {
	reply, err := c.roundTrip(&protocol.Ping{})
	if err != nil {
		return err
	}
	if _, ok := reply.(*protocol.Pong); !ok {
		return c.protocolViolation(reply)
	}
	return nil
}

// ServerStats fetches the server's counters as JSON.
func (c *Conn) ServerStats() ([]byte, error) {
	reply, err := c.roundTrip(&protocol.Stats{})
	if err != nil {
		return nil, err
	}
	switch m := reply.(type) {
	case *protocol.StatsResult:
		return m.JSON, nil
	case *protocol.Error:
		return nil, m
	}
	return nil, c.protocolViolation(reply)
}

// Stmt is a server-side prepared statement bound to its connection.
type Stmt struct {
	c       *Conn
	id      uint32
	isQuery bool
}

// Prepare registers a statement on the server.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	reply, err := c.roundTrip(&protocol.Prepare{SQL: sql})
	if err != nil {
		return nil, err
	}
	switch m := reply.(type) {
	case *protocol.Prepared:
		return &Stmt{c: c, id: m.ID, isQuery: m.IsQuery}, nil
	case *protocol.Error:
		return nil, m
	}
	return nil, c.protocolViolation(reply)
}

// IsQuery reports whether the statement is a SELECT.
func (s *Stmt) IsQuery() bool { return s.isQuery }

// Exec executes the prepared statement.
func (s *Stmt) Exec(params ...types.Value) (int64, error) {
	reply, err := s.c.roundTrip(&protocol.StmtExec{ID: s.id, Params: params})
	if err != nil {
		return 0, err
	}
	switch m := reply.(type) {
	case *protocol.Result:
		return m.RowsAffected, nil
	case *protocol.Error:
		return 0, m
	}
	return 0, s.c.protocolViolation(reply)
}

// Query executes the prepared SELECT.
func (s *Stmt) Query(params ...types.Value) (*Rows, error) {
	s.c.reqMu.Lock()
	defer s.c.reqMu.Unlock()
	reply, err := s.c.roundTripLocked(&protocol.StmtQuery{ID: s.id, Params: params})
	if err != nil {
		return nil, err
	}
	return s.c.collectRowsLocked(reply)
}

// Close discards the prepared statement server-side.
func (s *Stmt) Close() error {
	reply, err := s.c.roundTrip(&protocol.StmtClose{ID: s.id})
	if err != nil {
		return err
	}
	if e, ok := reply.(*protocol.Error); ok {
		return e
	}
	return nil
}

// Healthy reports whether the connection can still carry requests.
func (c *Conn) Healthy() bool {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	return !c.closed && !c.broken
}

// Close sends a best-effort Goodbye and closes the socket. The server
// rolls back any transaction left open.
func (c *Conn) Close() error {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if !c.broken {
		if protocol.WriteFrame(c.bw, protocol.Encode(&protocol.Goodbye{})) == nil {
			c.bw.Flush()
		}
	}
	return c.nc.Close()
}

// ErrorCode extracts a server error code from err (a *protocol.Error
// anywhere in the chain); ok is false for transport-level errors.
func ErrorCode(err error) (code uint16, ok bool) {
	var pe *protocol.Error
	if errors.As(err, &pe) {
		return pe.Code, true
	}
	return 0, false
}

// IsConflict reports a first-updater-wins write conflict (the server
// rolled the transaction back; retry it).
func IsConflict(err error) bool {
	code, ok := ErrorCode(err)
	return ok && code == protocol.CodeConflict
}

// IsRateLimited reports a statement rejected by the tenant's rate
// limit (the connection is still usable; back off and retry).
func IsRateLimited(err error) bool {
	code, ok := ErrorCode(err)
	return ok && code == protocol.CodeRateLimit
}
