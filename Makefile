GO ?= go

.PHONY: all build vet test test-txn test-repl race race-bench bench-smoke bench-scaling bench-wide bench-recovery bench-txn bench-txn-smoke bench-net bench-net-smoke bench-net-pipeline bench-alter bench-alter-smoke bench-repl bench-repl-smoke fuzz-alter check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The interactive-transaction suite: engine anomaly/interleaving tests,
# the model-differential harness on its three fixed seeds (1, 2, 3), and
# the multi-statement-transaction crash-point sweep.
test-txn:
	$(GO) test ./internal/engine/ -run 'TestTxn|TestStmtRollback'
	$(GO) test ./internal/modeltest/ -run TestDifferentialSeeds -v
	$(GO) test ./internal/wal/ -run TestTxnCrashPointSweep

# The replication torture suite: primary- and follower-side crash-point
# sweeps (every append/ship/apply site), the lag/consistency property
# test across a mid-stream ALTER, the WAL tail-read race regressions,
# and the model-differential harness checked against a live follower.
test-repl:
	$(GO) test ./internal/repl/
	$(GO) test ./internal/wal/ -run 'TestCursor|TestReadDurable|TestIngest'
	$(GO) test ./internal/modeltest/ -run TestDifferentialReplica -v

race:
	$(GO) test -race ./...

# Race detector over the multi-session benchmark path: one iteration of
# every session count of the scaling sweep with -race enabled.
race-bench:
	$(GO) test -race -run NONE -bench BenchmarkMultiSessionScaling -benchtime 1x .

# One iteration of every benchmark: keeps benchmark code compiling and
# running without paying for full measurement (CI runs this).
bench-smoke:
	$(GO) test -run=XXX -bench=. -benchtime=1x .

# Regenerate BENCH_1.json (the machine-readable multi-session sweep).
bench-scaling:
	$(GO) run ./cmd/mtdbench -scaling -tenants 120 -rows 12 -actions 800 \
		-mem-mb 2 -latency 500us -json-out BENCH_1.json

# Regenerate BENCH_3.json (batch execution + column pruning vs the
# row-at-a-time baseline, plus the §6.2 chunk-width result-equality sweep).
bench-wide:
	$(GO) run ./cmd/mtdbench -widebench -json-out BENCH_3.json

# Regenerate BENCH_4.json (commit latency with/without group commit and
# recovery time vs checkpoint interval).
bench-recovery:
	$(GO) run ./cmd/mtdbench -recovery -json-out BENCH_4.json

# Regenerate BENCH_5.json (interactive transactions: commits/sec,
# conflict-abort rate, and p50/p99 commit latency vs session count).
bench-txn:
	$(GO) run ./cmd/mtdbench -txn -json-out BENCH_5.json

# Reduced -txn sweep (CI regression canary): exercises the full
# bench path in seconds and writes its JSON to the system temp dir.
bench-txn-smoke:
	$(GO) run ./cmd/mtdbench -txn -txn-smoke

# Regenerate BENCH_6.json (the CRM workload over the wire protocol:
# commits/sec, statements/sec, and p50/p99 whole-action latency at
# 64/256/1024 concurrent connections, plus the zero-leak drain check).
bench-net:
	$(GO) run ./cmd/mtdbench -net -json-out BENCH_6.json

# Reduced -net sweep (CI regression canary): the full network path —
# dial, handshake, auth, wire transactions, drain invariant — in
# seconds, writing its JSON to the system temp dir. Runs both frame
# modes so the zero-leak drain holds with pipelining on AND off.
bench-net-smoke:
	$(GO) run ./cmd/mtdbench -net -net-smoke
	$(GO) run ./cmd/mtdbench -net -net-smoke -net-pipeline=false

# Pipelining ablation: the full -net sweep with one Batch frame per
# action vs one round trip per statement, side by side.
bench-net-pipeline:
	$(GO) run ./cmd/mtdbench -net -json-out BENCH_6.json
	$(GO) run ./cmd/mtdbench -net -net-pipeline=false -json-out BENCH_6_nopipeline.json

# Regenerate BENCH_7.json (online schema evolution: CRM steady-state
# throughput before/during/after ALTERing every physical table and
# live-moving one tenant to another layout; target is a <10% dip).
bench-alter:
	$(GO) run ./cmd/mtdbench -alter -json-out BENCH_7.json

# Reduced -alter sweep (CI regression canary): the full churn path —
# online ALTERs, background backfill, the tenant move and its cutover —
# in under two seconds, writing its JSON to the system temp dir.
bench-alter-smoke:
	$(GO) run ./cmd/mtdbench -alter -alter-smoke

# Regenerate BENCH_8.json (WAL-shipping replication: routed read
# scaling over 0-3 replicas under a primary write load, plus replica
# catch-up after a 10k-commit backlog with lag converging to zero).
bench-repl:
	$(GO) run ./cmd/mtdbench -repl -json-out BENCH_8.json

# Reduced -repl sweep (CI regression canary): the full replication
# path — wire-protocol snapshot bootstrap, frame shipping, routed
# follower reads, ack telemetry — in seconds, writing its JSON to the
# system temp dir. The run itself asserts lag converges to 0 and the
# caught-up replica agrees with the primary.
bench-repl-smoke:
	$(GO) run ./cmd/mtdbench -repl -repl-smoke

# Short fuzz burst over the ALTER grammar: the parser must never panic
# and every accepted ALTER must round-trip through String().
fuzz-alter:
	$(GO) test ./internal/sql/ -fuzz FuzzParseAlter -fuzztime 20s

check: build vet test race race-bench bench-smoke
