// Package repro reproduces "Multi-Tenant Databases for Software as a
// Service: Schema-Mapping Techniques" (Aulbach, Grust, Jacobs, Kemper,
// Rittinger; SIGMOD 2008) as a Go library: the schema-mapping layer
// with Chunk Folding (internal/core), an embedded relational engine as
// the substrate (internal/engine and below), the paper's multi-tenant
// CRM testbed (internal/testbed), and the §6 chunk experiments
// (internal/chunkexp).
//
// The benchmark file in this package regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
package repro
