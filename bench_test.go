package repro

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/chunkexp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/testbed"
	"repro/internal/types"
)

// The benchmarks in this file regenerate the paper's tables and
// figures at laptop scale. Each benchmark reports the paper's metric
// as testing.B custom metrics; cmd/mtdbench and cmd/chunkbench print
// the same data as formatted tables at any scale.

// --- Table 1 -----------------------------------------------------------------

// BenchmarkTable1SchemaVariability reports the Table 1 configuration
// (instances and total tables) for each schema variability.
func BenchmarkTable1SchemaVariability(b *testing.B) {
	const tenants = 120
	for _, v := range []float64{0, 0.5, 0.65, 0.8, 1.0} {
		b.Run(fmt.Sprintf("variability=%.2f", v), func(b *testing.B) {
			var inst int
			for i := 0; i < b.N; i++ {
				inst = testbed.VariabilityConfig(v, tenants)
			}
			b.ReportMetric(float64(inst), "instances")
			b.ReportMetric(float64(inst*len(testbed.CRMTables)), "tables")
		})
	}
}

// --- Table 2 / Figure 7 -------------------------------------------------------

// BenchmarkTable2Fig7SchemaVariability runs the §5 experiment at one
// point per schema variability: fixed tenants, data, and sessions;
// variable instance count. Reported metrics are the Table 2 rows:
// throughput (actions/min), 95 % Select Light response time (ms), and
// the data/index buffer hit ratios (%). Run cmd/mtdbench for the full
// formatted table with baseline compliance.
func BenchmarkTable2Fig7SchemaVariability(b *testing.B) {
	const tenants = 60
	for _, v := range []float64{0, 0.5, 1.0} {
		v := v
		b.Run(fmt.Sprintf("variability=%.2f", v), func(b *testing.B) {
			bed, err := testbed.Setup(testbed.Config{
				Tenants:      tenants,
				Instances:    testbed.VariabilityConfig(v, tenants),
				RowsPerTable: 10,
				Sessions:     8,
				Actions:      400,
				Seed:         2008,
				MemoryBytes:  8 << 20,
				ReadLatency:  50 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res *testbed.Result
			for i := 0; i < b.N; i++ {
				res, err = bed.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Throughput(), "actions/min")
			b.ReportMetric(float64(res.Quantile(testbed.SelectLight, 0.95))/1e6, "selL-p95-ms")
			b.ReportMetric(100*res.Stats.Pool.HitRatio(storage.CatData), "data-hit-%")
			b.ReportMetric(100*res.Stats.Pool.HitRatio(storage.CatIndex), "index-hit-%")
		})
	}
}

// --- Multi-session scaling ----------------------------------------------------

// BenchmarkMultiSessionScaling sweeps the session count over the §4
// CRM workload at a fixed action budget and reports statements/sec
// plus scaling efficiency relative to one session (1.0 = perfect
// linear scaling). The memory budget is deliberately tight and misses
// carry simulated I/O latency, so the run is latency-bound the way the
// paper's disk-backed testbed was: sessions overlap their misses via
// the per-frame I/O latch while the sharded pool keeps the metadata
// path off a global mutex. cmd/mtdbench -scaling prints the same sweep
// as a table and emits BENCH_1.json.
func BenchmarkMultiSessionScaling(b *testing.B) {
	base := 0.0
	for _, sessions := range []int{1, 2, 4, 8, 16} {
		sessions := sessions
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				bed, err := testbed.Setup(testbed.Config{
					Tenants:      120,
					Instances:    1,
					RowsPerTable: 12,
					Sessions:     sessions,
					Actions:      400,
					Seed:         2008,
					MemoryBytes:  2 << 20,
					ReadLatency:  500 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := bed.Run()
				if err != nil {
					b.Fatal(err)
				}
				last = res.StatementsPerSec()
			}
			b.ReportMetric(last, "stmts/sec")
			if sessions == 1 {
				base = last
			}
			if base > 0 {
				b.ReportMetric(last/base, "speedup")
				b.ReportMetric(last/(base*float64(sessions)), "efficiency")
			}
		})
	}
}

// BenchmarkInsertModeAblation isolates the §5 insert anomaly: DB2's
// two insert methods. Best-fit refills holes left by deletes and keeps
// the relation compact but touches more pages per insert; append is
// faster per insert and leaves the relation sparse. The benchmark
// deletes half the rows, re-inserts, and reports the resulting page
// count.
func BenchmarkInsertModeAblation(b *testing.B) {
	for _, mode := range []storage.InsertMode{storage.InsertBestFit, storage.InsertAppend} {
		name := "best-fit"
		if mode == storage.InsertAppend {
			name = "append"
		}
		mode := mode
		b.Run(name, func(b *testing.B) {
			var pages int
			for i := 0; i < b.N; i++ {
				bed, err := testbed.Setup(testbed.Config{
					Tenants: 2, RowsPerTable: 300, Sessions: 1, Actions: 1,
					Seed: 7, InsertMode: mode, MemoryBytes: 8 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				// Punch holes, then insert heavily.
				for t := int64(1); t <= 2; t++ {
					if _, err := bed.Mapper.Exec(t, "DELETE FROM Account WHERE Id <= 250"); err != nil {
						b.Fatal(err)
					}
				}
				for t := 0; t < 2; t++ {
					q := bed.Workload.InsertSQL(benchRand(int64(t)), t, "Account", 250)
					if _, err := bed.Mapper.Exec(int64(t+1), q); err != nil {
						b.Fatal(err)
					}
				}
				tab, err := bed.DB.Catalog().Table("Account")
				if err != nil {
					b.Fatal(err)
				}
				pages = tab.Heap.NumPages()
			}
			b.ReportMetric(float64(pages), "heap-pages")
		})
	}
}

// --- Figures 9, 10, 11 ---------------------------------------------------------

// chunkSweepInstances builds the §6.2 configurations shared by the
// figure benchmarks.
func chunkSweepInstances(b *testing.B, widths []int) []*chunkexp.Instance {
	b.Helper()
	cfg := chunkexp.Config{Parents: 80, ChildrenPerParent: 8, MemoryBytes: 16 << 20}
	conv, err := chunkexp.NewConventional(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := conv.Load(); err != nil {
		b.Fatal(err)
	}
	out := []*chunkexp.Instance{conv}
	for _, w := range widths {
		in, err := chunkexp.NewChunk(cfg, w, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := in.Load(); err != nil {
			b.Fatal(err)
		}
		out = append(out, in)
	}
	return out
}

var fig9Widths = []int{3, 15, 90}
var fig9Scales = []int{3, 30, 90}

// BenchmarkFig9WarmCache times Q2 with a warm cache across chunk widths
// and scale factors (Figure 9's series).
func BenchmarkFig9WarmCache(b *testing.B) {
	for _, in := range chunkSweepInstances(b, fig9Widths) {
		for _, scale := range fig9Scales {
			in, scale := in, scale
			b.Run(fmt.Sprintf("%s/scale=%d", in.Name, scale), func(b *testing.B) {
				q := chunkexp.Q2(scale)
				if _, err := in.Query(q, types.NewInt(2)); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := in.Query(q, types.NewInt(2)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10LogicalReads reports Q2's logical page reads per
// execution (Figure 10's series).
func BenchmarkFig10LogicalReads(b *testing.B) {
	for _, in := range chunkSweepInstances(b, fig9Widths) {
		for _, scale := range fig9Scales {
			in, scale := in, scale
			b.Run(fmt.Sprintf("%s/scale=%d", in.Name, scale), func(b *testing.B) {
				q := chunkexp.Q2(scale)
				if _, err := in.Query(q, types.NewInt(2)); err != nil {
					b.Fatal(err)
				}
				in.DB.ResetStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := in.Query(q, types.NewInt(2)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reads := in.DB.Stats().Pool.TotalLogicalReads()
				b.ReportMetric(float64(reads)/float64(b.N), "logical-reads/op")
			})
		}
	}
}

// BenchmarkFig11ColdCache times Q2 with the buffer pool dropped before
// every execution (Figure 11's series).
func BenchmarkFig11ColdCache(b *testing.B) {
	for _, in := range chunkSweepInstances(b, fig9Widths) {
		for _, scale := range fig9Scales {
			in, scale := in, scale
			b.Run(fmt.Sprintf("%s/scale=%d", in.Name, scale), func(b *testing.B) {
				q := chunkexp.Q2(scale)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := in.DB.DropCaches(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := in.Query(q, types.NewInt(2)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 12 -------------------------------------------------------------------

// BenchmarkFig12FoldingVsVertical compares Chunk Folding with vertical
// partitioning under buffer pressure and reports the cold-cache
// improvement percentage (Figure 12).
func BenchmarkFig12FoldingVsVertical(b *testing.B) {
	cfg := chunkexp.Config{Parents: 60, ChildrenPerParent: 8, MemoryBytes: 1 << 20,
		ReadLatency: 40 * time.Microsecond}
	for _, w := range []int{3, 15, 90} {
		w := w
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			folded, err := chunkexp.NewChunk(cfg, w, false)
			if err != nil {
				b.Fatal(err)
			}
			if err := folded.Load(); err != nil {
				b.Fatal(err)
			}
			vert, err := chunkexp.NewVertical(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			if err := vert.Load(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var imp float64
			for i := 0; i < b.N; i++ {
				mf, err := folded.MeasureQ2(chunkexp.Q2(30), 2, 5)
				if err != nil {
					b.Fatal(err)
				}
				mv, err := vert.MeasureQ2(chunkexp.Q2(30), 2, 5)
				if err != nil {
					b.Fatal(err)
				}
				imp = chunkexp.Improvement(mf, mv)
			}
			b.ReportMetric(imp, "improvement-%")
		})
	}
}

// --- §6.2 Test 1 --------------------------------------------------------------------

// BenchmarkTest1NestedVsFlattened times Q2 under every optimizer ×
// transformation variant of Test 1.
func BenchmarkTest1NestedVsFlattened(b *testing.B) {
	cfg := chunkexp.Config{Parents: 60, ChildrenPerParent: 6, MemoryBytes: 16 << 20}
	for _, v := range chunkexp.Test1Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			in, err := chunkexp.NewTest1Instance(cfg, v)
			if err != nil {
				b.Fatal(err)
			}
			if err := in.Load(); err != nil {
				b.Fatal(err)
			}
			q := chunkexp.Q2(6)
			if _, err := in.Query(q, types.NewInt(2)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Query(q, types.NewInt(2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- "Additional tests": grouping queries -----------------------------------------

// BenchmarkGroupingOverChunks times the roll-up query over chunk widths
// (the paper's observation that grouping queries over the narrowest
// chunks can be an order of magnitude slower than conventional).
func BenchmarkGroupingOverChunks(b *testing.B) {
	for _, in := range chunkSweepInstances(b, []int{3, 90}) {
		in := in
		b.Run(in.Name, func(b *testing.B) {
			q := chunkexp.Q2Grouping(30)
			if _, err := in.Query(q, types.NewInt(2)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Query(q, types.NewInt(2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Layout micro-benchmarks --------------------------------------------------------

// BenchmarkLayoutPointQuery compares a single-entity lookup across all
// schema-mapping layouts (the consolidation/performance trade-off of
// §3 made measurable).
func BenchmarkLayoutPointQuery(b *testing.B) {
	schema := &core.Schema{
		Tables: []*core.Table{{
			Name: "Account", Key: "Aid",
			Columns: []core.Column{
				{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Name", Type: types.VarcharType(50)},
				{Name: "Industry", Type: types.VarcharType(30)},
			},
		}},
		Extensions: []*core.Extension{
			{Name: "HealthcareAccount", Base: "Account", Columns: []core.Column{
				{Name: "Beds", Type: types.IntType},
			}},
		},
	}
	layouts := map[string]func() (core.Layout, error){
		"private":   func() (core.Layout, error) { return core.NewPrivateLayout(schema) },
		"extension": func() (core.Layout, error) { return core.NewExtensionLayout(schema) },
		"universal": func() (core.Layout, error) { return core.NewUniversalLayout(schema, 8) },
		"pivot":     func() (core.Layout, error) { return core.NewPivotLayout(schema, true) },
		"chunk": func() (core.Layout, error) {
			return core.NewChunkLayout(schema, core.ChunkOptions{})
		},
		"chunkfold": func() (core.Layout, error) {
			return core.NewChunkFoldingLayout(schema, core.FoldingOptions{})
		},
	}
	for name, mk := range layouts {
		name, mk := name, mk
		b.Run(name, func(b *testing.B) {
			l, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			db := engine.Open(engine.Config{})
			if err := l.Create(db, []*core.Tenant{{ID: 1, Extensions: []string{"HealthcareAccount"}}}); err != nil {
				b.Fatal(err)
			}
			m := core.NewMapper(db, l)
			for i := 1; i <= 100; i++ {
				q := fmt.Sprintf("INSERT INTO Account (Aid, Name, Industry, Beds) VALUES (%d, 'a%d', 'i%d', %d)", i, i, i%5, i)
				if _, err := m.Exec(1, q); err != nil {
					b.Fatal(err)
				}
			}
			q := "SELECT Name, Beds FROM Account WHERE Aid = ?"
			if _, err := m.Query(1, q, types.NewInt(7)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Query(1, q, types.NewInt(int64(1+i%100))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Batch execution + column pruning ------------------------------------------------

// wideTableFixture builds a 20-column table — 16 VARCHAR attributes
// around 4 INTEGER columns — the universal-table shape whose wide rows
// make narrow projections expensive without column pruning.
func wideTableFixture(b *testing.B, rows int) *catalog.Catalog {
	b.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(0), 64<<20)
	cat := catalog.New(pool, catalog.Config{MemoryBytes: 64 << 20})
	cols := []catalog.Column{
		{Name: "k0", Type: types.IntType, NotNull: true},
		{Name: "k1", Type: types.IntType},
	}
	for i := 0; i < 16; i++ {
		cols = append(cols, catalog.Column{Name: fmt.Sprintf("attr%02d", i), Type: types.StringType})
	}
	cols = append(cols,
		catalog.Column{Name: "k2", Type: types.IntType},
		catalog.Column{Name: "k3", Type: types.IntType},
	)
	tab, err := cat.CreateTable("wide", cols)
	if err != nil {
		b.Fatal(err)
	}
	r := benchRand(2008)
	row := make([]types.Value, len(cols))
	for i := 1; i <= rows; i++ {
		row[0] = types.NewInt(int64(i))
		row[1] = types.NewInt(int64(r.Intn(1000)))
		for j := 0; j < 16; j++ {
			row[2+j] = types.NewString(fmt.Sprintf("attribute-%02d-value-%06d", j, r.Intn(1_000_000)))
		}
		row[18] = types.NewInt(int64(r.Intn(1000)))
		row[19] = types.NewInt(int64(r.Intn(1000)))
		if _, err := tab.InsertRow(row); err != nil {
			b.Fatal(err)
		}
	}
	return cat
}

func planBench(b *testing.B, cat *catalog.Catalog, query string) plan.Node {
	b.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	n, err := plan.New(cat, plan.Sophisticated).PlanStatement(st)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkWideTableNarrowProjection is the headline measurement of the
// batching + pruning work: a 4-of-20-column projection with a filter
// over a wide heap, run through the batch path with column pruning
// ("batch") and through the row-at-a-time path with pruning disabled
// ("row-baseline", the pre-batching executor's behaviour). BENCH_3.json
// (cmd/mtdbench -widebench) records the same comparison.
func BenchmarkWideTableNarrowProjection(b *testing.B) {
	cat := wideTableFixture(b, 2000)
	const query = "SELECT k0, k1, k2, k3 FROM wide WHERE k1 > 100"
	b.Run("batch", func(b *testing.B) {
		n := planBench(b, cat, query)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := exec.Collect(n, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("row-baseline", func(b *testing.B) {
		n := planBench(b, cat, query)
		plan.DisablePruning(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := exec.CollectRowAtATime(n, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

// BenchmarkWideTableAggregate measures a grouping roll-up over the same
// wide heap: aggregation consumes batches without retaining rows, so
// the batch path's advantage compounds.
func BenchmarkWideTableAggregate(b *testing.B) {
	cat := wideTableFixture(b, 2000)
	const query = "SELECT k1, COUNT(*), SUM(k2) FROM wide GROUP BY k1"
	b.Run("batch", func(b *testing.B) {
		n := planBench(b, cat, query)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Collect(n, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row-baseline", func(b *testing.B) {
		n := planBench(b, cat, query)
		plan.DisablePruning(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exec.CollectRowAtATime(n, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchRand builds a deterministic rand source for benchmark data.
func benchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed + 99)) }
