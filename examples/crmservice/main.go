// crmservice runs the paper's hosted-CRM testbed (§4) for a short
// burst: the ten-table Figure 5 schema, a tenant population spread over
// schema instances, concurrent worker sessions dealing the Figure 6
// action mix, and the §5 metric block at the end.
//
//	go run ./examples/crmservice
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/storage"
	"repro/internal/testbed"
)

func main() {
	cfg := testbed.Config{
		Tenants:      24,
		Instances:    testbed.VariabilityConfig(0.5, 24),
		RowsPerTable: 10,
		Sessions:     6,
		Actions:      600,
		Seed:         2008,
		MemoryBytes:  16 << 20,
		ReadLatency:  40 * time.Microsecond,
	}
	fmt.Printf("hosted CRM service: %d tenants on %d schema instances (%d tables), %d sessions\n",
		cfg.Tenants, cfg.Instances, cfg.Instances*len(testbed.CRMTables), cfg.Sessions)

	bed, err := testbed.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset loaded; dealing action cards...")
	res, err := bed.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted %d actions in %v (%.0f actions/min), %d errors\n",
		res.TotalActions(), res.Elapsed.Round(time.Millisecond), res.Throughput(), res.Errors)
	fmt.Println("95% response times per class:")
	for c := testbed.SelectLight; c <= testbed.UpdateHeavy; c++ {
		fmt.Printf("  %-14s %8.2f ms  (%d actions)\n",
			c, float64(res.Quantile(c, 0.95))/float64(time.Millisecond), len(res.Durations[c]))
	}
	fmt.Printf("buffer pool: data hit %.2f%%, index hit %.2f%% (capacity %d pages)\n",
		100*res.Stats.Pool.HitRatio(storage.CatData),
		100*res.Stats.Pool.HitRatio(storage.CatIndex),
		res.Stats.Pool.Capacity)
	fmt.Printf("meta-data budget: %d tables consuming %d KiB\n",
		res.Stats.Tables, res.Stats.MetaBytes/1024)
}
