// migration demonstrates the paper's §7 ongoing-work goal: migrating
// tenants from one schema-mapping representation to another on-the-fly.
// A service that started every tenant on Private Tables (fast, simple)
// hits the meta-data wall as tenants multiply (§5); this program moves
// the long tail of small tenants onto Chunk Folding — tenant by tenant,
// verifying each — while big tenants keep their private tables.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
)

func schema() *core.Schema {
	return &core.Schema{
		Tables: []*core.Table{{
			Name: "Account",
			Key:  "Aid",
			Columns: []core.Column{
				{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Name", Type: types.VarcharType(50)},
				{Name: "Balance", Type: types.FloatType},
			},
		}},
		Extensions: []*core.Extension{
			{Name: "HealthcareAccount", Base: "Account", Columns: []core.Column{
				{Name: "Beds", Type: types.IntType},
			}},
		},
	}
}

func main() {
	const tenants = 12

	// Day 1: everyone on Private Tables.
	src, err := core.NewPrivateLayout(schema())
	fatal(err)
	srcDB := engine.Open(engine.Config{})
	var tns []*core.Tenant
	for i := 1; i <= tenants; i++ {
		tn := &core.Tenant{ID: int64(i)}
		if i%3 == 0 {
			tn.Extensions = []string{"HealthcareAccount"}
		}
		tns = append(tns, tn)
	}
	fatal(src.Create(srcDB, tns))
	sm := core.NewMapper(srcDB, src)
	for i := 1; i <= tenants; i++ {
		for a := 1; a <= 15; a++ {
			q := fmt.Sprintf("INSERT INTO Account (Aid, Name, Balance) VALUES (%d, 'acct-%d', %d.50)", a, a, a*100)
			if _, err := sm.Exec(int64(i), q); err != nil {
				log.Fatal(err)
			}
		}
		if i%3 == 0 {
			if _, err := sm.Exec(int64(i), "UPDATE Account SET Beds = Aid * 10 WHERE Aid <= 5"); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("source (private layout): %d tables for %d tenants\n", srcDB.Stats().Tables, tenants)

	// Day 400: the meta-data budget hurts; fold the tenants.
	dst, err := core.NewChunkFoldingLayout(schema(), core.FoldingOptions{})
	fatal(err)
	dstDB := engine.Open(engine.Config{})
	fatal(dst.Create(dstDB, cloneTenants(tns)))
	dm := core.NewMapper(dstDB, dst)
	mig := core.NewMigrator(sm, dm)

	for _, tn := range tns {
		if err := mig.MigrateTenant(tn.ID); err != nil {
			log.Fatalf("tenant %d: %v", tn.ID, err)
		}
		// In production this is the point where the tenant's routing
		// flips from src to dst; reads stayed on-line on src throughout.
	}
	fatal(mig.Verify())
	fmt.Printf("destination (chunk folding): %d tables for the same %d tenants\n",
		dstDB.Stats().Tables, tenants)

	// Every tenant keeps answering the same logical SQL.
	rows, err := dm.Query(3, "SELECT Name, Beds FROM Account WHERE Aid = 5")
	fatal(err)
	fmt.Printf("tenant 3 after migration: Name=%v Beds=%v\n", rows.Data[0][0], rows.Data[0][1])
	rows, err = dm.Query(1, "SELECT SUM(Balance) FROM Account")
	fatal(err)
	fmt.Printf("tenant 1 balance sum after migration: %v\n", rows.Data[0][0])
	fmt.Println("migration verified: every logical row identical in both representations")
}

func cloneTenants(in []*core.Tenant) []*core.Tenant {
	out := make([]*core.Tenant, len(in))
	for i, t := range in {
		out[i] = &core.Tenant{ID: t.ID, Extensions: append([]string(nil), t.Extensions...)}
	}
	return out
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
