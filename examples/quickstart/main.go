// Quickstart: the paper's running example (Figure 4) on Chunk Folding.
//
// Three tenants share one hosted Account application. Tenant 17 runs a
// health-care business and extends Account with Hospital and Beds;
// tenant 42 extends it with Dealers for the automotive industry;
// tenant 35 uses the plain base schema. Chunk Folding stores the base
// table conventionally and folds the extensions into generic chunk
// tables — each tenant still sees a private logical Account table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
)

func main() {
	// 1. The logical schema: one base table, two industry extensions.
	schema := &core.Schema{
		Tables: []*core.Table{{
			Name: "Account",
			Key:  "Aid",
			Columns: []core.Column{
				{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Name", Type: types.VarcharType(50)},
			},
		}},
		Extensions: []*core.Extension{
			{Name: "HealthcareAccount", Base: "Account", Columns: []core.Column{
				{Name: "Hospital", Type: types.VarcharType(50)},
				{Name: "Beds", Type: types.IntType},
			}},
			{Name: "AutomotiveAccount", Base: "Account", Columns: []core.Column{
				{Name: "Dealers", Type: types.IntType},
			}},
		},
	}

	// 2. Pick a schema-mapping layout: Chunk Folding (Figure 4f).
	layout, err := core.NewChunkFoldingLayout(schema, core.FoldingOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Provision the multi-tenant physical schema.
	db := engine.Open(engine.Config{})
	tenants := []*core.Tenant{
		{ID: 17, Extensions: []string{"HealthcareAccount"}},
		{ID: 35},
		{ID: 42, Extensions: []string{"AutomotiveAccount"}},
	}
	if err := layout.Create(db, tenants); err != nil {
		log.Fatal(err)
	}
	m := core.NewMapper(db, layout)

	// 4. Each tenant writes through its own logical schema.
	mustExec(m, 17, "INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (1, 'Acme', 'St. Mary', 135), (2, 'Gump', 'State', 1042)")
	mustExec(m, 35, "INSERT INTO Account (Aid, Name) VALUES (1, 'Ball')")
	mustExec(m, 42, "INSERT INTO Account (Aid, Name, Dealers) VALUES (1, 'Big', 65)")

	// 5. Query Q1 from the paper, transformed automatically.
	q1 := "SELECT Beds FROM Account WHERE Hospital = 'State'"
	fmt.Println("tenant 17:", q1)
	phys, _ := m.RewriteSQL(17, q1)
	fmt.Println("  physical:", phys[0])
	rows, err := m.Query(17, q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ->", rows.Data[0][0]) // 1042

	// 6. Tenants see only their own columns and rows.
	for _, tenant := range []int64{17, 35, 42} {
		rows, err := m.Query(tenant, "SELECT * FROM Account")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %d columns: %v, rows: %d\n", tenant, rows.Columns, len(rows.Data))
	}

	// 7. Updates and deletes run through the two-phase DML protocol.
	mustExec(m, 17, "UPDATE Account SET Beds = Beds + 10 WHERE Name = 'Acme'")
	res, err := m.Exec(17, "DELETE FROM Account WHERE Beds > 1000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant 17 deleted %d row(s)\n", res.RowsAffected)

	fmt.Printf("physical tables used: %d (for any number of tenants)\n", db.Stats().Tables)
}

func mustExec(m *core.Mapper, tenant int64, q string) {
	if _, err := m.Exec(tenant, q); err != nil {
		log.Fatalf("tenant %d: %s: %v", tenant, q, err)
	}
}
