// layoutcompare runs an identical multi-tenant workload through every
// schema-mapping layout of the paper's Figure 4 and compares what each
// costs: physical tables (the meta-data budget), total pages, and query
// latency. It makes the paper's §3 trade-off table concrete:
// consolidation vs extensibility vs performance.
//
//	go run ./examples/layoutcompare
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
)

const tenants = 30

func schema() *core.Schema {
	return &core.Schema{
		Tables: []*core.Table{
			{
				Name: "Account",
				Key:  "Aid",
				Columns: []core.Column{
					{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
					{Name: "Name", Type: types.VarcharType(50)},
					{Name: "Industry", Type: types.VarcharType(30)},
					{Name: "Since", Type: types.DateType},
				},
			},
			{
				Name: "Contact",
				Key:  "Cid",
				Columns: []core.Column{
					{Name: "Cid", Type: types.IntType, NotNull: true, Indexed: true},
					{Name: "AccountId", Type: types.IntType, Indexed: true},
					{Name: "LastName", Type: types.VarcharType(40)},
				},
			},
		},
		Extensions: []*core.Extension{
			{Name: "HealthcareAccount", Base: "Account", Columns: []core.Column{
				{Name: "Hospital", Type: types.VarcharType(50)},
				{Name: "Beds", Type: types.IntType},
			}},
			{Name: "AutomotiveAccount", Base: "Account", Columns: []core.Column{
				{Name: "Dealers", Type: types.IntType},
			}},
		},
	}
}

func buildTenants() []*core.Tenant {
	out := make([]*core.Tenant, tenants)
	for i := range out {
		t := &core.Tenant{ID: int64(i + 1)}
		switch i % 3 {
		case 0:
			t.Extensions = []string{"HealthcareAccount"}
		case 1:
			t.Extensions = []string{"AutomotiveAccount"}
		}
		out[i] = t
	}
	return out
}

func main() {
	type build struct {
		name string
		mk   func(*core.Schema) (core.Layout, error)
	}
	builds := []build{
		{"private (4a)", func(s *core.Schema) (core.Layout, error) { return core.NewPrivateLayout(s) }},
		{"extension (4b)", func(s *core.Schema) (core.Layout, error) { return core.NewExtensionLayout(s) }},
		{"universal (4c)", func(s *core.Schema) (core.Layout, error) { return core.NewUniversalLayout(s, 16) }},
		{"pivot (4d)", func(s *core.Schema) (core.Layout, error) { return core.NewPivotLayout(s, true) }},
		{"chunk (4e)", func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkLayout(s, core.ChunkOptions{})
		}},
		{"chunkfold (4f)", func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkFoldingLayout(s, core.FoldingOptions{ConventionalExtensions: []string{"HealthcareAccount"}})
		}},
		{"vertical (f12)", func(s *core.Schema) (core.Layout, error) { return core.NewVerticalLayout(s, nil) }},
	}

	fmt.Printf("%-16s %8s %8s %12s %12s\n", "layout", "tables", "pages", "point-query", "report-query")
	for _, bl := range builds {
		l, err := bl.mk(schema())
		if err != nil {
			log.Fatalf("%s: %v", bl.name, err)
		}
		db := engine.Open(engine.Config{})
		if err := l.Create(db, buildTenants()); err != nil {
			log.Fatalf("%s create: %v", bl.name, err)
		}
		m := core.NewMapper(db, l)
		// Identical per-tenant data.
		for i := 1; i <= tenants; i++ {
			tid := int64(i)
			for a := 1; a <= 20; a++ {
				q := fmt.Sprintf("INSERT INTO Account (Aid, Name, Industry, Since) VALUES (%d, 'acct%d', 'ind%d', DATE '2008-01-%02d')",
					a, a, a%4, 1+a%28)
				if _, err := m.Exec(tid, q); err != nil {
					log.Fatalf("%s insert: %v", bl.name, err)
				}
				q = fmt.Sprintf("INSERT INTO Contact (Cid, AccountId, LastName) VALUES (%d, %d, 'last%d')", a, a, a%7)
				if _, err := m.Exec(tid, q); err != nil {
					log.Fatalf("%s insert: %v", bl.name, err)
				}
			}
		}
		point := timeQuery(m, "SELECT Name, Industry FROM Account WHERE Aid = 7")
		report := timeQuery(m, "SELECT a.Industry, COUNT(*) FROM Account a, Contact c WHERE c.AccountId = a.Aid GROUP BY a.Industry")
		st := db.Stats()
		fmt.Printf("%-16s %8d %8d %9.0f µs %9.0f µs\n",
			bl.name, st.Tables, db.Disk().NumPages(),
			float64(point)/float64(time.Microsecond), float64(report)/float64(time.Microsecond))
	}
	fmt.Println("\ntables: physical table count after provisioning", tenants, "tenants —")
	fmt.Println("the meta-data budget each layout spends (private grows per tenant,")
	fmt.Println("extension per distinct extension, generic layouts stay constant).")
}

// timeQuery averages the latency of one query across all tenants.
func timeQuery(m *core.Mapper, q string) time.Duration {
	// Warm up.
	if _, err := m.Query(1, q); err != nil {
		log.Fatalf("%s: %v", q, err)
	}
	t0 := time.Now()
	n := 0
	for i := 1; i <= tenants; i++ {
		if _, err := m.Query(int64(i), q); err != nil {
			log.Fatal(err)
		}
		n++
	}
	return time.Since(t0) / time.Duration(n)
}
