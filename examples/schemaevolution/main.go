// schemaevolution demonstrates the on-line schema changes the paper
// requires of a SaaS database (§3: generic structures "allow the
// logical schemas to be modified without changing the physical schema,
// which is important because many databases cannot perform DDL
// operations while they are on-line"):
//
//   - new tenants arrive while queries from other tenants keep running,
//   - an existing tenant enables an extension on-line and immediately
//     reads/writes the new columns,
//   - all of it without any CREATE/ALTER TABLE against the chunk tables.
//
// go run ./examples/schemaevolution
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
)

func main() {
	schema := &core.Schema{
		Tables: []*core.Table{{
			Name: "Ticket",
			Key:  "Tid",
			Columns: []core.Column{
				{Name: "Tid", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Title", Type: types.VarcharType(80)},
				{Name: "Opened", Type: types.DateType},
			},
		}},
		Extensions: []*core.Extension{
			{Name: "SLATicket", Base: "Ticket", Columns: []core.Column{
				{Name: "Deadline", Type: types.DateType},
				{Name: "Severity", Type: types.IntType},
			}},
		},
	}
	layout, err := core.NewChunkLayout(schema, core.ChunkOptions{})
	if err != nil {
		log.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := layout.Create(db, []*core.Tenant{{ID: 1}, {ID: 2}}); err != nil {
		log.Fatal(err)
	}
	m := core.NewMapper(db, layout)

	for t := int64(1); t <= 2; t++ {
		for i := 1; i <= 50; i++ {
			q := fmt.Sprintf("INSERT INTO Ticket (Tid, Title, Opened) VALUES (%d, 'ticket %d', DATE '2008-06-%02d')", i, i, 1+i%28)
			if _, err := m.Exec(t, q); err != nil {
				log.Fatal(err)
			}
		}
	}
	tablesBefore := db.Stats().Tables

	// Background load: tenant 1 keeps querying while the schema evolves.
	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := m.Query(1, "SELECT COUNT(*) FROM Ticket WHERE Opened >= DATE '2008-06-10'"); err != nil {
					log.Fatal(err)
				}
				queries.Add(1)
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)

	// On-line change 1: a new tenant arrives — pure meta-data.
	if err := layout.AddTenant(db, &core.Tenant{ID: 3, Extensions: []string{"SLATicket"}}); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Exec(3, "INSERT INTO Ticket (Tid, Title, Opened, Deadline, Severity) VALUES (1, 'first', DATE '2008-06-12', DATE '2008-06-15', 2)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant 3 provisioned and writing, while tenant 1 stays on-line")

	// On-line change 2: tenant 2 enables the SLA extension; its
	// existing rows read NULL in the new columns immediately.
	if err := layout.ExtendTenant(db, 2, "SLATicket"); err != nil {
		log.Fatal(err)
	}
	rows, err := m.Query(2, "SELECT Tid, Deadline FROM Ticket WHERE Tid = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant 2 after ExtendTenant: Tid=%v Deadline=%v (NULL until set)\n",
		rows.Data[0][0], rows.Data[0][1])
	if _, err := m.Exec(2, "UPDATE Ticket SET Deadline = DATE '2008-07-01', Severity = 1 WHERE Tid = 1"); err != nil {
		log.Fatal(err)
	}
	rows, _ = m.Query(2, "SELECT Deadline, Severity FROM Ticket WHERE Tid = 1")
	fmt.Printf("tenant 2 SLA columns now: %v / %v\n", rows.Data[0][0], rows.Data[0][1])

	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("background sessions ran %d queries during the schema changes\n", queries.Load())
	fmt.Printf("physical tables before/after: %d/%d — no DDL was needed\n",
		tablesBefore, db.Stats().Tables)
	asg, _ := layout.Assignment(2, "Ticket")
	fmt.Print("tenant 2 chunk assignment after evolution:\n", asg)
}
