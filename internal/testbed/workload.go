package testbed

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/core"
)

// ActionClass enumerates the Figure 6 worker action classes.
type ActionClass int

// Action classes, with the card-deck share from Figure 6.
const (
	SelectLight ActionClass = iota
	SelectHeavy
	InsertLight
	InsertHeavy
	UpdateLight
	UpdateHeavy
	Admin
	numClasses
)

// ClassName returns the Figure 6 label.
func (c ActionClass) String() string {
	switch c {
	case SelectLight:
		return "Select Light"
	case SelectHeavy:
		return "Select Heavy"
	case InsertLight:
		return "Insert Light"
	case InsertHeavy:
		return "Insert Heavy"
	case UpdateLight:
		return "Update Light"
	case UpdateHeavy:
		return "Update Heavy"
	case Admin:
		return "Administrative"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// deckCounts is the Figure 6 distribution over a 10,000-card deck:
// 50%, 15%, 9.59%, 0.3%, 17.6%, 7.5%, 0.01%.
var deckCounts = map[ActionClass]int{
	SelectLight: 5000,
	SelectHeavy: 1500,
	InsertLight: 959,
	InsertHeavy: 30,
	UpdateLight: 1760,
	UpdateHeavy: 750,
	Admin:       1,
}

// BuildDeck creates and shuffles one card deck (the Controller's
// TPC-C-style card deck, §4).
func BuildDeck(r *rand.Rand) []ActionClass {
	deck := make([]ActionClass, 0, 10000)
	for c, n := range deckCounts {
		for i := 0; i < n; i++ {
			deck = append(deck, c)
		}
	}
	r.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	return deck
}

// industries, stages, statuses are the categorical domains of the
// generator.
var (
	industries = []string{"health", "auto", "retail", "finance", "energy", "telco", "media", "logistics"}
	stages     = []string{"prospect", "qualify", "propose", "close", "won", "lost"}
	statuses   = []string{"new", "open", "pending", "closed"}
)

// Workload generates the per-tenant SQL of the testbed actions. It
// tracks per-(tenant, table) entity-ID sequences so inserts never
// collide.
type Workload struct {
	instances int
	tenants   int
	rows      int // base rows per tenant per table

	mu     sync.Mutex
	nextID map[string]int64

	// tenantDefs, when set via SetTenants, makes the workload
	// extension-aware: inserts populate extension columns and the heavy
	// selects include extension reports (the paper's §7 plan of
	// "enhancing the testbed to include extension tables as well as
	// base tables").
	tenantDefs []*core.Tenant

	// batch sizes for the heavy actions (scaled-down defaults; the
	// paper used several hundred).
	InsertHeavyBatch int
	UpdateHeavyBatch int
}

// NewWorkload builds a workload generator for a testbed population.
func NewWorkload(tenants, instances, rowsPerTable int) *Workload {
	return &Workload{
		instances:        instances,
		tenants:          tenants,
		rows:             rowsPerTable,
		nextID:           map[string]int64{},
		InsertHeavyBatch: 50,
		UpdateHeavyBatch: 20,
	}
}

// SetTenants informs the workload of each tenant's extension set.
func (w *Workload) SetTenants(tns []*core.Tenant) { w.tenantDefs = tns }

// tenantHasExt reports whether a tenant (0-based index) enabled the
// given extension of its schema instance.
func (w *Workload) tenantHasExt(tenantIdx int, extBase string) bool {
	if w.tenantDefs == nil || tenantIdx >= len(w.tenantDefs) {
		return false
	}
	return w.tenantDefs[tenantIdx].HasExtension(extBase + w.suffixFor(tenantIdx))
}

// TenantInstance maps a tenant index (0-based) to its schema instance,
// distributing tenants "as evenly as possible among the schema
// instances" (§5): the first tenants%instances instances get one extra.
func TenantInstance(tenantIdx, tenants, instances int) int {
	if instances <= 1 {
		return 0
	}
	base := tenants / instances
	extra := tenants % instances
	cut := extra * (base + 1)
	if tenantIdx < cut {
		return tenantIdx / (base + 1)
	}
	return extra + (tenantIdx-cut)/base
}

// suffixFor returns the table suffix of a tenant's schema instance.
func (w *Workload) suffixFor(tenantIdx int) string {
	return InstanceSuffix(TenantInstance(tenantIdx, w.tenants, w.instances), w.instances)
}

// TableFor qualifies a base table name for a tenant.
func (w *Workload) TableFor(tenantIdx int, base string) string {
	return base + w.suffixFor(tenantIdx)
}

func (w *Workload) allocIDs(tenantIdx int, table string, n int64) int64 {
	key := fmt.Sprintf("%d/%s", tenantIdx, strings.ToLower(table))
	w.mu.Lock()
	defer w.mu.Unlock()
	id, ok := w.nextID[key]
	if !ok {
		id = int64(w.rows) + 1
	}
	w.nextID[key] = id + n
	return id
}

// insertColumns lists the generator-populated columns of a base table.
func insertColumns(base string) []string {
	cols := []string{"Id"}
	for _, p := range crmParents[base] {
		cols = append(cols, p+"Id")
	}
	switch base {
	case "Account":
		cols = append(cols, "Name", "Industry")
	case "Campaign":
		cols = append(cols, "Name", "StartDate")
	case "Lead":
		cols = append(cols, "Status")
	case "Opportunity":
		cols = append(cols, "Stage", "CloseDate")
	case "Asset":
		cols = append(cols, "SerialNo")
	case "Contact":
		cols = append(cols, "LastName", "FirstName")
	case "Case":
		cols = append(cols, "Status")
	case "Contract":
		cols = append(cols, "EndDate")
	case "LineItem":
		cols = append(cols, "Quantity")
	case "Product":
		cols = append(cols, "Sku")
	}
	return append(cols, "Attr00", "Attr01", "Attr02", "Attr03")
}

// insertColumnsFor extends the base column list with the tenant's
// extension columns.
func (w *Workload) insertColumnsFor(tenantIdx int, base string) []string {
	cols := insertColumns(base)
	if base == "Account" {
		if w.tenantHasExt(tenantIdx, "HealthcareAccount") {
			cols = append(cols, "Hospital", "Beds")
		}
		if w.tenantHasExt(tenantIdx, "AutomotiveAccount") {
			cols = append(cols, "Dealers")
		}
	}
	if base == "Case" && w.tenantHasExt(tenantIdx, "RegulatedCase") {
		cols = append(cols, "Regulator", "DueDate")
	}
	return cols
}

// valueFor renders a literal for one insert column.
func (w *Workload) valueFor(r *rand.Rand, base, col string, id int64) string {
	switch {
	case col == "Id":
		return fmt.Sprintf("%d", id)
	case strings.HasSuffix(col, "Id"): // foreign key
		return fmt.Sprintf("%d", 1+r.Intn(maxInt(w.rows, 1)))
	case col == "Name":
		return fmt.Sprintf("'%s-%d'", strings.ToLower(base), id)
	case col == "Industry":
		return "'" + industries[r.Intn(len(industries))] + "'"
	case col == "Stage":
		return "'" + stages[r.Intn(len(stages))] + "'"
	case col == "Status":
		return "'" + statuses[r.Intn(len(statuses))] + "'"
	case col == "SerialNo", col == "Sku":
		return fmt.Sprintf("'sn-%d-%d'", id, r.Intn(1000))
	case col == "LastName":
		return fmt.Sprintf("'last%d'", r.Intn(200))
	case col == "FirstName":
		return fmt.Sprintf("'first%d'", r.Intn(200))
	case col == "Hospital":
		return fmt.Sprintf("'hospital-%d'", r.Intn(20))
	case col == "Regulator":
		return fmt.Sprintf("'agency-%d'", r.Intn(5))
	case col == "Beds", col == "Dealers":
		return fmt.Sprintf("%d", r.Intn(500))
	case col == "StartDate", col == "CloseDate", col == "EndDate", col == "DueDate", col == "Attr02":
		return fmt.Sprintf("DATE '2008-%02d-%02d'", 1+r.Intn(12), 1+r.Intn(28))
	case col == "Quantity", col == "Attr01":
		return fmt.Sprintf("%d", r.Intn(1000))
	case col == "Attr03":
		return fmt.Sprintf("%0.2f", r.Float64()*1000)
	default: // Attr00 and other strings
		return fmt.Sprintf("'v%d'", r.Intn(10000))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// InsertSQL builds a batched insert of n fresh entities into a base
// table for a tenant.
func (w *Workload) InsertSQL(r *rand.Rand, tenantIdx int, base string, n int) string {
	table := w.TableFor(tenantIdx, base)
	cols := w.insertColumnsFor(tenantIdx, base)
	first := w.allocIDs(tenantIdx, table, int64(n))
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s (%s) VALUES ", table, strings.Join(cols, ", "))
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, c := range cols {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(w.valueFor(r, base, c, first+int64(i)))
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Action is one dealt card bound to a tenant: a sequence of logical
// statements to run through the Mapper.
type Action struct {
	Class   ActionClass
	Tenant  int64
	Queries []string // SELECTs
	Execs   []string // DML
	// AddTenant is set for Admin actions: the new tenant to provision.
	AddTenant *core.Tenant
}

// NextAction deals one card for a uniformly random tenant (§4: "the
// Controller also randomly selects tenants, with an equal distribution,
// and assigns one to each card").
func (w *Workload) NextAction(r *rand.Rand, class ActionClass, adminSeq *int64) Action {
	return w.NextActionFor(r, class, r.Intn(w.tenants), adminSeq)
}

// NextActionFor deals one card for a specific tenant (0-based index).
// The network benchmark uses it to bind each connection to the tenant
// it authenticated as, mirroring how a SaaS client only ever issues
// statements for its own tenant.
func (w *Workload) NextActionFor(r *rand.Rand, class ActionClass, tenantIdx int, adminSeq *int64) Action {
	a := Action{Class: class, Tenant: int64(tenantIdx + 1)}
	base := CRMTables[r.Intn(len(CRMTables))]
	table := w.TableFor(tenantIdx, base)
	id := 1 + r.Intn(maxInt(w.rows, 1))

	switch class {
	case SelectLight:
		// Entity detail page: all attributes of a single entity.
		a.Queries = []string{fmt.Sprintf("SELECT * FROM %s WHERE Id = %d", table, id)}
	case SelectHeavy:
		// One of five fixed business-activity-monitoring queries with
		// aggregation and/or parent-child roll-up (§4.2).
		sfx := w.suffixFor(tenantIdx)
		variants := 5
		if w.tenantHasExt(tenantIdx, "HealthcareAccount") {
			variants = 6
		}
		switch r.Intn(variants) {
		case 5:
			// Extension report: roll-up over extension columns.
			a.Queries = []string{fmt.Sprintf(
				"SELECT Hospital, COUNT(*), SUM(Beds) FROM Account%s GROUP BY Hospital", sfx)}
		case 0:
			a.Queries = []string{fmt.Sprintf(
				"SELECT Industry, COUNT(*) FROM Account%s GROUP BY Industry", sfx)}
		case 1:
			a.Queries = []string{fmt.Sprintf(
				"SELECT a.Industry, COUNT(*) FROM Account%s a, Opportunity%s o WHERE o.AccountId = a.Id GROUP BY a.Industry", sfx, sfx)}
		case 2:
			a.Queries = []string{fmt.Sprintf(
				"SELECT Status, COUNT(*) FROM Case%s GROUP BY Status", sfx)}
		case 3:
			a.Queries = []string{fmt.Sprintf(
				"SELECT COUNT(*), SUM(Quantity) FROM LineItem%s WHERE Quantity > %d", sfx, r.Intn(500))}
		case 4:
			a.Queries = []string{fmt.Sprintf(
				"SELECT Stage, COUNT(*), SUM(Attr01) FROM Opportunity%s GROUP BY Stage ORDER BY Stage", sfx)}
		}
	case InsertLight:
		a.Execs = []string{w.InsertSQL(r, tenantIdx, base, 1)}
	case InsertHeavy:
		a.Execs = []string{w.InsertSQL(r, tenantIdx, base, w.InsertHeavyBatch)}
	case UpdateLight:
		// Small set selected by an indexed filter condition.
		sfx := w.suffixFor(tenantIdx)
		switch r.Intn(3) {
		case 0:
			a.Execs = []string{fmt.Sprintf(
				"UPDATE Account%s SET Name = 'upd-%d' WHERE Industry = '%s'",
				sfx, r.Intn(1e6), industries[r.Intn(len(industries))])}
		case 1:
			a.Execs = []string{fmt.Sprintf(
				"UPDATE Case%s SET Attr01 = %d WHERE Status = '%s'",
				sfx, r.Intn(1000), statuses[r.Intn(len(statuses))])}
		default:
			a.Execs = []string{fmt.Sprintf(
				"UPDATE %s SET Attr00 = 'w%d' WHERE Id = %d", table, r.Intn(1e6), id)}
		}
	case UpdateHeavy:
		// Several entities selected by entity ID via the primary key.
		for i := 0; i < w.UpdateHeavyBatch; i++ {
			a.Execs = append(a.Execs, fmt.Sprintf(
				"UPDATE %s SET Attr01 = Attr01 + 1 WHERE Id = %d",
				table, 1+r.Intn(maxInt(w.rows, 1))))
		}
	case Admin:
		// Add a brand-new tenant (schema-changing administrative task).
		*adminSeq++
		a.AddTenant = &core.Tenant{ID: int64(1000000 + *adminSeq)}
	}
	return a
}

// LoadTenant populates one tenant's dataset through the mapper: rows
// rows in each of the ten tables, in batches.
func (w *Workload) LoadTenant(m *core.Mapper, tenantIdx int, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	const batch = 50
	for _, base := range CRMTables {
		table := w.TableFor(tenantIdx, base)
		cols := w.insertColumnsFor(tenantIdx, base)
		for done := 0; done < w.rows; {
			n := batch
			if w.rows-done < n {
				n = w.rows - done
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "INSERT INTO %s (%s) VALUES ", table, strings.Join(cols, ", "))
			for i := 0; i < n; i++ {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("(")
				for j, c := range cols {
					if j > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(w.valueFor(r, base, c, int64(done+i+1)))
				}
				sb.WriteString(")")
			}
			if _, err := m.Exec(int64(tenantIdx+1), sb.String()); err != nil {
				return fmt.Errorf("load tenant %d table %s: %w", tenantIdx+1, table, err)
			}
			done += n
		}
	}
	return nil
}
