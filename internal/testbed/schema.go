// Package testbed implements the paper's configurable multi-tenant
// database testbed (§4): the 10-table CRM application schema of
// Figure 5, a synthetic data generator, and a Controller/Worker harness
// that deals TPC-C-style action cards with the Figure 6 distribution
// and records per-class response times, from which the §5 metrics —
// baseline compliance, throughput, 95 % response times, buffer-pool hit
// ratios — are computed.
package testbed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/types"
)

// CRMTables are the ten entities of the paper's Figure 5 schema, a
// DAG with one-to-many child-to-parent relationships:
//
//	Campaign   Account
//	   |      /   |   \------\
//	 Lead  Opportunity  Asset  Contact
//	        |      |      |
//	 LineItem Product   Case  Contract
var CRMTables = []string{
	"Campaign", "Account", "Lead", "Opportunity", "Asset", "Contact",
	"LineItem", "Product", "Case", "Contract",
}

// crmParents maps each child entity to its parent entities (foreign
// keys), following the Figure 5 arrows.
var crmParents = map[string][]string{
	"Lead":        {"Campaign", "Account"},
	"Opportunity": {"Account"},
	"Asset":       {"Account"},
	"Contact":     {"Account"},
	"LineItem":    {"Opportunity"},
	"Product":     {"Opportunity"},
	"Case":        {"Asset", "Contact"},
	"Contract":    {"Contact"},
}

// crmReportIndexes lists the "twelve indexes on selected columns for
// reporting queries and update tasks" (§4.1) as (table, column) pairs.
var crmReportIndexes = [][2]string{
	{"Account", "Name"}, {"Account", "Industry"},
	{"Campaign", "StartDate"}, {"Lead", "Status"},
	{"Opportunity", "Stage"}, {"Opportunity", "CloseDate"},
	{"Asset", "SerialNo"}, {"Contact", "LastName"},
	{"Case", "Status"}, {"Contract", "EndDate"},
	{"LineItem", "Quantity"}, {"Product", "Sku"},
}

// CRMSchema builds one instance of the Figure 5 schema. The suffix
// distinguishes multiple instances when the testbed raises schema
// variability (§4.1: copies of the 10-table schema that "represent
// logically different sets of entities"); suffix "" is the plain
// schema. Each table has about 20 columns, one of which is the
// entity ID.
func CRMSchema(suffix string) *core.Schema {
	s := &core.Schema{}
	for _, base := range CRMTables {
		name := base + suffix
		t := &core.Table{Name: name, Key: "Id"}
		t.Columns = append(t.Columns,
			core.Column{Name: "Id", Type: types.IntType, NotNull: true, Indexed: true},
		)
		for _, parent := range crmParents[base] {
			t.Columns = append(t.Columns, core.Column{
				Name: parent + "Id", Type: types.IntType, Indexed: true,
			})
		}
		// Entity-specific columns up to ~20 total: a fixed mix of
		// strings, ints, dates, and floats.
		named := map[string][]core.Column{
			"Account": {
				{Name: "Name", Type: types.VarcharType(60), Indexed: true},
				{Name: "Industry", Type: types.VarcharType(30), Indexed: true},
			},
			"Campaign": {
				{Name: "Name", Type: types.VarcharType(60)},
				{Name: "StartDate", Type: types.DateType, Indexed: true},
			},
			"Lead":        {{Name: "Status", Type: types.VarcharType(20), Indexed: true}},
			"Opportunity": {{Name: "Stage", Type: types.VarcharType(20), Indexed: true}, {Name: "CloseDate", Type: types.DateType, Indexed: true}},
			"Asset":       {{Name: "SerialNo", Type: types.VarcharType(40), Indexed: true}},
			"Contact":     {{Name: "LastName", Type: types.VarcharType(40), Indexed: true}, {Name: "FirstName", Type: types.VarcharType(40)}},
			"Case":        {{Name: "Status", Type: types.VarcharType(20), Indexed: true}},
			"Contract":    {{Name: "EndDate", Type: types.DateType, Indexed: true}},
			"LineItem":    {{Name: "Quantity", Type: types.IntType, Indexed: true}},
			"Product":     {{Name: "Sku", Type: types.VarcharType(30), Indexed: true}},
		}
		t.Columns = append(t.Columns, named[base]...)
		for i := 0; len(t.Columns) < 20; i++ {
			var ct types.ColumnType
			switch i % 4 {
			case 0:
				ct = types.VarcharType(40)
			case 1:
				ct = types.IntType
			case 2:
				ct = types.DateType
			default:
				ct = types.FloatType
			}
			t.Columns = append(t.Columns, core.Column{Name: fmt.Sprintf("Attr%02d", i), Type: ct})
		}
		s.Tables = append(s.Tables, t)
	}
	return s
}

// CRMExtensions returns optional per-vertical extensions of the CRM
// schema ("the testbed will eventually offer a set of possible
// extensions for each base table" — we offer them now). The suffix
// matches the schema instance they extend.
func CRMExtensions(suffix string) []*core.Extension {
	return []*core.Extension{
		{Name: "HealthcareAccount" + suffix, Base: "Account" + suffix, Columns: []core.Column{
			{Name: "Hospital", Type: types.VarcharType(60)},
			{Name: "Beds", Type: types.IntType},
		}},
		{Name: "AutomotiveAccount" + suffix, Base: "Account" + suffix, Columns: []core.Column{
			{Name: "Dealers", Type: types.IntType},
		}},
		{Name: "RegulatedCase" + suffix, Base: "Case" + suffix, Columns: []core.Column{
			{Name: "Regulator", Type: types.VarcharType(40)},
			{Name: "DueDate", Type: types.DateType},
		}},
	}
}

// MultiInstanceSchema builds a logical schema containing `instances`
// copies of the CRM schema (plus extensions), the §4.1 mechanism for
// programmatically increasing the number of tables "without making
// them too synthetic".
func MultiInstanceSchema(instances int, withExtensions bool) *core.Schema {
	out := &core.Schema{}
	for i := 0; i < instances; i++ {
		suffix := ""
		if instances > 1 {
			suffix = fmt.Sprintf("_i%d", i)
		}
		s := CRMSchema(suffix)
		out.Tables = append(out.Tables, s.Tables...)
		if withExtensions {
			out.Extensions = append(out.Extensions, CRMExtensions(suffix)...)
		}
	}
	return out
}

// InstanceSuffix returns the table-name suffix of instance i in an
// n-instance schema.
func InstanceSuffix(i, n int) string {
	if n <= 1 {
		return ""
	}
	return fmt.Sprintf("_i%d", i)
}

// ReportIndexes lists the reporting-index (table, column) pairs for one
// instance suffix.
func ReportIndexes(suffix string) [][2]string {
	out := make([][2]string, len(crmReportIndexes))
	for i, p := range crmReportIndexes {
		out[i] = [2]string{p[0] + suffix, p[1]}
	}
	return out
}
