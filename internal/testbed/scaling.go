package testbed

import "time"

// ScalingPoint is one session count's measurement in a multi-session
// throughput sweep over the §4 CRM workload.
type ScalingPoint struct {
	Sessions         int           `json:"sessions"`
	Elapsed          time.Duration `json:"-"`
	ElapsedSec       float64       `json:"elapsed_sec"`
	Statements       int64         `json:"statements"`
	StatementsPerSec float64       `json:"statements_per_sec"`
	ActionsPerMin    float64       `json:"actions_per_min"`
	// Speedup is throughput relative to the sweep's first (lowest)
	// session count; Efficiency normalizes it by the session ratio
	// (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// RunScaling runs the workload once per session count, rebuilding the
// testbed each time so every point starts from identical data, and
// derives speedup/efficiency against the first point.
func RunScaling(cfg Config, sessions []int) ([]ScalingPoint, error) {
	pts := make([]ScalingPoint, 0, len(sessions))
	for _, n := range sessions {
		c := cfg
		c.Sessions = n
		bed, err := Setup(c)
		if err != nil {
			return nil, err
		}
		res, err := bed.Run()
		if err != nil {
			return nil, err
		}
		pts = append(pts, ScalingPoint{
			Sessions:         n,
			Elapsed:          res.Elapsed,
			ElapsedSec:       res.Elapsed.Seconds(),
			Statements:       res.Statements,
			StatementsPerSec: res.StatementsPerSec(),
			ActionsPerMin:    res.Throughput(),
		})
	}
	if len(pts) > 0 && pts[0].StatementsPerSec > 0 {
		base := pts[0]
		for i := range pts {
			pts[i].Speedup = pts[i].StatementsPerSec / base.StatementsPerSec
			pts[i].Efficiency = pts[i].Speedup * float64(base.Sessions) / float64(pts[i].Sessions)
		}
	}
	return pts, nil
}
