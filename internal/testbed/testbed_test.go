package testbed

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func TestCRMSchemaShape(t *testing.T) {
	s := CRMSchema("")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 10 {
		t.Fatalf("tables: %d", len(s.Tables))
	}
	for _, tab := range s.Tables {
		if len(tab.Columns) != 20 {
			t.Errorf("%s has %d columns, want 20", tab.Name, len(tab.Columns))
		}
		if tab.Key != "Id" {
			t.Errorf("%s key: %s", tab.Name, tab.Key)
		}
	}
	// DAG structure: every parent reference resolves.
	for child, parents := range crmParents {
		for _, p := range parents {
			if s.Table(p) == nil {
				t.Errorf("%s references missing parent %s", child, p)
			}
		}
	}
	// Multi-instance naming.
	ms := MultiInstanceSchema(3, true)
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ms.Tables) != 30 {
		t.Errorf("multi-instance tables: %d", len(ms.Tables))
	}
	if ms.Table("Account_i2") == nil {
		t.Error("instance suffixing broken")
	}
	if len(ms.Extensions) != 9 {
		t.Errorf("extensions: %d", len(ms.Extensions))
	}
}

func TestDeckDistribution(t *testing.T) {
	deck := BuildDeck(rand.New(rand.NewSource(1)))
	if len(deck) != 10000 {
		t.Fatalf("deck size: %d", len(deck))
	}
	counts := map[ActionClass]int{}
	for _, c := range deck {
		counts[c]++
	}
	for c, want := range deckCounts {
		if counts[c] != want {
			t.Errorf("%s: %d cards, want %d", c, counts[c], want)
		}
	}
}

func TestVariabilityConfig(t *testing.T) {
	// Table 1's rows, scaled to 10,000 tenants.
	cases := []struct {
		v         float64
		instances int
	}{
		{0.0, 1}, {0.5, 5000}, {0.65, 6500}, {0.8, 8000}, {1.0, 10000},
	}
	for _, c := range cases {
		if got := VariabilityConfig(c.v, 10000); got != c.instances {
			t.Errorf("variability %.2f: %d instances, want %d", c.v, got, c.instances)
		}
	}
}

func TestTenantInstanceDistribution(t *testing.T) {
	// §5: "with schema variability 0.65, the first 3,500 schema
	// instances have two tenants while the rest have only one."
	tenants, instances := 10000, 6500
	perInstance := map[int]int{}
	for i := 0; i < tenants; i++ {
		perInstance[TenantInstance(i, tenants, instances)]++
	}
	two, one := 0, 0
	for inst, n := range perInstance {
		switch n {
		case 2:
			two++
		case 1:
			one++
		default:
			t.Fatalf("instance %d has %d tenants", inst, n)
		}
	}
	if two != 3500 || one != 3000 {
		t.Errorf("distribution: %d doubles, %d singles", two, one)
	}
	// Degenerate cases.
	if TenantInstance(5, 10, 1) != 0 {
		t.Error("single instance must absorb everyone")
	}
	for i := 0; i < 10; i++ {
		if TenantInstance(i, 10, 10) != i {
			t.Error("full variability must give private instances")
		}
	}
}

func TestSmallRunBasicLayout(t *testing.T) {
	bed, err := Setup(Config{
		Tenants: 4, Instances: 2, RowsPerTable: 8,
		Sessions: 3, Actions: 120, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors: %d", res.Errors)
	}
	if res.TotalActions() != 120 {
		t.Errorf("actions: %d", res.TotalActions())
	}
	if len(res.Durations[SelectLight]) == 0 || len(res.Durations[UpdateLight]) == 0 {
		t.Error("light classes should have run")
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
	if res.Stats.Pool.TotalLogicalReads() == 0 {
		t.Error("stats not collected")
	}
}

func TestRunOverChunkFolding(t *testing.T) {
	bed, err := Setup(Config{
		Tenants: 3, RowsPerTable: 6, Sessions: 2, Actions: 60, Seed: 7,
		NewLayout: func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkFoldingLayout(s, core.FoldingOptions{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.TotalActions() != 60 {
		t.Errorf("errors=%d actions=%d", res.Errors, res.TotalActions())
	}
}

func TestBaselineCompliance(t *testing.T) {
	ref := &Result{}
	for i := 0; i < 100; i++ {
		ref.Durations[SelectLight] = append(ref.Durations[SelectLight], time.Duration(i+1)*time.Millisecond)
	}
	b := BaselineOf(ref)
	if b[SelectLight] != 95*time.Millisecond {
		t.Errorf("baseline: %v", b[SelectLight])
	}
	if got := ref.Compliance(b); got != 95 {
		t.Errorf("self compliance: %v", got)
	}
	slow := &Result{}
	for i := 0; i < 100; i++ {
		slow.Durations[SelectLight] = append(slow.Durations[SelectLight], time.Duration(i+51)*time.Millisecond)
	}
	if got := slow.Compliance(b); got != 45 {
		t.Errorf("slow compliance: %v", got)
	}
}

func TestWorkloadIDAllocation(t *testing.T) {
	w := NewWorkload(2, 1, 10)
	a := w.allocIDs(0, "Account", 3)
	b := w.allocIDs(0, "Account", 1)
	if a != 11 || b != 14 {
		t.Errorf("alloc: %d %d", a, b)
	}
	// Different tenants/tables are independent.
	if w.allocIDs(1, "Account", 1) != 11 || w.allocIDs(0, "Lead", 1) != 11 {
		t.Error("sequences must be per tenant+table")
	}
}

// TestRunWithExtensions exercises the §7 "more complete setting": an
// extension-bearing schema where half the tenants enable extensions and
// the workload touches extension columns, over Chunk Folding and over
// the Extension layout.
func TestRunWithExtensions(t *testing.T) {
	for name, mk := range map[string]func(s *core.Schema) (core.Layout, error){
		"chunkfold": func(s *core.Schema) (core.Layout, error) {
			return core.NewChunkFoldingLayout(s, core.FoldingOptions{})
		},
		"extension": func(s *core.Schema) (core.Layout, error) {
			return core.NewExtensionLayout(s)
		},
	} {
		bed, err := Setup(Config{
			Tenants: 4, Instances: 2, RowsPerTable: 6,
			Sessions: 2, Actions: 120, Seed: 11,
			NewLayout: mk, WithExtensions: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := bed.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Errors != 0 || res.TotalActions() != 120 {
			t.Errorf("%s: errors=%d actions=%d", name, res.Errors, res.TotalActions())
		}
		// An extension column is actually populated and queryable.
		rows, err := bed.Mapper.Query(1, "SELECT COUNT(*) FROM Account_i0 WHERE Hospital IS NOT NULL")
		if err != nil {
			t.Fatalf("%s: extension query: %v", name, err)
		}
		if rows.Data[0][0].Int == 0 {
			t.Errorf("%s: no extension data found", name)
		}
	}
}
