package testbed

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Config parameterizes one testbed run (the System Under Test plus the
// Worker/Controller harness of §4).
type Config struct {
	// Tenants is the tenant population (the paper used 10,000).
	Tenants int
	// Instances is the number of CRM schema copies (schema variability
	// × tenants, Table 1).
	Instances int
	// RowsPerTable is the per-tenant base population of each of the 10
	// tables (stands in for the paper's 1.4 MB per tenant).
	RowsPerTable int
	// Sessions is the number of concurrent client sessions (the paper
	// used 40).
	Sessions int
	// Actions is the total number of action cards to execute.
	Actions int
	// Seed drives every random choice; runs are reproducible.
	Seed int64

	// MemoryBytes, ReadLatency, InsertMode configure the engine.
	MemoryBytes int64
	ReadLatency time.Duration
	InsertMode  storage.InsertMode
	Optimizer   plan.Mode

	// NewLayout builds the schema-mapping layout under test; nil means
	// the Basic shared-table layout (the §5 experiment's configuration:
	// base tables shared via a Tenant column, no extensions).
	NewLayout func(*core.Schema) (core.Layout, error)

	// WithExtensions enables the §7 "more complete setting": the schema
	// carries the CRM extensions, a share of tenants enable them, and
	// the workload reads and writes extension columns. Requires a
	// NewLayout that supports extensibility (not Basic).
	WithExtensions bool
	// ExtensionFraction is the share of tenants enabling extensions
	// (default 0.5 when WithExtensions is set).
	ExtensionFraction float64
}

func (c *Config) fill() {
	if c.Tenants == 0 {
		c.Tenants = 20
	}
	if c.Instances == 0 {
		c.Instances = 1
	}
	if c.RowsPerTable == 0 {
		c.RowsPerTable = 20
	}
	if c.Sessions == 0 {
		c.Sessions = 4
	}
	if c.Actions == 0 {
		c.Actions = 200
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 64 << 20
	}
}

// VariabilityConfig computes Table 1's instance count for a schema
// variability in [0, 1]: 0 → one shared instance, 1 → one instance per
// tenant.
func VariabilityConfig(variability float64, tenants int) (instances int) {
	instances = int(variability*float64(tenants) + 0.5)
	if instances < 1 {
		instances = 1
	}
	if instances > tenants {
		instances = tenants
	}
	return instances
}

// Bed is a fully provisioned testbed: database, layout, mapper,
// workload generator.
type Bed struct {
	Cfg      Config
	DB       *engine.DB
	Layout   core.Layout
	Mapper   *core.Mapper
	Workload *Workload

	adminSeq int64
}

// Setup builds the schema (Instances copies of the CRM schema),
// provisions the layout, registers tenants, and loads the synthetic
// dataset.
func Setup(cfg Config) (*Bed, error) {
	cfg.fill()
	if cfg.WithExtensions && cfg.ExtensionFraction == 0 {
		cfg.ExtensionFraction = 0.5
	}
	schema := MultiInstanceSchema(cfg.Instances, cfg.WithExtensions)
	db := engine.Open(engine.Config{
		MemoryBytes: cfg.MemoryBytes,
		ReadLatency: cfg.ReadLatency,
		InsertMode:  cfg.InsertMode,
		Optimizer:   cfg.Optimizer,
	})
	var layout core.Layout
	var err error
	if cfg.NewLayout != nil {
		layout, err = cfg.NewLayout(schema)
	} else {
		layout, err = core.NewBasicLayout(schema)
	}
	if err != nil {
		return nil, err
	}
	tenants := make([]*core.Tenant, cfg.Tenants)
	for i := range tenants {
		tenants[i] = &core.Tenant{ID: int64(i + 1)}
		if cfg.WithExtensions && float64(i%100) < cfg.ExtensionFraction*100 {
			sfx := InstanceSuffix(TenantInstance(i, cfg.Tenants, cfg.Instances), cfg.Instances)
			if i%2 == 0 {
				tenants[i].Extensions = []string{"HealthcareAccount" + sfx}
			} else {
				tenants[i].Extensions = []string{"AutomotiveAccount" + sfx, "RegulatedCase" + sfx}
			}
		}
	}
	if err := layout.Create(db, tenants); err != nil {
		return nil, err
	}
	bed := &Bed{
		Cfg:      cfg,
		DB:       db,
		Layout:   layout,
		Mapper:   core.NewMapper(db, layout),
		Workload: NewWorkload(cfg.Tenants, cfg.Instances, cfg.RowsPerTable),
	}
	bed.Workload.SetTenants(tenants)
	for i := 0; i < cfg.Tenants; i++ {
		if err := bed.Workload.LoadTenant(bed.Mapper, i, cfg.Seed+int64(i)); err != nil {
			return nil, err
		}
	}
	return bed, nil
}

// Result aggregates one run's measurements.
type Result struct {
	Durations  [numClasses][]time.Duration
	Errors     int64
	Elapsed    time.Duration
	Statements int64        // SQL statements completed (queries + DML per action)
	Stats      engine.Stats // post-run counters (reset at run start)
}

// Quantile returns the q-quantile (0 < q <= 1) response time of a
// class, or 0 if the class never ran.
func (r *Result) Quantile(class ActionClass, q float64) time.Duration {
	ds := append([]time.Duration(nil), r.Durations[class]...)
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q*float64(len(ds))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

// TotalActions counts completed actions.
func (r *Result) TotalActions() int {
	n := 0
	for _, ds := range r.Durations {
		n += len(ds)
	}
	return n
}

// Throughput returns completed actions per minute.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalActions()) / r.Elapsed.Minutes()
}

// StatementsPerSec returns completed SQL statements per second (the
// multi-session scaling metric: actions bundle a variable number of
// statements, so statements are the fairer unit of work).
func (r *Result) StatementsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Statements) / r.Elapsed.Seconds()
}

// Baseline is the per-class 95 %-quantile response times of the
// reference configuration (schema variability 0); baseline compliance
// of any run is the share of its actions that finish within the
// baseline of their class (§5: "per definition, the baseline compliance
// of the schema variability 0.0 configuration is 95 %").
type Baseline [numClasses]time.Duration

// BaselineOf extracts the 95 % quantiles of a reference run.
func BaselineOf(r *Result) Baseline {
	var b Baseline
	for c := ActionClass(0); c < numClasses; c++ {
		b[c] = r.Quantile(c, 0.95)
	}
	return b
}

// Compliance computes the percentage of actions within the baseline.
func (r *Result) Compliance(b Baseline) float64 {
	total, within := 0, 0
	for c := ActionClass(0); c < numClasses; c++ {
		if b[c] == 0 {
			continue
		}
		for _, d := range r.Durations[c] {
			total++
			if d <= b[c] {
				within++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(within) / float64(total)
}

// Run executes cfg.Actions cards across cfg.Sessions worker sessions.
// The Controller shuffles decks and deals; each Worker session runs in
// its own goroutine with its own connection-equivalent (the Mapper is
// safe for concurrent use).
func (b *Bed) Run() (*Result, error) {
	cfg := b.Cfg
	cards := make(chan Action, cfg.Sessions*2)
	res := &Result{}
	var mu sync.Mutex
	var firstErr error
	var errCount int64

	b.DB.ResetStats()
	start := time.Now()

	// Controller: build decks, deal cards.
	go func() {
		r := rand.New(rand.NewSource(cfg.Seed * 31))
		dealt := 0
		for dealt < cfg.Actions {
			deck := BuildDeck(r)
			for _, class := range deck {
				if dealt >= cfg.Actions {
					break
				}
				cards <- b.Workload.NextAction(r, class, &b.adminSeq)
				dealt++
			}
		}
		close(cards)
	}()

	var wg sync.WaitGroup
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range cards {
				t0 := time.Now()
				stmts, err := b.runAction(a)
				d := time.Since(t0)
				mu.Lock()
				res.Statements += stmts
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					errCount++
				} else {
					res.Durations[a.Class] = append(res.Durations[a.Class], d)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	mu.Lock()
	res.Errors = errCount
	mu.Unlock()
	res.Stats = b.DB.Stats()
	if firstErr != nil {
		return res, fmt.Errorf("testbed: %d actions failed, first: %w", errCount, firstErr)
	}
	return res, nil
}

// runAction executes one card and reports how many SQL statements
// completed (the Admin card counts as one: tenant provisioning is a
// single logical operation however many physical statements it emits).
func (b *Bed) runAction(a Action) (int64, error) {
	if a.AddTenant != nil {
		if err := b.Layout.AddTenant(b.DB, a.AddTenant); err != nil {
			return 0, err
		}
		return 1, nil
	}
	var stmts int64
	for _, q := range a.Queries {
		if _, err := b.Mapper.Query(a.Tenant, q); err != nil {
			return stmts, fmt.Errorf("%s: %q: %w", a.Class, q, err)
		}
		stmts++
	}
	for _, e := range a.Execs {
		if _, err := b.Mapper.Exec(a.Tenant, e); err != nil {
			return stmts, fmt.Errorf("%s: %q: %w", a.Class, e, err)
		}
		stmts++
	}
	return stmts, nil
}
