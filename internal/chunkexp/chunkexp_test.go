package chunkexp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/types"
)

func smallCfg() Config {
	return Config{Parents: 10, ChildrenPerParent: 4, MemoryBytes: 8 << 20}
}

func TestSchemaAndQ2(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tables[0].Columns) != DataCols+1 || len(s.Tables[1].Columns) != DataCols+2 {
		t.Errorf("column counts: %d %d", len(s.Tables[0].Columns), len(s.Tables[1].Columns))
	}
	for _, scale := range []int{3, 45, 90} {
		if err := ParseQ2(scale); err != nil {
			t.Errorf("Q2(%d): %v", scale, err)
		}
	}
	if !strings.Contains(Q2(3), "p.id = c.parent") {
		t.Error("Q2 must join on the foreign key")
	}
}

func TestChunkDefs(t *testing.T) {
	defs := ChunkDefs(6)
	if len(defs) != 2 {
		t.Fatalf("defs: %d", len(defs))
	}
	if !defs[0].ValueIndex || len(defs[0].Cols) != 1 {
		t.Errorf("ChunkIndex def: %+v", defs[0])
	}
	if len(defs[1].Cols) != 6 {
		t.Errorf("ChunkData width: %d", len(defs[1].Cols))
	}
	// The Chunk6 def of the paper: int1 int2 date1 date2 str1 str2 (by
	// generated names).
	phys := defs[1].PhysCols()
	if phys[0] != "Int1" || phys[1] != "Date1" || phys[2] != "Str1" {
		t.Errorf("phys names: %v", phys)
	}
}

// TestEquivalenceAcrossConfigurations loads the same dataset into the
// conventional, chunked (several widths, both transformation modes),
// and vertical configurations and checks Q2 returns identical results.
func TestEquivalenceAcrossConfigurations(t *testing.T) {
	cfg := smallCfg()
	conv, err := NewConventional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := conv.Load(); err != nil {
		t.Fatal(err)
	}
	want := map[int]string{}
	for _, scale := range []int{3, 12} {
		rows, err := conv.Query(Q2(scale), types.NewInt(3))
		if err != nil {
			t.Fatal(err)
		}
		want[scale] = dump(rows.Data)
		if len(rows.Data) != cfg.ChildrenPerParent {
			t.Fatalf("conventional rows: %d", len(rows.Data))
		}
	}

	mk := func(name string, in *Instance, err error) *Instance {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := in.Load(); err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		return in
	}
	c3, e3 := NewChunk(cfg, 3, false)
	c6f, e6f := NewChunk(cfg, 6, true)
	c90, e90 := NewChunk(cfg, 90, false)
	v6, ev6 := NewVertical(cfg, 6)
	insts := []*Instance{
		mk("chunk3", c3, e3),
		mk("chunk6-flat", c6f, e6f),
		mk("chunk90", c90, e90),
		mk("vertical6", v6, ev6),
	}
	for _, in := range insts {
		for _, scale := range []int{3, 12} {
			rows, err := in.Query(Q2(scale), types.NewInt(3))
			if err != nil {
				t.Fatalf("%s scale %d: %v", in.Name, scale, err)
			}
			if got := dump(rows.Data); got != want[scale] {
				t.Errorf("%s scale %d diverges:\nwant %s\ngot  %s", in.Name, scale, want[scale], got)
			}
		}
	}
}

func dump(data [][]types.Value) string {
	var rows []string
	for _, r := range data {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	// Sort-insensitive comparison.
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j] < rows[i] {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	return strings.Join(rows, "\n")
}

// TestFig8PlanShape checks the chunked Q2 plan contains the operator
// regions of the paper's Figure 8: index scans on the chunk meta-data
// index, FETCH-backed NL joins for the aligning joins, and a join for
// the foreign key.
func TestFig8PlanShape(t *testing.T) {
	cfg := smallCfg()
	in, err := NewChunk(cfg, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Load(); err != nil {
		t.Fatal(err)
	}
	ex, err := in.Explain(Q2(3))
	if err != nil {
		t.Fatal(err)
	}
	ops := PlanOperators(ex)
	if ops["NLJOIN"] == 0 {
		t.Errorf("expected index NL joins in plan:\n%s", ex)
	}
	if !strings.Contains(ex, "ChunkIndexT") || !strings.Contains(ex, "ChunkData") {
		t.Errorf("plan must touch both chunk tables:\n%s", ex)
	}
	if !strings.Contains(ex, "_tcr") && !strings.Contains(ex, "_v") {
		t.Errorf("plan should use the meta-data or value indexes:\n%s", ex)
	}
}

// TestScalingJoinCount verifies the Test 2 property: higher Q2 scale
// factors touch more chunks, visible as more join operators.
func TestScalingJoinCount(t *testing.T) {
	cfg := smallCfg()
	in, err := NewChunk(cfg, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Load(); err != nil {
		t.Fatal(err)
	}
	ex3, _ := in.Explain(Q2(3))
	ex30, _ := in.Explain(Q2(30))
	j3 := PlanOperators(ex3)["NLJOIN"] + PlanOperators(ex3)["HSJOIN"]
	j30 := PlanOperators(ex30)["NLJOIN"] + PlanOperators(ex30)["HSJOIN"]
	if j30 <= j3 {
		t.Errorf("scale 30 should need more aligning joins: %d vs %d", j30, j3)
	}
}

func TestMeasureQ2(t *testing.T) {
	cfg := smallCfg()
	in, err := NewChunk(cfg, 15, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Load(); err != nil {
		t.Fatal(err)
	}
	m, err := in.MeasureQ2(Q2(6), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != cfg.ChildrenPerParent {
		t.Errorf("rows: %d", m.Rows)
	}
	if m.WarmTime <= 0 || m.ColdTime <= 0 || m.LogicalReads <= 0 {
		t.Errorf("measurement incomplete: %+v", m)
	}
}

func TestGroupingQuery(t *testing.T) {
	cfg := smallCfg()
	conv, _ := NewConventional(cfg)
	if err := conv.Load(); err != nil {
		t.Fatal(err)
	}
	in, err := NewChunk(cfg, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Load(); err != nil {
		t.Fatal(err)
	}
	q := Q2Grouping(6)
	w, err := conv.Query(q, types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := in.Query(q, types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if dump(w.Data) != dump(g.Data) {
		t.Errorf("grouping query diverges:\n%s\nvs\n%s", dump(w.Data), dump(g.Data))
	}
}

// TestFig12Shape checks the Figure 12 direction under buffer pressure:
// chunk folding beats vertical partitioning on cold-cache response time
// at narrow widths, because a logical row's chunks share heap pages in
// the folded tables.
func TestFig12Shape(t *testing.T) {
	cfg := Config{Parents: 60, ChildrenPerParent: 8, MemoryBytes: 1 << 20}
	f, err := NewChunk(cfg, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Load(); err != nil {
		t.Fatal(err)
	}
	v, err := NewVertical(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Load(); err != nil {
		t.Fatal(err)
	}
	mf, err := f.MeasureQ2(Q2(30), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := v.MeasureQ2(Q2(30), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic locality check: a logical row's chunks share heap
	// pages when folded, so a cold execution faults fewer pages.
	if mf.PhysicalReads >= mv.PhysicalReads {
		t.Errorf("folded cold faults %d pages, vertical %d — folding should fault fewer",
			mf.PhysicalReads, mv.PhysicalReads)
	}
	t.Logf("fig12 width 3 scale 30: cold improvement %.1f%% (folded %v vs vertical %v; %d vs %d page faults)",
		Improvement(mf, mv), mf.ColdTime, mv.ColdTime, mf.PhysicalReads, mv.PhysicalReads)
}

// TestTest1OptimizerNesting reproduces §6.2 Test 1: the sophisticated
// optimizer (DB2) handles the generic nested transformation as well as
// the flattened one; the naive optimizer (MySQL) materializes the
// nested form and needs the flattened, correctly ordered emission; the
// careless metadata-first ordering costs it a large factor.
func TestTest1OptimizerNesting(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	cfg := Config{Parents: 80, ChildrenPerParent: 8, MemoryBytes: 16 << 20}
	rs, err := RunTest1(cfg, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Test1Result{}
	for _, r := range rs {
		byName[r.Variant.Name] = r
	}
	if byName["db2-nested"].Materialized {
		t.Error("sophisticated optimizer must unnest the generic form")
	}
	if !byName["mysql-nested"].Materialized {
		t.Error("naive optimizer must materialize the generic form")
	}
	// DB2: nested within 3x of flattened (paper: same plan).
	dn, df := byName["db2-nested"].WarmTime, byName["db2-flattened"].WarmTime
	if dn > 3*df && dn-df > 2*time.Millisecond {
		t.Errorf("sophisticated nested (%v) should match flattened (%v)", dn, df)
	}
	// MySQL: flattened-ordered must beat nested.
	mn, mf := byName["mysql-nested"].WarmTime, byName["mysql-flat-ordered"].WarmTime
	if mf >= mn {
		t.Errorf("naive flattened (%v) should beat naive nested (%v)", mf, mn)
	}
	// MySQL: ordering matters by a large factor (paper: 5x).
	bad := byName["mysql-flat-metafirst"].WarmTime
	if bad < 2*mf {
		t.Errorf("metadata-first ordering (%v) should be much slower than correct ordering (%v)", bad, mf)
	}
	t.Log("\n" + FormatTest1(rs))
}
