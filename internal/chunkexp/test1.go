package chunkexp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
)

// Test1Variant is one configuration of the paper's §6.2 Test 1 matrix:
// an optimizer capability level crossed with a transformation style.
type Test1Variant struct {
	Name string
	// Optimizer capability (Sophisticated models DB2, Naive models
	// MySQL).
	Optimizer plan.Mode
	// Flattened emission vs the generic nested form.
	Flattened bool
	// MetadataFirst: the careless predicate/reference ordering that
	// cost MySQL a factor of five.
	MetadataFirst bool
}

// Test1Variants is the experiment matrix.
func Test1Variants() []Test1Variant {
	return []Test1Variant{
		{Name: "db2-nested", Optimizer: plan.Sophisticated, Flattened: false},
		{Name: "db2-flattened", Optimizer: plan.Sophisticated, Flattened: true},
		{Name: "mysql-nested", Optimizer: plan.Naive, Flattened: false},
		{Name: "mysql-flat-ordered", Optimizer: plan.Naive, Flattened: true},
		{Name: "mysql-flat-metafirst", Optimizer: plan.Naive, Flattened: true, MetadataFirst: true},
	}
}

// Test1Result is one variant's measurement.
type Test1Result struct {
	Variant  Test1Variant
	WarmTime time.Duration
	Plan     string
	// Materialized reports whether the plan contains a TEMP operator
	// (the naive optimizer's failure to unnest, §6.2 Test 1).
	Materialized bool
}

// NewTest1Instance provisions a chunk-width-6 configuration under one
// variant.
func NewTest1Instance(cfg Config, v Test1Variant) (*Instance, error) {
	cfg.fill()
	db := engine.Open(engine.Config{
		MemoryBytes: cfg.MemoryBytes, ReadLatency: cfg.ReadLatency, Optimizer: v.Optimizer,
	})
	l, err := core.NewChunkLayout(Schema(), core.ChunkOptions{
		Defs: ChunkDefs(6), Flattened: v.Flattened, MetadataFirst: v.MetadataFirst,
	})
	if err != nil {
		return nil, err
	}
	if err := l.Create(db, []*core.Tenant{{ID: 1}}); err != nil {
		return nil, err
	}
	return &Instance{Name: v.Name, Width: 6, DB: db,
		mapper: core.NewMapper(db, l), cfg: cfg}, nil
}

// RunTest1 loads each variant and measures Q2 at the given scale.
func RunTest1(cfg Config, scale, runs int) ([]Test1Result, error) {
	var out []Test1Result
	for _, v := range Test1Variants() {
		in, err := NewTest1Instance(cfg, v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		if err := in.Load(); err != nil {
			return nil, fmt.Errorf("%s load: %w", v.Name, err)
		}
		m, err := in.MeasureQ2(Q2(scale), runs, 2)
		if err != nil {
			return nil, fmt.Errorf("%s measure: %w", v.Name, err)
		}
		planText, err := in.Explain(Q2(scale))
		if err != nil {
			return nil, err
		}
		out = append(out, Test1Result{
			Variant:      v,
			WarmTime:     m.WarmTime,
			Plan:         planText,
			Materialized: strings.Contains(planText, "TEMP"),
		})
	}
	return out, nil
}

// FormatTest1 renders the Test 1 comparison.
func FormatTest1(results []Test1Result) string {
	var sb strings.Builder
	sb.WriteString("Test 1 (transformation and nesting):\n")
	for _, r := range results {
		mat := ""
		if r.Materialized {
			mat = "  [materializes derived table]"
		}
		fmt.Fprintf(&sb, "  %-22s %10.3f ms%s\n", r.Variant.Name,
			float64(r.WarmTime)/float64(time.Millisecond), mat)
	}
	return sb.String()
}
