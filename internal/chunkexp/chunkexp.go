// Package chunkexp implements the paper's §6.2 experiment apparatus:
// the Parent/Child test schema with 90 typed data columns each, the Q2
// query family, physical configurations for the conventional layout and
// Chunk Table layouts of every width (plus the vertical-partitioning
// baseline of Figure 12), and the warm-cache / cold-cache / logical-
// page-read measurements behind Figures 9, 10, 11, and 12.
package chunkexp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// DataCols is the number of data columns per table in the paper's test
// schema (§6.2: "90 data columns evenly distributed between the types
// INTEGER, DATE, and VARCHAR(100)").
const DataCols = 90

// Config scales the experiment. The paper loaded 10,000 parents with
// 100 children each on DB2; the defaults here are laptop-scale, and the
// cmd/chunkbench flags raise them arbitrarily.
type Config struct {
	Parents           int
	ChildrenPerParent int
	MemoryBytes       int64
	ReadLatency       time.Duration
	Optimizer         plan.Mode
}

func (c *Config) fill() {
	if c.Parents == 0 {
		c.Parents = 200
	}
	if c.ChildrenPerParent == 0 {
		c.ChildrenPerParent = 10
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 64 << 20
	}
}

// colType returns the type of data column i (1-based), cycling
// INTEGER, DATE, VARCHAR(100) as in the paper.
func colType(i int) types.ColumnType {
	switch (i - 1) % 3 {
	case 0:
		return types.IntType
	case 1:
		return types.DateType
	default:
		return types.VarcharType(100)
	}
}

// colName names data column i (1-based).
func colName(i int) string { return fmt.Sprintf("col%d", i) }

// Schema builds the logical Parent/Child schema.
func Schema() *core.Schema {
	parent := &core.Table{Name: "parent", Key: "id"}
	parent.Columns = append(parent.Columns, core.Column{Name: "id", Type: types.IntType, NotNull: true, Indexed: true})
	child := &core.Table{Name: "child", Key: "id"}
	child.Columns = append(child.Columns,
		core.Column{Name: "id", Type: types.IntType, NotNull: true, Indexed: true},
		core.Column{Name: "parent", Type: types.IntType, NotNull: true, Indexed: true},
	)
	for i := 1; i <= DataCols; i++ {
		parent.Columns = append(parent.Columns, core.Column{Name: colName(i), Type: colType(i)})
		child.Columns = append(child.Columns, core.Column{Name: colName(i), Type: colType(i)})
	}
	return &core.Schema{Tables: []*core.Table{parent, child}}
}

// ChunkDefs builds the §6.2 chunk-table shapes for one width: a
// single-int indexed ChunkIndex (holding id and parent, mimicking the
// conventional key/foreign-key indexes) and a ChunkData table with
// `width` data columns in the same INTEGER/DATE/VARCHAR pattern so
// conventional groups pack tightly.
func ChunkDefs(width int) []*core.ChunkTableDef {
	data := &core.ChunkTableDef{Name: "ChunkData"}
	for i := 1; i <= width; i++ {
		data.Cols = append(data.Cols, colType(i))
	}
	return []*core.ChunkTableDef{
		{Name: "ChunkIndexT", Cols: []types.ColumnType{types.IntType}, ValueIndex: true},
		data,
	}
}

// Q2 builds the paper's test query at a given scale factor: the
// parent/child foreign-key join with a selective parent-id parameter,
// projecting `scale` data columns from each side.
//
//	SELECT p.id, p.col1, ..., c.col1, ...
//	FROM parent p, child c
//	WHERE p.id = c.parent AND p.id = ?
func Q2(scale int) string {
	var sb strings.Builder
	sb.WriteString("SELECT p.id")
	for i := 1; i <= scale; i++ {
		fmt.Fprintf(&sb, ", p.%s", colName(i))
	}
	for i := 1; i <= scale; i++ {
		fmt.Fprintf(&sb, ", c.%s", colName(i))
	}
	sb.WriteString(" FROM parent p, child c WHERE p.id = c.parent AND p.id = ?")
	return sb.String()
}

// Q2Grouping is the "additional tests" roll-up variant: aggregation
// over the join instead of plain projection.
func Q2Grouping(scale int) string {
	var sb strings.Builder
	sb.WriteString("SELECT p.id")
	for i := 1; i <= scale; i = i + 3 {
		fmt.Fprintf(&sb, ", SUM(c.%s)", colName(i)) // INTEGER columns only
	}
	sb.WriteString(" FROM parent p, child c WHERE p.id = c.parent AND p.id = ? GROUP BY p.id")
	return sb.String()
}

// valueLiteral renders the deterministic synthetic value for (row, col).
func valueLiteral(row int64, col int) string {
	switch colType(col).Kind {
	case types.KindInt:
		return fmt.Sprintf("%d", row*7+int64(col))
	case types.KindDate:
		return fmt.Sprintf("DATE '2008-%02d-%02d'", 1+(int(row)+col)%12, 1+(int(row)*3+col)%28)
	default:
		return fmt.Sprintf("'r%dc%d-%s'", row, col, strings.Repeat("x", 20))
	}
}

// Instance is one physical configuration under test.
type Instance struct {
	Name   string
	Width  int // 0 = conventional
	DB     *engine.DB
	mapper *core.Mapper // nil for conventional
	cfg    Config
}

// NewConventional provisions the conventional two-table layout with the
// paper's indexes (primary keys plus (parent, id) on child).
func NewConventional(cfg Config) (*Instance, error) {
	cfg.fill()
	db := engine.Open(engine.Config{
		MemoryBytes: cfg.MemoryBytes, ReadLatency: cfg.ReadLatency, Optimizer: cfg.Optimizer,
	})
	for _, t := range []string{"parent", "child"} {
		var sb strings.Builder
		fmt.Fprintf(&sb, "CREATE TABLE %s (id INTEGER NOT NULL", t)
		if t == "child" {
			sb.WriteString(", parent INTEGER NOT NULL")
		}
		for i := 1; i <= DataCols; i++ {
			fmt.Fprintf(&sb, ", %s %s", colName(i), colType(i))
		}
		sb.WriteString(")")
		if _, err := db.Exec(sb.String()); err != nil {
			return nil, err
		}
	}
	if _, err := db.Exec("CREATE UNIQUE INDEX parent_pk ON parent (id)"); err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE UNIQUE INDEX child_pk ON child (id)"); err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE INDEX child_fk ON child (parent, id)"); err != nil {
		return nil, err
	}
	return &Instance{Name: "conventional", DB: db, cfg: cfg}, nil
}

// NewChunk provisions a Chunk Table layout of the given width.
// flattened selects the pre-flattened transformation mode.
func NewChunk(cfg Config, width int, flattened bool) (*Instance, error) {
	cfg.fill()
	db := engine.Open(engine.Config{
		MemoryBytes: cfg.MemoryBytes, ReadLatency: cfg.ReadLatency, Optimizer: cfg.Optimizer,
	})
	l, err := core.NewChunkLayout(Schema(), core.ChunkOptions{
		Defs: ChunkDefs(width), Flattened: flattened,
	})
	if err != nil {
		return nil, err
	}
	if err := l.Create(db, []*core.Tenant{{ID: 1}}); err != nil {
		return nil, err
	}
	return &Instance{
		Name: fmt.Sprintf("chunk%d", width), Width: width,
		DB: db, mapper: core.NewMapper(db, l), cfg: cfg,
	}, nil
}

// NewVertical provisions the Figure 12 baseline: the same chunks, each
// in its own physical table.
func NewVertical(cfg Config, width int) (*Instance, error) {
	cfg.fill()
	db := engine.Open(engine.Config{
		MemoryBytes: cfg.MemoryBytes, ReadLatency: cfg.ReadLatency, Optimizer: cfg.Optimizer,
	})
	l, err := core.NewVerticalLayout(Schema(), ChunkDefs(width))
	if err != nil {
		return nil, err
	}
	if err := l.Create(db, []*core.Tenant{{ID: 1}}); err != nil {
		return nil, err
	}
	return &Instance{
		Name: fmt.Sprintf("vertical%d", width), Width: width,
		DB: db, mapper: core.NewMapper(db, l), cfg: cfg,
	}, nil
}

// Load populates the instance with the synthetic dataset: cfg.Parents
// parent rows, cfg.ChildrenPerParent children each, equivalent data in
// every configuration.
func (in *Instance) Load() error {
	cfg := in.cfg
	insert := func(table string, first, count int64, mkRow func(row int64) string) error {
		const batch = 20
		for done := int64(0); done < count; {
			n := count - done
			if n > batch {
				n = batch
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
			for i := int64(0); i < n; i++ {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(mkRow(first + done + i))
			}
			if err := in.exec(sb.String()); err != nil {
				return err
			}
			done += n
		}
		return nil
	}
	parentRow := func(row int64) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "(%d", row)
		for c := 1; c <= DataCols; c++ {
			sb.WriteString(", " + valueLiteral(row, c))
		}
		sb.WriteString(")")
		return sb.String()
	}
	childRow := func(row int64) string {
		parent := (row-1)/int64(cfg.ChildrenPerParent) + 1
		var sb strings.Builder
		fmt.Fprintf(&sb, "(%d, %d", row, parent)
		for c := 1; c <= DataCols; c++ {
			sb.WriteString(", " + valueLiteral(row*31, c))
		}
		sb.WriteString(")")
		return sb.String()
	}
	if err := insert("parent", 1, int64(cfg.Parents), parentRow); err != nil {
		return err
	}
	return insert("child", 1, int64(cfg.Parents)*int64(cfg.ChildrenPerParent), childRow)
}

func (in *Instance) exec(q string) error {
	if in.mapper != nil {
		_, err := in.mapper.Exec(1, q)
		return err
	}
	_, err := in.DB.Exec(q)
	return err
}

// Query runs a logical query with params.
func (in *Instance) Query(q string, params ...types.Value) (*engine.Rows, error) {
	if in.mapper != nil {
		return in.mapper.Query(1, q, params...)
	}
	return in.DB.Query(q, params...)
}

// Explain returns the physical plan of a logical query (Figure 8).
func (in *Instance) Explain(q string) (string, error) {
	if in.mapper != nil {
		return in.mapper.Explain(1, q)
	}
	return in.DB.Explain(q)
}

// RewriteSQL shows the transformed physical SQL.
func (in *Instance) RewriteSQL(q string) (string, error) {
	if in.mapper == nil {
		return q, nil
	}
	sqls, err := in.mapper.RewriteSQL(1, q)
	if err != nil {
		return "", err
	}
	return strings.Join(sqls, ";\n"), nil
}

// Measurement is one cell of the Figure 9/10/11 series.
type Measurement struct {
	WarmTime      time.Duration // Fig 9: average warm-cache response time
	ColdTime      time.Duration // Fig 11: average cold-cache response time
	LogicalReads  int64         // Fig 10: logical page reads per execution
	PhysicalReads int64         // pages faulted per cold execution
	Rows          int           // result cardinality sanity check
}

// MeasureQ2 runs Q2 at the given scale. Warm runs reuse one parent id
// ("for all of them we used the same values for parameter ? so the data
// was in memory", Test 3); cold runs flush the buffer pool between
// executions (Test 5); logical reads are averaged over the warm runs
// (Test 4).
func (in *Instance) MeasureQ2(query string, runs int, parentID int64) (Measurement, error) {
	if runs <= 0 {
		runs = 5
	}
	var m Measurement
	param := types.NewInt(parentID)

	// Warm-up, then timed warm runs with logical-read accounting.
	rows, err := in.Query(query, param)
	if err != nil {
		return m, err
	}
	m.Rows = len(rows.Data)
	in.DB.ResetStats()
	t0 := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := in.Query(query, param); err != nil {
			return m, err
		}
	}
	m.WarmTime = time.Since(t0) / time.Duration(runs)
	m.LogicalReads = in.DB.Stats().Pool.TotalLogicalReads() / int64(runs)

	// Cold runs: drop caches before each execution.
	var coldTotal time.Duration
	in.DB.ResetStats()
	for i := 0; i < runs; i++ {
		if err := in.DB.DropCaches(); err != nil {
			return m, err
		}
		t0 := time.Now()
		if _, err := in.Query(query, param); err != nil {
			return m, err
		}
		coldTotal += time.Since(t0)
	}
	m.ColdTime = coldTotal / time.Duration(runs)
	m.PhysicalReads = in.DB.Stats().Pool.TotalPhysicalReads() / int64(runs)
	return m, nil
}

// Improvement returns the Figure 12 response-time improvement of chunk
// folding over vertical partitioning, in percent (positive = folding
// faster). It is computed on the cold-cache times: the paper's testbed
// dataset exceeded its buffer pool, so its "response time" reflects the
// cache-locality effect that folding buys — a logical row's chunks
// share heap pages in the folded tables but live on one page per table
// under vertical partitioning (§6.2 Test 6). The paper itself places
// realistic response times "between the cold cache case and the warm
// cache case".
func Improvement(folded, vertical Measurement) float64 {
	if vertical.ColdTime == 0 {
		return 0
	}
	return 100 * (1 - float64(folded.ColdTime)/float64(vertical.ColdTime))
}

// PlanOperators extracts the distinct operator labels of an EXPLAIN
// tree (used by the Figure 8 shape assertions).
func PlanOperators(explain string) map[string]int {
	out := map[string]int{}
	for _, line := range strings.Split(explain, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		op := line
		if i := strings.IndexAny(line, " ["); i > 0 {
			op = line[:i]
		}
		out[op]++
	}
	return out
}

// ParseQ2 is a helper for tests: it validates the query text parses.
func ParseQ2(scale int) error {
	_, err := sql.Parse(Q2(scale))
	return err
}
