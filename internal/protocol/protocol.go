// Package protocol is the wire protocol between the mtdserver front
// door and its clients: a length-prefixed, CRC-framed binary framing
// with a small message vocabulary — credentialed handshake, simple and
// prepared statements, explicit transaction control (which travels as
// ordinary statements), and streaming result batches. Row payloads use
// the engine's own row serialization (types.EncodeRow), so a result
// batch on the wire is byte-for-byte the executor's row encoding.
//
// Frame layout (all integers big-endian):
//
//	[4-byte payload length][4-byte CRC-32C of payload][payload]
//
// The payload's first byte is the message type; the rest is the
// message body. A frame whose length exceeds MaxFrame is rejected
// before any allocation, a frame whose checksum does not match its
// payload is ErrBadCRC, and a connection that dies mid-frame surfaces
// io.ErrUnexpectedEOF — the three failure modes a server must survive
// from arbitrary clients.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/types"
)

// Version is the protocol version carried in the handshake. A server
// refuses a Hello with a different major version.
const Version uint32 = 1

// MaxFrame bounds a single frame's payload (header excluded). Result
// streams chunk into batches well below this; anything larger on the
// wire is a corrupt or hostile peer.
const MaxFrame = 8 << 20

// MaxBatch bounds the statements one Batch frame may carry. A pipeline
// deeper than this is a hostile or broken client (the server refuses
// the whole frame as a protocol error).
const MaxBatch = 1024

// headerSize is the fixed frame header: length + CRC.
const headerSize = 8

// castagnoli is the CRC-32C table (same polynomial as the WAL frames).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Framing errors.
var (
	// ErrBadCRC: the payload does not match its checksum.
	ErrBadCRC = errors.New("protocol: frame checksum mismatch")
	// ErrFrameTooLarge: declared payload length exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("protocol: frame exceeds size limit")
	// ErrShortFrame: a decode ran off the end of the message body.
	ErrShortFrame = errors.New("protocol: truncated message body")
	// ErrBadMessage: unknown message type or malformed body.
	ErrBadMessage = errors.New("protocol: malformed message")
)

// Message types. Client-originated types have the high bit clear,
// server-originated ones have it set.
const (
	TypeHello     byte = 0x01 // Hello: version, tenant, token
	TypeExec      byte = 0x02 // Exec: sql, params
	TypeQuery     byte = 0x03 // Query: sql, params
	TypePrepare   byte = 0x04 // Prepare: sql
	TypeStmtExec  byte = 0x05 // StmtExec: stmt id, params
	TypeStmtQuery byte = 0x06 // StmtQuery: stmt id, params
	TypeStmtClose byte = 0x07 // StmtClose: stmt id
	TypePing      byte = 0x08 // Ping
	TypeGoodbye   byte = 0x09 // Goodbye: orderly close
	TypeStats     byte = 0x0A // Stats: request the server's counters
	TypeBatch     byte = 0x0B // Batch: pipelined statements, executed in order

	TypeHelloOK  byte = 0x81 // HelloOK: session id
	TypeError    byte = 0x82 // Error: code, message
	TypeResult   byte = 0x83 // Result: rows affected
	TypeRowsHdr  byte = 0x84 // RowsHeader: column names
	TypeRowBatch byte = 0x85 // RowBatch: rows, last flag
	TypePrepared byte = 0x86 // Prepared: stmt id, is-query flag
	TypePong     byte = 0x87 // Pong
	TypeStatsRes byte = 0x88 // StatsResult: JSON blob

	TypeBatchResult byte = 0x89 // BatchResult: index, rows affected
	TypeBatchError  byte = 0x8A // BatchError: index, code, message
	TypeBatchRows   byte = 0x8B // BatchRowsHeader: index, columns (RowBatch frames follow)
	TypeBatchDone   byte = 0x8C // BatchDone: statements executed (ends the reply stream)

	TypeReplSubscribe byte = 0x0C // ReplSubscribe: start streaming WAL from an LSN
	TypeReplAck       byte = 0x0D // ReplAck: follower's applied LSN

	TypeReplSnapshot byte = 0x8D // ReplSnapshot: bootstrap image chunk, last flag
	TypeReplFrames   byte = 0x8E // ReplFrames: start LSN, raw WAL frame bytes
)

// Error codes carried by Error messages.
const (
	CodeProtocol  uint16 = 1 // malformed frame or message
	CodeAuth      uint16 = 2 // unknown tenant or bad credentials
	CodeQuota     uint16 = 3 // per-tenant session quota exhausted
	CodeRateLimit uint16 = 4 // per-tenant statement rate exceeded
	CodeSQL       uint16 = 5 // statement failed (parse, plan, execute)
	CodeConflict  uint16 = 6 // write-write conflict; transaction rolled back
	CodeShutdown  uint16 = 7 // server is draining
	CodeClosed    uint16 = 8 // session already closed
	CodePoisoned  uint16 = 9 // skipped: an earlier statement in the pipeline failed
)

// --- framing -----------------------------------------------------------------

// WriteFrame writes one frame carrying payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame and returns its payload. A peer that
// vanishes mid-frame yields io.ErrUnexpectedEOF (io.EOF only on a
// clean boundary); a declared length beyond MaxFrame is rejected
// before allocating; a checksum mismatch is ErrBadCRC.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF at a frame boundary, ErrUnexpectedEOF inside
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, ErrBadCRC
	}
	return payload, nil
}

// DecodeFrame splits one frame off buf (the in-memory form of
// ReadFrame, used by the fuzz target and by tests over captured
// bytes): payload plus the unconsumed rest. A partial frame is
// io.ErrUnexpectedEOF.
func DecodeFrame(buf []byte) (payload, rest []byte, err error) {
	if len(buf) < headerSize {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(buf[0:4])
	if n > MaxFrame {
		return nil, nil, ErrFrameTooLarge
	}
	if uint32(len(buf)-headerSize) < n {
		return nil, nil, io.ErrUnexpectedEOF
	}
	payload = buf[headerSize : headerSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(buf[4:8]) {
		return nil, nil, ErrBadCRC
	}
	return payload, buf[headerSize+int(n):], nil
}

// --- messages ----------------------------------------------------------------

// Hello opens a connection: protocol version plus the tenant's
// credentials. The server answers HelloOK or Error.
type Hello struct {
	Version uint32
	Tenant  int64
	Token   string
}

// HelloOK acknowledges a successful handshake.
type HelloOK struct{ SessionID uint64 }

// Exec runs one statement (DML, DDL, or transaction control) and
// answers Result or Error.
type Exec struct {
	SQL    string
	Params []types.Value
}

// Query runs a SELECT and answers RowsHeader + RowBatch* or Error.
type Query struct {
	SQL    string
	Params []types.Value
}

// Prepare registers a statement server-side and answers Prepared.
type Prepare struct{ SQL string }

// StmtExec executes a prepared non-query statement.
type StmtExec struct {
	ID     uint32
	Params []types.Value
}

// StmtQuery executes a prepared SELECT.
type StmtQuery struct {
	ID     uint32
	Params []types.Value
}

// StmtClose discards a prepared statement.
type StmtClose struct{ ID uint32 }

// Ping answers Pong (the pool's health check).
type Ping struct{}

// Goodbye announces an orderly client close.
type Goodbye struct{}

// Stats requests the server's counters; answered by StatsResult.
type Stats struct{}

// Error reports a failure; Code classifies it for the client.
type Error struct {
	Code uint16
	Msg  string
}

// Result reports a non-query statement's outcome.
type Result struct{ RowsAffected int64 }

// RowsHeader opens a result stream with its column names.
type RowsHeader struct{ Columns []string }

// RowBatch carries a chunk of result rows; Last marks the end of the
// stream (a Last batch may be empty).
type RowBatch struct {
	Rows [][]types.Value
	Last bool
}

// Prepared acknowledges a Prepare with the server-side statement id.
type Prepared struct {
	ID      uint32
	IsQuery bool
}

// Pong answers a Ping.
type Pong struct{}

// StatsResult carries the server's counters as JSON.
type StatsResult struct{ JSON []byte }

// BatchStmt is one statement inside a Batch. Query selects the reply
// shape: a query answers BatchRowsHeader + RowBatch*, a non-query
// answers BatchResult.
type BatchStmt struct {
	Query  bool
	SQL    string
	Params []types.Value
}

// Batch pipelines up to MaxBatch statements in one frame. The server
// executes them strictly in order and streams back exactly one tagged
// reply per statement (BatchResult, BatchError, or BatchRowsHeader +
// its RowBatch stream), then a single BatchDone. After the first
// failure the remaining statements are NOT executed; each answers
// BatchError with CodePoisoned so replies stay 1:1 with statements.
type Batch struct {
	Stmts []BatchStmt
}

// BatchResult reports statement Index's non-query outcome.
type BatchResult struct {
	Index        uint32
	RowsAffected int64
}

// BatchError reports statement Index's failure (or CodePoisoned if it
// was skipped because an earlier statement in the batch failed).
type BatchError struct {
	Index uint32
	Code  uint16
	Msg   string
}

// BatchRowsHeader opens statement Index's result stream; ordinary
// RowBatch frames follow until one with Last set.
type BatchRowsHeader struct {
	Index   uint32
	Columns []string
}

// BatchDone terminates a Batch's reply stream. Executed counts the
// statements that actually ran (the rest were poisoned).
type BatchDone struct {
	Executed uint32
}

// ReplSubscribe turns the connection into a replication stream: the
// server ships WAL frames from From onward, forever. From below the
// primary's retained history triggers a bootstrap: ReplSnapshot chunks
// carrying a full engine.ReplImage precede the frame stream. From 0
// always bootstraps (the empty-follower case). After subscribing, the
// client sends only ReplAck; the server sends only ReplSnapshot,
// ReplFrames, and Error.
type ReplSubscribe struct{ From uint64 }

// ReplAck reports the follower's applied position (flow-control-free
// telemetry; the server never waits for it).
type ReplAck struct{ Applied uint64 }

// ReplSnapshot carries one chunk of a bootstrap image; Last marks the
// final chunk (the concatenation decodes via engine.DecodeReplImage).
type ReplSnapshot struct {
	Last  bool
	Chunk []byte
}

// ReplFrames carries raw WAL frame bytes whose first byte sits at
// stream offset Start. Frames are whole WAL frames, verbatim — the
// follower ingests them into its mirror log without re-encoding.
type ReplFrames struct {
	Start  uint64
	Frames []byte
}

// --- encoding ----------------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.BigEndian.AppendUint64(b, uint64(v)) }

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// appendParams appends a parameter row (types.EncodeRow with a length
// prefix), encoding directly into b's tail via a backfilled length —
// no intermediate row buffer.
func appendParams(b []byte, params []types.Value) []byte {
	return appendRowInline(b, params)
}

// appendRowInline appends one length-prefixed EncodeRow payload by
// reserving the 4-byte length, encoding in place, and backfilling the
// actual size. This is the arena path: when b has capacity (FrameWriter
// reuse), a row costs zero allocations.
func appendRowInline(b []byte, row []types.Value) []byte {
	at := len(b)
	b = append(b, 0, 0, 0, 0)
	b = types.EncodeRow(b, row)
	binary.BigEndian.PutUint32(b[at:at+4], uint32(len(b)-at-4))
	return b
}

// Encode renders m as a frame payload (type byte + body). It panics on
// an unknown message type: encoding is always of our own values.
func Encode(m any) []byte { return AppendEncode(nil, m) }

// AppendEncode appends m's frame payload (type byte + body) to dst and
// returns the extended slice. FrameWriter uses it to reuse one encode
// arena across frames; Encode is AppendEncode(nil, m).
func AppendEncode(dst []byte, m any) []byte {
	switch m := m.(type) {
	case *Hello:
		b := append(dst, TypeHello)
		b = appendU32(b, m.Version)
		b = appendI64(b, m.Tenant)
		return appendString(b, m.Token)
	case *HelloOK:
		return appendU64(append(dst, TypeHelloOK), m.SessionID)
	case *Exec:
		b := appendString(append(dst, TypeExec), m.SQL)
		return appendParams(b, m.Params)
	case *Query:
		b := appendString(append(dst, TypeQuery), m.SQL)
		return appendParams(b, m.Params)
	case *Prepare:
		return appendString(append(dst, TypePrepare), m.SQL)
	case *StmtExec:
		b := appendU32(append(dst, TypeStmtExec), m.ID)
		return appendParams(b, m.Params)
	case *StmtQuery:
		b := appendU32(append(dst, TypeStmtQuery), m.ID)
		return appendParams(b, m.Params)
	case *StmtClose:
		return appendU32(append(dst, TypeStmtClose), m.ID)
	case *Ping:
		return append(dst, TypePing)
	case *Goodbye:
		return append(dst, TypeGoodbye)
	case *Stats:
		return append(dst, TypeStats)
	case *Batch:
		b := appendU32(append(dst, TypeBatch), uint32(len(m.Stmts)))
		for i := range m.Stmts {
			s := &m.Stmts[i]
			if s.Query {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendString(b, s.SQL)
			b = appendParams(b, s.Params)
		}
		return b
	case *Error:
		b := appendU16(append(dst, TypeError), m.Code)
		return appendString(b, m.Msg)
	case *Result:
		return appendI64(append(dst, TypeResult), m.RowsAffected)
	case *RowsHeader:
		b := appendU32(append(dst, TypeRowsHdr), uint32(len(m.Columns)))
		for _, c := range m.Columns {
			b = appendString(b, c)
		}
		return b
	case *RowBatch:
		b := append(dst, TypeRowBatch)
		if m.Last {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendU32(b, uint32(len(m.Rows)))
		for _, r := range m.Rows {
			b = appendRowInline(b, r)
		}
		return b
	case *Prepared:
		b := appendU32(append(dst, TypePrepared), m.ID)
		if m.IsQuery {
			return append(b, 1)
		}
		return append(b, 0)
	case *Pong:
		return append(dst, TypePong)
	case *StatsResult:
		return appendBytes(append(dst, TypeStatsRes), m.JSON)
	case *BatchResult:
		b := appendU32(append(dst, TypeBatchResult), m.Index)
		return appendI64(b, m.RowsAffected)
	case *BatchError:
		b := appendU32(append(dst, TypeBatchError), m.Index)
		b = appendU16(b, m.Code)
		return appendString(b, m.Msg)
	case *BatchRowsHeader:
		b := appendU32(append(dst, TypeBatchRows), m.Index)
		b = appendU32(b, uint32(len(m.Columns)))
		for _, c := range m.Columns {
			b = appendString(b, c)
		}
		return b
	case *BatchDone:
		return appendU32(append(dst, TypeBatchDone), m.Executed)
	case *ReplSubscribe:
		return appendU64(append(dst, TypeReplSubscribe), m.From)
	case *ReplAck:
		return appendU64(append(dst, TypeReplAck), m.Applied)
	case *ReplSnapshot:
		b := append(dst, TypeReplSnapshot)
		if m.Last {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		return appendBytes(b, m.Chunk)
	case *ReplFrames:
		b := appendU64(append(dst, TypeReplFrames), m.Start)
		return appendBytes(b, m.Frames)
	}
	panic(fmt.Sprintf("protocol: Encode of unknown message %T", m))
}

// --- decoding ----------------------------------------------------------------

// dec is a bounds-checked cursor over a message body. Every getter
// reports failure by setting err; callers check once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrShortFrame
	}
	d.b = nil
}

func (d *dec) u16() uint16 {
	if len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u32() uint32 {
	if len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) byte() byte {
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bytes() []byte {
	n := d.u32()
	if uint32(len(d.b)) < n {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

// row decodes one length-prefixed EncodeRow payload, bounding the
// declared value count by the payload size (each value costs at least
// one byte) so a hostile count cannot drive a huge allocation.
func (d *dec) row() []types.Value {
	p := d.bytes()
	if d.err != nil {
		return nil
	}
	if len(p) == 0 {
		d.fail()
		return nil
	}
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		d.fail()
		return nil
	}
	row, err := types.DecodeRow(p)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadMessage, err)
		d.b = nil
		return nil
	}
	return row
}

// done finalizes a decode: any leftover bytes mean a malformed body.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.b))
	}
	return nil
}

// maxListItems bounds decoded list lengths by the bytes that could
// possibly back them (each item costs at least one byte on the wire).
func maxListItems(n uint32, remaining int) bool { return uint64(n) <= uint64(remaining) }

// Decode parses a frame payload into its message struct.
func Decode(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrBadMessage)
	}
	d := &dec{b: payload[1:]}
	switch payload[0] {
	case TypeHello:
		m := &Hello{Version: d.u32(), Tenant: d.i64(), Token: d.str()}
		return m, d.done()
	case TypeHelloOK:
		m := &HelloOK{SessionID: d.u64()}
		return m, d.done()
	case TypeExec:
		m := &Exec{SQL: d.str(), Params: d.row()}
		return m, d.done()
	case TypeQuery:
		m := &Query{SQL: d.str(), Params: d.row()}
		return m, d.done()
	case TypePrepare:
		m := &Prepare{SQL: d.str()}
		return m, d.done()
	case TypeStmtExec:
		m := &StmtExec{ID: d.u32(), Params: d.row()}
		return m, d.done()
	case TypeStmtQuery:
		m := &StmtQuery{ID: d.u32(), Params: d.row()}
		return m, d.done()
	case TypeStmtClose:
		m := &StmtClose{ID: d.u32()}
		return m, d.done()
	case TypePing:
		return &Ping{}, d.done()
	case TypeGoodbye:
		return &Goodbye{}, d.done()
	case TypeStats:
		return &Stats{}, d.done()
	case TypeBatch:
		n := d.u32()
		if d.err == nil && (n == 0 || n > MaxBatch || !maxListItems(n, len(d.b))) {
			d.fail()
		}
		m := &Batch{}
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Stmts = append(m.Stmts, BatchStmt{
				Query:  d.byte() != 0,
				SQL:    d.str(),
				Params: d.row(),
			})
		}
		return m, d.done()
	case TypeError:
		m := &Error{Code: d.u16(), Msg: d.str()}
		return m, d.done()
	case TypeResult:
		m := &Result{RowsAffected: d.i64()}
		return m, d.done()
	case TypeRowsHdr:
		n := d.u32()
		if d.err == nil && !maxListItems(n, len(d.b)) {
			d.fail()
		}
		m := &RowsHeader{}
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Columns = append(m.Columns, d.str())
		}
		return m, d.done()
	case TypeRowBatch:
		m := &RowBatch{Last: d.byte() != 0}
		n := d.u32()
		if d.err == nil && !maxListItems(n, len(d.b)) {
			d.fail()
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Rows = append(m.Rows, d.row())
		}
		return m, d.done()
	case TypePrepared:
		m := &Prepared{ID: d.u32(), IsQuery: d.byte() != 0}
		return m, d.done()
	case TypePong:
		return &Pong{}, d.done()
	case TypeStatsRes:
		b := d.bytes()
		m := &StatsResult{JSON: append([]byte(nil), b...)}
		return m, d.done()
	case TypeBatchResult:
		m := &BatchResult{Index: d.u32(), RowsAffected: d.i64()}
		return m, d.done()
	case TypeBatchError:
		m := &BatchError{Index: d.u32(), Code: d.u16(), Msg: d.str()}
		return m, d.done()
	case TypeBatchRows:
		m := &BatchRowsHeader{Index: d.u32()}
		n := d.u32()
		if d.err == nil && !maxListItems(n, len(d.b)) {
			d.fail()
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Columns = append(m.Columns, d.str())
		}
		return m, d.done()
	case TypeBatchDone:
		m := &BatchDone{Executed: d.u32()}
		return m, d.done()
	case TypeReplSubscribe:
		m := &ReplSubscribe{From: d.u64()}
		return m, d.done()
	case TypeReplAck:
		m := &ReplAck{Applied: d.u64()}
		return m, d.done()
	case TypeReplSnapshot:
		m := &ReplSnapshot{Last: d.byte() != 0}
		b := d.bytes()
		m.Chunk = append([]byte(nil), b...)
		return m, d.done()
	case TypeReplFrames:
		m := &ReplFrames{Start: d.u64()}
		b := d.bytes()
		m.Frames = append([]byte(nil), b...)
		return m, d.done()
	}
	return nil, fmt.Errorf("%w: unknown type 0x%02x", ErrBadMessage, payload[0])
}

// SanitizeParams rejects parameter values a server should never accept
// from the wire (NaN floats break index ordering invariants).
func SanitizeParams(params []types.Value) error {
	for i, v := range params {
		if v.Kind == types.KindFloat && math.IsNaN(v.Float) {
			return fmt.Errorf("%w: parameter %d is NaN", ErrBadMessage, i)
		}
	}
	return nil
}

// Error implements the error interface so servers' Error messages can
// flow through Go error returns on the client.
func (e *Error) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// --- frame writer ------------------------------------------------------------

// FrameWriter encodes messages into a reusable arena and writes each as
// one framed Write call (header + payload in a single buffer, so a
// bufio.Writer underneath sees one append per frame instead of two, and
// row batches encode with zero per-row allocations once the arena is
// warm). Not safe for concurrent use; each connection owns one.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a FrameWriter over w (typically a
// bufio.Writer; the caller decides when to Flush it).
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, buf: make([]byte, 0, 4096)}
}

// WriteMsg encodes m and writes it as one frame. The encode arena is
// reused across calls; oversized frames shrink it back afterwards so a
// single huge result does not pin memory for the connection's life.
func (fw *FrameWriter) WriteMsg(m any) error {
	b := append(fw.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	b = AppendEncode(b, m)
	payload := b[headerSize:]
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	if cap(b) <= 1<<20 {
		fw.buf = b[:0]
	} else {
		fw.buf = make([]byte, 0, 4096)
	}
	_, err := fw.w.Write(b)
	return err
}
