package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame splitter and the
// message decoder: neither may panic, loop, or over-allocate, and any
// frame that passes the CRC must decode deterministically (decode →
// re-encode → decode is a fixed point).
func FuzzDecodeFrame(f *testing.F) {
	// Seed with one valid frame per message type plus classic cruft.
	seeds := []any{
		&Hello{Version: Version, Tenant: 17, Token: "t"},
		&Exec{SQL: "SELECT 1"},
		&Query{SQL: "SELECT * FROM t"},
		&RowsHeader{Columns: []string{"a"}},
		&RowBatch{Last: true},
		&Error{Code: CodeSQL, Msg: "x"},
		&Batch{Stmts: []BatchStmt{{SQL: "BEGIN"}, {Query: true, SQL: "SELECT 1"}}},
		&BatchResult{Index: 1, RowsAffected: 2},
		&BatchError{Index: 2, Code: CodePoisoned, Msg: "skipped"},
		&BatchRowsHeader{Index: 0, Columns: []string{"a"}},
		&BatchDone{Executed: 3},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Encode(m)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, rest, err := DecodeFrame(data)
		if err != nil {
			// Reading the same bytes through the streaming path must agree.
			if _, rerr := ReadFrame(bytes.NewReader(data)); rerr == nil {
				t.Fatalf("DecodeFrame err %v but ReadFrame accepted", err)
			}
			return
		}
		if len(payload)+headerSize+len(rest) != len(data) {
			t.Fatalf("frame split lost bytes: %d + %d + %d != %d",
				len(payload), headerSize, len(rest), len(data))
		}
		m, err := Decode(payload)
		if err != nil {
			return // malformed message inside a well-formed frame: fine
		}
		// Fixed point: re-encoding a decoded message must decode to the
		// same encoding again.
		enc := Encode(m)
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of %T failed: %v", m, err)
		}
		if !bytes.Equal(enc, Encode(m2)) {
			t.Fatalf("decode/encode not a fixed point for %T", m)
		}
	})
}
