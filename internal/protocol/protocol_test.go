package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/types"
)

// roundTrip encodes m into a frame, reads it back, and decodes it.
func roundTrip(t *testing.T, m any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Encode(m)); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	out, err := Decode(payload)
	if err != nil {
		t.Fatalf("Decode(%T): %v", m, err)
	}
	return out
}

func TestMessageRoundTrips(t *testing.T) {
	params := []types.Value{
		types.NewInt(42), types.NewString("hello"), types.Null(),
		types.NewFloat(3.5), types.NewBool(true), types.NewDate(19000),
	}
	msgs := []any{
		&Hello{Version: Version, Tenant: 17, Token: "tenant-17-secret"},
		&HelloOK{SessionID: 99},
		&Exec{SQL: "INSERT INTO t VALUES (?)", Params: params},
		&Query{SQL: "SELECT * FROM t WHERE a = ?", Params: params[:1]},
		&Query{SQL: "SELECT 1"}, // nil params
		&Prepare{SQL: "SELECT * FROM t"},
		&StmtExec{ID: 7, Params: params},
		&StmtQuery{ID: 8},
		&StmtClose{ID: 7},
		&Ping{}, &Goodbye{}, &Stats{},
		&Error{Code: CodeAuth, Msg: "bad token"},
		&Result{RowsAffected: -1},
		&RowsHeader{Columns: []string{"a", "b", "c"}},
		&RowsHeader{},
		&RowBatch{Rows: [][]types.Value{params, params[:2], nil}, Last: false},
		&RowBatch{Last: true},
		&Prepared{ID: 3, IsQuery: true},
		&Pong{},
		&StatsResult{JSON: []byte(`{"x":1}`)},
		&Batch{Stmts: []BatchStmt{
			{SQL: "BEGIN"},
			{SQL: "UPDATE t SET a = ? WHERE id = ?", Params: params[:2]},
			{Query: true, SQL: "SELECT * FROM t WHERE id = ?", Params: params[:1]},
			{SQL: "COMMIT"},
		}},
		&BatchResult{Index: 2, RowsAffected: 7},
		&BatchError{Index: 3, Code: CodePoisoned, Msg: "skipped"},
		&BatchRowsHeader{Index: 1, Columns: []string{"a", "b"}},
		&BatchRowsHeader{Index: 0},
		&BatchDone{Executed: 4},
		&ReplSubscribe{From: 1},
		&ReplSubscribe{},
		&ReplAck{Applied: 1 << 40},
		&ReplSnapshot{Chunk: []byte{1, 2, 3}},
		&ReplSnapshot{Last: true},
		&ReplFrames{Start: 4096, Frames: []byte{9, 9, 9}},
		&ReplFrames{Start: 1},
	}
	for _, m := range msgs {
		out := roundTrip(t, m)
		// Decoded empty slices come back nil-vs-empty equivalently; use
		// the re-encoded bytes as the equality domain.
		if !bytes.Equal(Encode(m), Encode(out)) {
			t.Errorf("round trip of %T changed encoding:\n in: %#v\nout: %#v", m, m, out)
		}
		if reflect.TypeOf(out) != reflect.TypeOf(m) {
			t.Errorf("round trip of %T returned %T", m, out)
		}
	}
}

func TestReadFrameTornHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Encode(&Ping{})); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix of the frame must yield EOF (empty) or
	// ErrUnexpectedEOF (torn), never a decoded message or a hang.
	for cut := 0; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut=0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestReadFrameBadCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Encode(&Exec{SQL: "SELECT 1"})); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one bit in every byte position in turn: header corruption
	// must yield ErrBadCRC, ErrFrameTooLarge, or a torn read — never a
	// silently accepted wrong payload.
	for i := range full {
		cp := append([]byte(nil), full...)
		cp[i] ^= 0x40
		payload, err := ReadFrame(bytes.NewReader(cp))
		if err == nil {
			// The only acceptable no-error outcome is the flip landing in
			// the length field such that a *shorter* valid frame parses —
			// impossible here because CRC covers the whole payload.
			t.Fatalf("bit flip at %d accepted: payload %x", i, payload)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// WriteFrame refuses to produce one.
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame oversized: want ErrFrameTooLarge, got %v", err)
	}
}

func TestDecodeFrameSplitsStream(t *testing.T) {
	var buf bytes.Buffer
	for _, m := range []any{&Ping{}, &Exec{SQL: "SELECT 1"}, &Goodbye{}} {
		if err := WriteFrame(&buf, Encode(m)); err != nil {
			t.Fatal(err)
		}
	}
	rest := buf.Bytes()
	var got []any
	for len(rest) > 0 {
		payload, r, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		m, err := Decode(payload)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		got, rest = append(got, m), r
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(got))
	}
	if _, ok := got[1].(*Exec); !ok {
		t.Fatalf("middle message is %T, want *Exec", got[1])
	}
}

func TestDecodeTruncatedBodies(t *testing.T) {
	// Every proper prefix of every message body must error, never panic
	// or succeed (no message here has a valid proper prefix: all end
	// with fixed-width or length-prefixed fields).
	msgs := []any{
		&Hello{Version: Version, Tenant: 17, Token: "secret"},
		&Exec{SQL: "INSERT", Params: []types.Value{types.NewInt(1)}},
		&Query{SQL: "SELECT"},
		&StmtExec{ID: 1, Params: []types.Value{types.NewString("x")}},
		&Error{Code: CodeSQL, Msg: "boom"},
		&RowsHeader{Columns: []string{"a", "b"}},
		&RowBatch{Rows: [][]types.Value{{types.NewInt(1)}}, Last: true},
		&Prepared{ID: 9, IsQuery: false},
		&Result{RowsAffected: 3},
		&Batch{Stmts: []BatchStmt{
			{SQL: "BEGIN"},
			{Query: true, SQL: "SELECT 1", Params: []types.Value{types.NewInt(4)}},
		}},
		&BatchError{Index: 1, Code: CodeSQL, Msg: "boom"},
		&BatchRowsHeader{Index: 2, Columns: []string{"a"}},
		&BatchDone{Executed: 2},
		&ReplSubscribe{From: 77},
		&ReplAck{Applied: 1234},
		&ReplSnapshot{Last: true, Chunk: []byte("img")},
		&ReplFrames{Start: 88, Frames: []byte("fr")},
	}
	for _, m := range msgs {
		full := Encode(m)
		for cut := 1; cut < len(full); cut++ {
			if _, err := Decode(full[:cut]); err == nil {
				t.Errorf("%T truncated at %d decoded successfully", m, cut)
			}
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	b := append(Encode(&Ping{}), 0xFF)
	if _, err := Decode(b); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeHostileListCounts(t *testing.T) {
	// A RowsHeader declaring 2^32-1 columns with a tiny body must fail
	// fast instead of allocating.
	b := appendU32([]byte{TypeRowsHdr}, 0xFFFFFFFF)
	if _, err := Decode(b); err == nil {
		t.Fatal("hostile column count accepted")
	}
	// A parameter row declaring 2^40 values inside a 3-byte payload.
	hostile := binary.AppendUvarint(nil, 1<<40)
	body := appendString([]byte{TypeExec}, "SELECT 1")
	body = appendBytes(body, hostile)
	if _, err := Decode(body); err == nil {
		t.Fatal("hostile row count accepted")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0x7F}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("empty payload: want ErrBadMessage, got %v", err)
	}
}

func TestDecodeBatchBounds(t *testing.T) {
	// An empty batch is a protocol error: there is nothing to answer.
	if _, err := Decode(appendU32([]byte{TypeBatch}, 0)); err == nil {
		t.Fatal("empty batch accepted")
	}
	// A count beyond MaxBatch fails before any statement decodes, even
	// if the body had bytes to back it.
	b := appendU32([]byte{TypeBatch}, MaxBatch+1)
	b = append(b, make([]byte, MaxBatch+1)...)
	if _, err := Decode(b); err == nil {
		t.Fatal("over-limit batch accepted")
	}
	// A hostile count with a tiny body fails fast without allocating.
	if _, err := Decode(appendU32([]byte{TypeBatch}, 0xFFFFFFF0)); err == nil {
		t.Fatal("hostile batch count accepted")
	}
	// MaxBatch exactly is accepted.
	big := &Batch{Stmts: make([]BatchStmt, MaxBatch)}
	for i := range big.Stmts {
		big.Stmts[i].SQL = "SELECT 1"
	}
	if _, err := Decode(Encode(big)); err != nil {
		t.Fatalf("MaxBatch-sized batch rejected: %v", err)
	}
}

func TestFrameWriter(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	params := []types.Value{types.NewInt(1), types.NewString("row")}
	msgs := []any{
		&RowsHeader{Columns: []string{"a", "b"}},
		&RowBatch{Rows: [][]types.Value{params, params}, Last: false},
		&RowBatch{Last: true},
		&BatchDone{Executed: 3},
	}
	for _, m := range msgs {
		if err := fw.WriteMsg(m); err != nil {
			t.Fatalf("WriteMsg(%T): %v", m, err)
		}
	}
	// The stream must be byte-identical to the WriteFrame(Encode()) path.
	var want bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&want, Encode(m)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Fatal("FrameWriter stream differs from WriteFrame stream")
	}
	// And it must read back cleanly.
	r := bytes.NewReader(buf.Bytes())
	for i := range msgs {
		payload, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if _, err := Decode(payload); err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
	}
}

func TestFrameWriterArenaReuse(t *testing.T) {
	// After a warm-up write, steady-state row batches must not allocate
	// per row (the whole point of the arena).
	fw := NewFrameWriter(io.Discard)
	rows := make([][]types.Value, 64)
	for i := range rows {
		rows[i] = []types.Value{types.NewInt(int64(i)), types.NewString("abcdefgh")}
	}
	batch := &RowBatch{Rows: rows, Last: true}
	if err := fw.WriteMsg(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := fw.WriteMsg(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state WriteMsg allocates %.1f times per frame", allocs)
	}
}

func TestFrameWriterOversized(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	if err := fw.WriteMsg(&StatsResult{JSON: make([]byte, MaxFrame+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// The writer stays usable and its arena shrank back.
	if err := fw.WriteMsg(&Pong{}); err != nil {
		t.Fatalf("WriteMsg after oversize: %v", err)
	}
	if cap(fw.buf) > 1<<20 {
		t.Fatalf("arena not released after oversized frame: cap %d", cap(fw.buf))
	}
}

func TestSanitizeParams(t *testing.T) {
	if err := SanitizeParams([]types.Value{types.NewFloat(1.5)}); err != nil {
		t.Fatalf("clean params rejected: %v", err)
	}
	nan := types.Value{Kind: types.KindFloat, Float: nan()}
	if err := SanitizeParams([]types.Value{nan}); err == nil {
		t.Fatal("NaN parameter accepted")
	}
}

func nan() float64 {
	f := 0.0
	return f / f
}
