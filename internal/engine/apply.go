package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/mvcc"
	"repro/internal/storage"
	"repro/internal/wal"
)

// This file is the follower half of WAL-shipping replication: a
// continuous applier that ingests the primary's durable frames into the
// replica's (mirror) log and replays them into pages, catalogs, and
// MVCC state, publishing each commit in log order. Reads on the replica
// go through the ordinary engine paths — an applier transaction is a
// real mvcc.Txn, its pre-images live in the ordinary version chains, so
// a snapshot pinned between commits never sees a torn transaction.

// journalEntry is one open-transaction record carried across a replica
// crash: recovery replays the primary's still-open transactions
// physically (pages must match the stream position) but cannot publish
// them, so their row-level effects — with pre-images read at the replay
// position — are handed to the resumed applier, which rebuilds the
// in-memory transaction state exactly as the pre-crash applier held it.
type journalEntry struct {
	rec *wal.Record
	pre []byte
}

// applyTxn is the applier's in-flight image of one primary transaction:
// the mvcc transaction its writes are attributed to, plus the catalog
// changes and page frees that must not take effect until its commit
// record streams in (mirroring the primary, which logs KPageFree and
// applies frees only inside Scope.Commit).
type applyTxn struct {
	tx       *mvcc.Txn
	catalogs [][]byte
	frees    []storage.PageID
}

// Applier replays a primary's WAL stream onto a replica DB. It is the
// only writer on the replica: Feed ingests a durable byte range and
// drains every whole frame under the DB's exclusive DDL fence, so
// concurrent readers (which hold the fence shared per statement)
// observe page state only at batch boundaries — and MVCC hides even
// intra-batch transactions from them. Single goroutine per replica.
type Applier struct {
	db   *DB
	cur  *wal.Cursor
	txns map[uint64]*applyTxn

	// pageLSN memoizes the replay guard (same role as recovery's): a
	// record at or below the page's stamped LSN already happened —
	// re-ingested overlap after a reconnect must be apply-twice safe.
	pageLSN map[storage.PageID]wal.LSN
}

// newApplier positions a cursor at the durable horizon — everything the
// replica's log retains was applied by recovery — and seeds telemetry.
func newApplier(db *DB) *Applier {
	end := db.log.DurableLSN()
	a := &Applier{
		db:      db,
		cur:     db.log.ReadFrom(end),
		txns:    make(map[uint64]*applyTxn),
		pageLSN: make(map[storage.PageID]wal.LSN),
	}
	db.replAppliedLSN.Store(uint64(end))
	var lastCommit wal.LSN
	for _, r := range db.log.DurableRecords() {
		if r.Kind == wal.KCommit {
			lastCommit = r.LSN
		}
	}
	db.replAppliedCommitLSN.Store(uint64(lastCommit))
	return a
}

// resume rebuilds in-flight transaction state from the recovery
// journal: begin transactions anew, re-buffer catalog changes and
// frees, and push the journaled pre-images into the version chains so
// snapshots keep resolving around the still-open writes.
func (a *Applier) resume(journal []journalEntry) error {
	db := a.db
	for _, e := range journal {
		r := e.rec
		switch r.Kind {
		case wal.KBegin:
			a.txns[r.Txn] = &applyTxn{tx: db.txns.BeginLazy()}
		case wal.KCatalog:
			at := a.txns[r.Txn]
			if at == nil {
				return fmt.Errorf("engine: journal references unknown txn %d", r.Txn)
			}
			at.catalogs = append(at.catalogs, append([]byte(nil), r.Data...))
		case wal.KPageFree:
			at := a.txns[r.Txn]
			if at == nil {
				return fmt.Errorf("engine: journal references unknown txn %d", r.Txn)
			}
			at.frees = append(at.frees, r.Page)
		case wal.KHeapInsert, wal.KHeapInsertAt, wal.KHeapDelete, wal.KHeapUpdate:
			at := a.txns[r.Txn]
			if at == nil {
				return fmt.Errorf("engine: journal references unknown txn %d", r.Txn)
			}
			t, err := db.cat.Table(r.Table)
			if err != nil {
				return err
			}
			t.Vers.RecordWrite(at.tx, storage.RID{Page: r.Page, Slot: r.Slot}, e.pre)
		default:
			return fmt.Errorf("engine: unexpected journal record %s", r.Kind)
		}
	}
	return nil
}

// Feed ingests one durable byte range shipped by the primary and
// applies every whole frame it completes. start is the stream offset of
// buf's first byte; overlap with already-held history is deduplicated,
// a gap is an error (wal.ErrStreamGap — the subscriber should
// re-subscribe from DurableLSN). Returns the new durable horizon.
func (a *Applier) Feed(start wal.LSN, buf []byte) (wal.LSN, error) {
	db := a.db
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	end, err := db.log.IngestDurable(start, buf)
	if err != nil {
		return 0, err
	}
	if err := a.drainLocked(); err != nil {
		return end, err
	}
	return end, nil
}

// AppliedLSN is the stream offset up to which every record has been
// applied; AppliedCommitLSN is the LSN of the last applied commit — the
// replica's published, snapshot-consistent position.
func (a *Applier) AppliedLSN() wal.LSN { return wal.LSN(a.db.replAppliedLSN.Load()) }

// AppliedCommitLSN reports the LSN of the newest applied commit record.
func (a *Applier) AppliedCommitLSN() wal.LSN { return wal.LSN(a.db.replAppliedCommitLSN.Load()) }

// OpenTxns reports how many primary transactions are currently
// mid-flight on the stream (begun but neither committed nor aborted).
func (a *Applier) OpenTxns() int {
	a.db.ddlMu.RLock()
	defer a.db.ddlMu.RUnlock()
	return len(a.txns)
}

// drainLocked replays every whole frame between the cursor and the
// durable horizon. Caller holds db.ddlMu exclusively.
func (a *Applier) drainLocked() error {
	for {
		start := a.cur.Pos()
		r, ok, err := a.cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := a.applyLocked(r, start); err != nil {
			return fmt.Errorf("engine: apply %s at LSN %d: %w", r.Kind, r.LSN, err)
		}
		a.db.replAppliedLSN.Store(uint64(r.LSN))
	}
}

// applyLocked replays one record. start is the frame's first byte (the
// recLSN a dirty page remembers); r.LSN is the frame's end.
func (a *Applier) applyLocked(r *wal.Record, start wal.LSN) error {
	db := a.db
	switch r.Kind {
	case wal.KBegin:
		a.txns[r.Txn] = &applyTxn{tx: db.txns.BeginLazy()}
		return nil

	case wal.KCommit:
		at := a.txns[r.Txn]
		if at == nil {
			return fmt.Errorf("engine: commit for unknown txn %d", r.Txn)
		}
		// Catalog changes first (a reader admitted after the commit
		// publishes must see the new schema), then publish the commit
		// timestamp, then release pages — the primary's Scope.Commit
		// order. The applier is the only transaction ever in the
		// reservation queue, so MarkDurable publishes immediately.
		for _, payload := range at.catalogs {
			ch, err := catalog.DecodeDDLChange(payload)
			if err != nil {
				return err
			}
			if err := a.applyCatalogLocked(ch); err != nil {
				return err
			}
		}
		db.txns.ReserveCommit(at.tx)
		db.txns.MarkDurable(at.tx)
		for _, p := range at.frees {
			if db.disk.Allocated(p) {
				if err := db.pool.FreePage(p); err != nil {
					return err
				}
			}
		}
		delete(a.txns, r.Txn)
		db.replAppliedCommitLSN.Store(uint64(r.LSN))
		return nil

	case wal.KAbort:
		if at := a.txns[r.Txn]; at != nil {
			// The primary's compensation writes were logged as ordinary
			// heap records and already replayed here; aborting the mvcc
			// transaction makes its chain entries invisible (and
			// GC-collectable) without touching pages.
			at.tx.Abort()
			delete(a.txns, r.Txn)
		}
		return nil

	case wal.KCatalog:
		at := a.txns[r.Txn]
		if at == nil {
			return fmt.Errorf("engine: catalog record for unknown txn %d", r.Txn)
		}
		at.catalogs = append(at.catalogs, append([]byte(nil), r.Data...))
		return nil

	case wal.KPageFree:
		at := a.txns[r.Txn]
		if at == nil {
			return fmt.Errorf("engine: page-free record for unknown txn %d", r.Txn)
		}
		at.frees = append(at.frees, r.Page)
		return nil

	case wal.KPageAlloc:
		// Idempotent exact-ID allocation: replays of re-ingested overlap
		// and follower-recovery's alloc pre-pass both land on ok.
		return db.disk.AllocAt(r.Page, r.Cat)

	case wal.KCheckpoint:
		return a.checkpointLocked(start)

	case wal.KSavepoint:
		return nil // marker only; rollback arrives as compensation writes

	case wal.KBTreeRoot:
		// Root moves are catalog metadata, not page bytes. The matching
		// index is "whichever tree's root is the old page" — same rule
		// recovery's snapshot uses. No match is fine: the index may have
		// been dropped later in already-applied history.
		a.setRootLocked(r.Page, r.Page2)
		return nil

	case wal.KHeapNewPage:
		if err := a.redoLocked(r, start); err != nil {
			return err
		}
		t, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		t.Heap.AdoptPage(r.Page)
		return nil

	case wal.KHeapInsert, wal.KHeapInsertAt, wal.KHeapDelete, wal.KHeapUpdate:
		at := a.txns[r.Txn]
		if at == nil {
			return fmt.Errorf("engine: heap record for unknown txn %d", r.Txn)
		}
		t, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		// Version the row BEFORE redo: the pre-image is whatever the
		// slot holds now. Inserts version with a nil pre-image (the slot
		// held nothing a reader could see). Skipped redo (re-ingested
		// overlap) still must not re-version — the chain entry from the
		// first pass is live — so gate both on the replay guard.
		if r.LSN > a.stampedLSN(r.Page) {
			var pre []byte
			if r.Kind == wal.KHeapDelete || r.Kind == wal.KHeapUpdate {
				pre, err = storage.ReadSlot(db.pool, r.Page, r.Slot)
				if err != nil {
					return err
				}
			}
			t.Vers.RecordWrite(at.tx, storage.RID{Page: r.Page, Slot: r.Slot}, pre)
		}
		return a.redoLocked(r, start)

	default:
		// Remaining kinds are page-addressed b-tree records.
		return a.redoLocked(r, start)
	}
}

// redoLocked replays one page-addressed record through the recovery
// redo dispatch, guarded by the page's stamped LSN so re-applied
// overlap is a no-op.
func (a *Applier) redoLocked(r *wal.Record, start wal.LSN) error {
	db := a.db
	if !db.disk.Allocated(r.Page) {
		// Page freed by an already-applied committed drop; the record
		// predates the free in a re-ingested overlap.
		return nil
	}
	if r.LSN <= a.stampedLSN(r.Page) {
		return nil
	}
	if err := redoPage(db.pool, r); err != nil {
		return err
	}
	a.pageLSN[r.Page] = r.LSN
	db.pool.StampLSN(r.Page, r.LSN, start)
	return nil
}

// stampedLSN memoizes the page's current LSN, reading through the
// buffer pool (which may be ahead of disk for a dirty page).
func (a *Applier) stampedLSN(id storage.PageID) wal.LSN {
	if lsn, ok := a.pageLSN[id]; ok {
		return lsn
	}
	lsn := a.db.pool.PageLSN(id)
	a.pageLSN[id] = lsn
	return lsn
}

// checkpointLocked reacts to the primary's checkpoint record: re-derive
// the planner's table statistics and reclaim mirrored log history the
// replica no longer needs (bounded by its own dirty pages and open
// stream transactions, exactly like the primary's truncation rule).
func (a *Applier) checkpointLocked(start wal.LSN) error {
	db := a.db
	if err := db.cat.RecomputeAll(); err != nil {
		return err
	}
	bound := start
	if o := db.pool.OldestRecLSN(); o < bound {
		bound = o
	}
	if o := db.log.OldestActiveLSN(); o < bound {
		bound = o
	}
	db.log.TruncateTo(bound)
	// The guard memo only ever answers "already applied?"; entries at or
	// below truncated history can never be asked about again.
	a.pageLSN = make(map[storage.PageID]wal.LSN)
	return nil
}

// setRootLocked relinks whichever index currently roots at old.
func (a *Applier) setRootLocked(old, new storage.PageID) {
	db := a.db
	for _, name := range db.cat.TableNames() {
		t, err := db.cat.Table(name)
		if err != nil {
			continue
		}
		for _, ix := range t.Indexes {
			if ix.Tree.SetRoot(old, new) {
				return
			}
		}
	}
}

// applyCatalogLocked replays one committed DDL change through the live
// catalog — the same mutations the primary's execDDL/execAlterOnline
// performed, minus page movement (that arrived as physical records) and
// minus backfill (a replica never self-writes; the primary's backfill
// rewrites stream in as ordinary heap updates).
func (a *Applier) applyCatalogLocked(ch *catalog.DDLChange) error {
	db := a.db
	defer func() {
		if db.plans != nil {
			db.plans.purge()
		}
	}()
	switch ch.Op {
	case catalog.OpCreateTable:
		_, err := db.cat.CreateTable(ch.Table, ch.Cols)
		return err
	case catalog.OpDropTable:
		// Discard the returned page lists: the transaction's own
		// KPageFree records are the authoritative free list.
		_, _, err := db.cat.DropTableDeferred(ch.Table)
		return err
	case catalog.OpCreateIndex:
		ix, err := db.cat.AdoptIndex(ch.Table, ch.Index, ch.IndexCols, ch.Unique, ch.Root)
		if err != nil {
			return err
		}
		return ix.Tree.RecountSize()
	case catalog.OpDropIndex:
		_, err := db.cat.DropIndexDeferred(ch.Table, ch.Index)
		return err
	case catalog.OpAddColumn, catalog.OpDropColumn, catalog.OpWidenColumn:
		t, err := db.cat.Table(ch.Table)
		if err != nil {
			return err
		}
		t.Mu.Lock()
		defer t.Mu.Unlock()
		var cols []catalog.Column
		switch ch.Op {
		case catalog.OpAddColumn:
			cols, err = t.ComputeAddColumn(ch.Cols[0])
		case catalog.OpDropColumn:
			cols, err = t.ComputeDropColumn(ch.Cols[0].Name)
		case catalog.OpWidenColumn:
			cols, err = t.ComputeWidenColumn(ch.Cols[0].Name, ch.Cols[0].Type)
		}
		if err != nil {
			return err
		}
		// Same publish rule as execAlterOnline: the version's stamp is
		// strictly newer than every snapshot pinned before this line, so
		// in-flight replica readers keep their pinned schema.
		ts := db.txns.StampDDL()
		db.cat.PublishSchema(t, cols, ts)
		return nil
	}
	return fmt.Errorf("engine: replica apply of unknown DDL op %q", ch.Op)
}
