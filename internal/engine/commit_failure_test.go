package engine

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/types"
	"repro/internal/wal"
)

// dbInt runs a 1x1 query through the DB (autocommit) and returns the
// value. Reads never touch the WAL, so they work on a crashed log too.
func dbInt(t *testing.T, db *DB, q string, params ...types.Value) int64 {
	t.Helper()
	rows, err := db.Query(q, params...)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	if len(rows.Data) != 1 || len(rows.Data[0]) != 1 {
		t.Fatalf("Query(%q): want 1x1 result, got %dx?", q, len(rows.Data))
	}
	return rows.Data[0][0].Int
}

// TestTxnCommitAppendFailureRollsBack fails the COMMIT record's append
// while the log stays alive. Durability before visibility: the commit
// must not be acknowledged, the transaction's writes must not publish,
// and the session must come out of the transaction usable.
func TestTxnCommitAppendFailureRollsBack(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	s, s2 := db.Session(), db.Session()
	defer s.Close()
	defer s2.Close()

	sessExec(t, s, "BEGIN")
	sessExec(t, s, "INSERT INTO acct VALUES (100, 'new', 1)")
	sessExec(t, s, "UPDATE acct SET bal = 55 WHERE k = 0")

	// The next append is the commit record; a plain (non-crash) error
	// fails just that append and leaves the log usable.
	injected := errors.New("injected commit-append failure")
	var fired atomic.Bool
	db.WAL().SetFault(func(op wal.FaultOp, seq int64) error {
		if op == wal.OpAppend && fired.CompareAndSwap(false, true) {
			return injected
		}
		return nil
	})
	before := db.Stats()
	_, err := s.Exec("COMMIT")
	db.WAL().SetFault(nil)
	if !errors.Is(err, injected) {
		t.Fatalf("COMMIT error = %v, want wrapped %v", err, injected)
	}
	after := db.Stats()
	if after.TxnCommits != before.TxnCommits {
		t.Errorf("TxnCommits %d -> %d, want unchanged", before.TxnCommits, after.TxnCommits)
	}
	if after.TxnAborts != before.TxnAborts+1 {
		t.Errorf("TxnAborts %d -> %d, want +1", before.TxnAborts, after.TxnAborts)
	}

	// Nothing was committed: the other session sees the original state.
	if got := oneInt(t, s2, "SELECT COUNT(*) FROM acct"); got != 4 {
		t.Errorf("rows after failed commit: %d, want 4", got)
	}
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 0"); got != 100 {
		t.Errorf("bal after failed commit: %d, want 100", got)
	}

	// The session is out of the transaction and fully usable.
	if s.InTxn() {
		t.Fatal("session still in a transaction after failed commit")
	}
	sessExec(t, s, "BEGIN")
	sessExec(t, s, "UPDATE acct SET bal = 77 WHERE k = 1")
	sessExec(t, s, "COMMIT")
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 1"); got != 77 {
		t.Errorf("bal after retry commit: %d, want 77", got)
	}
}

// TestTxnCommitSyncFailureRollsBack fails the commit's durability sync,
// which downs the log. The in-memory state must roll back (unlogged —
// compensation appends cannot reach a dead log), and recovery from the
// durable prefix must agree: the transaction left no durable commit
// record, so it is a loser.
func TestTxnCommitSyncFailureRollsBack(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	s, s2 := db.Session(), db.Session()
	defer s2.Close()

	sessExec(t, s, "BEGIN")
	sessExec(t, s, "INSERT INTO acct VALUES (100, 'new', 1)")
	sessExec(t, s, "UPDATE acct SET bal = 55 WHERE k = 0")

	injected := errors.New("injected sync failure")
	db.WAL().SetFault(func(op wal.FaultOp, seq int64) error {
		if op == wal.OpSync {
			return injected
		}
		return nil
	})
	_, err := s.Exec("COMMIT")
	db.WAL().SetFault(nil)
	if !errors.Is(err, injected) {
		t.Fatalf("COMMIT error = %v, want wrapped %v", err, injected)
	}
	if !db.WAL().Crashed() {
		t.Fatal("sync fault should down the log")
	}

	// In-memory state rolled back despite the dead log.
	if got := oneInt(t, s2, "SELECT COUNT(*) FROM acct"); got != 4 {
		t.Errorf("rows after failed commit: %d, want 4", got)
	}
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 0"); got != 100 {
		t.Errorf("bal after failed commit: %d, want 100", got)
	}

	// Recovery agrees: no durable commit record, transaction discarded.
	db2, rep, err := Recover(db.Crash())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	if got := dbInt(t, db2, "SELECT COUNT(*) FROM acct"); got != 4 {
		t.Errorf("recovered rows: %d, want 4", got)
	}
	if got := dbInt(t, db2, "SELECT bal FROM acct WHERE k = 0"); got != 100 {
		t.Errorf("recovered bal: %d, want 100", got)
	}
}

// TestAutocommitCommitSyncFailureRollsBack is the same durability gate
// on the autocommit path: a statement whose one-statement transaction
// cannot commit must report the error with zero effect, both in memory
// and after recovery.
func TestAutocommitCommitSyncFailureRollsBack(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)

	injected := errors.New("injected sync failure")
	db.WAL().SetFault(func(op wal.FaultOp, seq int64) error {
		if op == wal.OpSync {
			return injected
		}
		return nil
	})
	_, err := db.Exec("UPDATE acct SET bal = 1 WHERE k >= 0")
	db.WAL().SetFault(nil)
	if !errors.Is(err, injected) {
		t.Fatalf("Exec error = %v, want wrapped %v", err, injected)
	}

	for k := int64(0); k < 4; k++ {
		if got := dbInt(t, db, "SELECT bal FROM acct WHERE k = ?", types.NewInt(k)); got != 100 {
			t.Errorf("k=%d: bal after failed autocommit: %d, want 100", k, got)
		}
	}

	db2, rep, err := Recover(db.Crash())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	for k := int64(0); k < 4; k++ {
		if got := dbInt(t, db2, "SELECT bal FROM acct WHERE k = ?", types.NewInt(k)); got != 100 {
			t.Errorf("k=%d: recovered bal: %d, want 100", k, got)
		}
	}
}
