// Package engine is the embedded relational database the testbed and
// the schema-mapping layer run against: SQL in, rows out. It assembles
// the substrates — disk, buffer pool, catalog with meta-data budget,
// planner, executor — and provides statement-level concurrency control
// with table-level locks and weak-isolation reads, matching the
// transaction posture the paper's testbed adopts (§4.2: single-request
// transactions, unrepeatable reads permitted).
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// Config parameterizes a database instance.
type Config struct {
	// MemoryBytes is the machine memory budget shared by table
	// meta-data and the buffer pool. Default 64 MiB.
	MemoryBytes int64
	// PageSize in bytes. Default 8192, the paper's setting.
	PageSize int
	// MetaBytesPerTable is the per-table meta-data tax. Default 4096,
	// the DB2 V9.1 figure quoted in §1.1.
	MetaBytesPerTable int64
	// ReadLatency is the simulated I/O cost of a buffer-pool miss.
	ReadLatency time.Duration
	// Optimizer selects the planner capability level (§6.2 Test 1).
	Optimizer plan.Mode
	// InsertMode selects the heap placement policy (§5 insert anomaly).
	InsertMode storage.InsertMode
	// PlanCacheSize bounds the engine plan cache in statements; ad-hoc
	// Exec/Query reuse compiled plans keyed by (statement text, catalog
	// version). 0 means the default (512); negative disables caching.
	PlanCacheSize int
}

// Result reports the outcome of a non-query statement.
type Result struct {
	RowsAffected int64
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]types.Value
}

// DB is a database handle, safe for concurrent use.
type DB struct {
	disk    *storage.Disk
	pool    *storage.BufferPool
	cat     *catalog.Catalog
	planner *plan.Planner
	plans   *planCache // nil when caching is disabled

	// stmtRollbacks counts DML statements that failed and had their
	// partial effects rolled back (statement-level atomicity).
	stmtRollbacks atomic.Int64

	// execStats aggregates executor counters (rows/batches scanned,
	// column values decoded vs skipped by pruning) across statements.
	execStats exec.Stats

	// ddlMu serializes DDL against all other statements; DML and
	// queries hold it shared.
	ddlMu sync.RWMutex
	// planMu serializes planning when the plan cache is disabled (the
	// cache's in-flight table provides this per key otherwise).
	planMu sync.Mutex
}

// Open creates an empty database.
func Open(cfg Config) *DB {
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 64 << 20
	}
	disk := storage.NewDisk(cfg.PageSize)
	disk.ReadLatency = cfg.ReadLatency
	pool := storage.NewBufferPool(disk, cfg.MemoryBytes)
	cat := catalog.New(pool, catalog.Config{
		MemoryBytes:       cfg.MemoryBytes,
		MetaBytesPerTable: cfg.MetaBytesPerTable,
		InsertMode:        cfg.InsertMode,
	})
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = 512
	}
	var plans *planCache
	if cfg.PlanCacheSize > 0 {
		plans = newPlanCache(cfg.PlanCacheSize)
	}
	return &DB{
		disk:    disk,
		pool:    pool,
		cat:     cat,
		planner: plan.New(cat, cfg.Optimizer),
		plans:   plans,
	}
}

// Catalog exposes the catalog (examples and the mapping layer use it
// for direct schema inspection).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Exec runs any statement and reports rows affected (0 for DDL and
// queries; use Query for result sets). The raw statement text keys the
// plan cache, so repeated ad-hoc statements skip replanning.
func (db *DB) Exec(query string, params ...types.Value) (Result, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return Result{}, err
	}
	return db.execStmtKeyed(st, query, params)
}

// ExecStmt is Exec for a pre-parsed statement.
func (db *DB) ExecStmt(st sql.Statement, params ...types.Value) (Result, error) {
	return db.execStmtKeyed(st, "", params)
}

// execStmtKeyed dispatches a statement; key is the plan-cache key, or
// "" to derive it from the statement's printed form (callers that hold
// the original text pass it to skip re-rendering).
func (db *DB) execStmtKeyed(st sql.Statement, key string, params []types.Value) (Result, error) {
	switch st := st.(type) {
	case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.DropTableStmt,
		*sql.DropIndexStmt, *sql.AlterAddColumnStmt:
		return Result{}, db.execDDL(st)
	case *sql.SelectStmt:
		return db.execSelect(st, key, params)
	default:
		return db.execDML(st, key, params)
	}
}

// Query runs a SELECT and returns all rows.
func (db *DB) Query(query string, params ...types.Value) (*Rows, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Query needs a SELECT, got %T", st)
	}
	return db.queryStmtKeyed(sel, query, params)
}

// QueryStmt is Query for a pre-parsed SELECT.
func (db *DB) QueryStmt(sel *sql.SelectStmt, params ...types.Value) (*Rows, error) {
	return db.queryStmtKeyed(sel, "", params)
}

func (db *DB) queryStmtKeyed(sel *sql.SelectStmt, key string, params []types.Value) (*Rows, error) {
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	reads := collectReadTables(sel, nil)
	unlock, err := db.lockTables(reads, "")
	if err != nil {
		return nil, err
	}
	defer unlock()
	p, err := db.planFor(key, sel)
	if err != nil {
		return nil, err
	}
	data, err := exec.CollectStats(p, params, &db.execStats)
	if err != nil {
		return nil, err
	}
	schema := p.Schema()
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Name
	}
	return &Rows{Columns: cols, Data: data}, nil
}

// execSelect runs a SELECT whose result nobody reads (Exec on a
// SELECT): rows are streamed and discarded, never materialized.
func (db *DB) execSelect(sel *sql.SelectStmt, key string, params []types.Value) (Result, error) {
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	reads := collectReadTables(sel, nil)
	unlock, err := db.lockTables(reads, "")
	if err != nil {
		return Result{}, err
	}
	defer unlock()
	p, err := db.planFor(key, sel)
	if err != nil {
		return Result{}, err
	}
	_, err = exec.DrainStats(p, params, &db.execStats)
	return Result{}, err
}

// planFor returns the plan for st, reusing the plan cache when it is
// enabled. key is the statement's SQL text ("" means render it from
// the AST); the catalog version completes the cache key, so on-line
// schema changes invalidate stale plans. Callers hold ddlMu shared,
// which keeps the version stable across lookup and build — and means
// at most one build runs per AST object (the in-flight table), which
// matters because the optimizer rewrites the AST in place.
func (db *DB) planFor(key string, st sql.Statement) (plan.Node, error) {
	if db.plans == nil {
		// No cache: serialize planning. Two goroutines must not plan the
		// same AST object concurrently (prepared statements reuse theirs,
		// and the optimizer rewrites ASTs in place).
		db.planMu.Lock()
		defer db.planMu.Unlock()
		return db.planner.PlanStatement(st)
	}
	if key == "" {
		key = st.String()
	}
	return db.plans.get(planKey{text: key, version: db.cat.Version()}, func() (plan.Node, error) {
		return db.planner.PlanStatement(st)
	})
}

// Explain plans a statement and renders the operator tree.
func (db *DB) Explain(query string, params ...types.Value) (string, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	p, err := db.planner.PlanStatement(st)
	if err != nil {
		return "", err
	}
	return plan.Explain(p), nil
}

func (db *DB) execDML(st sql.Statement, key string, params []types.Value) (Result, error) {
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	var write string
	var reads []string
	switch st := st.(type) {
	case *sql.InsertStmt:
		write = st.Table
	case *sql.UpdateStmt:
		write = st.Table
		reads = collectExprTables(st.Where, nil)
	case *sql.DeleteStmt:
		write = st.Table
		reads = collectExprTables(st.Where, nil)
	default:
		return Result{}, fmt.Errorf("engine: unsupported statement %T", st)
	}
	unlock, err := db.lockTables(reads, write)
	if err != nil {
		return Result{}, err
	}
	defer unlock()
	p, err := db.planFor(key, st)
	if err != nil {
		return Result{}, err
	}
	n, err := exec.RunDMLStats(p, params, &db.execStats)
	if err != nil {
		// RunDML rolled the statement's partial effects back before
		// returning (statement-level atomicity).
		db.stmtRollbacks.Add(1)
	}
	return Result{RowsAffected: n}, err
}

func (db *DB) execDDL(st sql.Statement) error {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if db.plans != nil {
		// The catalog version bump already invalidates lookups; purging
		// releases the stale plans' memory promptly.
		defer db.plans.purge()
	}
	switch st := st.(type) {
	case *sql.CreateTableStmt:
		if st.IfNotExists && db.cat.HasTable(st.Name) {
			return nil
		}
		cols := make([]catalog.Column, len(st.Cols))
		for i, c := range st.Cols {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
		}
		_, err := db.cat.CreateTable(st.Name, cols)
		return err
	case *sql.CreateIndexStmt:
		_, err := db.cat.CreateIndex(st.Table, st.Name, st.Columns, st.Unique)
		return err
	case *sql.DropTableStmt:
		if st.IfExists && !db.cat.HasTable(st.Name) {
			return nil
		}
		return db.cat.DropTable(st.Name)
	case *sql.DropIndexStmt:
		return db.cat.DropIndex(st.Table, st.Name)
	case *sql.AlterAddColumnStmt:
		return db.cat.AddColumn(st.Table, catalog.Column{
			Name: st.Col.Name, Type: st.Col.Type, NotNull: st.Col.NotNull,
		})
	}
	return fmt.Errorf("engine: unsupported DDL %T", st)
}

// lockTables acquires read locks on reads and a write lock on write,
// in a global order (by lowercased name) to avoid deadlocks. A table
// appearing in both gets only the write lock.
func (db *DB) lockTables(reads []string, write string) (func(), error) {
	type lockReq struct {
		name  string
		write bool
	}
	seen := map[string]*lockReq{}
	for _, r := range reads {
		k := strings.ToLower(r)
		if seen[k] == nil {
			seen[k] = &lockReq{name: r}
		}
	}
	if write != "" {
		k := strings.ToLower(write)
		if seen[k] == nil {
			seen[k] = &lockReq{name: write}
		}
		seen[k].write = true
	}
	var order []string
	for k := range seen {
		order = append(order, k)
	}
	sort.Strings(order)
	var locked []func()
	for _, k := range order {
		req := seen[k]
		t, err := db.cat.Table(req.name)
		if err != nil {
			for i := len(locked) - 1; i >= 0; i-- {
				locked[i]()
			}
			return nil, err
		}
		if req.write {
			t.Mu.Lock()
			locked = append(locked, t.Mu.Unlock)
		} else {
			t.Mu.RLock()
			locked = append(locked, t.Mu.RUnlock)
		}
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i]()
		}
	}, nil
}

// collectReadTables lists the base tables a SELECT touches, including
// derived tables and IN subqueries.
func collectReadTables(s *sql.SelectStmt, acc []string) []string {
	for _, tr := range s.From {
		acc = collectRefTables(tr, acc)
	}
	acc = collectExprTables(s.Where, acc)
	acc = collectExprTables(s.Having, acc)
	return acc
}

func collectRefTables(tr sql.TableRef, acc []string) []string {
	switch tr := tr.(type) {
	case *sql.NamedTable:
		acc = append(acc, tr.Name)
	case *sql.SubqueryTable:
		acc = collectReadTables(tr.Select, acc)
	case *sql.JoinTable:
		acc = collectRefTables(tr.Left, acc)
		acc = collectRefTables(tr.Right, acc)
		acc = collectExprTables(tr.On, acc)
	}
	return acc
}

func collectExprTables(e sql.Expr, acc []string) []string {
	switch e := e.(type) {
	case nil:
		return acc
	case *sql.BinaryExpr:
		acc = collectExprTables(e.L, acc)
		acc = collectExprTables(e.R, acc)
	case *sql.UnaryExpr:
		acc = collectExprTables(e.X, acc)
	case *sql.IsNullExpr:
		acc = collectExprTables(e.X, acc)
	case *sql.LikeExpr:
		acc = collectExprTables(e.X, acc)
		acc = collectExprTables(e.Pattern, acc)
	case *sql.CastExpr:
		acc = collectExprTables(e.X, acc)
	case *sql.FuncExpr:
		for _, a := range e.Args {
			acc = collectExprTables(a, acc)
		}
	case *sql.InExpr:
		acc = collectExprTables(e.X, acc)
		for _, i := range e.List {
			acc = collectExprTables(i, acc)
		}
		if e.Subquery != nil {
			acc = collectReadTables(e.Subquery, acc)
		}
	}
	return acc
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Pool       storage.PoolStats
	PhysReads  int64
	PhysWrites int64
	Tables     int
	MetaBytes  int64
	// StmtRollbacks counts DML statements that failed and were rolled
	// back to their pre-statement state.
	StmtRollbacks int64
	// Exec carries executor counters: rows and batches produced by
	// base-table scans, and column values decoded vs skipped by column
	// pruning (the decode savings of narrow queries over wide tables).
	Exec exec.Counters
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	return Stats{
		Pool:          db.pool.Stats(),
		PhysReads:     db.disk.PhysReads(),
		PhysWrites:    db.disk.PhysWrites(),
		Tables:        db.cat.NumTables(),
		MetaBytes:     db.cat.MetaBytes(),
		StmtRollbacks: db.stmtRollbacks.Load(),
		Exec:          db.execStats.Snapshot(),
	}
}

// ResetStats zeroes the counters (used between benchmark phases).
func (db *DB) ResetStats() {
	db.pool.ResetStats()
	db.disk.ResetCounters()
	db.execStats.Reset()
}

// DropCaches flushes and empties the buffer pool — the cold-cache
// protocol of the paper's Test 5. It takes the DDL lock so no statement
// is mid-flight.
func (db *DB) DropCaches() error {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	return db.pool.DropAll()
}

// BufferPool exposes the pool for experiment harnesses.
func (db *DB) BufferPool() *storage.BufferPool { return db.pool }

// Disk exposes the disk for experiment harnesses.
func (db *DB) Disk() *storage.Disk { return db.disk }
