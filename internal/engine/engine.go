// Package engine is the embedded relational database the testbed and
// the schema-mapping layer run against: SQL in, rows out. It assembles
// the substrates — disk, buffer pool, catalog with meta-data budget,
// planner, executor — and provides two transaction postures. Ad-hoc
// Exec/Query statements autocommit under statement-level table locks,
// matching the paper's testbed default (§4.2: single-request
// transactions). A Session additionally offers interactive
// multi-statement transactions (BEGIN/COMMIT/ROLLBACK, SAVEPOINT) with
// snapshot-isolation reads via row versioning and first-updater-wins
// write-write conflict detection.
package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/mvcc"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// Config parameterizes a database instance.
type Config struct {
	// MemoryBytes is the machine memory budget shared by table
	// meta-data and the buffer pool. Default 64 MiB.
	MemoryBytes int64
	// PageSize in bytes. Default 8192, the paper's setting.
	PageSize int
	// MetaBytesPerTable is the per-table meta-data tax. Default 4096,
	// the DB2 V9.1 figure quoted in §1.1.
	MetaBytesPerTable int64
	// ReadLatency is the simulated I/O cost of a buffer-pool miss.
	ReadLatency time.Duration
	// Optimizer selects the planner capability level (§6.2 Test 1).
	Optimizer plan.Mode
	// InsertMode selects the heap placement policy (§5 insert anomaly).
	InsertMode storage.InsertMode
	// PlanCacheSize bounds the engine plan cache in statements; ad-hoc
	// Exec/Query reuse compiled plans keyed by (statement text, catalog
	// version). 0 means the default (512); negative disables caching.
	PlanCacheSize int
	// DisableWAL turns off write-ahead logging; statements then have no
	// durability and Crash/Recover are unavailable.
	DisableWAL bool
	// NoGroupCommit makes every commit issue its own log sync instead of
	// piggybacking on a concurrent leader's (the durability baseline).
	NoGroupCommit bool
	// SyncLatency is the simulated cost of one log sync.
	SyncLatency time.Duration
	// CheckpointBytes triggers an automatic fuzzy checkpoint once that
	// much log has accumulated since the last one. 0 means the default
	// (4 MiB); negative disables automatic checkpoints.
	CheckpointBytes int64
	// ConflictWait bounds how long a session DML statement parks for a
	// conflicting write holder to commit or roll back before the
	// statement aborts (bounded wait-then-abort). 0 means the default
	// (2ms); negative disables waiting entirely — classic insta-abort
	// first-updater-wins.
	ConflictWait time.Duration
}

// defaultConflictWait is the bounded wait-then-abort deadline when
// Config.ConflictWait is zero.
const defaultConflictWait = 2 * time.Millisecond

// admissionWaitFactor scales the row-conflict wait deadline up to the
// write-admission deadline: admission is a transaction-scoped courtesy
// queue, so it affords a longer (but still bounded) park than the
// per-statement row wait.
const admissionWaitFactor = 10

// resolveConflictWait maps the Config encoding (0 default, negative
// disabled) to the internal one (0 disabled). Config itself is never
// mutated: Recover re-resolves the original value.
func resolveConflictWait(d time.Duration) time.Duration {
	switch {
	case d == 0:
		return defaultConflictWait
	case d < 0:
		return 0
	}
	return d
}

// Result reports the outcome of a non-query statement.
type Result struct {
	RowsAffected int64
	// StmtID is the statement's WAL identity (0 when WAL is disabled or
	// the statement was a query).
	StmtID uint64
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]types.Value
}

// DB is a database handle, safe for concurrent use.
type DB struct {
	cfg     Config
	disk    *storage.Disk
	pool    *storage.BufferPool
	cat     *catalog.Catalog
	planner *plan.Planner
	plans   *planCache    // nil when caching is disabled
	log     *wal.Log      // nil when WAL is disabled
	txns    *mvcc.Manager // transaction registry and commit clock

	// conflictWait is the resolved bounded wait-then-abort deadline
	// (0 = waiting disabled); admissionWait is the write-admission
	// deadline derived from it (admissionWaitFactor ×).
	conflictWait  time.Duration
	admissionWait time.Duration

	// gates holds the per-table soft write-admission gates, created on
	// first use and keyed by lowercased table name. A gate outliving its
	// table (DROP) is harmless: it is scheduling state only.
	gateMu sync.Mutex
	gates  map[string]*writeGate

	// admissionWaits/admissionWaitNanos count transactions that parked
	// at a write-admission gate and their total parked time;
	// admissionTimeouts count parks that expired into forced admission.
	admissionWaits     atomic.Int64
	admissionWaitNanos atomic.Int64
	admissionTimeouts  atomic.Int64

	// lockWaits/lockWaitNanos count table-latch acquisitions that had
	// to block and their total blocked time.
	lockWaits     atomic.Int64
	lockWaitNanos atomic.Int64

	// recoveries and replayedRecs carry recovery lineage: how many times
	// this database has been rebuilt from its log, and how many redo
	// records those recoveries applied in total.
	recoveries   int64
	replayedRecs int64

	// readOnly marks this instance a replica: statements that would write
	// (DML, DDL, online ALTER, session writes) fail with
	// ErrReadOnlyReplica; the streaming applier mutates through the
	// physical replay path instead.
	readOnly atomic.Bool

	// Replication telemetry. On a primary the shipper maintains
	// replShippedLSN (stream offset shipped to the furthest subscriber),
	// replAckedLSN (highest subscriber-confirmed applied LSN), and
	// replAckRounds. On a replica the applier maintains replAppliedLSN
	// (frame end of the last applied record) and replAppliedCommitLSN
	// (LSN of the last applied commit — the snapshot horizon follower
	// reads are pinned at).
	replShippedLSN       atomic.Uint64
	replAckedLSN         atomic.Uint64
	replAckRounds        atomic.Int64
	replAppliedLSN       atomic.Uint64
	replAppliedCommitLSN atomic.Uint64

	// stmtRollbacks counts DML statements that failed and had their
	// partial effects rolled back cleanly (statement-level atomicity);
	// stmtRollbackFailures counts statements whose undo replay itself
	// failed partway, leaving the table possibly inconsistent. A failed
	// statement lands in exactly one of the two.
	stmtRollbacks        atomic.Int64
	stmtRollbackFailures atomic.Int64

	// Interactive transaction outcomes (Session commits/rollbacks and
	// first-updater-wins conflict aborts).
	txnBegins    atomic.Int64
	txnCommits   atomic.Int64
	txnAborts    atomic.Int64
	txnConflicts atomic.Int64

	// execStats aggregates executor counters (rows/batches scanned,
	// column values decoded vs skipped by pruning) across statements.
	execStats exec.Stats

	// backfillOnce/backfillState lazily create the background schema
	// backfiller that migrates cold rows after an online ALTER (see
	// backfill.go).
	backfillOnce  sync.Once
	backfillState *backfiller

	// ddlMu serializes structural DDL (CREATE/DROP TABLE and INDEX)
	// against all other statements; DML, queries, and online ALTERs hold
	// it shared.
	ddlMu sync.RWMutex
	// planMu serializes planning when the plan cache is disabled (the
	// cache's in-flight table provides this per key otherwise).
	planMu sync.Mutex
}

// Open creates an empty database.
func Open(cfg Config) *DB {
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 64 << 20
	}
	if cfg.CheckpointBytes == 0 {
		cfg.CheckpointBytes = 4 << 20
	}
	disk := storage.NewDisk(cfg.PageSize)
	disk.ReadLatency = cfg.ReadLatency
	pool := storage.NewBufferPool(disk, cfg.MemoryBytes)
	txns := mvcc.NewManager()
	cat := catalog.New(pool, catalog.Config{
		MemoryBytes:       cfg.MemoryBytes,
		MetaBytesPerTable: cfg.MetaBytesPerTable,
		InsertMode:        cfg.InsertMode,
		Versions:          txns,
	})
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = 512
	}
	var plans *planCache
	if cfg.PlanCacheSize > 0 {
		plans = newPlanCache(cfg.PlanCacheSize)
	}
	var log *wal.Log
	if !cfg.DisableWAL {
		log = wal.New(wal.Config{
			SyncLatency:   cfg.SyncLatency,
			NoGroupCommit: cfg.NoGroupCommit,
		})
		log.AttachPool(pool)
		pool.SetWALGate(log)
	}
	cw := resolveConflictWait(cfg.ConflictWait)
	return &DB{
		cfg:           cfg,
		disk:          disk,
		pool:          pool,
		cat:           cat,
		planner:       plan.New(cat, cfg.Optimizer),
		plans:         plans,
		log:           log,
		txns:          txns,
		conflictWait:  cw,
		admissionWait: cw * admissionWaitFactor,
		gates:         make(map[string]*writeGate),
	}
}

// Catalog exposes the catalog (examples and the mapping layer use it
// for direct schema inspection).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Exec runs any statement and reports rows affected (0 for DDL and
// queries; use Query for result sets). The raw statement text keys the
// plan cache, so repeated ad-hoc statements skip replanning.
func (db *DB) Exec(query string, params ...types.Value) (Result, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return Result{}, err
	}
	return db.execStmtKeyed(st, query, params)
}

// ExecStmt is Exec for a pre-parsed statement.
func (db *DB) ExecStmt(st sql.Statement, params ...types.Value) (Result, error) {
	return db.execStmtKeyed(st, "", params)
}

// execStmtKeyed dispatches a statement; key is the plan-cache key, or
// "" to derive it from the statement's printed form (callers that hold
// the original text pass it to skip re-rendering).
func (db *DB) execStmtKeyed(st sql.Statement, key string, params []types.Value) (Result, error) {
	switch st := st.(type) {
	case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.DropTableStmt,
		*sql.DropIndexStmt:
		err := db.execDDL(st)
		if err == nil {
			db.maybeCheckpoint()
		}
		return Result{}, err
	case *sql.AlterAddColumnStmt, *sql.AlterDropColumnStmt, *sql.AlterColumnTypeStmt:
		err := db.execAlterOnline(st)
		if err == nil {
			db.maybeCheckpoint()
		}
		return Result{}, err
	case *sql.SelectStmt:
		return db.execSelect(st, key, params)
	case *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt, *sql.SavepointStmt:
		return Result{}, fmt.Errorf("engine: %s requires a Session (DB.Exec statements autocommit)", st)
	default:
		res, err := db.execDML(st, key, params)
		if err == nil {
			db.maybeCheckpoint()
		}
		return res, err
	}
}

// readerTxn begins an ephemeral snapshot for an autocommit read when
// interactive transactions are active; release undoes it. With none
// active — the common case — reads run on the plain path at zero cost,
// which is correct: the caller already holds its tables' locks, so
// every version chain it could meet has a committed newest writer and
// the physical rows are exactly the latest committed state.
func (db *DB) readerTxn() (tx *mvcc.Txn, release func()) {
	if db.txns.ActiveCount() == 0 {
		return nil, func() {}
	}
	tx = db.txns.Begin()
	// A pure reader records no writes; aborting deregisters it without
	// spending a commit timestamp.
	return tx, tx.Abort
}

// writerTxn begins an ephemeral transaction for an autocommit DML
// statement when interactive transactions are active: concurrent
// snapshots require the statement's writes to be versioned (pre-images
// recorded) and stamped with a commit timestamp. With none active the
// statement runs unversioned — no snapshot exists that must not see
// it, its commit can be serialized before any transaction that begins
// later, and the table write lock it holds keeps the race window
// closed (a transaction writing the same table would register itself
// before our check).
func (db *DB) writerTxn() *mvcc.Txn {
	if db.txns.ActiveCount() == 0 {
		return nil
	}
	return db.txns.Begin()
}

// noteRollback classifies a failed DML statement's rollback: clean
// (all undo steps applied; the table is back in its pre-statement
// state) or failed partway (exec.RollbackFailedError; the table may be
// inconsistent).
func (db *DB) noteRollback(err error) {
	var rf *exec.RollbackFailedError
	if errors.As(err, &rf) {
		db.stmtRollbackFailures.Add(1)
		return
	}
	db.stmtRollbacks.Add(1)
}

// Query runs a SELECT and returns all rows.
func (db *DB) Query(query string, params ...types.Value) (*Rows, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Query needs a SELECT, got %T", st)
	}
	return db.queryStmtKeyed(sel, query, params)
}

// QueryStmt is Query for a pre-parsed SELECT.
func (db *DB) QueryStmt(sel *sql.SelectStmt, params ...types.Value) (*Rows, error) {
	return db.queryStmtKeyed(sel, "", params)
}

func (db *DB) queryStmtKeyed(sel *sql.SelectStmt, key string, params []types.Value) (*Rows, error) {
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	reads := collectReadTables(sel, nil)
	unlock, err := db.lockTables(reads, "")
	if err != nil {
		return nil, err
	}
	defer unlock()
	p, err := db.planFor(key, sel)
	if err != nil {
		return nil, err
	}
	tx, release := db.readerTxn()
	defer release()
	data, err := exec.CollectTx(p, params, &db.execStats, tx)
	if err != nil {
		return nil, err
	}
	return rowsFor(p, data), nil
}

// rowsFor packages collected data with the plan's output column names.
func rowsFor(p plan.Node, data [][]types.Value) *Rows {
	schema := p.Schema()
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Name
	}
	return &Rows{Columns: cols, Data: data}
}

// execSelect runs a SELECT whose result nobody reads (Exec on a
// SELECT): rows are streamed and discarded, never materialized.
func (db *DB) execSelect(sel *sql.SelectStmt, key string, params []types.Value) (Result, error) {
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	reads := collectReadTables(sel, nil)
	unlock, err := db.lockTables(reads, "")
	if err != nil {
		return Result{}, err
	}
	defer unlock()
	p, err := db.planFor(key, sel)
	if err != nil {
		return Result{}, err
	}
	tx, release := db.readerTxn()
	defer release()
	_, err = exec.DrainTx(p, params, &db.execStats, tx)
	return Result{}, err
}

// planFor returns the plan for st, reusing the plan cache when it is
// enabled. key is the statement's SQL text ("" means render it from
// the AST); the catalog version completes the cache key, so on-line
// schema changes invalidate stale plans. Callers hold ddlMu shared,
// which keeps the version stable across lookup and build — and means
// at most one build runs per AST object (the in-flight table), which
// matters because the optimizer rewrites the AST in place.
func (db *DB) planFor(key string, st sql.Statement) (plan.Node, error) {
	if db.plans == nil {
		// No cache: serialize planning. Two goroutines must not plan the
		// same AST object concurrently (prepared statements reuse theirs,
		// and the optimizer rewrites ASTs in place).
		db.planMu.Lock()
		defer db.planMu.Unlock()
		return db.planner.PlanStatement(st)
	}
	if key == "" {
		key = st.String()
	}
	return db.plans.get(planKey{text: key, version: db.cat.Version()}, func() (plan.Node, error) {
		return db.planner.PlanStatement(st)
	})
}

// Explain plans a statement and renders the operator tree.
func (db *DB) Explain(query string, params ...types.Value) (string, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	p, err := db.planner.PlanStatement(st)
	if err != nil {
		return "", err
	}
	return plan.Explain(p), nil
}

// dmlLockSets derives a DML statement's lock sets: the written table
// and the tables its WHERE clause reads.
func dmlLockSets(st sql.Statement) (write string, reads []string, err error) {
	switch st := st.(type) {
	case *sql.InsertStmt:
		write = st.Table
	case *sql.UpdateStmt:
		write = st.Table
		reads = collectExprTables(st.Where, nil)
	case *sql.DeleteStmt:
		write = st.Table
		reads = collectExprTables(st.Where, nil)
	default:
		err = fmt.Errorf("engine: unsupported statement %T", st)
	}
	return write, reads, err
}

// execDML runs one autocommit DML statement. The caller's parsed
// statement becomes its own one-statement transaction: a WAL scope
// committed (durably) at the end, and — when interactive transactions
// are concurrently active — an ephemeral mvcc transaction so the
// statement's writes are versioned and stamped.
func (db *DB) execDML(st sql.Statement, key string, params []types.Value) (Result, error) {
	if db.readOnly.Load() {
		return Result{}, ErrReadOnlyReplica
	}
	write, reads, err := dmlLockSets(st)
	if err != nil {
		return Result{}, err
	}
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	unlock, err := db.lockTables(reads, write)
	if err != nil {
		return Result{}, err
	}
	defer unlock()
	p, err := db.planFor(key, st)
	if err != nil {
		return Result{}, err
	}
	var scope *wal.Scope
	var tbl *catalog.Table
	if db.log != nil {
		scope, err = db.log.Begin()
		if err != nil {
			return Result{}, err
		}
		tbl, err = db.cat.Table(write)
		if err != nil {
			scope.Abort()
			return Result{}, err
		}
		// Install the statement's loggers on the target table (we hold
		// its write lock) so every page mutation — including undo
		// compensations on failure — emits a redo record under this
		// transaction's ID. Cleared before the lock is released.
		tbl.SetWAL(scope.HeapLogger(tbl.Name), scope.TreeLogger())
		defer tbl.SetWAL(nil, nil)
	}
	// Begin after the locks are held: a concurrent autocommit writer on
	// the same table is serialized by the lock, never a false conflict.
	tx := db.writerTxn()
	undo := &catalog.UndoLog{}
	n, err := exec.RunDMLTx(p, params, &db.execStats, tx, undo)
	if err != nil {
		// RunDMLTx rolled the statement's partial effects back before
		// returning (statement-level atomicity).
		db.noteRollback(err)
		if scope != nil {
			scope.Abort()
		}
		if tx != nil {
			tx.Abort()
		}
		return Result{RowsAffected: n}, err
	}
	var cerr error
	if scope != nil {
		// Durability before visibility: the commit record is on the log
		// before the commit timestamp makes the writes visible to
		// snapshots that begin afterwards.
		cerr = scope.Commit()
	}
	if cerr != nil {
		// The commit record is not durable: take the statement back out
		// (the undo log is still whole) instead of leaving writes in
		// memory that the client was told failed and that a crash would
		// silently discard. A torn sync may still have landed the commit
		// record, in which case recovery resurrects the statement — the
		// error means "not committed here", the durable log is the final
		// authority after a crash.
		if db.log.Crashed() {
			// Compensation appends would fail every undo step; revert
			// unlogged. Recovery discards the terminator-less
			// transaction wholesale, matching the undone state.
			tbl.SetWAL(nil, nil)
		}
		ferr := cerr
		if failed, rbErr := undo.RollbackTo(0); rbErr != nil {
			ferr = &exec.RollbackFailedError{Cause: cerr, RB: rbErr, Table: tbl.Name, Failed: failed}
		}
		db.noteRollback(ferr)
		scope.Abort() // best effort; a no-op once the log is down
		if tx != nil {
			tx.Abort()
		}
		return Result{StmtID: scope.ID()}, ferr
	}
	undo.Discard()
	if tx != nil {
		tx.Commit()
	}
	if scope != nil {
		return Result{RowsAffected: n, StmtID: scope.ID()}, nil
	}
	return Result{RowsAffected: n}, nil
}

func (db *DB) execDDL(st sql.Statement) error {
	if db.readOnly.Load() {
		return ErrReadOnlyReplica
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	// DDL is serialized against whole transactions, not just statements:
	// an open snapshot must not watch the schema shift under it, and the
	// version stores hold row-level state no schema change knows how to
	// migrate. Sessions register their transaction under ddlMu (shared)
	// before releasing it, so the count here is authoritative.
	if n := db.txns.ActiveCount(); n > 0 {
		return fmt.Errorf("engine: DDL rejected: %d open transaction(s); COMMIT or ROLLBACK first", n)
	}
	if db.plans != nil {
		// The catalog version bump already invalidates lookups; purging
		// releases the stale plans' memory promptly.
		defer db.plans.purge()
	}
	var scope *wal.Scope
	if db.log != nil {
		var err error
		scope, err = db.log.Begin()
		if err != nil {
			return err
		}
	}
	ch, err := db.applyDDL(st, scope)
	if scope == nil {
		return err
	}
	if err != nil || ch == nil {
		// Failed, or an IF [NOT] EXISTS no-op: nothing durable happened.
		scope.Abort()
		return err
	}
	if err := scope.CatalogChange(ch.Encode()); err != nil {
		return err
	}
	return scope.Commit()
}

// applyDDL mutates the catalog and returns the schema change to log, or
// (nil, nil) when the statement was a no-op. With a scope, destructive
// statements defer their page frees to the scope's commit point —
// redo-only recovery cannot resurrect pages an uncommitted drop already
// destroyed.
func (db *DB) applyDDL(st sql.Statement, scope *wal.Scope) (*catalog.DDLChange, error) {
	switch st := st.(type) {
	case *sql.CreateTableStmt:
		if st.IfNotExists && db.cat.HasTable(st.Name) {
			return nil, nil
		}
		cols := make([]catalog.Column, len(st.Cols))
		for i, c := range st.Cols {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
		}
		if _, err := db.cat.CreateTable(st.Name, cols); err != nil {
			return nil, err
		}
		return &catalog.DDLChange{Op: catalog.OpCreateTable, Table: st.Name, Cols: cols}, nil
	case *sql.CreateIndexStmt:
		var lg btree.Logger
		if scope != nil {
			lg = scope.TreeLogger()
		}
		ix, err := db.cat.CreateIndexLogged(st.Table, st.Name, st.Columns, st.Unique, lg)
		if err != nil {
			return nil, err
		}
		// The statement is over; later statements install their own
		// loggers via SetWAL.
		ix.Tree.SetLogger(nil)
		// The payload carries the root as of backfill completion, so
		// recovery re-registers the index at its final root; mid-backfill
		// KBTreeRoot records then match nothing, which is fine.
		return &catalog.DDLChange{
			Op: catalog.OpCreateIndex, Table: st.Table, Index: st.Name,
			IndexCols: ix.Cols, Unique: st.Unique, Root: ix.Tree.Root(),
		}, nil
	case *sql.DropTableStmt:
		if st.IfExists && !db.cat.HasTable(st.Name) {
			return nil, nil
		}
		if scope == nil {
			return nil, db.cat.DropTable(st.Name)
		}
		data, index, err := db.cat.DropTableDeferred(st.Name)
		if err != nil {
			return nil, err
		}
		scope.DeferFree(storage.CatData, data...)
		scope.DeferFree(storage.CatIndex, index...)
		return &catalog.DDLChange{Op: catalog.OpDropTable, Table: st.Name}, nil
	case *sql.DropIndexStmt:
		if scope == nil {
			return nil, db.cat.DropIndex(st.Table, st.Name)
		}
		pages, err := db.cat.DropIndexDeferred(st.Table, st.Name)
		if err != nil {
			return nil, err
		}
		scope.DeferFree(storage.CatIndex, pages...)
		return &catalog.DDLChange{Op: catalog.OpDropIndex, Table: st.Table, Index: st.Name}, nil
	case *sql.AlterAddColumnStmt:
		col := catalog.Column{Name: st.Col.Name, Type: st.Col.Type, NotNull: st.Col.NotNull}
		if err := db.cat.AddColumn(st.Table, col); err != nil {
			return nil, err
		}
		return &catalog.DDLChange{
			Op: catalog.OpAddColumn, Table: st.Table, Cols: []catalog.Column{col},
		}, nil
	}
	return nil, fmt.Errorf("engine: unsupported DDL %T", st)
}

// lockTables acquires read locks on reads and a write lock on write,
// in a global order (by lowercased name) to avoid deadlocks. A table
// appearing in both gets only the write lock.
func (db *DB) lockTables(reads []string, write string) (func(), error) {
	if write == "" {
		return db.lockTablesMulti(reads, nil)
	}
	return db.lockTablesMulti(reads, []string{write})
}

// lockTablesMulti is lockTables for several write targets at once (a
// whole transaction's rollback relocks every table it wrote).
func (db *DB) lockTablesMulti(reads, writes []string) (func(), error) {
	type lockReq struct {
		name  string
		write bool
	}
	seen := map[string]*lockReq{}
	for _, r := range reads {
		k := strings.ToLower(r)
		if seen[k] == nil {
			seen[k] = &lockReq{name: r}
		}
	}
	for _, w := range writes {
		k := strings.ToLower(w)
		if seen[k] == nil {
			seen[k] = &lockReq{name: w}
		}
		seen[k].write = true
	}
	var order []string
	for k := range seen {
		order = append(order, k)
	}
	sort.Strings(order)
	var locked []func()
	for _, k := range order {
		req := seen[k]
		t, err := db.cat.Table(req.name)
		if err != nil {
			for i := len(locked) - 1; i >= 0; i-- {
				locked[i]()
			}
			return nil, err
		}
		// Try the fast path first so the uncontended case costs nothing;
		// only a blocked acquisition pays for a clock read and counters.
		if req.write {
			if !t.Mu.TryLock() {
				start := time.Now()
				t.Mu.Lock()
				db.lockWaits.Add(1)
				db.lockWaitNanos.Add(time.Since(start).Nanoseconds())
			}
			locked = append(locked, t.Mu.Unlock)
		} else {
			if !t.Mu.TryRLock() {
				start := time.Now()
				t.Mu.RLock()
				db.lockWaits.Add(1)
				db.lockWaitNanos.Add(time.Since(start).Nanoseconds())
			}
			locked = append(locked, t.Mu.RUnlock)
		}
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i]()
		}
	}, nil
}

// writeGate is a soft per-table write-admission token. A session
// transaction takes the token at its first write to the table and
// returns it when the transaction ends, so under write contention
// transactions queue politely instead of interleaving their statements
// and colliding under first-updater-wins. The gate is scheduling state
// ONLY — it never changes what can commit: a transaction that cannot
// get the token within the bounded deadline is admitted anyway (forced
// admission) and proceeds to the ordinary conflict machinery. That
// keeps single-threaded interleavings (one client juggling several
// sessions) live, and makes the gate trivially deadlock-free: no
// waiter waits forever, and token holders never wait on gates they
// already hold.
type writeGate struct {
	tok chan struct{} // capacity 1, pre-filled: the admission token
}

func newWriteGate() *writeGate {
	g := &writeGate{tok: make(chan struct{}, 1)}
	g.tok <- struct{}{}
	return g
}

// release returns the token. Non-blocking send keeps the capacity-1
// invariant: only an acquire that reported held releases.
func (g *writeGate) release() {
	select {
	case g.tok <- struct{}{}:
	default:
	}
}

// gateFor returns (creating if needed) the admission gate for a table.
func (db *DB) gateFor(lower string) *writeGate {
	db.gateMu.Lock()
	g := db.gates[lower]
	if g == nil {
		g = newWriteGate()
		db.gates[lower] = g
	}
	db.gateMu.Unlock()
	return g
}

// collectReadTables lists the base tables a SELECT touches, including
// derived tables and IN subqueries.
func collectReadTables(s *sql.SelectStmt, acc []string) []string {
	for _, tr := range s.From {
		acc = collectRefTables(tr, acc)
	}
	acc = collectExprTables(s.Where, acc)
	acc = collectExprTables(s.Having, acc)
	return acc
}

func collectRefTables(tr sql.TableRef, acc []string) []string {
	switch tr := tr.(type) {
	case *sql.NamedTable:
		acc = append(acc, tr.Name)
	case *sql.SubqueryTable:
		acc = collectReadTables(tr.Select, acc)
	case *sql.JoinTable:
		acc = collectRefTables(tr.Left, acc)
		acc = collectRefTables(tr.Right, acc)
		acc = collectExprTables(tr.On, acc)
	}
	return acc
}

func collectExprTables(e sql.Expr, acc []string) []string {
	switch e := e.(type) {
	case nil:
		return acc
	case *sql.BinaryExpr:
		acc = collectExprTables(e.L, acc)
		acc = collectExprTables(e.R, acc)
	case *sql.UnaryExpr:
		acc = collectExprTables(e.X, acc)
	case *sql.IsNullExpr:
		acc = collectExprTables(e.X, acc)
	case *sql.LikeExpr:
		acc = collectExprTables(e.X, acc)
		acc = collectExprTables(e.Pattern, acc)
	case *sql.CastExpr:
		acc = collectExprTables(e.X, acc)
	case *sql.FuncExpr:
		for _, a := range e.Args {
			acc = collectExprTables(a, acc)
		}
	case *sql.InExpr:
		acc = collectExprTables(e.X, acc)
		for _, i := range e.List {
			acc = collectExprTables(i, acc)
		}
		if e.Subquery != nil {
			acc = collectReadTables(e.Subquery, acc)
		}
	}
	return acc
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Pool       storage.PoolStats
	PhysReads  int64
	PhysWrites int64
	Tables     int
	MetaBytes  int64
	// StmtRollbacks counts DML statements that failed and were rolled
	// back cleanly to their pre-statement state; StmtRollbackFailures
	// counts failed statements whose undo replay itself failed partway
	// (the table may be inconsistent). Every failed DML statement lands
	// in exactly one of the two.
	StmtRollbacks        int64
	StmtRollbackFailures int64
	// Interactive transaction outcomes: sessions' BEGINs, durable
	// COMMITs, ROLLBACKs (explicit or conflict-forced), and the subset
	// of aborts caused by first-updater-wins write-write conflicts.
	TxnBegins    int64
	TxnCommits   int64
	TxnAborts    int64
	TxnConflicts int64
	// ActiveTxns is the number of transactions begun but not finished at
	// snapshot time; PinnedSnapshots the subset holding a pinned
	// snapshot (constraining the version-GC horizon). Both must drain to
	// zero when every session is closed — the server's leak check.
	ActiveTxns      int64
	PinnedSnapshots int64
	// Contention telemetry. LockWaits/LockWaitNanos count table-latch
	// acquisitions that blocked and their total blocked time. RowWaits/
	// RowWaitNanos count DML statements that parked in bounded
	// wait-then-abort and their total parked time; RowWaitTimeouts are
	// waits that expired into a conflict abort, RowWaitRescues waits
	// that cleared and let the write proceed. ImmediateConflicts are
	// first-updater-wins conflicts no wait could change (the holder
	// committed too new or holds a reserved commit timestamp) or that
	// arrived with waiting disabled.
	// AdmissionWaits/AdmissionWaitNanos count transactions that parked at
	// a per-table write-admission gate and their total parked time;
	// AdmissionTimeouts count parks that expired into forced admission
	// (the gate is scheduling only — a timed-out transaction proceeds).
	LockWaits          int64
	LockWaitNanos      int64
	AdmissionWaits     int64
	AdmissionWaitNanos int64
	AdmissionTimeouts  int64
	RowWaits           int64
	RowWaitNanos       int64
	RowWaitTimeouts    int64
	RowWaitRescues     int64
	ImmediateConflicts int64
	// Commit-pipeline telemetry: current and high-water number of
	// reserved commits awaiting publication, publication rounds, and
	// commits published (PublishedTxns / PublishBatches is the mean
	// pipeline batch size).
	CommitPipelineDepth int64
	CommitPipelineMax   int64
	PublishBatches      int64
	PublishedTxns       int64
	// Exec carries executor counters: rows and batches produced by
	// base-table scans, and column values decoded vs skipped by column
	// pruning (the decode savings of narrow queries over wide tables).
	Exec exec.Counters
	// WAL carries durability counters: bytes and records appended, sync
	// calls, commits, the group-commit batch-size histogram, checkpoints
	// taken, and log bytes truncated. Zero when WAL is disabled.
	WAL wal.Stats
	// Recoveries counts how many times this database instance has been
	// rebuilt from its log; RecoveryReplayed is the total number of redo
	// records those recoveries applied.
	Recoveries       int64
	RecoveryReplayed int64
	// Plan-cache effectiveness: lookups served from the compiled-plan
	// LRU vs lookups that had to plan (a DDL bump or first sight of a
	// statement text).
	PlanCacheHits   int64
	PlanCacheMisses int64
	// Replication telemetry. Primary side: ReplShippedLSN is the stream
	// offset shipped to the furthest subscriber, ReplAckedLSN the highest
	// applied LSN a subscriber confirmed, ReplAckRoundTrips the number of
	// acks received. Replica side: ReplAppliedLSN is the frame end of the
	// last applied record, ReplAppliedCommitLSN the last applied commit
	// (the snapshot horizon follower reads are pinned at). ReplLagBytes
	// is durable-horizon minus the confirmed/applied position — on a
	// primary how far the slowest acked subscriber trails, on a replica
	// how many ingested bytes await apply. Zero when unused.
	ReplShippedLSN       uint64
	ReplAckedLSN         uint64
	ReplAckRoundTrips    int64
	ReplAppliedLSN       uint64
	ReplAppliedCommitLSN uint64
	ReplLagBytes         int64
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	s := Stats{
		Pool:                 db.pool.Stats(),
		PhysReads:            db.disk.PhysReads(),
		PhysWrites:           db.disk.PhysWrites(),
		Tables:               db.cat.NumTables(),
		MetaBytes:            db.cat.MetaBytes(),
		StmtRollbacks:        db.stmtRollbacks.Load(),
		StmtRollbackFailures: db.stmtRollbackFailures.Load(),
		TxnBegins:            db.txnBegins.Load(),
		TxnCommits:           db.txnCommits.Load(),
		TxnAborts:            db.txnAborts.Load(),
		TxnConflicts:         db.txnConflicts.Load(),
		ActiveTxns:           int64(db.txns.ActiveCount()),
		PinnedSnapshots:      int64(db.txns.PinnedCount()),
		Exec:                 db.execStats.Snapshot(),
		Recoveries:           db.recoveries,
		RecoveryReplayed:     db.replayedRecs,
	}
	c := db.txns.Contention()
	s.LockWaits = db.lockWaits.Load()
	s.LockWaitNanos = db.lockWaitNanos.Load()
	s.AdmissionWaits = db.admissionWaits.Load()
	s.AdmissionWaitNanos = db.admissionWaitNanos.Load()
	s.AdmissionTimeouts = db.admissionTimeouts.Load()
	s.RowWaits = c.RowWaits
	s.RowWaitNanos = c.RowWaitNanos
	s.RowWaitTimeouts = c.RowWaitTimeouts
	s.RowWaitRescues = c.RowWaitRescues
	s.ImmediateConflicts = c.ImmediateConflicts
	s.CommitPipelineDepth = c.PipelineDepth
	s.CommitPipelineMax = c.PipelineMax
	s.PublishBatches = c.PublishBatches
	s.PublishedTxns = c.PublishedTxns
	s.PlanCacheHits, s.PlanCacheMisses = db.plans.counters()
	if db.log != nil {
		s.WAL = db.log.Stats()
	}
	s.ReplShippedLSN = db.replShippedLSN.Load()
	s.ReplAckedLSN = db.replAckedLSN.Load()
	s.ReplAckRoundTrips = db.replAckRounds.Load()
	s.ReplAppliedLSN = db.replAppliedLSN.Load()
	s.ReplAppliedCommitLSN = db.replAppliedCommitLSN.Load()
	if db.log != nil {
		end := uint64(db.log.DurableLSN())
		switch {
		case db.readOnly.Load() && s.ReplAppliedLSN > 0:
			s.ReplLagBytes = int64(end - s.ReplAppliedLSN)
		case s.ReplAckedLSN > 0:
			s.ReplLagBytes = int64(end - s.ReplAckedLSN)
		}
	}
	return s
}

// ResetStats zeroes the counters (used between benchmark phases).
func (db *DB) ResetStats() {
	db.pool.ResetStats()
	db.disk.ResetCounters()
	db.execStats.Reset()
	if db.log != nil {
		db.log.ResetStats()
	}
}

// DropCaches flushes and empties the buffer pool — the cold-cache
// protocol of the paper's Test 5. It takes the DDL lock so no statement
// is mid-flight.
func (db *DB) DropCaches() error {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	return db.pool.DropAll()
}

// BufferPool exposes the pool for experiment harnesses.
func (db *DB) BufferPool() *storage.BufferPool { return db.pool }

// Disk exposes the disk for experiment harnesses.
func (db *DB) Disk() *storage.Disk { return db.disk }

// WAL exposes the log for experiment harnesses (nil when disabled).
func (db *DB) WAL() *wal.Log { return db.log }

// Txns exposes the transaction manager; the network server's drain
// check and the disconnect tests read its pin counts and GC horizon.
func (db *DB) Txns() *mvcc.Manager { return db.txns }

// ckptPayload is the JSON body of a KCheckpoint record: the catalog at
// checkpoint time plus the dirty-page table (each dirty page's recLSN —
// the oldest log record that may not yet be on disk for it).
type ckptPayload struct {
	Catalog *catalog.Snapshot          `json:"catalog"`
	DPT     map[storage.PageID]wal.LSN `json:"dpt,omitempty"`
}

// Checkpoint takes a fuzzy checkpoint: sync the log, append a snapshot
// of the catalog and the dirty-page table, sync again, then truncate the
// log to the oldest byte still needed — the minimum of the checkpoint's
// own frame and the oldest recLSN of any still-dirty page.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return nil
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if err := db.log.Sync(); err != nil {
		return err
	}
	payload := ckptPayload{Catalog: db.cat.Snapshot(), DPT: db.pool.DirtyPageTable()}
	b, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("engine: checkpoint encode: %w", err)
	}
	start, _, err := db.log.AppendCheckpoint(b)
	if err != nil {
		return err
	}
	if err := db.log.Sync(); err != nil {
		return err
	}
	bound := start
	if o := db.pool.OldestRecLSN(); o < bound {
		bound = o
	}
	// An open transaction scope spans statements: if it later commits,
	// recovery must replay it from its first record, so truncation never
	// passes the oldest active scope's begin. (With autocommit-only
	// traffic the checkpoint's exclusive ddlMu means no scope is active
	// and this bound is infinite.)
	if o := db.log.OldestActiveLSN(); o < bound {
		bound = o
	}
	db.log.TruncateTo(bound)
	return nil
}

// maybeCheckpoint runs a checkpoint when enough log has accumulated.
// Called without ddlMu held, after a statement completes. Errors are
// dropped: a failed checkpoint only delays truncation, and if the log
// crashed the next statement reports it.
func (db *DB) maybeCheckpoint() {
	if db.log == nil || db.cfg.CheckpointBytes <= 0 {
		return
	}
	if db.log.BytesSinceCheckpoint() >= db.cfg.CheckpointBytes {
		_ = db.Checkpoint()
	}
}

// CrashImage is what survives a crash: the disk (its durable pages) and
// the log (its durable prefix). Everything else — buffer pool, catalog,
// plans — is volatile and lost. Recover rebuilds a DB from it.
type CrashImage struct {
	Disk *storage.Disk
	Log  *wal.Log
	Cfg  Config

	recoveries   int64
	replayedRecs int64
}

// Crash kills the database: the buffer pool drops every frame without
// writing anything back, the log discards its volatile tail and refuses
// further appends, and the disk rejects all traffic until Recover. The
// returned image is the starting point for Recover.
func (db *DB) Crash() *CrashImage {
	if db.log != nil {
		db.log.Crash()
	}
	db.pool.Crash()
	db.disk.SetCrashed(true)
	return &CrashImage{
		Disk:         db.disk,
		Log:          db.log,
		Cfg:          db.cfg,
		recoveries:   db.recoveries,
		replayedRecs: db.replayedRecs,
	}
}
