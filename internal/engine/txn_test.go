package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/mvcc"
	"repro/internal/storage"
	"repro/internal/types"
)

// newTxnDB builds a db with one indexed accounts-style table:
// k = 0..n-1 dense unique, v = "val-<k>", bal = 100 each.
func newTxnDB(t *testing.T, cfg Config, n int) *DB {
	t.Helper()
	db := Open(cfg)
	mustExec(t, db, "CREATE TABLE acct (k INTEGER NOT NULL, v VARCHAR(100), bal INTEGER)")
	mustExec(t, db, "CREATE UNIQUE INDEX acct_pk ON acct (k)")
	for i := 0; i < n; i++ {
		mustExec(t, db, "INSERT INTO acct VALUES (?, ?, 100)",
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("val-%04d", i)))
	}
	return db
}

func sessExec(t *testing.T, s *Session, q string, params ...types.Value) Result {
	t.Helper()
	res, err := s.Exec(q, params...)
	if err != nil {
		t.Fatalf("session Exec(%q): %v", q, err)
	}
	return res
}

func sessQuery(t *testing.T, s *Session, q string, params ...types.Value) *Rows {
	t.Helper()
	rows, err := s.Query(q, params...)
	if err != nil {
		t.Fatalf("session Query(%q): %v", q, err)
	}
	return rows
}

// oneInt runs a single-row single-column query and returns the value.
func oneInt(t *testing.T, s *Session, q string, params ...types.Value) int64 {
	t.Helper()
	rows := sessQuery(t, s, q, params...)
	if len(rows.Data) != 1 || len(rows.Data[0]) != 1 {
		t.Fatalf("Query(%q): want 1x1 result, got %dx?", q, len(rows.Data))
	}
	return rows.Data[0][0].Int
}

func TestTxnCommitMakesWritesVisibleAtomically(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	sessExec(t, s1, "BEGIN")
	sessExec(t, s1, "INSERT INTO acct VALUES (100, 'new', 1)")
	sessExec(t, s1, "UPDATE acct SET bal = 55 WHERE k = 0")

	// Uncommitted writes are invisible to another session (autocommit
	// read and in-transaction read alike).
	if got := oneInt(t, s2, "SELECT COUNT(*) FROM acct"); got != 4 {
		t.Errorf("other session sees %d rows before commit, want 4", got)
	}
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 0"); got != 100 {
		t.Errorf("other session sees bal=%d before commit, want 100", got)
	}
	// ...but visible to the writer itself.
	if got := oneInt(t, s1, "SELECT COUNT(*) FROM acct"); got != 5 {
		t.Errorf("writer sees %d rows, want 5", got)
	}
	if got := oneInt(t, s1, "SELECT bal FROM acct WHERE k = 0"); got != 55 {
		t.Errorf("writer sees bal=%d, want 55", got)
	}

	before := db.Stats()
	sessExec(t, s1, "COMMIT")
	after := db.Stats()
	if after.TxnCommits != before.TxnCommits+1 {
		t.Errorf("TxnCommits %d -> %d, want +1", before.TxnCommits, after.TxnCommits)
	}

	if got := oneInt(t, s2, "SELECT COUNT(*) FROM acct"); got != 5 {
		t.Errorf("after commit other session sees %d rows, want 5", got)
	}
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 0"); got != 55 {
		t.Errorf("after commit other session sees bal=%d, want 55", got)
	}
}

func TestTxnRollbackUndoesEverything(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	s := db.Session()
	defer s.Close()
	tab := atomTable2(t, db)
	snap, err := tab.SnapshotRows()
	if err != nil {
		t.Fatal(err)
	}

	sessExec(t, s, "BEGIN")
	sessExec(t, s, "INSERT INTO acct VALUES (100, 'new', 1)")
	sessExec(t, s, "UPDATE acct SET bal = bal + 7 WHERE k >= 1")
	sessExec(t, s, "DELETE FROM acct WHERE k = 0")
	sessExec(t, s, "ROLLBACK")

	after, err := tab.SnapshotRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(snap) {
		t.Fatalf("row count after rollback = %d, want %d", len(after), len(snap))
	}
	if got := oneInt(t, s, "SELECT SUM(bal) FROM acct"); got != 400 {
		t.Errorf("SUM(bal) after rollback = %d, want 400", got)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Errorf("invariants after rollback: %v", err)
	}
	if s.InTxn() {
		t.Error("session still in a transaction after ROLLBACK")
	}
}

// No dirty read: a reader never observes another transaction's
// uncommitted writes, whichever access path serves the read.
func TestTxnNoDirtyRead(t *testing.T) {
	db := newTxnDB(t, Config{}, 8)
	w, r := db.Session(), db.Session()
	defer w.Close()
	defer r.Close()

	sessExec(t, r, "BEGIN") // reader's snapshot predates the writes
	sessExec(t, w, "BEGIN")
	sessExec(t, w, "UPDATE acct SET bal = 0, v = 'dirty' WHERE k = 3")
	sessExec(t, w, "DELETE FROM acct WHERE k = 4")
	sessExec(t, w, "INSERT INTO acct VALUES (200, 'phantom', 9)")

	// Sequential-scan shaped read.
	if got := oneInt(t, r, "SELECT SUM(bal) FROM acct"); got != 800 {
		t.Errorf("in-txn reader: SUM(bal) = %d, want 800", got)
	}
	// Index-range shaped read over the updated and deleted keys.
	if got := oneInt(t, r, "SELECT COUNT(*) FROM acct WHERE k >= 3 AND k <= 4"); got != 2 {
		t.Errorf("in-txn reader: rows in [3,4] = %d, want 2", got)
	}
	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 3"); got != 100 {
		t.Errorf("in-txn reader: bal(3) = %d, want 100", got)
	}
	// Autocommit readers must not see them either.
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM acct")
	if rows.Data[0][0].Int != 8 {
		t.Errorf("autocommit reader: %d rows, want 8", rows.Data[0][0].Int)
	}
	sessExec(t, w, "ROLLBACK")
}

// Repeatable reads: a snapshot keeps returning the values it first saw
// even after other transactions commit changes (including deletes —
// no ghost disappearance mid-transaction).
func TestTxnRepeatableReadAndNoGhosts(t *testing.T) {
	db := newTxnDB(t, Config{}, 8)
	r := db.Session()
	defer r.Close()

	sessExec(t, r, "BEGIN")
	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 2"); got != 100 {
		t.Fatalf("first read: bal(2) = %d, want 100", got)
	}

	// Committed autocommit writes from elsewhere.
	mustExec(t, db, "UPDATE acct SET bal = 1 WHERE k = 2")
	mustExec(t, db, "DELETE FROM acct WHERE k = 5")
	mustExec(t, db, "INSERT INTO acct VALUES (300, 'late', 3)")

	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 2"); got != 100 {
		t.Errorf("re-read: bal(2) = %d, want 100 (non-repeatable read)", got)
	}
	if got := oneInt(t, r, "SELECT COUNT(*) FROM acct WHERE k = 5"); got != 1 {
		t.Errorf("re-read: deleted row vanished from the snapshot")
	}
	if got := oneInt(t, r, "SELECT COUNT(*) FROM acct"); got != 8 {
		t.Errorf("re-read: COUNT(*) = %d, want 8 (phantom visible)", got)
	}
	sessExec(t, r, "COMMIT")

	// A fresh statement sees the new reality.
	if got := oneInt(t, r, "SELECT COUNT(*) FROM acct"); got != 8 {
		t.Errorf("after commit: COUNT(*) = %d, want 8 (one delete, one insert)", got)
	}
	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 2"); got != 1 {
		t.Errorf("after commit: bal(2) = %d, want 1", got)
	}
}

// First-updater-wins, uncommitted case: the second writer of a row
// conflicts while the first is still active, and its whole transaction
// rolls back.
func TestTxnWriteWriteConflictSecondAborts(t *testing.T) {
	db := newTxnDB(t, Config{}, 8)
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	sessExec(t, s1, "BEGIN")
	sessExec(t, s2, "BEGIN")
	sessExec(t, s2, "UPDATE acct SET bal = bal - 1 WHERE k = 7") // s2's keeper write
	sessExec(t, s1, "UPDATE acct SET bal = 10 WHERE k = 1")

	before := db.Stats()
	_, err := s2.Exec("UPDATE acct SET bal = 20 WHERE k = 1")
	if !errors.Is(err, mvcc.ErrWriteConflict) {
		t.Fatalf("second writer: want ErrWriteConflict, got %v", err)
	}
	st := db.Stats()
	if st.TxnConflicts != before.TxnConflicts+1 || st.TxnAborts != before.TxnAborts+1 {
		t.Errorf("conflict/abort counters: conflicts %d->%d aborts %d->%d, want both +1",
			before.TxnConflicts, st.TxnConflicts, before.TxnAborts, st.TxnAborts)
	}

	// The conflicted transaction is dead: statements fail until the
	// session acknowledges with ROLLBACK (or a COMMIT that reports it).
	if _, err := s2.Exec("SELECT COUNT(*) FROM acct"); !errors.Is(err, ErrTxnAborted) {
		t.Errorf("statement in aborted txn: want ErrTxnAborted, got %v", err)
	}
	if _, err := s2.Exec("COMMIT"); !errors.Is(err, ErrTxnAborted) {
		t.Errorf("COMMIT of aborted txn: want ErrTxnAborted, got %v", err)
	}
	// COMMIT cleared the state; the session is usable again.
	if s2.InTxn() {
		t.Error("session still in txn after acknowledging the abort")
	}

	// s2's own earlier write was rolled back with the transaction; s1's
	// write survives and commits.
	sessExec(t, s1, "COMMIT")
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 7"); got != 100 {
		t.Errorf("loser's earlier write leaked: bal(7) = %d, want 100", got)
	}
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 1"); got != 10 {
		t.Errorf("winner's write lost: bal(1) = %d, want 10", got)
	}
}

// First-updater-wins, committed case: the first writer already
// committed, but after the second's snapshot — still a conflict (no
// lost update).
func TestTxnWriteWriteConflictAfterCommit(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	sessExec(t, s2, "BEGIN") // snapshot taken before s1's commit
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 1"); got != 100 {
		t.Fatal("setup read failed")
	}
	sessExec(t, s1, "BEGIN")
	sessExec(t, s1, "UPDATE acct SET bal = 10 WHERE k = 1")
	sessExec(t, s1, "COMMIT")

	_, err := s2.Exec("UPDATE acct SET bal = bal + 1 WHERE k = 1")
	if !errors.Is(err, mvcc.ErrWriteConflict) {
		t.Fatalf("update over a newer committed version: want ErrWriteConflict, got %v", err)
	}
	sessExec(t, s2, "ROLLBACK") // acknowledge
	if got := oneInt(t, s2, "SELECT bal FROM acct WHERE k = 1"); got != 10 {
		t.Errorf("bal(1) = %d, want 10 (first updater's value)", got)
	}
}

// Write skew is PERMITTED under snapshot isolation: two transactions
// read an overlapping set and write disjoint rows; both commit. This
// test documents the anomaly as expected engine behavior (the paper's
// target workloads are single-tenant row operations where SI suffices;
// serializable isolation is out of scope).
func TestTxnWriteSkewPermitted(t *testing.T) {
	db := newTxnDB(t, Config{}, 2) // k=0 and k=1, bal 100 each
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	// Invariant both txns believe they preserve: bal(0)+bal(1) >= 100.
	sessExec(t, s1, "BEGIN")
	sessExec(t, s2, "BEGIN")
	if got := oneInt(t, s1, "SELECT SUM(bal) FROM acct"); got != 200 {
		t.Fatal("setup")
	}
	if got := oneInt(t, s2, "SELECT SUM(bal) FROM acct"); got != 200 {
		t.Fatal("setup")
	}
	sessExec(t, s1, "UPDATE acct SET bal = 0 WHERE k = 0") // disjoint writes:
	sessExec(t, s2, "UPDATE acct SET bal = 0 WHERE k = 1") // no FUW conflict
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatalf("s1 COMMIT: %v", err)
	}
	if _, err := s2.Exec("COMMIT"); err != nil {
		t.Fatalf("s2 COMMIT under write skew: %v (SI must permit this)", err)
	}
	if got := oneInt(t, s1, "SELECT SUM(bal) FROM acct"); got != 0 {
		t.Errorf("SUM(bal) = %d, want 0 (both skewed writes applied)", got)
	}
}

func TestTxnSavepointPartialRollback(t *testing.T) {
	db := newTxnDB(t, Config{}, 2)
	s := db.Session()
	defer s.Close()

	sessExec(t, s, "BEGIN")
	sessExec(t, s, "INSERT INTO acct VALUES (10, 'a', 1)")
	sessExec(t, s, "SAVEPOINT sp1")
	sessExec(t, s, "INSERT INTO acct VALUES (11, 'b', 2)")
	sessExec(t, s, "SAVEPOINT sp2")
	sessExec(t, s, "INSERT INTO acct VALUES (12, 'c', 3)")
	sessExec(t, s, "UPDATE acct SET bal = 0 WHERE k = 0")

	// Roll back to sp1: undoes rows 11, 12 and the update; row 10 stays.
	sessExec(t, s, "ROLLBACK TO sp1")
	if got := oneInt(t, s, "SELECT COUNT(*) FROM acct WHERE k >= 10"); got != 1 {
		t.Errorf("rows >= 10 after ROLLBACK TO sp1: %d, want 1", got)
	}
	if got := oneInt(t, s, "SELECT bal FROM acct WHERE k = 0"); got != 100 {
		t.Errorf("bal(0) = %d, want 100 (update past sp1 must be undone)", got)
	}
	// sp2 was destroyed by the rollback; sp1 survives and is reusable.
	if _, err := s.Exec("ROLLBACK TO sp2"); !errors.Is(err, ErrNoSavepoint) {
		t.Errorf("ROLLBACK TO destroyed savepoint: want ErrNoSavepoint, got %v", err)
	}
	sessExec(t, s, "INSERT INTO acct VALUES (13, 'd', 4)")
	sessExec(t, s, "ROLLBACK TO sp1")
	if got := oneInt(t, s, "SELECT COUNT(*) FROM acct WHERE k >= 10"); got != 1 {
		t.Errorf("rows >= 10 after second ROLLBACK TO sp1: %d, want 1", got)
	}

	sessExec(t, s, "INSERT INTO acct VALUES (14, 'e', 5)")
	sessExec(t, s, "COMMIT")
	// Committed state: the pre-savepoint row and the post-rollback row.
	if got := oneInt(t, s, "SELECT COUNT(*) FROM acct WHERE k >= 10"); got != 2 {
		t.Errorf("committed rows >= 10: %d, want 2 (k=10 and k=14)", got)
	}
	if err := atomTable2(t, db).CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// Index scans under versioning: a transaction that changes indexed keys
// sees its own new keys through the index, while a concurrent snapshot
// and autocommit readers keep seeing the old keys — even though the
// index entries themselves already moved.
func TestTxnIndexScanSeesSnapshotKeys(t *testing.T) {
	db := newTxnDB(t, Config{}, 5)
	w := db.Session()
	defer w.Close()

	sessExec(t, w, "BEGIN")
	// Key-change update through the unique index: rows 0..2 -> 1000..1002.
	sessExec(t, w, "UPDATE acct SET k = k + 1000 WHERE k >= 0 AND k < 3")

	// Writer, via an index-range predicate, sees the new keys only.
	if got := oneInt(t, w, "SELECT COUNT(*) FROM acct WHERE k >= 1000"); got != 3 {
		t.Errorf("writer: rows with k>=1000 = %d, want 3", got)
	}
	if got := oneInt(t, w, "SELECT COUNT(*) FROM acct WHERE k >= 0 AND k < 100"); got != 2 {
		t.Errorf("writer: rows with old small keys = %d, want 2", got)
	}
	// Autocommit reader (ephemeral snapshot) sees only the old keys.
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM acct WHERE k >= 1000")
	if rows.Data[0][0].Int != 0 {
		t.Errorf("autocommit reader: rows with k>=1000 = %d, want 0", rows.Data[0][0].Int)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM acct WHERE k >= 0 AND k < 100")
	if rows.Data[0][0].Int != 5 {
		t.Errorf("autocommit reader: old-key rows = %d, want 5", rows.Data[0][0].Int)
	}
	// Point lookup of a moved row still resolves through the snapshot.
	rows = mustQuery(t, db, "SELECT v FROM acct WHERE k = 2")
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "val-0002" {
		t.Errorf("autocommit point read of moved key: %v", rows.Data)
	}

	sessExec(t, w, "COMMIT")
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM acct WHERE k >= 1000")
	if rows.Data[0][0].Int != 3 {
		t.Errorf("after commit: rows with k>=1000 = %d, want 3", rows.Data[0][0].Int)
	}
	if err := atomTable2(t, db).CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// Unique-key checks classify their failures: a key held by another
// transaction's uncommitted insert (or masked by its uncommitted
// delete) is a write-write conflict, not a constraint violation; a key
// held by committed data is a genuine violation that only fails the
// statement, not the transaction.
func TestTxnUniqueConflictClassification(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	// Case 1: uncommitted insert holds k=50.
	sessExec(t, s1, "BEGIN")
	sessExec(t, s1, "INSERT INTO acct VALUES (50, 'held', 1)")
	sessExec(t, s2, "BEGIN")
	_, err := s2.Exec("INSERT INTO acct VALUES (50, 'contender', 2)")
	if !errors.Is(err, mvcc.ErrWriteConflict) {
		t.Fatalf("insert into uncommitted-held key: want ErrWriteConflict, got %v", err)
	}
	sessExec(t, s2, "ROLLBACK")
	sessExec(t, s1, "ROLLBACK")

	// Case 2: uncommitted delete shadows k=2; reinserting the key from
	// another transaction must conflict, not succeed or report a dup.
	sessExec(t, s1, "BEGIN")
	sessExec(t, s1, "DELETE FROM acct WHERE k = 2")
	sessExec(t, s2, "BEGIN")
	_, err = s2.Exec("INSERT INTO acct VALUES (2, 'reuse', 2)")
	if !errors.Is(err, mvcc.ErrWriteConflict) {
		t.Fatalf("insert over uncommitted delete: want ErrWriteConflict, got %v", err)
	}
	sessExec(t, s2, "ROLLBACK")
	sessExec(t, s1, "ROLLBACK")

	// Case 3: committed data holds k=3 — a genuine unique violation.
	// The statement fails and rolls back, but the transaction survives.
	sessExec(t, s2, "BEGIN")
	_, err = s2.Exec("INSERT INTO acct VALUES (3, 'dup', 2)")
	if err == nil || errors.Is(err, mvcc.ErrWriteConflict) {
		t.Fatalf("insert of committed dup key: want a unique violation, got %v", err)
	}
	if !strings.Contains(err.Error(), "unique") {
		t.Errorf("violation error should mention uniqueness: %v", err)
	}
	// Transaction still usable.
	sessExec(t, s2, "INSERT INTO acct VALUES (60, 'ok', 2)")
	sessExec(t, s2, "COMMIT")
	if got := oneInt(t, s2, "SELECT COUNT(*) FROM acct WHERE k = 60"); got != 1 {
		t.Error("transaction did not survive the statement-level violation")
	}
}

// DDL is fenced off from open transactions, in both directions.
func TestTxnDDLGate(t *testing.T) {
	db := newTxnDB(t, Config{}, 2)
	s := db.Session()
	defer s.Close()

	sessExec(t, s, "BEGIN")
	// DDL inside the transaction is rejected by the session.
	if _, err := s.Exec("CREATE TABLE other (x INTEGER)"); err == nil {
		t.Error("DDL inside a transaction must fail")
	}
	// Engine-level DDL while any transaction is open is rejected too.
	if _, err := db.Exec("CREATE TABLE other (x INTEGER)"); err == nil {
		t.Error("DDL with an open transaction elsewhere must fail")
	}
	sessExec(t, s, "COMMIT")
	mustExec(t, db, "CREATE TABLE other (x INTEGER)") // now fine
}

// Transaction-control statements need a Session; the autocommit DB
// surface rejects them rather than silently ignoring them.
func TestTxnControlRequiresSession(t *testing.T) {
	db := newTxnDB(t, Config{}, 1)
	for _, q := range []string{"BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT sp"} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("DB.Exec(%q) must fail (needs a Session)", q)
		}
	}

	s := db.Session()
	defer s.Close()
	if _, err := s.Exec("COMMIT"); !errors.Is(err, ErrNoTxn) {
		t.Errorf("COMMIT outside txn: want ErrNoTxn, got %v", err)
	}
	if _, err := s.Exec("ROLLBACK"); !errors.Is(err, ErrNoTxn) {
		t.Errorf("ROLLBACK outside txn: want ErrNoTxn, got %v", err)
	}
	if _, err := s.Exec("SAVEPOINT sp"); !errors.Is(err, ErrNoTxn) {
		t.Errorf("SAVEPOINT outside txn: want ErrNoTxn, got %v", err)
	}
	sessExec(t, s, "BEGIN")
	if _, err := s.Exec("BEGIN"); !errors.Is(err, ErrTxnOpen) {
		t.Errorf("nested BEGIN: want ErrTxnOpen, got %v", err)
	}
	sessExec(t, s, "ROLLBACK")
}

// Closing a session with an open transaction rolls it back.
func TestTxnSessionCloseRollsBack(t *testing.T) {
	db := newTxnDB(t, Config{}, 2)
	s := db.Session()
	sessExec(t, s, "BEGIN")
	sessExec(t, s, "UPDATE acct SET bal = 0 WHERE k = 0")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rows := mustQuery(t, db, "SELECT bal FROM acct WHERE k = 0")
	if rows.Data[0][0].Int != 100 {
		t.Errorf("bal(0) = %d after Close, want 100 (rolled back)", rows.Data[0][0].Int)
	}
}

// A read-only transaction never writes the WAL and commits cleanly.
func TestTxnReadOnly(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	s := db.Session()
	defer s.Close()
	sessExec(t, s, "BEGIN")
	if got := oneInt(t, s, "SELECT COUNT(*) FROM acct"); got != 4 {
		t.Errorf("COUNT = %d, want 4", got)
	}
	res, err := s.Exec("COMMIT")
	if err != nil {
		t.Fatalf("read-only COMMIT: %v", err)
	}
	if res.StmtID != 0 {
		t.Errorf("read-only commit has WAL identity %d, want 0 (no scope begun)", res.StmtID)
	}
}

// Autocommit writers interoperate with open snapshots: their writes go
// through ephemeral transactions (versioned) so open snapshots are not
// corrupted, and they are immediately durable and visible to new reads.
func TestTxnAutocommitInterop(t *testing.T) {
	db := newTxnDB(t, Config{}, 4)
	r := db.Session()
	defer r.Close()

	sessExec(t, r, "BEGIN")
	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 1"); got != 100 {
		t.Fatal("setup")
	}
	// Autocommit write while the snapshot is open.
	mustExec(t, db, "UPDATE acct SET bal = 77 WHERE k = 1")
	// The snapshot still sees the old value; the world sees the new one.
	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 1"); got != 100 {
		t.Errorf("snapshot read after autocommit write: %d, want 100", got)
	}
	rows := mustQuery(t, db, "SELECT bal FROM acct WHERE k = 1")
	if rows.Data[0][0].Int != 77 {
		t.Errorf("autocommit read: %d, want 77", rows.Data[0][0].Int)
	}
	// The open snapshot now conflicts if it writes the same row.
	_, err := r.Exec("UPDATE acct SET bal = 1 WHERE k = 1")
	if !errors.Is(err, mvcc.ErrWriteConflict) {
		t.Errorf("snapshot writing over autocommit write: want ErrWriteConflict, got %v", err)
	}
	sessExec(t, r, "ROLLBACK")
}

// Prepared statements execute inside the session's transaction when run
// through Session.ExecStmt.
func TestTxnPreparedThroughSession(t *testing.T) {
	db := newTxnDB(t, Config{}, 2)
	st, err := db.Prepare("UPDATE acct SET bal = ? WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	// Prepared DML on the DB handle autocommits even while another
	// session holds a snapshot. The snapshot is pinned lazily at the
	// session's first statement, so read something before the prepared
	// write lands.
	r := db.Session()
	defer r.Close()
	sessExec(t, r, "BEGIN")
	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 1"); got != 100 {
		t.Fatalf("pinning read: bal(1)=%d, want 100", got)
	}
	if _, err := st.Exec(types.NewInt(5), types.NewInt(0)); err != nil {
		t.Fatalf("prepared autocommit exec: %v", err)
	}
	if got := oneInt(t, r, "SELECT bal FROM acct WHERE k = 0"); got != 100 {
		t.Errorf("snapshot sees prepared write: bal=%d, want 100", got)
	}
	sessExec(t, r, "ROLLBACK")
	rows := mustQuery(t, db, "SELECT bal FROM acct WHERE k = 0")
	if rows.Data[0][0].Int != 5 {
		t.Errorf("prepared write lost: bal=%d, want 5", rows.Data[0][0].Int)
	}
	// Transaction control cannot be prepared.
	if _, err := db.Prepare("BEGIN"); err == nil {
		t.Error("Prepare(BEGIN) must fail")
	}
}

func atomTable2(t *testing.T, db *DB) *catalog.Table {
	t.Helper()
	tab, err := db.Catalog().Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// --- rollback accounting under undo failure (the satellite regression) -------

// TestStmtRollbackFailureAccounting sweeps a double-fault over a
// multi-row statement: logical page access k fails (failing the
// statement), and access k+1 — the first page the undo replay touches —
// fails too. Such a statement must land in StmtRollbackFailures, not
// StmtRollbacks, carry a RollbackFailedError with an exact failed-step
// count, and still have attempted every remaining undo step.
func TestStmtRollbackFailureAccounting(t *testing.T) {
	const maxK = 400
	sawFailure := false
	for k := int64(1); k <= maxK; k++ {
		db := newTxnDB(t, Config{PageSize: 512, MemoryBytes: 1 << 20}, 30)
		before := db.Stats()

		var n atomic.Int64
		db.BufferPool().SetFetchFault(func(_ storage.PageID, _ storage.Category) error {
			c := n.Add(1)
			if c == k || c == k+1 {
				return storage.ErrInjectedFault
			}
			return nil
		})
		_, execErr := db.Exec("UPDATE acct SET k = k + 1 WHERE k >= 5")
		db.BufferPool().SetFetchFault(nil)

		if execErr == nil {
			break // statement outran the fault: every access point swept
		}
		if !errors.Is(execErr, storage.ErrInjectedFault) {
			t.Fatalf("fault %d: unexpected error %v", k, execErr)
		}
		st := db.Stats()
		var rf *exec.RollbackFailedError
		if errors.As(execErr, &rf) {
			sawFailure = true
			if rf.Failed < 1 {
				t.Fatalf("fault %d: RollbackFailedError.Failed = %d, want >= 1", k, rf.Failed)
			}
			if d := st.StmtRollbackFailures - before.StmtRollbackFailures; d != 1 {
				t.Fatalf("fault %d: StmtRollbackFailures delta = %d, want 1", k, d)
			}
			if d := st.StmtRollbacks - before.StmtRollbacks; d != 0 {
				t.Fatalf("fault %d: StmtRollbacks delta = %d, want 0 (failed rollback is not clean)", k, d)
			}
		} else {
			// The second fault landed before any undo step (or there was
			// nothing to undo): a clean statement rollback.
			if d := st.StmtRollbacks - before.StmtRollbacks; d != 1 {
				t.Fatalf("fault %d: StmtRollbacks delta = %d, want 1", k, d)
			}
			if d := st.StmtRollbackFailures - before.StmtRollbackFailures; d != 0 {
				t.Fatalf("fault %d: StmtRollbackFailures delta = %d, want 0", k, d)
			}
		}
	}
	if !sawFailure {
		t.Fatal("sweep never produced a failed undo step; the regression is untested")
	}
}

// TestStmtRollbackFailureAllStepsAttempted proves RollbackTo does not
// stop at the first failed undo action: with every page access failing
// from the trigger point on, the failed count equals the number of
// logged undo steps still pending, not 1.
func TestStmtRollbackFailureAllStepsAttempted(t *testing.T) {
	db := newTxnDB(t, Config{PageSize: 512, MemoryBytes: 1 << 20}, 30)

	// Let the statement make real progress (several rows updated, each
	// logging heap + index undo steps), then fail every access.
	const allow = 120
	var n atomic.Int64
	db.BufferPool().SetFetchFault(func(_ storage.PageID, _ storage.Category) error {
		if n.Add(1) > allow {
			return storage.ErrInjectedFault
		}
		return nil
	})
	_, execErr := db.Exec("UPDATE acct SET k = k + 1 WHERE k >= 5")
	db.BufferPool().SetFetchFault(nil)

	if execErr == nil {
		t.Skip("statement completed within the access allowance; nothing to fail")
	}
	var rf *exec.RollbackFailedError
	if !errors.As(execErr, &rf) {
		// All progress happened before access #allow ran out mid-gather:
		// nothing was logged, so the rollback was trivially clean.
		t.Skipf("no undo steps pending at the failure point: %v", execErr)
	}
	if rf.Failed < 2 {
		t.Errorf("Failed = %d, want >= 2 (every pending undo step attempted and counted)", rf.Failed)
	}
	if rf.Table != "acct" {
		t.Errorf("Table = %q, want acct", rf.Table)
	}
	if !errors.Is(execErr, storage.ErrInjectedFault) {
		t.Errorf("cause not preserved through RollbackFailedError: %v", execErr)
	}
	if db.Stats().StmtRollbackFailures != 1 {
		t.Errorf("StmtRollbackFailures = %d, want 1", db.Stats().StmtRollbackFailures)
	}
}
