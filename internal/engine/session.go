package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/mvcc"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/wal"
)

// Session errors.
var (
	// ErrNoTxn: COMMIT/ROLLBACK/SAVEPOINT outside a transaction.
	ErrNoTxn = errors.New("engine: no transaction is open")
	// ErrTxnOpen: BEGIN inside a transaction (nesting is not supported).
	ErrTxnOpen = errors.New("engine: a transaction is already open")
	// ErrTxnAborted: the transaction hit a write-write conflict and was
	// rolled back; only COMMIT (which fails) or ROLLBACK clear the state.
	ErrTxnAborted = errors.New("engine: transaction aborted by write-write conflict; issue ROLLBACK")
	// ErrNoSavepoint: ROLLBACK TO an unknown savepoint name.
	ErrNoSavepoint = errors.New("engine: no such savepoint")
	// ErrSessionClosed: a statement arrived after Close. The server's
	// disconnect path closes sessions whose connection died; a worker
	// goroutine still holding the handle gets this instead of silently
	// writing into a rolled-back transaction.
	ErrSessionClosed = errors.New("engine: session is closed")
)

// Session is a connection-like handle offering interactive
// multi-statement transactions over a DB: BEGIN starts a snapshot,
// statements inside it read that snapshot (snapshot isolation) and
// write under first-updater-wins conflict detection, COMMIT makes the
// whole group durable atomically, ROLLBACK (or a conflict) undoes it
// entirely, and SAVEPOINT/ROLLBACK TO give partial undo inside the
// group. Outside a transaction a Session behaves exactly like DB.Exec
// / DB.Query (statement autocommit).
//
// A Session is a single logical connection: open one Session per
// worker and run its statements from one goroutine at a time.
// Statements and Close are internally serialized, so Close MAY be
// called from another goroutine — even while a statement is in flight —
// and waits for the statement, then rolls back any open transaction,
// releases held write-admission tokens, and unpins the snapshot. That
// is the network server's abrupt-disconnect path: the connection
// goroutine dies, and whoever reaps the session gets a full cleanup no
// matter what was mid-flight. Different Sessions of the same DB are
// safe to use concurrently.
type Session struct {
	db *DB

	// mu serializes statements with each other and with Close; closed
	// fails all further statements with ErrSessionClosed.
	mu     sync.Mutex
	closed bool

	tx      *mvcc.Txn        // nil outside a transaction
	scope   *wal.Scope       // lazily begun at the first write/savepoint
	undo    *catalog.UndoLog // one shared log; statements/savepoints are marks
	saves   []savepoint
	written map[string]string // lowercased -> original table name
	aborted bool              // conflict rolled the transaction back

	// gates records the write-admission gates this transaction passed,
	// by lowercased table name: a non-nil value is a held token to
	// release at transaction end, nil marks a forced admission (tried,
	// not held — never re-queued this transaction).
	gates map[string]*writeGate
}

type savepoint struct {
	name string // lowercased
	mark int
}

// Session opens a new session on the database.
func (db *DB) Session() *Session {
	return &Session{db: db}
}

// InTxn reports whether a transaction is open (including the aborted
// state after a conflict, which still needs its ROLLBACK).
func (s *Session) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx != nil || s.aborted
}

// Closed reports whether Close has run.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close rolls back any open transaction and releases the session.
// Safe to call concurrently with an in-flight statement (it waits for
// the statement, then cleans up) and idempotent: the first call wins,
// later ones return nil. After Close every statement fails with
// ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.aborted {
		// The conflict already rolled everything back; just clear the
		// protocol state.
		s.aborted = false
		return nil
	}
	if s.tx == nil {
		return nil
	}
	_, err := s.rollback()
	return err
}

// Exec runs any statement in this session, including transaction
// control (BEGIN/COMMIT/ROLLBACK/SAVEPOINT). SELECT results are
// drained and counted, not materialized — use Query for rows.
func (s *Session) Exec(query string, params ...types.Value) (Result, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return Result{}, err
	}
	return s.ExecStmt(st, query, params...)
}

// ExecStmt is Exec for a pre-parsed statement; key is the plan-cache
// key ("" to derive it from the statement).
func (s *Session) ExecStmt(st sql.Statement, key string, params ...types.Value) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Result{}, ErrSessionClosed
	}
	return s.execStmtLocked(st, key, params...)
}

func (s *Session) execStmtLocked(st sql.Statement, key string, params ...types.Value) (Result, error) {
	switch st := st.(type) {
	case *sql.BeginStmt:
		return s.begin()
	case *sql.CommitStmt:
		return s.commit()
	case *sql.RollbackStmt:
		if st.To != "" {
			return s.rollbackTo(st.To)
		}
		return s.rollback()
	case *sql.SavepointStmt:
		return s.savepoint(st.Name)
	}
	if s.aborted {
		return Result{}, ErrTxnAborted
	}
	if s.tx == nil {
		// Statement autocommit: exactly the DB paths.
		return s.db.execStmtKeyed(st, key, params)
	}
	switch st := st.(type) {
	case *sql.SelectStmt:
		_, err := s.drainSelect(st, key, params)
		return Result{}, err
	case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
		return s.dml(st, key, params)
	default:
		return Result{}, fmt.Errorf("engine: %T not allowed inside a transaction (DDL needs COMMIT first)", st)
	}
}

// Query runs a SELECT in this session; inside a transaction it reads
// the transaction's snapshot.
func (s *Session) Query(query string, params ...types.Value) (*Rows, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: Query needs a SELECT, got %T", st)
	}
	return s.QueryStmt(sel, query, params...)
}

// QueryStmt is Query for a pre-parsed SELECT; key is the plan-cache
// key ("" to derive it from the statement).
func (s *Session) QueryStmt(sel *sql.SelectStmt, key string, params ...types.Value) (*Rows, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.aborted {
		return nil, ErrTxnAborted
	}
	if s.tx == nil {
		return s.db.queryStmtKeyed(sel, key, params)
	}
	return s.querySelect(sel, key, params)
}

// --- transaction control -----------------------------------------------------

func (s *Session) begin() (Result, error) {
	if s.aborted {
		return Result{}, ErrTxnAborted
	}
	if s.tx != nil {
		return Result{}, ErrTxnOpen
	}
	db := s.db
	// Register under the DDL lock (shared): execDDL's open-transaction
	// gate checks the registry under the exclusive side, so a BEGIN
	// either completes before the DDL looks, or waits until it is done.
	db.ddlMu.RLock()
	s.tx = db.txns.BeginLazy()
	db.ddlMu.RUnlock()
	db.txnBegins.Add(1)
	s.undo = &catalog.UndoLog{}
	s.written = make(map[string]string)
	s.saves = nil
	return Result{}, nil
}

func (s *Session) commit() (Result, error) {
	if s.aborted {
		// The transaction is already gone; COMMIT clears the state but
		// reports that nothing was committed.
		s.aborted = false
		return Result{}, ErrTxnAborted
	}
	if s.tx == nil {
		return Result{}, ErrNoTxn
	}
	db := s.db
	var res Result
	var cerr error
	if s.scope != nil {
		// Durability before visibility, pipelined: reserve the commit
		// timestamp first — a counter increment, fixing this commit's
		// order relative to every other — then run the log sync outside
		// the clock's critical section. Concurrent committers reserve
		// their own timestamps and append behind us while our sync is in
		// flight, and one shared group-commit fsync publishes the whole
		// batch in reservation order. The writes stay invisible (the
		// reserved timestamp is unpublished) until MarkDurable below.
		res.StmtID = s.scope.ID()
		db.txns.ReserveCommit(s.tx)
		cerr = s.scope.Commit()
	}
	if cerr != nil {
		// Withdraw the reservation before undoing: waiters must go back
		// to treating this transaction as an aborting holder, and the
		// pipeline behind it must not stall on our dead slot.
		db.txns.ResolveAbort(s.tx)
		// The commit record is not durable, so the writes must not be
		// published: stamping a commit timestamp would show them as
		// committed to every later snapshot while the client holds a
		// commit error — and a crash would then silently discard them.
		// The undo log is still intact at this point: roll the whole
		// transaction back and abort its snapshot, so memory matches
		// what recovery would rebuild. (One ambiguity remains: a torn
		// sync can land the commit record durably even though Commit
		// reported failure; recovery then resurrects the transaction.
		// The error therefore means "not committed here", with the
		// durable log the final authority after a crash.)
		rbErr := s.undoLocked(0)
		s.scope.Abort() // best effort; a no-op once the log is down
		s.tx.Abort()
		db.txnAborts.Add(1)
		s.reset()
		if rbErr != nil {
			return res, fmt.Errorf("%w; rollback after failed commit also failed: %v", cerr, rbErr)
		}
		return res, fmt.Errorf("%w (transaction rolled back, nothing committed)", cerr)
	}
	if s.scope != nil {
		// The commit record is durable; publish the timestamp (in
		// reservation order — this may briefly wait for an earlier
		// reservation whose sync is still in flight).
		db.txns.MarkDurable(s.tx)
	} else {
		// Read-only or WAL-less transaction: nothing was synced, commit
		// synchronously.
		s.tx.Commit()
	}
	s.reset()
	db.txnCommits.Add(1)
	db.maybeCheckpoint()
	return res, nil
}

func (s *Session) rollback() (Result, error) {
	if s.aborted {
		s.aborted = false
		return Result{}, nil
	}
	if s.tx == nil {
		return Result{}, ErrNoTxn
	}
	err := s.rollbackAll()
	s.db.txnAborts.Add(1)
	s.reset()
	if err == nil {
		s.db.maybeCheckpoint()
	}
	return Result{}, err
}

func (s *Session) savepoint(name string) (Result, error) {
	if s.db.readOnly.Load() {
		// A savepoint would open a WAL scope, and a replica's log only
		// ever mirrors the primary's stream — it never self-appends.
		return Result{}, ErrReadOnlyReplica
	}
	if s.aborted {
		return Result{}, ErrTxnAborted
	}
	if s.tx == nil {
		return Result{}, ErrNoTxn
	}
	if err := s.ensureScope(); err != nil {
		return Result{}, err
	}
	if s.scope != nil {
		if err := s.scope.Savepoint(name); err != nil {
			return Result{}, err
		}
	}
	s.saves = append(s.saves, savepoint{name: strings.ToLower(name), mark: s.undo.Mark()})
	return Result{}, nil
}

func (s *Session) rollbackTo(name string) (Result, error) {
	if s.aborted {
		return Result{}, ErrTxnAborted
	}
	if s.tx == nil {
		return Result{}, ErrNoTxn
	}
	want := strings.ToLower(name)
	found := -1
	for i := len(s.saves) - 1; i >= 0; i-- {
		if s.saves[i].name == want {
			found = i
			break
		}
	}
	if found < 0 {
		return Result{}, fmt.Errorf("%w: %s", ErrNoSavepoint, name)
	}
	sp := s.saves[found]
	// Savepoints established after the named one are destroyed; the
	// named one survives and can be rolled back to again.
	s.saves = s.saves[:found+1]
	err := s.undoLocked(sp.mark)
	return Result{}, err
}

// --- statement execution inside a transaction --------------------------------

// dml runs one DML statement under the transaction; a write-write
// conflict aborts and rolls back the whole transaction (first-updater
// wins — this session was second).
func (s *Session) dml(st sql.Statement, key string, params []types.Value) (Result, error) {
	if s.db.readOnly.Load() {
		return Result{}, ErrReadOnlyReplica
	}
	res, err := s.dmlLocked(st, key, params)
	if err != nil && errors.Is(err, mvcc.ErrWriteConflict) {
		db := s.db
		db.txnConflicts.Add(1)
		rbErr := s.rollbackAll()
		db.txnAborts.Add(1)
		s.reset()
		s.aborted = true
		if rbErr != nil {
			return res, fmt.Errorf("%w (rollback after conflict: %v)", err, rbErr)
		}
		return res, fmt.Errorf("%w (transaction rolled back)", err)
	}
	return res, err
}

// dmlLocked runs one DML statement in three phases so sessions on the
// same table block each other only for the physical apply, never for
// the gather or the conflict wait:
//
//  1. Gather under SHARED latches on every table the statement touches
//     (including the write target): plan, evaluate expressions, and
//     collect the snapshot-visible match set without mutating anything.
//  2. Bounded wait-then-abort on the write set, holding NO table
//     latch: park until conflicting holders resolve or the deadline
//     expires.
//  3. Apply under the write table's EXCLUSIVE latch: the mutators'
//     first-updater-wins checks re-run here, catching any holder that
//     slipped in after phase 2; a failed apply replays the statement's
//     undo suffix before the latch drops.
//
// Two scheduling steps precede the phases. First, the transaction's
// FIRST write to a table passes the table's soft admission gate
// (bounded park for the token, forced admission on timeout) so
// contending writers queue whole transactions instead of interleaving
// statements. Second, the transaction's snapshot is pinned (lazily, at
// its first observation — see mvcc.Manager.Pin): a transaction that
// just waited its turn at the gate thereby starts from a snapshot that
// includes the previous holder's commit instead of conflicting with it.
//
// Deadlock freedom: phase 1 acquires only shared latches in the global
// sorted order; phase 3 holds exactly one exclusive latch and acquires
// nothing else while holding it; the phase-2 wait holds no latch and
// is bounded. The bound also breaks the one cross-lock cycle left: a
// waiter holds ddlMu shared, a pending checkpoint (ddlMu exclusive)
// queues behind it and can block the holder's rollback relock — the
// timeout unwinds the waiter and the system drains.
func (s *Session) dmlLocked(st sql.Statement, key string, params []types.Value) (Result, error) {
	db := s.db
	write, reads, err := dmlLockSets(st)
	if err != nil {
		return Result{}, err
	}
	// Admission before ddlMu so a parked waiter never delays DDL, and
	// before the pin so the snapshot postdates the previous holder.
	s.admitWrite(write)
	db.txns.Pin(s.tx)
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()

	// Phase 1: gather. The write target is latched shared like the
	// reads — nothing is mutated yet.
	unlock, err := db.lockTablesMulti(append(append([]string(nil), reads...), write), nil)
	if err != nil {
		return Result{}, err
	}
	p, err := db.planForTx(key, st, s.tx)
	if err != nil {
		unlock()
		return Result{}, err
	}
	pd, err := exec.PrepareDML(p, params, &db.execStats, s.tx)
	unlock()
	if err != nil {
		// Nothing was applied; the failed statement still counts as a
		// (trivially clean) statement rollback, as it always has.
		db.noteRollback(err)
		return Result{}, err
	}

	// Phase 2: clear the write set, parking on holders that may still
	// release it (first-updater-wins with bounded wait-then-abort).
	t := pd.Table()
	if ws := pd.WriteSet(); len(ws) > 0 {
		if werr := t.Vers.WaitCheckWrites(s.tx, ws, db.conflictWait); werr != nil {
			werr = fmt.Errorf("engine: update %s: %w", t.Name, werr)
			db.noteRollback(werr)
			return Result{}, werr
		}
	}

	if err := s.ensureScope(); err != nil {
		return Result{}, err
	}
	// Record the target before applying: even a failed statement may
	// need this table relocked if the rollback of an earlier statement's
	// writes comes due, and a superset relock is harmless.
	s.written[strings.ToLower(write)] = write

	// Phase 3: apply. The exclusive latch spans the statement's whole
	// physical application — heap, indexes, WAL appends — so its log
	// records stay contiguous per table exactly as under the old
	// whole-statement write lock, and the in-latch undo replay on error
	// keeps statement atomicity without other appliers interleaving.
	t.Mu.Lock()
	if s.scope != nil {
		t.SetWAL(s.scope.HeapLogger(t.Name), s.scope.TreeLogger())
	}
	mark := s.undo.Mark()
	n, err := exec.ApplyDML(pd, s.tx, s.undo)
	if err != nil {
		if failed, rbErr := s.undo.RollbackTo(mark); rbErr != nil {
			err = &exec.RollbackFailedError{Cause: err, RB: rbErr, Table: t.Name, Failed: failed}
		}
		n = 0
	}
	if s.scope != nil {
		t.SetWAL(nil, nil)
	}
	t.Mu.Unlock()
	if err != nil {
		// The statement's own suffix of the undo log was replayed; the
		// transaction's earlier statements stand.
		db.noteRollback(err)
		return Result{RowsAffected: n}, err
	}
	res := Result{RowsAffected: n}
	if s.scope != nil {
		res.StmtID = s.scope.ID()
	}
	return res, nil
}

// admitWrite passes the transaction through table's soft admission
// gate at its first write to that table; later writes to the same
// table (held or forced) go straight through. Scheduling only — see
// writeGate.
func (s *Session) admitWrite(table string) {
	k := strings.ToLower(table)
	if _, tried := s.gates[k]; tried {
		return
	}
	db := s.db
	g := db.gateFor(k)
	held := false
	select {
	case <-g.tok:
		held = true
	default:
		if db.admissionWait > 0 {
			// Counted at park start so concurrent observers (stats
			// readers, tests) see the park while it is happening.
			db.admissionWaits.Add(1)
			start := time.Now()
			timer := time.NewTimer(db.admissionWait)
			select {
			case <-g.tok:
				held = true
			case <-timer.C:
				db.admissionTimeouts.Add(1)
			}
			timer.Stop()
			db.admissionWaitNanos.Add(time.Since(start).Nanoseconds())
		}
	}
	if s.gates == nil {
		s.gates = make(map[string]*writeGate)
	}
	if held {
		s.gates[k] = g
	} else {
		s.gates[k] = nil
	}
}

func (s *Session) querySelect(sel *sql.SelectStmt, key string, params []types.Value) (*Rows, error) {
	db := s.db
	db.txns.Pin(s.tx)
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	unlock, err := db.lockTables(collectReadTables(sel, nil), "")
	if err != nil {
		return nil, err
	}
	defer unlock()
	p, err := db.planForTx(key, sel, s.tx)
	if err != nil {
		return nil, err
	}
	data, err := exec.CollectTx(p, params, &db.execStats, s.tx)
	if err != nil {
		return nil, err
	}
	return rowsFor(p, data), nil
}

func (s *Session) drainSelect(sel *sql.SelectStmt, key string, params []types.Value) (int64, error) {
	db := s.db
	db.txns.Pin(s.tx)
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	unlock, err := db.lockTables(collectReadTables(sel, nil), "")
	if err != nil {
		return 0, err
	}
	defer unlock()
	p, err := db.planForTx(key, sel, s.tx)
	if err != nil {
		return 0, err
	}
	return exec.DrainTx(p, params, &db.execStats, s.tx)
}

// --- internals ----------------------------------------------------------------

// ensureScope lazily begins the transaction's WAL scope at its first
// write (or savepoint), so read-only transactions never touch the log.
func (s *Session) ensureScope() error {
	if s.db.log == nil || s.scope != nil {
		return nil
	}
	scope, err := s.db.log.Begin()
	if err != nil {
		return err
	}
	s.scope = scope
	return nil
}

// undoLocked relocks every table the transaction wrote (in the global
// lock order), reinstalls the WAL loggers so compensations are logged
// under this transaction, and replays the undo log back to mark.
func (s *Session) undoLocked(mark int) error {
	db := s.db
	var writes []string
	for _, name := range s.written {
		writes = append(writes, name)
	}
	sort.Strings(writes)
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	unlock, err := db.lockTablesMulti(nil, writes)
	if err != nil {
		return err
	}
	defer unlock()
	if s.scope != nil && !db.log.Crashed() {
		// On a live log every compensation is logged under the
		// transaction so recovery replays the rollback too. Once the log
		// is down, appends would fail each undo step; the physical undo
		// then runs unlogged — the durable log holds no terminator, so
		// recovery discards the transaction wholesale, matching the
		// undone in-memory state.
		for _, name := range writes {
			t, terr := db.cat.Table(name)
			if terr != nil {
				return terr
			}
			t.SetWAL(s.scope.HeapLogger(t.Name), s.scope.TreeLogger())
			defer t.SetWAL(nil, nil)
		}
	}
	failed, rbErr := s.undo.RollbackTo(mark)
	if rbErr != nil {
		return fmt.Errorf("engine: transaction rollback: %d undo step(s) failed: %w", failed, rbErr)
	}
	return nil
}

// rollbackAll undoes every write of the transaction, appends the abort
// record (after the compensations, so recovery replays them inside the
// terminated transaction), and releases the snapshot.
func (s *Session) rollbackAll() error {
	rbErr := s.undoLocked(0)
	if s.scope != nil {
		s.scope.Abort()
	}
	s.tx.Abort()
	return rbErr
}

// reset clears the per-transaction state. Held admission tokens are
// released HERE — after the commit published or the rollback finished —
// so the next admitted transaction's pinned snapshot sees this one's
// outcome.
func (s *Session) reset() {
	for _, g := range s.gates {
		if g != nil {
			g.release()
		}
	}
	s.gates = nil
	s.tx = nil
	s.scope = nil
	s.undo = nil
	s.saves = nil
	s.written = nil
	s.aborted = false
	// A transaction ending may have advanced the GC horizon past the
	// snapshot that blocked a schema-chain prune; wake parked backfills
	// (a cheap no-op when none are parked).
	s.db.NudgeBackfill()
}
