package engine

import (
	"container/list"
	"sync"

	"repro/internal/plan"
)

// planCache gives ad-hoc statements prepared-statement speed: an LRU
// of compiled plans keyed by (statement text, catalog version). The
// catalog version in the key makes DDL invalidation implicit — a
// schema change bumps the version, so every subsequent lookup misses
// and replans against the new schema while stale entries age out
// (execDDL also purges eagerly to release memory).
//
// Planning for a given key happens at most once even under concurrent
// callers (the in-flight table): besides avoiding duplicate work, this
// is a correctness requirement, because the optimizer's subquery
// flattening rewrites the statement AST in place, so two goroutines
// must never plan the same AST object concurrently.
//
// Plans that carry per-execution state (IN-subquery materialization)
// are detected at insert time and cloned per execution; stateless
// plans are shared read-only (their lazily cached schemas are warmed
// before publication).
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = LRU victim, back = most recent
	entries map[planKey]*list.Element
	flight  map[planKey]*planFlight

	hits, misses int64
}

type planKey struct {
	text    string
	version int64
}

type planEntry struct {
	key      planKey
	node     plan.Node
	stateful bool
}

// planFlight is a single-flight slot: the first goroutine to miss on a
// key builds the plan; later ones wait on done and reuse the result.
type planFlight struct {
	done     chan struct{}
	node     plan.Node
	stateful bool
	err      error
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[planKey]*list.Element),
		flight:  make(map[planKey]*planFlight),
	}
}

// get returns an executable plan for key, building it via build on a
// miss. The returned node is private to the caller when the plan is
// stateful, shared otherwise.
func (c *planCache) get(key planKey, build func() (plan.Node, error)) (plan.Node, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToBack(e)
		ent := e.Value.(*planEntry)
		c.hits++
		c.mu.Unlock()
		return forExec(ent.node, ent.stateful), nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		return forExec(f.node, f.stateful), nil
	}
	f := &planFlight{done: make(chan struct{})}
	c.flight[key] = f
	c.misses++
	c.mu.Unlock()

	n, err := build()
	if err == nil {
		plan.WarmSchemas(n)
		f.node, f.stateful = n, plan.HasExecState(n)
	}
	f.err = err

	c.mu.Lock()
	delete(c.flight, key)
	if err == nil {
		ent := &planEntry{key: key, node: n, stateful: f.stateful}
		c.entries[key] = c.lru.PushBack(ent)
		for len(c.entries) > c.cap {
			victim := c.lru.Front()
			c.lru.Remove(victim)
			delete(c.entries, victim.Value.(*planEntry).key)
		}
	}
	c.mu.Unlock()
	close(f.done)

	if err != nil {
		return nil, err
	}
	return forExec(n, f.stateful), nil
}

func forExec(n plan.Node, stateful bool) plan.Node {
	if stateful {
		return plan.CloneForExec(n)
	}
	return n
}

// purge drops every cached entry (called on DDL; version-keyed lookups
// would miss anyway, this just frees the memory promptly). In-flight
// builds finish and insert under their old version, then age out.
func (c *planCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[planKey]*list.Element)
}

// counters reports cache hits and misses (tests and diagnostics).
func (c *planCache) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
