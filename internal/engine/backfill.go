package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/schemaver"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// backfiller migrates cold rows to the newest schema encoding in the
// background so an online ALTER's debt does not live forever. Foreground
// DML already upgrades every row it rewrites (lazy migration); the
// backfiller walks the rest of the heap in one-page batches, each batch
// its own WAL'd micro-transaction taken and released under the same
// latch order as any statement (ddlMu shared, then the table's write
// latch), so it yields to foreground traffic at page granularity and a
// crash mid-backfill loses at most one uncommitted batch.
//
// Two row repairs are version-sensitive and run only once the schema
// chain has pruned to a single version (no live snapshot can read the
// old shape anymore): nulling out a Dropped slot's retained bytes and
// coercing a widened column's stored INTs to FLOAT. Arity padding (ADD
// COLUMN) is safe at any time — decode already pads, the rewrite just
// materializes it. Rows with a live MVCC version chain are skipped and
// retried on a later pass (rewriting under a chain would fight the
// version store for the slot).
type backfiller struct {
	db *DB

	mu      sync.Mutex
	pending []string          // queued tables, FIFO, deduped
	queued  map[string]bool   // lowercased name -> in pending
	parked  map[string]string // blocked tables awaiting a nudge
	running bool

	tracker *schemaver.Tracker
}

// backfillBatchRows caps how many live records one batch (one page
// visit) rewrites before releasing its latches. Pages hold fewer rows
// than this in practice; the cap only matters for tiny records.
const backfillBatchRows = 512

// backfill returns the lazily created worker state.
func (db *DB) backfill() *backfiller {
	db.backfillOnce.Do(func() {
		db.backfillState = &backfiller{
			db:      db,
			queued:  make(map[string]bool),
			parked:  make(map[string]string),
			tracker: schemaver.NewTracker(),
		}
	})
	return db.backfillState
}

// BackfillStatus snapshots per-table backfill progress. Tables never
// touched by an online ALTER are absent.
func (db *DB) BackfillStatus() []schemaver.Progress {
	return db.backfill().tracker.Snapshot()
}

// NudgeBackfill re-queues parked backfills. Session ends call it (the
// GC horizon may have advanced past the snapshot that blocked a prune);
// status probes call it so a "stuck" verdict is never one nudge stale.
func (db *DB) NudgeBackfill() { db.backfill().nudge() }

// WaitBackfill blocks until every queued backfill reports done, or the
// timeout expires. Intended for tests, benchmarks, and mtdsql's
// .migrate-status; foreground traffic never needs it.
func (db *DB) WaitBackfill(timeout time.Duration) error {
	b := db.backfill()
	deadline := time.Now().Add(timeout)
	for {
		b.nudge()
		if n := b.tracker.Pending(); n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: backfill incomplete after %v: %d table(s) pending", timeout, b.tracker.Pending())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// enqueue queues a table for backfill and ensures the worker runs.
func (b *backfiller) enqueue(table string) {
	k := strings.ToLower(table)
	b.mu.Lock()
	b.tracker.Begin(table)
	delete(b.parked, k)
	if !b.queued[k] {
		b.queued[k] = true
		b.pending = append(b.pending, table)
	}
	start := !b.running
	if start {
		b.running = true
	}
	b.mu.Unlock()
	if start {
		go b.run()
	}
}

// nudge re-queues every parked table. Cheap when nothing is parked.
func (b *backfiller) nudge() {
	b.mu.Lock()
	if len(b.parked) == 0 {
		b.mu.Unlock()
		return
	}
	for k, name := range b.parked {
		if !b.queued[k] {
			b.queued[k] = true
			b.pending = append(b.pending, name)
		}
		delete(b.parked, k)
	}
	start := !b.running
	if start {
		b.running = true
	}
	b.mu.Unlock()
	if start {
		go b.run()
	}
}

// run drains the queue and exits; enqueue/nudge restart it. The
// drain-and-exit shape means there is no long-lived goroutine to shut
// down: an idle database has no backfill worker at all.
func (b *backfiller) run() {
	for {
		b.mu.Lock()
		if len(b.pending) == 0 {
			b.running = false
			b.mu.Unlock()
			return
		}
		name := b.pending[0]
		b.pending = b.pending[1:]
		delete(b.queued, strings.ToLower(name))
		b.mu.Unlock()

		done, progressed, err := b.pass(name)
		switch {
		case err != nil:
			// Log down (crash) or table dropped: abandon the table. A
			// recovery rebuilds a fresh DB whose chains are collapsed.
			b.tracker.Update(name, func(p *schemaver.Progress) { p.Done = true })
		case done:
			b.tracker.Update(name, func(p *schemaver.Progress) {
				p.Done = true
				p.IdlePasses = 0
			})
		default:
			// Blocked on live snapshots or chained rows: park until a
			// transaction ends and nudges us, instead of spinning.
			b.tracker.Update(name, func(p *schemaver.Progress) {
				if !progressed {
					p.IdlePasses++
				} else {
					p.IdlePasses = 0
				}
			})
			b.mu.Lock()
			k := strings.ToLower(name)
			if !b.queued[k] {
				b.parked[k] = name
			}
			b.mu.Unlock()
		}
		b.db.maybeCheckpoint()
	}
}

// pass walks the whole table once in one-page batches. It reports
// whether the table is fully migrated (no stale encodings remain and
// the schema chain has collapsed to one version) and whether the pass
// rewrote anything (for idle-pass accounting).
func (b *backfiller) pass(name string) (done bool, progressed bool, err error) {
	db := b.db
	var (
		sc        *storage.HeapScanner
		remaining int64 // stale rows this pass could not repair yet
		rewrote   int64
		single    bool
	)
	b.tracker.Update(name, func(p *schemaver.Progress) { p.Passes++ })
	for {
		db.ddlMu.RLock()
		t, terr := db.cat.Table(name)
		if terr != nil {
			db.ddlMu.RUnlock()
			return false, rewrote > 0, terr // dropped underneath us
		}
		t.Mu.Lock()
		if sc == nil {
			// Pages appended after this snapshot hold only freshly encoded
			// rows, so scanning the snapshot list is a complete pass.
			sc = t.Heap.Scanner()
		}
		// Repairs that erase old-version state wait for the chain to
		// collapse: once no snapshot's beginTS can reach an older version,
		// the old shape is unobservable and its bytes are garbage.
		t.Schemas.Prune(db.txns.Horizon())
		single = t.Schemas.Len() == 1

		rids, recs, ok, serr := sc.NextPage()
		var wrote int64
		if serr == nil && ok {
			wrote, remaining, serr = b.migratePage(t, rids, recs, single, remaining)
			rewrote += wrote
		}
		t.Mu.Unlock()
		db.ddlMu.RUnlock()
		if serr != nil {
			return false, rewrote > 0, serr
		}
		if !ok {
			break
		}
		b.tracker.Update(name, func(p *schemaver.Progress) {
			p.Batches++
			p.Scanned += int64(len(rids))
			p.Rewritten += wrote
		})
		// Yield between batches so foreground statements contending for
		// the same latch get scheduled.
		runtime.Gosched()
	}
	return remaining == 0 && single, rewrote > 0, nil
}

// migratePage repairs one page's records in place. Called under the
// table's write latch; record slices are arena copies, so rewriting the
// page under them is safe. The WAL scope is opened lazily on the first
// actual rewrite: a batch that finds nothing to repair — the common
// case once a table converges — touches the log not at all, so idle
// re-passes are free and deterministic for crash-site accounting.
func (b *backfiller) migratePage(t *catalog.Table, rids []storage.RID, recs [][]byte, single bool, remaining int64) (wrote, rem int64, err error) {
	var scope *wal.Scope
	defer func() {
		if scope == nil {
			return
		}
		t.SetWAL(nil, nil)
		if err == nil && wrote > 0 {
			err = scope.Commit()
		} else {
			scope.Abort()
		}
	}()
	ensureScope := func() error {
		if b.db.log == nil || scope != nil {
			return nil
		}
		s, serr := b.db.log.Begin()
		if serr != nil {
			return serr
		}
		scope = s
		t.SetWAL(scope.HeapLogger(t.Name), scope.TreeLogger())
		return nil
	}
	cols := t.Columns
	width := len(cols)
	hasDropped, hasWiden := false, false
	for _, c := range cols {
		if c.Dropped {
			hasDropped = true
		}
		if c.Type.Kind == types.KindFloat {
			hasWiden = true
		}
	}
	rem = remaining
	n := 0
	for i, rec := range recs {
		if n >= backfillBatchRows {
			break
		}
		arity, un := binary.Uvarint(rec)
		if un <= 0 {
			return wrote, rem, fmt.Errorf("engine: backfill %s: corrupt record header at %v", t.Name, rids[i])
		}
		stale := int(arity) < width
		needsScrub := single && (hasDropped || hasWiden)
		if !stale && !needsScrub {
			continue
		}
		// Rows with a live version chain belong to the version store until
		// the chain resolves; retry them on a later pass.
		if t.Vers.Pinned(rids[i]) {
			rem++
			b.tracker.Update(t.Name, func(p *schemaver.Progress) { p.Skipped++ })
			continue
		}
		row, derr := types.DecodeRowInto(nil, rec, width)
		if derr != nil {
			return wrote, rem, fmt.Errorf("engine: backfill %s: %w", t.Name, derr)
		}
		changed := stale
		if single {
			for ci, c := range cols {
				if c.Dropped && row[ci].Kind != types.KindNull {
					row[ci] = types.Null()
					changed = true
				}
				if !c.Dropped && c.Type.Kind == types.KindFloat && row[ci].Kind == types.KindInt {
					row[ci] = types.NewFloat(float64(row[ci].Int))
					changed = true
				}
			}
		} else if !stale {
			continue
		}
		if !changed {
			continue
		}
		if err = ensureScope(); err != nil {
			return wrote, rem, err
		}
		enc := types.EncodeRow(nil, row)
		uerr := t.Heap.UpdateInPlace(rids[i], enc)
		switch {
		case errors.Is(uerr, storage.ErrPageFull):
			// The padded encoding no longer fits its page. The row stays in
			// its old (still decodable) shape; a foreground update will
			// relocate it eventually. Counted, not fatal, and not blocking
			// completion — it is readable under every surviving schema.
			b.tracker.Update(t.Name, func(p *schemaver.Progress) { p.Residual++ })
		case uerr != nil:
			return wrote, rem, uerr
		default:
			wrote++
			n++
		}
	}
	return wrote, rem, nil
}
