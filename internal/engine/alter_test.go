package engine

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/types"
)

// waitMigrated blocks until the table's backfill reports done.
func waitMigrated(t *testing.T, db *DB) {
	t.Helper()
	if err := db.WaitBackfill(5 * time.Second); err != nil {
		t.Fatalf("backfill: %v (status %+v)", err, db.BackfillStatus())
	}
}

func TestOnlineAlterAddColumn(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20))")
	mustExec(t, db, "INSERT INTO acc VALUES (1, 'a'), (2, 'b')")
	mustExec(t, db, "ALTER TABLE acc ADD COLUMN beds INTEGER")
	// Old rows read NULL for the new column; new rows carry values.
	mustExec(t, db, "INSERT INTO acc VALUES (3, 'c', 135)")
	rows := mustQuery(t, db, "SELECT id, beds FROM acc ORDER BY id")
	if len(rows.Data) != 3 {
		t.Fatalf("rows: %+v", rows.Data)
	}
	if rows.Data[0][1].Kind != types.KindNull || rows.Data[2][1].Int != 135 {
		t.Errorf("beds column: %+v", rows.Data)
	}
	// SELECT * includes the new column.
	star := mustQuery(t, db, "SELECT * FROM acc WHERE id = 3")
	if len(star.Columns) != 3 || !strings.EqualFold(star.Columns[2], "beds") {
		t.Errorf("star columns: %v", star.Columns)
	}
	waitMigrated(t, db)
}

func TestOnlineAlterDropColumn(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20), beds INTEGER)")
	mustExec(t, db, "INSERT INTO acc VALUES (1, 'a', 10)")
	mustExec(t, db, "ALTER TABLE acc DROP COLUMN beds")
	star := mustQuery(t, db, "SELECT * FROM acc")
	if len(star.Columns) != 2 {
		t.Fatalf("star after drop: %v", star.Columns)
	}
	if _, err := db.Query("SELECT beds FROM acc"); err == nil {
		t.Fatal("dropped column still resolvable")
	}
	// The name can be reused: the new column is a fresh physical slot,
	// old rows read NULL (their retained bytes belong to the dead slot).
	mustExec(t, db, "ALTER TABLE acc ADD COLUMN beds INTEGER")
	mustExec(t, db, "INSERT INTO acc VALUES (2, 'b', 42)")
	rows := mustQuery(t, db, "SELECT id, beds FROM acc ORDER BY id")
	if rows.Data[0][1].Kind != types.KindNull || rows.Data[1][1].Int != 42 {
		t.Errorf("reused name: %+v", rows.Data)
	}
	waitMigrated(t, db)
}

func TestOnlineAlterDropColumnRejectsIndexed(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20))")
	mustExec(t, db, "CREATE INDEX byname ON acc (name)")
	if _, err := db.Exec("ALTER TABLE acc DROP COLUMN name"); err == nil {
		t.Fatal("dropping an indexed column must fail")
	}
}

func TestOnlineAlterWidenColumn(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE m (id INTEGER NOT NULL, amount INTEGER)")
	mustExec(t, db, "CREATE INDEX byamt ON m (amount)")
	mustExec(t, db, "INSERT INTO m VALUES (1, 10), (2, 20)")
	mustExec(t, db, "ALTER TABLE m ALTER COLUMN amount TYPE FLOAT")
	mustExec(t, db, "INSERT INTO m VALUES (3, 10.5)")
	// Index probes must keep finding pre-widen INT rows: the ordered
	// key encoding is shared between INT and FLOAT.
	rows := mustQuery(t, db, "SELECT id FROM m WHERE amount = 10")
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 1 {
		t.Errorf("int probe after widen: %+v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM m WHERE amount = 10.5")
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 3 {
		t.Errorf("float probe: %+v", rows.Data)
	}
	if _, err := db.Exec("ALTER TABLE m ALTER COLUMN id TYPE VARCHAR(5)"); err == nil {
		t.Fatal("narrowing/incompatible retype must fail")
	}
	waitMigrated(t, db)
	// After backfill the stored INTs are coerced to FLOAT.
	rows = mustQuery(t, db, "SELECT amount FROM m WHERE id = 1")
	if rows.Data[0][0].Kind != types.KindFloat || rows.Data[0][0].Float != 10 {
		t.Errorf("backfilled value: %+v", rows.Data[0][0])
	}
}

// TestAlterSnapshotAnomaly is the core online-evolution guarantee: a
// snapshot that began before an ALTER keeps reading under the schema
// version pinned at its begin, concurrently with post-ALTER traffic.
func TestAlterSnapshotAnomaly(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20), beds INTEGER)")
	mustExec(t, db, "INSERT INTO acc VALUES (1, 'a', 10)")

	old := db.Session()
	defer old.Close()
	if _, err := old.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	// Pin the snapshot by observing something through it.
	pre, err := old.Query("SELECT * FROM acc")
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Columns) != 3 {
		t.Fatalf("pre-ALTER columns: %v", pre.Columns)
	}

	// The ALTERs run while the transaction is open — the fenced path
	// would reject this; the online path must not.
	mustExec(t, db, "ALTER TABLE acc ADD COLUMN phone VARCHAR(12)")
	mustExec(t, db, "ALTER TABLE acc DROP COLUMN beds")
	mustExec(t, db, "INSERT INTO acc VALUES (2, 'b', 'x')")

	// New reader: 3 visible columns (id, name, phone), beds gone.
	star := mustQuery(t, db, "SELECT * FROM acc WHERE id = 2")
	if len(star.Columns) != 3 || !strings.EqualFold(star.Columns[2], "phone") {
		t.Errorf("new schema star: %v", star.Columns)
	}

	// Old snapshot: still exactly (id, name, beds) — the added column
	// invisible, the dropped column alive with its value, and row 2
	// (committed after the snapshot) invisible too.
	got, err := old.Query("SELECT * FROM acc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 3 || !strings.EqualFold(got.Columns[2], "beds") {
		t.Fatalf("old snapshot star: %v", got.Columns)
	}
	if len(got.Data) != 1 || got.Data[0][2].Int != 10 {
		t.Fatalf("old snapshot rows: %+v", got.Data)
	}
	if _, err := old.Query("SELECT phone FROM acc"); err == nil {
		t.Error("old snapshot resolved a column added after its begin")
	}
	if _, err := old.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	waitMigrated(t, db)
}

// TestAlterBackfillRewritesColdRows proves the background worker, not
// just foreground DML, upgrades stale encodings: after WaitBackfill
// every heap record has the full arity.
func TestAlterBackfillRewritesColdRows(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20))")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO acc VALUES (%d, 'n%d')", i, i))
	}
	mustExec(t, db, "ALTER TABLE acc ADD COLUMN beds INTEGER")
	waitMigrated(t, db)

	tbl, err := db.Catalog().Table("acc")
	if err != nil {
		t.Fatal(err)
	}
	want := len(tbl.Columns)
	stale := 0
	tbl.Mu.RLock()
	err = tbl.Heap.Scan(func(rid storage.RID, rec []byte) (bool, error) {
		arity, _ := binary.Uvarint(rec)
		if int(arity) != want {
			stale++
		}
		return true, nil
	})
	tbl.Mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if stale != 0 {
		t.Errorf("%d rows still stale after backfill", stale)
	}
	var prog bool
	for _, p := range db.BackfillStatus() {
		if strings.EqualFold(p.Table, "acc") {
			prog = true
			if !p.Done || p.Rewritten == 0 {
				t.Errorf("progress: %+v", p)
			}
		}
	}
	if !prog {
		t.Error("no backfill progress recorded for acc")
	}
}

// TestAlterLazyUpgradeOnWrite: a foreground UPDATE touching a stale row
// rewrites it to the newest schema and the counter records it.
func TestAlterLazyUpgradeOnWrite(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20))")
	mustExec(t, db, "INSERT INTO acc VALUES (1, 'a')")

	// Hold the schema chain open so the backfiller cannot scrub ahead of
	// the foreground write we want to observe.
	hold := db.Session()
	defer hold.Close()
	if _, err := hold.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := hold.Query("SELECT * FROM acc"); err != nil {
		t.Fatal(err)
	}

	mustExec(t, db, "ALTER TABLE acc ADD COLUMN beds INTEGER")
	mustExec(t, db, "UPDATE acc SET name = 'b' WHERE id = 1")

	tbl, err := db.Catalog().Table("acc")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.LazyUpgrades.Load(); got != 1 {
		t.Errorf("LazyUpgrades = %d, want 1", got)
	}
	rows := mustQuery(t, db, "SELECT name, beds FROM acc WHERE id = 1")
	if rows.Data[0][0].Str != "b" || rows.Data[0][1].Kind != types.KindNull {
		t.Errorf("row after lazy upgrade: %+v", rows.Data)
	}
	if _, err := hold.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	waitMigrated(t, db)
}

// TestAlterConcurrentTraffic hammers a table with readers and writers
// while ALTERs land — no statement may fail, and the final schema must
// win.
func TestAlterConcurrentTraffic(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20))")
	mustExec(t, db, "CREATE UNIQUE INDEX pk ON acc (id)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO acc VALUES (%d, 'n%d')", i, i))
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					if _, err := db.Query("SELECT name FROM acc WHERE id = ?", types.NewInt(int64(i%50))); err != nil {
						errc <- err
						return
					}
				} else {
					if _, err := db.Exec("UPDATE acc SET name = ? WHERE id = ?",
						types.NewString(fmt.Sprintf("w%d-%d", w, i)), types.NewInt(int64(i%50))); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 4; i++ {
		mustExec(t, db, fmt.Sprintf("ALTER TABLE acc ADD COLUMN extra%d INTEGER", i))
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent statement failed during online ALTER: %v", err)
	default:
	}
	star := mustQuery(t, db, "SELECT * FROM acc WHERE id = 1")
	if len(star.Columns) != 6 {
		t.Errorf("final schema: %v", star.Columns)
	}
	waitMigrated(t, db)
}

// TestStructuralDDLStaysFenced: CREATE INDEX and DROP TABLE keep the
// exclusive fence and still reject open transactions — the documented
// exception to online evolution.
func TestStructuralDDLStaysFenced(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acc (id INTEGER NOT NULL, name VARCHAR(20))")
	s := db.Session()
	defer s.Close()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("SELECT * FROM acc"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX pk ON acc (id)"); err == nil {
		t.Error("CREATE INDEX with an open transaction must stay rejected")
	}
	if _, err := db.Exec("ALTER TABLE acc ADD COLUMN beds INTEGER"); err != nil {
		t.Errorf("online ALTER with an open transaction: %v", err)
	}
	if _, err := s.Exec("ALTER TABLE acc ADD COLUMN x INTEGER"); err == nil {
		t.Error("ALTER inside an open transaction must stay rejected")
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
}
