package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/types"
)

// newAtomDB builds a db with one indexed table pre-filled with n rows
// (k = 0..n-1 dense, unique).
func newAtomDB(t *testing.T, cfg Config, n int) *DB {
	t.Helper()
	db := Open(cfg)
	mustExec(t, db, "CREATE TABLE t (k INTEGER NOT NULL, v VARCHAR(100))")
	mustExec(t, db, "CREATE UNIQUE INDEX pk ON t (k)")
	mustExec(t, db, "CREATE INDEX byv ON t (v)")
	for i := 0; i < n; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)",
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("val-%04d", i)))
	}
	return db
}

func atomTable(t *testing.T, db *DB) *catalog.Table {
	t.Helper()
	tab, err := db.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func countRows(t *testing.T, db *DB) int64 {
	t.Helper()
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	return rows.Data[0][0].Int
}

// The satellite regression: a multi-row INSERT whose kth row violates a
// unique constraint used to leave rows 1..k-1 behind. It must now
// affect zero rows.
func TestMultiRowInsertAtomicity(t *testing.T) {
	db := newAtomDB(t, Config{}, 5)
	before := db.Stats().StmtRollbacks

	_, err := db.Exec("INSERT INTO t VALUES (100, 'a'), (101, 'b'), (2, 'dup')")
	if err == nil {
		t.Fatal("insert with duplicate key must fail")
	}
	if got := countRows(t, db); got != 5 {
		t.Errorf("row count after failed insert = %d, want 5 (rows 100/101 leaked)", got)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM t WHERE k >= 100")
	if rows.Data[0][0].Int != 0 {
		t.Error("prefix rows of the failed insert are visible")
	}
	if got := db.Stats().StmtRollbacks - before; got != 1 {
		t.Errorf("StmtRollbacks delta = %d, want 1", got)
	}
	if err := atomTable(t, db).CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// Acceptance: shifting a dense unique key must succeed regardless of
// the order the executor visits rows, both by sequential scan and by
// index range scan (ascending key order — the worst case, where every
// row's new key collides with its not-yet-moved neighbor).
func TestUpdateShiftDenseUniqueKey(t *testing.T) {
	db := newAtomDB(t, Config{}, 50)

	res, err := db.Exec("UPDATE t SET k = k + 1")
	if err != nil {
		t.Fatalf("full-table k = k+1: %v", err)
	}
	if res.RowsAffected != 50 {
		t.Errorf("affected %d, want 50", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM t WHERE k >= 1 AND k <= 50")
	if rows.Data[0][0].Int != 50 {
		t.Errorf("keys not shifted to 1..50: %d in range", rows.Data[0][0].Int)
	}

	// Indexed predicate: the planner drives this through the unique
	// index in ascending key order.
	res, err = db.Exec("UPDATE t SET k = k + 1 WHERE k >= 20")
	if err != nil {
		t.Fatalf("indexed k = k+1: %v", err)
	}
	if res.RowsAffected != 31 {
		t.Errorf("affected %d, want 31", res.RowsAffected)
	}
	if err := atomTable(t, db).CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestStatementFaultSweeps drives every DML shape through a
// deterministic fault sweep at the pool level: attempt k fails the kth
// page access of one category; a failed statement must leave the table
// bit-identical to its pre-statement snapshot.
func TestStatementFaultSweeps(t *testing.T) {
	stmts := []struct {
		name string
		sql  string
	}{
		{"multi-insert", "INSERT INTO t VALUES (200, 'n1'), (201, 'n2'), (202, 'n3')"},
		{"update-shift", "UPDATE t SET k = k + 1 WHERE k >= 10"},
		{"update-grow", "UPDATE t SET v = 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx' WHERE k < 10"},
		{"delete-range", "DELETE FROM t WHERE k >= 10 AND k < 20"},
	}
	cats := []storage.Category{storage.CatData, storage.CatIndex}
	const maxK = 600

	for _, st := range stmts {
		for _, cat := range cats {
			swept := false
			for k := int64(1); k <= maxK; k++ {
				db := newAtomDB(t, Config{PageSize: 512, MemoryBytes: 1 << 20}, 40)
				tab := atomTable(t, db)
				snap, err := tab.SnapshotRows()
				if err != nil {
					t.Fatal(err)
				}
				db.BufferPool().SetFetchFault(storage.FailNthFetch(k, cat))
				_, execErr := db.Exec(st.sql)
				db.BufferPool().SetFetchFault(nil)
				if execErr == nil {
					swept = true
					break // statement outran the fault: all access points covered
				}
				if !errors.Is(execErr, storage.ErrInjectedFault) {
					t.Fatalf("%s/%v fault %d: unexpected error %v", st.name, cat, k, execErr)
				}
				if err := tab.CheckInvariants(); err != nil {
					t.Fatalf("%s/%v fault %d: invariants: %v", st.name, cat, k, err)
				}
				after, err := tab.SnapshotRows()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(snap, after) {
					t.Fatalf("%s/%v fault %d: rows differ from pre-statement snapshot", st.name, cat, k)
				}
			}
			if !swept {
				t.Fatalf("%s/%v: never ran fault-free within %d fault points", st.name, cat, maxK)
			}
		}
	}
}

// TestRandomizedFaultInjection is the acceptance test: ≥ 1000 randomly
// placed physical I/O faults injected under a thrashing buffer pool
// while random DML runs. Every statement is designed to be genuinely
// valid, so any failure is fault-induced — and every failure must leave
// the table consistent and bit-identical to its pre-statement state.
func TestRandomizedFaultInjection(t *testing.T) {
	const targetFaults = 1000

	// A pool far smaller than the working set: nearly every statement
	// does physical I/O, so disk-level faults land mid-statement.
	db := Open(Config{MemoryBytes: 48 << 10, PageSize: 1024})
	mustExec(t, db, "CREATE TABLE t (k INTEGER NOT NULL, v VARCHAR(100))")
	mustExec(t, db, "CREATE UNIQUE INDEX pk ON t (k)")
	pad := func(i int64) string { return fmt.Sprintf("value-%08d-%060d", i, i) }
	for i := int64(0); i < 600; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", types.NewInt(i), types.NewString(pad(i)))
	}
	tab := atomTable(t, db)

	rng := rand.New(rand.NewSource(1)) // deterministic run
	nextK := int64(1_000_000)          // fresh keys: inserts never genuinely collide
	faults, iters := 0, 0
	for faults < targetFaults {
		iters++
		if iters > 40*targetFaults {
			t.Fatalf("only %d faults fired in %d iterations", faults, iters)
		}
		var q string
		var params []types.Value
		kind := rng.Intn(4)
		switch kind {
		case 0:
			q = "INSERT INTO t VALUES (?, ?)"
			params = []types.Value{types.NewInt(nextK), types.NewString(pad(nextK))}
			nextK++
		case 1:
			lo := rng.Int63n(600)
			q = "UPDATE t SET v = ? WHERE k >= ? AND k < ?"
			params = []types.Value{types.NewString(pad(rng.Int63())), types.NewInt(lo), types.NewInt(lo + 20)}
		case 2:
			// k = k+1 over a suffix never genuinely collides: every
			// row at or above the boundary moves together.
			q = "UPDATE t SET k = k + 1 WHERE k >= ?"
			params = []types.Value{types.NewInt(rng.Int63n(2_000_000))}
		case 3:
			lo := rng.Int63n(600)
			q = "DELETE FROM t WHERE k >= ? AND k < ?"
			params = []types.Value{types.NewInt(lo), types.NewInt(lo + 3)}
		}

		snap, err := tab.SnapshotRows()
		if err != nil {
			t.Fatal(err)
		}
		fired := false
		inner := storage.FailNth(1+rng.Int63n(25), nil)
		db.Disk().SetFault(func(fi storage.FaultInfo) error {
			if err := inner(fi); err != nil {
				fired = true
				return err
			}
			return nil
		})
		_, execErr := db.Exec(q, params...)
		db.Disk().SetFault(nil)

		if execErr == nil && kind == 2 {
			// A successful suffix shift raises the maximum key by one;
			// keep fresh insert keys strictly above it.
			nextK++
		}
		if execErr != nil {
			if !errors.Is(execErr, storage.ErrInjectedFault) {
				t.Fatalf("iter %d (%s): non-injected failure: %v", iters, q, execErr)
			}
			if !fired {
				t.Fatalf("iter %d: injected error without the hook firing", iters)
			}
			faults++
			if err := tab.CheckInvariants(); err != nil {
				t.Fatalf("iter %d (%s): invariants after rollback: %v", iters, q, err)
			}
			after, err := tab.SnapshotRows()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(snap, after) {
				t.Fatalf("iter %d (%s): rows differ from pre-statement snapshot", iters, q)
			}
		} else if iters%100 == 0 {
			if err := tab.CheckInvariants(); err != nil {
				t.Fatalf("iter %d: invariants after success: %v", iters, err)
			}
		}
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	if n := db.Stats().StmtRollbacks; n < int64(targetFaults) {
		t.Errorf("StmtRollbacks = %d, want >= %d", n, targetFaults)
	}
	t.Logf("%d faults fired across %d statements", faults, iters)
}
