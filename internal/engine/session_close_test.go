package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// closeTestDB builds a database with two tables and a few rows, the
// fixture for the disconnect-safety tests.
func closeTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{CheckpointBytes: -1})
	for _, q := range []string{
		"CREATE TABLE t (k INTEGER NOT NULL, v INTEGER)",
		"CREATE UNIQUE INDEX t_pk ON t (k)",
		"CREATE TABLE u (k INTEGER NOT NULL, v INTEGER)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 8; k++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, 0)", types.NewInt(int64(k))); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("INSERT INTO u VALUES (?, 0)", types.NewInt(int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestCloseMidTransactionReleasesEverything is the deterministic half
// of the kill-mid-statement regression: a transaction that has written
// (so it holds a pinned snapshot, a write-admission token, and an undo
// log) is Closed from ANOTHER goroutine — the server's reaper — and
// every resource must come back.
func TestCloseMidTransactionReleasesEverything(t *testing.T) {
	db := closeTestDB(t)
	s := db.Session()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE t SET v = 1 WHERE k = 3"); err != nil {
		t.Fatal(err)
	}
	if n := db.Stats().PinnedSnapshots; n != 1 {
		t.Fatalf("pinned snapshots before close = %d, want 1", n)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	if err := <-done; err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := db.Stats()
	if st.ActiveTxns != 0 || st.PinnedSnapshots != 0 {
		t.Fatalf("after close: active=%d pinned=%d, want 0/0", st.ActiveTxns, st.PinnedSnapshots)
	}
	// The rollback must have taken the write back out.
	rows, err := db.Query("SELECT v FROM t WHERE k = 3")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int != 0 {
		t.Fatalf("write survived Close: v = %d", rows.Data[0][0].Int)
	}
	// The admission token must be free again: a fresh transaction's
	// first write to t must not park (AdmissionWaits unchanged).
	before := db.Stats().AdmissionWaits
	s2 := db.Session()
	defer s2.Close()
	for _, q := range []string{"BEGIN", "UPDATE t SET v = 2 WHERE k = 3", "COMMIT"} {
		if _, err := s2.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if after := db.Stats().AdmissionWaits; after != before {
		t.Fatalf("admission token leaked: waits %d -> %d", before, after)
	}
	// Statements after Close fail closed.
	if _, err := s.Exec("SELECT * FROM t"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Exec after Close: got %v, want ErrSessionClosed", err)
	}
	if _, err := s.Query("SELECT * FROM t"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Query after Close: got %v, want ErrSessionClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseConcurrentWithExec is the racing half: a worker goroutine
// hammers DML inside a transaction while the reaper Closes the session
// mid-flight. Close must wait out the in-flight statement, roll back,
// and leave no transaction, snapshot pin, or admission token behind —
// run under -race this also proves the handoff is data-race free.
func TestCloseConcurrentWithExec(t *testing.T) {
	for round := 0; round < 25; round++ {
		db := closeTestDB(t)
		s := db.Session()
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
		var sawClosed atomic.Bool
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				k := types.NewInt(int64(i % 8))
				_, err := s.Exec("UPDATE t SET v = v + 1 WHERE k = ?", k)
				if err == nil {
					_, err = s.Exec("UPDATE u SET v = v + 1 WHERE k = ?", k)
				}
				if errors.Is(err, ErrSessionClosed) {
					sawClosed.Store(true)
					return
				}
				if err != nil {
					// A conflict abort is impossible here (single writer),
					// anything else is a real failure.
					t.Errorf("worker statement failed: %v", err)
					return
				}
			}
		}()
		// Let the worker get some statements in flight, then reap.
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		<-done
		if !sawClosed.Load() {
			t.Fatal("worker never observed ErrSessionClosed")
		}
		st := db.Stats()
		if st.ActiveTxns != 0 || st.PinnedSnapshots != 0 {
			t.Fatalf("round %d leaked: active=%d pinned=%d", round, st.ActiveTxns, st.PinnedSnapshots)
		}
		// Both tables' admission tokens must be free: a follow-up
		// transaction writing both commits without parking.
		before := db.Stats().AdmissionWaits
		s2 := db.Session()
		for _, q := range []string{
			"BEGIN",
			"UPDATE t SET v = 0 WHERE k = 0",
			"UPDATE u SET v = 0 WHERE k = 0",
			"COMMIT",
		} {
			if _, err := s2.Exec(q); err != nil {
				t.Fatalf("round %d follow-up %s: %v", round, q, err)
			}
		}
		s2.Close()
		if after := db.Stats().AdmissionWaits; after != before {
			t.Fatalf("round %d: admission token leaked (waits %d -> %d)", round, before, after)
		}
	}
}

// TestCloseDuringAbortedState: a conflict leaves the session in the
// aborted-until-ROLLBACK state; Close must clear it without touching
// the (already rolled back) transaction.
func TestCloseDuringAbortedState(t *testing.T) {
	db := closeTestDB(t)
	db2 := db // alias for clarity; same instance

	s1 := db.Session()
	s2 := db2.Session()
	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("UPDATE t SET v = 10 WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	// s2 must lose first-updater-wins against s1's uncommitted write.
	_, err := s2.Exec("UPDATE t SET v = 20 WHERE k = 1")
	if err == nil {
		t.Fatal("expected write-write conflict")
	}
	if !s2.InTxn() {
		t.Fatal("aborted session should still report InTxn until ROLLBACK")
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close of aborted session: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close of s1: %v", err)
	}
	st := db.Stats()
	if st.ActiveTxns != 0 || st.PinnedSnapshots != 0 {
		t.Fatalf("leak after aborted close: active=%d pinned=%d", st.ActiveTxns, st.PinnedSnapshots)
	}
}

// TestStatsPollUnderLoad drives concurrent sessions (interactive
// transactions and autocommit statements) while a poller hammers
// db.Stats() — the server's metrics endpoint. Run under -race this
// verifies the stats snapshot is race-clean against every counter the
// sessions mutate.
func TestStatsPollUnderLoad(t *testing.T) {
	db := closeTestDB(t)
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		var last Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			last = db.Stats()
			_ = last
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			for i := 0; i < 60; i++ {
				k := types.NewInt(int64((w*7 + i) % 8))
				if w%2 == 0 {
					// Interactive transaction.
					if _, err := s.Exec("BEGIN"); err != nil {
						t.Error(err)
						return
					}
					_, err := s.Exec("UPDATE t SET v = v + 1 WHERE k = ?", k)
					if err != nil {
						s.Exec("ROLLBACK")
						continue
					}
					if _, err := s.Exec("COMMIT"); err != nil {
						continue
					}
				} else {
					// Autocommit mix.
					if _, err := db.Exec("UPDATE u SET v = v + 1 WHERE k = ?", k); err != nil {
						t.Error(err)
						return
					}
					if _, err := db.Query("SELECT COUNT(*) FROM t"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	st := db.Stats()
	if st.ActiveTxns != 0 || st.PinnedSnapshots != 0 {
		t.Fatalf("leaked after load: active=%d pinned=%d", st.ActiveTxns, st.PinnedSnapshots)
	}
}
