package engine

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// Stmt is a prepared statement: parsed once, planned through the
// engine's shared plan cache (the same cache ad-hoc Exec/Query use),
// with plans invalidated when a DDL operation bumps the catalog
// version (on-line schema changes invalidate cached plans, they do not
// break them).
//
// A Stmt is safe for concurrent use and executions do not serialize:
// plans that carry per-execution state (e.g. materialized
// IN-subqueries) are cloned per execution, everything else is shared
// read-only.
type Stmt struct {
	db  *DB
	st  sql.Statement
	key string // plan-cache key: the statement's printed form

	// precomputed lock sets
	reads []string
	write string
}

// Prepare parses a statement for repeated execution. DDL statements
// cannot be prepared (they execute once by nature).
func (db *DB) Prepare(query string) (*Stmt, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, st: st, key: query}
	switch st := st.(type) {
	case *sql.SelectStmt:
		s.reads = collectReadTables(st, nil)
	case *sql.InsertStmt:
		s.write = st.Table
	case *sql.UpdateStmt:
		s.write = st.Table
		s.reads = collectExprTables(st.Where, nil)
	case *sql.DeleteStmt:
		s.write = st.Table
		s.reads = collectExprTables(st.Where, nil)
	default:
		return nil, fmt.Errorf("engine: cannot prepare %T (DDL executes directly)", st)
	}
	return s, nil
}

// node returns the execution plan: cache-served at the current catalog
// version, replanned automatically after schema changes. The caller
// must hold ddlMu shared.
func (s *Stmt) node() (plan.Node, error) {
	return s.db.planFor(s.key, s.st)
}

// Query executes a prepared SELECT.
func (s *Stmt) Query(params ...types.Value) (*Rows, error) {
	if _, ok := s.st.(*sql.SelectStmt); !ok {
		return nil, fmt.Errorf("engine: prepared statement is not a SELECT")
	}
	s.db.ddlMu.RLock()
	defer s.db.ddlMu.RUnlock()
	unlock, err := s.db.lockTables(s.reads, "")
	if err != nil {
		return nil, err
	}
	defer unlock()
	n, err := s.node()
	if err != nil {
		return nil, err
	}
	data, err := exec.CollectStats(n, params, &s.db.execStats)
	if err != nil {
		return nil, err
	}
	schema := n.Schema()
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Name
	}
	return &Rows{Columns: cols, Data: data}, nil
}

// Exec executes a prepared DML statement.
func (s *Stmt) Exec(params ...types.Value) (Result, error) {
	if _, isSel := s.st.(*sql.SelectStmt); isSel {
		_, err := s.Query(params...)
		return Result{}, err
	}
	s.db.ddlMu.RLock()
	defer s.db.ddlMu.RUnlock()
	unlock, err := s.db.lockTables(s.reads, s.write)
	if err != nil {
		return Result{}, err
	}
	defer unlock()
	n, err := s.node()
	if err != nil {
		return Result{}, err
	}
	count, err := exec.RunDMLStats(n, params, &s.db.execStats)
	if err != nil {
		s.db.stmtRollbacks.Add(1)
	}
	return Result{RowsAffected: count}, err
}
