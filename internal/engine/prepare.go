package engine

import (
	"fmt"

	"repro/internal/sql"
	"repro/internal/types"
)

// Stmt is a prepared statement: parsed once, planned through the
// engine's shared plan cache (the same cache ad-hoc Exec/Query use),
// with plans invalidated when a DDL operation bumps the catalog
// version (on-line schema changes invalidate cached plans, they do not
// break them).
//
// A Stmt is safe for concurrent use and executions do not serialize:
// plans that carry per-execution state (e.g. materialized
// IN-subqueries) are cloned per execution, everything else is shared
// read-only.
type Stmt struct {
	db  *DB
	st  sql.Statement
	key string // plan-cache key: the statement's printed form
}

// Prepare parses a statement for repeated execution. DDL and
// transaction-control statements cannot be prepared (they execute once
// by nature, through a Session for the latter).
func (db *DB) Prepare(query string) (*Stmt, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *sql.SelectStmt, *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
	default:
		return nil, fmt.Errorf("engine: cannot prepare %T (DDL and transaction control execute directly)", st)
	}
	return &Stmt{db: db, st: st, key: query}, nil
}

// Query executes a prepared SELECT.
func (s *Stmt) Query(params ...types.Value) (*Rows, error) {
	sel, ok := s.st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: prepared statement is not a SELECT")
	}
	return s.db.queryStmtKeyed(sel, s.key, params)
}

// Exec executes a prepared DML statement through the same path as
// ad-hoc Exec — WAL scope, statement-level atomicity, mvcc stamping —
// so a prepared write is every bit as durable as an ad-hoc one.
func (s *Stmt) Exec(params ...types.Value) (Result, error) {
	if _, isSel := s.st.(*sql.SelectStmt); isSel {
		_, err := s.Query(params...)
		return Result{}, err
	}
	res, err := s.db.execDML(s.st, s.key, params)
	if err == nil {
		s.db.maybeCheckpoint()
	}
	return res, err
}
