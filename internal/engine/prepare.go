package engine

import (
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// Stmt is a prepared statement: parsed once, planned lazily, with the
// plan cached until a DDL operation bumps the catalog version (on-line
// schema changes invalidate cached plans, they do not break them).
//
// A Stmt is safe for concurrent use, but executions of the same Stmt
// serialize on an internal mutex because the cached plan carries
// per-execution state (e.g. materialized IN-subqueries). For parallel
// sessions, prepare one Stmt per session — which is how connection
// pools use prepared statements anyway.
type Stmt struct {
	db *DB
	st sql.Statement

	// precomputed lock sets
	reads []string
	write string

	mu      sync.Mutex
	plan    plan.Node
	version int64
}

// Prepare parses a statement for repeated execution. DDL statements
// cannot be prepared (they execute once by nature).
func (db *DB) Prepare(query string) (*Stmt, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, st: st, version: -1}
	switch st := st.(type) {
	case *sql.SelectStmt:
		s.reads = collectReadTables(st, nil)
	case *sql.InsertStmt:
		s.write = st.Table
	case *sql.UpdateStmt:
		s.write = st.Table
		s.reads = collectExprTables(st.Where, nil)
	case *sql.DeleteStmt:
		s.write = st.Table
		s.reads = collectExprTables(st.Where, nil)
	default:
		return nil, fmt.Errorf("engine: cannot prepare %T (DDL executes directly)", st)
	}
	return s, nil
}

// nodeLocked returns the cached plan, replanning if the schema changed.
// Caller holds s.mu.
func (s *Stmt) nodeLocked() (plan.Node, error) {
	v := s.db.cat.Version()
	if s.plan != nil && s.version == v {
		return s.plan, nil
	}
	n, err := s.db.planner.PlanStatement(s.st)
	if err != nil {
		return nil, err
	}
	s.plan, s.version = n, v
	return n, nil
}

// Query executes a prepared SELECT.
func (s *Stmt) Query(params ...types.Value) (*Rows, error) {
	if _, ok := s.st.(*sql.SelectStmt); !ok {
		return nil, fmt.Errorf("engine: prepared statement is not a SELECT")
	}
	s.db.ddlMu.RLock()
	defer s.db.ddlMu.RUnlock()
	unlock, err := s.db.lockTables(s.reads, "")
	if err != nil {
		return nil, err
	}
	defer unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.nodeLocked()
	if err != nil {
		return nil, err
	}
	data, err := exec.Collect(n, params)
	if err != nil {
		return nil, err
	}
	schema := n.Schema()
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Name
	}
	return &Rows{Columns: cols, Data: data}, nil
}

// Exec executes a prepared DML statement.
func (s *Stmt) Exec(params ...types.Value) (Result, error) {
	if _, isSel := s.st.(*sql.SelectStmt); isSel {
		_, err := s.Query(params...)
		return Result{}, err
	}
	s.db.ddlMu.RLock()
	defer s.db.ddlMu.RUnlock()
	unlock, err := s.db.lockTables(s.reads, s.write)
	if err != nil {
		return Result{}, err
	}
	defer unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.nodeLocked()
	if err != nil {
		return Result{}, err
	}
	count, err := exec.RunDML(n, params)
	return Result{RowsAffected: count}, err
}
