package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/mvcc"
	"repro/internal/types"
)

// These tests pin down the fine-grained write-concurrency machinery:
// the soft per-table admission gate, the bounded row-level
// wait-then-abort, and their deadlock freedom under multi-table
// contention. They use real goroutines; run with -race.

// waitForStat polls get until it returns at least want, failing the
// test after deadline. It synchronizes a driver goroutine with another
// session's park without guessing at scheduler timing.
func waitForStat(t *testing.T, get func() int64, want int64, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if get() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stat never reached %d within %v (got %d)", want, deadline, get())
}

// TestAdmissionRescueAfterRollback: a transaction parked at a table's
// write-admission gate is admitted as soon as the holder resolves, and
// — because its snapshot pins only after admission — proceeds without
// a conflict. The would-be first-updater-wins abort becomes a commit.
func TestAdmissionRescueAfterRollback(t *testing.T) {
	db := newTxnDB(t, Config{ConflictWait: 100 * time.Millisecond}, 4)
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	sessExec(t, s1, "BEGIN")
	sessExec(t, s1, "UPDATE acct SET bal = 0 WHERE k = 0") // takes acct's token

	sessExec(t, s2, "BEGIN")
	done := make(chan error, 1)
	go func() {
		// Parks at the admission gate: s1 holds the token. The budget is
		// 10x the conflict wait (1s), far longer than s1 keeps it.
		if _, err := s2.Exec("UPDATE acct SET bal = bal + 7 WHERE k = 0"); err != nil {
			done <- err
			return
		}
		_, err := s2.Exec("COMMIT")
		done <- err
	}()

	waitForStat(t, func() int64 { return db.Stats().AdmissionWaits }, 1, 5*time.Second)
	sessExec(t, s1, "ROLLBACK") // releases the token after the undo finished

	if err := <-done; err != nil {
		t.Fatalf("parked transaction should be admitted and commit, got %v", err)
	}
	st := db.Stats()
	if st.TxnConflicts != 0 {
		t.Errorf("TxnConflicts = %d, want 0 (admission + lazy pin avoids the conflict)", st.TxnConflicts)
	}
	if st.AdmissionTimeouts != 0 {
		t.Errorf("AdmissionTimeouts = %d, want 0 (the token was handed over, not forced)", st.AdmissionTimeouts)
	}
	rows := mustQuery(t, db, "SELECT bal FROM acct WHERE k = 0")
	if rows.Data[0][0].Int != 107 {
		t.Errorf("bal(0) = %d, want 107 (s1 rolled back, s2 committed)", rows.Data[0][0].Int)
	}
}

// TestRowWaitRescueAfterRollback exercises the row-level bounded wait
// behind the gate: a transaction that already passed the table's gate
// (it wrote the table first) meets a row held by a forced-admission
// writer, parks on the holder's version chain, and proceeds when the
// holder rolls back — RowWaitRescues, not a conflict.
func TestRowWaitRescueAfterRollback(t *testing.T) {
	db := newTxnDB(t, Config{ConflictWait: 200 * time.Millisecond}, 4)
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	// s2 writes the table first and owns its admission token.
	sessExec(t, s2, "BEGIN")
	sessExec(t, s2, "UPDATE acct SET bal = 1 WHERE k = 1")

	// s1's write cannot get the token; after the bounded admission park
	// (10x conflict wait) it is force-admitted — scheduling never blocks
	// semantics — and takes row k=0.
	sessExec(t, s1, "BEGIN")
	sessExec(t, s1, "UPDATE acct SET bal = 2 WHERE k = 0")
	if got := db.Stats().AdmissionTimeouts; got != 1 {
		t.Fatalf("AdmissionTimeouts = %d, want 1 (forced admission)", got)
	}

	done := make(chan error, 1)
	go func() {
		// Same table, gate already passed: goes straight to the row wait
		// on s1's uncommitted write.
		if _, err := s2.Exec("UPDATE acct SET bal = bal + 7 WHERE k = 0"); err != nil {
			done <- err
			return
		}
		_, err := s2.Exec("COMMIT")
		done <- err
	}()

	waitForStat(t, func() int64 { return db.Stats().RowWaits }, 1, 5*time.Second)
	sessExec(t, s1, "ROLLBACK")

	if err := <-done; err != nil {
		t.Fatalf("parked writer should be rescued and commit, got %v", err)
	}
	st := db.Stats()
	if st.RowWaitRescues < 1 {
		t.Errorf("RowWaitRescues = %d, want >= 1", st.RowWaitRescues)
	}
	if st.TxnConflicts != 0 {
		t.Errorf("TxnConflicts = %d, want 0", st.TxnConflicts)
	}
	rows := mustQuery(t, db, "SELECT bal FROM acct WHERE k = 0")
	if rows.Data[0][0].Int != 107 {
		t.Errorf("bal(0) = %d, want 107", rows.Data[0][0].Int)
	}
}

// TestInstaAbortControl: with waiting disabled (ConflictWait < 0) the
// same collision is an immediate first-updater-wins conflict — the
// pre-bounded-wait behavior stays available and classified.
func TestInstaAbortControl(t *testing.T) {
	db := newTxnDB(t, Config{ConflictWait: -1}, 4)
	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()

	sessExec(t, s1, "BEGIN")
	sessExec(t, s1, "UPDATE acct SET bal = 0 WHERE k = 0")
	sessExec(t, s2, "BEGIN")
	_, err := s2.Exec("UPDATE acct SET bal = 1 WHERE k = 0")
	if !errors.Is(err, mvcc.ErrWriteConflict) {
		t.Fatalf("want immediate ErrWriteConflict, got %v", err)
	}
	st := db.Stats()
	if st.ImmediateConflicts < 1 {
		t.Errorf("ImmediateConflicts = %d, want >= 1", st.ImmediateConflicts)
	}
	if st.RowWaits != 0 || st.AdmissionWaits != 0 {
		t.Errorf("RowWaits = %d, AdmissionWaits = %d, want 0/0 (waiting disabled)", st.RowWaits, st.AdmissionWaits)
	}
	sessExec(t, s1, "ROLLBACK")
	sessExec(t, s2, "ROLLBACK") // clears the conflict-aborted state
}

// TestMultiTableWriteStressNoDeadlock hammers three tables from eight
// sessions, each transaction writing the tables in a random order — the
// classic lock-ordering deadlock shape. The admission gates and row
// waits are all bounded (forced admission, wait-then-abort), so the
// system must drain; a 60s watchdog catches any stall. Outcome
// accounting must balance exactly.
func TestMultiTableWriteStressNoDeadlock(t *testing.T) {
	const (
		sessions = 8
		txns     = 40
		keys     = 8
	)
	db := Open(Config{ConflictWait: time.Millisecond})
	tables := []string{"t0", "t1", "t2"}
	for _, tb := range tables {
		mustExec(t, db, "CREATE TABLE "+tb+" (k INTEGER NOT NULL, bal INTEGER)")
		mustExec(t, db, "CREATE UNIQUE INDEX "+tb+"_pk ON "+tb+" (k)")
		for k := 0; k < keys; k++ {
			mustExec(t, db, "INSERT INTO "+tb+" VALUES (?, 100)", types.NewInt(int64(k)))
		}
	}

	finished := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := db.Session()
				defer sess.Close()
				rng := rand.New(rand.NewSource(int64(1000 + s)))
				for i := 0; i < txns; i++ {
					if _, err := sess.Exec("BEGIN"); err != nil {
						t.Errorf("session %d: BEGIN: %v", s, err)
						return
					}
					order := rng.Perm(len(tables))
					ok := true
					for _, ti := range order {
						k := types.NewInt(int64(rng.Intn(keys)))
						if _, err := sess.Exec("UPDATE "+tables[ti]+" SET bal = bal + 1 WHERE k = ?", k); err != nil {
							if !errors.Is(err, mvcc.ErrWriteConflict) {
								t.Errorf("session %d: unexpected error %v", s, err)
								return
							}
							ok = false
							break
						}
					}
					var err error
					if ok {
						_, err = sess.Exec("COMMIT")
					} else {
						_, err = sess.Exec("ROLLBACK")
					}
					if err != nil {
						t.Errorf("session %d: finish: %v", s, err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		close(finished)
	}()

	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("stress did not drain within 60s: possible deadlock in admission gates / row waits / latches")
	}
	st := db.Stats()
	if st.TxnBegins != sessions*txns {
		t.Errorf("TxnBegins = %d, want %d", st.TxnBegins, sessions*txns)
	}
	if st.TxnCommits+st.TxnAborts != st.TxnBegins {
		t.Errorf("commits(%d) + aborts(%d) != begins(%d): a transaction leaked",
			st.TxnCommits, st.TxnAborts, st.TxnBegins)
	}
	if st.TxnConflicts > st.TxnAborts {
		t.Errorf("TxnConflicts = %d > TxnAborts = %d", st.TxnConflicts, st.TxnAborts)
	}
}

// runHotKeyLoop drives sessions over a tiny hot key set and reports
// (commits, conflicts) — the shape of the BENCH_5 workload, compressed.
func runHotKeyLoop(t *testing.T, db *DB, sessions, txns, stmts, keys int) (int64, int64) {
	t.Helper()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(7 + s)))
			for i := 0; i < txns; i++ {
				if _, err := sess.Exec("BEGIN"); err != nil {
					t.Error(err)
					return
				}
				ok := true
				for j := 0; j < stmts; j++ {
					k := types.NewInt(int64(rng.Intn(keys)))
					if _, err := sess.Exec("UPDATE acct SET bal = bal + 1 WHERE k = ?", k); err != nil {
						if !errors.Is(err, mvcc.ErrWriteConflict) {
							t.Error(err)
							return
						}
						ok = false
						break
					}
				}
				var err error
				if ok {
					_, err = sess.Exec("COMMIT")
				} else {
					_, err = sess.Exec("ROLLBACK")
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	st := db.Stats()
	return st.TxnCommits, st.TxnConflicts
}

// TestBoundedWaitConvertsAbortsToCommits compares the hot-key workload
// with bounded waiting on (default) and off (insta-abort). Scheduling
// on small machines can make either run near-serial, so the assertions
// are guarded: whenever the insta-abort run actually suffered
// conflicts, the bounded-wait run must commit at least as much and
// conflict no more.
func TestBoundedWaitConvertsAbortsToCommits(t *testing.T) {
	const sessions, txns, stmts, keys = 16, 50, 3, 4

	wait := newTxnDB(t, Config{}, keys)
	waitCommits, waitConflicts := runHotKeyLoop(t, wait, sessions, txns, stmts, keys)

	insta := newTxnDB(t, Config{ConflictWait: -1}, keys)
	instaCommits, instaConflicts := runHotKeyLoop(t, insta, sessions, txns, stmts, keys)

	t.Logf("bounded wait: %d commits, %d conflicts; insta-abort: %d commits, %d conflicts",
		waitCommits, waitConflicts, instaCommits, instaConflicts)
	if instaConflicts == 0 {
		t.Skip("insta-abort run saw no contention on this scheduler; nothing to compare")
	}
	if waitCommits < instaCommits {
		t.Errorf("bounded wait committed less than insta-abort: %d < %d", waitCommits, instaCommits)
	}
	if waitConflicts > instaConflicts {
		t.Errorf("bounded wait conflicted more than insta-abort: %d > %d", waitConflicts, instaConflicts)
	}
}
