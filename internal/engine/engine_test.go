package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/types"
)

func mustExec(t *testing.T, db *DB, q string, params ...types.Value) Result {
	t.Helper()
	res, err := db.Exec(q, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, q string, params ...types.Value) *Rows {
	t.Helper()
	rows, err := db.Query(q, params...)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return rows
}

// newAccountsDB builds the paper's running example (Figure 4): Account
// tables for tenants 17, 35, 42 in the Private Table Layout.
func newAccountsDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE Account17 (Aid INTEGER NOT NULL, Name VARCHAR(50), Hospital VARCHAR(50), Beds INTEGER)")
	mustExec(t, db, "CREATE UNIQUE INDEX pk17 ON Account17 (Aid)")
	mustExec(t, db, "INSERT INTO Account17 VALUES (1, 'Acme', 'St. Mary', 135), (2, 'Gump', 'State', 1042)")
	mustExec(t, db, "CREATE TABLE Account35 (Aid INTEGER NOT NULL, Name VARCHAR(50))")
	mustExec(t, db, "INSERT INTO Account35 VALUES (1, 'Ball')")
	mustExec(t, db, "CREATE TABLE Account42 (Aid INTEGER NOT NULL, Name VARCHAR(50), Dealers INTEGER)")
	mustExec(t, db, "INSERT INTO Account42 VALUES (1, 'Big', 65)")
	return db
}

func TestQ1PrivateLayout(t *testing.T) {
	db := newAccountsDB(t)
	// Query Q1 from the paper.
	rows := mustQuery(t, db, "SELECT Beds FROM Account17 WHERE Hospital = 'State'")
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 1042 {
		t.Errorf("Q1: %+v", rows.Data)
	}
	if rows.Columns[0] != "Beds" {
		t.Errorf("columns: %v", rows.Columns)
	}
}

func TestInsertSelectRoundTrip(t *testing.T) {
	db := newAccountsDB(t)
	res := mustExec(t, db, "INSERT INTO Account17 (Aid, Name) VALUES (3, 'New')")
	if res.RowsAffected != 1 {
		t.Errorf("RowsAffected = %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT Name, Hospital FROM Account17 WHERE Aid = 3")
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "New" || !rows.Data[0][1].IsNull() {
		t.Errorf("got %+v", rows.Data)
	}
}

func TestUniqueViolationThroughSQL(t *testing.T) {
	db := newAccountsDB(t)
	if _, err := db.Exec("INSERT INTO Account17 VALUES (1, 'Dup', NULL, NULL)"); err == nil {
		t.Error("duplicate PK should fail")
	}
}

func TestIndexScanUsedForPK(t *testing.T) {
	db := newAccountsDB(t)
	ex, err := db.Explain("SELECT Name FROM Account17 WHERE Aid = 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "IXSCAN") {
		t.Errorf("PK lookup should use the index:\n%s", ex)
	}
	rows := mustQuery(t, db, "SELECT Name FROM Account17 WHERE Aid = 2")
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "Gump" {
		t.Errorf("%+v", rows.Data)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newAccountsDB(t)
	res := mustExec(t, db, "UPDATE Account17 SET Beds = Beds + 1 WHERE Aid = 1")
	if res.RowsAffected != 1 {
		t.Errorf("update affected %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT Beds FROM Account17 WHERE Aid = 1")
	if rows.Data[0][0].Int != 136 {
		t.Errorf("Beds = %v", rows.Data[0][0])
	}
	res = mustExec(t, db, "DELETE FROM Account17 WHERE Beds > 1000")
	if res.RowsAffected != 1 {
		t.Errorf("delete affected %d", res.RowsAffected)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM Account17")
	if rows.Data[0][0].Int != 1 {
		t.Errorf("count after delete: %v", rows.Data[0][0])
	}
}

func TestParams(t *testing.T) {
	db := newAccountsDB(t)
	rows := mustQuery(t, db, "SELECT Name FROM Account17 WHERE Aid = ?", types.NewInt(2))
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "Gump" {
		t.Errorf("%+v", rows.Data)
	}
	if _, err := db.Query("SELECT Name FROM Account17 WHERE Aid = ?"); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestJoins(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE parent (id INTEGER NOT NULL, name VARCHAR(20))")
	mustExec(t, db, "CREATE UNIQUE INDEX ppk ON parent (id)")
	mustExec(t, db, "CREATE TABLE child (id INTEGER NOT NULL, parent INTEGER, val INTEGER)")
	mustExec(t, db, "CREATE INDEX cfk ON child (parent)")
	for i := 1; i <= 3; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO parent VALUES (%d, 'p%d')", i, i))
	}
	mustExec(t, db, "INSERT INTO child VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30)")

	// Comma join.
	rows := mustQuery(t, db, "SELECT p.name, c.val FROM parent p, child c WHERE p.id = c.parent AND p.id = 1 ORDER BY c.val")
	if len(rows.Data) != 2 || rows.Data[0][1].Int != 10 || rows.Data[1][1].Int != 20 {
		t.Errorf("comma join: %+v", rows.Data)
	}
	// Explicit JOIN.
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM parent p JOIN child c ON p.id = c.parent")
	if rows.Data[0][0].Int != 3 {
		t.Errorf("join count: %v", rows.Data[0][0])
	}
	// LEFT JOIN keeps parent 3 with NULL child.
	rows = mustQuery(t, db, "SELECT p.id, c.id FROM parent p LEFT JOIN child c ON p.id = c.parent ORDER BY p.id, c.id")
	if len(rows.Data) != 4 {
		t.Fatalf("left join rows: %+v", rows.Data)
	}
	last := rows.Data[3]
	if last[0].Int != 3 || !last[1].IsNull() {
		t.Errorf("unmatched parent: %+v", last)
	}
}

func TestAggregates(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE sales (region VARCHAR(10), amount INTEGER)")
	mustExec(t, db, "INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5), ('west', NULL)")
	rows := mustQuery(t, db, "SELECT region, COUNT(*), COUNT(amount), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales GROUP BY region ORDER BY region")
	if len(rows.Data) != 2 {
		t.Fatalf("groups: %+v", rows.Data)
	}
	east := rows.Data[0]
	if east[1].Int != 2 || east[2].Int != 2 || east[3].Int != 30 || east[4].Float != 15 || east[5].Int != 10 || east[6].Int != 20 {
		t.Errorf("east: %+v", east)
	}
	west := rows.Data[1]
	if west[1].Int != 2 || west[2].Int != 1 || west[3].Int != 5 {
		t.Errorf("west: %+v", west)
	}
	// HAVING.
	rows = mustQuery(t, db, "SELECT region FROM sales GROUP BY region HAVING SUM(amount) > 10")
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "east" {
		t.Errorf("having: %+v", rows.Data)
	}
	// Global aggregate over empty set.
	mustExec(t, db, "CREATE TABLE empty (x INTEGER)")
	rows = mustQuery(t, db, "SELECT COUNT(*), SUM(x) FROM empty")
	if rows.Data[0][0].Int != 0 || !rows.Data[0][1].IsNull() {
		t.Errorf("empty agg: %+v", rows.Data)
	}
}

func TestOrderLimitDistinct(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b VARCHAR(5))")
	mustExec(t, db, "INSERT INTO t VALUES (3, 'x'), (1, 'y'), (2, 'x'), (1, 'x')")
	rows := mustQuery(t, db, "SELECT a FROM t ORDER BY a DESC LIMIT 2")
	if len(rows.Data) != 2 || rows.Data[0][0].Int != 3 || rows.Data[1][0].Int != 2 {
		t.Errorf("order desc limit: %+v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT DISTINCT b FROM t ORDER BY b")
	if len(rows.Data) != 2 || rows.Data[0][0].Str != "x" {
		t.Errorf("distinct: %+v", rows.Data)
	}
	// ORDER BY a column not in the select list.
	rows = mustQuery(t, db, "SELECT b FROM t WHERE a < 3 ORDER BY a, b")
	if len(rows.Data) != 3 || rows.Data[0][0].Str != "x" || rows.Data[2][0].Str != "x" {
		t.Errorf("hidden sort key: %+v", rows.Data)
	}
	if len(rows.Columns) != 1 {
		t.Errorf("hidden key leaked into output: %v", rows.Columns)
	}
	// ORDER BY select alias.
	rows = mustQuery(t, db, "SELECT a + 10 AS shifted FROM t ORDER BY shifted LIMIT 1")
	if rows.Data[0][0].Int != 11 {
		t.Errorf("alias sort: %+v", rows.Data)
	}
}

// TestSubqueryFlattening is the paper's Test 1: the generic nested
// transformation must produce an efficient plan under the sophisticated
// optimizer, and a materialized TEMP under the naive one.
func TestSubqueryFlattening(t *testing.T) {
	q := "SELECT Beds FROM (SELECT Hospital, Beds FROM Account17 WHERE Aid > 0) AS A WHERE Hospital = 'State'"

	for _, mode := range []plan.Mode{plan.Sophisticated, plan.Naive} {
		db := Open(Config{Optimizer: mode})
		mustExec(t, db, "CREATE TABLE Account17 (Aid INTEGER NOT NULL, Name VARCHAR(50), Hospital VARCHAR(50), Beds INTEGER)")
		mustExec(t, db, "INSERT INTO Account17 VALUES (1, 'Acme', 'St. Mary', 135), (2, 'Gump', 'State', 1042)")
		rows := mustQuery(t, db, q)
		if len(rows.Data) != 1 || rows.Data[0][0].Int != 1042 {
			t.Errorf("mode %v: wrong result %+v", mode, rows.Data)
		}
		ex, _ := db.Explain(q)
		hasTemp := strings.Contains(ex, "TEMP")
		if mode == plan.Sophisticated && hasTemp {
			t.Errorf("sophisticated mode should flatten:\n%s", ex)
		}
		if mode == plan.Naive && !hasTemp {
			t.Errorf("naive mode should materialize:\n%s", ex)
		}
	}
}

func TestInSubquery(t *testing.T) {
	db := newAccountsDB(t)
	mustExec(t, db, "CREATE TABLE picks (id INTEGER)")
	mustExec(t, db, "INSERT INTO picks VALUES (2), (99)")
	rows := mustQuery(t, db, "SELECT Name FROM Account17 WHERE Aid IN (SELECT id FROM picks)")
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "Gump" {
		t.Errorf("in subquery: %+v", rows.Data)
	}
	// DML with IN subquery (the paper's §6.3 Phase (b) shape).
	res := mustExec(t, db, "UPDATE Account17 SET Beds = 0 WHERE Aid IN (SELECT id FROM picks)")
	if res.RowsAffected != 1 {
		t.Errorf("update via IN: %d", res.RowsAffected)
	}
	res = mustExec(t, db, "DELETE FROM Account17 WHERE Aid IN (SELECT id FROM picks)")
	if res.RowsAffected != 1 {
		t.Errorf("delete via IN: %d", res.RowsAffected)
	}
}

func TestCastAndExpressions(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE u (s VARCHAR(10), n INTEGER)")
	mustExec(t, db, "INSERT INTO u VALUES ('135', 2)")
	rows := mustQuery(t, db, "SELECT CAST(s AS INTEGER) + n, CAST(n AS VARCHAR(10)) FROM u")
	if rows.Data[0][0].Int != 137 || rows.Data[0][1].Str != "2" {
		t.Errorf("cast: %+v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT s FROM u WHERE s LIKE '1_5'")
	if len(rows.Data) != 1 {
		t.Errorf("like: %+v", rows.Data)
	}
}

func TestNullSemantics(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE n (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO n VALUES (1, NULL), (2, 5), (NULL, NULL)")
	// NULL comparisons drop rows.
	rows := mustQuery(t, db, "SELECT a FROM n WHERE b = 5")
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 2 {
		t.Errorf("null filter: %+v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM n WHERE b IS NULL")
	if rows.Data[0][0].Int != 2 {
		t.Errorf("is null: %+v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM n WHERE a IS NOT NULL")
	if rows.Data[0][0].Int != 2 {
		t.Errorf("is not null: %+v", rows.Data)
	}
	// NULL group key forms its own group.
	rows = mustQuery(t, db, "SELECT b, COUNT(*) FROM n GROUP BY b")
	if len(rows.Data) != 2 {
		t.Errorf("null groups: %+v", rows.Data)
	}
}

func TestDDLLifecycle(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INTEGER)") // no-op
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "ALTER TABLE t ADD COLUMN b VARCHAR(10)")
	rows := mustQuery(t, db, "SELECT a, b FROM t")
	if !rows.Data[0][1].IsNull() {
		t.Errorf("added column should read NULL: %+v", rows.Data)
	}
	mustExec(t, db, "CREATE INDEX ix ON t (a)")
	mustExec(t, db, "DROP INDEX ix ON t")
	mustExec(t, db, "DROP TABLE t")
	mustExec(t, db, "DROP TABLE IF EXISTS t") // no-op
	if _, err := db.Query("SELECT a FROM t"); err == nil {
		t.Error("query after drop should fail")
	}
}

func TestErrors(t *testing.T) {
	db := Open(Config{})
	cases := []string{
		"SELECT x FROM nosuch",
		"INSERT INTO nosuch VALUES (1)",
		"CREATE INDEX i ON nosuch (a)",
		"SELECT nosuchcol FROM t2",
	}
	mustExec(t, db, "CREATE TABLE t2 (a INTEGER)")
	for _, q := range cases {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	db := Open(Config{MemoryBytes: 1 << 20})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	db.ResetStats()
	mustQuery(t, db, "SELECT COUNT(*) FROM t")
	s := db.Stats()
	if s.Pool.LogicalReads[0] == 0 {
		t.Error("scan should register logical data reads")
	}
	if s.Tables != 1 || s.MetaBytes != 4096 {
		t.Errorf("meta accounting: %+v", s)
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	mustQuery(t, db, "SELECT COUNT(*) FROM t")
	s = db.Stats()
	if s.Pool.PhysicalReads[0] == 0 {
		t.Error("cold-cache scan should miss")
	}
}

func TestConcurrentSessions(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE acct (id INTEGER NOT NULL, bal INTEGER)")
	mustExec(t, db, "CREATE UNIQUE INDEX apk ON acct (id)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := (w*25 + i) % 50
				if i%3 == 0 {
					if _, err := db.Exec("UPDATE acct SET bal = bal + 1 WHERE id = ?", types.NewInt(int64(id))); err != nil {
						errs <- err
					}
				} else {
					if _, err := db.Query("SELECT bal FROM acct WHERE id = ?", types.NewInt(int64(id))); err != nil {
						errs <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, "SELECT SUM(bal) FROM acct")
	want := int64(50*100 + 8*25/3) // 66 updates (i=0,3,..,24 -> 9 per worker)
	_ = want
	if rows.Data[0][0].Int <= 50*100 {
		t.Errorf("updates lost: %v", rows.Data[0][0])
	}
}

func TestExplainShapes(t *testing.T) {
	db := newAccountsDB(t)
	ex, err := db.Explain("SELECT a.Name FROM Account17 a, Account35 b WHERE a.Aid = b.Aid")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "JOIN") {
		t.Errorf("join plan:\n%s", ex)
	}
	ex, err = db.Explain("SELECT COUNT(*) FROM Account17 GROUP BY Hospital")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "GRPBY") {
		t.Errorf("group plan:\n%s", ex)
	}
}
