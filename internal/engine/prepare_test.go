package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/types"
)

func TestPrepareQuery(t *testing.T) {
	db := newAccountsDB(t)
	stmt, err := db.Prepare("SELECT Name FROM Account17 WHERE Aid = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range map[int64]string{1: "Acme", 2: "Gump"} {
		rows, err := stmt.Query(types.NewInt(i))
		if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Str != want {
			t.Errorf("Query(%d): %+v %v", i, rows, err)
		}
	}
}

func TestPrepareExec(t *testing.T) {
	db := newAccountsDB(t)
	stmt, err := db.Prepare("UPDATE Account17 SET Beds = ? WHERE Aid = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec(types.NewInt(7), types.NewInt(1))
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("Exec: %v %d", err, res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT Beds FROM Account17 WHERE Aid = 1")
	if rows.Data[0][0].Int != 7 {
		t.Errorf("Beds = %v", rows.Data[0][0])
	}
	// Exec of a prepared SELECT is allowed (discarding rows).
	sel, _ := db.Prepare("SELECT Aid FROM Account17")
	if _, err := sel.Exec(); err != nil {
		t.Errorf("Exec of SELECT: %v", err)
	}
	// Query of a prepared UPDATE is not.
	if _, err := stmt.Query(types.NewInt(1), types.NewInt(1)); err == nil {
		t.Error("Query of UPDATE should fail")
	}
}

func TestPrepareInvalidatedByDDL(t *testing.T) {
	db := newAccountsDB(t)
	stmt, err := db.Prepare("SELECT Aid FROM Account17 WHERE Aid = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err != nil {
		t.Fatal(err)
	}
	// On-line schema change: add a column and an index; the cached plan
	// must be rebuilt, not crash or miss the new index.
	mustExec(t, db, "ALTER TABLE Account17 ADD COLUMN extra INTEGER")
	if _, err := stmt.Query(); err != nil {
		t.Fatalf("after ALTER: %v", err)
	}
	stmt2, _ := db.Prepare("SELECT Aid FROM Account17 WHERE Name = 'Acme'")
	if _, err := stmt2.Query(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE INDEX acc17_name ON Account17 (Name)")
	rows, err := stmt2.Query()
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("after CREATE INDEX: %v %+v", err, rows)
	}
	// Dropping the table makes the statement fail cleanly.
	mustExec(t, db, "DROP TABLE Account17")
	if _, err := stmt.Query(); err == nil {
		t.Error("prepared statement on dropped table should fail")
	}
}

func TestPrepareDDLRejected(t *testing.T) {
	db := Open(Config{})
	if _, err := db.Prepare("CREATE TABLE t (a INTEGER)"); err == nil {
		t.Error("preparing DDL should fail")
	}
	if _, err := db.Prepare("SELECT ??? FROM"); err == nil {
		t.Error("preparing bad SQL should fail")
	}
}

func TestPrepareConcurrent(t *testing.T) {
	db := Open(Config{})
	mustExec(t, db, "CREATE TABLE kv (k INTEGER NOT NULL, v INTEGER)")
	mustExec(t, db, "CREATE UNIQUE INDEX kv_pk ON kv (k)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i))
	}
	stmt, err := db.Prepare("SELECT v FROM kv WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				rows, err := stmt.Query(types.NewInt(int64((w + i) % 50)))
				if err != nil {
					errs <- err
					return
				}
				if len(rows.Data) != 1 {
					errs <- fmt.Errorf("rows: %d", len(rows.Data))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
