package engine

import (
	"encoding/json"
	"fmt"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/mvcc"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Crash recovery: rebuild a consistent database from the durable halves
// (disk pages + log prefix) alone.
//
// The log is redo-only, so recovery replays forward and never undoes
// page bytes. That works because of two run-time rules. First, the
// no-steal gate: a page carrying an in-flight transaction's mutation is
// never written back, so the disk holds no bytes from transactions that
// were still open at the crash ("losers" — whether a single autocommit
// statement or a multi-statement BEGIN block). Second, aborted
// transactions append their logical compensations (through the same
// loggers) before their KAbort, so replaying an aborted transaction
// start to finish lands on its compensated — invisible — state; a
// partial rollback to a SAVEPOINT logs its compensations the same way,
// so savepoint markers themselves need no replay. Recovery therefore
// replays every record whose transaction has a durable terminator
// (KCommit or KAbort) and skips loser records entirely; per-page
// idempotence comes from the pageLSN skip (apply a record iff it is
// newer than the page).
//
// Aborted transactions must replay because their structural side effects
// survive an abort: a B+tree split or a heap page added while backfilling
// stays in place even though the rows were compensated away, and later
// committed records depend on that structure. Losers cannot be depended
// on the same way — even under fine-grained conflict control, a session
// applies each statement's physical writes while holding the table's
// exclusive latch, so a loser's records for a table form contiguous
// statement-sized runs exactly as under whole-statement write locks,
// and the no-steal gate kept every page it dirtied out of the disk
// image: nothing durable follows it on the same pages. The conflict
// machinery around the latch — bounded waits on version chains, the
// reserve/publish commit pipeline — is volatile mvcc state the log
// never records: a reserved-but-unpublished commit either has a durable
// KCommit (it replays committed) or not (it is a loser and is skipped),
// and publication order only ever gated in-memory visibility, which
// every crash discards wholesale. Durability-before-visibility still
// holds because a timestamp publishes only after the commit record's
// group sync returns; commit timestamps themselves are rebuilt fresh by
// the new Manager.

// RecoverReport summarizes what recovery found and did.
type RecoverReport struct {
	// DurableRecords is the log size in records after the torn tail was
	// trimmed; CheckpointLSN is the last durable checkpoint (0 if none).
	DurableRecords int
	CheckpointLSN  wal.LSN
	// Committed / Aborted / Losers partition the transactions seen
	// (an autocommit statement is a one-statement transaction).
	Committed int
	Aborted   int
	Losers    int
	// Replayed page mutations vs Skipped (already on disk per pageLSN)
	// vs Unallocated (page since freed; nothing to redo).
	Replayed    int
	Skipped     int
	Unallocated int
	// FreedPages executed committed deferred frees; OrphanPages reclaimed
	// allocations no durable structure references (loser page allocs and
	// abandoned backfills).
	FreedPages  int
	OrphanPages int
}

// Recover rebuilds a database from a crash image: reopen the log
// (trimming any torn tail), replay the durable history onto the disk
// image, rebuild the catalog from the last checkpoint plus replayed
// schema changes, reclaim unreferenced pages, and verify invariants.
// The rebuilt state is left dirty in the buffer pool — recovery itself
// writes no checkpoint, so running it twice from the same image is
// byte-identical (idempotence).
func Recover(img *CrashImage) (*DB, *RecoverReport, error) {
	db, rep, _, err := recoverImpl(img, false)
	return db, rep, err
}

// recoverImpl is Recover with an optional replica mode. A replica's
// "losers" are not dead: they are the PRIMARY's open transactions, whose
// remaining records (and terminators) arrive later over the stream. So
// in replica mode their physical records replay too (the primary's log
// is the truth about page state), their row-level effects are journaled
// — with pre-images captured at replay position, exactly what the live
// applier would have recorded — for the applier to resume, and their
// buffered metadata (KCatalog, KPageFree) stays buffered instead of
// applying. Three further differences: every KPageAlloc is executed up
// front (on a replica allocation happens at apply time, which a crash
// can separate from the record's ingest), pages allocated by open
// transactions are exempt from the orphan sweep, and the structural
// invariant check is skipped when open transactions exist (their
// mid-statement state is consistent only at applied-commit boundaries).
func recoverImpl(img *CrashImage, replica bool) (*DB, *RecoverReport, []journalEntry, error) {
	if img.Log == nil {
		return nil, nil, nil, fmt.Errorf("engine: cannot recover without a WAL")
	}
	img.Log.Reopen()
	if replica {
		// Reopen cleared the active map (on a primary those statements
		// died with the crash). Rebuild it: the no-steal gate must keep
		// treating the primary's open transactions as live, both during
		// the replay below and for the resumed apply loop.
		img.Log.RecoverActive()
	}
	img.Disk.SetCrashed(false)
	img.Disk.SetFault(nil) // recovery is a fresh boot: planted faults die with the old process

	cfg := img.Cfg
	pool := storage.NewBufferPool(img.Disk, cfg.MemoryBytes)
	img.Log.AttachPool(pool)
	pool.SetWALGate(img.Log)

	recs := img.Log.DurableRecords()
	rep := &RecoverReport{DurableRecords: len(recs)}

	// Pass 1: find the last checkpoint and classify transactions.
	snap := &catalog.Snapshot{}
	committed := map[uint64]bool{}
	terminated := map[uint64]bool{}
	seen := map[uint64]bool{}
	for _, r := range recs {
		switch r.Kind {
		case wal.KCheckpoint:
			var p ckptPayload
			if err := json.Unmarshal(r.Data, &p); err != nil {
				return nil, rep, nil, fmt.Errorf("engine: checkpoint decode at LSN %d: %w", r.LSN, err)
			}
			snap = p.Catalog
			rep.CheckpointLSN = r.LSN
		case wal.KCommit:
			committed[r.Txn] = true
			terminated[r.Txn] = true
		case wal.KAbort:
			terminated[r.Txn] = true
		}
		if r.Txn != 0 {
			seen[r.Txn] = true
		}
	}
	for id := range seen {
		switch {
		case committed[id]:
			rep.Committed++
		case terminated[id]:
			rep.Aborted++
		default:
			rep.Losers++
		}
	}

	// Pass 2: replay terminated transactions in log order. pageLSN tracks
	// each touched page's progress (seeded from the disk's durable
	// stamp); deferred frees from committed statements run after the
	// loop so earlier records can still redo onto those pages.
	pageLSN := map[storage.PageID]wal.LSN{}
	cur := func(id storage.PageID) wal.LSN {
		if lsn, ok := pageLSN[id]; ok {
			return lsn
		}
		lsn := img.Disk.PageLSN(id)
		pageLSN[id] = lsn
		return lsn
	}
	type freeReq struct {
		page storage.PageID
	}
	var frees []freeReq
	var journal []journalEntry
	openAlloc := map[storage.PageID]bool{}
	if replica {
		// A replica allocates pages when it APPLIES a KPageAlloc, which a
		// crash can separate from the record's ingest; on a primary the
		// allocation preceded the record and the Disk object carries it
		// across the crash. Execute every retained alloc up front
		// (idempotently) so the physical redo below never meets an
		// unallocated page, and remember which allocations belong to open
		// transactions — the orphan sweep must not reclaim them.
		for _, r := range recs {
			if r.Kind != wal.KPageAlloc {
				continue
			}
			if err := img.Disk.AllocAt(r.Page, r.Cat); err != nil {
				return nil, rep, nil, err
			}
			if r.Txn != 0 && !terminated[r.Txn] {
				openAlloc[r.Page] = true
			}
		}
	}
	ckpt := rep.CheckpointLSN
	frameStart := img.Log.Base()
	for _, r := range recs {
		start := frameStart
		frameStart = r.LSN
		open := r.Txn != 0 && !terminated[r.Txn]
		if open && !replica {
			continue // loser: its pages never reached disk
		}
		// Metadata replay: schema-shaped records older than the
		// checkpoint are already reflected in its snapshot. An open
		// transaction's catalog changes and page frees stay buffered (the
		// journal) until its commit streams in; its structural records
		// (heap growth, root moves) apply like an aborted transaction's —
		// structure survives either outcome.
		switch r.Kind {
		case wal.KBegin:
			if open {
				journal = append(journal, journalEntry{rec: r})
			}
			continue
		case wal.KCatalog:
			if open {
				journal = append(journal, journalEntry{rec: r})
				continue
			}
			if r.LSN > ckpt {
				ch, err := catalog.DecodeDDLChange(r.Data)
				if err != nil {
					return nil, rep, nil, err
				}
				if err := snap.Apply(ch); err != nil {
					return nil, rep, nil, err
				}
			}
			continue
		case wal.KHeapNewPage:
			if r.LSN > ckpt {
				if err := snap.AddHeapPage(r.Table, r.Page); err != nil {
					return nil, rep, nil, err
				}
			}
			// Fall through below to the physical redo (page format).
		case wal.KBTreeRoot:
			if r.LSN > ckpt {
				snap.SetRoot(r.Page, r.Page2)
			}
			continue
		case wal.KPageFree:
			if open {
				journal = append(journal, journalEntry{rec: r})
				continue
			}
			if committed[r.Txn] {
				frees = append(frees, freeReq{page: r.Page})
			}
			continue
		case wal.KCommit, wal.KAbort, wal.KCheckpoint, wal.KPageAlloc, wal.KSavepoint:
			continue
		}
		// Physical redo of page-addressed records.
		if !img.Disk.Allocated(r.Page) {
			rep.Unallocated++
			continue
		}
		if open {
			// Journal the row-level effect with its pre-image read at this
			// replay position — identical to what the live applier recorded
			// before the crash, because replay reproduces page state in log
			// order and the no-steal gate kept open-transaction bytes off
			// the disk image.
			switch r.Kind {
			case wal.KHeapInsert, wal.KHeapInsertAt:
				journal = append(journal, journalEntry{rec: r})
			case wal.KHeapDelete, wal.KHeapUpdate:
				pre, err := storage.ReadSlot(pool, r.Page, r.Slot)
				if err != nil {
					return nil, rep, nil, err
				}
				journal = append(journal, journalEntry{rec: r, pre: pre})
			}
		}
		if r.LSN <= cur(r.Page) {
			rep.Skipped++
			continue
		}
		if err := redoPage(pool, r); err != nil {
			return nil, rep, nil, fmt.Errorf("engine: redo %s at LSN %d: %w", r.Kind, r.LSN, err)
		}
		pageLSN[r.Page] = r.LSN
		pool.StampLSN(r.Page, r.LSN, start)
		rep.Replayed++
	}

	for _, f := range frees {
		if img.Disk.Allocated(f.page) {
			if err := pool.FreePage(f.page); err != nil {
				return nil, rep, nil, err
			}
			rep.FreedPages++
		}
	}

	// Rebuild the live catalog from the replayed model and recompute the
	// derived state the log deliberately does not carry.
	txns := mvcc.NewManager()
	cat := catalog.Restore(pool, catalog.Config{
		MemoryBytes:       cfg.MemoryBytes,
		MetaBytesPerTable: cfg.MetaBytesPerTable,
		InsertMode:        cfg.InsertMode,
		Versions:          txns,
	}, snap)
	if err := cat.RecomputeAll(); err != nil {
		return nil, rep, nil, err
	}

	// Orphan sweep: free any disk page no durable structure references —
	// loser allocations and abandoned index backfills. Tree walks happen
	// after replay, so the reachable sets are final. On a replica, pages
	// allocated by still-open transactions are exempt: a split mid-flight
	// at the cut point may have allocated pages not yet linked into any
	// structure, and the stream's next records will write into them.
	referenced := map[storage.PageID]bool{}
	for _, name := range cat.TableNames() {
		t, err := cat.Table(name)
		if err != nil {
			return nil, rep, nil, err
		}
		for _, p := range t.Heap.Pages() {
			referenced[p] = true
		}
		for _, ix := range t.Indexes {
			pages, err := ix.Tree.Pages()
			if err != nil {
				return nil, rep, nil, err
			}
			for _, p := range pages {
				referenced[p] = true
			}
		}
	}
	for _, id := range img.Disk.PageIDs() {
		if !referenced[id] && !openAlloc[id] {
			if err := pool.FreePage(id); err != nil {
				return nil, rep, nil, err
			}
			rep.OrphanPages++
		}
	}

	// The recovered database must satisfy every structural invariant —
	// except a replica with open transactions, whose mid-statement state
	// (a heap row inserted, its index entry still in flight) is by design
	// consistent only at applied-commit boundaries.
	if !replica || rep.Losers == 0 {
		for _, name := range cat.TableNames() {
			t, err := cat.Table(name)
			if err != nil {
				return nil, rep, nil, err
			}
			if err := t.CheckInvariants(); err != nil {
				return nil, rep, nil, fmt.Errorf("engine: post-recovery invariant violation on %s: %w", name, err)
			}
		}
	}

	var plans *planCache
	if cfg.PlanCacheSize > 0 {
		plans = newPlanCache(cfg.PlanCacheSize)
	}
	db := &DB{
		cfg:           cfg,
		disk:          img.Disk,
		pool:          pool,
		cat:           cat,
		planner:       plan.New(cat, cfg.Optimizer),
		plans:         plans,
		log:           img.Log,
		txns:          txns,
		conflictWait:  resolveConflictWait(cfg.ConflictWait),
		admissionWait: resolveConflictWait(cfg.ConflictWait) * admissionWaitFactor,
		gates:         make(map[string]*writeGate),
		recoveries:    img.recoveries + 1,
		replayedRecs:  img.replayedRecs + int64(rep.Replayed),
	}
	return db, rep, journal, nil
}

// redoPage applies one page-addressed record. The pageLSN check has
// already established the page is in the exact pre-record state.
func redoPage(pool *storage.BufferPool, r *wal.Record) error {
	switch r.Kind {
	case wal.KHeapNewPage:
		return storage.ReplayHeapInit(pool, r.Page)
	case wal.KHeapInsert:
		return storage.ReplayHeapInsert(pool, r.Page, r.Slot, r.Data)
	case wal.KHeapInsertAt:
		return storage.ReplayHeapInsertAt(pool, r.Page, r.Slot, r.Data)
	case wal.KHeapDelete:
		return storage.ReplayHeapDelete(pool, r.Page, r.Slot)
	case wal.KHeapUpdate:
		return storage.ReplayHeapUpdate(pool, r.Page, r.Slot, r.Data)
	case wal.KBTreeInit:
		return btree.ReplayInit(pool, r.Page)
	case wal.KBTreeInsert:
		return btree.ReplayInsert(pool, r.Page, r.Key, r.RID)
	case wal.KBTreeDelete:
		return btree.ReplayDelete(pool, r.Page, r.Key)
	case wal.KBTreeUpdate:
		return btree.ReplayUpdate(pool, r.Page, r.Key, r.RID)
	case wal.KBTreeImage:
		return btree.ReplayImage(pool, r.Page, r.Data)
	}
	return fmt.Errorf("engine: unexpected redo kind %s", r.Kind)
}
