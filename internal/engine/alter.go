package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/mvcc"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/wal"
)

// execAlterOnline runs a column-shape ALTER without fencing off the
// rest of the database. Unlike execDDL it holds ddlMu only SHARED — the
// same posture as a DML statement — so concurrent queries, writes, and
// whole open transactions keep running; only the target table's write
// latch is held, and only for the metadata flip, never for a data scan.
//
// The protocol is publish-then-migrate:
//
//  1. Compute the successor column list under the table's write latch.
//     Every supported ALTER keeps the grow-only physical invariant
//     (see internal/schemaver): ADD appends a slot, DROP flips a flag
//     in place, WIDEN changes a declared type in place. No row needs
//     rewriting for the new schema to be readable.
//  2. Log the change (durability before visibility) as a committed
//     one-record transaction.
//  3. Stamp the new version with a fresh commit timestamp via
//     mvcc.StampDDL and publish it onto the table's schema chain. The
//     stamp is strictly newer than every pre-existing snapshot, so
//     in-flight transactions keep planning and reading under the
//     version pinned at their begin (see DB.planForTx) while
//     statements that start afterwards see the new schema.
//  4. Hand the table to the background backfiller, which lazily
//     rewrites stale row encodings in small yielding batches.
//
// Open transactions are NOT rejected — that is the point. The fenced
// path (execDDL) remains for structural DDL: CREATE/DROP TABLE and
// CREATE/DROP INDEX move pages around and so still serialize against
// everything (CREATE INDEX in particular scans the heap; keeping it
// fenced is a documented exception to online evolution).
func (db *DB) execAlterOnline(st sql.Statement) error {
	if db.readOnly.Load() {
		return ErrReadOnlyReplica
	}
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()

	var (
		table string
		ch    *catalog.DDLChange
	)
	switch st := st.(type) {
	case *sql.AlterAddColumnStmt:
		table = st.Table
	case *sql.AlterDropColumnStmt:
		table = st.Table
	case *sql.AlterColumnTypeStmt:
		table = st.Table
	default:
		return fmt.Errorf("engine: not an online ALTER: %T", st)
	}
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}

	t.Mu.Lock()
	defer t.Mu.Unlock()

	var cols []catalog.Column
	switch st := st.(type) {
	case *sql.AlterAddColumnStmt:
		col := catalog.Column{Name: st.Col.Name, Type: st.Col.Type, NotNull: st.Col.NotNull}
		cols, err = t.ComputeAddColumn(col)
		ch = &catalog.DDLChange{Op: catalog.OpAddColumn, Table: t.Name, Cols: []catalog.Column{col}}
	case *sql.AlterDropColumnStmt:
		cols, err = t.ComputeDropColumn(st.Col)
		ch = &catalog.DDLChange{Op: catalog.OpDropColumn, Table: t.Name,
			Cols: []catalog.Column{{Name: st.Col}}}
	case *sql.AlterColumnTypeStmt:
		cols, err = t.ComputeWidenColumn(st.Col, st.Type)
		ch = &catalog.DDLChange{Op: catalog.OpWidenColumn, Table: t.Name,
			Cols: []catalog.Column{{Name: st.Col, Type: st.Type}}}
	}
	if err != nil {
		return err
	}

	// Durability before visibility: the schema change must be on the log
	// before any snapshot can observe it, or a crash after a post-ALTER
	// write would recover rows no surviving schema explains.
	if db.log != nil {
		var scope *wal.Scope
		scope, err = db.log.Begin()
		if err != nil {
			return err
		}
		if err = scope.CatalogChange(ch.Encode()); err != nil {
			scope.Abort()
			return err
		}
		if err = scope.Commit(); err != nil {
			scope.Abort()
			return err
		}
	}

	// Publish. StampDDL burns one commit timestamp through the ordinary
	// pipeline, so the version's stamp is strictly newer than every
	// snapshot pinned before this line — exactly the row-MVCC rule.
	ts := db.txns.StampDDL()
	db.cat.PublishSchema(t, cols, ts)
	if db.plans != nil {
		// Cached plans key on the catalog version, which PublishSchema
		// bumped; purging just releases their memory promptly.
		db.plans.purge()
	}
	db.backfill().enqueue(t.Name)
	return nil
}

// planForTx plans st for a specific transaction: a snapshot pinned
// before the newest schema publication replans under its own schema
// epoch; everything else takes the ordinary cached path.
func (db *DB) planForTx(key string, st sql.Statement, tx *mvcc.Txn) (plan.Node, error) {
	if tx != nil && tx.BeginTS() < db.cat.SchemaTS() {
		return db.planAsOf(st, tx.BeginTS())
	}
	return db.planFor(key, st)
}

// planAsOf plans st under the schema versions visible at ts. The
// statement is re-parsed from its printed form so the planner gets a
// private AST: the optimizer rewrites ASTs in place, and the shared
// AST object may concurrently be planned under the newest schema by
// another session. The plan is never cached — old-snapshot plans die
// with their transaction, and the cache key (text, catalog version)
// has no epoch dimension.
func (db *DB) planAsOf(st sql.Statement, ts uint64) (plan.Node, error) {
	fresh, err := sql.Parse(st.String())
	if err != nil {
		return nil, fmt.Errorf("engine: replan as-of snapshot: %w", err)
	}
	p := &plan.Planner{Cat: db.cat, Mode: db.cfg.Optimizer, AsOf: ts, AsOfSet: true}
	return p.PlanStatement(fresh)
}
