package engine

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrReadOnlyReplica rejects any statement that would write — DML, DDL,
// or a savepoint — on a database opened as a replication follower. The
// follower's log is a byte-for-byte mirror of the primary's stream; a
// local append would fork it.
var ErrReadOnlyReplica = errors.New("engine: database is a read-only replica")

// SetReadOnly flips the replica write fence. OpenReplica sets it; a
// promotion (not yet implemented — see DESIGN.md §16) would clear it.
func (db *DB) SetReadOnly(v bool) { db.readOnly.Store(v) }

// ReadOnly reports whether the write fence is up.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// NoteReplShipped records the furthest stream position handed to any
// subscriber (primary-side telemetry; monotonic).
func (db *DB) NoteReplShipped(lsn wal.LSN) {
	for {
		cur := db.replShippedLSN.Load()
		if uint64(lsn) <= cur {
			return
		}
		if db.replShippedLSN.CompareAndSwap(cur, uint64(lsn)) {
			return
		}
	}
}

// NoteReplAck records a subscriber's applied-position acknowledgement
// (primary-side telemetry; keeps the furthest confirmed position).
func (db *DB) NoteReplAck(applied wal.LSN) {
	db.replAckRounds.Add(1)
	for {
		cur := db.replAckedLSN.Load()
		if uint64(applied) <= cur {
			return
		}
		if db.replAckedLSN.CompareAndSwap(cur, uint64(applied)) {
			return
		}
	}
}

// ReplImage is everything a follower needs to bootstrap: a page-level
// disk snapshot taken just after a checkpoint, the retained log tail
// (base..durable end — open transactions at snapshot time are covered
// because truncation respects the oldest active scope), and the
// primary's configuration so both sides agree on page size and layout.
// JSON-encodable for the wire.
type ReplImage struct {
	Disk    *storage.DiskImage `json:"disk"`
	LogBase wal.LSN            `json:"log_base"`
	Log     []byte             `json:"log"`
	Cfg     Config             `json:"cfg"`
}

// Encode serializes the image for shipping.
func (img *ReplImage) Encode() ([]byte, error) { return json.Marshal(img) }

// DecodeReplImage parses a shipped bootstrap image.
func DecodeReplImage(b []byte) (*ReplImage, error) {
	img := &ReplImage{}
	if err := json.Unmarshal(b, img); err != nil {
		return nil, fmt.Errorf("engine: decode replica image: %w", err)
	}
	if img.Disk == nil {
		return nil, errors.New("engine: replica image has no disk snapshot")
	}
	return img, nil
}

// ReplImage produces a follower bootstrap image. It holds the DDL fence
// exclusively — no statement is mid-flight — checkpoints (flushing all
// committed page state and shrinking the tail the follower must
// replay), then snapshots disk and retained log together. Open session
// transactions are fine: the no-steal gate kept their bytes off disk,
// truncation kept their log records, and replica recovery journals
// them for the follower's applier.
func (db *DB) ReplImage() (*ReplImage, error) {
	if db.log == nil {
		return nil, errors.New("engine: replication requires the WAL (DisableWAL is set)")
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if err := db.checkpointLocked(); err != nil {
		return nil, err
	}
	base, end := db.log.DurableBounds()
	var buf []byte
	if end > base {
		b, next, err := db.log.ReadDurable(base, int(end-base))
		if err != nil {
			return nil, err
		}
		if next != end {
			return nil, fmt.Errorf("engine: short log read for replica image (got %d, want %d)", next, end)
		}
		buf = b
	}
	return &ReplImage{
		Disk:    db.disk.Snapshot(),
		LogBase: base,
		Log:     buf,
		Cfg:     db.cfg,
	}, nil
}

// OpenReplica materializes a follower from a bootstrap image: restore
// the disk and the mirrored log, run replica-mode recovery (replaying
// the retained tail, journaling the primary's open transactions), and
// hand back the read-only DB plus the applier that will consume the
// live stream from the durable horizon onward.
func OpenReplica(img *ReplImage) (*DB, *Applier, error) {
	cfg := img.Cfg
	if cfg.DisableWAL {
		return nil, nil, errors.New("engine: replica image from a WAL-less primary")
	}
	disk := storage.RestoreDisk(img.Disk)
	disk.ReadLatency = cfg.ReadLatency
	log := wal.RestoreLog(wal.Config{
		SyncLatency:   cfg.SyncLatency,
		NoGroupCommit: cfg.NoGroupCommit,
	}, img.LogBase, img.Log)
	return RecoverReplica(&CrashImage{Disk: disk, Log: log, Cfg: cfg})
}

// RecoverReplica restarts a crashed follower from its own crash image
// (the same shape a primary restart uses), preserving replica-mode
// semantics: the primary's open transactions are replayed physically
// and re-journaled into a fresh applier, and the write fence goes up
// before the DB is returned.
func RecoverReplica(img *CrashImage) (*DB, *Applier, error) {
	db, _, journal, err := recoverImpl(img, true)
	if err != nil {
		return nil, nil, err
	}
	db.readOnly.Store(true)
	a := newApplier(db)
	if err := a.resume(journal); err != nil {
		return nil, nil, err
	}
	return db, a, nil
}
