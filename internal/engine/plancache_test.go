package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/types"
)

func newCacheTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{})
	mustExec := func(q string) {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE acct (id INTEGER, name VARCHAR(20), region VARCHAR(8))")
	mustExec("CREATE INDEX acct_id ON acct (id)")
	for i := 0; i < 20; i++ {
		mustExec(fmt.Sprintf("INSERT INTO acct (id, name, region) VALUES (%d, 'n%d', 'r%d')", i, i, i%3))
	}
	return db
}

// TestPlanCacheHits checks that repeated ad-hoc statements are planned
// once and served from the cache afterwards.
func TestPlanCacheHits(t *testing.T) {
	db := newCacheTestDB(t)
	db.plans.mu.Lock()
	db.plans.hits, db.plans.misses = 0, 0
	db.plans.mu.Unlock()

	const q = "SELECT name FROM acct WHERE id = 7"
	for i := 0; i < 5; i++ {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != 1 || rows.Data[0][0].String() != "n7" {
			t.Fatalf("bad result: %+v", rows.Data)
		}
	}
	hits, misses := db.plans.counters()
	if misses != 1 || hits != 4 {
		t.Errorf("hits=%d misses=%d, want 4/1", hits, misses)
	}
}

// TestPlanCacheDDLInvalidation checks that a schema change replans
// cached statements instead of serving stale plans.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := newCacheTestDB(t)
	const q = "SELECT * FROM acct WHERE id = 3"
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 3 {
		t.Fatalf("columns: %v", rows.Columns)
	}
	if _, err := db.Exec("ALTER TABLE acct ADD COLUMN extra INT"); err != nil {
		t.Fatal(err)
	}
	rows, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 4 {
		t.Errorf("stale plan after DDL: columns %v", rows.Columns)
	}
}

// TestPlanCacheConcurrentStateful runs a statement whose plan carries
// per-execution state (an IN subquery) from many goroutines; the cache
// must clone the plan per execution so results stay correct (run under
// -race to catch sharing).
func TestPlanCacheConcurrentStateful(t *testing.T) {
	db := newCacheTestDB(t)
	const q = "SELECT COUNT(*) FROM acct WHERE region IN (SELECT region FROM acct WHERE id = ?)"
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rows, err := db.Query(q, types.NewInt(int64(g%3)))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				// Regions cycle over 3 values across 20 rows: region of
				// id g%3 is shared by 7 rows for r0 (ids 0,3,..18) and 7
				// and 6 for r1/r2.
				want := int64(7)
				if g%3 == 2 {
					want = 6
				}
				if got := rows.Data[0][0].Int; got != want {
					t.Errorf("g=%d: count %d, want %d", g, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPlanCacheConcurrentSharedPlan hammers one stateless statement
// from many goroutines; under -race this verifies a shared cached plan
// really is read-only during execution.
func TestPlanCacheConcurrentSharedPlan(t *testing.T) {
	db := newCacheTestDB(t)
	const q = "SELECT a.name, b.name FROM acct a, acct b WHERE a.id = b.id AND a.region = 'r1'"
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rows, err := db.Query(q)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(rows.Data) != 7 {
					t.Errorf("rows: %d, want 7", len(rows.Data))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestExecSelectStreams checks DB.Exec on a SELECT: no error, zero
// rows affected, and the plan comes from the same cache.
func TestExecSelectStreams(t *testing.T) {
	db := newCacheTestDB(t)
	res, err := db.Exec("SELECT * FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 0 {
		t.Errorf("rows affected %d, want 0", res.RowsAffected)
	}
}

// TestPlanCacheDisabled covers the opt-out path.
func TestPlanCacheDisabled(t *testing.T) {
	db := Open(Config{PlanCacheSize: -1})
	if db.plans != nil {
		t.Fatal("cache should be disabled")
	}
	if _, err := db.Exec("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (x) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT x FROM t")
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("query: %v, %v", rows, err)
	}
}
