package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
	"repro/internal/wal"
)

// rowsByID returns id -> val for a two-column (id INT, val TEXT) table.
func rowsByID(t *testing.T, db *DB, table string) map[int64]string {
	t.Helper()
	rows, err := db.Query(fmt.Sprintf("SELECT id, val FROM %s", table))
	if err != nil {
		t.Fatalf("query %s: %v", table, err)
	}
	out := make(map[int64]string, len(rows.Data))
	for _, r := range rows.Data {
		out[r[0].Int] = r[1].Str
	}
	return out
}

func TestRecoverCommittedVisible(t *testing.T) {
	db := Open(Config{MemoryBytes: 256 << 10, PageSize: 1024, CheckpointBytes: -1})
	mustExec(t, db, "CREATE TABLE accounts (id INT NOT NULL, val TEXT)")
	mustExec(t, db, "CREATE UNIQUE INDEX accounts_pk ON accounts (id)")
	want := map[int64]string{}
	for i := 0; i < 60; i++ {
		mustExec(t, db, "INSERT INTO accounts VALUES (?, ?)",
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%03d", i)))
		want[int64(i)] = fmt.Sprintf("v%03d", i)
	}
	mustExec(t, db, "UPDATE accounts SET val = 'patched' WHERE id < 10")
	for i := 0; i < 10; i++ {
		want[int64(i)] = "patched"
	}
	mustExec(t, db, "DELETE FROM accounts WHERE id >= 50")
	for i := 50; i < 60; i++ {
		delete(want, int64(i))
	}

	db2, rep, err := Recover(db.Crash())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	if got := rowsByID(t, db2, "accounts"); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered rows mismatch:\n got %v\nwant %v", got, want)
	}
	// The index survived and answers point queries.
	rows, err := db2.Query("SELECT val FROM accounts WHERE id = 7")
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("index lookup after recovery: rows=%v err=%v", rows, err)
	}
	if s := db2.Stats(); s.Recoveries != 1 || s.RecoveryReplayed == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if rep.Losers != 0 {
		t.Fatalf("unexpected losers in clean crash: %+v", rep)
	}
	// The recovered database accepts new statements.
	mustExec(t, db2, "INSERT INTO accounts VALUES (100, 'after')")
}

func TestRecoverDiscardsUncommittedTail(t *testing.T) {
	db := Open(Config{MemoryBytes: 256 << 10, PageSize: 1024, CheckpointBytes: -1})
	mustExec(t, db, "CREATE TABLE t (id INT, val TEXT)")
	// Crash on the 40th WAL/disk operation: mid-workload, inside some
	// statement's append sequence.
	plan := wal.InstallCrashPlan(40, db.Disk(), db.WAL())
	want := map[int64]string{}
	var failed int64 = -1
	for i := 0; i < 30; i++ {
		_, err := db.Exec("INSERT INTO t VALUES (?, ?)", types.NewInt(int64(i)), types.NewString("x"))
		if err != nil {
			failed = int64(i)
			break
		}
		want[int64(i)] = "x"
	}
	if !plan.Fired() || failed < 0 {
		t.Fatalf("crash plan never fired (failed=%d)", failed)
	}
	db2, rep, err := Recover(db.Crash())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	got := rowsByID(t, db2, "t")
	// Every acknowledged insert is visible; the failed one must be
	// all-or-nothing (its commit may or may not have reached the log
	// before the crash).
	withFailed := make(map[int64]string, len(want)+1)
	for k, v := range want {
		withFailed[k] = v
	}
	withFailed[failed] = "x"
	if !reflect.DeepEqual(got, want) && !reflect.DeepEqual(got, withFailed) {
		t.Fatalf("recovered rows violate atomicity:\n got %v\nacked %v", got, want)
	}
}

func TestRecoverCrashDuringIndexBackfill(t *testing.T) {
	db := Open(Config{MemoryBytes: 256 << 10, PageSize: 1024, CheckpointBytes: -1})
	mustExec(t, db, "CREATE TABLE t (id INT, val TEXT)")
	for i := 0; i < 80; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", types.NewInt(int64(i)), types.NewString("x"))
	}
	// Count how many WAL/disk ops the CREATE INDEX costs, then re-run
	// with the crash planted in the middle of the backfill.
	probe := wal.InstallCrashPlan(wal.NeverCrash, db.Disk(), db.WAL())
	mustExec(t, db, "CREATE INDEX t_id ON t (id)")
	mid := probe.Ops() / 2
	if mid < 2 {
		t.Fatalf("backfill too cheap to split: %d ops", probe.Ops())
	}
	mustExec(t, db, "DROP INDEX t_id ON t")

	db2 := Open(Config{MemoryBytes: 256 << 10, PageSize: 1024, CheckpointBytes: -1})
	mustExec(t, db2, "CREATE TABLE t (id INT, val TEXT)")
	want := map[int64]string{}
	for i := 0; i < 80; i++ {
		mustExec(t, db2, "INSERT INTO t VALUES (?, ?)", types.NewInt(int64(i)), types.NewString("x"))
		want[int64(i)] = "x"
	}
	plan := wal.InstallCrashPlan(mid, db2.Disk(), db2.WAL())
	if _, err := db2.Exec("CREATE INDEX t_id ON t (id)"); err == nil {
		t.Fatal("CREATE INDEX survived planted crash")
	}
	if !plan.Fired() {
		t.Fatal("crash plan never fired")
	}
	db3, rep, err := Recover(db2.Crash())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	if got := rowsByID(t, db3, "t"); !reflect.DeepEqual(got, want) {
		t.Fatalf("table rows damaged by aborted index build:\n got %v", got)
	}
	tab, err := db3.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Indexes) != 0 {
		t.Fatalf("uncommitted index resurrected: %v", tab.Indexes)
	}
}

func TestCheckpointTruncatesAndBoundsReplay(t *testing.T) {
	db := Open(Config{MemoryBytes: 256 << 10, PageSize: 1024, CheckpointBytes: 8 << 10})
	mustExec(t, db, "CREATE TABLE t (id INT, val TEXT)")
	want := map[int64]string{}
	for i := 0; i < 400; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", types.NewInt(int64(i)), types.NewString("yyyyyyyyyyyyyyyy"))
		want[int64(i)] = "yyyyyyyyyyyyyyyy"
	}
	s := db.Stats()
	if s.WAL.Checkpoints == 0 {
		t.Fatalf("no automatic checkpoints: %+v", s.WAL)
	}
	if s.WAL.TruncatedBytes == 0 {
		t.Fatal("checkpoints never truncated the log")
	}
	total := s.WAL.Records
	db2, rep, err := Recover(db.Crash())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	if rep.CheckpointLSN == 0 {
		t.Fatal("recovery found no checkpoint")
	}
	if int64(rep.DurableRecords) >= total {
		t.Fatalf("truncation did not bound recovery: %d records durable of %d appended",
			rep.DurableRecords, total)
	}
	if got := rowsByID(t, db2, "t"); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered rows mismatch (%d rows, want %d)", len(got), len(want))
	}
}

func TestRecoverTwiceIsIdempotent(t *testing.T) {
	db := Open(Config{MemoryBytes: 256 << 10, PageSize: 1024, CheckpointBytes: 4 << 10})
	mustExec(t, db, "CREATE TABLE t (id INT, val TEXT)")
	mustExec(t, db, "CREATE UNIQUE INDEX t_pk ON t (id)")
	for i := 0; i < 150; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", types.NewInt(int64(i)), types.NewString("z"))
	}
	mustExec(t, db, "DELETE FROM t WHERE id >= 100")

	db2, rep1, err := Recover(db.Crash())
	if err != nil {
		t.Fatalf("first recover: %v", err)
	}
	first := rowsByID(t, db2, "t")

	// Crash again without running a single statement: the durable state
	// is untouched (recovery flushes nothing), so a second recovery must
	// reproduce it exactly.
	db3, rep2, err := Recover(db2.Crash())
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	second := rowsByID(t, db3, "t")
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("recovery not idempotent:\nfirst  %v\nsecond %v", first, second)
	}
	if rep1.Replayed != rep2.Replayed || rep1.DurableRecords != rep2.DurableRecords {
		t.Fatalf("second recovery saw different work: %+v vs %+v", rep1, rep2)
	}
	if s := db3.Stats(); s.Recoveries != 2 {
		t.Fatalf("recovery lineage lost: %+v", s)
	}
}

func TestRecoverDDLHistory(t *testing.T) {
	db := Open(Config{MemoryBytes: 256 << 10, PageSize: 1024, CheckpointBytes: -1})
	mustExec(t, db, "CREATE TABLE keep (id INT, val TEXT)")
	mustExec(t, db, "CREATE TABLE doomed (id INT, val TEXT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, "INSERT INTO keep VALUES (?, 'k')", types.NewInt(int64(i)))
		mustExec(t, db, "INSERT INTO doomed VALUES (?, 'd')", types.NewInt(int64(i)))
	}
	mustExec(t, db, "CREATE INDEX keep_id ON keep (id)")
	mustExec(t, db, "ALTER TABLE keep ADD COLUMN note TEXT")
	mustExec(t, db, "DROP TABLE doomed")

	db2, rep, err := Recover(db.Crash())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	if db2.Catalog().HasTable("doomed") {
		t.Fatal("dropped table resurrected")
	}
	tab, err := db2.Catalog().Table("keep")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("ALTER lost: columns = %v", tab.Columns)
	}
	if len(tab.Indexes) != 1 || tab.Indexes[0].Name != "keep_id" {
		t.Fatalf("index lost: %v", tab.Indexes)
	}
	rows, err := db2.Query("SELECT note FROM keep WHERE id = 3")
	if err != nil || len(rows.Data) != 1 || !rows.Data[0][0].IsNull() {
		t.Fatalf("added column not NULL-padded: %v err=%v", rows, err)
	}
}

func TestGroupCommitReducesSyncs(t *testing.T) {
	// Statements on the same table serialize on its write lock, so group
	// commit only overlaps across tables — one per tenant, as in the
	// paper's workloads.
	run := func(noGroup bool) (syncs, commits int64) {
		db := Open(Config{
			MemoryBytes: 1 << 20, PageSize: 1024,
			SyncLatency: 500 * time.Microsecond, NoGroupCommit: noGroup,
			CheckpointBytes: -1,
		})
		const workers, per = 8, 12
		for w := 0; w < workers; w++ {
			mustExec(t, db, fmt.Sprintf("CREATE TABLE tenant%d (id INT, val TEXT)", w))
		}
		db.ResetStats()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					_, err := db.Exec(fmt.Sprintf("INSERT INTO tenant%d VALUES (?, 'g')", w),
						types.NewInt(int64(i)))
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		s := db.Stats()
		return s.WAL.Syncs, s.WAL.Commits
	}
	gSyncs, gCommits := run(false)
	nSyncs, nCommits := run(true)
	if gCommits != nCommits {
		t.Fatalf("unequal commit counts: %d vs %d", gCommits, nCommits)
	}
	if nSyncs < nCommits {
		t.Fatalf("baseline somehow batched: %d syncs for %d commits", nSyncs, nCommits)
	}
	if gSyncs >= nSyncs {
		t.Fatalf("group commit saved nothing: %d syncs vs baseline %d", gSyncs, nSyncs)
	}
}
