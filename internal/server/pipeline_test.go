package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/types"
)

// batchReply is one collected reply of a pipelined exchange.
type batchReply struct {
	result *protocol.BatchResult
	err    *protocol.BatchError
	rows   [][]types.Value
	isRows bool
}

// pipeline sends one Batch and collects the tagged replies plus the
// BatchDone trailer, enforcing the 1:1 reply invariant.
func (c *testConn) pipeline(stmts ...protocol.BatchStmt) ([]batchReply, *protocol.BatchDone) {
	c.t.Helper()
	c.send(&protocol.Batch{Stmts: stmts})
	replies := make([]batchReply, len(stmts))
	seen := make([]bool, len(stmts))
	take := func(idx uint32) int {
		if int(idx) >= len(stmts) || seen[idx] {
			c.t.Fatalf("reply for bad index %d", idx)
		}
		seen[idx] = true
		return int(idx)
	}
	for {
		switch m := c.recv().(type) {
		case *protocol.BatchResult:
			replies[take(m.Index)] = batchReply{result: m}
		case *protocol.BatchError:
			replies[take(m.Index)] = batchReply{err: m}
		case *protocol.BatchRowsHeader:
			i := take(m.Index)
			var rows [][]types.Value
			for {
				rb, ok := c.recv().(*protocol.RowBatch)
				if !ok {
					c.t.Fatal("expected RowBatch in batch stream")
				}
				rows = append(rows, rb.Rows...)
				if rb.Last {
					break
				}
			}
			replies[i] = batchReply{rows: rows, isRows: true}
		case *protocol.BatchDone:
			for i, s := range seen {
				if !s {
					c.t.Fatalf("BatchDone with statement %d unanswered", i)
				}
			}
			return replies, m
		default:
			c.t.Fatalf("unexpected batch reply %#v", m)
		}
	}
}

func q(sql string, params ...types.Value) protocol.BatchStmt {
	return protocol.BatchStmt{Query: true, SQL: sql, Params: params}
}

func x(sql string, params ...types.Value) protocol.BatchStmt {
	return protocol.BatchStmt{SQL: sql, Params: params}
}

// TestBatchPipelineInterleaved: execs and queries interleaved in one
// frame come back strictly in order, each tagged with its index, with
// a single trailer reporting the executed count.
func TestBatchPipelineInterleaved(t *testing.T) {
	srv, _, addr := startRawServer(t, Config{MaxRowBatch: 3})
	c := dialServer(t, addr)
	c.hello(0, "")

	replies, done := c.pipeline(
		x("UPDATE t SET v = 11 WHERE k = 1"),
		q("SELECT v FROM t WHERE k = ?", types.NewInt(1)),
		x("UPDATE t SET v = v + 1 WHERE k = 1"),
		q("SELECT k FROM t"), // 8 rows: multiple RowBatch frames mid-pipeline
		q("SELECT v FROM t WHERE k = 1"),
	)
	if done.Executed != 5 {
		t.Fatalf("executed = %d, want 5", done.Executed)
	}
	if replies[0].result == nil || replies[0].result.RowsAffected != 1 {
		t.Fatalf("stmt 0: %+v", replies[0])
	}
	if !replies[1].isRows || replies[1].rows[0][0].Int != 11 {
		t.Fatalf("stmt 1: %+v", replies[1])
	}
	if !replies[3].isRows || len(replies[3].rows) != 8 {
		t.Fatalf("stmt 3: got %d rows, want 8", len(replies[3].rows))
	}
	if !replies[4].isRows || replies[4].rows[0][0].Int != 12 {
		t.Fatalf("stmt 4: %+v", replies[4])
	}
	if got := srv.Stats().Batches; got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
}

// TestBatchErrorPoisonsRemainder: the first failing statement answers
// its real error; everything after — including the COMMIT — answers
// CodePoisoned and is never executed, so a pipelined transaction can
// never half-commit. The connection survives and ROLLBACK clears the
// open transaction.
func TestBatchErrorPoisonsRemainder(t *testing.T) {
	srv, db, addr := startRawServer(t, Config{})
	c := dialServer(t, addr)
	c.hello(0, "")

	replies, done := c.pipeline(
		x("BEGIN"),
		x("UPDATE t SET v = 99 WHERE k = 2"),
		x("UPDATE nosuch SET v = 1"), // fails
		x("UPDATE t SET v = 98 WHERE k = 3"),
		x("COMMIT"),
	)
	if done.Executed != 2 {
		t.Fatalf("executed = %d, want 2", done.Executed)
	}
	if replies[2].err == nil || replies[2].err.Code != protocol.CodeSQL {
		t.Fatalf("stmt 2: %+v", replies[2])
	}
	for i := 3; i <= 4; i++ {
		if replies[i].err == nil || replies[i].err.Code != protocol.CodePoisoned {
			t.Fatalf("stmt %d not poisoned: %+v", i, replies[i])
		}
	}
	// The connection is alive; the transaction is still open (BEGIN and
	// the first UPDATE executed). ROLLBACK discards it.
	c.exec("ROLLBACK")
	_, rows := c.query("SELECT v FROM t WHERE k IN (2, 3)")
	for _, r := range rows {
		if r[0].Int != 0 {
			t.Fatalf("poisoned transaction leaked a write: %v", rows)
		}
	}
	waitStats := srv.Stats()
	if waitStats.ActiveTxns != 0 {
		t.Fatalf("active txns = %d after rollback", waitStats.ActiveTxns)
	}
	_ = db
}

// TestBatchConflictPoisonsCommit: a write conflict mid-pipeline maps
// to CodeConflict at its index and poisons the trailing COMMIT; after
// ROLLBACK the loser's connection is reusable and the winner commits.
func TestBatchConflictPoisonsCommit(t *testing.T) {
	_, _, addr := startRawServer(t, Config{})
	winner := dialServer(t, addr)
	winner.hello(0, "")
	loser := dialServer(t, addr)
	loser.hello(0, "")

	winner.exec("BEGIN")
	winner.exec("UPDATE t SET v = 1 WHERE k = 4")

	replies, done := loser.pipeline(
		x("BEGIN"),
		x("UPDATE t SET v = 2 WHERE k = 4"), // first-updater-wins conflict
		x("COMMIT"),
	)
	if done.Executed != 1 {
		t.Fatalf("executed = %d, want 1 (only BEGIN)", done.Executed)
	}
	if replies[1].err == nil || replies[1].err.Code != protocol.CodeConflict {
		t.Fatalf("stmt 1: %+v", replies[1])
	}
	if replies[2].err == nil || replies[2].err.Code != protocol.CodePoisoned {
		t.Fatalf("COMMIT not poisoned: %+v", replies[2])
	}
	loser.exec("ROLLBACK")
	winner.exec("COMMIT")
	_, rows := loser.query("SELECT v FROM t WHERE k = 4")
	if rows[0][0].Int != 1 {
		t.Fatalf("winner's write lost: %v", rows)
	}
}

// TestBatchRateLimitPoisons: a mid-batch rate-limit rejection poisons
// the rest (running the tail against a half-admitted transaction would
// be worse than failing it), and the connection survives.
func TestBatchRateLimitPoisons(t *testing.T) {
	auth := NewAuthenticator()
	auth.Register(1, Credentials{Token: "tk", StatementsPerSec: 1, Burst: 2})
	now := time.Unix(1000, 0)
	auth.now = func() time.Time { return now }
	_, _, addr := startRawServer(t, Config{Auth: auth})

	c := dialServer(t, addr)
	c.hello(1, "tk")
	replies, done := c.pipeline(
		x("UPDATE t SET v = 1 WHERE k = 5"),
		x("UPDATE t SET v = 2 WHERE k = 5"),
		x("UPDATE t SET v = 3 WHERE k = 5"), // bucket empty
		x("UPDATE t SET v = 4 WHERE k = 5"),
	)
	if done.Executed != 2 {
		t.Fatalf("executed = %d, want 2", done.Executed)
	}
	if replies[2].err == nil || replies[2].err.Code != protocol.CodeRateLimit {
		t.Fatalf("stmt 2: %+v", replies[2])
	}
	if replies[3].err == nil || replies[3].err.Code != protocol.CodePoisoned {
		t.Fatalf("stmt 3: %+v", replies[3])
	}
	now = now.Add(2 * time.Second)
	c.exec("SELECT COUNT(*) FROM t") // connection still usable
}

// TestBatchCorruptFrameMidPipeline: a torn frame between pipelined
// batches gets the protocol Error + hangup treatment, and the session
// drains with zero leaks even though a transaction was open.
func TestBatchCorruptFrameMidPipeline(t *testing.T) {
	srv, db, addr := startRawServer(t, Config{})
	c := dialServer(t, addr)
	c.hello(0, "")

	// Leave a transaction open via a pipelined batch...
	_, done := c.pipeline(x("BEGIN"), x("UPDATE t SET v = 55 WHERE k = 6"))
	if done.Executed != 2 {
		t.Fatalf("executed = %d, want 2", done.Executed)
	}
	// ...then corrupt the stream.
	payload := protocol.Encode(&protocol.Ping{})
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], 0xBAD0BAD0)
	if _, err := c.nc.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	c.recvErr(protocol.CodeProtocol)
	if _, err := protocol.ReadFrame(c.br); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after protocol error, got %v", err)
	}
	waitDrained(t, srv, db)
	rows, err := db.Query("SELECT v FROM t WHERE k = 6")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int != 0 {
		t.Fatalf("open transaction survived the torn frame: %v", rows.Data)
	}
}

// TestBatchAbruptDisconnectDrains: clients that send a pipelined
// transaction and vanish without reading replies must still be reaped
// to zero sessions, zero transactions, zero pins.
func TestBatchAbruptDisconnectDrains(t *testing.T) {
	srv, db, addr := startRawServer(t, Config{})
	for i := 0; i < 6; i++ {
		c := dialServer(t, addr)
		c.hello(int64(i), "")
		c.send(&protocol.Batch{Stmts: []protocol.BatchStmt{
			x("BEGIN"),
			x("UPDATE t SET v = v + 1 WHERE k = ?", types.NewInt(int64(i))),
		}})
		c.nc.Close() // never reads a single reply
	}
	waitDrained(t, srv, db)
}

// TestBatchTooLarge: the decoder rejects an oversized batch before the
// server ever sees it, and the connection is closed as a protocol
// error rather than half-executing.
func TestBatchTooLarge(t *testing.T) {
	srv, db, addr := startRawServer(t, Config{})
	c := dialServer(t, addr)
	c.hello(0, "")

	stmts := make([]protocol.BatchStmt, protocol.MaxBatch+1)
	for i := range stmts {
		stmts[i] = x("SELECT COUNT(*) FROM t")
	}
	// Encode bypasses client-side validation on purpose.
	c.send(&protocol.Batch{Stmts: stmts})
	c.recvErr(protocol.CodeProtocol)
	if _, err := protocol.ReadFrame(c.br); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
	waitDrained(t, srv, db)
}

// TestServerTelemetry: the stats snapshot carries the rewrite-cache,
// plan-cache, and executor gauges the bench records per point.
func TestServerTelemetry(t *testing.T) {
	layout, db := layoutFixture(t)
	srv, err := New(Config{DB: db, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dialServer(t, addr)
	c.hello(1, "")
	c.exec("INSERT INTO Account (Aid, Name) VALUES (1, 'a')")
	for i := 0; i < 4; i++ {
		c.query("SELECT Name FROM Account WHERE Aid = 1")
	}
	st := srv.Stats()
	if st.RewriteMisses == 0 || st.RewriteHits == 0 {
		t.Fatalf("rewrite cache unused: %+v", st)
	}
	if st.RewriteUncacheable == 0 {
		t.Fatalf("INSERT should count uncacheable: %+v", st)
	}
	if st.RewriteHitRate <= 0 {
		t.Fatalf("hit rate = %v", st.RewriteHitRate)
	}
	if st.PlanCacheHits == 0 {
		t.Fatalf("plan cache never hit: %+v", st)
	}
	if st.ExecSlots <= 0 {
		t.Fatalf("executor gate missing from stats: %+v", st)
	}
	if st.Statements != 5 {
		t.Fatalf("statements = %d, want 5", st.Statements)
	}
}

// TestBatchLayoutMode: pipelining composes with tenant rewriting — a
// whole logical transaction in one frame, against the shared rewrite
// cache.
func TestBatchLayoutMode(t *testing.T) {
	layout, db := layoutFixture(t)
	srv, err := New(Config{DB: db, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1 := dialServer(t, addr)
	c1.hello(1, "")
	c2 := dialServer(t, addr)
	c2.hello(2, "")

	replies, done := c1.pipeline(
		x("BEGIN"),
		x("INSERT INTO Account (Aid, Name) VALUES (10, 'acme')"),
		x("UPDATE Account SET Name = 'acme2' WHERE Aid = 10"),
		x("COMMIT"),
		q("SELECT Name FROM Account WHERE Aid = 10"),
	)
	if done.Executed != 5 {
		t.Fatalf("executed = %d, want 5: %+v", done.Executed, replies)
	}
	if !replies[4].isRows || replies[4].rows[0][0].Str != "acme2" {
		t.Fatalf("stmt 4: %+v", replies[4])
	}
	// Tenant 2 sees none of it.
	_, rows := c2.query("SELECT Aid FROM Account")
	if len(rows) != 0 {
		t.Fatalf("tenant isolation broken: %v", rows)
	}
	// A repeat of the pipelined SELECT is a raw-text rewrite-cache hit.
	c1.query("SELECT Name FROM Account WHERE Aid = 10")
	if st := srv.Stats(); st.RewriteHits == 0 || st.RewriteHitRate <= 0 {
		t.Fatalf("rewrite cache never hit: %+v", st)
	}
}

// layoutFixture builds a basic-layout database with tenants 1 and 2.
func layoutFixture(t *testing.T) (core.Layout, *engine.DB) {
	t.Helper()
	schema := &core.Schema{Tables: []*core.Table{{
		Name: "Account",
		Key:  "Aid",
		Columns: []core.Column{
			{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
			{Name: "Name", Type: types.VarcharType(50)},
		},
	}}}
	layout, err := core.NewBasicLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{CheckpointBytes: -1})
	if err := layout.Create(db, []*core.Tenant{{ID: 1}, {ID: 2}}); err != nil {
		t.Fatal(err)
	}
	return layout, db
}

// TestAuditBufferedFlushOnClose: buffered mirror writes reach the
// writer by Close time even when neither the byte threshold nor the
// timer fired — no audit event is lost on clean shutdown.
func TestAuditBufferedFlushOnClose(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLog(0, &buf)
	for i := 0; i < 5; i++ {
		l.Record(int64(i), uint64(i), AuditConnect, "x")
	}
	l.Close()
	if got := strings.Count(buf.String(), "\n"); got != 5 {
		t.Fatalf("mirror lines = %d, want 5\n%s", got, buf.String())
	}
	// Write-through after Close: teardown events still land.
	l.Record(9, 9, AuditDisconnect, "late")
	if got := strings.Count(buf.String(), "\n"); got != 6 {
		t.Fatalf("post-close record lost: %d lines", got)
	}
}

// TestAuditServerCloseFlushes: the server-level guarantee — start a
// server with a mirrored audit log, do work, Close, and every event
// (connect through disconnect) is on the writer.
func TestAuditServerCloseFlushes(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	audit := NewAuditLog(0, w)
	audit.Statements = true
	srv, db, addr := startRawServer(t, Config{Audit: audit})

	c := dialServer(t, addr)
	c.hello(3, "")
	c.exec("UPDATE t SET v = 1 WHERE k = 0")
	c.send(&protocol.Goodbye{})
	waitDrained(t, srv, db)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{AuditConnect, AuditStatement, AuditDisconnect} {
		if !strings.Contains(out, fmt.Sprintf("%q", want)) {
			t.Fatalf("audit mirror missing %q:\n%s", want, out)
		}
	}
	if audit.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", audit.Seq())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
