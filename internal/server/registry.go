package server

import (
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sql"
)

// prepStmt is one server-side prepared statement: the original SQL
// (reused as the engine's plan-cache key) plus, in raw mode, its
// pre-parsed form so repeated executions skip the parser.
type prepStmt struct {
	sql     string
	st      sql.Statement   // raw mode only
	sel     *sql.SelectStmt // non-nil when the statement is a SELECT
	isQuery bool
}

// connState is one live connection's server-side state: its engine
// session (or session-backed mapper in layout mode), its prepared
// statements, and the reap hook that tears all of it down exactly once
// no matter who notices the connection die first — the read loop, the
// server's Close, or a handler error path.
type connState struct {
	id     uint64
	tenant int64
	nc     net.Conn

	// sess is always the engine session to reap; in layout mode it is
	// mapper.Session and logical statements go through mapper.
	sess   *engine.Session
	mapper *core.Mapper

	stmts    map[uint32]*prepStmt
	nextStmt uint32

	reapOnce sync.Once
}

// registry tracks live connections by id; the server's drain check and
// shutdown walk it. All methods are safe for concurrent use.
type registry struct {
	mu    sync.Mutex
	conns map[uint64]*connState
}

func newRegistry() *registry {
	return &registry{conns: make(map[uint64]*connState)}
}

func (r *registry) add(c *connState) {
	r.mu.Lock()
	r.conns[c.id] = c
	r.mu.Unlock()
}

func (r *registry) remove(id uint64) {
	r.mu.Lock()
	delete(r.conns, id)
	r.mu.Unlock()
}

// len reports the number of live sessions (the bench's zero-leak check).
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.conns)
}

// snapshot returns the live connections (for shutdown).
func (r *registry) snapshot() []*connState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*connState, 0, len(r.conns))
	for _, c := range r.conns {
		out = append(out, c)
	}
	return out
}
