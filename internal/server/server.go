// Package server is the network front door over the engine: it speaks
// the internal/protocol wire format, authenticates tenants (token
// check, session quota, statement rate limit — see Authenticator),
// keeps an append-only audit trail, and multiplexes one engine Session
// (or one session-backed tenant Mapper, in layout mode) per accepted
// connection through a registry.
//
// Disconnect semantics are the package's reason to exist: however a
// connection dies — clean Goodbye, torn frame, TCP reset mid-DML,
// server shutdown — the reap path runs exactly once and closes the
// engine session, which waits out any in-flight statement, rolls back
// the open transaction, releases write-admission tokens, and unpins
// the snapshot. A dropped client can therefore never wedge the GC
// horizon or leak a quota slot.
//
// The statement path is built for thousands of connections: logical
// SQL resolves through a shared per-tenant rewrite cache (layout
// mode), pipelined Batch frames amortize round trips and flush once
// per batch, responses are encoded into a per-connection reusable
// arena, and a bounded FIFO executor admits statements fairly instead
// of letting every connection pile onto the engine at once.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mvcc"
	"repro/internal/protocol"
	"repro/internal/sql"
	"repro/internal/types"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server.
type Config struct {
	// DB is the engine to serve. Required.
	DB *engine.DB
	// Layout, when non-nil, puts the server in layout mode: clients send
	// LOGICAL SQL which is tenant-rewritten through a session-backed
	// core.Mapper, so a connection can only ever touch its own tenant's
	// rows. With Layout nil, clients send physical SQL straight to an
	// engine session (trusted/admin deployments and the benchmarks).
	Layout core.Layout
	// Auth authenticates handshakes and enforces quotas and rate limits.
	// Nil accepts every credential with no limits (tests, local bench).
	Auth *Authenticator
	// Audit receives connection and rejection events (nil: no auditing).
	Audit *AuditLog
	// MaxRowBatch bounds rows per RowBatch frame (default 256).
	MaxRowBatch int
	// HandshakeTimeout bounds how long an accepted connection may take
	// to complete its Hello (default 5s) so half-open connections cannot
	// hold sockets forever.
	HandshakeTimeout time.Duration
	// MaxConcurrent bounds how many statements (or batches) execute
	// simultaneously; excess connections park in a fair FIFO queue.
	// 0 picks a default sized to the host (8×GOMAXPROCS, at least 32 —
	// well above the core count, because an in-flight session spends
	// most of its life parked in group-commit flushes or buffer-pool
	// misses, not on a CPU; not far above it, because admitting too
	// many writers multiplies first-updater-wins conflict aborts);
	// negative disables the gate entirely.
	MaxConcurrent int
	// RewriteCacheCap bounds the shared rewrite cache (layout mode).
	// 0 picks core.DefaultRewriteCacheCap; negative disables caching.
	RewriteCacheCap int
}

// Stats is a point-in-time snapshot of the server's counters plus the
// engine's leak-relevant gauges and the statement-path caches.
type Stats struct {
	Accepted        int64  `json:"accepted"`
	OpenSessions    int    `json:"open_sessions"`
	Statements      int64  `json:"statements"`
	Batches         int64  `json:"batches"`
	AuthFailures    int64  `json:"auth_failures"`
	QuotaRejects    int64  `json:"quota_rejects"`
	RateLimited     int64  `json:"rate_limited"`
	ProtocolErrors  int64  `json:"protocol_errors"`
	AuditSeq        uint64 `json:"audit_seq"`
	ActiveTxns      int64  `json:"active_txns"`
	PinnedSnapshots int64  `json:"pinned_snapshots"`

	// Rewrite-cache counters (layout mode; zero otherwise).
	RewriteHits         int64   `json:"rewrite_hits"`
	RewriteTemplateHits int64   `json:"rewrite_template_hits"`
	RewriteMisses       int64   `json:"rewrite_misses"`
	RewriteUncacheable  int64   `json:"rewrite_uncacheable"`
	RewriteHitRate      float64 `json:"rewrite_hit_rate"`

	// Engine plan-cache counters.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`

	// Fair-admission executor gauges (zero when the gate is disabled).
	ExecSlots      int   `json:"exec_slots"`
	ExecActive     int   `json:"exec_active"`
	ExecQueueDepth int   `json:"exec_queue_depth"`
	ExecQueueMax   int   `json:"exec_queue_max"`
	ExecWaits      int64 `json:"exec_waits"`
	ExecWaitMicros int64 `json:"exec_wait_micros"`

	// Replication gauges. On a primary with subscribers: furthest
	// shipped stream offset, highest acknowledged apply position, ack
	// count, and how far the slowest acked subscriber trails the durable
	// horizon. On a replica: applied positions and ingest-to-apply lag.
	ReplShippedLSN       uint64 `json:"repl_shipped_lsn"`
	ReplAckedLSN         uint64 `json:"repl_acked_lsn"`
	ReplAckRoundTrips    int64  `json:"repl_ack_round_trips"`
	ReplAppliedLSN       uint64 `json:"repl_applied_lsn"`
	ReplAppliedCommitLSN uint64 `json:"repl_applied_commit_lsn"`
	ReplLagBytes         int64  `json:"repl_lag_bytes"`
}

// Server accepts protocol connections and drives them against the
// engine. Construct with New, then Serve/ListenAndServe.
type Server struct {
	cfg      Config
	reg      *registry
	exec     *executor
	rewrites *core.RewriteCache

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	nextID uint64

	wg sync.WaitGroup

	accepted    atomic.Int64
	statements  atomic.Int64
	batches     atomic.Int64
	authFails   atomic.Int64
	quotaFails  atomic.Int64
	rateLimited atomic.Int64
	protoErrors atomic.Int64
}

// New builds a server over cfg. cfg.DB is required.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.MaxRowBatch <= 0 {
		cfg.MaxRowBatch = 256
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	slots := cfg.MaxConcurrent
	if slots == 0 {
		slots = 8 * runtime.GOMAXPROCS(0)
		if slots < 32 {
			slots = 32
		}
	}
	s := &Server{cfg: cfg, reg: newRegistry(), exec: newExecutor(slots)}
	if cfg.Layout != nil && cfg.RewriteCacheCap >= 0 {
		s.rewrites = core.NewRewriteCache(cfg.DB, cfg.Layout, cfg.RewriteCacheCap)
	}
	return s, nil
}

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Start listens on addr and serves in a background goroutine,
// returning the bound address (use ":0" for an ephemeral port).
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Close. It returns
// ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// Close stops accepting, reaps every live session (rolling back its
// open transaction), waits for the handlers to drain, and flushes the
// audit trail so no buffered event is lost.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range s.reg.snapshot() {
		s.reap(c, "server shutdown")
	}
	s.wg.Wait()
	s.cfg.Audit.Flush()
	return nil
}

// OpenSessions reports live registered sessions (the drain check).
func (s *Server) OpenSessions() int { return s.reg.len() }

// CloseSessions reaps every currently live session — rolling back open
// transactions and dropping the sockets — while the listener keeps
// accepting. An admin drain, and the client pool tests' way to
// simulate a server-side kill.
func (s *Server) CloseSessions() {
	for _, c := range s.reg.snapshot() {
		s.reap(c, "admin session close")
	}
}

// Stats snapshots the server's counters, the statement-path caches,
// and the engine's leak gauges.
func (s *Server) Stats() Stats {
	est := s.cfg.DB.Stats()
	st := Stats{
		Accepted:        s.accepted.Load(),
		OpenSessions:    s.reg.len(),
		Statements:      s.statements.Load(),
		Batches:         s.batches.Load(),
		AuthFailures:    s.authFails.Load(),
		QuotaRejects:    s.quotaFails.Load(),
		RateLimited:     s.rateLimited.Load(),
		ProtocolErrors:  s.protoErrors.Load(),
		AuditSeq:        s.cfg.Audit.Seq(),
		ActiveTxns:      est.ActiveTxns,
		PinnedSnapshots: est.PinnedSnapshots,
		PlanCacheHits:   est.PlanCacheHits,
		PlanCacheMisses: est.PlanCacheMisses,

		ReplShippedLSN:       est.ReplShippedLSN,
		ReplAckedLSN:         est.ReplAckedLSN,
		ReplAckRoundTrips:    est.ReplAckRoundTrips,
		ReplAppliedLSN:       est.ReplAppliedLSN,
		ReplAppliedCommitLSN: est.ReplAppliedCommitLSN,
		ReplLagBytes:         est.ReplLagBytes,
	}
	if s.rewrites != nil {
		rc := s.rewrites.Stats()
		st.RewriteHits = rc.Hits
		st.RewriteTemplateHits = rc.TemplateHits
		st.RewriteMisses = rc.Misses
		st.RewriteUncacheable = rc.Uncacheable
		st.RewriteHitRate = rc.HitRate()
	}
	if es := s.exec.stats(); es.slots > 0 {
		st.ExecSlots = es.slots
		st.ExecActive = es.active
		st.ExecQueueDepth = es.queueDepth
		st.ExecQueueMax = es.queueMax
		st.ExecWaits = es.waits
		st.ExecWaitMicros = es.waitNanos / 1e3
	}
	return st
}

// --- connection handling -----------------------------------------------------

// connWriter owns a connection's response path: a FrameWriter encoding
// into a reusable arena over a buffered socket writer. Responses
// coalesce in the buffer and hit the kernel once per flush point — the
// end of a reply for single statements, the end of the whole batch for
// pipelined ones.
type connWriter struct {
	bw *bufio.Writer
	fw *protocol.FrameWriter
}

func newConnWriter(nc net.Conn) *connWriter {
	bw := bufio.NewWriter(nc)
	return &connWriter{bw: bw, fw: protocol.NewFrameWriter(bw)}
}

// send frames one message into the buffer without flushing.
func (w *connWriter) send(m any) error { return w.fw.WriteMsg(m) }

// flush pushes everything buffered to the socket.
func (w *connWriter) flush() error { return w.bw.Flush() }

// writeMsg frames, writes, and flushes one message — the response
// boundary for non-pipelined traffic.
func writeMsg(w *connWriter, m any) error {
	if err := w.send(m); err != nil {
		return err
	}
	return w.flush()
}

// errCode maps a statement error onto its protocol error code.
func errCode(err error) uint16 {
	switch {
	case errors.Is(err, mvcc.ErrWriteConflict):
		return protocol.CodeConflict
	case errors.Is(err, engine.ErrSessionClosed):
		return protocol.CodeClosed
	}
	return protocol.CodeSQL
}

// handleConn runs one connection: handshake, then the statement loop.
func (s *Server) handleConn(nc net.Conn) {
	br := bufio.NewReader(nc)
	w := newConnWriter(nc)

	c, ok := s.handshake(nc, br, w)
	if !ok {
		nc.Close()
		return
	}
	defer s.reap(c, "connection closed")

	for {
		payload, err := protocol.ReadFrame(br)
		if err != nil {
			// io.EOF at a frame boundary is the normal abrupt close; a
			// torn frame, oversized frame, or bad CRC is a protocol error
			// worth telling the peer about (best effort) before dropping.
			if errors.Is(err, protocol.ErrBadCRC) || errors.Is(err, protocol.ErrFrameTooLarge) {
				s.protoErrors.Add(1)
				writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: err.Error()})
			}
			return
		}
		msg, err := protocol.Decode(payload)
		if err != nil {
			s.protoErrors.Add(1)
			writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: err.Error()})
			return
		}
		if sub, ok := msg.(*protocol.ReplSubscribe); ok {
			// The connection becomes a one-way WAL stream; it never
			// returns to the statement loop.
			s.serveReplication(c, br, w, sub)
			return
		}
		if done, err := s.dispatch(c, w, msg); done || err != nil {
			return
		}
	}
}

// handshake performs the credentialed Hello exchange under a deadline.
func (s *Server) handshake(nc net.Conn, br *bufio.Reader, w *connWriter) (*connState, bool) {
	nc.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	defer nc.SetReadDeadline(time.Time{})

	payload, err := protocol.ReadFrame(br)
	if err != nil {
		return nil, false
	}
	msg, err := protocol.Decode(payload)
	if err != nil {
		s.protoErrors.Add(1)
		writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: err.Error()})
		return nil, false
	}
	hello, ok := msg.(*protocol.Hello)
	if !ok {
		s.protoErrors.Add(1)
		writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: "expected Hello"})
		return nil, false
	}
	if hello.Version != protocol.Version {
		s.protoErrors.Add(1)
		writeMsg(w, &protocol.Error{
			Code: protocol.CodeProtocol,
			Msg:  fmt.Sprintf("protocol version %d, server speaks %d", hello.Version, protocol.Version),
		})
		return nil, false
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Authenticate(hello.Tenant, hello.Token); err != nil {
			s.authFails.Add(1)
			s.cfg.Audit.Record(hello.Tenant, id, AuditAuthFail, err.Error())
			writeMsg(w, &protocol.Error{Code: protocol.CodeAuth, Msg: "authentication failed"})
			return nil, false
		}
		if err := s.cfg.Auth.AcquireSession(hello.Tenant); err != nil {
			s.quotaFails.Add(1)
			s.cfg.Audit.Record(hello.Tenant, id, AuditQuota, err.Error())
			writeMsg(w, &protocol.Error{Code: protocol.CodeQuota, Msg: err.Error()})
			return nil, false
		}
	}
	c := &connState{id: id, tenant: hello.Tenant, nc: nc, stmts: make(map[uint32]*prepStmt)}
	if s.cfg.Layout != nil {
		c.mapper = core.NewSessionMapper(s.cfg.DB, s.cfg.Layout)
		c.mapper.Cache = s.rewrites
		c.sess = c.mapper.Session
	} else {
		c.sess = s.cfg.DB.Session()
	}
	s.reg.add(c)
	s.cfg.Audit.Record(c.tenant, c.id, AuditConnect, nc.RemoteAddr().String())
	if err := writeMsg(w, &protocol.HelloOK{SessionID: id}); err != nil {
		s.reap(c, "handshake write failed")
		return nil, false
	}
	return c, true
}

// reap tears one connection down exactly once: socket, engine session
// (rollback of any open transaction, admission tokens, snapshot pin),
// registry entry, quota slot, audit record — in that order, so by the
// time the registry is empty the engine holds nothing for this client.
func (s *Server) reap(c *connState, reason string) {
	c.reapOnce.Do(func() {
		c.nc.Close()
		c.sess.Close()
		s.reg.remove(c.id)
		if s.cfg.Auth != nil {
			s.cfg.Auth.ReleaseSession(c.tenant)
		}
		s.cfg.Audit.Record(c.tenant, c.id, AuditDisconnect, reason)
	})
}

// admitStatement charges the rate limiter; on rejection it reports the
// Error to the client (the connection survives) and returns false.
// detail is the statement summary for the (optional) per-statement
// audit trail.
func (s *Server) admitStatement(c *connState, w *connWriter, detail string) bool {
	s.statements.Add(1)
	if s.cfg.Audit != nil && s.cfg.Audit.Statements {
		s.cfg.Audit.Record(c.tenant, c.id, AuditStatement, detail)
	}
	if s.cfg.Auth == nil {
		return true
	}
	if err := s.cfg.Auth.AllowStatement(c.tenant); err != nil {
		s.rateLimited.Add(1)
		s.cfg.Audit.Record(c.tenant, c.id, AuditRateLimit, err.Error())
		writeMsg(w, &protocol.Error{Code: protocol.CodeRateLimit, Msg: err.Error()})
		return false
	}
	return true
}

// dispatch handles one decoded client message. done means the
// connection should close (Goodbye); a non-nil error means the socket
// is gone.
//
// Statement-bearing messages pass through the fair-admission executor:
// the connection parks in FIFO order for a slot, holds it across
// execution and response encoding, and releases it at the flush point.
// Control traffic (Ping, Goodbye, Stats, Prepare, StmtClose) bypasses
// the gate so health checks and teardown stay responsive under load.
func (s *Server) dispatch(c *connState, w *connWriter, msg any) (done bool, err error) {
	switch msg.(type) {
	case *protocol.Exec, *protocol.Query, *protocol.StmtExec, *protocol.StmtQuery, *protocol.Batch:
		// Statement work passes the fair-admission gate; control
		// traffic below bypasses it so a loaded server still answers
		// pings and stats.
		s.exec.acquire()
		defer s.exec.release()
	}

	switch m := msg.(type) {
	case *protocol.Ping:
		return false, writeMsg(w, &protocol.Pong{})
	case *protocol.Goodbye:
		s.reap(c, "goodbye")
		return true, nil
	case *protocol.Stats:
		b, jerr := json.Marshal(s.Stats())
		if jerr != nil {
			return false, writeMsg(w, &protocol.Error{Code: protocol.CodeSQL, Msg: jerr.Error()})
		}
		return false, writeMsg(w, &protocol.StatsResult{JSON: b})

	case *protocol.Exec:
		if !s.admitStatement(c, w, m.SQL) {
			return false, nil
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		res, xerr := s.doExec(c, m.SQL, m.Params)
		if xerr != nil {
			return false, writeMsg(w, &protocol.Error{Code: errCode(xerr), Msg: xerr.Error()})
		}
		return false, writeMsg(w, &protocol.Result{RowsAffected: res.RowsAffected})

	case *protocol.Query:
		if !s.admitStatement(c, w, m.SQL) {
			return false, nil
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		rows, qerr := s.doQuery(c, m.SQL, m.Params)
		if qerr != nil {
			return false, writeMsg(w, &protocol.Error{Code: errCode(qerr), Msg: qerr.Error()})
		}
		return false, s.writeRows(w, rows)

	case *protocol.Batch:
		return false, s.doBatch(c, w, m)

	case *protocol.Prepare:
		ps, perr := s.prepare(c, m.SQL)
		if perr != nil {
			return false, writeMsg(w, &protocol.Error{Code: errCode(perr), Msg: perr.Error()})
		}
		c.nextStmt++
		id := c.nextStmt
		c.stmts[id] = ps
		return false, writeMsg(w, &protocol.Prepared{ID: id, IsQuery: ps.isQuery})

	case *protocol.StmtExec:
		if !s.admitStatement(c, w, fmt.Sprintf("stmt %d", m.ID)) {
			return false, nil
		}
		ps, ok := c.stmts[m.ID]
		if !ok {
			return false, writeMsg(w, &protocol.Error{Code: protocol.CodeSQL, Msg: fmt.Sprintf("unknown statement %d", m.ID)})
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		res, xerr := s.execPrepared(c, ps, m.Params)
		if xerr != nil {
			return false, writeMsg(w, &protocol.Error{Code: errCode(xerr), Msg: xerr.Error()})
		}
		return false, writeMsg(w, &protocol.Result{RowsAffected: res.RowsAffected})

	case *protocol.StmtQuery:
		if !s.admitStatement(c, w, fmt.Sprintf("stmt %d", m.ID)) {
			return false, nil
		}
		ps, ok := c.stmts[m.ID]
		if !ok {
			return false, writeMsg(w, &protocol.Error{Code: protocol.CodeSQL, Msg: fmt.Sprintf("unknown statement %d", m.ID)})
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		rows, qerr := s.queryPrepared(c, ps, m.Params)
		if qerr != nil {
			return false, writeMsg(w, &protocol.Error{Code: errCode(qerr), Msg: qerr.Error()})
		}
		return false, s.writeRows(w, rows)

	case *protocol.StmtClose:
		delete(c.stmts, m.ID)
		return false, writeMsg(w, &protocol.Result{})
	}
	s.protoErrors.Add(1)
	return false, writeMsg(w, &protocol.Error{Code: protocol.CodeProtocol, Msg: fmt.Sprintf("unexpected message %T", msg)})
}

// --- pipelined batches -------------------------------------------------------

// doBatch executes a pipelined Batch strictly in order, one tagged
// reply per statement, a single BatchDone trailer, one flush for the
// whole exchange.
//
// Error semantics: the first failure — rate limit, bad params, SQL
// error, write conflict — poisons the remainder. Poisoned statements
// are NOT executed; each answers BatchError{CodePoisoned} so replies
// stay 1:1 with statements. This is what makes a pipelined
// BEGIN…COMMIT safe: once any statement inside the transaction fails,
// the trailing COMMIT is poisoned and can never commit a partial
// transaction. The client sees the real error at its index, rolls
// back, and retries.
func (s *Server) doBatch(c *connState, w *connWriter, m *protocol.Batch) error {
	s.batches.Add(1)
	var poisoned error
	var executed uint32
	for i, bs := range m.Stmts {
		idx := uint32(i)
		if poisoned != nil {
			if err := w.send(&protocol.BatchError{Index: idx, Code: protocol.CodePoisoned, Msg: "not executed: " + poisoned.Error()}); err != nil {
				return err
			}
			continue
		}
		s.statements.Add(1)
		if s.cfg.Audit != nil && s.cfg.Audit.Statements {
			s.cfg.Audit.Record(c.tenant, c.id, AuditStatement, bs.SQL)
		}
		if s.cfg.Auth != nil {
			if err := s.cfg.Auth.AllowStatement(c.tenant); err != nil {
				s.rateLimited.Add(1)
				s.cfg.Audit.Record(c.tenant, c.id, AuditRateLimit, err.Error())
				poisoned = err
				if werr := w.send(&protocol.BatchError{Index: idx, Code: protocol.CodeRateLimit, Msg: err.Error()}); werr != nil {
					return werr
				}
				continue
			}
		}
		if perr := protocol.SanitizeParams(bs.Params); perr != nil {
			poisoned = perr
			if werr := w.send(&protocol.BatchError{Index: idx, Code: protocol.CodeProtocol, Msg: perr.Error()}); werr != nil {
				return werr
			}
			continue
		}
		if bs.Query {
			rows, qerr := s.doQuery(c, bs.SQL, bs.Params)
			if qerr != nil {
				poisoned = qerr
				if werr := w.send(&protocol.BatchError{Index: idx, Code: errCode(qerr), Msg: qerr.Error()}); werr != nil {
					return werr
				}
				continue
			}
			executed++
			if werr := s.writeBatchRows(w, idx, rows); werr != nil {
				return werr
			}
			continue
		}
		res, xerr := s.doExec(c, bs.SQL, bs.Params)
		if xerr != nil {
			poisoned = xerr
			if werr := w.send(&protocol.BatchError{Index: idx, Code: errCode(xerr), Msg: xerr.Error()}); werr != nil {
				return werr
			}
			continue
		}
		executed++
		if werr := w.send(&protocol.BatchResult{Index: idx, RowsAffected: res.RowsAffected}); werr != nil {
			return werr
		}
	}
	if err := w.send(&protocol.BatchDone{Executed: executed}); err != nil {
		return err
	}
	return w.flush()
}

// writeBatchRows streams one batch statement's result: an indexed
// header, then ordinary RowBatch frames. No flush — the batch's
// trailer flushes everything at once.
func (s *Server) writeBatchRows(w *connWriter, idx uint32, rows *engine.Rows) error {
	if err := w.send(&protocol.BatchRowsHeader{Index: idx, Columns: rows.Columns}); err != nil {
		return err
	}
	data := rows.Data
	for {
		n := len(data)
		last := n <= s.cfg.MaxRowBatch
		if !last {
			n = s.cfg.MaxRowBatch
		}
		if err := w.send(&protocol.RowBatch{Rows: data[:n], Last: last}); err != nil {
			return err
		}
		if last {
			return nil
		}
		data = data[n:]
	}
}

// --- statement execution -----------------------------------------------------

// doExec runs one non-query (or drained SELECT) statement. In layout
// mode the text resolves through the shared rewrite cache (Mapper.Do),
// so the statement's shape is decided by the cache lookup itself —
// no pre-parse on the hot path.
func (s *Server) doExec(c *connState, q string, params []types.Value) (engine.Result, error) {
	if c.mapper == nil {
		return c.sess.Exec(q, params...)
	}
	res, rows, err := c.mapper.Do(c.tenant, q, params...)
	if err != nil {
		return engine.Result{}, err
	}
	if rows != nil {
		// Exec-of-SELECT in layout mode: run and drain.
		return engine.Result{RowsAffected: int64(len(rows.Data))}, nil
	}
	return res, nil
}

// doQuery runs one SELECT.
func (s *Server) doQuery(c *connState, q string, params []types.Value) (*engine.Rows, error) {
	if c.mapper == nil {
		return c.sess.Query(q, params...)
	}
	return c.mapper.Query(c.tenant, q, params...)
}

// prepare registers one statement. In raw mode it is parsed once and
// the SQL string doubles as the engine's plan-cache key; in layout mode
// the rewrite is tenant-dependent, so only the classification happens
// here and the per-execution lookup goes through the rewrite cache.
func (s *Server) prepare(c *connState, q string) (*prepStmt, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	ps := &prepStmt{sql: q, st: st}
	if sel, ok := st.(*sql.SelectStmt); ok {
		ps.sel = sel
		ps.isQuery = true
	}
	return ps, nil
}

func (s *Server) execPrepared(c *connState, ps *prepStmt, params []types.Value) (engine.Result, error) {
	if c.mapper != nil {
		return s.doExec(c, ps.sql, params)
	}
	return c.sess.ExecStmt(ps.st, ps.sql, params...)
}

func (s *Server) queryPrepared(c *connState, ps *prepStmt, params []types.Value) (*engine.Rows, error) {
	if !ps.isQuery {
		return nil, fmt.Errorf("server: prepared statement is not a query")
	}
	if c.mapper != nil {
		return c.mapper.Query(c.tenant, ps.sql, params...)
	}
	return c.sess.QueryStmt(ps.sel, ps.sql, params...)
}

// writeRows streams a materialized result as RowsHeader + RowBatch
// frames, chunked to MaxRowBatch rows per frame; the final batch
// carries Last (a zero-row result is a single empty Last batch). The
// frames coalesce in the connection buffer and flush once at the end.
func (s *Server) writeRows(w *connWriter, rows *engine.Rows) error {
	if err := w.send(&protocol.RowsHeader{Columns: rows.Columns}); err != nil {
		return err
	}
	data := rows.Data
	for {
		n := len(data)
		last := n <= s.cfg.MaxRowBatch
		if !last {
			n = s.cfg.MaxRowBatch
		}
		if err := w.send(&protocol.RowBatch{Rows: data[:n], Last: last}); err != nil {
			return err
		}
		if last {
			return w.flush()
		}
		data = data[n:]
	}
}
