// Package server is the network front door over the engine: it speaks
// the internal/protocol wire format, authenticates tenants (token
// check, session quota, statement rate limit — see Authenticator),
// keeps an append-only audit trail, and multiplexes one engine Session
// (or one session-backed tenant Mapper, in layout mode) per accepted
// connection through a registry.
//
// Disconnect semantics are the package's reason to exist: however a
// connection dies — clean Goodbye, torn frame, TCP reset mid-DML,
// server shutdown — the reap path runs exactly once and closes the
// engine session, which waits out any in-flight statement, rolls back
// the open transaction, releases write-admission tokens, and unpins
// the snapshot. A dropped client can therefore never wedge the GC
// horizon or leak a quota slot.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mvcc"
	"repro/internal/protocol"
	"repro/internal/sql"
	"repro/internal/types"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server.
type Config struct {
	// DB is the engine to serve. Required.
	DB *engine.DB
	// Layout, when non-nil, puts the server in layout mode: clients send
	// LOGICAL SQL which is tenant-rewritten through a session-backed
	// core.Mapper, so a connection can only ever touch its own tenant's
	// rows. With Layout nil, clients send physical SQL straight to an
	// engine session (trusted/admin deployments and the benchmarks).
	Layout core.Layout
	// Auth authenticates handshakes and enforces quotas and rate limits.
	// Nil accepts every credential with no limits (tests, local bench).
	Auth *Authenticator
	// Audit receives connection and rejection events (nil: no auditing).
	Audit *AuditLog
	// MaxRowBatch bounds rows per RowBatch frame (default 256).
	MaxRowBatch int
	// HandshakeTimeout bounds how long an accepted connection may take
	// to complete its Hello (default 5s) so half-open connections cannot
	// hold sockets forever.
	HandshakeTimeout time.Duration
}

// Stats is a point-in-time snapshot of the server's counters plus the
// engine's leak-relevant gauges.
type Stats struct {
	Accepted        int64 `json:"accepted"`
	OpenSessions    int   `json:"open_sessions"`
	Statements      int64 `json:"statements"`
	AuthFailures    int64 `json:"auth_failures"`
	QuotaRejects    int64 `json:"quota_rejects"`
	RateLimited     int64 `json:"rate_limited"`
	ProtocolErrors  int64 `json:"protocol_errors"`
	AuditSeq        uint64 `json:"audit_seq"`
	ActiveTxns      int64 `json:"active_txns"`
	PinnedSnapshots int64 `json:"pinned_snapshots"`
}

// Server accepts protocol connections and drives them against the
// engine. Construct with New, then Serve/ListenAndServe.
type Server struct {
	cfg Config
	reg *registry

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	nextID uint64

	wg sync.WaitGroup

	accepted    atomic.Int64
	statements  atomic.Int64
	authFails   atomic.Int64
	quotaFails  atomic.Int64
	rateLimited atomic.Int64
	protoErrors atomic.Int64
}

// New builds a server over cfg. cfg.DB is required.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.MaxRowBatch <= 0 {
		cfg.MaxRowBatch = 256
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	return &Server{cfg: cfg, reg: newRegistry()}, nil
}

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Start listens on addr and serves in a background goroutine,
// returning the bound address (use ":0" for an ephemeral port).
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Close. It returns
// ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// Close stops accepting, reaps every live session (rolling back its
// open transaction), and waits for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range s.reg.snapshot() {
		s.reap(c, "server shutdown")
	}
	s.wg.Wait()
	return nil
}

// OpenSessions reports live registered sessions (the drain check).
func (s *Server) OpenSessions() int { return s.reg.len() }

// CloseSessions reaps every currently live session — rolling back open
// transactions and dropping the sockets — while the listener keeps
// accepting. An admin drain, and the client pool tests' way to
// simulate a server-side kill.
func (s *Server) CloseSessions() {
	for _, c := range s.reg.snapshot() {
		s.reap(c, "admin session close")
	}
}

// Stats snapshots the server's counters and the engine's leak gauges.
func (s *Server) Stats() Stats {
	est := s.cfg.DB.Stats()
	return Stats{
		Accepted:        s.accepted.Load(),
		OpenSessions:    s.reg.len(),
		Statements:      s.statements.Load(),
		AuthFailures:    s.authFails.Load(),
		QuotaRejects:    s.quotaFails.Load(),
		RateLimited:     s.rateLimited.Load(),
		ProtocolErrors:  s.protoErrors.Load(),
		AuditSeq:        s.cfg.Audit.Seq(),
		ActiveTxns:      est.ActiveTxns,
		PinnedSnapshots: est.PinnedSnapshots,
	}
}

// --- connection handling -----------------------------------------------------

// writeMsg frames, writes, and flushes one message.
func writeMsg(bw *bufio.Writer, m any) error {
	if err := protocol.WriteFrame(bw, protocol.Encode(m)); err != nil {
		return err
	}
	return bw.Flush()
}

// errCode maps a statement error onto its protocol error code.
func errCode(err error) uint16 {
	switch {
	case errors.Is(err, mvcc.ErrWriteConflict):
		return protocol.CodeConflict
	case errors.Is(err, engine.ErrSessionClosed):
		return protocol.CodeClosed
	}
	return protocol.CodeSQL
}

// handleConn runs one connection: handshake, then the statement loop.
func (s *Server) handleConn(nc net.Conn) {
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)

	c, ok := s.handshake(nc, br, bw)
	if !ok {
		nc.Close()
		return
	}
	defer s.reap(c, "connection closed")

	for {
		payload, err := protocol.ReadFrame(br)
		if err != nil {
			// io.EOF at a frame boundary is the normal abrupt close; a
			// torn frame, oversized frame, or bad CRC is a protocol error
			// worth telling the peer about (best effort) before dropping.
			if errors.Is(err, protocol.ErrBadCRC) || errors.Is(err, protocol.ErrFrameTooLarge) {
				s.protoErrors.Add(1)
				writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: err.Error()})
			}
			return
		}
		msg, err := protocol.Decode(payload)
		if err != nil {
			s.protoErrors.Add(1)
			writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: err.Error()})
			return
		}
		if done, err := s.dispatch(c, bw, msg); done || err != nil {
			return
		}
	}
}

// handshake performs the credentialed Hello exchange under a deadline.
func (s *Server) handshake(nc net.Conn, br *bufio.Reader, bw *bufio.Writer) (*connState, bool) {
	nc.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	defer nc.SetReadDeadline(time.Time{})

	payload, err := protocol.ReadFrame(br)
	if err != nil {
		return nil, false
	}
	msg, err := protocol.Decode(payload)
	if err != nil {
		s.protoErrors.Add(1)
		writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: err.Error()})
		return nil, false
	}
	hello, ok := msg.(*protocol.Hello)
	if !ok {
		s.protoErrors.Add(1)
		writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: "expected Hello"})
		return nil, false
	}
	if hello.Version != protocol.Version {
		s.protoErrors.Add(1)
		writeMsg(bw, &protocol.Error{
			Code: protocol.CodeProtocol,
			Msg:  fmt.Sprintf("protocol version %d, server speaks %d", hello.Version, protocol.Version),
		})
		return nil, false
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Authenticate(hello.Tenant, hello.Token); err != nil {
			s.authFails.Add(1)
			s.cfg.Audit.Record(hello.Tenant, id, AuditAuthFail, err.Error())
			writeMsg(bw, &protocol.Error{Code: protocol.CodeAuth, Msg: "authentication failed"})
			return nil, false
		}
		if err := s.cfg.Auth.AcquireSession(hello.Tenant); err != nil {
			s.quotaFails.Add(1)
			s.cfg.Audit.Record(hello.Tenant, id, AuditQuota, err.Error())
			writeMsg(bw, &protocol.Error{Code: protocol.CodeQuota, Msg: err.Error()})
			return nil, false
		}
	}
	c := &connState{id: id, tenant: hello.Tenant, nc: nc, stmts: make(map[uint32]*prepStmt)}
	if s.cfg.Layout != nil {
		c.mapper = core.NewSessionMapper(s.cfg.DB, s.cfg.Layout)
		c.sess = c.mapper.Session
	} else {
		c.sess = s.cfg.DB.Session()
	}
	s.reg.add(c)
	s.cfg.Audit.Record(c.tenant, c.id, AuditConnect, nc.RemoteAddr().String())
	if err := writeMsg(bw, &protocol.HelloOK{SessionID: id}); err != nil {
		s.reap(c, "handshake write failed")
		return nil, false
	}
	return c, true
}

// reap tears one connection down exactly once: socket, engine session
// (rollback of any open transaction, admission tokens, snapshot pin),
// registry entry, quota slot, audit record — in that order, so by the
// time the registry is empty the engine holds nothing for this client.
func (s *Server) reap(c *connState, reason string) {
	c.reapOnce.Do(func() {
		c.nc.Close()
		c.sess.Close()
		s.reg.remove(c.id)
		if s.cfg.Auth != nil {
			s.cfg.Auth.ReleaseSession(c.tenant)
		}
		s.cfg.Audit.Record(c.tenant, c.id, AuditDisconnect, reason)
	})
}

// admitStatement charges the rate limiter; on rejection it reports the
// Error to the client (the connection survives) and returns false.
// detail is the statement summary for the (optional) per-statement
// audit trail.
func (s *Server) admitStatement(c *connState, bw *bufio.Writer, detail string) bool {
	s.statements.Add(1)
	if s.cfg.Audit != nil && s.cfg.Audit.Statements {
		s.cfg.Audit.Record(c.tenant, c.id, AuditStatement, detail)
	}
	if s.cfg.Auth == nil {
		return true
	}
	if err := s.cfg.Auth.AllowStatement(c.tenant); err != nil {
		s.rateLimited.Add(1)
		s.cfg.Audit.Record(c.tenant, c.id, AuditRateLimit, err.Error())
		writeMsg(bw, &protocol.Error{Code: protocol.CodeRateLimit, Msg: err.Error()})
		return false
	}
	return true
}

// dispatch handles one decoded client message. done means the
// connection should close (Goodbye); a non-nil error means the socket
// is gone.
func (s *Server) dispatch(c *connState, bw *bufio.Writer, msg any) (done bool, err error) {
	switch m := msg.(type) {
	case *protocol.Ping:
		return false, writeMsg(bw, &protocol.Pong{})
	case *protocol.Goodbye:
		s.reap(c, "goodbye")
		return true, nil
	case *protocol.Stats:
		b, jerr := json.Marshal(s.Stats())
		if jerr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeSQL, Msg: jerr.Error()})
		}
		return false, writeMsg(bw, &protocol.StatsResult{JSON: b})

	case *protocol.Exec:
		if !s.admitStatement(c, bw, m.SQL) {
			return false, nil
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		res, xerr := s.doExec(c, m.SQL, m.Params)
		if xerr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: errCode(xerr), Msg: xerr.Error()})
		}
		return false, writeMsg(bw, &protocol.Result{RowsAffected: res.RowsAffected})

	case *protocol.Query:
		if !s.admitStatement(c, bw, m.SQL) {
			return false, nil
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		rows, qerr := s.doQuery(c, m.SQL, m.Params)
		if qerr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: errCode(qerr), Msg: qerr.Error()})
		}
		return false, s.writeRows(bw, rows)

	case *protocol.Prepare:
		ps, perr := s.prepare(c, m.SQL)
		if perr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: errCode(perr), Msg: perr.Error()})
		}
		c.nextStmt++
		id := c.nextStmt
		c.stmts[id] = ps
		return false, writeMsg(bw, &protocol.Prepared{ID: id, IsQuery: ps.isQuery})

	case *protocol.StmtExec:
		if !s.admitStatement(c, bw, fmt.Sprintf("stmt %d", m.ID)) {
			return false, nil
		}
		ps, ok := c.stmts[m.ID]
		if !ok {
			return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeSQL, Msg: fmt.Sprintf("unknown statement %d", m.ID)})
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		res, xerr := s.execPrepared(c, ps, m.Params)
		if xerr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: errCode(xerr), Msg: xerr.Error()})
		}
		return false, writeMsg(bw, &protocol.Result{RowsAffected: res.RowsAffected})

	case *protocol.StmtQuery:
		if !s.admitStatement(c, bw, fmt.Sprintf("stmt %d", m.ID)) {
			return false, nil
		}
		ps, ok := c.stmts[m.ID]
		if !ok {
			return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeSQL, Msg: fmt.Sprintf("unknown statement %d", m.ID)})
		}
		if perr := protocol.SanitizeParams(m.Params); perr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: perr.Error()})
		}
		rows, qerr := s.queryPrepared(c, ps, m.Params)
		if qerr != nil {
			return false, writeMsg(bw, &protocol.Error{Code: errCode(qerr), Msg: qerr.Error()})
		}
		return false, s.writeRows(bw, rows)

	case *protocol.StmtClose:
		delete(c.stmts, m.ID)
		return false, writeMsg(bw, &protocol.Result{})
	}
	s.protoErrors.Add(1)
	return false, writeMsg(bw, &protocol.Error{Code: protocol.CodeProtocol, Msg: fmt.Sprintf("unexpected message %T", msg)})
}

// --- statement execution -----------------------------------------------------

// doExec runs one non-query (or drained SELECT) statement.
func (s *Server) doExec(c *connState, q string, params []types.Value) (engine.Result, error) {
	if c.mapper == nil {
		return c.sess.Exec(q, params...)
	}
	st, err := sql.Parse(q)
	if err != nil {
		return engine.Result{}, err
	}
	if _, isSel := st.(*sql.SelectStmt); isSel {
		// Exec-of-SELECT in layout mode: run and drain.
		rows, qerr := c.mapper.Query(c.tenant, q, params...)
		if qerr != nil {
			return engine.Result{}, qerr
		}
		return engine.Result{RowsAffected: int64(len(rows.Data))}, nil
	}
	return c.mapper.Exec(c.tenant, q, params...)
}

// doQuery runs one SELECT.
func (s *Server) doQuery(c *connState, q string, params []types.Value) (*engine.Rows, error) {
	if c.mapper == nil {
		return c.sess.Query(q, params...)
	}
	return c.mapper.Query(c.tenant, q, params...)
}

// prepare registers one statement. In raw mode it is parsed once and
// the SQL string doubles as the engine's plan-cache key; in layout mode
// the rewrite is tenant-dependent, so only the classification happens
// here and the SQL is rewritten per execution.
func (s *Server) prepare(c *connState, q string) (*prepStmt, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	ps := &prepStmt{sql: q, st: st}
	if sel, ok := st.(*sql.SelectStmt); ok {
		ps.sel = sel
		ps.isQuery = true
	}
	return ps, nil
}

func (s *Server) execPrepared(c *connState, ps *prepStmt, params []types.Value) (engine.Result, error) {
	if c.mapper != nil {
		return s.doExec(c, ps.sql, params)
	}
	return c.sess.ExecStmt(ps.st, ps.sql, params...)
}

func (s *Server) queryPrepared(c *connState, ps *prepStmt, params []types.Value) (*engine.Rows, error) {
	if !ps.isQuery {
		return nil, fmt.Errorf("server: prepared statement is not a query")
	}
	if c.mapper != nil {
		return c.mapper.Query(c.tenant, ps.sql, params...)
	}
	return c.sess.QueryStmt(ps.sel, ps.sql, params...)
}

// writeRows streams a materialized result as RowsHeader + RowBatch
// frames, chunked to MaxRowBatch rows per frame; the final batch
// carries Last (a zero-row result is a single empty Last batch).
func (s *Server) writeRows(bw *bufio.Writer, rows *engine.Rows) error {
	if err := protocol.WriteFrame(bw, protocol.Encode(&protocol.RowsHeader{Columns: rows.Columns})); err != nil {
		return err
	}
	data := rows.Data
	for {
		n := len(data)
		last := n <= s.cfg.MaxRowBatch
		if !last {
			n = s.cfg.MaxRowBatch
		}
		rb := &protocol.RowBatch{Rows: data[:n], Last: last}
		if err := protocol.WriteFrame(bw, protocol.Encode(rb)); err != nil {
			return err
		}
		if last {
			return bw.Flush()
		}
		data = data[n:]
	}
}
