package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// executor is the fair-admission gate in front of the engine: a
// counting semaphore with a strict FIFO waiter queue. At 1024
// connections, unbounded concurrency turns into a thundering herd —
// every session's statement contends on the same engine internals and
// p99 collapses. Bounding concurrent statement execution keeps the
// engine at its throughput sweet spot, and FIFO hand-off (a released
// slot goes to the longest-waiting connection, never to a barger)
// keeps per-connection latency fair instead of power-law shaped.
//
// A nil *executor is the unlimited mode: every method no-ops.
type executor struct {
	mu     sync.Mutex
	slots  int
	active int
	// queue is a FIFO ring of parked acquirers; head indexes the oldest.
	queue    []chan struct{}
	head     int
	queueMax int

	waits     atomic.Int64
	waitNanos atomic.Int64
}

// executorStats is a point-in-time snapshot for Server.Stats.
type executorStats struct {
	slots      int
	active     int
	queueDepth int
	queueMax   int
	waits      int64
	waitNanos  int64
}

// newExecutor builds a gate with the given slot count; slots <= 0
// means unlimited (returns nil, and nil receivers no-op).
func newExecutor(slots int) *executor {
	if slots <= 0 {
		return nil
	}
	return &executor{slots: slots}
}

// acquire blocks until a slot is free. Admission is strictly FIFO: a
// caller parks whenever anyone is already waiting, even if a slot is
// technically free, so late arrivals cannot overtake.
func (e *executor) acquire() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.active < e.slots && e.head == len(e.queue) {
		e.active++
		e.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	e.queue = append(e.queue, ch)
	if d := len(e.queue) - e.head; d > e.queueMax {
		e.queueMax = d
	}
	e.mu.Unlock()
	e.waits.Add(1)
	start := time.Now()
	<-ch
	e.waitNanos.Add(time.Since(start).Nanoseconds())
}

// release frees a slot, handing it directly to the oldest waiter if
// one is parked (the slot never returns to the free pool over a
// waiter's head).
func (e *executor) release() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.head < len(e.queue) {
		ch := e.queue[e.head]
		e.queue[e.head] = nil
		e.head++
		// Compact once the dead prefix dominates so the ring does not
		// grow without bound across bursts.
		if e.head >= 64 && e.head*2 >= len(e.queue) {
			n := copy(e.queue, e.queue[e.head:])
			for i := n; i < len(e.queue); i++ {
				e.queue[i] = nil
			}
			e.queue = e.queue[:n]
			e.head = 0
		}
		e.mu.Unlock()
		close(ch) // slot ownership transfers to the waiter
		return
	}
	e.active--
	e.mu.Unlock()
}

// stats snapshots the gate.
func (e *executor) stats() executorStats {
	if e == nil {
		return executorStats{}
	}
	e.mu.Lock()
	s := executorStats{
		slots:      e.slots,
		active:     e.active,
		queueDepth: len(e.queue) - e.head,
		queueMax:   e.queueMax,
	}
	e.mu.Unlock()
	s.waits = e.waits.Load()
	s.waitNanos = e.waitNanos.Load()
	return s
}
