package server

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Audit event names.
const (
	AuditConnect    = "connect"      // handshake accepted
	AuditAuthFail   = "auth_fail"    // bad tenant or token
	AuditQuota      = "quota_reject" // session quota exhausted
	AuditRateLimit  = "rate_limit"   // statement rejected by rate limiter
	AuditStatement  = "statement"    // one statement (only with Statements on)
	AuditDisconnect = "disconnect"   // session reaped
)

// AuditEvent is one append-only audit record.
type AuditEvent struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Tenant int64     `json:"tenant"`
	Conn   uint64    `json:"conn"`
	Event  string    `json:"event"`
	Detail string    `json:"detail,omitempty"`
}

// auditFlushBytes flushes the mirror buffer once this much JSON is
// pending, independent of the timer.
const auditFlushBytes = 32 << 10

// auditFlushEvery bounds how long a mirrored event may sit buffered.
const auditFlushEvery = 50 * time.Millisecond

// AuditLog is an append-only log of security-relevant server events.
// Every record gets a strictly increasing sequence number; the most
// recent records are kept in a bounded in-memory ring, and each record
// is optionally mirrored as a JSON line to a writer (a file, for a
// durable trail). Safe for concurrent use.
//
// Mirror writes are buffered: records accumulate in memory and reach
// the writer in batches — when the buffer passes auditFlushBytes, when
// the flush timer (auditFlushEvery) fires, or on an explicit Flush or
// Close. At statement-audit volume this turns one writer syscall per
// event into one per batch; Server.Close flushes, so a clean shutdown
// never loses a buffered event.
type AuditLog struct {
	mu   sync.Mutex
	seq  uint64
	ring []AuditEvent // newest at the end, bounded by max
	max  int
	w    io.Writer

	pending    []byte      // mirror bytes not yet written to w
	flushTimer *time.Timer // armed while pending is non-empty
	closed     bool

	// Statements also audits every statement (high volume; off by
	// default — connection and rejection events are always recorded).
	Statements bool
}

// NewAuditLog returns an audit log keeping up to max recent events in
// memory (default 4096 if max <= 0) and mirroring records to w as JSON
// lines when w is non-nil.
func NewAuditLog(max int, w io.Writer) *AuditLog {
	if max <= 0 {
		max = 4096
	}
	return &AuditLog{max: max, w: w}
}

// Record appends one event. A nil log is a no-op, so call sites never
// need to guard.
func (l *AuditLog) Record(tenant int64, conn uint64, event, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e := AuditEvent{
		Seq:    l.seq,
		Time:   time.Now(),
		Tenant: tenant,
		Conn:   conn,
		Event:  event,
		Detail: detail,
	}
	l.ring = append(l.ring, e)
	if len(l.ring) > l.max {
		// Drop the oldest; the ring only ever exceeds max by one.
		copy(l.ring, l.ring[1:])
		l.ring = l.ring[:l.max]
	}
	if l.w != nil {
		if b, err := json.Marshal(e); err == nil {
			l.pending = append(l.pending, b...)
			l.pending = append(l.pending, '\n')
		}
		if len(l.pending) >= auditFlushBytes || l.closed {
			l.flushLocked()
		} else if l.flushTimer == nil {
			l.flushTimer = time.AfterFunc(auditFlushEvery, l.timedFlush)
		}
	}
}

// timedFlush is the timer callback: drain whatever accumulated.
func (l *AuditLog) timedFlush() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushTimer = nil
	l.flushLocked()
}

// flushLocked writes the pending mirror bytes. Caller holds l.mu.
func (l *AuditLog) flushLocked() {
	if len(l.pending) == 0 {
		return
	}
	l.w.Write(l.pending)
	l.pending = l.pending[:0]
}

// Flush forces any buffered mirror bytes out to the writer. Nil-safe.
func (l *AuditLog) Flush() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.flushTimer != nil {
		l.flushTimer.Stop()
		l.flushTimer = nil
	}
	l.flushLocked()
}

// Close flushes and puts the log into write-through mode: any event
// recorded after Close reaches the writer immediately (teardown paths
// may record disconnects after the owner flushed). Nil-safe.
func (l *AuditLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.flushTimer != nil {
		l.flushTimer.Stop()
		l.flushTimer = nil
	}
	l.flushLocked()
}

// Seq reports the number of events ever recorded.
func (l *AuditLog) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Recent returns the newest n events, oldest first.
func (l *AuditLog) Recent(n int) []AuditEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.ring) {
		n = len(l.ring)
	}
	out := make([]AuditEvent, n)
	copy(out, l.ring[len(l.ring)-n:])
	return out
}
