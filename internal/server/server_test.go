package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/types"
)

// testConn is a minimal wire client for exercising the server without
// the client package (the tests poke at raw frames too).
type testConn struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func dialServer(t *testing.T, addr net.Addr) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &testConn{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (c *testConn) send(m any) {
	c.t.Helper()
	if err := protocol.WriteFrame(c.nc, protocol.Encode(m)); err != nil {
		c.t.Fatalf("send %T: %v", m, err)
	}
}

func (c *testConn) recv() any {
	c.t.Helper()
	payload, err := protocol.ReadFrame(c.br)
	if err != nil {
		c.t.Fatalf("recv: %v", err)
	}
	m, err := protocol.Decode(payload)
	if err != nil {
		c.t.Fatalf("decode: %v", err)
	}
	return m
}

// recvErr expects an Error with the given code.
func (c *testConn) recvErr(code uint16) *protocol.Error {
	c.t.Helper()
	m := c.recv()
	e, ok := m.(*protocol.Error)
	if !ok {
		c.t.Fatalf("expected Error, got %T", m)
	}
	if e.Code != code {
		c.t.Fatalf("error code = %d (%s), want %d", e.Code, e.Msg, code)
	}
	return e
}

// hello performs a successful handshake.
func (c *testConn) hello(tenant int64, token string) {
	c.t.Helper()
	c.send(&protocol.Hello{Version: protocol.Version, Tenant: tenant, Token: token})
	if m := c.recv(); func() bool { _, ok := m.(*protocol.HelloOK); return !ok }() {
		c.t.Fatalf("expected HelloOK, got %#v", m)
	}
}

// exec round-trips one Exec and expects Result.
func (c *testConn) exec(q string, params ...types.Value) *protocol.Result {
	c.t.Helper()
	c.send(&protocol.Exec{SQL: q, Params: params})
	m := c.recv()
	r, ok := m.(*protocol.Result)
	if !ok {
		c.t.Fatalf("exec %q: expected Result, got %#v", q, m)
	}
	return r
}

// query round-trips one Query and collects the streamed rows.
func (c *testConn) query(q string, params ...types.Value) ([]string, [][]types.Value) {
	c.t.Helper()
	c.send(&protocol.Query{SQL: q, Params: params})
	m := c.recv()
	hdr, ok := m.(*protocol.RowsHeader)
	if !ok {
		c.t.Fatalf("query %q: expected RowsHeader, got %#v", q, m)
	}
	var rows [][]types.Value
	for {
		b, ok := c.recv().(*protocol.RowBatch)
		if !ok {
			c.t.Fatalf("query %q: expected RowBatch", q)
		}
		rows = append(rows, b.Rows...)
		if b.Last {
			return hdr.Columns, rows
		}
	}
}

// startRawServer builds an engine with one table and a raw-mode server.
func startRawServer(t *testing.T, cfg Config) (*Server, *engine.DB, net.Addr) {
	t.Helper()
	db := engine.Open(engine.Config{CheckpointBytes: -1})
	for _, q := range []string{
		"CREATE TABLE t (k INTEGER NOT NULL, v INTEGER)",
		"CREATE UNIQUE INDEX t_pk ON t (k)",
		"CREATE TABLE u (k INTEGER NOT NULL, v INTEGER)",
		"INSERT INTO u VALUES (0, 0)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 8; k++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, 0)", types.NewInt(int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	cfg.DB = db
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, db, addr
}

// waitDrained polls until the registry is empty and the engine holds
// no transactions or snapshot pins.
func waitDrained(t *testing.T, srv *Server, db *engine.DB) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := db.Stats()
		if srv.OpenSessions() == 0 && st.ActiveTxns == 0 && st.PinnedSnapshots == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("not drained: sessions=%d active=%d pinned=%d",
				srv.OpenSessions(), st.ActiveTxns, st.PinnedSnapshots)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHandshakeAuth(t *testing.T) {
	auth := NewAuthenticator()
	auth.Register(7, Credentials{Token: "secret"})
	audit := NewAuditLog(0, nil)
	srv, _, addr := startRawServer(t, Config{Auth: auth, Audit: audit})

	// Wrong token.
	c := dialServer(t, addr)
	c.send(&protocol.Hello{Version: protocol.Version, Tenant: 7, Token: "wrong"})
	c.recvErr(protocol.CodeAuth)

	// Unknown tenant: same error, no tenant-existence oracle.
	c = dialServer(t, addr)
	c.send(&protocol.Hello{Version: protocol.Version, Tenant: 99, Token: "secret"})
	c.recvErr(protocol.CodeAuth)

	// Wrong protocol version.
	c = dialServer(t, addr)
	c.send(&protocol.Hello{Version: protocol.Version + 1, Tenant: 7, Token: "secret"})
	c.recvErr(protocol.CodeProtocol)

	// First frame is not a Hello.
	c = dialServer(t, addr)
	c.send(&protocol.Ping{})
	c.recvErr(protocol.CodeProtocol)

	// Good credentials.
	c = dialServer(t, addr)
	c.hello(7, "secret")
	c.send(&protocol.Ping{})
	if _, ok := c.recv().(*protocol.Pong); !ok {
		t.Fatal("expected Pong")
	}

	if got := srv.Stats().AuthFailures; got != 2 {
		t.Fatalf("auth failures = %d, want 2", got)
	}
	// The audit trail saw the failures and the connect.
	var fails, connects int
	for _, e := range audit.Recent(100) {
		switch e.Event {
		case AuditAuthFail:
			fails++
		case AuditConnect:
			connects++
		}
	}
	if fails != 2 || connects != 1 {
		t.Fatalf("audit: fails=%d connects=%d, want 2/1", fails, connects)
	}
}

func TestSessionQuota(t *testing.T) {
	auth := NewAuthenticator()
	auth.Register(1, Credentials{Token: "tk", MaxSessions: 1})
	srv, db, addr := startRawServer(t, Config{Auth: auth})

	c1 := dialServer(t, addr)
	c1.hello(1, "tk")

	c2 := dialServer(t, addr)
	c2.send(&protocol.Hello{Version: protocol.Version, Tenant: 1, Token: "tk"})
	c2.recvErr(protocol.CodeQuota)

	// Releasing the first slot admits a new connection.
	c1.send(&protocol.Goodbye{})
	waitDrained(t, srv, db)
	c3 := dialServer(t, addr)
	c3.hello(1, "tk")
	if got := auth.Sessions(1); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
}

func TestStatementRateLimit(t *testing.T) {
	auth := NewAuthenticator()
	auth.Register(1, Credentials{Token: "tk", StatementsPerSec: 1, Burst: 2})
	// Frozen clock: no refill during the test.
	now := time.Unix(1000, 0)
	auth.now = func() time.Time { return now }
	srv, _, addr := startRawServer(t, Config{Auth: auth})

	c := dialServer(t, addr)
	c.hello(1, "tk")
	c.exec("SELECT COUNT(*) FROM t")
	c.exec("SELECT COUNT(*) FROM t")
	// Bucket empty: rejected, but the connection survives.
	c.send(&protocol.Exec{SQL: "SELECT COUNT(*) FROM t"})
	c.recvErr(protocol.CodeRateLimit)
	// Refill one token.
	now = now.Add(1100 * time.Millisecond)
	c.exec("SELECT COUNT(*) FROM t")
	if got := srv.Stats().RateLimited; got != 1 {
		t.Fatalf("rate limited = %d, want 1", got)
	}
}

func TestExecQueryPreparedRoundTrip(t *testing.T) {
	_, _, addr := startRawServer(t, Config{})
	c := dialServer(t, addr)
	c.hello(0, "")

	if r := c.exec("UPDATE t SET v = 5 WHERE k = 2"); r.RowsAffected != 1 {
		t.Fatalf("update affected %d rows", r.RowsAffected)
	}
	cols, rows := c.query("SELECT k, v FROM t WHERE k = ?", types.NewInt(2))
	if len(cols) != 2 || len(rows) != 1 || rows[0][1].Int != 5 {
		t.Fatalf("query got cols=%v rows=%v", cols, rows)
	}

	// Statement errors keep the connection usable.
	c.send(&protocol.Exec{SQL: "UPDATE nosuch SET v = 1"})
	c.recvErr(protocol.CodeSQL)
	c.exec("SELECT COUNT(*) FROM t")

	// Prepared statements.
	c.send(&protocol.Prepare{SQL: "SELECT v FROM t WHERE k = ?"})
	p, ok := c.recv().(*protocol.Prepared)
	if !ok || !p.IsQuery {
		t.Fatalf("expected query Prepared, got %#v", p)
	}
	c.send(&protocol.StmtQuery{ID: p.ID, Params: []types.Value{types.NewInt(2)}})
	if hdr, ok := c.recv().(*protocol.RowsHeader); !ok || len(hdr.Columns) != 1 {
		t.Fatalf("expected 1-column header")
	}
	b, ok := c.recv().(*protocol.RowBatch)
	if !ok || !b.Last || len(b.Rows) != 1 || b.Rows[0][0].Int != 5 {
		t.Fatalf("bad prepared batch: %#v", b)
	}
	c.send(&protocol.StmtClose{ID: p.ID})
	c.recv()
	c.send(&protocol.StmtQuery{ID: p.ID})
	c.recvErr(protocol.CodeSQL)

	// A transaction over the wire.
	c.exec("BEGIN")
	c.exec("UPDATE t SET v = 9 WHERE k = 3")
	c.exec("COMMIT")
	_, rows = c.query("SELECT v FROM t WHERE k = 3")
	if rows[0][0].Int != 9 {
		t.Fatalf("committed value = %d, want 9", rows[0][0].Int)
	}
}

// TestRowStreamingBatches: a result larger than MaxRowBatch arrives in
// multiple frames with only the final one marked Last.
func TestRowStreamingBatches(t *testing.T) {
	_, _, addr := startRawServer(t, Config{MaxRowBatch: 3})
	c := dialServer(t, addr)
	c.hello(0, "")
	c.send(&protocol.Query{SQL: "SELECT k FROM t"})
	if _, ok := c.recv().(*protocol.RowsHeader); !ok {
		t.Fatal("expected header")
	}
	var batches, rows int
	for {
		b := c.recv().(*protocol.RowBatch)
		batches++
		rows += len(b.Rows)
		if b.Last {
			break
		}
	}
	if rows != 8 || batches != 3 {
		t.Fatalf("got %d rows in %d batches, want 8 in 3", rows, batches)
	}
}

// TestAbruptDisconnectMidTransaction is the tentpole regression: a
// client drops its TCP connection with an open transaction holding a
// pinned snapshot and an uncommitted write. The reap path must roll it
// all back — no session in the registry, no active transaction, no
// pinned snapshot — and the GC horizon must advance past the dropped
// transaction's pin.
func TestAbruptDisconnectMidTransaction(t *testing.T) {
	srv, db, addr := startRawServer(t, Config{})
	c := dialServer(t, addr)
	c.hello(0, "")
	c.exec("BEGIN")
	c.exec("UPDATE t SET v = 77 WHERE k = 1")
	if st := db.Stats(); st.PinnedSnapshots != 1 || st.ActiveTxns != 1 {
		t.Fatalf("before drop: pinned=%d active=%d, want 1/1", st.PinnedSnapshots, st.ActiveTxns)
	}
	horizonPinned := db.Txns().Horizon()

	// A concurrent transaction commits (publishing a newer timestamp) —
	// the dropped client's pin must hold the horizon in place.
	other := db.Session()
	for _, q := range []string{"BEGIN", "UPDATE u SET v = 1 WHERE k = 0", "COMMIT"} {
		if _, err := other.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	other.Close()
	if h := db.Txns().Horizon(); h != horizonPinned {
		t.Fatalf("horizon moved to %d under a live pin (was %d)", h, horizonPinned)
	}

	// Kill the socket with the transaction wide open.
	c.nc.Close()
	waitDrained(t, srv, db)

	// The write rolled back.
	rows, err := db.Query("SELECT v FROM t WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int != 0 {
		t.Fatalf("write survived disconnect: v = %d", rows.Data[0][0].Int)
	}
	// With the pin released the horizon advances to the published clock,
	// strictly past where the dropped transaction froze it.
	if h := db.Txns().Horizon(); h <= horizonPinned {
		t.Fatalf("GC horizon stuck at %d (was %d while pinned)", h, horizonPinned)
	}
	// And a new writer to the same table gets the admission token
	// immediately (it was released by the reap).
	before := db.Stats().AdmissionWaits
	s := db.Session()
	defer s.Close()
	for _, q := range []string{"BEGIN", "UPDATE t SET v = 2 WHERE k = 0", "COMMIT"} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if after := db.Stats().AdmissionWaits; after != before {
		t.Fatalf("admission token leaked: waits %d -> %d", before, after)
	}
}

// TestServerCloseReapsOpenTransactions: shutdown with live sessions
// mid-transaction must drain them all.
func TestServerCloseReapsOpenTransactions(t *testing.T) {
	srv, db, addr := startRawServer(t, Config{})
	for i := 0; i < 4; i++ {
		c := dialServer(t, addr)
		c.hello(int64(i), "")
		c.exec("BEGIN")
		c.exec("UPDATE t SET v = v + 1 WHERE k = ?", types.NewInt(int64(i)))
	}
	if st := db.Stats(); st.ActiveTxns != 4 {
		t.Fatalf("active txns = %d, want 4", st.ActiveTxns)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if srv.OpenSessions() != 0 || st.ActiveTxns != 0 || st.PinnedSnapshots != 0 {
		t.Fatalf("after close: sessions=%d active=%d pinned=%d",
			srv.OpenSessions(), st.ActiveTxns, st.PinnedSnapshots)
	}
}

// TestCorruptFrameClosesConnection: a bad CRC gets a protocol Error and
// the connection is dropped; the session does not leak.
func TestCorruptFrameClosesConnection(t *testing.T) {
	srv, db, addr := startRawServer(t, Config{})
	c := dialServer(t, addr)
	c.hello(0, "")

	payload := protocol.Encode(&protocol.Ping{})
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], 0xDEADBEEF) // wrong CRC
	if _, err := c.nc.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	c.recvErr(protocol.CodeProtocol)
	// Server hangs up after a framing error.
	if _, err := protocol.ReadFrame(c.br); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after protocol error, got %v", err)
	}
	waitDrained(t, srv, db)
	if got := srv.Stats().ProtocolErrors; got != 1 {
		t.Fatalf("protocol errors = %d, want 1", got)
	}
}

// TestLayoutModeTenantIsolation: in layout mode each connection's
// logical SQL is rewritten for its handshake tenant, so tenants cannot
// see each other's rows even over the same shared physical table.
func TestLayoutModeTenantIsolation(t *testing.T) {
	schema := &core.Schema{Tables: []*core.Table{{
		Name: "Account",
		Key:  "Aid",
		Columns: []core.Column{
			{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
			{Name: "Name", Type: types.VarcharType(50)},
		},
	}}}
	layout, err := core.NewBasicLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{CheckpointBytes: -1})
	if err := layout.Create(db, []*core.Tenant{{ID: 1}, {ID: 2}}); err != nil {
		t.Fatal(err)
	}
	auth := NewAuthenticator()
	auth.Register(1, Credentials{Token: "t1"})
	auth.Register(2, Credentials{Token: "t2"})
	srv, err := New(Config{DB: db, Layout: layout, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1 := dialServer(t, addr)
	c1.hello(1, "t1")
	c2 := dialServer(t, addr)
	c2.hello(2, "t2")

	c1.exec("INSERT INTO Account (Aid, Name) VALUES (?, ?)",
		types.NewInt(100), types.NewString("acme"))
	c2.exec("INSERT INTO Account (Aid, Name) VALUES (?, ?)",
		types.NewInt(200), types.NewString("globex"))

	_, rows1 := c1.query("SELECT Aid, Name FROM Account")
	_, rows2 := c2.query("SELECT Aid, Name FROM Account")
	if len(rows1) != 1 || rows1[0][0].Int != 100 {
		t.Fatalf("tenant 1 sees %v", rows1)
	}
	if len(rows2) != 1 || rows2[0][0].Int != 200 {
		t.Fatalf("tenant 2 sees %v", rows2)
	}

	// A logical transaction over the wire in layout mode rolls back on
	// abrupt disconnect like any other.
	c1.send(&protocol.Goodbye{})
	c2.exec("BEGIN")
	c2.exec("UPDATE Account SET Name = ? WHERE Aid = ?",
		types.NewString("gone"), types.NewInt(200))
	c2.nc.Close()
	waitDrained(t, srv, db)
	c3 := dialServer(t, addr)
	c3.hello(2, "t2")
	_, rows := c3.query("SELECT Name FROM Account WHERE Aid = ?", types.NewInt(200))
	if rows[0][0].Str != "globex" {
		t.Fatalf("tenant 2 update survived disconnect: %v", rows[0][0])
	}
}
