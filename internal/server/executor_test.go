package server

import (
	"sync"
	"testing"
	"time"
)

// TestExecutorFIFOOrder: with one slot, waiters are admitted strictly
// in arrival order — released slots hand off to the oldest waiter.
func TestExecutorFIFOOrder(t *testing.T) {
	e := newExecutor(1)
	e.acquire() // hold the only slot

	const n = 16
	var mu sync.Mutex
	var order []int
	started := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize arrival so queue order is deterministic: each
			// goroutine parks before the next is released to start.
			<-started
			e.acquire()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			e.release()
		}(i)
		started <- struct{}{}
		waitQueued(t, e, i+1)
	}
	e.release() // let the chain run
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
	s := e.stats()
	if s.waits != n {
		t.Fatalf("waits = %d, want %d", s.waits, n)
	}
	if s.queueMax != n {
		t.Fatalf("queueMax = %d, want %d", s.queueMax, n)
	}
	if s.queueDepth != 0 || s.active != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
	if s.waitNanos <= 0 {
		t.Fatalf("waitNanos = %d, want > 0", s.waitNanos)
	}
}

// waitQueued polls until the gate has depth waiters parked.
func waitQueued(t *testing.T, e *executor, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.stats().queueDepth < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", depth, e.stats().queueDepth)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestExecutorConcurrencyBound: active never exceeds the slot count
// under a storm of concurrent acquirers.
func TestExecutorConcurrencyBound(t *testing.T) {
	const slots = 4
	e := newExecutor(slots)
	var mu sync.Mutex
	var active, peak int
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.acquire()
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			mu.Lock()
			active--
			mu.Unlock()
			e.release()
		}()
	}
	wg.Wait()
	if peak > slots {
		t.Fatalf("peak concurrency %d exceeds %d slots", peak, slots)
	}
	if s := e.stats(); s.active != 0 || s.queueDepth != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
}

// TestExecutorUnlimited: slots <= 0 disables the gate (nil executor,
// all methods no-op).
func TestExecutorUnlimited(t *testing.T) {
	e := newExecutor(-1)
	if e != nil {
		t.Fatal("negative slots should disable the gate")
	}
	e.acquire()
	e.release()
	if s := e.stats(); s.slots != 0 {
		t.Fatalf("nil stats: %+v", s)
	}
}

// TestExecutorRingCompaction: a long burst through the queue must not
// leave the ring growing without bound.
func TestExecutorRingCompaction(t *testing.T) {
	e := newExecutor(1)
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for i := 0; i < 100; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.acquire()
				e.release()
			}()
		}
		wg.Wait()
	}
	e.mu.Lock()
	qcap := cap(e.queue)
	e.mu.Unlock()
	if qcap > 1024 {
		t.Fatalf("queue ring grew to cap %d", qcap)
	}
}
