package server

import (
	"bufio"
	"errors"
	"sync/atomic"

	"repro/internal/protocol"
	"repro/internal/wal"
)

// Replication ship loop: a connection that sends ReplSubscribe stops
// being a statement connection and becomes a one-way WAL stream. The
// primary ships durable frame ranges as fast as the follower's socket
// drains them, parks on the log's durability broadcast when caught up,
// and reads applied-position acks on a side goroutine for lag
// telemetry (never for flow control — a slow follower only backlogs
// its own socket).

// replShipChunk bounds one ReplFrames payload. Well under
// protocol.MaxFrame, large enough to amortize framing on catch-up.
const replShipChunk = 512 << 10

// replSnapshotChunk bounds one ReplSnapshot payload.
const replSnapshotChunk = 1 << 20

// serveReplication runs the ship loop until the connection dies or the
// subscriber cancels. Called from handleConn; when it returns the
// connection is reaped.
func (s *Server) serveReplication(c *connState, br *bufio.Reader, w *connWriter, sub *protocol.ReplSubscribe) {
	db := s.cfg.DB
	log := db.WAL()
	if log == nil {
		writeMsg(w, &protocol.Error{Code: protocol.CodeSQL, Msg: "server runs without a WAL; nothing to replicate"})
		return
	}

	// Ack reader: drains ReplAck frames for telemetry and doubles as the
	// disconnect detector — when the peer goes away (or misbehaves), the
	// cancel flag plus a Wake unparks a ship loop idling in WaitDurable.
	var cancel atomic.Bool
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		defer func() {
			cancel.Store(true)
			log.Wake()
		}()
		for {
			payload, err := protocol.ReadFrame(br)
			if err != nil {
				return
			}
			msg, err := protocol.Decode(payload)
			if err != nil {
				return
			}
			ack, ok := msg.(*protocol.ReplAck)
			if !ok {
				return
			}
			db.NoteReplAck(wal.LSN(ack.Applied))
		}
	}()
	defer func() {
		// Kill the socket so the ack reader's blocked ReadFrame returns,
		// then wait it out — reap (our caller) closes again idempotently.
		c.nc.Close()
		<-ackDone
	}()

	pos := wal.LSN(sub.From)

	// Bootstrap: a position below retained history (0 = "I have
	// nothing") cannot be tailed; ship a full image first. The image is
	// cut just after a checkpoint, so its log tail is short.
	if base, _ := log.DurableBounds(); pos < base {
		img, err := db.ReplImage()
		if err != nil {
			writeMsg(w, &protocol.Error{Code: protocol.CodeSQL, Msg: err.Error()})
			return
		}
		blob, err := img.Encode()
		if err != nil {
			writeMsg(w, &protocol.Error{Code: protocol.CodeSQL, Msg: err.Error()})
			return
		}
		for off := 0; ; off += replSnapshotChunk {
			end := off + replSnapshotChunk
			last := end >= len(blob)
			if last {
				end = len(blob)
			}
			if err := w.send(&protocol.ReplSnapshot{Last: last, Chunk: blob[off:end]}); err != nil {
				return
			}
			if last {
				break
			}
		}
		if err := w.flush(); err != nil {
			return
		}
		// Everything inside the image is already on the follower; tail
		// from its durable horizon.
		pos = img.LogBase + wal.LSN(len(img.Log))
	}

	for {
		buf, next, err := log.ReadDurable(pos, replShipChunk)
		if err != nil {
			// Truncated history (a checkpoint outran a stalled shipper) or
			// a crashed log: either way this stream is over; the follower
			// reconnects and re-subscribes (re-bootstrapping if told to).
			if errors.Is(err, wal.ErrTruncatedHistory) {
				writeMsg(w, &protocol.Error{Code: protocol.CodeSQL, Msg: err.Error()})
			}
			return
		}
		if next > pos {
			if err := w.send(&protocol.ReplFrames{Start: uint64(pos), Frames: buf}); err != nil {
				return
			}
			if err := w.flush(); err != nil {
				return
			}
			pos = next
			db.NoteReplShipped(pos)
			continue
		}
		if _, err := log.WaitDurableCancel(pos, &cancel); err != nil {
			return
		}
	}
}
