package server

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Authentication and admission errors; the connection handler maps
// them onto protocol error codes.
var (
	// ErrAuth: unknown tenant or wrong token. Deliberately one error for
	// both, so the handshake does not leak which tenants exist.
	ErrAuth = errors.New("server: authentication failed")
	// ErrQuota: the tenant's concurrent-session quota is exhausted.
	ErrQuota = errors.New("server: session quota exhausted")
	// ErrRateLimited: the tenant's statement rate limit is exhausted.
	ErrRateLimited = errors.New("server: statement rate limit exceeded")
)

// Credentials configure one tenant's access.
type Credentials struct {
	// Token is the shared secret presented in the handshake.
	Token string
	// MaxSessions bounds the tenant's concurrent connections; 0 means
	// unlimited.
	MaxSessions int
	// StatementsPerSec is the tenant's sustained statement rate; 0 means
	// unlimited. Burst is the token-bucket depth (default: the rate,
	// minimum 1) — short spikes up to Burst statements pass at line
	// speed before the sustained rate applies.
	StatementsPerSec float64
	Burst            float64
}

// tenantAuth is one tenant's registered credentials plus its live
// admission state (session count, rate-limiter bucket).
type tenantAuth struct {
	creds Credentials

	mu       sync.Mutex
	sessions int
	tokens   float64
	last     time.Time
}

// Authenticator holds per-tenant credentials, session quotas, and
// statement rate limits. Safe for concurrent use.
type Authenticator struct {
	mu      sync.RWMutex
	tenants map[int64]*tenantAuth

	// now is the clock (swapped by rate-limit tests).
	now func() time.Time
}

// NewAuthenticator returns an empty credential registry.
func NewAuthenticator() *Authenticator {
	return &Authenticator{tenants: make(map[int64]*tenantAuth), now: time.Now}
}

// Register installs (or replaces) a tenant's credentials.
func (a *Authenticator) Register(tenant int64, c Credentials) {
	if c.StatementsPerSec > 0 && c.Burst <= 0 {
		c.Burst = c.StatementsPerSec
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tenants[tenant] = &tenantAuth{creds: c, tokens: c.Burst}
}

// lookup returns the tenant's auth state, or nil.
func (a *Authenticator) lookup(tenant int64) *tenantAuth {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.tenants[tenant]
}

// Authenticate checks a handshake's credentials in constant time (for
// the token comparison; tenant existence necessarily short-circuits).
func (a *Authenticator) Authenticate(tenant int64, token string) error {
	ta := a.lookup(tenant)
	if ta == nil {
		return fmt.Errorf("%w (tenant %d)", ErrAuth, tenant)
	}
	if subtle.ConstantTimeCompare([]byte(ta.creds.Token), []byte(token)) != 1 {
		return fmt.Errorf("%w (tenant %d)", ErrAuth, tenant)
	}
	return nil
}

// AcquireSession claims a session slot under the tenant's quota; the
// caller must ReleaseSession exactly once on success.
func (a *Authenticator) AcquireSession(tenant int64) error {
	ta := a.lookup(tenant)
	if ta == nil {
		return fmt.Errorf("%w (tenant %d)", ErrAuth, tenant)
	}
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if ta.creds.MaxSessions > 0 && ta.sessions >= ta.creds.MaxSessions {
		return fmt.Errorf("%w (tenant %d: %d open)", ErrQuota, tenant, ta.sessions)
	}
	ta.sessions++
	return nil
}

// ReleaseSession returns a session slot.
func (a *Authenticator) ReleaseSession(tenant int64) {
	ta := a.lookup(tenant)
	if ta == nil {
		return
	}
	ta.mu.Lock()
	if ta.sessions > 0 {
		ta.sessions--
	}
	ta.mu.Unlock()
}

// Sessions reports a tenant's open session count.
func (a *Authenticator) Sessions(tenant int64) int {
	ta := a.lookup(tenant)
	if ta == nil {
		return 0
	}
	ta.mu.Lock()
	defer ta.mu.Unlock()
	return ta.sessions
}

// AllowStatement charges one statement against the tenant's rate
// limit (a token bucket refilled at StatementsPerSec up to Burst).
func (a *Authenticator) AllowStatement(tenant int64) error {
	ta := a.lookup(tenant)
	if ta == nil {
		return fmt.Errorf("%w (tenant %d)", ErrAuth, tenant)
	}
	rate := ta.creds.StatementsPerSec
	if rate <= 0 {
		return nil
	}
	now := a.now()
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if !ta.last.IsZero() {
		ta.tokens += now.Sub(ta.last).Seconds() * rate
		if ta.tokens > ta.creds.Burst {
			ta.tokens = ta.creds.Burst
		}
	}
	ta.last = now
	if ta.tokens < 1 {
		return fmt.Errorf("%w (tenant %d)", ErrRateLimited, tenant)
	}
	ta.tokens--
	return nil
}
