// Package btree implements a B+tree keyed by opaque byte strings whose
// pages live in the shared buffer pool. Because index pages compete for
// buffer-pool frames exactly like data pages, the paper's §5 effect —
// index-root eviction once the table count exhausts the meta-data
// budget — arises naturally.
//
// Keys must be unique at this layer. Non-unique SQL indexes append the
// record's RID encoding to the key (a "partitioned B-tree" in Graefe's
// sense: the leading columns are highly redundant and simply partition
// the tree, as the paper notes for (Tenant, Table, Chunk, Row) indexes).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// ErrDuplicateKey is returned when inserting a key that already exists.
var ErrDuplicateKey = errors.New("btree: duplicate key")

// ErrKeyNotFound is returned by Delete and Get for missing keys.
var ErrKeyNotFound = errors.New("btree: key not found")

// Node page layout:
//
//	[0]     isLeaf (1) / inner (0)
//	[1:3)   entry count, uint16
//	[3:11)  leaf: next-leaf PageID; inner: child[0] PageID
//	[11:)   entries, serialized back to back:
//	        leaf:  keyLen uvarint, key, page uint64, slot uint16
//	        inner: keyLen uvarint, key, child uint64
const nodeHeader = 11

type leafNode struct {
	next storage.PageID
	keys [][]byte
	rids []storage.RID
}

type innerNode struct {
	children []storage.PageID // len = len(keys)+1
	keys     [][]byte
}

// BTree is the tree handle. Mutations must be externally serialized
// against each other (the engine's table write locks do this); readers
// may run concurrently with each other but not with a writer.
type BTree struct {
	pool *storage.BufferPool
	mu   sync.RWMutex
	root storage.PageID
	size int64
}

// New creates an empty tree with a single leaf root.
func New(pool *storage.BufferPool) (*BTree, error) {
	id, buf, err := pool.NewPage(storage.CatIndex)
	if err != nil {
		return nil, err
	}
	encodeLeaf(buf, &leafNode{})
	pool.Unpin(id, true)
	return &BTree{pool: pool, root: id}, nil
}

// Len returns the number of entries.
func (t *BTree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// --- node (de)serialization -------------------------------------------------

func isLeaf(buf []byte) bool { return buf[0] == 1 }

func decodeLeaf(buf []byte) *leafNode {
	n := int(binary.LittleEndian.Uint16(buf[1:3]))
	ln := &leafNode{
		next: storage.PageID(binary.LittleEndian.Uint64(buf[3:11])),
		keys: make([][]byte, 0, n),
		rids: make([]storage.RID, 0, n),
	}
	p := nodeHeader
	for i := 0; i < n; i++ {
		kl, sz := binary.Uvarint(buf[p:])
		p += sz
		key := append([]byte(nil), buf[p:p+int(kl)]...)
		p += int(kl)
		page := storage.PageID(binary.LittleEndian.Uint64(buf[p:]))
		slot := binary.LittleEndian.Uint16(buf[p+8:])
		p += 10
		ln.keys = append(ln.keys, key)
		ln.rids = append(ln.rids, storage.RID{Page: page, Slot: slot})
	}
	return ln
}

func leafSize(n *leafNode) int {
	sz := nodeHeader
	for _, k := range n.keys {
		sz += uvarintLen(uint64(len(k))) + len(k) + 10
	}
	return sz
}

func encodeLeaf(buf []byte, n *leafNode) {
	buf[0] = 1
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(n.next))
	p := nodeHeader
	for i, k := range n.keys {
		p += binary.PutUvarint(buf[p:], uint64(len(k)))
		copy(buf[p:], k)
		p += len(k)
		binary.LittleEndian.PutUint64(buf[p:], uint64(n.rids[i].Page))
		binary.LittleEndian.PutUint16(buf[p+8:], n.rids[i].Slot)
		p += 10
	}
}

func decodeInner(buf []byte) *innerNode {
	n := int(binary.LittleEndian.Uint16(buf[1:3]))
	in := &innerNode{
		children: make([]storage.PageID, 1, n+1),
		keys:     make([][]byte, 0, n),
	}
	in.children[0] = storage.PageID(binary.LittleEndian.Uint64(buf[3:11]))
	p := nodeHeader
	for i := 0; i < n; i++ {
		kl, sz := binary.Uvarint(buf[p:])
		p += sz
		key := append([]byte(nil), buf[p:p+int(kl)]...)
		p += int(kl)
		child := storage.PageID(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		in.keys = append(in.keys, key)
		in.children = append(in.children, child)
	}
	return in
}

func innerSize(n *innerNode) int {
	sz := nodeHeader
	for _, k := range n.keys {
		sz += uvarintLen(uint64(len(k))) + len(k) + 8
	}
	return sz
}

func encodeInner(buf []byte, n *innerNode) {
	buf[0] = 0
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(n.children[0]))
	p := nodeHeader
	for i, k := range n.keys {
		p += binary.PutUvarint(buf[p:], uint64(len(k)))
		copy(buf[p:], k)
		p += len(k)
		binary.LittleEndian.PutUint64(buf[p:], uint64(n.children[i+1]))
		p += 8
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// --- search helpers ----------------------------------------------------------

// leafPos returns the insertion position for key: the first index whose
// key is >= key, and whether it is an exact match.
func leafPos(n *leafNode, key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
}

// childFor picks the child subtree for key: the largest separator <= key
// routes to its right child; otherwise child[0].
func childFor(n *innerNode, key []byte) (int, storage.PageID) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, n.children[lo]
}

type pathEntry struct {
	page     storage.PageID
	childIdx int
}

// descend walks from the root to the leaf that would hold key,
// returning the inner-node path.
func (t *BTree) descend(key []byte) ([]pathEntry, storage.PageID, error) {
	var path []pathEntry
	cur := t.root
	for {
		buf, err := t.pool.Fetch(cur, storage.CatIndex)
		if err != nil {
			return nil, 0, err
		}
		if isLeaf(buf) {
			t.pool.Unpin(cur, false)
			return path, cur, nil
		}
		in := decodeInner(buf)
		t.pool.Unpin(cur, false)
		idx, child := childFor(in, key)
		path = append(path, pathEntry{page: cur, childIdx: idx})
		cur = child
	}
}

// Get returns the RID stored under key.
func (t *BTree) Get(key []byte) (storage.RID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, leafID, err := t.descend(key)
	if err != nil {
		return storage.RID{}, err
	}
	buf, err := t.pool.Fetch(leafID, storage.CatIndex)
	if err != nil {
		return storage.RID{}, err
	}
	ln := decodeLeaf(buf)
	t.pool.Unpin(leafID, false)
	pos, ok := leafPos(ln, key)
	if !ok {
		return storage.RID{}, ErrKeyNotFound
	}
	return ln.rids[pos], nil
}

// Insert adds (key, rid). It fails with ErrDuplicateKey if key exists.
func (t *BTree) Insert(key []byte, rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	maxEntry := uvarintLen(uint64(len(key))) + len(key) + 10
	if nodeHeader+2*maxEntry > t.pool.PageSize() {
		return fmt.Errorf("btree: key of %d bytes too large for page", len(key))
	}
	path, leafID, err := t.descend(key)
	if err != nil {
		return err
	}
	buf, err := t.pool.Fetch(leafID, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, exists := leafPos(ln, key)
	if exists {
		t.pool.Unpin(leafID, false)
		return ErrDuplicateKey
	}
	ln.keys = insertAt(ln.keys, pos, append([]byte(nil), key...))
	ln.rids = insertRIDAt(ln.rids, pos, rid)

	if leafSize(ln) <= t.pool.PageSize() {
		encodeLeaf(buf, ln)
		t.pool.Unpin(leafID, true)
		t.size++
		return nil
	}

	// Split the leaf.
	mid := len(ln.keys) / 2
	right := &leafNode{next: ln.next, keys: ln.keys[mid:], rids: ln.rids[mid:]}
	rightID, rightBuf, err := t.pool.NewPage(storage.CatIndex)
	if err != nil {
		t.pool.Unpin(leafID, false)
		return err
	}
	encodeLeaf(rightBuf, right)
	t.pool.Unpin(rightID, true)

	left := &leafNode{next: rightID, keys: ln.keys[:mid], rids: ln.rids[:mid]}
	encodeLeaf(buf, left)
	t.pool.Unpin(leafID, true)

	if err := t.insertSeparator(path, append([]byte(nil), right.keys[0]...), rightID); err != nil {
		return err
	}
	t.size++
	return nil
}

// insertSeparator pushes a (sep, rightChild) pair up the path,
// splitting inner nodes as needed.
func (t *BTree) insertSeparator(path []pathEntry, sep []byte, rightChild storage.PageID) error {
	for level := len(path) - 1; level >= 0; level-- {
		pe := path[level]
		buf, err := t.pool.Fetch(pe.page, storage.CatIndex)
		if err != nil {
			return err
		}
		in := decodeInner(buf)
		in.keys = insertAt(in.keys, pe.childIdx, sep)
		in.children = insertPIDAt(in.children, pe.childIdx+1, rightChild)

		if innerSize(in) <= t.pool.PageSize() {
			encodeInner(buf, in)
			t.pool.Unpin(pe.page, true)
			return nil
		}
		// Split inner node: middle key moves up.
		mid := len(in.keys) / 2
		upKey := in.keys[mid]
		right := &innerNode{keys: append([][]byte(nil), in.keys[mid+1:]...),
			children: append([]storage.PageID(nil), in.children[mid+1:]...)}
		left := &innerNode{keys: in.keys[:mid], children: in.children[:mid+1]}

		rightID, rightBuf, err := t.pool.NewPage(storage.CatIndex)
		if err != nil {
			t.pool.Unpin(pe.page, false)
			return err
		}
		encodeInner(rightBuf, right)
		t.pool.Unpin(rightID, true)
		encodeInner(buf, left)
		t.pool.Unpin(pe.page, true)

		sep, rightChild = upKey, rightID
	}
	// Root split.
	oldRoot := t.root
	newRootID, rootBuf, err := t.pool.NewPage(storage.CatIndex)
	if err != nil {
		return err
	}
	encodeInner(rootBuf, &innerNode{children: []storage.PageID{oldRoot, rightChild}, keys: [][]byte{sep}})
	t.pool.Unpin(newRootID, true)
	t.root = newRootID
	return nil
}

// Delete removes key. Underflowed nodes are left in place (lazy
// deletion); pages are only reclaimed by Drop.
func (t *BTree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, leafID, err := t.descend(key)
	if err != nil {
		return err
	}
	buf, err := t.pool.Fetch(leafID, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, ok := leafPos(ln, key)
	if !ok {
		t.pool.Unpin(leafID, false)
		return ErrKeyNotFound
	}
	ln.keys = append(ln.keys[:pos], ln.keys[pos+1:]...)
	ln.rids = append(ln.rids[:pos], ln.rids[pos+1:]...)
	encodeLeaf(buf, ln)
	t.pool.Unpin(leafID, true)
	t.size--
	return nil
}

// Update changes the RID stored under an existing key.
func (t *BTree) Update(key []byte, rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, leafID, err := t.descend(key)
	if err != nil {
		return err
	}
	buf, err := t.pool.Fetch(leafID, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, ok := leafPos(ln, key)
	if !ok {
		t.pool.Unpin(leafID, false)
		return ErrKeyNotFound
	}
	ln.rids[pos] = rid
	encodeLeaf(buf, ln)
	t.pool.Unpin(leafID, true)
	return nil
}

// Height returns the number of levels (1 for a lone leaf).
func (t *BTree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := 1
	cur := t.root
	for {
		buf, err := t.pool.Fetch(cur, storage.CatIndex)
		if err != nil {
			return 0, err
		}
		leaf := isLeaf(buf)
		var next storage.PageID
		if !leaf {
			next = decodeInner(buf).children[0]
		}
		t.pool.Unpin(cur, false)
		if leaf {
			return h, nil
		}
		h++
		cur = next
	}
}

// Drop frees every page of the tree. The tree is unusable afterwards.
func (t *BTree) Drop() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropRec(t.root)
}

func (t *BTree) dropRec(id storage.PageID) error {
	buf, err := t.pool.Fetch(id, storage.CatIndex)
	if err != nil {
		return err
	}
	var children []storage.PageID
	if !isLeaf(buf) {
		children = decodeInner(buf).children
	}
	t.pool.Unpin(id, false)
	for _, c := range children {
		if err := t.dropRec(c); err != nil {
			return err
		}
	}
	return t.pool.FreePage(id)
}

func insertAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertRIDAt(s []storage.RID, i int, v storage.RID) []storage.RID {
	s = append(s, storage.RID{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertPIDAt(s []storage.PageID, i int, v storage.PageID) []storage.PageID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
