// Package btree implements a B+tree keyed by opaque byte strings whose
// pages live in the shared buffer pool. Because index pages compete for
// buffer-pool frames exactly like data pages, the paper's §5 effect —
// index-root eviction once the table count exhausts the meta-data
// budget — arises naturally.
//
// Keys must be unique at this layer. Non-unique SQL indexes append the
// record's RID encoding to the key (a "partitioned B-tree" in Graefe's
// sense: the leading columns are highly redundant and simply partition
// the tree, as the paper notes for (Tenant, Table, Chunk, Row) indexes).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// ErrDuplicateKey is returned when inserting a key that already exists.
var ErrDuplicateKey = errors.New("btree: duplicate key")

// ErrKeyNotFound is returned by Delete and Get for missing keys.
var ErrKeyNotFound = errors.New("btree: key not found")

// Node page layout:
//
//	[0]     isLeaf (1) / inner (0)
//	[1:3)   entry count, uint16
//	[3:11)  leaf: next-leaf PageID; inner: child[0] PageID
//	[11:)   entries, serialized back to back:
//	        leaf:  keyLen uvarint, key, page uint64, slot uint16
//	        inner: keyLen uvarint, key, child uint64
const nodeHeader = 11

type leafNode struct {
	next storage.PageID
	keys [][]byte
	rids []storage.RID
}

type innerNode struct {
	children []storage.PageID // len = len(keys)+1
	keys     [][]byte
}

// Logger receives redo records for tree page mutations. wal.Scope's
// TreeLogger implements it structurally; btree does not import wal.
// Every method is called BEFORE the corresponding bytes change, so a
// failed append leaves the tree untouched and in agreement with the
// log.
type Logger interface {
	// BTreePageAlloc records a fresh index-page allocation.
	BTreePageAlloc(page storage.PageID) error
	// BTreeInit records the formatting of page as an empty leaf.
	BTreeInit(page storage.PageID) error
	// BTreeInsert records adding key→rid on the leaf at page.
	BTreeInsert(page storage.PageID, key []byte, rid storage.RID) error
	// BTreeDelete records removing key from the leaf at page.
	BTreeDelete(page storage.PageID, key []byte) error
	// BTreeUpdate records repointing key to rid on the leaf at page.
	BTreeUpdate(page storage.PageID, key []byte, rid storage.RID) error
	// BTreePageImage records the full post-image of a restructured page.
	BTreePageImage(page storage.PageID, img []byte) error
	// BTreeRoot records a root change.
	BTreeRoot(old, new storage.PageID) error
}

// BTree is the tree handle. Mutations must be externally serialized
// against each other (the engine's table write locks do this); readers
// may run concurrently with each other but not with a writer.
type BTree struct {
	pool   *storage.BufferPool
	mu     sync.RWMutex
	root   storage.PageID
	size   int64
	logger Logger
}

// New creates an empty tree with a single leaf root.
func New(pool *storage.BufferPool) (*BTree, error) {
	return NewLogged(pool, nil)
}

// NewLogged creates an empty tree, logging the root allocation and
// initialization through lg (which stays installed).
func NewLogged(pool *storage.BufferPool, lg Logger) (*BTree, error) {
	id, buf, err := pool.NewPage(storage.CatIndex)
	if err != nil {
		return nil, err
	}
	if lg != nil {
		if err := lg.BTreePageAlloc(id); err == nil {
			err = lg.BTreeInit(id)
		}
		if err != nil {
			pool.Unpin(id, false)
			_ = pool.FreePage(id)
			return nil, err
		}
	}
	encodeLeaf(buf, &leafNode{})
	pool.Unpin(id, true)
	return &BTree{pool: pool, root: id, logger: lg}, nil
}

// Restore rebuilds a tree handle over an existing root page (the
// recovery path). Call RecountSize afterwards to rebuild the entry
// count.
func Restore(pool *storage.BufferPool, root storage.PageID) *BTree {
	return &BTree{pool: pool, root: root}
}

// SetLogger installs (or, with nil, removes) the WAL logger. The
// engine swaps it per statement under the table's write lock.
func (t *BTree) SetLogger(lg Logger) {
	t.mu.Lock()
	t.logger = lg
	t.mu.Unlock()
}

// Root returns the current root page ID.
func (t *BTree) Root() storage.PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// SetRoot repoints the tree from old to new — the live replay of a
// primary's KBTreeRoot record on a replica, where the split that grew
// the tree happened through the redo path rather than through Insert.
// Reports whether the tree's root actually was old (a record belonging
// to some other table's index matches nothing).
func (t *BTree) SetRoot(old, new storage.PageID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root != old {
		return false
	}
	t.root = new
	return true
}

// Len returns the number of entries.
func (t *BTree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// --- node (de)serialization -------------------------------------------------

func isLeaf(buf []byte) bool { return buf[0] == 1 }

func decodeLeaf(buf []byte) *leafNode {
	n := int(binary.LittleEndian.Uint16(buf[1:3]))
	ln := &leafNode{
		next: storage.PageID(binary.LittleEndian.Uint64(buf[3:11])),
		keys: make([][]byte, 0, n),
		rids: make([]storage.RID, 0, n),
	}
	// All keys share one backing array (one allocation per decode, not
	// one per key). Each key is capped with a full slice expression so
	// an append through one can never clobber its neighbour. Key bytes
	// are immutable after decode: mutations replace whole entries in
	// ln.keys, they never write through the byte slices.
	total := 0
	for i, q := 0, nodeHeader; i < n; i++ {
		kl, sz := binary.Uvarint(buf[q:])
		q += sz + int(kl) + 10
		total += int(kl)
	}
	backing := make([]byte, 0, total)
	p := nodeHeader
	for i := 0; i < n; i++ {
		kl, sz := binary.Uvarint(buf[p:])
		p += sz
		start := len(backing)
		backing = append(backing, buf[p:p+int(kl)]...)
		p += int(kl)
		page := storage.PageID(binary.LittleEndian.Uint64(buf[p:]))
		slot := binary.LittleEndian.Uint16(buf[p+8:])
		p += 10
		ln.keys = append(ln.keys, backing[start:len(backing):len(backing)])
		ln.rids = append(ln.rids, storage.RID{Page: page, Slot: slot})
	}
	return ln
}

func leafSize(n *leafNode) int {
	sz := nodeHeader
	for _, k := range n.keys {
		sz += uvarintLen(uint64(len(k))) + len(k) + 10
	}
	return sz
}

func encodeLeaf(buf []byte, n *leafNode) {
	buf[0] = 1
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(n.next))
	p := nodeHeader
	for i, k := range n.keys {
		p += binary.PutUvarint(buf[p:], uint64(len(k)))
		copy(buf[p:], k)
		p += len(k)
		binary.LittleEndian.PutUint64(buf[p:], uint64(n.rids[i].Page))
		binary.LittleEndian.PutUint16(buf[p+8:], n.rids[i].Slot)
		p += 10
	}
}

func decodeInner(buf []byte) *innerNode {
	n := int(binary.LittleEndian.Uint16(buf[1:3]))
	in := &innerNode{
		children: make([]storage.PageID, 1, n+1),
		keys:     make([][]byte, 0, n),
	}
	in.children[0] = storage.PageID(binary.LittleEndian.Uint64(buf[3:11]))
	p := nodeHeader
	for i := 0; i < n; i++ {
		kl, sz := binary.Uvarint(buf[p:])
		p += sz
		key := append([]byte(nil), buf[p:p+int(kl)]...)
		p += int(kl)
		child := storage.PageID(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		in.keys = append(in.keys, key)
		in.children = append(in.children, child)
	}
	return in
}

func innerSize(n *innerNode) int {
	sz := nodeHeader
	for _, k := range n.keys {
		sz += uvarintLen(uint64(len(k))) + len(k) + 8
	}
	return sz
}

func encodeInner(buf []byte, n *innerNode) {
	buf[0] = 0
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(n.children[0]))
	p := nodeHeader
	for i, k := range n.keys {
		p += binary.PutUvarint(buf[p:], uint64(len(k)))
		copy(buf[p:], k)
		p += len(k)
		binary.LittleEndian.PutUint64(buf[p:], uint64(n.children[i+1]))
		p += 8
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// --- search helpers ----------------------------------------------------------

// leafPos returns the insertion position for key: the first index whose
// key is >= key, and whether it is an exact match.
func leafPos(n *leafNode, key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
}

// childFor picks the child subtree for key: the largest separator <= key
// routes to its right child; otherwise child[0].
func childFor(n *innerNode, key []byte) (int, storage.PageID) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, n.children[lo]
}

// descend walks from the root to the leaf that would hold key.
func (t *BTree) descend(key []byte) (storage.PageID, error) {
	cur := t.root
	for {
		buf, err := t.pool.Fetch(cur, storage.CatIndex)
		if err != nil {
			return 0, err
		}
		if isLeaf(buf) {
			t.pool.Unpin(cur, false)
			return cur, nil
		}
		in := decodeInner(buf)
		t.pool.Unpin(cur, false)
		_, child := childFor(in, key)
		cur = child
	}
}

// Get returns the RID stored under key.
func (t *BTree) Get(key []byte) (storage.RID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leafID, err := t.descend(key)
	if err != nil {
		return storage.RID{}, err
	}
	buf, err := t.pool.Fetch(leafID, storage.CatIndex)
	if err != nil {
		return storage.RID{}, err
	}
	ln := decodeLeaf(buf)
	t.pool.Unpin(leafID, false)
	pos, ok := leafPos(ln, key)
	if !ok {
		return storage.RID{}, ErrKeyNotFound
	}
	return ln.rids[pos], nil
}

// Insert adds (key, rid). It fails with ErrDuplicateKey if key exists.
//
// Insert is atomic: it descends with every node on the path pinned,
// pre-allocates all pages the split chain needs, and only then applies
// the change with in-memory encodes that cannot fail. An I/O error at
// any point (page load, allocation, eviction write-back) leaves the
// tree exactly as it was, which is what lets the catalog undo-log a
// successful Insert with a plain Delete.
func (t *BTree) Insert(key []byte, rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	maxEntry := uvarintLen(uint64(len(key))) + len(key) + 10
	if nodeHeader+2*maxEntry > t.pool.PageSize() {
		return fmt.Errorf("btree: key of %d bytes too large for page", len(key))
	}

	// Phase 1: descend to the target leaf keeping the whole path pinned.
	type pinnedInner struct {
		id       storage.PageID
		buf      []byte
		node     *innerNode
		childIdx int
		dirty    bool
	}
	var path []pinnedInner
	unpinPath := func() {
		for _, pn := range path {
			t.pool.Unpin(pn.id, pn.dirty)
		}
	}
	cur := t.root
	var leafID storage.PageID
	var leafBuf []byte
	for {
		buf, err := t.pool.Fetch(cur, storage.CatIndex)
		if err != nil {
			unpinPath()
			return err
		}
		if isLeaf(buf) {
			leafID, leafBuf = cur, buf
			break
		}
		in := decodeInner(buf)
		idx, child := childFor(in, key)
		path = append(path, pinnedInner{id: cur, buf: buf, node: in, childIdx: idx})
		cur = child
	}
	ln := decodeLeaf(leafBuf)
	pos, exists := leafPos(ln, key)
	if exists {
		t.pool.Unpin(leafID, false)
		unpinPath()
		return ErrDuplicateKey
	}
	ln.keys = insertAt(ln.keys, pos, append([]byte(nil), key...))
	ln.rids = insertRIDAt(ln.rids, pos, rid)

	if leafSize(ln) <= t.pool.PageSize() {
		if t.logger != nil {
			// Log before touching the page: a failed append leaves the
			// leaf exactly as it was.
			if err := t.logger.BTreeInsert(leafID, key, rid); err != nil {
				t.pool.Unpin(leafID, false)
				unpinPath()
				return err
			}
		}
		encodeLeaf(leafBuf, ln)
		t.pool.Unpin(leafID, true)
		unpinPath()
		t.size++
		return nil
	}

	// Phase 2: the leaf splits. Materialize the split chain bottom-up on
	// the decoded copies, allocating every new page before touching any
	// existing one; failures free the fresh pages and leave no trace.
	var allocated []storage.PageID
	fail := func(err error) error {
		for _, id := range allocated {
			t.pool.Unpin(id, false)
			_ = t.pool.FreePage(id)
		}
		t.pool.Unpin(leafID, false)
		unpinPath()
		return err
	}

	mid := len(ln.keys) / 2
	rightLeaf := &leafNode{next: ln.next, keys: ln.keys[mid:], rids: ln.rids[mid:]}
	leftLeaf := &leafNode{keys: ln.keys[:mid], rids: ln.rids[:mid]}
	rightLeafID, rightLeafBuf, err := t.pool.NewPage(storage.CatIndex)
	if err != nil {
		return fail(err)
	}
	allocated = append(allocated, rightLeafID)
	leftLeaf.next = rightLeafID

	// carry is the (separator, right sibling) pair the level below pushes
	// up; absorbed reports whether some inner node had room for it.
	sep := append([]byte(nil), rightLeaf.keys[0]...)
	carryID := rightLeafID
	absorbed := false

	type innerSplit struct {
		level    int
		left     *innerNode
		right    *innerNode
		rightID  storage.PageID
		rightBuf []byte
	}
	var splits []innerSplit
	level := len(path) - 1
	for ; level >= 0; level-- {
		in := path[level].node
		idx := path[level].childIdx
		in.keys = insertAt(in.keys, idx, sep)
		in.children = insertPIDAt(in.children, idx+1, carryID)
		path[level].dirty = true
		if innerSize(in) <= t.pool.PageSize() {
			absorbed = true
			break
		}
		m := len(in.keys) / 2
		upKey := in.keys[m]
		right := &innerNode{keys: append([][]byte(nil), in.keys[m+1:]...),
			children: append([]storage.PageID(nil), in.children[m+1:]...)}
		left := &innerNode{keys: in.keys[:m], children: in.children[:m+1]}
		rightID, rightBuf, err := t.pool.NewPage(storage.CatIndex)
		if err != nil {
			return fail(err)
		}
		allocated = append(allocated, rightID)
		splits = append(splits, innerSplit{level: level, left: left, right: right,
			rightID: rightID, rightBuf: rightBuf})
		sep, carryID = upKey, rightID
	}
	var newRootID storage.PageID
	var newRootBuf []byte
	if !absorbed {
		newRootID, newRootBuf, err = t.pool.NewPage(storage.CatIndex)
		if err != nil {
			return fail(err)
		}
		allocated = append(allocated, newRootID)
	}

	// Phase 2.5: render every touched page into a scratch image. Splits
	// are logged as full post-images — replaying the split algorithm
	// byte-for-byte is exactly the fragility physiological logging avoids
	// at this one structural point — and the images must exist before any
	// pinned byte changes, so that a failed log append aborts cleanly.
	ps := t.pool.PageSize()
	type pageWrite struct {
		id  storage.PageID
		dst []byte // pinned frame
		img []byte // scratch post-image
	}
	var writes []pageWrite
	render := func(id storage.PageID, dst []byte, enc func([]byte)) {
		img := make([]byte, ps)
		enc(img)
		writes = append(writes, pageWrite{id: id, dst: dst, img: img})
	}
	render(rightLeafID, rightLeafBuf, func(b []byte) { encodeLeaf(b, rightLeaf) })
	render(leafID, leafBuf, func(b []byte) { encodeLeaf(b, leftLeaf) })
	for _, s := range splits {
		s := s
		render(s.rightID, s.rightBuf, func(b []byte) { encodeInner(b, s.right) })
		path[s.level].node = s.left
	}
	lowest := level // absorbed: untouched levels above the absorbing node
	if lowest < 0 {
		lowest = 0 // full-height split: every path level re-encodes
	}
	for l := lowest; l < len(path); l++ {
		n := path[l].node
		render(path[l].id, path[l].buf, func(b []byte) { encodeInner(b, n) })
	}
	if !absorbed {
		render(newRootID, newRootBuf, func(b []byte) {
			encodeInner(b, &innerNode{children: []storage.PageID{t.root, carryID}, keys: [][]byte{sep}})
		})
	}

	if t.logger != nil {
		for _, id := range allocated {
			if err := t.logger.BTreePageAlloc(id); err != nil {
				return fail(err)
			}
		}
		for _, w := range writes {
			if err := t.logger.BTreePageImage(w.id, w.img); err != nil {
				return fail(err)
			}
		}
		if !absorbed {
			if err := t.logger.BTreeRoot(t.root, newRootID); err != nil {
				return fail(err)
			}
		}
	}

	// Phase 3: apply. Plain copies into pinned frames cannot fail.
	for _, w := range writes {
		copy(w.dst, w.img)
	}
	t.pool.Unpin(rightLeafID, true)
	t.pool.Unpin(leafID, true)
	for _, s := range splits {
		t.pool.Unpin(s.rightID, true)
	}
	if !absorbed {
		t.pool.Unpin(newRootID, true)
		t.root = newRootID
	}
	unpinPath()
	t.size++
	return nil
}

// Delete removes key. Underflowed nodes are left in place (lazy
// deletion); pages are only reclaimed by Drop.
func (t *BTree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	leafID, err := t.descend(key)
	if err != nil {
		return err
	}
	buf, err := t.pool.Fetch(leafID, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, ok := leafPos(ln, key)
	if !ok {
		t.pool.Unpin(leafID, false)
		return ErrKeyNotFound
	}
	if t.logger != nil {
		if err := t.logger.BTreeDelete(leafID, key); err != nil {
			t.pool.Unpin(leafID, false)
			return err
		}
	}
	ln.keys = append(ln.keys[:pos], ln.keys[pos+1:]...)
	ln.rids = append(ln.rids[:pos], ln.rids[pos+1:]...)
	encodeLeaf(buf, ln)
	t.pool.Unpin(leafID, true)
	t.size--
	return nil
}

// Update changes the RID stored under an existing key.
func (t *BTree) Update(key []byte, rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	leafID, err := t.descend(key)
	if err != nil {
		return err
	}
	buf, err := t.pool.Fetch(leafID, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, ok := leafPos(ln, key)
	if !ok {
		t.pool.Unpin(leafID, false)
		return ErrKeyNotFound
	}
	if t.logger != nil {
		if err := t.logger.BTreeUpdate(leafID, key, rid); err != nil {
			t.pool.Unpin(leafID, false)
			return err
		}
	}
	ln.rids[pos] = rid
	encodeLeaf(buf, ln)
	t.pool.Unpin(leafID, true)
	return nil
}

// Height returns the number of levels (1 for a lone leaf).
func (t *BTree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := 1
	cur := t.root
	for {
		buf, err := t.pool.Fetch(cur, storage.CatIndex)
		if err != nil {
			return 0, err
		}
		leaf := isLeaf(buf)
		var next storage.PageID
		if !leaf {
			next = decodeInner(buf).children[0]
		}
		t.pool.Unpin(cur, false)
		if leaf {
			return h, nil
		}
		h++
		cur = next
	}
}

// Drop frees every page of the tree. The tree is unusable afterwards.
func (t *BTree) Drop() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropRec(t.root)
}

func (t *BTree) dropRec(id storage.PageID) error {
	buf, err := t.pool.Fetch(id, storage.CatIndex)
	if err != nil {
		return err
	}
	var children []storage.PageID
	if !isLeaf(buf) {
		children = decodeInner(buf).children
	}
	t.pool.Unpin(id, false)
	for _, c := range children {
		if err := t.dropRec(c); err != nil {
			return err
		}
	}
	return t.pool.FreePage(id)
}

func insertAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertRIDAt(s []storage.RID, i int, v storage.RID) []storage.RID {
	s = append(s, storage.RID{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertPIDAt(s []storage.PageID, i int, v storage.PageID) []storage.PageID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
