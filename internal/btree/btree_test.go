package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func newPool(pageSize int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewDisk(pageSize), int64(pageSize)*4096)
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestInsertGet(t *testing.T) {
	tr, err := New(newPool(512))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1), Slot: uint16(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Errorf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		rid, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if rid.Page != storage.PageID(i+1) || rid.Slot != uint16(i) {
			t.Errorf("get %d = %v", i, rid)
		}
	}
	if _, err := tr.Get([]byte("missing")); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("missing key: %v", err)
	}
	h, err := tr.Height()
	if err != nil || h < 2 {
		t.Errorf("height %d (%v): expected splits with 512-byte pages", h, err)
	}
}

func TestDuplicateKey(t *testing.T) {
	tr, _ := New(newPool(512))
	if err := tr.Insert([]byte("k"), storage.RID{Page: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("k"), storage.RID{Page: 2}); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("want ErrDuplicateKey, got %v", err)
	}
}

func TestDelete(t *testing.T) {
	tr, _ := New(newPool(512))
	for i := 0; i < 500; i++ {
		tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)})
	}
	for i := 0; i < 500; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < 500; i++ {
		_, err := tr.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrKeyNotFound) {
			t.Errorf("deleted key %d still present (%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Errorf("surviving key %d: %v", i, err)
		}
	}
	if err := tr.Delete([]byte("missing")); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("delete missing: %v", err)
	}
	if tr.Len() != 250 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestUpdate(t *testing.T) {
	tr, _ := New(newPool(512))
	tr.Insert([]byte("k"), storage.RID{Page: 1})
	if err := tr.Update([]byte("k"), storage.RID{Page: 99, Slot: 3}); err != nil {
		t.Fatal(err)
	}
	rid, _ := tr.Get([]byte("k"))
	if rid.Page != 99 || rid.Slot != 3 {
		t.Errorf("update lost: %v", rid)
	}
	if err := tr.Update([]byte("zz"), storage.RID{}); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("update missing: %v", err)
	}
}

func TestScanOrder(t *testing.T) {
	tr, _ := New(newPool(512))
	perm := rand.New(rand.NewSource(1)).Perm(800)
	for _, i := range perm {
		tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)})
	}
	it, err := tr.Scan()
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for ; it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("scan order broken at %d: %q", i, it.Key())
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != 800 {
		t.Errorf("scan saw %d entries", i)
	}
}

func TestSeekRange(t *testing.T) {
	tr, _ := New(newPool(512))
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)})
	}
	it, err := tr.SeekRange(key(10), key(20))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for ; it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 10 || got[0] != string(key(10)) || got[9] != string(key(19)) {
		t.Errorf("range [10,20): %v", got)
	}
	// Range starting below the smallest key.
	it, _ = tr.SeekRange([]byte("a"), nil)
	if !it.Valid() || !bytes.Equal(it.Key(), key(0)) {
		t.Error("seek below min should land on first key")
	}
	// Empty range.
	it, _ = tr.SeekRange(key(50), key(50))
	if it.Valid() {
		t.Error("empty range should be done immediately")
	}
}

func TestSeekPrefix(t *testing.T) {
	tr, _ := New(newPool(512))
	for _, k := range []string{"a/1", "a/2", "b/1", "b/2", "b/3", "c/1"} {
		tr.Insert([]byte(k), storage.RID{Page: 1})
	}
	it, err := tr.SeekPrefix([]byte("b/"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; it.Valid(); it.Next() {
		if !bytes.HasPrefix(it.Key(), []byte("b/")) {
			t.Errorf("prefix scan leaked %q", it.Key())
		}
		n++
	}
	if n != 3 {
		t.Errorf("prefix scan saw %d", n)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	if got := PrefixSuccessor([]byte{1, 2}); !bytes.Equal(got, []byte{1, 3}) {
		t.Errorf("PrefixSuccessor: %v", got)
	}
	if got := PrefixSuccessor([]byte{1, 0xFF}); !bytes.Equal(got, []byte{2}) {
		t.Errorf("PrefixSuccessor with trailing FF: %v", got)
	}
	if got := PrefixSuccessor([]byte{0xFF, 0xFF}); got != nil {
		t.Errorf("PrefixSuccessor of all-FF: %v", got)
	}
}

func TestScanSkipsEmptyLeaves(t *testing.T) {
	tr, _ := New(newPool(512))
	for i := 0; i < 300; i++ {
		tr.Insert(key(i), storage.RID{Page: 1})
	}
	// Delete a whole contiguous run so at least one leaf empties.
	for i := 50; i < 250; i++ {
		tr.Delete(key(i))
	}
	it, _ := tr.Scan()
	n := 0
	for ; it.Valid(); it.Next() {
		n++
	}
	if n != 100 {
		t.Errorf("scan after mass delete saw %d", n)
	}
}

func TestDropFreesPages(t *testing.T) {
	disk := storage.NewDisk(512)
	pool := storage.NewBufferPool(disk, 512*1024)
	tr, _ := New(pool)
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i), storage.RID{Page: 1})
	}
	if disk.NumPages() < 2 {
		t.Fatal("expected multi-page tree")
	}
	if err := tr.Drop(); err != nil {
		t.Fatal(err)
	}
	if disk.NumPages() != 0 {
		t.Errorf("drop left %d pages", disk.NumPages())
	}
}

func TestOversizedKey(t *testing.T) {
	tr, _ := New(newPool(256))
	if err := tr.Insert(make([]byte, 300), storage.RID{}); err == nil {
		t.Error("oversized key should be rejected")
	}
}

// TestRandomOpsProperty cross-checks the tree against a sorted-map model
// under random insert/delete/lookup streams, then verifies full-scan
// order and range scans.
func TestRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, err := New(newPool(512))
		if err != nil {
			return false
		}
		model := map[string]storage.RID{}
		for op := 0; op < 600; op++ {
			k := []byte(fmt.Sprintf("k%06d", r.Intn(400)))
			switch r.Intn(3) {
			case 0:
				rid := storage.RID{Page: storage.PageID(r.Intn(1 << 20))}
				err := tr.Insert(k, rid)
				if _, exists := model[string(k)]; exists {
					if !errors.Is(err, ErrDuplicateKey) {
						t.Logf("expected duplicate error for %q, got %v", k, err)
						return false
					}
				} else if err != nil {
					return false
				} else {
					model[string(k)] = rid
				}
			case 1:
				err := tr.Delete(k)
				if _, exists := model[string(k)]; exists {
					if err != nil {
						return false
					}
					delete(model, string(k))
				} else if !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			case 2:
				rid, err := tr.Get(k)
				want, exists := model[string(k)]
				if exists && (err != nil || rid != want) {
					return false
				}
				if !exists && !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			}
		}
		if tr.Len() != int64(len(model)) {
			return false
		}
		// Full scan must match sorted model.
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		it, err := tr.Scan()
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !it.Valid() || string(it.Key()) != k || it.RID() != model[k] {
				return false
			}
			it.Next()
		}
		return !it.Valid() && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLargeTreeSplitCascade(t *testing.T) {
	// Small pages force multi-level splits.
	tr, _ := New(newPool(256))
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	h, _ := tr.Height()
	if h < 3 {
		t.Errorf("expected height >= 3, got %d", h)
	}
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		if _, err := tr.Get(key(i)); err != nil {
			t.Errorf("get %d after cascade: %v", i, err)
		}
	}
}
