package btree

import (
	"bytes"

	"repro/internal/storage"
)

// Iterator walks entries in key order. It buffers one leaf at a time so
// no page stays pinned between Next calls; mutations during iteration
// are not supported (the engine's table locks prevent them).
type Iterator struct {
	tree *BTree
	keys [][]byte
	rids []storage.RID
	idx  int
	next storage.PageID
	hi   []byte // exclusive upper bound; nil = unbounded
	err  error
	done bool
}

// SeekRange returns an iterator positioned at the first key >= lo,
// stopping before hi (exclusive). lo nil means the smallest key; hi nil
// means unbounded.
func (t *BTree) SeekRange(lo, hi []byte) (*Iterator, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	it := &Iterator{tree: t, hi: hi}
	var leafID storage.PageID
	if lo == nil {
		// Walk to the leftmost leaf.
		cur := t.root
		for {
			buf, err := t.pool.Fetch(cur, storage.CatIndex)
			if err != nil {
				return nil, err
			}
			if isLeaf(buf) {
				t.pool.Unpin(cur, false)
				leafID = cur
				break
			}
			next := decodeInner(buf).children[0]
			t.pool.Unpin(cur, false)
			cur = next
		}
	} else {
		var err error
		leafID, err = t.descend(lo)
		if err != nil {
			return nil, err
		}
	}
	if err := it.loadLeaf(leafID); err != nil {
		return nil, err
	}
	if lo != nil {
		for !it.done && bytes.Compare(it.keys[it.idx], lo) < 0 {
			it.advance()
		}
	}
	it.checkBound()
	return it, nil
}

// SeekPrefix returns an iterator over every key beginning with prefix.
func (t *BTree) SeekPrefix(prefix []byte) (*Iterator, error) {
	return t.SeekRange(prefix, PrefixSuccessor(prefix))
}

// Scan returns an iterator over the whole tree.
func (t *BTree) Scan() (*Iterator, error) { return t.SeekRange(nil, nil) }

// PrefixSuccessor returns the smallest byte string greater than every
// string with the given prefix, or nil if no such bound exists (the
// prefix is all 0xFF).
func PrefixSuccessor(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

func (it *Iterator) loadLeaf(id storage.PageID) error {
	for {
		buf, err := it.tree.pool.Fetch(id, storage.CatIndex)
		if err != nil {
			return err
		}
		ln := decodeLeaf(buf)
		it.tree.pool.Unpin(id, false)
		if len(ln.keys) > 0 {
			it.keys, it.rids, it.idx, it.next = ln.keys, ln.rids, 0, ln.next
			return nil
		}
		if ln.next == storage.InvalidPageID {
			it.done = true
			return nil
		}
		id = ln.next // skip empty leaves left by lazy deletion
	}
}

func (it *Iterator) advance() {
	it.idx++
	if it.idx < len(it.keys) {
		return
	}
	if it.next == storage.InvalidPageID {
		it.done = true
		return
	}
	if err := it.loadLeaf(it.next); err != nil {
		it.err, it.done = err, true
	}
}

func (it *Iterator) checkBound() {
	if !it.done && it.hi != nil && bytes.Compare(it.keys[it.idx], it.hi) >= 0 {
		it.done = true
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return !it.done && it.err == nil }

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Key returns the current key. Valid only while Valid() is true.
func (it *Iterator) Key() []byte { return it.keys[it.idx] }

// RID returns the current record ID.
func (it *Iterator) RID() storage.RID { return it.rids[it.idx] }

// Next moves to the following entry.
func (it *Iterator) Next() {
	if it.done {
		return
	}
	it.advance()
	it.checkBound()
}
