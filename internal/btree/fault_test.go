package btree

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

type entry struct {
	key []byte
	rid storage.RID
}

func dump(t *testing.T, tr *BTree) []entry {
	t.Helper()
	it, err := tr.Scan()
	if err != nil {
		t.Fatal(err)
	}
	var es []entry
	for ; it.Valid(); it.Next() {
		es = append(es, entry{append([]byte(nil), it.Key()...), it.RID()})
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return es
}

func sameEntries(a, b []entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].key, b[i].key) || a[i].rid != b[i].rid {
			return false
		}
	}
	return true
}

// TestInsertAtomicUnderFaults sweeps an injected failure across every
// logical page access an Insert makes — including inserts that split a
// leaf, cascade splits up the tree, and grow a new root — and checks
// that a failed Insert leaves the tree exactly as it was: same entries,
// same Len, the new key absent, and no leaked pages accumulating.
func TestInsertAtomicUnderFaults(t *testing.T) {
	const pageSize = 256
	const n = 120 // small pages + dense keys => multi-level tree with frequent splits

	build := func() (*BTree, *storage.BufferPool) {
		pool := newPool(pageSize)
		tr, err := New(pool)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)}); err != nil {
				t.Fatalf("build insert %d: %v", i, err)
			}
		}
		return tr, pool
	}

	// Probe keys: one that fits the leaf, one that splits (dense
	// sequential fill leaves leaves full), and one at the far right.
	probes := [][]byte{key(n), []byte("key-00000000a"), []byte("aaa")}

	for _, probe := range probes {
		succeeded := false
		for k := int64(1); k < 200; k++ {
			tr, pool := build()
			before := dump(t, tr)
			lenBefore := tr.Len()
			pagesBefore := pool.Stats().Resident // resident==allocated here: pool holds every page

			pool.SetFetchFault(storage.FailNthFetch(k, storage.CatIndex))
			err := tr.Insert(probe, storage.RID{Page: 9999})
			pool.SetFetchFault(nil)

			if err == nil {
				// The insert performed fewer than k accesses: the sweep
				// has covered every fault point for this probe.
				if _, gerr := tr.Get(probe); gerr != nil {
					t.Fatalf("probe %q: fault-free insert lost the key: %v", probe, gerr)
				}
				succeeded = true
				break
			}
			if !errors.Is(err, storage.ErrInjectedFault) {
				t.Fatalf("probe %q fault %d: unexpected error %v", probe, k, err)
			}
			if got := tr.Len(); got != lenBefore {
				t.Fatalf("probe %q fault %d: Len %d, want %d", probe, k, got, lenBefore)
			}
			if _, gerr := tr.Get(probe); !errors.Is(gerr, ErrKeyNotFound) {
				t.Fatalf("probe %q fault %d: failed insert left key reachable (err %v)", probe, k, gerr)
			}
			if !sameEntries(before, dump(t, tr)) {
				t.Fatalf("probe %q fault %d: entries changed after failed insert", probe, k)
			}
			if got := pool.Stats().Resident; got != pagesBefore {
				t.Fatalf("probe %q fault %d: resident pages %d, want %d (leaked split pages?)", probe, k, got, pagesBefore)
			}
		}
		if !succeeded {
			t.Fatalf("probe %q: sweep never ran fault-free; widen the sweep", probe)
		}
	}
}

// TestRootSplitAtomicUnderFaults drives the single-leaf -> root-split
// transition under a fault sweep: the smallest tree exercises the
// new-root allocation path.
func TestRootSplitAtomicUnderFaults(t *testing.T) {
	const pageSize = 256
	fill := func() (*BTree, int) {
		pool := newPool(pageSize)
		tr, err := New(pool)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for h, _ := tr.Height(); h == 1; h, _ = tr.Height() {
			if err := tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)}); err != nil {
				t.Fatal(err)
			}
			i++
		}
		return tr, i
	}
	// Find how many keys fit before the root leaf splits, then rebuild
	// to one short of that and sweep faults over the splitting insert.
	_, splitAt := fill()

	for k := int64(1); k < 50; k++ {
		pool := newPool(pageSize)
		tr, err := New(pool)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < splitAt-1; i++ {
			if err := tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		before := dump(t, tr)

		pool.SetFetchFault(storage.FailNthFetch(k, storage.CatIndex))
		err = tr.Insert(key(splitAt-1), storage.RID{Page: storage.PageID(splitAt)})
		pool.SetFetchFault(nil)

		if err == nil {
			if h, _ := tr.Height(); h != 2 {
				t.Fatalf("fault %d: insert succeeded but height %d, want 2", k, h)
			}
			return // sweep complete
		}
		if !errors.Is(err, storage.ErrInjectedFault) {
			t.Fatalf("fault %d: unexpected error %v", k, err)
		}
		if h, _ := tr.Height(); h != 1 {
			t.Fatalf("fault %d: failed insert changed height to %d", k, h)
		}
		if !sameEntries(before, dump(t, tr)) {
			t.Fatalf("fault %d: entries changed after failed root split", k)
		}
	}
	t.Fatal("sweep never ran fault-free; widen the sweep")
}

// Duplicate detection must not depend on the fault hook state and must
// leave the tree untouched.
func TestInsertDuplicateLeavesTreeUntouched(t *testing.T) {
	tr, err := New(newPool(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Insert(key(i), storage.RID{Page: storage.PageID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	before := dump(t, tr)
	if err := tr.Insert(key(25), storage.RID{Page: 777}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
	if !sameEntries(before, dump(t, tr)) {
		t.Error("duplicate insert modified the tree")
	}
	rid, err := tr.Get(key(25))
	if err != nil || rid.Page != 26 {
		t.Errorf("Get(key 25) = %v, %v; want page 26", rid, err)
	}
}
