package btree

import (
	"fmt"

	"repro/internal/storage"
)

// This file holds the recovery side of the tree: page-level replay
// helpers the engine's redo pass calls, and the walkers that rebuild
// derived state (entry count) or enumerate pages for deferred drops.
// Replay operates on single pages through the buffer pool — the
// physiological contract: records name a page, application is logical
// within it.

// Pages returns every page of the tree (pre-order). Used by DROP to
// collect pages for commit-deferred freeing.
func (t *BTree) Pages() ([]storage.PageID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []storage.PageID
	var walk func(id storage.PageID) error
	walk = func(id storage.PageID) error {
		buf, err := t.pool.Fetch(id, storage.CatIndex)
		if err != nil {
			return err
		}
		var children []storage.PageID
		if !isLeaf(buf) {
			children = decodeInner(buf).children
		}
		t.pool.Unpin(id, false)
		out = append(out, id)
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}

// RecountSize rebuilds the entry count by walking the leaf chain —
// derived state the log deliberately does not carry.
func (t *BTree) RecountSize() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Descend to the leftmost leaf.
	cur := t.root
	for {
		buf, err := t.pool.Fetch(cur, storage.CatIndex)
		if err != nil {
			return err
		}
		if isLeaf(buf) {
			t.pool.Unpin(cur, false)
			break
		}
		next := decodeInner(buf).children[0]
		t.pool.Unpin(cur, false)
		cur = next
	}
	var n int64
	for cur != storage.InvalidPageID {
		buf, err := t.pool.Fetch(cur, storage.CatIndex)
		if err != nil {
			return err
		}
		ln := decodeLeaf(buf)
		t.pool.Unpin(cur, false)
		n += int64(len(ln.keys))
		cur = ln.next
	}
	t.size = n
	return nil
}

// ReplayInit formats page as an empty leaf (redo of KBTreeInit).
func ReplayInit(pool *storage.BufferPool, page storage.PageID) error {
	buf, err := pool.Fetch(page, storage.CatIndex)
	if err != nil {
		return err
	}
	encodeLeaf(buf, &leafNode{})
	pool.Unpin(page, true)
	return nil
}

// ReplayInsert redoes a leaf insert of key→rid on page. The pageLSN
// skip guarantees the leaf is in the pre-record state, so the key must
// be absent and must fit.
func ReplayInsert(pool *storage.BufferPool, page storage.PageID, key []byte, rid storage.RID) error {
	buf, err := pool.Fetch(page, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, exists := leafPos(ln, key)
	if exists {
		pool.Unpin(page, false)
		return fmt.Errorf("btree: replay insert of existing key on page %d", page)
	}
	ln.keys = insertAt(ln.keys, pos, append([]byte(nil), key...))
	ln.rids = insertRIDAt(ln.rids, pos, rid)
	if leafSize(ln) > pool.PageSize() {
		pool.Unpin(page, false)
		return fmt.Errorf("btree: replay insert overflows page %d", page)
	}
	encodeLeaf(buf, ln)
	pool.Unpin(page, true)
	return nil
}

// ReplayDelete redoes a leaf delete of key on page.
func ReplayDelete(pool *storage.BufferPool, page storage.PageID, key []byte) error {
	buf, err := pool.Fetch(page, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, ok := leafPos(ln, key)
	if !ok {
		pool.Unpin(page, false)
		return fmt.Errorf("btree: replay delete of missing key on page %d", page)
	}
	ln.keys = append(ln.keys[:pos], ln.keys[pos+1:]...)
	ln.rids = append(ln.rids[:pos], ln.rids[pos+1:]...)
	encodeLeaf(buf, ln)
	pool.Unpin(page, true)
	return nil
}

// ReplayUpdate redoes a leaf RID repoint of key on page.
func ReplayUpdate(pool *storage.BufferPool, page storage.PageID, key []byte, rid storage.RID) error {
	buf, err := pool.Fetch(page, storage.CatIndex)
	if err != nil {
		return err
	}
	ln := decodeLeaf(buf)
	pos, ok := leafPos(ln, key)
	if !ok {
		pool.Unpin(page, false)
		return fmt.Errorf("btree: replay update of missing key on page %d", page)
	}
	ln.rids[pos] = rid
	encodeLeaf(buf, ln)
	pool.Unpin(page, true)
	return nil
}

// ReplayImage redoes a full-page image (redo of KBTreeImage).
func ReplayImage(pool *storage.BufferPool, page storage.PageID, img []byte) error {
	buf, err := pool.Fetch(page, storage.CatIndex)
	if err != nil {
		return err
	}
	copy(buf, img)
	pool.Unpin(page, true)
	return nil
}
