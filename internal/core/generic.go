package core

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/types"
)

// rowCol is the synthesized output column carrying the logical row ID
// through phase (a) of the two-phase DML protocol.
const rowCol = "__row"

// reconstructor is the hook each generic layout provides: build the
// inner SELECT that reconstructs a tenant's logical table from the
// physical structures, exposing the given logical columns (plus the
// hidden row ID when withRow is set). This is steps 2–3 of the paper's
// §6.1 compilation scheme; the shared code below does steps 1 and 4.
type reconstructor interface {
	Layout
	state() *state
	reconstruct(tn *Tenant, table *Table, used []Column, withRow bool) (*sql.SelectStmt, error)
	// phaseBUpdate builds the physical writes for an UPDATE: rows holds
	// [__row, set1, set2, ...] tuples from phase (a).
	phaseBUpdate(tn *Tenant, table *Table, setCols []Column, rows [][]types.Value) []sql.Statement
	// phaseBDelete builds the physical writes for a DELETE: rows holds
	// [__row] tuples.
	phaseBDelete(tn *Tenant, table *Table, rows [][]types.Value) []sql.Statement
	// insertRows builds the physical inserts for logical rows given as
	// (column list, value-expression lists).
	insertRows(tn *Tenant, table *Table, cols []Column, rows [][]sql.Expr) ([]sql.Statement, error)
}

// genericRewrite dispatches a logical statement through a reconstructor.
func genericRewrite(l reconstructor, tenantID int64, st sql.Statement) (*Rewritten, error) {
	tn, err := l.state().tenant(tenantID)
	if err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case *sql.SelectStmt:
		sel, err := genericSelect(l, tn, st)
		if err != nil {
			return nil, err
		}
		return &Rewritten{Query: sel}, nil
	case *sql.InsertStmt:
		return genericInsert(l, tn, st)
	case *sql.UpdateStmt:
		return genericUpdate(l, tn, st)
	case *sql.DeleteStmt:
		return genericDelete(l, tn, st)
	}
	return nil, fmt.Errorf("core: %s layout cannot rewrite %T", l.Name(), st)
}

// genericSelect replaces every logical table reference with its
// reconstruction derived table (step 4 of §6.1).
func genericSelect(l reconstructor, tn *Tenant, sel *sql.SelectStmt) (*sql.SelectStmt, error) {
	usages, err := analyzeSelect(l.state().schema, tn, sel)
	if err != nil {
		return nil, err
	}
	byRef := map[*sql.NamedTable]*tableUsage{}
	for _, u := range usages {
		byRef[u.ref] = u
	}
	var rewriteRef func(tr sql.TableRef) (sql.TableRef, error)
	rewriteRef = func(tr sql.TableRef) (sql.TableRef, error) {
		switch tr := tr.(type) {
		case *sql.NamedTable:
			u := byRef[tr]
			if u == nil {
				return nil, fmt.Errorf("core: unanalyzed table %s", tr.Name)
			}
			used, err := usedColumns(l.state().schema, tn, u)
			if err != nil {
				return nil, err
			}
			inner, err := l.reconstruct(tn, u.logical, used, false)
			if err != nil {
				return nil, err
			}
			return &sql.SubqueryTable{Select: inner, Alias: u.alias}, nil
		case *sql.SubqueryTable:
			sub, err := genericSelect(l, tn, tr.Select)
			if err != nil {
				return nil, err
			}
			return &sql.SubqueryTable{Select: sub, Alias: tr.Alias}, nil
		case *sql.JoinTable:
			left, err := rewriteRef(tr.Left)
			if err != nil {
				return nil, err
			}
			right, err := rewriteRef(tr.Right)
			if err != nil {
				return nil, err
			}
			return &sql.JoinTable{Left: left, Right: right, Type: tr.Type, On: tr.On}, nil
		}
		return nil, fmt.Errorf("core: unsupported FROM entry %T", tr)
	}
	out := *sel
	out.From = make([]sql.TableRef, len(sel.From))
	for i, tr := range sel.From {
		out.From[i], err = rewriteRef(tr)
		if err != nil {
			return nil, err
		}
	}
	out.Where, err = rewriteInSubqueries(sel.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
		return genericSelect(l, tn, s)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// writeUsage computes the logical columns a write statement touches.
func writeUsage(l reconstructor, tn *Tenant, table, alias string, exprs []sql.Expr) (*Table, []Column, error) {
	lt := l.state().schema.Table(table)
	if lt == nil {
		return nil, nil, fmt.Errorf("core: no logical table %s", table)
	}
	if alias == "" {
		alias = table
	}
	fake := &sql.SelectStmt{
		From: []sql.TableRef{&sql.NamedTable{Name: lt.Name, Alias: alias}},
	}
	for _, e := range exprs {
		if e != nil {
			fake.Items = append(fake.Items, sql.SelectItem{Expr: e})
		}
	}
	if len(fake.Items) == 0 {
		fake.Items = append(fake.Items, sql.SelectItem{Expr: intLit(1)})
	}
	usages, err := analyzeSelect(l.state().schema, tn, fake)
	if err != nil {
		return nil, nil, err
	}
	used, err := usedColumns(l.state().schema, tn, usages[0])
	if err != nil {
		return nil, nil, err
	}
	return lt, used, nil
}

// genericInsert allocates logical row IDs and delegates the physical
// writes to the layout (§6.3: "the application logic has to look up all
// related chunks, collect the meta-data, and assign each inserted new
// row a unique row identifier").
func genericInsert(l reconstructor, tn *Tenant, st *sql.InsertStmt) (*Rewritten, error) {
	lt := l.state().schema.Table(st.Table)
	if lt == nil {
		return nil, fmt.Errorf("core: no logical table %s", st.Table)
	}
	all, err := l.state().schema.LogicalColumns(tn, lt.Name)
	if err != nil {
		return nil, err
	}
	var cols []Column
	if len(st.Columns) == 0 {
		cols = all
	} else {
		for _, name := range st.Columns {
			found := false
			for _, c := range all {
				if strings.EqualFold(c.Name, name) {
					cols = append(cols, c)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("core: no column %s in %s for tenant %d", name, lt.Name, tn.ID)
			}
		}
	}
	for _, row := range st.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("core: INSERT row has %d values for %d columns", len(row), len(cols))
		}
	}
	stmts, err := l.insertRows(tn, lt, cols, st.Rows)
	if err != nil {
		return nil, err
	}
	return &Rewritten{Direct: stmts, Inserted: int64(len(st.Rows))}, nil
}

// genericUpdate implements the §6.3 two-phase protocol: phase (a)
// collects (__row, new values...) through the reconstruction — the
// engine evaluates SET expressions over the logical row — and phase (b)
// applies per-structure physical writes.
func genericUpdate(l reconstructor, tn *Tenant, st *sql.UpdateStmt) (*Rewritten, error) {
	var exprs []sql.Expr
	for _, a := range st.Set {
		exprs = append(exprs, a.Value)
	}
	exprs = append(exprs, st.Where)
	lt, used, err := writeUsage(l, tn, st.Table, st.Alias, exprs)
	if err != nil {
		return nil, err
	}
	all, err := l.state().schema.LogicalColumns(tn, lt.Name)
	if err != nil {
		return nil, err
	}
	var setCols []Column
	for _, a := range st.Set {
		found := false
		for _, c := range all {
			if strings.EqualFold(c.Name, a.Column) {
				setCols = append(setCols, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: no column %s in %s for tenant %d", a.Column, lt.Name, tn.ID)
		}
	}

	alias := st.Alias
	if alias == "" {
		alias = lt.Name
	}
	inner, err := l.reconstruct(tn, lt, used, true)
	if err != nil {
		return nil, err
	}
	where, err := rewriteInSubqueries(st.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
		return genericSelect(l, tn, s)
	})
	if err != nil {
		return nil, err
	}
	rowQuery := &sql.SelectStmt{
		Items: []sql.SelectItem{{Expr: colRef(alias, rowCol)}},
		From:  []sql.TableRef{&sql.SubqueryTable{Select: inner, Alias: alias}},
		Where: where,
	}
	for _, a := range st.Set {
		rowQuery.Items = append(rowQuery.Items, sql.SelectItem{Expr: a.Value, Alias: "__set_" + a.Column})
	}
	return &Rewritten{
		RowQuery: rowQuery,
		PhaseB: func(rows [][]types.Value) []sql.Statement {
			return l.phaseBUpdate(tn, lt, setCols, rows)
		},
	}, nil
}

// genericDelete is the delete side of the two-phase protocol.
func genericDelete(l reconstructor, tn *Tenant, st *sql.DeleteStmt) (*Rewritten, error) {
	lt, used, err := writeUsage(l, tn, st.Table, st.Alias, []sql.Expr{st.Where})
	if err != nil {
		return nil, err
	}
	alias := st.Alias
	if alias == "" {
		alias = lt.Name
	}
	inner, err := l.reconstruct(tn, lt, used, true)
	if err != nil {
		return nil, err
	}
	where, err := rewriteInSubqueries(st.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
		return genericSelect(l, tn, s)
	})
	if err != nil {
		return nil, err
	}
	rowQuery := &sql.SelectStmt{
		Items: []sql.SelectItem{{Expr: colRef(alias, rowCol)}},
		From:  []sql.TableRef{&sql.SubqueryTable{Select: inner, Alias: alias}},
		Where: where,
	}
	return &Rewritten{
		RowQuery: rowQuery,
		PhaseB: func(rows [][]types.Value) []sql.Statement {
			return l.phaseBDelete(tn, lt, rows)
		},
	}, nil
}

// firstColumn extracts column i from phase-(a) result rows.
func column(rows [][]types.Value, i int) []types.Value {
	out := make([]types.Value, len(rows))
	for j, r := range rows {
		out[j] = r[i]
	}
	return out
}

// constantSets reports whether every SET expression evaluated to the
// same value across all affected rows, enabling batched phase-(b)
// statements (one UPDATE ... WHERE Row IN (...) per structure).
func constantSets(rows [][]types.Value, nSet int) bool {
	for c := 1; c <= nSet; c++ {
		for _, r := range rows[1:] {
			if !sameValue(rows[0][c], r[c]) {
				return false
			}
		}
	}
	return true
}

func sameValue(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return types.Equal(a, b)
}
