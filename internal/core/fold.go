package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// FoldingOptions configures a ChunkFoldingLayout.
type FoldingOptions struct {
	// Defs are the generic chunk-table shapes (default
	// UniformChunkDefs(schema, 4)).
	Defs []*ChunkTableDef
	// ConventionalExtensions are extensions popular enough to deserve
	// their own application-specific tables (the paper's Figure 3:
	// Account and AccountHealthCare are conventional, the long tail of
	// extensions is folded into chunk tables). Spending the meta-data
	// budget here is the Chunk Folding tuning knob.
	ConventionalExtensions []string
}

// ChunkFoldingLayout is the paper's contribution (Fig 3/4f): base
// tables — the most heavily utilized parts of the logical schemas —
// map to conventional tables, designated popular extensions map to
// conventional extension tables, and the remaining extension columns
// fold into a fixed set of generic chunk tables joined on Row.
type ChunkFoldingLayout struct {
	s   *state
	opt FoldingOptions

	mu      sync.RWMutex
	assigns map[string]*assignment // chunked extension columns only
}

// NewChunkFoldingLayout builds the layout.
func NewChunkFoldingLayout(schema *Schema, opt FoldingOptions) (*ChunkFoldingLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(opt.Defs) == 0 {
		opt.Defs = UniformChunkDefs(schema, 4)
	}
	for _, en := range opt.ConventionalExtensions {
		if schema.Extension(en) == nil {
			return nil, fmt.Errorf("core: conventional extension %s is not in the schema", en)
		}
	}
	return &ChunkFoldingLayout{s: newState(schema), opt: opt, assigns: map[string]*assignment{}}, nil
}

// Name implements Layout.
func (l *ChunkFoldingLayout) Name() string { return "chunkfold" }

// Schema implements Layout.
func (l *ChunkFoldingLayout) Schema() *Schema { return l.s.schema }

func (l *ChunkFoldingLayout) state() *state { return l.s }

// conventionalExt reports whether an extension has its own table.
func (l *ChunkFoldingLayout) conventionalExt(name string) bool {
	for _, en := range l.opt.ConventionalExtensions {
		if strings.EqualFold(en, name) {
			return true
		}
	}
	return false
}

// Create implements Layout.
func (l *ChunkFoldingLayout) Create(db *engine.DB, tenants []*Tenant) error {
	meta := []Column{
		{Name: "Tenant", Type: types.IntType, NotNull: true},
		{Name: "Row", Type: types.IntType, NotNull: true},
	}
	for _, t := range l.s.schema.Tables {
		cols := append(append([]Column{}, meta...), t.Columns...)
		if _, err := db.Exec(buildCreateTable(t.Name, cols)); err != nil {
			return err
		}
		stmts := []string{
			fmt.Sprintf("CREATE UNIQUE INDEX %s_tr ON %s (Tenant, Row)", t.Name, t.Name),
			fmt.Sprintf("CREATE UNIQUE INDEX %s_tk ON %s (Tenant, %s)", t.Name, t.Name, t.Key),
		}
		for _, c := range t.Columns {
			if c.Indexed && c.Name != t.Key {
				stmts = append(stmts, fmt.Sprintf("CREATE INDEX %s_%s ON %s (Tenant, %s)", t.Name, c.Name, t.Name, c.Name))
			}
		}
		for _, ddl := range stmts {
			if _, err := db.Exec(ddl); err != nil {
				return err
			}
		}
	}
	for _, en := range l.opt.ConventionalExtensions {
		e := l.s.schema.Extension(en)
		cols := append(append([]Column{}, meta...), e.Columns...)
		if _, err := db.Exec(buildCreateTable(e.Name, cols)); err != nil {
			return err
		}
		if _, err := db.Exec(fmt.Sprintf("CREATE UNIQUE INDEX %s_tr ON %s (Tenant, Row)", e.Name, e.Name)); err != nil {
			return err
		}
	}
	if err := createChunkTables(db, l.opt.Defs, chunkMetaCols(), false); err != nil {
		return err
	}
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

// chunkedColumns lists the tenant's extension columns that fold into
// chunk tables for one base table.
func (l *ChunkFoldingLayout) chunkedColumns(tn *Tenant, table string) []Column {
	var out []Column
	for _, en := range tn.Extensions {
		e := l.s.schema.Extension(en)
		if e == nil || !strings.EqualFold(e.Base, table) || l.conventionalExt(en) {
			continue
		}
		out = append(out, e.Columns...)
	}
	return out
}

// AddTenant implements Layout: meta-data only (chunk assignments for
// the tenant's folded extension columns).
func (l *ChunkFoldingLayout) AddTenant(_ *engine.DB, t *Tenant) error {
	assigns := map[string]*assignment{}
	for _, bt := range l.s.schema.Tables {
		if _, err := l.s.schema.LogicalColumns(t, bt.Name); err != nil {
			return err
		}
		a, err := newAssignment(l.chunkedColumns(t, bt.Name), l.opt.Defs)
		if err != nil {
			return err
		}
		assigns[assignKey(t.ID, bt.Name)] = a
	}
	if err := l.s.addTenant(t); err != nil {
		return err
	}
	l.mu.Lock()
	for k, a := range assigns {
		l.assigns[k] = a
	}
	l.mu.Unlock()
	return nil
}

// ExtendTenant enables an extension on-line. Folded extensions are pure
// meta-data; conventional ones back-fill spine rows like the Extension
// layout.
func (l *ChunkFoldingLayout) ExtendTenant(db *engine.DB, tenantID int64, extName string) error {
	ext := l.s.schema.Extension(extName)
	if ext == nil {
		return fmt.Errorf("core: no extension %s", extName)
	}
	if err := extendMetadataOnly(l.s, tenantID, extName); err != nil {
		return err
	}
	if l.conventionalExt(extName) {
		rows, err := db.Query(fmt.Sprintf("SELECT Row FROM %s WHERE Tenant = %d", ext.Base, tenantID))
		if err != nil {
			return err
		}
		for _, r := range rows.Data {
			q := fmt.Sprintf("INSERT INTO %s (Tenant, Row) VALUES (%d, %d)", ext.Name, tenantID, r[0].Int)
			if _, err := db.Exec(q); err != nil {
				return err
			}
		}
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.assigns[assignKey(tenantID, ext.Base)]
	if a == nil {
		return fmt.Errorf("core: no assignment for tenant %d table %s", tenantID, ext.Base)
	}
	before := len(a.groups)
	if err := a.extend(ext.Columns, l.opt.Defs); err != nil {
		return err
	}
	// New chunks need spine rows for existing logical rows.
	tid, _ := l.s.tableID(ext.Base)
	rows, err := db.Query(fmt.Sprintf("SELECT Row FROM %s WHERE Tenant = %d", ext.Base, tenantID))
	if err != nil {
		return err
	}
	for _, g := range a.groups[before:] {
		for _, r := range rows.Data {
			q := fmt.Sprintf("INSERT INTO %s (Tenant, Table, Chunk, Row) VALUES (%d, %d, %d, %d)",
				g.Def.Name, tenantID, tid, g.ID, r[0].Int)
			if _, err := db.Exec(q); err != nil {
				return err
			}
		}
	}
	return nil
}

func (l *ChunkFoldingLayout) assignmentFor(tenantID int64, table string) (*assignment, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	a := l.assigns[assignKey(tenantID, table)]
	if a == nil {
		return nil, fmt.Errorf("core: no chunk assignment for tenant %d table %s", tenantID, table)
	}
	return a, nil
}

// Rewrite implements Layout.
func (l *ChunkFoldingLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	return genericRewrite(l, tenantID, st)
}

// colHome locates a logical column: "" means the base table, an
// extension name means a conventional extension table, and a non-nil
// group means a folded chunk.
func (l *ChunkFoldingLayout) colHome(tn *Tenant, table *Table, a *assignment, col string) (conv string, loc colLoc, err error) {
	if c, _ := table.Column(col); c != nil {
		return table.Name, colLoc{}, nil
	}
	for _, en := range tn.Extensions {
		e := l.s.schema.Extension(en)
		if e == nil || !strings.EqualFold(e.Base, table.Name) {
			continue
		}
		for _, c := range e.Columns {
			if strings.EqualFold(c.Name, col) {
				if l.conventionalExt(en) {
					return e.Name, colLoc{}, nil
				}
				loc, ok := a.locate(col)
				if !ok {
					return "", colLoc{}, fmt.Errorf("core: column %s of %s is unassigned", col, table.Name)
				}
				return "", loc, nil
			}
		}
	}
	return "", colLoc{}, fmt.Errorf("core: no column %s in %s for tenant %d", col, table.Name, tn.ID)
}

// reconstruct implements reconstructor: the conventional base anchors;
// conventional extensions and chunk groups join on Row (§6.4: the only
// interface between the parts is the Row meta-column).
func (l *ChunkFoldingLayout) reconstruct(tn *Tenant, table *Table, used []Column, withRow bool) (*sql.SelectStmt, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil, err
	}
	convAlias := map[string]string{strings.ToLower(table.Name): "b"}
	var convOrder []string
	groupAlias := map[int]string{}
	var groupOrder []*chunkGroup

	sel := &sql.SelectStmt{}
	for _, c := range used {
		conv, loc, err := l.colHome(tn, table, a, c.Name)
		if err != nil {
			return nil, err
		}
		var e sql.Expr
		if conv != "" {
			al, ok := convAlias[strings.ToLower(conv)]
			if !ok {
				al = fmt.Sprintf("x%d", len(convOrder))
				convAlias[strings.ToLower(conv)] = al
				convOrder = append(convOrder, conv)
			}
			e = colRef(al, c.Name)
		} else {
			al, ok := groupAlias[loc.group.ID]
			if !ok {
				al = fmt.Sprintf("c%d", len(groupOrder))
				groupAlias[loc.group.ID] = al
				groupOrder = append(groupOrder, loc.group)
			}
			e = chunkColExpr(al, loc.phys, c)
		}
		sel.Items = append(sel.Items, sql.SelectItem{Expr: e, Alias: c.Name})
	}
	if withRow {
		sel.Items = append(sel.Items, sql.SelectItem{Expr: colRef("b", "Row"), Alias: rowCol})
	}

	// Flat conjunctive form (§6.1/§6.4): conventional parts and chunks
	// comma-joined, aligned on the Row meta-column.
	sel.From = append(sel.From, &sql.NamedTable{Name: table.Name, Alias: "b"})
	conjs := []sql.Expr{eq(colRef("b", "Tenant"), intLit(tn.ID))}
	for _, conv := range convOrder {
		al := convAlias[strings.ToLower(conv)]
		sel.From = append(sel.From, &sql.NamedTable{Name: conv, Alias: al})
		conjs = append(conjs,
			eq(colRef(al, "Tenant"), intLit(tn.ID)),
			eq(colRef(al, "Row"), colRef("b", "Row")),
		)
	}
	for _, g := range groupOrder {
		al := groupAlias[g.ID]
		sel.From = append(sel.From, &sql.NamedTable{Name: g.Def.Name, Alias: al})
		conjs = append(conjs,
			eq(colRef(al, "Tenant"), intLit(tn.ID)),
			eq(colRef(al, "Table"), intLit(int64(tid))),
			eq(colRef(al, "Chunk"), intLit(int64(g.ID))),
			eq(colRef(al, "Row"), colRef("b", "Row")),
		)
	}
	sel.Where = and(conjs...)
	return sel, nil
}

// insertRows implements reconstructor.
func (l *ChunkFoldingLayout) insertRows(tn *Tenant, table *Table, cols []Column, rows [][]sql.Expr) ([]sql.Statement, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil, err
	}
	firstRow := l.s.nextRows(tn.ID, table.Name, int64(len(rows)))

	type target struct {
		stmt    *sql.InsertStmt
		colPos  map[string]int
		chunkID int // -1 for conventional
	}
	var targets []*target
	byName := map[string]*target{}
	mkConv := func(phys string) *target {
		k := strings.ToLower(phys)
		if t, ok := byName[k]; ok {
			return t
		}
		t := &target{
			stmt:    &sql.InsertStmt{Table: phys, Columns: []string{"Tenant", "Row"}},
			colPos:  map[string]int{},
			chunkID: -1,
		}
		byName[k] = t
		targets = append(targets, t)
		return t
	}
	byChunk := map[int]*target{}
	mkChunk := func(g *chunkGroup) *target {
		if t, ok := byChunk[g.ID]; ok {
			return t
		}
		t := &target{
			stmt:    &sql.InsertStmt{Table: g.Def.Name, Columns: []string{"Tenant", "Table", "Chunk", "Row"}},
			colPos:  map[string]int{},
			chunkID: g.ID,
		}
		byChunk[g.ID] = t
		targets = append(targets, t)
		return t
	}

	// Spine targets: base, tenant's conventional extensions, all chunks.
	mkConv(table.Name)
	for _, en := range tn.Extensions {
		e := l.s.schema.Extension(en)
		if e != nil && strings.EqualFold(e.Base, table.Name) && l.conventionalExt(en) {
			mkConv(e.Name)
		}
	}
	for _, g := range a.groups {
		mkChunk(g)
	}

	colTarget := make([]*target, len(cols))
	for i, c := range cols {
		conv, loc, err := l.colHome(tn, table, a, c.Name)
		if err != nil {
			return nil, err
		}
		var t *target
		var phys string
		if conv != "" {
			t, phys = mkConv(conv), c.Name
		} else {
			t, phys = mkChunk(loc.group), loc.phys
		}
		t.colPos[strings.ToLower(c.Name)] = len(t.stmt.Columns)
		t.stmt.Columns = append(t.stmt.Columns, phys)
		colTarget[i] = t
	}
	for ri, row := range rows {
		rowID := firstRow + int64(ri)
		for _, t := range targets {
			vals := make([]sql.Expr, len(t.stmt.Columns))
			vals[0] = intLit(tn.ID)
			if t.chunkID >= 0 {
				vals[1] = intLit(int64(tid))
				vals[2] = intLit(int64(t.chunkID))
				vals[3] = intLit(rowID)
				for i := 4; i < len(vals); i++ {
					vals[i] = lit(types.Null())
				}
			} else {
				vals[1] = intLit(rowID)
				for i := 2; i < len(vals); i++ {
					vals[i] = lit(types.Null())
				}
			}
			t.stmt.Rows = append(t.stmt.Rows, vals)
		}
		for i, e := range row {
			t := colTarget[i]
			pos := t.colPos[strings.ToLower(cols[i].Name)]
			if t.chunkID >= 0 && cols[i].Type.Kind == types.KindBool {
				e = &sql.CastExpr{X: e, Type: types.IntType}
			}
			t.stmt.Rows[len(t.stmt.Rows)-1][pos] = e
		}
	}
	out := make([]sql.Statement, len(targets))
	for i, t := range targets {
		out[i] = t.stmt
	}
	return out, nil
}

// phaseBUpdate implements reconstructor.
func (l *ChunkFoldingLayout) phaseBUpdate(tn *Tenant, table *Table, setCols []Column, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil
	}
	type tgt struct {
		conv  string
		group *chunkGroup
		idxs  []int
	}
	var order []*tgt
	find := func(conv string, g *chunkGroup) *tgt {
		for _, t := range order {
			if t.conv == conv && t.group == g {
				return t
			}
		}
		t := &tgt{conv: conv, group: g}
		order = append(order, t)
		return t
	}
	for i, c := range setCols {
		conv, loc, err := l.colHome(tn, table, a, c.Name)
		if err != nil {
			continue
		}
		if conv != "" {
			find(conv, nil).idxs = append(find(conv, nil).idxs, i)
		} else {
			find("", loc.group).idxs = append(find("", loc.group).idxs, i)
		}
	}
	mkStmt := func(t *tgt, vals []types.Value, rowPred sql.Expr) sql.Statement {
		up := &sql.UpdateStmt{}
		var metaPred sql.Expr
		if t.conv != "" {
			up.Table = t.conv
			metaPred = eq(colRef("", "Tenant"), intLit(tn.ID))
		} else {
			up.Table = t.group.Def.Name
			metaPred = and(
				eq(colRef("", "Tenant"), intLit(tn.ID)),
				eq(colRef("", "Table"), intLit(int64(tid))),
				eq(colRef("", "Chunk"), intLit(int64(t.group.ID))),
			)
		}
		for _, i := range t.idxs {
			v := vals[i+1]
			colName := setCols[i].Name
			if t.conv == "" {
				loc, _ := a.locate(setCols[i].Name)
				colName = loc.phys
				if setCols[i].Type.Kind == types.KindBool && !v.IsNull() {
					v = types.NewInt(v.Int)
				}
			}
			up.Set = append(up.Set, sql.Assignment{Column: colName, Value: lit(v)})
		}
		up.Where = and(metaPred, rowPred)
		return up
	}
	var out []sql.Statement
	if constantSets(rows, len(setCols)) {
		rowPred := inList(colRef("", "Row"), column(rows, 0))
		for _, t := range order {
			out = append(out, mkStmt(t, rows[0], rowPred))
		}
		return out
	}
	for _, r := range rows {
		for _, t := range order {
			out = append(out, mkStmt(t, r, eq(colRef("", "Row"), lit(r[0]))))
		}
	}
	return out
}

// phaseBDelete implements reconstructor.
func (l *ChunkFoldingLayout) phaseBDelete(tn *Tenant, table *Table, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil
	}
	rowIDs := column(rows, 0)
	var out []sql.Statement
	out = append(out, &sql.DeleteStmt{
		Table: table.Name,
		Where: and(eq(colRef("", "Tenant"), intLit(tn.ID)), inList(colRef("", "Row"), rowIDs)),
	})
	for _, en := range tn.Extensions {
		e := l.s.schema.Extension(en)
		if e != nil && strings.EqualFold(e.Base, table.Name) && l.conventionalExt(en) {
			out = append(out, &sql.DeleteStmt{
				Table: e.Name,
				Where: and(eq(colRef("", "Tenant"), intLit(tn.ID)), inList(colRef("", "Row"), rowIDs)),
			})
		}
	}
	for _, g := range a.groups {
		out = append(out, &sql.DeleteStmt{
			Table: g.Def.Name,
			Where: and(
				eq(colRef("", "Tenant"), intLit(tn.ID)),
				eq(colRef("", "Table"), intLit(int64(tid))),
				eq(colRef("", "Chunk"), intLit(int64(g.ID))),
				inList(colRef("", "Row"), rowIDs),
			),
		})
	}
	return out
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *ChunkFoldingLayout) TenantByID(id int64) (*Tenant, error) { return l.s.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *ChunkFoldingLayout) Tenants() []*Tenant { return l.s.Tenants() }
