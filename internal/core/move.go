package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// This file implements the paper's §7 "on-the-fly" half of migration:
// moving ONE tenant between two layout representations while that
// tenant — and every other tenant — keeps serving traffic. Migrator
// (migrate.go) already replays a quiesced tenant between layouts; the
// Mover removes the quiesce. The protocol is the classic online-move
// shape, the same publish-then-catch-up idea as the engine's online
// ALTER (internal/engine/alter.go), lifted to the schema-mapping layer:
//
//  1. Register the tenant in the destination layout and start dirty
//     tracking: every logical write the tenant issues from here on
//     marks its table dirty inside the routing mux.
//  2. Convergence rounds: atomically swap out the dirty set (a
//     microsecond write-gate pause, not a stop-the-world), re-copy
//     exactly those tables source → destination, repeat until a round
//     starts with nothing dirty. Each swap also bumps the tenant's
//     rewrite-cache generation, so the first write per statement text
//     after a swap re-enters the mux's Rewrite and re-marks its table —
//     cached rewrites cannot leak writes past the tracker.
//  3. Cutover: take the tenant's write gate exclusively (draining
//     in-flight statements — a latch-scale wait, bounded by one
//     statement), copy the final delta, flip the route, invalidate the
//     tenant's cached rewrites, release. Statements that were queued
//     behind the gate execute against the destination.
//
// Correctness of the dirty protocol: a Mapper holds the tenant's gate
// in read mode across one whole statement (cache lookup through
// execution), and each round's swap runs under the gate held
// exclusively. So every statement that executes inside round window i
// acquired the gate — and therefore ran its cache lookup — after round
// i's swap+invalidation, which means it either refilled through
// Mux.Rewrite (marking its table into the new dirty set) or hit an
// entry some other post-swap statement filled (which marked the same
// table). Either way round i+1's swap sees the table dirty and
// re-copies it. A statement can never execute in window i carrying a
// pre-window rewrite, because the exclusive swap drained it first.
//
// Caveat: an interactive transaction spanning statements (BEGIN ...
// COMMIT on a session-backed mapper) holds the gate per statement, not
// per transaction; moving a tenant while it runs multi-statement
// transactions can cut over mid-transaction. Pause such sessions or
// move tenants during their idle windows — the same operational posture
// the paper assumes for representation changes.

// gatedLayout is implemented by layouts that gate per-tenant execution.
// Mapper entry points type-assert it; plain layouts pay nothing.
type gatedLayout interface {
	// acquire takes the tenant's statement gate shared and returns the
	// release func.
	acquire(tenant int64) func()
}

// LayoutMux is a routing Layout: every tenant resolves to the default
// layout unless an override route says otherwise. It is the unit of
// on-the-fly representation change — a Mover rewires one tenant's route
// while the mux keeps rewriting everyone's statements — and is
// transparent to Mapper, RewriteCache, and Migrator (it implements
// Layout and the tenant-listing surface they use).
type LayoutMux struct {
	def Layout

	mu     sync.RWMutex
	routes map[int64]Layout
	gates  map[int64]*sync.RWMutex
	moving map[int64]map[string]bool // tenant -> dirty logical tables
}

// NewLayoutMux wraps a default layout.
func NewLayoutMux(def Layout) *LayoutMux {
	return &LayoutMux{
		def:    def,
		routes: make(map[int64]Layout),
		gates:  make(map[int64]*sync.RWMutex),
		moving: make(map[int64]map[string]bool),
	}
}

// Route returns the layout currently serving a tenant.
func (x *LayoutMux) Route(tenant int64) Layout {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if l, ok := x.routes[tenant]; ok {
		return l
	}
	return x.def
}

// SetRoute points a tenant at a layout. Passing the default layout
// clears the override.
func (x *LayoutMux) SetRoute(tenant int64, l Layout) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if l == x.def {
		delete(x.routes, tenant)
		return
	}
	x.routes[tenant] = l
}

// Name reports the default technique; per-tenant overrides are a
// routing detail, not a different technique.
func (x *LayoutMux) Name() string { return x.def.Name() }

// Schema returns the logical schema (identical across routed layouts by
// construction — a move requires it).
func (x *LayoutMux) Schema() *Schema { return x.def.Schema() }

// Create provisions the default layout.
func (x *LayoutMux) Create(db *engine.DB, tenants []*Tenant) error {
	return x.def.Create(db, tenants)
}

// AddTenant registers a tenant with its routed layout.
func (x *LayoutMux) AddTenant(db *engine.DB, t *Tenant) error {
	return x.Route(t.ID).AddTenant(db, t)
}

// Rewrite routes one statement and, when the tenant is mid-move, marks
// the tables a write touches dirty. Marking here (fill time) rather
// than at execution is what makes cached rewrites safe: see the
// protocol note at the top of the file.
func (x *LayoutMux) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	x.mu.Lock()
	l, ok := x.routes[tenantID]
	if !ok {
		l = x.def
	}
	if dirty, ok := x.moving[tenantID]; ok {
		switch st := st.(type) {
		case *sql.InsertStmt:
			dirty[strings.ToLower(st.Table)] = true
		case *sql.UpdateStmt:
			dirty[strings.ToLower(st.Table)] = true
		case *sql.DeleteStmt:
			dirty[strings.ToLower(st.Table)] = true
		}
	}
	x.mu.Unlock()
	return l.Rewrite(tenantID, st)
}

// TenantByID resolves through the tenant's routed layout.
func (x *LayoutMux) TenantByID(id int64) (*Tenant, error) {
	return layoutTenant(x.Route(id), id)
}

// Tenants lists the default layout's registry (every tenant is
// registered there; routed tenants are additionally registered at their
// destination).
func (x *LayoutMux) Tenants() []*Tenant {
	tns, _ := layoutTenants(x.def)
	return tns
}

// gate returns the tenant's statement gate, creating it on first use.
func (x *LayoutMux) gate(tenant int64) *sync.RWMutex {
	x.mu.RLock()
	g, ok := x.gates[tenant]
	x.mu.RUnlock()
	if ok {
		return g
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if g, ok := x.gates[tenant]; ok {
		return g
	}
	g = &sync.RWMutex{}
	x.gates[tenant] = g
	return g
}

// acquire implements gatedLayout.
func (x *LayoutMux) acquire(tenant int64) func() {
	g := x.gate(tenant)
	g.RLock()
	return g.RUnlock
}

// startTracking begins dirty tracking with every logical table dirty,
// so the first convergence round copies everything.
func (x *LayoutMux) startTracking(tenant int64) {
	all := make(map[string]bool)
	for _, t := range x.Schema().Tables {
		all[strings.ToLower(t.Name)] = true
	}
	x.mu.Lock()
	x.moving[tenant] = all
	x.mu.Unlock()
}

// takeDirty swaps the tenant's dirty set for an empty one and returns
// the taken tables sorted. Callers synchronize via the tenant gate.
func (x *LayoutMux) takeDirty(tenant int64) []string {
	x.mu.Lock()
	dirty := x.moving[tenant]
	if dirty != nil {
		x.moving[tenant] = make(map[string]bool)
	}
	x.mu.Unlock()
	out := make([]string, 0, len(dirty))
	for t := range dirty {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// stopTracking ends dirty tracking for a tenant.
func (x *LayoutMux) stopTracking(tenant int64) {
	x.mu.Lock()
	delete(x.moving, tenant)
	x.mu.Unlock()
}

// MoveReport summarizes one on-the-fly tenant move.
type MoveReport struct {
	Tenant       int64
	From, To     string // layout names
	Rounds       int    // convergence rounds before the cutover
	TablesCopied int    // table copies across all rounds (with repeats)
	RowsCopied   int64
	CutoverDirty int           // tables still dirty at cutover
	GatePause    time.Duration // exclusive-gate hold at cutover
}

// Mover executes on-the-fly tenant moves over one database.
type Mover struct {
	DB  *engine.DB
	Mux *LayoutMux
	// Cache, when the serving Mappers share a RewriteCache, is bumped at
	// every dirty-set swap and at cutover. Required for correctness if —
	// and only if — a cache is serving this mux.
	Cache *RewriteCache
	// BatchRows is the INSERT batch size (default 64).
	BatchRows int
	// MaxRounds bounds convergence (default 8); if the tenant writes
	// faster than copies converge, the cutover gate absorbs the rest.
	MaxRounds int
	// Verify re-reads and compares every table at cutover (inside the
	// gate) before flipping the route.
	Verify bool
}

// Move transfers tenantID from its current route to dst while the
// tenant keeps executing statements, and flips the route atomically at
// the end. dst must be built over the same logical schema and the same
// *engine.DB the mux serves.
func (mv *Mover) Move(tenantID int64, dst Layout) (*MoveReport, error) {
	src := mv.Mux.Route(tenantID)
	if src == dst {
		return nil, fmt.Errorf("core: tenant %d already on layout %s", tenantID, dst.Name())
	}
	srcTn, err := layoutTenant(src, tenantID)
	if err != nil {
		return nil, err
	}
	if dstTn, err := layoutTenant(dst, tenantID); err != nil {
		// Not registered at the destination yet: register now (online —
		// AddTenant is metadata except for Private, which creates empty
		// tables).
		if err := dst.AddTenant(mv.DB, &Tenant{ID: srcTn.ID, Extensions: append([]string(nil), srcTn.Extensions...)}); err != nil {
			return nil, fmt.Errorf("core: register tenant %d at destination: %w", tenantID, err)
		}
	} else if !sameExtensions(srcTn, dstTn) {
		return nil, fmt.Errorf("core: tenant %d extension sets differ between layouts", tenantID)
	}

	rep := &MoveReport{Tenant: tenantID, From: src.Name(), To: dst.Name()}
	g := mv.Mux.gate(tenantID)
	mv.Mux.startTracking(tenantID)
	defer mv.Mux.stopTracking(tenantID)

	maxRounds := mv.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 8
	}
	converged := false
	for round := 0; round < maxRounds; round++ {
		// Swap under the gate: drains in-flight statements so every
		// already-consumed mark's write is visible to this round's copy,
		// then stale the tenant's cached rewrites so new writes re-mark.
		g.Lock()
		dirty := mv.Mux.takeDirty(tenantID)
		if mv.Cache != nil {
			mv.Cache.InvalidateTenant(tenantID)
		}
		g.Unlock()
		if len(dirty) == 0 {
			converged = true
			break
		}
		rep.Rounds++
		for _, table := range dirty {
			n, err := mv.copyTable(src, dst, srcTn, table)
			if err != nil {
				return rep, fmt.Errorf("core: move tenant %d table %s: %w", tenantID, table, err)
			}
			rep.TablesCopied++
			rep.RowsCopied += n
		}
	}
	_ = converged // rounds may be exhausted; the gated delta below covers it

	// Cutover: exclusive gate, final delta, flip.
	g.Lock()
	start := time.Now()
	finish := func() { rep.GatePause = time.Since(start); g.Unlock() }
	dirty := mv.Mux.takeDirty(tenantID)
	rep.CutoverDirty = len(dirty)
	for _, table := range dirty {
		n, err := mv.copyTable(src, dst, srcTn, table)
		if err != nil {
			finish()
			return rep, fmt.Errorf("core: move tenant %d final delta %s: %w", tenantID, table, err)
		}
		rep.TablesCopied++
		rep.RowsCopied += n
	}
	if mv.Verify {
		for _, t := range src.Schema().Tables {
			if err := mv.verifyTable(src, dst, srcTn, t.Name); err != nil {
				finish()
				return rep, fmt.Errorf("core: move tenant %d verify: %w", tenantID, err)
			}
		}
	}
	mv.Mux.SetRoute(tenantID, dst)
	if mv.Cache != nil {
		mv.Cache.InvalidateTenant(tenantID)
	}
	finish()
	return rep, nil
}

// copyTable replaces the destination's rows for one logical table with
// the source's. It talks to the layouts directly (never through a
// gated Mapper — the cutover calls it with the gate held exclusively).
func (mv *Mover) copyTable(src, dst Layout, tn *Tenant, tableName string) (int64, error) {
	table := src.Schema().Table(tableName)
	if table == nil {
		return 0, fmt.Errorf("no logical table %s", tableName)
	}
	cols, err := src.Schema().LogicalColumns(tn, table.Name)
	if err != nil {
		return 0, err
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}

	// Clear the destination first: rounds re-copy tables whose rows may
	// have been updated or deleted at the source since the last copy.
	if err := mv.execLogical(dst, tn.ID, &sql.DeleteStmt{Table: table.Name}); err != nil {
		return 0, err
	}

	rows, err := mv.queryLogical(src, tn.ID, table.Name, names)
	if err != nil {
		return 0, err
	}
	batch := mv.BatchRows
	if batch <= 0 {
		batch = 64
	}
	for start := 0; start < len(rows); start += batch {
		end := start + batch
		if end > len(rows) {
			end = len(rows)
		}
		ins := &sql.InsertStmt{Table: table.Name, Columns: names}
		for _, r := range rows[start:end] {
			vals := make([]sql.Expr, len(r))
			for i, v := range r {
				vals[i] = &sql.Literal{Val: v}
			}
			ins.Rows = append(ins.Rows, vals)
		}
		if err := mv.execLogical(dst, tn.ID, ins); err != nil {
			return int64(start), err
		}
	}
	return int64(len(rows)), nil
}

// queryLogical reads one table's logical rows through a layout,
// bypassing Mapper (and its gate).
func (mv *Mover) queryLogical(l Layout, tenant int64, table string, cols []string) ([][]types.Value, error) {
	sel := &sql.SelectStmt{From: []sql.TableRef{&sql.NamedTable{Name: table}}}
	for _, c := range cols {
		sel.Items = append(sel.Items, sql.SelectItem{Expr: &sql.ColumnRef{Name: c}})
	}
	rw, err := l.Rewrite(tenant, sel)
	if err != nil {
		return nil, err
	}
	rows, err := mv.DB.QueryStmt(rw.Query)
	if err != nil {
		return nil, err
	}
	return rows.Data, nil
}

// execLogical runs one logical write through a layout, bypassing
// Mapper. Handles both Rewritten shapes (Direct and two-phase).
func (mv *Mover) execLogical(l Layout, tenant int64, st sql.Statement) error {
	rw, err := l.Rewrite(tenant, st)
	if err != nil {
		return err
	}
	for _, ps := range rw.Direct {
		if _, err := mv.DB.ExecStmt(ps); err != nil {
			return err
		}
	}
	if rw.RowQuery != nil {
		rows, err := mv.DB.QueryStmt(rw.RowQuery)
		if err != nil {
			return err
		}
		if len(rows.Data) > 0 {
			for _, ps := range rw.PhaseB(rows.Data) {
				if _, err := mv.DB.ExecStmt(ps); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// verifyTable compares one table's logical contents between layouts.
func (mv *Mover) verifyTable(src, dst Layout, tn *Tenant, table string) error {
	cols, err := src.Schema().LogicalColumns(tn, table)
	if err != nil {
		return err
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	a, err := mv.queryLogical(src, tn.ID, table, names)
	if err != nil {
		return err
	}
	b, err := mv.queryLogical(dst, tn.ID, table, names)
	if err != nil {
		return err
	}
	if err := sameRowMultiset(a, b); err != nil {
		return fmt.Errorf("table %s diverges: %w", table, err)
	}
	return nil
}
