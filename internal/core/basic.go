package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// BasicLayout is the paper's baseline technique: add a Tenant column to
// every table and share tables among all tenants. Best consolidation,
// no extensibility — tenants with extensions are rejected.
type BasicLayout struct {
	st *state
}

// NewBasicLayout builds the layout for a logical schema.
func NewBasicLayout(schema *Schema) (*BasicLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &BasicLayout{st: newState(schema)}, nil
}

// Name implements Layout.
func (l *BasicLayout) Name() string { return "basic" }

// Schema implements Layout.
func (l *BasicLayout) Schema() *Schema { return l.st.schema }

// Create implements Layout.
func (l *BasicLayout) Create(db *engine.DB, tenants []*Tenant) error {
	for _, t := range l.st.schema.Tables {
		cols := append([]Column{{Name: "Tenant", Type: types.IntType, NotNull: true}}, t.Columns...)
		if _, err := db.Exec(buildCreateTable(t.Name, cols)); err != nil {
			return err
		}
		ddl := fmt.Sprintf("CREATE UNIQUE INDEX %s_tk ON %s (Tenant, %s)", t.Name, t.Name, t.Key)
		if _, err := db.Exec(ddl); err != nil {
			return err
		}
		for _, c := range t.Columns {
			if !c.Indexed || c.Name == t.Key {
				continue
			}
			ddl := fmt.Sprintf("CREATE INDEX %s_%s ON %s (Tenant, %s)", t.Name, c.Name, t.Name, c.Name)
			if _, err := db.Exec(ddl); err != nil {
				return err
			}
		}
	}
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

// AddTenant implements Layout. Pure registration: the shared tables
// already exist.
func (l *BasicLayout) AddTenant(_ *engine.DB, t *Tenant) error {
	if len(t.Extensions) > 0 {
		return fmt.Errorf("core: basic layout cannot represent extensions (tenant %d)", t.ID)
	}
	return l.st.addTenant(t)
}

// Rewrite implements Layout.
func (l *BasicLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	tn, err := l.st.tenant(tenantID)
	if err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case *sql.SelectStmt:
		sel, err := l.rewriteSelect(tn, st)
		if err != nil {
			return nil, err
		}
		return &Rewritten{Query: sel}, nil
	case *sql.InsertStmt:
		return l.rewriteInsert(tn, st)
	case *sql.UpdateStmt:
		if l.st.schema.Table(st.Table) == nil {
			return nil, fmt.Errorf("core: no logical table %s", st.Table)
		}
		out := &sql.UpdateStmt{Table: st.Table, Alias: st.Alias, Set: st.Set}
		qual := st.Alias
		where, err := rewriteInSubqueries(st.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
			return l.rewriteSelect(tn, s)
		})
		if err != nil {
			return nil, err
		}
		out.Where = and(eq(colRef(qual, "Tenant"), intLit(tn.ID)), where)
		return &Rewritten{Direct: []sql.Statement{out}, DirectIsCount: true}, nil
	case *sql.DeleteStmt:
		if l.st.schema.Table(st.Table) == nil {
			return nil, fmt.Errorf("core: no logical table %s", st.Table)
		}
		out := &sql.DeleteStmt{Table: st.Table, Alias: st.Alias}
		where, err := rewriteInSubqueries(st.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
			return l.rewriteSelect(tn, s)
		})
		if err != nil {
			return nil, err
		}
		out.Where = and(eq(colRef(st.Alias, "Tenant"), intLit(tn.ID)), where)
		return &Rewritten{Direct: []sql.Statement{out}, DirectIsCount: true}, nil
	}
	return nil, fmt.Errorf("core: basic layout cannot rewrite %T", st)
}

// rewriteSelect wraps each logical table reference in a derived table
// that filters on Tenant and exposes exactly the logical columns, so
// SELECT * never leaks the Tenant meta-data column.
func (l *BasicLayout) rewriteSelect(tn *Tenant, sel *sql.SelectStmt) (*sql.SelectStmt, error) {
	usages, err := analyzeSelect(l.st.schema, tn, sel)
	if err != nil {
		return nil, err
	}
	byRef := map[*sql.NamedTable]*tableUsage{}
	for _, u := range usages {
		byRef[u.ref] = u
	}
	out := *sel
	out.From = make([]sql.TableRef, len(sel.From))
	for i, tr := range sel.From {
		nt, err := l.rewriteRef(tn, tr, byRef)
		if err != nil {
			return nil, err
		}
		out.From[i] = nt
	}
	out.Where, err = rewriteInSubqueries(sel.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
		return l.rewriteSelect(tn, s)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

func (l *BasicLayout) rewriteRef(tn *Tenant, tr sql.TableRef, byRef map[*sql.NamedTable]*tableUsage) (sql.TableRef, error) {
	switch tr := tr.(type) {
	case *sql.NamedTable:
		u := byRef[tr]
		if u == nil {
			return nil, fmt.Errorf("core: unanalyzed table %s", tr.Name)
		}
		used, err := usedColumns(l.st.schema, tn, u)
		if err != nil {
			return nil, err
		}
		inner := &sql.SelectStmt{
			From:  []sql.TableRef{&sql.NamedTable{Name: u.logical.Name, Alias: "s"}},
			Where: eq(colRef("s", "Tenant"), intLit(tn.ID)),
		}
		for _, c := range used {
			inner.Items = append(inner.Items, sql.SelectItem{Expr: colRef("s", c.Name), Alias: c.Name})
		}
		return &sql.SubqueryTable{Select: inner, Alias: u.alias}, nil
	case *sql.SubqueryTable:
		sub, err := l.rewriteSelect(tn, tr.Select)
		if err != nil {
			return nil, err
		}
		return &sql.SubqueryTable{Select: sub, Alias: tr.Alias}, nil
	case *sql.JoinTable:
		left, err := l.rewriteRef(tn, tr.Left, byRef)
		if err != nil {
			return nil, err
		}
		right, err := l.rewriteRef(tn, tr.Right, byRef)
		if err != nil {
			return nil, err
		}
		return &sql.JoinTable{Left: left, Right: right, Type: tr.Type, On: tr.On}, nil
	}
	return nil, fmt.Errorf("core: unsupported FROM entry %T", tr)
}

func (l *BasicLayout) rewriteInsert(tn *Tenant, st *sql.InsertStmt) (*Rewritten, error) {
	t := l.st.schema.Table(st.Table)
	if t == nil {
		return nil, fmt.Errorf("core: no logical table %s", st.Table)
	}
	cols := st.Columns
	if len(cols) == 0 {
		cols = make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
	}
	out := &sql.InsertStmt{Table: t.Name, Columns: append([]string{"Tenant"}, cols...)}
	for _, row := range st.Rows {
		out.Rows = append(out.Rows, append([]sql.Expr{intLit(tn.ID)}, row...))
	}
	return &Rewritten{Direct: []sql.Statement{out}, DirectIsCount: true}, nil
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *BasicLayout) TenantByID(id int64) (*Tenant, error) { return l.st.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *BasicLayout) Tenants() []*Tenant { return l.st.Tenants() }
