package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// VerticalLayout is the Figure 12 comparison baseline: logical tables
// are partitioned into exactly the same chunks as ChunkLayout, but each
// (table, chunk) pair gets its own physical table instead of being
// folded into shared chunk tables. Chunk identification moves from the
// Chunk data column into the physical table name — narrower rows, but
// the table count (and hence the meta-data tax) grows with the number
// of logical tables times chunks.
type VerticalLayout struct {
	s    *state
	defs []*ChunkTableDef

	mu      sync.RWMutex
	assigns map[string]*assignment
	created map[string]bool // physical tables already created
	db      *engine.DB
}

// NewVerticalLayout builds the layout; defs defaults like ChunkLayout.
func NewVerticalLayout(schema *Schema, defs []*ChunkTableDef) (*VerticalLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		defs = UniformChunkDefs(schema, 4)
	}
	return &VerticalLayout{
		s: newState(schema), defs: defs,
		assigns: map[string]*assignment{}, created: map[string]bool{},
	}, nil
}

// Name implements Layout.
func (l *VerticalLayout) Name() string { return "vertical" }

// Schema implements Layout.
func (l *VerticalLayout) Schema() *Schema { return l.s.schema }

func (l *VerticalLayout) state() *state { return l.s }

// physName is the per-(table, chunk) physical table.
func (l *VerticalLayout) physName(def *ChunkTableDef, tableID, chunkID int) string {
	return fmt.Sprintf("%s_%d_%d", def.Name, tableID, chunkID)
}

// Create implements Layout.
func (l *VerticalLayout) Create(db *engine.DB, tenants []*Tenant) error {
	l.mu.Lock()
	l.db = db
	l.mu.Unlock()
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

// AddTenant implements Layout: computes assignments and creates any
// missing per-chunk tables (tenants with the same extension profile
// share them).
func (l *VerticalLayout) AddTenant(db *engine.DB, t *Tenant) error {
	assigns := map[string]*assignment{}
	for _, bt := range l.s.schema.Tables {
		cols, err := l.s.schema.LogicalColumns(t, bt.Name)
		if err != nil {
			return err
		}
		a, err := newAssignment(cols, l.defs)
		if err != nil {
			return err
		}
		assigns[assignKey(t.ID, bt.Name)] = a
		tid, err := l.s.tableID(bt.Name)
		if err != nil {
			return err
		}
		for _, g := range a.groups {
			if err := l.ensureTable(db, g.Def, tid, g.ID); err != nil {
				return err
			}
		}
	}
	if err := l.s.addTenant(t); err != nil {
		return err
	}
	l.mu.Lock()
	l.db = db
	for k, a := range assigns {
		l.assigns[k] = a
	}
	l.mu.Unlock()
	return nil
}

func (l *VerticalLayout) ensureTable(db *engine.DB, def *ChunkTableDef, tableID, chunkID int) error {
	name := l.physName(def, tableID, chunkID)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.created[strings.ToLower(name)] {
		return nil
	}
	cols := []Column{
		{Name: "Tenant", Type: types.IntType, NotNull: true},
		{Name: "Row", Type: types.IntType, NotNull: true},
	}
	phys := def.PhysCols()
	for i, t := range def.Cols {
		cols = append(cols, Column{Name: phys[i], Type: t})
	}
	if _, err := db.Exec(buildCreateTable(name, cols)); err != nil {
		return err
	}
	if _, err := db.Exec(fmt.Sprintf("CREATE UNIQUE INDEX %s_tr ON %s (Tenant, Row)", name, name)); err != nil {
		return err
	}
	if def.ValueIndex {
		for _, pc := range phys {
			if _, err := db.Exec(fmt.Sprintf("CREATE INDEX %s_v%s ON %s (Tenant, %s)", name, pc, name, pc)); err != nil {
				return err
			}
		}
	}
	l.created[strings.ToLower(name)] = true
	return nil
}

// ExtendTenant enables an extension on-line: new chunks get new
// physical tables.
func (l *VerticalLayout) ExtendTenant(db *engine.DB, tenantID int64, extName string) error {
	ext := l.s.schema.Extension(extName)
	if ext == nil {
		return fmt.Errorf("core: no extension %s", extName)
	}
	if err := extendMetadataOnly(l.s, tenantID, extName); err != nil {
		return err
	}
	l.mu.Lock()
	a := l.assigns[assignKey(tenantID, ext.Base)]
	l.mu.Unlock()
	if a == nil {
		return fmt.Errorf("core: no assignment for tenant %d table %s", tenantID, ext.Base)
	}
	before := len(a.groups)
	if err := a.extend(ext.Columns, l.defs); err != nil {
		return err
	}
	tid, _ := l.s.tableID(ext.Base)
	anchor := a.groups[0]
	rows, err := db.Query(fmt.Sprintf("SELECT Row FROM %s WHERE Tenant = %d",
		l.physName(anchor.Def, tid, anchor.ID), tenantID))
	if err != nil {
		return err
	}
	for _, g := range a.groups[before:] {
		if err := l.ensureTable(db, g.Def, tid, g.ID); err != nil {
			return err
		}
		for _, r := range rows.Data {
			q := fmt.Sprintf("INSERT INTO %s (Tenant, Row) VALUES (%d, %d)",
				l.physName(g.Def, tid, g.ID), tenantID, r[0].Int)
			if _, err := db.Exec(q); err != nil {
				return err
			}
		}
	}
	return nil
}

func (l *VerticalLayout) assignmentFor(tenantID int64, table string) (*assignment, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	a := l.assigns[assignKey(tenantID, table)]
	if a == nil {
		return nil, fmt.Errorf("core: no chunk assignment for tenant %d table %s", tenantID, table)
	}
	return a, nil
}

// Rewrite implements Layout.
func (l *VerticalLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	return genericRewrite(l, tenantID, st)
}

// reconstruct implements reconstructor: identical join structure to
// ChunkLayout, but each group is its own table and the only meta-data
// conjunct is Tenant.
func (l *VerticalLayout) reconstruct(tn *Tenant, table *Table, used []Column, withRow bool) (*sql.SelectStmt, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil, err
	}
	groups, err := usedGroups(a, table, used)
	if err != nil {
		return nil, err
	}
	aliasOf := map[int]string{}
	for i, g := range groups {
		aliasOf[g.ID] = fmt.Sprintf("v%d", i)
	}
	sel := &sql.SelectStmt{}
	for _, c := range used {
		loc, _ := a.locate(c.Name)
		sel.Items = append(sel.Items, sql.SelectItem{
			Expr:  chunkColExpr(aliasOf[loc.group.ID], loc.phys, c),
			Alias: c.Name,
		})
	}
	anchorAlias := aliasOf[groups[0].ID]
	if withRow {
		sel.Items = append(sel.Items, sql.SelectItem{Expr: colRef(anchorAlias, "Row"), Alias: rowCol})
	}
	// Flat conjunctive form, mirroring ChunkLayout.reconstruct.
	var conjs []sql.Expr
	for i, g := range groups {
		alias := aliasOf[g.ID]
		sel.From = append(sel.From, &sql.NamedTable{Name: l.physName(g.Def, tid, g.ID), Alias: alias})
		conjs = append(conjs, eq(colRef(alias, "Tenant"), intLit(tn.ID)))
		if i > 0 {
			conjs = append(conjs, eq(colRef(alias, "Row"), colRef(anchorAlias, "Row")))
		}
	}
	sel.Where = and(conjs...)
	return sel, nil
}

// insertRows implements reconstructor.
func (l *VerticalLayout) insertRows(tn *Tenant, table *Table, cols []Column, rows [][]sql.Expr) ([]sql.Statement, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil, err
	}
	firstRow := l.s.nextRows(tn.ID, table.Name, int64(len(rows)))
	type target struct {
		stmt   *sql.InsertStmt
		colPos map[string]int
	}
	targets := make(map[int]*target, len(a.groups))
	var order []int
	for _, g := range a.groups {
		targets[g.ID] = &target{
			stmt:   &sql.InsertStmt{Table: l.physName(g.Def, tid, g.ID), Columns: []string{"Tenant", "Row"}},
			colPos: map[string]int{},
		}
		order = append(order, g.ID)
	}
	colTarget := make([]*target, len(cols))
	for i, c := range cols {
		loc, ok := a.locate(c.Name)
		if !ok {
			return nil, fmt.Errorf("core: column %s of %s is unassigned", c.Name, table.Name)
		}
		t := targets[loc.group.ID]
		t.colPos[strings.ToLower(c.Name)] = len(t.stmt.Columns)
		t.stmt.Columns = append(t.stmt.Columns, loc.phys)
		colTarget[i] = t
	}
	for ri, row := range rows {
		rowID := firstRow + int64(ri)
		for _, gid := range order {
			t := targets[gid]
			vals := make([]sql.Expr, len(t.stmt.Columns))
			vals[0], vals[1] = intLit(tn.ID), intLit(rowID)
			for i := 2; i < len(vals); i++ {
				vals[i] = lit(types.Null())
			}
			t.stmt.Rows = append(t.stmt.Rows, vals)
		}
		for i, e := range row {
			t := colTarget[i]
			pos := t.colPos[strings.ToLower(cols[i].Name)]
			if cols[i].Type.Kind == types.KindBool {
				e = &sql.CastExpr{X: e, Type: types.IntType}
			}
			t.stmt.Rows[len(t.stmt.Rows)-1][pos] = e
		}
	}
	var out []sql.Statement
	for _, gid := range order {
		out = append(out, targets[gid].stmt)
	}
	return out, nil
}

// phaseBUpdate implements reconstructor.
func (l *VerticalLayout) phaseBUpdate(tn *Tenant, table *Table, setCols []Column, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil
	}
	type gset struct {
		g    *chunkGroup
		idxs []int
	}
	byGroup := map[int]*gset{}
	var order []int
	for i, c := range setCols {
		loc, ok := a.locate(c.Name)
		if !ok {
			continue
		}
		gs := byGroup[loc.group.ID]
		if gs == nil {
			gs = &gset{g: loc.group}
			byGroup[loc.group.ID] = gs
			order = append(order, loc.group.ID)
		}
		gs.idxs = append(gs.idxs, i)
	}
	mkSet := func(gs *gset, vals []types.Value) []sql.Assignment {
		var out []sql.Assignment
		for _, i := range gs.idxs {
			loc, _ := a.locate(setCols[i].Name)
			v := vals[i+1]
			if setCols[i].Type.Kind == types.KindBool && !v.IsNull() {
				v = types.NewInt(v.Int)
			}
			out = append(out, sql.Assignment{Column: loc.phys, Value: lit(v)})
		}
		return out
	}
	var out []sql.Statement
	if constantSets(rows, len(setCols)) {
		rowIDs := column(rows, 0)
		for _, gid := range order {
			gs := byGroup[gid]
			out = append(out, &sql.UpdateStmt{
				Table: l.physName(gs.g.Def, tid, gs.g.ID),
				Set:   mkSet(gs, rows[0]),
				Where: and(eq(colRef("", "Tenant"), intLit(tn.ID)), inList(colRef("", "Row"), rowIDs)),
			})
		}
		return out
	}
	for _, r := range rows {
		for _, gid := range order {
			gs := byGroup[gid]
			out = append(out, &sql.UpdateStmt{
				Table: l.physName(gs.g.Def, tid, gs.g.ID),
				Set:   mkSet(gs, r),
				Where: and(eq(colRef("", "Tenant"), intLit(tn.ID)), eq(colRef("", "Row"), lit(r[0]))),
			})
		}
	}
	return out
}

// phaseBDelete implements reconstructor.
func (l *VerticalLayout) phaseBDelete(tn *Tenant, table *Table, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil
	}
	rowIDs := column(rows, 0)
	var out []sql.Statement
	for _, g := range a.groups {
		out = append(out, &sql.DeleteStmt{
			Table: l.physName(g.Def, tid, g.ID),
			Where: and(eq(colRef("", "Tenant"), intLit(tn.ID)), inList(colRef("", "Row"), rowIDs)),
		})
	}
	return out
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *VerticalLayout) TenantByID(id int64) (*Tenant, error) { return l.s.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *VerticalLayout) Tenants() []*Tenant { return l.s.Tenants() }
