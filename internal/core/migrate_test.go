package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
)

// TestMigrateAcrossLayouts copies the Figure 4 data between layout
// pairs and verifies logical equivalence — the paper's §7 on-the-fly
// representation change.
func TestMigrateAcrossLayouts(t *testing.T) {
	schema := paperSchema()
	pairs := []struct {
		name     string
		from, to func() (Layout, error)
	}{
		{"private->chunk",
			func() (Layout, error) { return NewPrivateLayout(schema) },
			func() (Layout, error) { return NewChunkLayout(schema, ChunkOptions{}) }},
		{"chunk->private",
			func() (Layout, error) { return NewChunkLayout(schema, ChunkOptions{}) },
			func() (Layout, error) { return NewPrivateLayout(schema) }},
		{"pivot->chunkfold",
			func() (Layout, error) { return NewPivotLayout(schema, true) },
			func() (Layout, error) {
				return NewChunkFoldingLayout(schema, FoldingOptions{ConventionalExtensions: []string{"HealthcareAccount"}})
			}},
		{"extension->universal",
			func() (Layout, error) { return NewExtensionLayout(schema) },
			func() (Layout, error) { return NewUniversalLayout(schema, 16) }},
	}
	for _, pair := range pairs {
		t.Run(pair.name, func(t *testing.T) {
			src, err := pair.from()
			if err != nil {
				t.Fatal(err)
			}
			srcDB := engine.Open(engine.Config{})
			if err := src.Create(srcDB, paperTenants()); err != nil {
				t.Fatal(err)
			}
			sm := NewMapper(srcDB, src)
			loadPaperData(t, sm)
			// Some NULL-bearing rows to stress pivot cells.
			if _, err := sm.Exec(17, "INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (9, NULL, 'X', NULL)"); err != nil {
				t.Fatal(err)
			}

			dst, err := pair.to()
			if err != nil {
				t.Fatal(err)
			}
			dstDB := engine.Open(engine.Config{})
			if err := Migrate(srcDB, src, dstDB, dst); err != nil {
				t.Fatalf("migrate: %v", err)
			}
			// Destination answers the paper's Q1 identically.
			dm := NewMapper(dstDB, dst)
			rows, err := dm.Query(17, "SELECT Beds FROM Account WHERE Hospital = 'State'")
			if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Int != 1042 {
				t.Fatalf("post-migration Q1: %v %+v", err, rows)
			}
			// And stays writable (row sequences must not collide).
			if _, err := dm.Exec(17, "INSERT INTO Account (Aid, Name) VALUES (77, 'after')"); err != nil {
				t.Fatalf("post-migration insert: %v", err)
			}
			rows, _ = dm.Query(17, "SELECT COUNT(*) FROM Account")
			if rows.Data[0][0].Int != 4 {
				t.Errorf("post-migration count: %v", rows.Data[0][0])
			}
		})
	}
}

func TestMigrateVerifyCatchesDivergence(t *testing.T) {
	schema := paperSchema()
	src, _ := NewPrivateLayout(schema)
	srcDB := engine.Open(engine.Config{})
	if err := src.Create(srcDB, paperTenants()); err != nil {
		t.Fatal(err)
	}
	sm := NewMapper(srcDB, src)
	loadPaperData(t, sm)

	dst, _ := NewChunkLayout(schema, ChunkOptions{})
	dstDB := engine.Open(engine.Config{})
	if err := Migrate(srcDB, src, dstDB, dst); err != nil {
		t.Fatal(err)
	}
	// Corrupt the destination, then Verify must fail.
	dm := NewMapper(dstDB, dst)
	if _, err := dm.Exec(17, "UPDATE Account SET Beds = 1 WHERE Aid = 2"); err != nil {
		t.Fatal(err)
	}
	m := NewMigrator(sm, dm)
	if err := m.Verify(); err == nil {
		t.Error("Verify should detect the diverged row")
	} else if !strings.Contains(err.Error(), "Account") {
		t.Errorf("error should name the table: %v", err)
	}
}

func TestMigrateErrors(t *testing.T) {
	schema := paperSchema()
	src, _ := NewPrivateLayout(schema)
	srcDB := engine.Open(engine.Config{})
	if err := src.Create(srcDB, paperTenants()); err != nil {
		t.Fatal(err)
	}
	dst, _ := NewChunkLayout(schema, ChunkOptions{})
	dstDB := engine.Open(engine.Config{})
	// Destination lacking the tenant.
	if err := dst.Create(dstDB, []*Tenant{{ID: 17, Extensions: []string{"HealthcareAccount"}}}); err != nil {
		t.Fatal(err)
	}
	m := NewMigrator(NewMapper(srcDB, src), NewMapper(dstDB, dst))
	if err := m.MigrateTenant(35); err == nil {
		t.Error("missing destination tenant should fail")
	}
	// Extension mismatch.
	if err := dst.AddTenant(dstDB, &Tenant{ID: 35, Extensions: []string{"AutomotiveAccount"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.MigrateTenant(35); err == nil {
		t.Error("extension mismatch should fail")
	}
}

func TestMigratePreservesTypes(t *testing.T) {
	schema := &Schema{
		Tables: []*Table{{
			Name: "Event", Key: "Id",
			Columns: []Column{
				{Name: "Id", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Day", Type: types.DateType},
				{Name: "Score", Type: types.FloatType},
				{Name: "Ok", Type: types.BoolType},
			},
		}},
	}
	src, _ := NewUniversalLayout(schema, 8) // everything stored as strings
	srcDB := engine.Open(engine.Config{})
	if err := src.Create(srcDB, []*Tenant{{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	sm := NewMapper(srcDB, src)
	if _, err := sm.Exec(1, "INSERT INTO Event VALUES (1, DATE '2008-06-09', 2.5, TRUE)"); err != nil {
		t.Fatal(err)
	}
	dst, _ := NewPivotLayout(schema, true)
	dstDB := engine.Open(engine.Config{})
	if err := Migrate(srcDB, src, dstDB, dst); err != nil {
		t.Fatal(err)
	}
	rows, err := NewMapper(dstDB, dst).Query(1, "SELECT Day, Score, Ok FROM Event WHERE Id = 1")
	if err != nil {
		t.Fatal(err)
	}
	r := rows.Data[0]
	if r[0].Kind != types.KindDate || r[1].Kind != types.KindFloat || r[2].Kind != types.KindBool {
		t.Errorf("types after migration: %v %v %v", r[0].Kind, r[1].Kind, r[2].Kind)
	}
}
