package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/sql"
)

// TestPivotUnindexedVariant covers the pivot flavor without separate
// indexed tables: all cells share the unindexed pivots.
func TestPivotUnindexedVariant(t *testing.T) {
	schema := paperSchema()
	l, err := NewPivotLayout(schema, false)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	loadPaperData(t, m)
	rows, err := m.Query(17, "SELECT Beds FROM Account WHERE Hospital = 'State'")
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Int != 1042 {
		t.Fatalf("unindexed pivot Q1: %v %+v", err, rows)
	}
	// Only three pivot tables exist (no _ix flavors).
	if got := db.Stats().Tables; got != 3 {
		t.Errorf("unindexed pivot tables: %d", got)
	}
}

// TestRewriteRoundTripProperty: for random predicates, every layout's
// rewritten SQL must (a) re-parse — the transformation layer emits SQL
// text in real deployments — and (b) return the same rows as the
// Private layout.
func TestRewriteRoundTripProperty(t *testing.T) {
	schema := paperSchema()
	layouts := allLayouts(t, schema)
	for _, m := range layouts {
		loadPaperData(t, m)
		// Extra rows for more interesting predicates.
		for i := 10; i < 30; i++ {
			q := fmt.Sprintf("INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (%d, 'n%d', 'h%d', %d)",
				i, i, i%4, i*37%900)
			if _, err := m.Exec(17, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref := layouts["private"]

	predicates := func(r *rand.Rand) string {
		var conjs []string
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				conjs = append(conjs, fmt.Sprintf("Aid > %d", r.Intn(30)))
			case 1:
				conjs = append(conjs, fmt.Sprintf("Beds < %d", r.Intn(1200)))
			case 2:
				conjs = append(conjs, fmt.Sprintf("Name LIKE 'n%d%%'", r.Intn(3)))
			case 3:
				conjs = append(conjs, fmt.Sprintf("Hospital = 'h%d'", r.Intn(4)))
			default:
				conjs = append(conjs, "Beds IS NOT NULL")
			}
		}
		return strings.Join(conjs, " AND ")
	}
	projections := []string{
		"Aid, Name",
		"Aid, Beds, Hospital",
		"COUNT(*), SUM(Beds)",
		"Hospital, COUNT(*)",
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		proj := projections[r.Intn(len(projections))]
		q := fmt.Sprintf("SELECT %s FROM Account WHERE %s", proj, predicates(r))
		if strings.HasPrefix(proj, "Hospital, COUNT") {
			q += " GROUP BY Hospital"
		}
		want := queryAll(t, ref, 17, q)
		for name, m := range layouts {
			if name == "private" {
				continue
			}
			// (a) The rewritten SQL re-parses.
			phys, err := m.RewriteSQL(17, q)
			if err != nil {
				t.Logf("%s: rewrite %q: %v", name, q, err)
				return false
			}
			for _, p := range phys {
				if _, err := sql.Parse(p); err != nil {
					t.Logf("%s: physical SQL does not re-parse: %q: %v", name, p, err)
					return false
				}
			}
			// (b) Results agree with the reference layout.
			got := queryAll(t, m, 17, q)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Logf("%s diverges on %q:\nwant %v\ngot  %v", name, q, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
