package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// The paper's §7 lists migrating data "from one representation to
// another on-the-fly" as the goal of its ongoing work: chunk-folding
// decisions depend on tenant schemas, data distribution, and query
// workload, all of which drift over time. Migrator implements that
// operation at the logical level: it replays every logical row of a
// tenant from a source layout into a destination layout, using only
// each layout's public transformation surface — so any pair of the
// eight layouts can migrate to each other, including across databases.
//
// Reads run under the engine's weak-isolation snapshot-free semantics
// (the testbed's §4.2 posture); quiesce writers for the tenants being
// moved, or migrate tenant by tenant and flip each tenant's routing to
// the destination as it completes — the intended on-the-fly procedure.
type Migrator struct {
	Src, Dst *Mapper
	// BatchRows is the INSERT batch size (default 64).
	BatchRows int
}

// NewMigrator pairs a source and destination mapper.
func NewMigrator(src, dst *Mapper) *Migrator { return &Migrator{Src: src, Dst: dst} }

// MigrateTenant copies one tenant's data for every logical table. The
// destination layout must already have the tenant registered (with the
// same extension set).
func (m *Migrator) MigrateTenant(tenantID int64) error {
	srcTn, err := layoutTenant(m.Src.Layout, tenantID)
	if err != nil {
		return err
	}
	dstTn, err := layoutTenant(m.Dst.Layout, tenantID)
	if err != nil {
		return fmt.Errorf("core: destination has no tenant %d (register it first): %w", tenantID, err)
	}
	if !sameExtensions(srcTn, dstTn) {
		return fmt.Errorf("core: tenant %d extension sets differ between layouts", tenantID)
	}
	schema := m.Src.Layout.Schema()
	for _, table := range schema.Tables {
		if err := m.migrateTable(srcTn, table); err != nil {
			return fmt.Errorf("core: migrate tenant %d table %s: %w", tenantID, table.Name, err)
		}
	}
	return nil
}

// MigrateAll copies every registered tenant.
func (m *Migrator) MigrateAll() error {
	tenants, err := layoutTenants(m.Src.Layout)
	if err != nil {
		return err
	}
	for _, tn := range tenants {
		if err := m.MigrateTenant(tn.ID); err != nil {
			return err
		}
	}
	return nil
}

func (m *Migrator) migrateTable(tn *Tenant, table *Table) error {
	cols, err := m.Src.Layout.Schema().LogicalColumns(tn, table.Name)
	if err != nil {
		return err
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	rows, err := m.Src.Query(tn.ID, fmt.Sprintf("SELECT %s FROM %s", strings.Join(names, ", "), table.Name))
	if err != nil {
		return err
	}
	batch := m.BatchRows
	if batch <= 0 {
		batch = 64
	}
	for start := 0; start < len(rows.Data); start += batch {
		end := start + batch
		if end > len(rows.Data) {
			end = len(rows.Data)
		}
		ins := &sql.InsertStmt{Table: table.Name, Columns: names}
		for _, r := range rows.Data[start:end] {
			vals := make([]sql.Expr, len(r))
			for i, v := range r {
				vals[i] = &sql.Literal{Val: v}
			}
			ins.Rows = append(ins.Rows, vals)
		}
		rw, err := m.Dst.Layout.Rewrite(tn.ID, ins)
		if err != nil {
			return err
		}
		for _, st := range rw.Direct {
			if _, err := m.Dst.DB.ExecStmt(st); err != nil {
				return err
			}
		}
	}
	return nil
}

// Verify compares every tenant's logical contents between the two
// layouts (order-insensitive); use after a migration before flipping
// tenant routing.
func (m *Migrator) Verify() error {
	tenants, err := layoutTenants(m.Src.Layout)
	if err != nil {
		return err
	}
	for _, tn := range tenants {
		for _, table := range m.Src.Layout.Schema().Tables {
			cols, err := m.Src.Layout.Schema().LogicalColumns(tn, table.Name)
			if err != nil {
				return err
			}
			names := make([]string, len(cols))
			for i, c := range cols {
				names[i] = c.Name
			}
			q := fmt.Sprintf("SELECT %s FROM %s", strings.Join(names, ", "), table.Name)
			src, err := m.Src.Query(tn.ID, q)
			if err != nil {
				return err
			}
			dst, err := m.Dst.Query(tn.ID, q)
			if err != nil {
				return err
			}
			if err := sameRowMultiset(src.Data, dst.Data); err != nil {
				return fmt.Errorf("core: tenant %d table %s diverges after migration: %w", tn.ID, table.Name, err)
			}
		}
	}
	return nil
}

func sameRowMultiset(a, b [][]types.Value) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d rows vs %d rows", len(a), len(b))
	}
	key := func(r []types.Value) string {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Kind.String() + ":" + v.String()
		}
		return strings.Join(parts, "|")
	}
	counts := map[string]int{}
	for _, r := range a {
		counts[key(r)]++
	}
	for _, r := range b {
		k := key(r)
		counts[k]--
		if counts[k] < 0 {
			return fmt.Errorf("row %s only in destination", k)
		}
	}
	for k, n := range counts {
		if n != 0 {
			return fmt.Errorf("row %s only in source", k)
		}
	}
	return nil
}

// tenantLister is implemented by every layout (they share the common
// state registry).
type tenantLister interface {
	TenantByID(id int64) (*Tenant, error)
	Tenants() []*Tenant
}

func layoutTenant(l Layout, id int64) (*Tenant, error) {
	tl, ok := l.(tenantLister)
	if !ok {
		return nil, fmt.Errorf("core: layout %s does not expose tenants", l.Name())
	}
	return tl.TenantByID(id)
}

func layoutTenants(l Layout) ([]*Tenant, error) {
	tl, ok := l.(tenantLister)
	if !ok {
		return nil, fmt.Errorf("core: layout %s does not expose tenants", l.Name())
	}
	return tl.Tenants(), nil
}

func sameExtensions(a, b *Tenant) bool {
	if len(a.Extensions) != len(b.Extensions) {
		return false
	}
	for _, e := range a.Extensions {
		if !b.HasExtension(e) {
			return false
		}
	}
	return true
}

// Migrate is the convenience one-shot: provision dst for the same
// tenants, copy everything, and verify.
func Migrate(srcDB *engine.DB, src Layout, dstDB *engine.DB, dst Layout) error {
	tenants, err := layoutTenants(src)
	if err != nil {
		return err
	}
	if err := dst.Create(dstDB, cloneTenants(tenants)); err != nil {
		return err
	}
	m := NewMigrator(NewMapper(srcDB, src), NewMapper(dstDB, dst))
	if err := m.MigrateAll(); err != nil {
		return err
	}
	return m.Verify()
}

func cloneTenants(in []*Tenant) []*Tenant {
	out := make([]*Tenant, len(in))
	for i, t := range in {
		out[i] = &Tenant{ID: t.ID, Extensions: append([]string(nil), t.Extensions...)}
	}
	return out
}
