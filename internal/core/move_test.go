package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sql"
)

// moveFixture: an extension-layout source serving the paper tenants
// through a LayoutMux, and a private-layout destination provisioned on
// the same database (private's physical names are per-tenant, so the
// two layouts coexist).
func moveFixture(t *testing.T) (*engine.DB, *LayoutMux, *PrivateLayout, *Mapper) {
	t.Helper()
	schema := paperSchema()
	src, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	mux := NewLayoutMux(src)
	if err := mux.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	dst, err := NewPrivateLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Create(db, nil); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, mux)
	m.Cache = NewRewriteCache(db, mux, 0)
	return db, mux, dst, m
}

// TestMoveTenantBasic: a quiet tenant moves between layouts; data
// lands at the destination, routing flips, and post-move statements
// execute against the destination while other tenants stay put.
func TestMoveTenantBasic(t *testing.T) {
	db, mux, dst, m := moveFixture(t)
	for i := 1; i <= 20; i++ {
		if _, err := m.Exec(35, fmt.Sprintf("INSERT INTO Account (Aid, Name) VALUES (%d, 'acct%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Exec(17, "INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (1, 'hc', 'St Mary', 12)"); err != nil {
		t.Fatal(err)
	}

	mv := &Mover{DB: db, Mux: mux, Cache: m.Cache, Verify: true}
	rep, err := mv.Move(35, dst)
	if err != nil {
		t.Fatalf("Move: %v (report %+v)", err, rep)
	}
	if mux.Route(35) != Layout(dst) {
		t.Fatalf("route not flipped: %s", mux.Route(35).Name())
	}
	if mux.Route(17).Name() != "extension" {
		t.Fatalf("tenant 17 rerouted: %s", mux.Route(17).Name())
	}
	if rep.Rounds < 1 || rep.RowsCopied < 20 {
		t.Fatalf("report: %+v", rep)
	}

	// Served from the destination now.
	rows, err := m.Query(35, "SELECT Name FROM Account WHERE Aid = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "acct7" {
		t.Fatalf("post-move read: %+v", rows.Data)
	}
	// A post-move write goes to the private tables, not the old shared
	// ones: the extension layout must NOT see it.
	if _, err := m.Exec(35, "INSERT INTO Account (Aid, Name) VALUES (21, 'after')"); err != nil {
		t.Fatal(err)
	}
	stale, err := sql.Parse("SELECT Aid FROM Account WHERE Aid = 21")
	if err != nil {
		t.Fatal(err)
	}
	rw, err := mux.def.Rewrite(35, stale)
	if err != nil {
		t.Fatal(err)
	}
	old, err := db.QueryStmt(rw.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Data) != 0 {
		t.Fatalf("write leaked to source layout: %+v", old.Data)
	}
	rows, err = m.Query(35, "SELECT Aid FROM Account WHERE Aid = 21")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("post-move write not visible at destination")
	}
	// Other tenants unaffected.
	rows, err = m.Query(17, "SELECT Hospital FROM Account WHERE Aid = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "St Mary" {
		t.Fatalf("tenant 17 disturbed: %+v", rows.Data)
	}
}

// TestMoveTenantUnderTraffic is the tentpole test: the tenant keeps
// reading and writing through the whole move. Every acknowledged insert
// must be present at the destination afterwards — the convergence
// rounds plus the gated final delta may not lose a write — and no
// statement may fail.
func TestMoveTenantUnderTraffic(t *testing.T) {
	db, mux, dst, m := moveFixture(t)
	const seed = 400
	for i := 0; i < seed; i++ {
		if _, err := m.Exec(35, fmt.Sprintf("INSERT INTO Account (Aid, Name) VALUES (%d, 'seed%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}

	const writers = 3
	var (
		stop     atomic.Bool
		acked    atomic.Int64
		wg       sync.WaitGroup
		failures = make(chan error, 64)
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				aid := 1000 + w*100000 + i
				_, err := m.Exec(35, fmt.Sprintf("INSERT INTO Account (Aid, Name) VALUES (%d, 'w%d')", aid, w))
				if err != nil {
					select {
					case failures <- err:
					default:
					}
					return
				}
				acked.Add(1)
				if i%3 == 0 {
					if _, err := m.Query(35, fmt.Sprintf("SELECT Name FROM Account WHERE Aid = %d", aid)); err != nil {
						select {
						case failures <- err:
						default:
						}
						return
					}
				}
			}
		}(w)
	}

	// Small batches slow the copy down so the writers genuinely overlap
	// the convergence rounds.
	time.Sleep(2 * time.Millisecond)
	mv := &Mover{DB: db, Mux: mux, Cache: m.Cache, MaxRounds: 6, BatchRows: 4}
	rep, err := mv.Move(35, dst)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("Move: %v (report %+v)", err, rep)
	}
	close(failures)
	for ferr := range failures {
		t.Fatalf("foreground statement failed during move: %v", ferr)
	}

	rows, err := m.Query(35, "SELECT Aid FROM Account")
	if err != nil {
		t.Fatal(err)
	}
	want := seed + int(acked.Load())
	if len(rows.Data) != want {
		t.Fatalf("lost writes across move: %d rows at destination, %d acknowledged", len(rows.Data), want)
	}
	if mux.Route(35) != Layout(dst) {
		t.Fatalf("route not flipped")
	}
	t.Logf("move report: %+v (acked writes during move: %d)", rep, acked.Load())
}

// TestMoveRejectsSameLayout: moving a tenant onto its current layout is
// an error, not a silent no-op.
func TestMoveRejectsSameLayout(t *testing.T) {
	db, mux, _, m := moveFixture(t)
	_ = m
	mv := &Mover{DB: db, Mux: mux}
	if _, err := mv.Move(35, mux.def); err == nil {
		t.Fatal("expected error moving tenant onto its own layout")
	}
}

// TestMoveCacheScoping: the move invalidates only the moved tenant's
// cached rewrites; a bystander tenant's entries stay warm across the
// whole move.
func TestMoveCacheScoping(t *testing.T) {
	db, mux, dst, m := moveFixture(t)
	q := "SELECT Name FROM Account WHERE Aid = 1"
	if _, err := m.Query(17, q); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(17, q); err != nil {
		t.Fatal(err)
	}
	before := m.Cache.Stats()

	mv := &Mover{DB: db, Mux: mux, Cache: m.Cache}
	if _, err := mv.Move(35, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(17, q); err != nil {
		t.Fatal(err)
	}
	after := m.Cache.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("bystander tenant cold-started by move: before %+v after %+v", before, after)
	}
}
