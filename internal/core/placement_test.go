package core

import "testing"

func TestPlacementPrimaryFallback(t *testing.T) {
	p := &PlacementMap{Primary: "p:1"}
	if got := p.ReadAddr(42); got != "p:1" {
		t.Fatalf("no replicas: reads at %q, want primary", got)
	}
	if got := p.WriteAddr(); got != "p:1" {
		t.Fatalf("writes at %q, want primary", got)
	}
	p.Replicas = []string{"r1:1", "r2:1"}
	down := map[string]bool{"r1:1": true, "r2:1": true}
	if got := p.ReadAddrExcluding(42, down); got != "p:1" {
		t.Fatalf("all replicas down: reads at %q, want primary", got)
	}
}

func TestPlacementDeterministicAndCovering(t *testing.T) {
	p := &PlacementMap{Primary: "p:1", Replicas: []string{"r1:1", "r2:1", "r3:1"}}
	counts := map[string]int{}
	for tenant := int64(0); tenant < 300; tenant++ {
		a := p.ReadAddr(tenant)
		if b := p.ReadAddr(tenant); b != a {
			t.Fatalf("tenant %d: %q then %q", tenant, a, b)
		}
		counts[a]++
	}
	for _, r := range p.Replicas {
		if counts[r] == 0 {
			t.Fatalf("replica %s received no tenants: %v", r, counts)
		}
	}
	if counts[p.Primary] != 0 {
		t.Fatalf("primary served reads with replicas available: %v", counts)
	}
}

// TestPlacementMinimalDisruption is the rendezvous property: adding a
// replica only moves tenants TO the new replica; removing one only
// moves its own tenants.
func TestPlacementMinimalDisruption(t *testing.T) {
	small := &PlacementMap{Primary: "p:1", Replicas: []string{"r1:1", "r2:1"}}
	big := &PlacementMap{Primary: "p:1", Replicas: []string{"r1:1", "r2:1", "r3:1"}}
	moved := 0
	for tenant := int64(0); tenant < 1000; tenant++ {
		before, after := small.ReadAddr(tenant), big.ReadAddr(tenant)
		if before != after {
			moved++
			if after != "r3:1" {
				t.Fatalf("tenant %d moved %q -> %q, not to the new replica", tenant, before, after)
			}
		}
	}
	if moved == 0 || moved > 550 {
		t.Fatalf("%d of 1000 tenants moved on grow, want roughly a third", moved)
	}
	// Down-routing: tenants not on the failed replica stay put.
	down := map[string]bool{"r2:1": true}
	for tenant := int64(0); tenant < 1000; tenant++ {
		before := big.ReadAddr(tenant)
		after := big.ReadAddrExcluding(tenant, down)
		if before != "r2:1" && after != before {
			t.Fatalf("tenant %d on %q displaced to %q by another replica's failure", tenant, before, after)
		}
		if before == "r2:1" && (after == "r2:1" || after == big.Primary) {
			t.Fatalf("tenant %d still routed to %q with r2 down", tenant, after)
		}
	}
}
