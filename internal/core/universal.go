package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// UniversalLayout (Fig 4c) maps every logical table of every tenant
// into one wide generic table with Tenant, Table, and Row meta-data
// columns and N flexible VARCHAR data columns; the n-th logical column
// of a tenant's table lands in the n-th data column. No reconstruction
// joins are needed, but rows are wide, NULL-heavy, and per-column
// indexing is impossible — the trade-offs §3 discusses.
type UniversalLayout struct {
	s     *state
	width int
}

// DefaultUniversalWidth is the number of generic data columns when the
// option is not set.
const DefaultUniversalWidth = 64

// NewUniversalLayout builds the layout; width is the number of generic
// data columns (DefaultUniversalWidth if <= 0).
func NewUniversalLayout(schema *Schema, width int) (*UniversalLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if width <= 0 {
		width = DefaultUniversalWidth
	}
	return &UniversalLayout{s: newState(schema), width: width}, nil
}

// Name implements Layout.
func (l *UniversalLayout) Name() string { return "universal" }

// Schema implements Layout.
func (l *UniversalLayout) Schema() *Schema { return l.s.schema }

func (l *UniversalLayout) state() *state { return l.s }

// dataCol names the i-th (0-based) generic data column.
func dataCol(i int) string { return fmt.Sprintf("Col%d", i+1) }

// Create implements Layout.
func (l *UniversalLayout) Create(db *engine.DB, tenants []*Tenant) error {
	cols := []Column{
		{Name: "Tenant", Type: types.IntType, NotNull: true},
		{Name: "Table", Type: types.IntType, NotNull: true},
		{Name: "Row", Type: types.IntType, NotNull: true},
	}
	for i := 0; i < l.width; i++ {
		cols = append(cols, Column{Name: dataCol(i), Type: types.ColumnType{Kind: types.KindString}})
	}
	if _, err := db.Exec(buildCreateTable("Universal", cols)); err != nil {
		return err
	}
	if _, err := db.Exec("CREATE UNIQUE INDEX universal_ttr ON Universal (Tenant, Table, Row)"); err != nil {
		return err
	}
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

// AddTenant implements Layout: meta-data only, after checking every
// logical table fits the generic width.
func (l *UniversalLayout) AddTenant(_ *engine.DB, t *Tenant) error {
	for _, bt := range l.s.schema.Tables {
		cols, err := l.s.schema.LogicalColumns(t, bt.Name)
		if err != nil {
			return err
		}
		if len(cols) > l.width {
			return fmt.Errorf("core: tenant %d table %s needs %d columns, universal width is %d",
				t.ID, bt.Name, len(cols), l.width)
		}
	}
	return l.s.addTenant(t)
}

// ExtendTenant enables an extension on-line: pure meta-data (new
// columns occupy the next data-column positions; existing rows read
// NULL there).
func (l *UniversalLayout) ExtendTenant(_ *engine.DB, tenantID int64, extName string) error {
	tn, err := l.s.tenant(tenantID)
	if err != nil {
		return err
	}
	ext := l.s.schema.Extension(extName)
	if ext == nil {
		return fmt.Errorf("core: no extension %s", extName)
	}
	if tn.HasExtension(extName) {
		return fmt.Errorf("core: tenant %d already has extension %s", tenantID, extName)
	}
	probe := &Tenant{ID: tn.ID, Extensions: append(append([]string{}, tn.Extensions...), extName)}
	cols, err := l.s.schema.LogicalColumns(probe, ext.Base)
	if err != nil {
		return err
	}
	if len(cols) > l.width {
		return fmt.Errorf("core: extension %s would exceed universal width %d", extName, l.width)
	}
	l.s.mu.Lock()
	tn.Extensions = append(tn.Extensions, extName)
	l.s.mu.Unlock()
	return nil
}

// Rewrite implements Layout.
func (l *UniversalLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	return genericRewrite(l, tenantID, st)
}

// colPosition returns the 0-based data-column position of a logical
// column in the tenant's view of the table.
func (l *UniversalLayout) colPosition(tn *Tenant, table *Table, col string) (int, Column, error) {
	cols, err := l.s.schema.LogicalColumns(tn, table.Name)
	if err != nil {
		return 0, Column{}, err
	}
	for i, c := range cols {
		if strings.EqualFold(c.Name, col) {
			return i, c, nil
		}
	}
	return 0, Column{}, fmt.Errorf("core: no column %s in %s for tenant %d", col, table.Name, tn.ID)
}

// reconstruct implements reconstructor: a single selection over
// Universal with CASTs restoring the logical types.
func (l *UniversalLayout) reconstruct(tn *Tenant, table *Table, used []Column, withRow bool) (*sql.SelectStmt, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	sel := &sql.SelectStmt{
		From: []sql.TableRef{&sql.NamedTable{Name: "Universal", Alias: "u"}},
		Where: and(
			eq(colRef("u", "Tenant"), intLit(tn.ID)),
			eq(colRef("u", "Table"), intLit(int64(tid))),
		),
	}
	for _, c := range used {
		pos, _, err := l.colPosition(tn, table, c.Name)
		if err != nil {
			return nil, err
		}
		var e sql.Expr = colRef("u", dataCol(pos))
		if c.Type.Kind != types.KindString {
			e = &sql.CastExpr{X: e, Type: c.Type}
		}
		sel.Items = append(sel.Items, sql.SelectItem{Expr: e, Alias: c.Name})
	}
	if withRow {
		sel.Items = append(sel.Items, sql.SelectItem{Expr: colRef("u", "Row"), Alias: rowCol})
	}
	return sel, nil
}

// insertRows implements reconstructor.
func (l *UniversalLayout) insertRows(tn *Tenant, table *Table, cols []Column, rows [][]sql.Expr) ([]sql.Statement, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	firstRow := l.s.nextRows(tn.ID, table.Name, int64(len(rows)))
	stmt := &sql.InsertStmt{Table: "Universal", Columns: []string{"Tenant", "Table", "Row"}}
	positions := make([]int, len(cols))
	for i, c := range cols {
		pos, _, err := l.colPosition(tn, table, c.Name)
		if err != nil {
			return nil, err
		}
		positions[i] = pos
		stmt.Columns = append(stmt.Columns, dataCol(pos))
	}
	for ri, row := range rows {
		vals := make([]sql.Expr, 3+len(cols))
		vals[0] = intLit(tn.ID)
		vals[1] = intLit(int64(tid))
		vals[2] = intLit(firstRow + int64(ri))
		for i, e := range row {
			// The engine coerces into the VARCHAR data column; dates
			// and booleans serialize via their string forms.
			vals[3+i] = e
		}
		stmt.Rows = append(stmt.Rows, vals)
	}
	return []sql.Statement{stmt}, nil
}

// phaseBUpdate implements reconstructor.
func (l *UniversalLayout) phaseBUpdate(tn *Tenant, table *Table, setCols []Column, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	meta := func() sql.Expr {
		return and(
			eq(colRef("", "Tenant"), intLit(tn.ID)),
			eq(colRef("", "Table"), intLit(int64(tid))),
		)
	}
	assign := func(vals []types.Value) []sql.Assignment {
		out := make([]sql.Assignment, len(setCols))
		for i, c := range setCols {
			pos, _, _ := l.colPosition(tn, table, c.Name)
			out[i] = sql.Assignment{Column: dataCol(pos), Value: lit(vals[i+1])}
		}
		return out
	}
	if constantSets(rows, len(setCols)) {
		return []sql.Statement{&sql.UpdateStmt{
			Table: "Universal",
			Set:   assign(rows[0]),
			Where: and(meta(), inList(colRef("", "Row"), column(rows, 0))),
		}}
	}
	var out []sql.Statement
	for _, r := range rows {
		out = append(out, &sql.UpdateStmt{
			Table: "Universal",
			Set:   assign(r),
			Where: and(meta(), eq(colRef("", "Row"), lit(r[0]))),
		})
	}
	return out
}

// phaseBDelete implements reconstructor.
func (l *UniversalLayout) phaseBDelete(tn *Tenant, table *Table, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	return []sql.Statement{&sql.DeleteStmt{
		Table: "Universal",
		Where: and(
			eq(colRef("", "Tenant"), intLit(tn.ID)),
			eq(colRef("", "Table"), intLit(int64(tid))),
			inList(colRef("", "Row"), column(rows, 0)),
		),
	}}
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *UniversalLayout) TenantByID(id int64) (*Tenant, error) { return l.s.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *UniversalLayout) Tenants() []*Tenant { return l.s.Tenants() }
