package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// ChunkOptions configures a ChunkLayout.
type ChunkOptions struct {
	// Defs are the chunk-table shapes available to the assignment
	// algorithm. When empty, UniformChunkDefs(schema, 4) is used.
	Defs []*ChunkTableDef
	// Flattened makes the transformation layer emit pre-flattened,
	// single-block SQL instead of the generic nested form — what the
	// paper's §6.1 prescribes for databases whose optimizer cannot
	// unnest derived tables (Test 1's MySQL case).
	Flattened bool
	// MetadataFirst orders the flattened WHERE clause with the
	// meta-data conjuncts (Tenant/Table/Chunk/Row) before the user's
	// predicates — the ordering that cost MySQL a factor of 5 in
	// Test 1. The default puts user predicates first.
	MetadataFirst bool
	// Trashcan turns deletes into updates that mark every chunk of the
	// row invisible (§6.3), enabling restore.
	Trashcan bool
	// Affinity, when set, makes chunk assignment workload-aware:
	// columns the observed query log co-accesses are packed into the
	// same chunks (the paper's §7 ongoing-work goal). Collect the
	// statistics with NewAffinity + ObserveSQL before registering
	// tenants.
	Affinity *Affinity
}

// ChunkLayout (Fig 4e) folds vertical partitions of all tenants'
// logical tables into a fixed set of generic, typed chunk tables keyed
// by (Tenant, Table, Chunk, Row).
type ChunkLayout struct {
	s   *state
	opt ChunkOptions

	mu      sync.RWMutex
	assigns map[string]*assignment // "tenant/table" -> assignment
}

// NewChunkLayout builds the layout.
func NewChunkLayout(schema *Schema, opt ChunkOptions) (*ChunkLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(opt.Defs) == 0 {
		opt.Defs = UniformChunkDefs(schema, 4)
	}
	return &ChunkLayout{s: newState(schema), opt: opt, assigns: map[string]*assignment{}}, nil
}

// Name implements Layout.
func (l *ChunkLayout) Name() string { return "chunk" }

// Schema implements Layout.
func (l *ChunkLayout) Schema() *Schema { return l.s.schema }

func (l *ChunkLayout) state() *state { return l.s }

// Defs exposes the configured chunk-table shapes.
func (l *ChunkLayout) Defs() []*ChunkTableDef { return l.opt.Defs }

// delCol is the invisibility marker column used in Trashcan mode.
const delCol = "Del"

// createChunkTables issues the DDL for a set of chunk-table defs with
// the given meta columns and index prefix; shared by the chunk,
// vertical-partitioning, and chunk-folding layouts.
func createChunkTables(db *engine.DB, defs []*ChunkTableDef, metaCols []Column, trashcan bool) error {
	metaNames := make([]string, len(metaCols))
	for i, c := range metaCols {
		metaNames[i] = c.Name
	}
	prefix := strings.Join(metaNames, ", ")
	for _, d := range defs {
		cols := append([]Column{}, metaCols...)
		if trashcan {
			cols = append(cols, Column{Name: delCol, Type: types.IntType})
		}
		phys := d.PhysCols()
		for i, t := range d.Cols {
			cols = append(cols, Column{Name: phys[i], Type: t})
		}
		if _, err := db.Exec(buildCreateTable(d.Name, cols)); err != nil {
			return err
		}
		ddl := fmt.Sprintf("CREATE UNIQUE INDEX %s_tcr ON %s (%s)", d.Name, d.Name, prefix)
		if _, err := db.Exec(ddl); err != nil {
			return err
		}
		if d.ValueIndex {
			for _, pc := range phys {
				ddl := fmt.Sprintf("CREATE INDEX %s_v%s ON %s (%s, %s)", d.Name, pc, d.Name, prefix[:len(prefix)-len(", Row")], pc)
				if _, err := db.Exec(ddl); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// chunkMetaCols is the (Tenant, Table, Chunk, Row) meta-data column set
// of folded chunk tables.
func chunkMetaCols() []Column {
	return []Column{
		{Name: "Tenant", Type: types.IntType, NotNull: true},
		{Name: "Table", Type: types.IntType, NotNull: true},
		{Name: "Chunk", Type: types.IntType, NotNull: true},
		{Name: "Row", Type: types.IntType, NotNull: true},
	}
}

// Create implements Layout.
func (l *ChunkLayout) Create(db *engine.DB, tenants []*Tenant) error {
	if err := createChunkTables(db, l.opt.Defs, chunkMetaCols(), l.opt.Trashcan); err != nil {
		return err
	}
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

func assignKey(tenantID int64, table string) string {
	return fmt.Sprintf("%d/%s", tenantID, strings.ToLower(table))
}

// AddTenant implements Layout: computes the tenant's chunk assignments;
// no DDL — the whole point of generic structures.
func (l *ChunkLayout) AddTenant(_ *engine.DB, t *Tenant) error {
	assigns := map[string]*assignment{}
	for _, bt := range l.s.schema.Tables {
		cols, err := l.s.schema.LogicalColumns(t, bt.Name)
		if err != nil {
			return err
		}
		if l.opt.Affinity != nil {
			cols = l.opt.Affinity.OrderColumns(bt.Name, cols)
		}
		a, err := newAssignment(cols, l.opt.Defs)
		if err != nil {
			return err
		}
		assigns[assignKey(t.ID, bt.Name)] = a
	}
	if err := l.s.addTenant(t); err != nil {
		return err
	}
	l.mu.Lock()
	for k, a := range assigns {
		l.assigns[k] = a
	}
	l.mu.Unlock()
	return nil
}

// ExtendTenant enables an extension on-line: meta-data bookkeeping plus
// back-filling spine rows in the new chunks for the tenant's existing
// logical rows, so reconstruction joins keep matching. No DDL runs.
func (l *ChunkLayout) ExtendTenant(db *engine.DB, tenantID int64, extName string) error {
	ext := l.s.schema.Extension(extName)
	if ext == nil {
		return fmt.Errorf("core: no extension %s", extName)
	}
	if err := extendMetadataOnly(l.s, tenantID, extName); err != nil {
		return err
	}
	l.mu.Lock()
	a := l.assigns[assignKey(tenantID, ext.Base)]
	l.mu.Unlock()
	if a == nil {
		return fmt.Errorf("core: no assignment for tenant %d table %s", tenantID, ext.Base)
	}
	before := len(a.groups)
	l.mu.Lock()
	err := a.extend(ext.Columns, l.opt.Defs)
	l.mu.Unlock()
	if err != nil {
		return err
	}
	tid, err := l.s.tableID(ext.Base)
	if err != nil {
		return err
	}
	anchor := a.groups[0]
	rows, err := db.Query(fmt.Sprintf(
		"SELECT Row FROM %s WHERE Tenant = %d AND Table = %d AND Chunk = %d",
		anchor.Def.Name, tenantID, tid, anchor.ID))
	if err != nil {
		return err
	}
	for _, g := range a.groups[before:] {
		for _, r := range rows.Data {
			var q string
			if l.opt.Trashcan {
				q = fmt.Sprintf("INSERT INTO %s (Tenant, Table, Chunk, Row, %s) VALUES (%d, %d, %d, %d, 0)",
					g.Def.Name, delCol, tenantID, tid, g.ID, r[0].Int)
			} else {
				q = fmt.Sprintf("INSERT INTO %s (Tenant, Table, Chunk, Row) VALUES (%d, %d, %d, %d)",
					g.Def.Name, tenantID, tid, g.ID, r[0].Int)
			}
			if _, err := db.Exec(q); err != nil {
				return err
			}
		}
	}
	return nil
}

// assignmentFor returns the tenant-table chunk assignment.
func (l *ChunkLayout) assignmentFor(tenantID int64, table string) (*assignment, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	a := l.assigns[assignKey(tenantID, table)]
	if a == nil {
		return nil, fmt.Errorf("core: no chunk assignment for tenant %d table %s", tenantID, table)
	}
	return a, nil
}

// Assignment describes a tenant-table's chunk mapping for inspection.
func (l *ChunkLayout) Assignment(tenantID int64, table string) (string, error) {
	a, err := l.assignmentFor(tenantID, table)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, g := range a.groups {
		fmt.Fprintf(&sb, "chunk %d -> %s:", g.ID, g.Def.Name)
		for i, c := range g.Cols {
			fmt.Fprintf(&sb, " %s=%s", c.Name, g.Phys[i])
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Rewrite implements Layout.
func (l *ChunkLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	if l.opt.Flattened {
		if sel, ok := st.(*sql.SelectStmt); ok {
			tn, err := l.s.tenant(tenantID)
			if err != nil {
				return nil, err
			}
			out, err := l.flattenedSelect(tn, sel)
			if err == nil {
				return &Rewritten{Query: out}, nil
			}
			if err != errNotFlattenable {
				return nil, err
			}
			// Fall through to the generic form.
		}
	}
	return genericRewrite(l, tenantID, st)
}

// usedGroups returns the chunk groups a reconstruction needs: those
// holding used columns, with the key column's group first (the anchor).
func usedGroups(a *assignment, table *Table, used []Column) ([]*chunkGroup, error) {
	anchor := a.groupOf(table.Key)
	if anchor == nil {
		return nil, fmt.Errorf("core: key %s of %s is unassigned", table.Key, table.Name)
	}
	seen := map[int]bool{anchor.ID: true}
	groups := []*chunkGroup{anchor}
	for _, c := range used {
		g := a.groupOf(c.Name)
		if g == nil {
			return nil, fmt.Errorf("core: column %s of %s is unassigned", c.Name, table.Name)
		}
		if !seen[g.ID] {
			seen[g.ID] = true
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// chunkColExpr builds the physical expression reading a logical column
// from its chunk alias, casting booleans back.
func chunkColExpr(alias, phys string, c Column) sql.Expr {
	var e sql.Expr = colRef(alias, phys)
	if c.Type.Kind == types.KindBool {
		e = &sql.CastExpr{X: e, Type: types.BoolType}
	}
	return e
}

// metaConjs builds the Tenant/Table/Chunk conjuncts for a group alias.
func (l *ChunkLayout) metaConjs(alias string, tenantID int64, tid int, g *chunkGroup) []sql.Expr {
	return []sql.Expr{
		eq(colRef(alias, "Tenant"), intLit(tenantID)),
		eq(colRef(alias, "Table"), intLit(int64(tid))),
		eq(colRef(alias, "Chunk"), intLit(int64(g.ID))),
	}
}

// reconstruct implements reconstructor (the paper's Q1^Chunk shape).
func (l *ChunkLayout) reconstruct(tn *Tenant, table *Table, used []Column, withRow bool) (*sql.SelectStmt, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil, err
	}
	groups, err := usedGroups(a, table, used)
	if err != nil {
		return nil, err
	}
	aliasOf := map[int]string{}
	for i, g := range groups {
		aliasOf[g.ID] = fmt.Sprintf("c%d", i)
	}
	sel := &sql.SelectStmt{}
	for _, c := range used {
		loc, _ := a.locate(c.Name)
		sel.Items = append(sel.Items, sql.SelectItem{
			Expr:  chunkColExpr(aliasOf[loc.group.ID], loc.phys, c),
			Alias: c.Name,
		})
	}
	anchorAlias := aliasOf[groups[0].ID]
	if withRow {
		sel.Items = append(sel.Items, sql.SelectItem{Expr: colRef(anchorAlias, "Row"), Alias: rowCol})
	}
	// The paper's §6.1 reconstruction queries "are all flat and consist
	// of conjunctive predicates only": a comma join with the aligning
	// Row equi-joins in WHERE, which a sophisticated optimizer flattens
	// into the outer block and drives via the meta-data indexes.
	var conjs []sql.Expr
	for i, g := range groups {
		alias := aliasOf[g.ID]
		sel.From = append(sel.From, &sql.NamedTable{Name: g.Def.Name, Alias: alias})
		conjs = append(conjs, l.metaConjs(alias, tn.ID, tid, g)...)
		if i == 0 {
			if l.opt.Trashcan {
				conjs = append(conjs, eq(colRef(alias, delCol), intLit(0)))
			}
			continue
		}
		conjs = append(conjs, eq(colRef(alias, "Row"), colRef(anchorAlias, "Row")))
	}
	sel.Where = and(conjs...)
	return sel, nil
}

// insertRows implements reconstructor: every chunk of the logical row
// is written (a spine), so reconstruction joins are always inner.
func (l *ChunkLayout) insertRows(tn *Tenant, table *Table, cols []Column, rows [][]sql.Expr) ([]sql.Statement, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil, err
	}
	firstRow := l.s.nextRows(tn.ID, table.Name, int64(len(rows)))

	type target struct {
		stmt   *sql.InsertStmt
		colPos map[string]int
	}
	targets := make([]*target, len(a.groups))
	for gi, g := range a.groups {
		cols := []string{"Tenant", "Table", "Chunk", "Row"}
		if l.opt.Trashcan {
			cols = append(cols, delCol)
		}
		targets[gi] = &target{
			stmt:   &sql.InsertStmt{Table: g.Def.Name, Columns: cols},
			colPos: map[string]int{},
		}
	}
	groupIdx := map[int]int{}
	for gi, g := range a.groups {
		groupIdx[g.ID] = gi
	}
	colTarget := make([]*target, len(cols))
	for i, c := range cols {
		loc, ok := a.locate(c.Name)
		if !ok {
			return nil, fmt.Errorf("core: column %s of %s is unassigned", c.Name, table.Name)
		}
		t := targets[groupIdx[loc.group.ID]]
		t.colPos[strings.ToLower(c.Name)] = len(t.stmt.Columns)
		t.stmt.Columns = append(t.stmt.Columns, loc.phys)
		colTarget[i] = t
	}
	for ri, row := range rows {
		rowID := firstRow + int64(ri)
		for _, t := range targets {
			vals := make([]sql.Expr, len(t.stmt.Columns))
			vals[0], vals[1] = intLit(tn.ID), intLit(int64(tid))
			vals[3] = intLit(rowID)
			base := 4
			if l.opt.Trashcan {
				vals[4] = intLit(0)
				base = 5
			}
			for i := base; i < len(vals); i++ {
				vals[i] = lit(types.Null())
			}
			t.stmt.Rows = append(t.stmt.Rows, vals)
		}
		for gi, g := range a.groups {
			_ = g
			targets[gi].stmt.Rows[len(targets[gi].stmt.Rows)-1][2] = intLit(int64(a.groups[gi].ID))
		}
		for i, e := range row {
			t := colTarget[i]
			pos := t.colPos[strings.ToLower(cols[i].Name)]
			if cols[i].Type.Kind == types.KindBool {
				e = &sql.CastExpr{X: e, Type: types.IntType}
			}
			t.stmt.Rows[len(t.stmt.Rows)-1][pos] = e
		}
	}
	out := make([]sql.Statement, len(targets))
	for i, t := range targets {
		out[i] = t.stmt
	}
	return out, nil
}

// phaseBUpdate implements reconstructor.
func (l *ChunkLayout) phaseBUpdate(tn *Tenant, table *Table, setCols []Column, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil
	}
	// Group SET columns per chunk.
	type gset struct {
		g    *chunkGroup
		idxs []int
	}
	byGroup := map[int]*gset{}
	var order []int
	for i, c := range setCols {
		loc, ok := a.locate(c.Name)
		if !ok {
			continue
		}
		gs := byGroup[loc.group.ID]
		if gs == nil {
			gs = &gset{g: loc.group}
			byGroup[loc.group.ID] = gs
			order = append(order, loc.group.ID)
		}
		gs.idxs = append(gs.idxs, i)
	}
	mkSet := func(gs *gset, vals []types.Value) []sql.Assignment {
		var out []sql.Assignment
		for _, i := range gs.idxs {
			loc, _ := a.locate(setCols[i].Name)
			v := vals[i+1]
			if setCols[i].Type.Kind == types.KindBool && !v.IsNull() {
				v = types.NewInt(v.Int)
			}
			out = append(out, sql.Assignment{Column: loc.phys, Value: lit(v)})
		}
		return out
	}
	var out []sql.Statement
	if constantSets(rows, len(setCols)) {
		rowIDs := column(rows, 0)
		for _, gid := range order {
			gs := byGroup[gid]
			out = append(out, &sql.UpdateStmt{
				Table: gs.g.Def.Name,
				Set:   mkSet(gs, rows[0]),
				Where: and(append(l.metaConjs("", tn.ID, tid, gs.g), inList(colRef("", "Row"), rowIDs))...),
			})
		}
		return out
	}
	for _, r := range rows {
		for _, gid := range order {
			gs := byGroup[gid]
			out = append(out, &sql.UpdateStmt{
				Table: gs.g.Def.Name,
				Set:   mkSet(gs, r),
				Where: and(append(l.metaConjs("", tn.ID, tid, gs.g), eq(colRef("", "Row"), lit(r[0])))...),
			})
		}
	}
	return out
}

// phaseBDelete implements reconstructor: hard deletes remove every
// chunk row; Trashcan mode marks every chunk row invisible instead
// (§6.3: "mark all chunk tables as deleted").
func (l *ChunkLayout) phaseBDelete(tn *Tenant, table *Table, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	a, err := l.assignmentFor(tn.ID, table.Name)
	if err != nil {
		return nil
	}
	rowIDs := column(rows, 0)
	var out []sql.Statement
	for _, g := range a.groups {
		where := and(append(l.metaConjs("", tn.ID, tid, g), inList(colRef("", "Row"), rowIDs))...)
		if l.opt.Trashcan {
			out = append(out, &sql.UpdateStmt{
				Table: g.Def.Name,
				Set:   []sql.Assignment{{Column: delCol, Value: intLit(1)}},
				Where: where,
			})
		} else {
			out = append(out, &sql.DeleteStmt{Table: g.Def.Name, Where: where})
		}
	}
	return out
}

// RestoreRows un-deletes trashcanned logical rows (the Trashcan
// mechanism's raison d'être).
func (l *ChunkLayout) RestoreRows(db *engine.DB, tenantID int64, table string, rowIDs []types.Value) error {
	if !l.opt.Trashcan {
		return fmt.Errorf("core: trashcan is not enabled")
	}
	tn, err := l.s.tenant(tenantID)
	if err != nil {
		return err
	}
	lt := l.s.schema.Table(table)
	if lt == nil {
		return fmt.Errorf("core: no logical table %s", table)
	}
	tid, _ := l.s.tableID(lt.Name)
	a, err := l.assignmentFor(tn.ID, lt.Name)
	if err != nil {
		return err
	}
	for _, g := range a.groups {
		up := &sql.UpdateStmt{
			Table: g.Def.Name,
			Set:   []sql.Assignment{{Column: delCol, Value: intLit(0)}},
			Where: and(append(l.metaConjs("", tn.ID, tid, g), inList(colRef("", "Row"), rowIDs))...),
		}
		if _, err := db.ExecStmt(up); err != nil {
			return err
		}
	}
	return nil
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *ChunkLayout) TenantByID(id int64) (*Tenant, error) { return l.s.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *ChunkLayout) Tenants() []*Tenant { return l.s.Tenants() }
