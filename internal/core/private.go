package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sql"
)

// PrivateLayout gives every tenant private physical tables (Fig 4a).
// The transformation layer only renames tables; extensibility is full
// (extension columns live inline); consolidation is poor because the
// table count grows as tenants × tables, which is exactly the meta-data
// pressure the paper's §5 experiment measures.
type PrivateLayout struct {
	st *state
}

// NewPrivateLayout builds the layout for a logical schema.
func NewPrivateLayout(schema *Schema) (*PrivateLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &PrivateLayout{st: newState(schema)}, nil
}

// Name implements Layout.
func (l *PrivateLayout) Name() string { return "private" }

// Schema implements Layout.
func (l *PrivateLayout) Schema() *Schema { return l.st.schema }

// physName is the tenant-private physical table name (Account17 style).
func (l *PrivateLayout) physName(tenantID int64, table string) string {
	return fmt.Sprintf("%s_t%d", table, tenantID)
}

// Create implements Layout.
func (l *PrivateLayout) Create(db *engine.DB, tenants []*Tenant) error {
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

// AddTenant implements Layout: issues the tenant's CREATE TABLE and
// CREATE INDEX statements on-line.
func (l *PrivateLayout) AddTenant(db *engine.DB, t *Tenant) error {
	// Validate extension references before any DDL.
	for _, bt := range l.st.schema.Tables {
		if _, err := l.st.schema.LogicalColumns(t, bt.Name); err != nil {
			return err
		}
	}
	if err := l.st.addTenant(t); err != nil {
		return err
	}
	for _, bt := range l.st.schema.Tables {
		cols, _ := l.st.schema.LogicalColumns(t, bt.Name)
		phys := l.physName(t.ID, bt.Name)
		if _, err := db.Exec(buildCreateTable(phys, cols)); err != nil {
			return err
		}
		if _, err := db.Exec(fmt.Sprintf("CREATE UNIQUE INDEX %s_pk ON %s (%s)", phys, phys, bt.Key)); err != nil {
			return err
		}
		for _, c := range cols {
			if !c.Indexed || c.Name == bt.Key {
				continue
			}
			if _, err := db.Exec(fmt.Sprintf("CREATE INDEX %s_%s ON %s (%s)", phys, c.Name, phys, c.Name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveTenant drops the tenant's private tables (the administrative
// "delete tenant" action of the testbed).
func (l *PrivateLayout) RemoveTenant(db *engine.DB, tenantID int64) error {
	if _, err := l.st.tenant(tenantID); err != nil {
		return err
	}
	for _, bt := range l.st.schema.Tables {
		if _, err := db.Exec("DROP TABLE " + l.physName(tenantID, bt.Name)); err != nil {
			return err
		}
	}
	l.st.mu.Lock()
	delete(l.st.tenants, tenantID)
	l.st.mu.Unlock()
	return nil
}

// ExtendTenant enables an extension for a tenant on-line by issuing
// ALTER TABLE ADD COLUMN statements against the private tables.
func (l *PrivateLayout) ExtendTenant(db *engine.DB, tenantID int64, extName string) error {
	tn, err := l.st.tenant(tenantID)
	if err != nil {
		return err
	}
	ext := l.st.schema.Extension(extName)
	if ext == nil {
		return fmt.Errorf("core: no extension %s", extName)
	}
	if tn.HasExtension(extName) {
		return fmt.Errorf("core: tenant %d already has extension %s", tenantID, extName)
	}
	phys := l.physName(tenantID, ext.Base)
	for _, c := range ext.Columns {
		ddl := fmt.Sprintf("ALTER TABLE %s ADD COLUMN %s %s", phys, c.Name, typeSQL(c.Type))
		if _, err := db.Exec(ddl); err != nil {
			return err
		}
		if c.Indexed {
			ddl := fmt.Sprintf("CREATE INDEX %s_%s ON %s (%s)", phys, c.Name, phys, c.Name)
			if _, err := db.Exec(ddl); err != nil {
				return err
			}
		}
	}
	l.st.mu.Lock()
	tn.Extensions = append(tn.Extensions, extName)
	l.st.mu.Unlock()
	return nil
}

// Rewrite implements Layout: pure table renaming, the paper's "very
// simple" transformation for this layout.
func (l *PrivateLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	tn, err := l.st.tenant(tenantID)
	if err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case *sql.SelectStmt:
		sel, err := l.rewriteSelect(tn, st)
		if err != nil {
			return nil, err
		}
		return &Rewritten{Query: sel}, nil
	case *sql.InsertStmt:
		if l.st.schema.Table(st.Table) == nil {
			return nil, fmt.Errorf("core: no logical table %s", st.Table)
		}
		out := *st
		out.Table = l.physName(tn.ID, l.st.schema.Table(st.Table).Name)
		return &Rewritten{Direct: []sql.Statement{&out}, DirectIsCount: true}, nil
	case *sql.UpdateStmt:
		if l.st.schema.Table(st.Table) == nil {
			return nil, fmt.Errorf("core: no logical table %s", st.Table)
		}
		out := *st
		out.Table = l.physName(tn.ID, l.st.schema.Table(st.Table).Name)
		out.Where, err = rewriteInSubqueries(st.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
			return l.rewriteSelect(tn, s)
		})
		if err != nil {
			return nil, err
		}
		return &Rewritten{Direct: []sql.Statement{&out}, DirectIsCount: true}, nil
	case *sql.DeleteStmt:
		if l.st.schema.Table(st.Table) == nil {
			return nil, fmt.Errorf("core: no logical table %s", st.Table)
		}
		out := *st
		out.Table = l.physName(tn.ID, l.st.schema.Table(st.Table).Name)
		out.Where, err = rewriteInSubqueries(st.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
			return l.rewriteSelect(tn, s)
		})
		if err != nil {
			return nil, err
		}
		return &Rewritten{Direct: []sql.Statement{&out}, DirectIsCount: true}, nil
	}
	return nil, fmt.Errorf("core: private layout cannot rewrite %T", st)
}

func (l *PrivateLayout) rewriteSelect(tn *Tenant, sel *sql.SelectStmt) (*sql.SelectStmt, error) {
	out := *sel
	out.From = make([]sql.TableRef, len(sel.From))
	var err error
	for i, tr := range sel.From {
		out.From[i], err = l.rewriteRef(tn, tr)
		if err != nil {
			return nil, err
		}
	}
	out.Where, err = rewriteInSubqueries(sel.Where, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
		return l.rewriteSelect(tn, s)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

func (l *PrivateLayout) rewriteRef(tn *Tenant, tr sql.TableRef) (sql.TableRef, error) {
	switch tr := tr.(type) {
	case *sql.NamedTable:
		lt := l.st.schema.Table(tr.Name)
		if lt == nil {
			return nil, fmt.Errorf("core: no logical table %s", tr.Name)
		}
		alias := tr.Alias
		if alias == "" {
			// Keep the logical name visible for qualified references.
			alias = tr.Name
		}
		return &sql.NamedTable{Name: l.physName(tn.ID, lt.Name), Alias: alias}, nil
	case *sql.SubqueryTable:
		sub, err := l.rewriteSelect(tn, tr.Select)
		if err != nil {
			return nil, err
		}
		return &sql.SubqueryTable{Select: sub, Alias: tr.Alias}, nil
	case *sql.JoinTable:
		left, err := l.rewriteRef(tn, tr.Left)
		if err != nil {
			return nil, err
		}
		right, err := l.rewriteRef(tn, tr.Right)
		if err != nil {
			return nil, err
		}
		return &sql.JoinTable{Left: left, Right: right, Type: tr.Type, On: tr.On}, nil
	}
	return nil, fmt.Errorf("core: unsupported FROM entry %T", tr)
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *PrivateLayout) TenantByID(id int64) (*Tenant, error) { return l.st.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *PrivateLayout) Tenants() []*Tenant { return l.st.Tenants() }
