package core

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// RewriteCache makes the §6.1 query-transformation layer free in steady
// state: an LRU of layout rewrites keyed by (tenant, statement text).
// Application SQL mostly arrives with values inlined, so a raw text
// alone would give every distinct value its own entry; the cache
// therefore canonicalizes first (sql.ExtractParams lifts the literals
// into positional parameters) and keys the rewrite on the template
// text, with per-raw-text alias entries remembering the extracted
// bindings. A steady-state statement then costs one map hit: no lexing,
// no parsing, no layout rewrite — and because each cached physical
// statement carries its precomputed plan-cache key string, the engine's
// plan cache hits without re-rendering SQL either.
//
// Invalidation is by generation stamps, not by catalog version. A
// layout rewrite depends only on the logical schema and the tenant's
// layout metadata — never on the live physical catalog — so a physical
// schema change (an online ALTER, another tenant's private-layout
// CREATE TABLE) must NOT cold-start every tenant's cache the way a
// version-keyed scheme would. Each entry is stamped at fill time with
// three generation counters: a global one, the tenant's, and one per
// logical table the statement touches. A hit revalidates the stamps; a
// bumped counter makes exactly the affected entries miss and refill,
// lazily, while everything else stays warm. Producers bump counters via
// InvalidateAll / InvalidateTenant / InvalidateTable — e.g. a tenant
// layout move bumps its tenant's counter at cutover.
//
// Rewrites are cached only for SELECT, UPDATE, and DELETE. INSERT
// rewrites are side-effecting (they reserve logical row ids via the
// layout's row sequences) and value-dependent, so they always take the
// full rewrite path; DDL and transaction control likewise.
//
// Filling is singleflighted per key: concurrent sessions of the same
// tenant sharing statement text do the parse+rewrite work once. Shared
// template ASTs are never re-planned concurrently — every execution
// reaches the engine under the template's one key string, and the plan
// cache's own in-flight table guarantees at most one build per key.
type RewriteCache struct {
	db     *engine.DB
	layout Layout

	mu      sync.Mutex
	cap     int
	lru     *list.List // front = LRU victim, back = most recent
	entries map[rcKey]*list.Element
	flight  map[rcKey]*rcFlight

	globalGen  int64
	tenantGens map[int64]int64
	tableGens  map[rcTableKey]int64

	hits         int64 // raw-text hits (zero-parse path)
	templateHits int64 // parsed + extracted, but the template's rewrite was cached
	misses       int64 // full parse + rewrite
	uncacheable  int64 // statements outside the cacheable classes
	invalidated  int64 // entries dropped by a stale generation stamp
}

type rcKey struct {
	tenant int64
	text   string
}

// rcTableKey scopes a table generation to one tenant: invalidating
// (35, "account") leaves tenant 42's entries over the same logical
// table untouched.
type rcTableKey struct {
	tenant int64
	table  string // lowercased logical name
}

// rcStamp is the set of generation counters an entry was filled under.
// An entry is live while every counter still matches; comparison is
// equality, since counters only ever increment.
type rcStamp struct {
	global int64
	tenant int64
	tables []rcTableGen
}

type rcTableGen struct {
	name string // lowercased logical name
	gen  int64
}

// cachedRewrite is one rewrite template: the physical statement shapes
// plus their precomputed plan-cache key strings (st.String() rendered
// once at fill time instead of per execution).
type cachedRewrite struct {
	rw          *Rewritten
	queryKey    string
	directKeys  []string
	rowQueryKey string
}

// rcEntry is one LRU slot. Template entries have extra == nil; raw
// alias entries carry the literal values their text canonicalized away,
// in Param index order.
type rcEntry struct {
	key   rcKey
	cr    *cachedRewrite
	extra []types.Value
	stamp rcStamp
}

// rcFlight is a single-flight slot for one key's fill.
type rcFlight struct {
	done chan struct{}
	ent  *rcEntry
	st   sql.Statement // set instead of ent for uncacheable statements
	err  error
}

// RewriteCacheStats is a point-in-time counter snapshot.
type RewriteCacheStats struct {
	Hits         int64 // raw-text hits: no parse, no rewrite
	TemplateHits int64 // parsed, but the canonical template was cached
	Misses       int64 // full parse + layout rewrite
	Uncacheable  int64 // INSERT / DDL / transaction control
	Invalidated  int64 // entries dropped by generation-stamp mismatch
	Entries      int   // current LRU population
}

// HitRate returns the fraction of cacheable lookups that skipped the
// layout rewrite. Uncacheable statements (INSERT, DDL, transaction
// control) never consult the cache — they are excluded from the rate
// and reported separately in Uncacheable.
func (s RewriteCacheStats) HitRate() float64 {
	total := s.Hits + s.TemplateHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.TemplateHits) / float64(total)
}

// DefaultRewriteCacheCap bounds the cache; at ~thousands of templates
// per tenant deck this fits the CRM workload many times over.
const DefaultRewriteCacheCap = 8192

// NewRewriteCache builds a cache for one (db, layout) pair. One cache
// is meant to be shared by every session of a server.
func NewRewriteCache(db *engine.DB, layout Layout, capacity int) *RewriteCache {
	if capacity <= 0 {
		capacity = DefaultRewriteCacheCap
	}
	return &RewriteCache{
		db:         db,
		layout:     layout,
		cap:        capacity,
		lru:        list.New(),
		entries:    make(map[rcKey]*list.Element),
		flight:     make(map[rcKey]*rcFlight),
		tenantGens: make(map[int64]int64),
		tableGens:  make(map[rcTableKey]int64),
	}
}

// Stats snapshots the counters.
func (c *RewriteCache) Stats() RewriteCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RewriteCacheStats{
		Hits:         c.hits,
		TemplateHits: c.templateHits,
		Misses:       c.misses,
		Uncacheable:  c.uncacheable,
		Invalidated:  c.invalidated,
		Entries:      len(c.entries),
	}
}

// InvalidateAll makes every cached rewrite stale. The nuclear option:
// for a logical-schema change that affects all tenants.
func (c *RewriteCache) InvalidateAll() {
	c.mu.Lock()
	c.globalGen++
	c.mu.Unlock()
}

// InvalidateTenant makes one tenant's cached rewrites stale and leaves
// every other tenant's entries warm. A tenant layout move calls this at
// each copy round and at cutover.
func (c *RewriteCache) InvalidateTenant(tenant int64) {
	c.mu.Lock()
	c.tenantGens[tenant]++
	c.mu.Unlock()
}

// InvalidateTable makes one tenant's cached rewrites over one logical
// table stale — the finest grain: other tables of the same tenant and
// the same table under other tenants stay warm.
func (c *RewriteCache) InvalidateTable(tenant int64, table string) {
	c.mu.Lock()
	c.tableGens[rcTableKey{tenant: tenant, table: strings.ToLower(table)}]++
	c.mu.Unlock()
}

// stampLocked captures the current generations for (tenant, tables).
// Caller holds c.mu.
func (c *RewriteCache) stampLocked(tenant int64, tables []string) rcStamp {
	s := rcStamp{global: c.globalGen, tenant: c.tenantGens[tenant]}
	if len(tables) > 0 {
		s.tables = make([]rcTableGen, len(tables))
		for i, tn := range tables {
			s.tables[i] = rcTableGen{name: tn, gen: c.tableGens[rcTableKey{tenant: tenant, table: tn}]}
		}
	}
	return s
}

// validLocked reports whether ent's stamp still matches the live
// generation counters. Caller holds c.mu.
func (c *RewriteCache) validLocked(ent *rcEntry) bool {
	s := ent.stamp
	if s.global != c.globalGen || s.tenant != c.tenantGens[ent.key.tenant] {
		return false
	}
	for _, tg := range s.tables {
		if tg.gen != c.tableGens[rcTableKey{tenant: ent.key.tenant, table: tg.name}] {
			return false
		}
	}
	return true
}

// removeLocked drops one LRU element. Caller holds c.mu.
func (c *RewriteCache) removeLocked(e *list.Element) {
	c.lru.Remove(e)
	delete(c.entries, e.Value.(*rcEntry).key)
	c.invalidated++
}

// lookup resolves one logical statement text for a tenant.
//
// Outcomes:
//   - cr != nil: the rewrite is cached; bind carries the parameter
//     values to execute it with (the caller's params, or the literals
//     extracted from this raw text).
//   - cr == nil, st != nil: the statement is not cacheable (INSERT,
//     DDL, transaction control); st is the parse result so the caller
//     can run the ordinary rewrite path without re-parsing.
//   - err != nil: parse or rewrite failed.
//
// userParams are returned as bind for already-parameterized texts; for
// canonicalized texts (which by construction contained no `?`) the
// extracted literals bind instead, and any caller-supplied params —
// which no placeholder could have referenced — are ignored.
func (c *RewriteCache) lookup(tenant int64, text string, userParams []types.Value) (cr *cachedRewrite, bind []types.Value, st sql.Statement, err error) {
	key := rcKey{tenant: tenant, text: text}
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			ent := e.Value.(*rcEntry)
			if c.validLocked(ent) {
				c.lru.MoveToBack(e)
				c.hits++
				c.mu.Unlock()
				return ent.cr, bindParams(ent, userParams), nil, nil
			}
			// Stale stamp: drop the entry and refill below.
			c.removeLocked(e)
		}
		if f, ok := c.flight[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, nil, nil, f.err
			}
			if f.ent != nil {
				c.mu.Lock()
				valid := c.validLocked(f.ent)
				if valid {
					c.hits++
				}
				c.mu.Unlock()
				if valid {
					return f.ent.cr, bindParams(f.ent, userParams), nil, nil
				}
				// Invalidated while in flight: retry from the top.
				continue
			}
			// Uncacheable: the flight's parse result belongs to its owner
			// (ASTs are mutable); re-parse for this caller.
			c.mu.Lock()
			c.uncacheable++
			c.mu.Unlock()
			st, err = sql.Parse(text)
			return nil, nil, st, err
		}
		f := &rcFlight{done: make(chan struct{})}
		c.flight[key] = f
		c.mu.Unlock()

		var templateHit bool
		f.ent, f.st, templateHit, f.err = c.fill(key)

		c.mu.Lock()
		delete(c.flight, key)
		switch {
		case f.err != nil:
			// Errors are not cached: a later lookup retries.
		case f.ent != nil:
			if templateHit {
				c.templateHits++
			} else {
				c.misses++
			}
			c.insertLocked(f.ent)
		default:
			c.uncacheable++
		}
		c.mu.Unlock()
		close(f.done)

		if f.err != nil {
			return nil, nil, nil, f.err
		}
		if f.ent != nil {
			return f.ent.cr, bindParams(f.ent, userParams), nil, nil
		}
		return nil, nil, f.st, nil
	}
}

// bindParams picks the execution bindings for an entry: extracted
// literals for canonicalized texts, the caller's params otherwise.
func bindParams(ent *rcEntry, userParams []types.Value) []types.Value {
	if ent.extra != nil {
		return ent.extra
	}
	return userParams
}

// fill parses and rewrites one key's statement. Returns (entry, nil)
// for cacheable statements, (nil, parsed) for uncacheable ones;
// templateHit reports that the canonical template's rewrite was already
// cached (only the parse + extraction ran).
//
// The generation stamp is captured after the parse and before the
// rewrite: an invalidation that lands mid-fill leaves the entry stamped
// older than the bumped counter, so the very next hit revalidates,
// fails, and refills. The window can waste one fill; it can never serve
// a rewrite from before the invalidation as current.
func (c *RewriteCache) fill(key rcKey) (ent *rcEntry, parsed sql.Statement, templateHit bool, err error) {
	st, err := sql.Parse(key.text)
	if err != nil {
		return nil, nil, false, err
	}
	switch st.(type) {
	case *sql.SelectStmt, *sql.UpdateStmt, *sql.DeleteStmt:
	default:
		return nil, st, false, nil
	}

	tables := tablesOf(st)
	c.mu.Lock()
	stamp := c.stampLocked(key.tenant, tables)
	c.mu.Unlock()

	// Canonicalize: lift inlined literals into params so statements
	// differing only in values share one template entry.
	extra, extracted := sql.ExtractParams(st)
	if !extracted {
		cr, err := c.rewriteTemplate(key.tenant, st)
		if err != nil {
			return nil, nil, false, err
		}
		return &rcEntry{key: key, cr: cr, stamp: stamp}, nil, false, nil
	}

	canonText := st.String()
	canonKey := rcKey{tenant: key.tenant, text: canonText}
	c.mu.Lock()
	if e, ok := c.entries[canonKey]; ok {
		tmpl := e.Value.(*rcEntry)
		if c.validLocked(tmpl) {
			c.lru.MoveToBack(e)
			c.mu.Unlock()
			return &rcEntry{key: key, cr: tmpl.cr, extra: extra, stamp: tmpl.stamp}, nil, true, nil
		}
		c.removeLocked(e)
	}
	c.mu.Unlock()

	cr, err := c.rewriteTemplate(key.tenant, st)
	if err != nil {
		return nil, nil, false, err
	}
	c.mu.Lock()
	// First valid insert wins: if another fill published this template
	// while we rewrote, alias to the published one so all raw texts
	// share a single template AST.
	if e, ok := c.entries[canonKey]; ok && c.validLocked(e.Value.(*rcEntry)) {
		tmpl := e.Value.(*rcEntry)
		cr, stamp = tmpl.cr, tmpl.stamp
	} else {
		c.insertLocked(&rcEntry{key: canonKey, cr: cr, stamp: stamp})
	}
	c.mu.Unlock()
	return &rcEntry{key: key, cr: cr, extra: extra, stamp: stamp}, nil, false, nil
}

// rewriteTemplate runs the layout rewrite and renders the plan-cache
// key strings once.
func (c *RewriteCache) rewriteTemplate(tenant int64, st sql.Statement) (*cachedRewrite, error) {
	rw, err := c.layout.Rewrite(tenant, st)
	if err != nil {
		return nil, err
	}
	cr := &cachedRewrite{rw: rw}
	if rw.Query != nil {
		cr.queryKey = rw.Query.String()
	}
	if len(rw.Direct) > 0 {
		cr.directKeys = make([]string, len(rw.Direct))
		for i, d := range rw.Direct {
			cr.directKeys[i] = d.String()
		}
	}
	if rw.RowQuery != nil {
		cr.rowQueryKey = rw.RowQuery.String()
	}
	return cr, nil
}

// insertLocked adds ent to the LRU, evicting from the front past cap.
// An entry already under the key is replaced — it either carries the
// same rewrite (publish race) or a staler stamp. Caller holds c.mu.
func (c *RewriteCache) insertLocked(ent *rcEntry) {
	if e, ok := c.entries[ent.key]; ok {
		e.Value = ent
		c.lru.MoveToBack(e)
		return
	}
	c.entries[ent.key] = c.lru.PushBack(ent)
	for len(c.entries) > c.cap {
		victim := c.lru.Front()
		c.lru.Remove(victim)
		delete(c.entries, victim.Value.(*rcEntry).key)
	}
}

// tablesOf collects the logical table names a cacheable statement
// touches, lowercased, deduped, and sorted — the tables its cache entry
// is stamped against. Subqueries in FROM, IN, and join conditions are
// walked so an InvalidateTable on any referenced table staleness-marks
// the whole statement.
func tablesOf(st sql.Statement) []string {
	seen := make(map[string]bool)
	var walkSel func(*sql.SelectStmt)
	var walkRef func(sql.TableRef)
	var walkExpr func(sql.Expr)
	walkRef = func(r sql.TableRef) {
		switch r := r.(type) {
		case *sql.NamedTable:
			seen[strings.ToLower(r.Name)] = true
		case *sql.SubqueryTable:
			walkSel(r.Select)
		case *sql.JoinTable:
			walkRef(r.Left)
			walkRef(r.Right)
			walkExpr(r.On)
		}
	}
	walkExpr = func(e sql.Expr) {
		switch e := e.(type) {
		case *sql.BinaryExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *sql.UnaryExpr:
			walkExpr(e.X)
		case *sql.IsNullExpr:
			walkExpr(e.X)
		case *sql.InExpr:
			walkExpr(e.X)
			for _, x := range e.List {
				walkExpr(x)
			}
			if e.Subquery != nil {
				walkSel(e.Subquery)
			}
		case *sql.LikeExpr:
			walkExpr(e.X)
			walkExpr(e.Pattern)
		case *sql.FuncExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *sql.CastExpr:
			walkExpr(e.X)
		}
	}
	walkSel = func(s *sql.SelectStmt) {
		if s == nil {
			return
		}
		for _, it := range s.Items {
			if it.Expr != nil {
				walkExpr(it.Expr)
			}
		}
		for _, r := range s.From {
			walkRef(r)
		}
		walkExpr(s.Where)
		for _, g := range s.GroupBy {
			walkExpr(g)
		}
		walkExpr(s.Having)
		for _, o := range s.OrderBy {
			walkExpr(o.Expr)
		}
	}
	switch st := st.(type) {
	case *sql.SelectStmt:
		walkSel(st)
	case *sql.UpdateStmt:
		seen[strings.ToLower(st.Table)] = true
		for _, a := range st.Set {
			walkExpr(a.Value)
		}
		walkExpr(st.Where)
	case *sql.DeleteStmt:
		seen[strings.ToLower(st.Table)] = true
		walkExpr(st.Where)
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
