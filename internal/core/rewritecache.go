package core

import (
	"container/list"
	"sync"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// RewriteCache makes the §6.1 query-transformation layer free in steady
// state: an LRU of layout rewrites keyed by (tenant, statement text,
// catalog version). Application SQL mostly arrives with values inlined,
// so a raw text alone would give every distinct value its own entry;
// the cache therefore canonicalizes first (sql.ExtractParams lifts the
// literals into positional parameters) and keys the rewrite on the
// template text, with per-raw-text alias entries remembering the
// extracted bindings. A steady-state statement then costs one map hit:
// no lexing, no parsing, no layout rewrite — and because each cached
// physical statement carries its precomputed plan-cache key string, the
// engine's plan cache hits without re-rendering SQL either.
//
// The catalog version in the key makes DDL invalidation implicit, the
// same trick as the engine plan cache: a schema change bumps the
// version, every subsequent lookup misses and re-rewrites against the
// new schema, and stale entries age out of the LRU.
//
// Rewrites are cached only for SELECT, UPDATE, and DELETE. INSERT
// rewrites are side-effecting (they reserve logical row ids via the
// layout's row sequences) and value-dependent, so they always take the
// full rewrite path; DDL and transaction control likewise.
//
// Filling is singleflighted per key: concurrent sessions of the same
// tenant sharing statement text do the parse+rewrite work once. Shared
// template ASTs are never re-planned concurrently — every execution
// reaches the engine under the template's one key string, and the plan
// cache's own in-flight table guarantees at most one build per key.
type RewriteCache struct {
	db     *engine.DB
	layout Layout

	mu      sync.Mutex
	cap     int
	lru     *list.List // front = LRU victim, back = most recent
	entries map[rcKey]*list.Element
	flight  map[rcKey]*rcFlight

	hits         int64 // raw-text hits (zero-parse path)
	templateHits int64 // parsed + extracted, but the template's rewrite was cached
	misses       int64 // full parse + rewrite
	uncacheable  int64 // statements outside the cacheable classes
}

type rcKey struct {
	tenant  int64
	text    string
	version int64
}

// cachedRewrite is one rewrite template: the physical statement shapes
// plus their precomputed plan-cache key strings (st.String() rendered
// once at fill time instead of per execution).
type cachedRewrite struct {
	rw          *Rewritten
	queryKey    string
	directKeys  []string
	rowQueryKey string
}

// rcEntry is one LRU slot. Template entries have extra == nil; raw
// alias entries carry the literal values their text canonicalized away,
// in Param index order.
type rcEntry struct {
	key   rcKey
	cr    *cachedRewrite
	extra []types.Value
}

// rcFlight is a single-flight slot for one key's fill.
type rcFlight struct {
	done chan struct{}
	ent  *rcEntry
	st   sql.Statement // set instead of ent for uncacheable statements
	err  error
}

// RewriteCacheStats is a point-in-time counter snapshot.
type RewriteCacheStats struct {
	Hits         int64 // raw-text hits: no parse, no rewrite
	TemplateHits int64 // parsed, but the canonical template was cached
	Misses       int64 // full parse + layout rewrite
	Uncacheable  int64 // INSERT / DDL / transaction control
	Entries      int   // current LRU population
}

// HitRate returns the fraction of cacheable lookups that skipped the
// layout rewrite. Uncacheable statements (INSERT, DDL, transaction
// control) never consult the cache — they are excluded from the rate
// and reported separately in Uncacheable.
func (s RewriteCacheStats) HitRate() float64 {
	total := s.Hits + s.TemplateHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.TemplateHits) / float64(total)
}

// DefaultRewriteCacheCap bounds the cache; at ~thousands of templates
// per tenant deck this fits the CRM workload many times over.
const DefaultRewriteCacheCap = 8192

// NewRewriteCache builds a cache for one (db, layout) pair. One cache
// is meant to be shared by every session of a server.
func NewRewriteCache(db *engine.DB, layout Layout, capacity int) *RewriteCache {
	if capacity <= 0 {
		capacity = DefaultRewriteCacheCap
	}
	return &RewriteCache{
		db:      db,
		layout:  layout,
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[rcKey]*list.Element),
		flight:  make(map[rcKey]*rcFlight),
	}
}

// Stats snapshots the counters.
func (c *RewriteCache) Stats() RewriteCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RewriteCacheStats{
		Hits:         c.hits,
		TemplateHits: c.templateHits,
		Misses:       c.misses,
		Uncacheable:  c.uncacheable,
		Entries:      len(c.entries),
	}
}

// lookup resolves one logical statement text for a tenant.
//
// Outcomes:
//   - cr != nil: the rewrite is cached; bind carries the parameter
//     values to execute it with (the caller's params, or the literals
//     extracted from this raw text).
//   - cr == nil, st != nil: the statement is not cacheable (INSERT,
//     DDL, transaction control); st is the parse result so the caller
//     can run the ordinary rewrite path without re-parsing.
//   - err != nil: parse or rewrite failed.
//
// userParams are returned as bind for already-parameterized texts; for
// canonicalized texts (which by construction contained no `?`) the
// extracted literals bind instead, and any caller-supplied params —
// which no placeholder could have referenced — are ignored.
func (c *RewriteCache) lookup(tenant int64, text string, userParams []types.Value) (cr *cachedRewrite, bind []types.Value, st sql.Statement, err error) {
	version := c.db.Catalog().Version()
	key := rcKey{tenant: tenant, text: text, version: version}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToBack(e)
		ent := e.Value.(*rcEntry)
		c.hits++
		c.mu.Unlock()
		return ent.cr, bindParams(ent, userParams), nil, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, nil, nil, f.err
		}
		if f.ent != nil {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return f.ent.cr, bindParams(f.ent, userParams), nil, nil
		}
		// Uncacheable: the flight's parse result belongs to its owner
		// (ASTs are mutable); re-parse for this caller.
		c.mu.Lock()
		c.uncacheable++
		c.mu.Unlock()
		st, err = sql.Parse(text)
		return nil, nil, st, err
	}
	f := &rcFlight{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	var templateHit bool
	f.ent, f.st, templateHit, f.err = c.fill(key)

	c.mu.Lock()
	delete(c.flight, key)
	switch {
	case f.err != nil:
		// Errors are not cached: a later lookup retries.
	case f.ent != nil:
		if templateHit {
			c.templateHits++
		} else {
			c.misses++
		}
		c.insertLocked(f.ent)
	default:
		c.uncacheable++
	}
	c.mu.Unlock()
	close(f.done)

	if f.err != nil {
		return nil, nil, nil, f.err
	}
	if f.ent != nil {
		return f.ent.cr, bindParams(f.ent, userParams), nil, nil
	}
	return nil, nil, f.st, nil
}

// bindParams picks the execution bindings for an entry: extracted
// literals for canonicalized texts, the caller's params otherwise.
func bindParams(ent *rcEntry, userParams []types.Value) []types.Value {
	if ent.extra != nil {
		return ent.extra
	}
	return userParams
}

// fill parses and rewrites one key's statement. Returns (entry, nil)
// for cacheable statements, (nil, parsed) for uncacheable ones;
// templateHit reports that the canonical template's rewrite was already
// cached (only the parse + extraction ran).
func (c *RewriteCache) fill(key rcKey) (ent *rcEntry, parsed sql.Statement, templateHit bool, err error) {
	st, err := sql.Parse(key.text)
	if err != nil {
		return nil, nil, false, err
	}
	switch st.(type) {
	case *sql.SelectStmt, *sql.UpdateStmt, *sql.DeleteStmt:
	default:
		return nil, st, false, nil
	}

	// Canonicalize: lift inlined literals into params so statements
	// differing only in values share one template entry.
	extra, extracted := sql.ExtractParams(st)
	if !extracted {
		cr, err := c.rewriteTemplate(key.tenant, st)
		if err != nil {
			return nil, nil, false, err
		}
		return &rcEntry{key: key, cr: cr}, nil, false, nil
	}

	canonText := st.String()
	canonKey := rcKey{tenant: key.tenant, text: canonText, version: key.version}
	c.mu.Lock()
	if e, ok := c.entries[canonKey]; ok {
		c.lru.MoveToBack(e)
		cr := e.Value.(*rcEntry).cr
		c.mu.Unlock()
		return &rcEntry{key: key, cr: cr, extra: extra}, nil, true, nil
	}
	c.mu.Unlock()

	cr, err := c.rewriteTemplate(key.tenant, st)
	if err != nil {
		return nil, nil, false, err
	}
	c.mu.Lock()
	// First insert wins: if another fill published this template while
	// we rewrote, alias to the published one so all raw texts share a
	// single template AST.
	if e, ok := c.entries[canonKey]; ok {
		cr = e.Value.(*rcEntry).cr
	} else {
		c.insertLocked(&rcEntry{key: canonKey, cr: cr})
	}
	c.mu.Unlock()
	return &rcEntry{key: key, cr: cr, extra: extra}, nil, false, nil
}

// rewriteTemplate runs the layout rewrite and renders the plan-cache
// key strings once.
func (c *RewriteCache) rewriteTemplate(tenant int64, st sql.Statement) (*cachedRewrite, error) {
	rw, err := c.layout.Rewrite(tenant, st)
	if err != nil {
		return nil, err
	}
	cr := &cachedRewrite{rw: rw}
	if rw.Query != nil {
		cr.queryKey = rw.Query.String()
	}
	if len(rw.Direct) > 0 {
		cr.directKeys = make([]string, len(rw.Direct))
		for i, d := range rw.Direct {
			cr.directKeys[i] = d.String()
		}
	}
	if rw.RowQuery != nil {
		cr.rowQueryKey = rw.RowQuery.String()
	}
	return cr, nil
}

// insertLocked adds ent to the LRU, evicting from the front past cap.
// Caller holds c.mu.
func (c *RewriteCache) insertLocked(ent *rcEntry) {
	if e, ok := c.entries[ent.key]; ok {
		// Lost a publish race for the same key; keep the incumbent.
		c.lru.MoveToBack(e)
		return
	}
	c.entries[ent.key] = c.lru.PushBack(ent)
	for len(c.entries) > c.cap {
		victim := c.lru.Front()
		c.lru.Remove(victim)
		delete(c.entries, victim.Value.(*rcEntry).key)
	}
}
