package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
)

func affinitySchema() *Schema {
	return &Schema{
		Tables: []*Table{{
			Name: "Wide",
			Key:  "Id",
			Columns: []Column{
				{Name: "Id", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "A", Type: types.IntType},
				{Name: "B", Type: types.IntType},
				{Name: "C", Type: types.IntType},
				{Name: "D", Type: types.IntType},
				{Name: "E", Type: types.IntType},
				{Name: "F", Type: types.IntType},
			},
		}},
	}
}

func TestAffinityOrdering(t *testing.T) {
	s := affinitySchema()
	af := NewAffinity(s)
	tn := &Tenant{ID: 1}
	// A and F are always queried together.
	for i := 0; i < 10; i++ {
		if err := af.ObserveSQL(tn, "SELECT A, F FROM Wide WHERE Id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	cols, _ := s.LogicalColumns(tn, "Wide")
	ordered := af.OrderColumns("Wide", cols)
	posA, posF := -1, -1
	for i, c := range ordered {
		switch c.Name {
		case "A":
			posA = i
		case "F":
			posF = i
		}
	}
	if d := posA - posF; d != 1 && d != -1 {
		t.Errorf("A and F should be adjacent, positions %d and %d", posA, posF)
	}
	// Without statistics, order is unchanged.
	empty := NewAffinity(s)
	same := empty.OrderColumns("Wide", cols)
	for i := range cols {
		if same[i].Name != cols[i].Name {
			t.Errorf("no-stats ordering changed at %d", i)
		}
	}
}

// TestAffinityReducesChunks checks the end-to-end payoff: with
// workload-aware assignment, the hot column pair lands in one chunk,
// cutting an aligning join out of the reconstruction.
func TestAffinityReducesChunks(t *testing.T) {
	s := affinitySchema()
	defs := []*ChunkTableDef{
		{Name: "CIdx", Cols: []types.ColumnType{types.IntType}, ValueIndex: true},
		{Name: "C2", Cols: []types.ColumnType{types.IntType, types.IntType}},
	}
	hot := "SELECT A, F FROM Wide WHERE Id = 1"
	tn := &Tenant{ID: 1}

	countChunks := func(af *Affinity) int {
		l, err := NewChunkLayout(s, ChunkOptions{Defs: defs, Affinity: af})
		if err != nil {
			t.Fatal(err)
		}
		db := engine.Open(engine.Config{})
		if err := l.Create(db, []*Tenant{{ID: 1}}); err != nil {
			t.Fatal(err)
		}
		a, err := l.assignmentFor(1, "Wide")
		if err != nil {
			t.Fatal(err)
		}
		gA, gF := a.groupOf("A"), a.groupOf("F")
		if gA == nil || gF == nil {
			t.Fatal("columns unassigned")
		}
		if gA.ID == gF.ID {
			return 1
		}
		return 2
	}

	if n := countChunks(nil); n != 2 {
		t.Errorf("declaration-order assignment should split A and F (got %d chunk(s))", n)
	}
	af := NewAffinity(s)
	for i := 0; i < 5; i++ {
		if err := af.ObserveSQL(tn, hot); err != nil {
			t.Fatal(err)
		}
	}
	if n := countChunks(af); n != 1 {
		t.Errorf("workload-aware assignment should co-locate A and F (got %d chunk(s))", n)
	}
}

func TestAffinityEndToEnd(t *testing.T) {
	s := affinitySchema()
	af := NewAffinity(s)
	tn := &Tenant{ID: 1}
	for i := 0; i < 5; i++ {
		if err := af.ObserveSQL(tn, "SELECT A, F FROM Wide"); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewChunkLayout(s, ChunkOptions{Affinity: af})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, []*Tenant{{ID: 1}}); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	if _, err := m.Exec(1, "INSERT INTO Wide VALUES (1, 10, 20, 30, 40, 50, 60)"); err != nil {
		t.Fatal(err)
	}
	rows, err := m.Query(1, "SELECT A, F FROM Wide WHERE Id = 1")
	if err != nil || rows.Data[0][0].Int != 10 || rows.Data[0][1].Int != 60 {
		t.Fatalf("query under affinity assignment: %v %+v", err, rows)
	}
}

func TestAffinityErrors(t *testing.T) {
	s := affinitySchema()
	af := NewAffinity(s)
	tn := &Tenant{ID: 1}
	if err := af.ObserveSQL(tn, "UPDATE Wide SET A = 1"); err == nil {
		t.Error("non-SELECT should be rejected")
	}
	if err := af.ObserveSQL(tn, "SELECT x FROM NoSuch"); err == nil {
		t.Error("unknown table should be rejected")
	}
}
