package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/types"
)

func TestSchemaValidate(t *testing.T) {
	good := paperSchema()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Schema{
		{},
		{Tables: []*Table{{Name: "T"}}},
		{Tables: []*Table{{Name: "T", Key: "id", Columns: []Column{{Name: "x", Type: types.IntType}}}}},
		{Tables: []*Table{{Name: "T", Key: "id", Columns: []Column{{Name: "id", Type: types.IntType}}}}}, // key nullable
		{Tables: []*Table{
			{Name: "T", Key: "id", Columns: []Column{{Name: "id", Type: types.IntType, NotNull: true}}},
			{Name: "t", Key: "id", Columns: []Column{{Name: "id", Type: types.IntType, NotNull: true}}},
		}},
		{
			Tables:     []*Table{{Name: "T", Key: "id", Columns: []Column{{Name: "id", Type: types.IntType, NotNull: true}}}},
			Extensions: []*Extension{{Name: "E", Base: "NoSuch", Columns: []Column{{Name: "x", Type: types.IntType}}}},
		},
		{
			Tables:     []*Table{{Name: "T", Key: "id", Columns: []Column{{Name: "id", Type: types.IntType, NotNull: true}}}},
			Extensions: []*Extension{{Name: "E", Base: "T", Columns: []Column{{Name: "id", Type: types.IntType}}}},
		},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d passed validation", i)
		}
	}
}

func TestLogicalColumnsPerTenant(t *testing.T) {
	s := paperSchema()
	cols, err := s.LogicalColumns(&Tenant{ID: 17, Extensions: []string{"HealthcareAccount"}}, "Account")
	if err != nil || len(cols) != 4 {
		t.Fatalf("tenant 17: %v %v", cols, err)
	}
	cols, err = s.LogicalColumns(&Tenant{ID: 35}, "Account")
	if err != nil || len(cols) != 2 {
		t.Fatalf("tenant 35: %v %v", cols, err)
	}
	if _, err := s.LogicalColumns(&Tenant{ID: 1, Extensions: []string{"NoSuch"}}, "Account"); err == nil {
		t.Error("unknown extension should fail")
	}
}

func TestAssignmentAlgorithm(t *testing.T) {
	defs := []*ChunkTableDef{
		{Name: "ChunkIndexT", Cols: []types.ColumnType{types.IntType}, ValueIndex: true},
		{Name: "Chunk_i1s1", Cols: []types.ColumnType{types.IntType, {Kind: types.KindString}}},
	}
	cols := []Column{
		{Name: "id", Type: types.IntType, NotNull: true, Indexed: true},
		{Name: "name", Type: types.VarcharType(10)},
		{Name: "beds", Type: types.IntType},
		{Name: "city", Type: types.VarcharType(10)},
		{Name: "flag", Type: types.BoolType},
	}
	a, err := newAssignment(cols, defs)
	if err != nil {
		t.Fatal(err)
	}
	// Indexed id must land in the ValueIndex def.
	loc, ok := a.locate("id")
	if !ok || loc.group.Def.Name != "ChunkIndexT" {
		t.Errorf("id location: %+v", loc)
	}
	// Every column must be assigned exactly once.
	seen := map[string]int{}
	for _, g := range a.groups {
		for _, c := range g.Cols {
			seen[strings.ToLower(c.Name)]++
		}
	}
	for _, c := range cols {
		if seen[strings.ToLower(c.Name)] != 1 {
			t.Errorf("column %s assigned %d times", c.Name, seen[strings.ToLower(c.Name)])
		}
	}
	// Chunk IDs must be dense from 0.
	for i, g := range a.groups {
		if g.ID != i {
			t.Errorf("group %d has ID %d", i, g.ID)
		}
	}
	// Bool stored in an Int slot.
	loc, _ = a.locate("flag")
	if !strings.HasPrefix(loc.phys, "Int") {
		t.Errorf("bool column stored in %s", loc.phys)
	}
}

func TestAssignmentNoFit(t *testing.T) {
	defs := []*ChunkTableDef{{Name: "IntsOnly", Cols: []types.ColumnType{types.IntType}}}
	_, err := newAssignment([]Column{{Name: "s", Type: types.VarcharType(5)}}, defs)
	if err == nil {
		t.Error("string column with int-only defs should fail")
	}
	// Indexed column with no ValueIndex def.
	_, err = newAssignment([]Column{{Name: "i", Type: types.IntType, Indexed: true}}, defs)
	if err == nil {
		t.Error("indexed column without ValueIndex def should fail")
	}
}

// TestAssignmentProperty: random column lists against random def sets
// either fail cleanly or produce a complete, non-overlapping assignment
// whose physical slots exist in the defs with matching types.
func TestAssignmentProperty(t *testing.T) {
	kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindDate, types.KindBool}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var cols []Column
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			cols = append(cols, Column{
				Name:    "c" + string(rune('A'+i%26)) + string(rune('0'+i/26)),
				Type:    types.ColumnType{Kind: kinds[r.Intn(len(kinds))]},
				Indexed: r.Intn(5) == 0,
			})
		}
		var defs []*ChunkTableDef
		nd := 1 + r.Intn(4)
		for d := 0; d < nd; d++ {
			def := &ChunkTableDef{Name: "D" + string(rune('0'+d)), ValueIndex: r.Intn(2) == 0}
			w := 1 + r.Intn(6)
			for j := 0; j < w; j++ {
				k := kinds[r.Intn(4)] // no bool chunk columns
				def.Cols = append(def.Cols, types.ColumnType{Kind: k})
			}
			defs = append(defs, def)
		}
		a, err := newAssignment(cols, defs)
		if err != nil {
			return true // clean failure is acceptable
		}
		assigned := map[string]bool{}
		for _, g := range a.groups {
			usedPhys := map[string]bool{}
			physByName := map[string]types.Kind{}
			phys := g.Def.PhysCols()
			for i, pc := range phys {
				physByName[pc] = g.Def.Cols[i].Kind
			}
			for i, c := range g.Cols {
				if assigned[strings.ToLower(c.Name)] {
					return false // double assignment
				}
				assigned[strings.ToLower(c.Name)] = true
				pc := g.Phys[i]
				if usedPhys[pc] {
					return false // slot collision within a chunk
				}
				usedPhys[pc] = true
				wantKind, ok := physByName[pc]
				if !ok || wantKind != chunkStorageKind(c.Type.Kind) {
					return false // wrong slot type
				}
				if c.Indexed && !g.Def.ValueIndex {
					return false // indexed column routed to unindexed def
				}
			}
		}
		return len(assigned) == len(cols)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUniformChunkDefs(t *testing.T) {
	defs := UniformChunkDefs(paperSchema(), 6)
	if len(defs) != 2 {
		t.Fatalf("defs: %d", len(defs))
	}
	if !defs[0].ValueIndex || len(defs[0].Cols) != 1 {
		t.Errorf("index def: %+v", defs[0])
	}
	if len(defs[1].Cols) != 6 {
		t.Errorf("data def width: %d", len(defs[1].Cols))
	}
}

// TestOnlineTenantAndExtension exercises the on-line administrative
// operations (§4.2: adding tenants and changing tenant schemas while
// the system runs) on every layout that supports them.
func TestOnlineTenantAndExtension(t *testing.T) {
	schema := paperSchema()
	type extender interface {
		ExtendTenant(db *engine.DB, tenantID int64, ext string) error
	}
	for name, m := range allLayouts(t, schema) {
		loadPaperData(t, m)
		// New tenant arrives on-line.
		newTenant := &Tenant{ID: 99, Extensions: []string{"AutomotiveAccount"}}
		if err := m.Layout.AddTenant(m.DB, newTenant); err != nil {
			t.Fatalf("%s: AddTenant: %v", name, err)
		}
		if _, err := m.Exec(99, "INSERT INTO Account (Aid, Name, Dealers) VALUES (1, 'Fresh', 3)"); err != nil {
			t.Fatalf("%s: insert for new tenant: %v", name, err)
		}
		rows, err := m.Query(99, "SELECT Dealers FROM Account WHERE Aid = 1")
		if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Int != 3 {
			t.Fatalf("%s: new tenant query: %v %+v", name, err, rows)
		}
		// Duplicate registration must fail.
		if err := m.Layout.AddTenant(m.DB, newTenant); err == nil {
			t.Errorf("%s: duplicate AddTenant should fail", name)
		}

		// On-line extension for tenant 35 (base-only so far).
		ex, ok := m.Layout.(extender)
		if !ok {
			continue
		}
		if err := ex.ExtendTenant(m.DB, 35, "AutomotiveAccount"); err != nil {
			t.Fatalf("%s: ExtendTenant: %v", name, err)
		}
		// Existing row reads NULL in the new column.
		rows, err = m.Query(35, "SELECT Name, Dealers FROM Account WHERE Aid = 1")
		if err != nil {
			t.Fatalf("%s: query after extend: %v", name, err)
		}
		if len(rows.Data) != 1 || rows.Data[0][0].Str != "Ball" || !rows.Data[0][1].IsNull() {
			t.Errorf("%s: after extend: %+v", name, rows.Data)
		}
		// And the new column is writable.
		if _, err := m.Exec(35, "UPDATE Account SET Dealers = 8 WHERE Aid = 1"); err != nil {
			t.Fatalf("%s: update new column: %v", name, err)
		}
		rows, _ = m.Query(35, "SELECT Dealers FROM Account WHERE Aid = 1")
		if rows.Data[0][0].Int != 8 {
			t.Errorf("%s: new column value: %v", name, rows.Data[0][0])
		}
		// Double-extend must fail.
		if err := ex.ExtendTenant(m.DB, 35, "AutomotiveAccount"); err == nil {
			t.Errorf("%s: double extend should fail", name)
		}
	}
}

// TestTrashcan verifies §6.3's soft-delete mode on the chunk layout.
func TestTrashcan(t *testing.T) {
	schema := paperSchema()
	l, err := NewChunkLayout(schema, ChunkOptions{Trashcan: true})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	loadPaperData(t, m)
	res, err := m.Exec(17, "DELETE FROM Account WHERE Aid = 2")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("delete: %v %d", err, res.RowsAffected)
	}
	rows, _ := m.Query(17, "SELECT COUNT(*) FROM Account")
	if rows.Data[0][0].Int != 1 {
		t.Errorf("visible count after trashcan delete: %v", rows.Data[0][0])
	}
	// The physical rows survive: restore brings the logical row back.
	if err := l.RestoreRows(db, 17, "Account", []types.Value{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	rows, _ = m.Query(17, "SELECT COUNT(*) FROM Account")
	if rows.Data[0][0].Int != 2 {
		t.Errorf("count after restore: %v", rows.Data[0][0])
	}
	// Restoring on a non-trashcan layout errors.
	l2, _ := NewChunkLayout(schema, ChunkOptions{})
	if err := l2.RestoreRows(db, 17, "Account", nil); err == nil {
		t.Error("restore without trashcan should fail")
	}
}

// TestFlattenedPredicateOrder checks both WHERE orderings produce
// correct results and actually differ in conjunct order.
func TestFlattenedPredicateOrder(t *testing.T) {
	schema := paperSchema()
	for _, metaFirst := range []bool{false, true} {
		l, err := NewChunkLayout(schema, ChunkOptions{Flattened: true, MetadataFirst: metaFirst})
		if err != nil {
			t.Fatal(err)
		}
		db := engine.Open(engine.Config{})
		if err := l.Create(db, paperTenants()); err != nil {
			t.Fatal(err)
		}
		m := NewMapper(db, l)
		loadPaperData(t, m)
		rows, err := m.Query(17, "SELECT Beds FROM Account WHERE Hospital = 'State'")
		if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Int != 1042 {
			t.Fatalf("metaFirst=%v: %v %+v", metaFirst, err, rows)
		}
		sqls, _ := m.RewriteSQL(17, "SELECT Beds FROM Account WHERE Hospital = 'State'")
		wherePart := sqls[0][strings.Index(sqls[0], "WHERE"):]
		tenantPos := strings.Index(wherePart, "Tenant")
		hospPos := strings.Index(wherePart, "= 'State'") // the user predicate, in physical form
		if metaFirst && tenantPos > hospPos {
			t.Errorf("MetadataFirst ordering wrong: %s", wherePart)
		}
		if !metaFirst && tenantPos < hospPos {
			t.Errorf("SelectiveFirst ordering wrong: %s", wherePart)
		}
	}
}

// TestChunkAssignmentInspection covers the Assignment debug surface.
func TestChunkAssignmentInspection(t *testing.T) {
	schema := paperSchema()
	l, _ := NewChunkLayout(schema, ChunkOptions{})
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	s, err := l.Assignment(17, "Account")
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"Aid", "Name", "Hospital", "Beds"} {
		if !strings.Contains(s, col) {
			t.Errorf("assignment missing %s:\n%s", col, s)
		}
	}
	if _, err := l.Assignment(5, "Account"); err == nil {
		t.Error("unknown tenant assignment should fail")
	}
}

// TestBasicLayout covers the no-extensibility baseline.
func TestBasicLayout(t *testing.T) {
	schema := &Schema{Tables: paperSchema().Tables}
	l, err := NewBasicLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	tenants := []*Tenant{{ID: 1}, {ID: 2}}
	if err := l.Create(db, tenants); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	if _, err := m.Exec(1, "INSERT INTO Account (Aid, Name) VALUES (1, 'one')"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(2, "INSERT INTO Account (Aid, Name) VALUES (1, 'two')"); err != nil {
		t.Fatal(err)
	}
	rows, err := m.Query(1, "SELECT Name FROM Account WHERE Aid = 1")
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Str != "one" {
		t.Fatalf("isolation: %v %+v", err, rows)
	}
	// Star hides the Tenant column.
	rows, _ = m.Query(2, "SELECT * FROM Account")
	if len(rows.Columns) != 2 {
		t.Errorf("basic star: %v", rows.Columns)
	}
	if _, err := m.Exec(1, "UPDATE Account SET Name = 'x' WHERE Aid = 1"); err != nil {
		t.Fatal(err)
	}
	rows, _ = m.Query(2, "SELECT Name FROM Account WHERE Aid = 1")
	if rows.Data[0][0].Str != "two" {
		t.Error("update leaked across tenants")
	}
	if _, err := m.Exec(1, "DELETE FROM Account WHERE Aid = 1"); err != nil {
		t.Fatal(err)
	}
	rows, _ = m.Query(2, "SELECT COUNT(*) FROM Account")
	if rows.Data[0][0].Int != 1 {
		t.Error("delete leaked across tenants")
	}
	// Tenants with extensions are rejected.
	if err := l.AddTenant(db, &Tenant{ID: 3, Extensions: []string{"X"}}); err == nil {
		t.Error("basic layout must reject extensions")
	}
}

// TestPrivateRemoveTenant covers the testbed's delete-tenant admin op.
func TestPrivateRemoveTenant(t *testing.T) {
	schema := paperSchema()
	l, _ := NewPrivateLayout(schema)
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().Tables
	if err := l.RemoveTenant(db, 35); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Tables; got != before-1 {
		t.Errorf("tables after remove: %d -> %d", before, got)
	}
	m := NewMapper(db, l)
	if _, err := m.Query(35, "SELECT Name FROM Account"); err == nil {
		t.Error("removed tenant should fail")
	}
	if err := l.RemoveTenant(db, 35); err == nil {
		t.Error("double remove should fail")
	}
}

// TestDateAndFloatThroughLayouts checks type fidelity for the trickier
// kinds (dates via int/string storage, floats via dbl pivots).
func TestDateAndFloatThroughLayouts(t *testing.T) {
	schema := &Schema{
		Tables: []*Table{{
			Name: "Event",
			Key:  "Id",
			Columns: []Column{
				{Name: "Id", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Day", Type: types.DateType},
				{Name: "Score", Type: types.FloatType},
				{Name: "Open", Type: types.BoolType},
			},
		}},
	}
	mk := func(name string, l Layout, err error) *Mapper {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		db := engine.Open(engine.Config{})
		if err := l.Create(db, []*Tenant{{ID: 1}}); err != nil {
			t.Fatalf("%s create: %v", name, err)
		}
		return NewMapper(db, l)
	}
	pl, err1 := NewPrivateLayout(schema)
	ul, err2 := NewUniversalLayout(schema, 8)
	pv, err3 := NewPivotLayout(schema, true)
	ch, err4 := NewChunkLayout(schema, ChunkOptions{})
	for name, m := range map[string]*Mapper{
		"private":   mk("private", pl, err1),
		"universal": mk("universal", ul, err2),
		"pivot":     mk("pivot", pv, err3),
		"chunk":     mk("chunk", ch, err4),
	} {
		if _, err := m.Exec(1, "INSERT INTO Event (Id, Day, Score, Open) VALUES (1, DATE '2008-06-09', 2.5, TRUE)"); err != nil {
			t.Fatalf("%s insert: %v", name, err)
		}
		rows, err := m.Query(1, "SELECT Day, Score, Open FROM Event WHERE Id = 1")
		if err != nil {
			t.Fatalf("%s query: %v", name, err)
		}
		r := rows.Data[0]
		if r[0].Kind != types.KindDate || r[0].String() != "2008-06-09" {
			t.Errorf("%s: date = %v (%v)", name, r[0], r[0].Kind)
		}
		if r[1].Kind != types.KindFloat || r[1].Float != 2.5 {
			t.Errorf("%s: float = %v (%v)", name, r[1], r[1].Kind)
		}
		if r[2].Kind != types.KindBool || !r[2].Bool() {
			t.Errorf("%s: bool = %v (%v)", name, r[2], r[2].Kind)
		}
		// Date predicate.
		rows, err = m.Query(1, "SELECT Id FROM Event WHERE Day = DATE '2008-06-09'")
		if err != nil || len(rows.Data) != 1 {
			t.Errorf("%s: date predicate: %v %+v", name, err, rows)
		}
	}
}
