package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// Layout is a schema-mapping technique: it provisions the physical
// multi-tenant schema and rewrites logical single-tenant statements
// into physical statements (the paper's query-transformation layer).
type Layout interface {
	// Name identifies the technique ("chunk", "private", ...).
	Name() string
	// Schema returns the logical schema the layout was built for.
	Schema() *Schema
	// Create provisions the physical schema on db and registers the
	// initial tenants.
	Create(db *engine.DB, tenants []*Tenant) error
	// AddTenant registers a tenant while the system is on-line. For
	// generic layouts this is pure meta-data bookkeeping (no DDL); the
	// Private layout issues CREATE TABLE statements.
	AddTenant(db *engine.DB, t *Tenant) error
	// Rewrite transforms one logical statement for a tenant.
	Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error)
}

// Rewritten is the physical form of a logical statement. Exactly one
// of the shapes is populated:
//
//   - Query: a SELECT, rewritten in place.
//   - Direct (+DirectIsCount / Inserted): statements that run as-is.
//   - RowQuery + PhaseB: the paper's §6.3 two-phase DML — phase (a)
//     collects the affected logical rows (and any computed SET values),
//     phase (b) applies per-chunk physical writes built from them.
type Rewritten struct {
	Query *sql.SelectStmt

	Direct []sql.Statement
	// DirectIsCount: logical rows affected = first Direct statement's
	// RowsAffected (single-statement layouts).
	DirectIsCount bool
	// Inserted: logical rows inserted (multi-statement inserts).
	Inserted int64

	RowQuery *sql.SelectStmt
	PhaseB   func(rows [][]types.Value) []sql.Statement
}

// Mapper executes logical statements for tenants through a layout.
// With a Session attached (NewSessionMapper), statements run inside
// that session, so interactive transactions (BEGIN/COMMIT/ROLLBACK/
// SAVEPOINT) span logical statements: every physical statement a
// logical DML rewrites into joins the same transaction, making the
// rewrite itself atomic under rollback.
//
// With a Cache attached (typically one RewriteCache shared by every
// session of a server), SELECT/UPDATE/DELETE texts resolve through the
// rewrite cache: a steady-state statement skips lexing, parsing, and
// the layout rewrite entirely, and its physical statements reach the
// engine with precomputed plan-cache keys.
type Mapper struct {
	DB      *engine.DB
	Layout  Layout
	Session *engine.Session
	Cache   *RewriteCache
}

// NewMapper pairs a database with a layout.
func NewMapper(db *engine.DB, l Layout) *Mapper { return &Mapper{DB: db, Layout: l} }

// NewSessionMapper pairs a database with a layout and routes statements
// through one interactive session.
func NewSessionMapper(db *engine.DB, l Layout) *Mapper {
	return &Mapper{DB: db, Layout: l, Session: db.Session()}
}

// execStmt runs one physical statement through the session if present.
// key is the engine plan-cache key ("" = derive from the statement).
func (m *Mapper) execStmt(ps sql.Statement, key string, params ...types.Value) (engine.Result, error) {
	if m.Session != nil {
		return m.Session.ExecStmt(ps, key, params...)
	}
	return m.DB.ExecStmt(ps, params...)
}

// queryStmt runs one physical SELECT through the session if present.
func (m *Mapper) queryStmt(sel *sql.SelectStmt, key string, params ...types.Value) (*engine.Rows, error) {
	if m.Session != nil {
		return m.Session.QueryStmt(sel, key, params...)
	}
	return m.DB.QueryStmt(sel, params...)
}

// gate takes the tenant's statement gate when the layout is gated (a
// LayoutMux with a move in flight blocks for the cutover instant; any
// other layout returns a no-op). Held across the whole call — cache
// lookup through execution — which is what the move protocol's dirty
// tracking relies on.
func (m *Mapper) gate(tenantID int64) func() {
	if g, ok := m.Layout.(gatedLayout); ok {
		return g.acquire(tenantID)
	}
	return func() {}
}

// Query runs a logical SELECT for a tenant.
func (m *Mapper) Query(tenantID int64, query string, params ...types.Value) (*engine.Rows, error) {
	defer m.gate(tenantID)()
	if m.Cache != nil {
		cr, bind, st, err := m.Cache.lookup(tenantID, query, params)
		if err != nil {
			return nil, err
		}
		if cr != nil {
			if cr.rw.Query == nil {
				return nil, fmt.Errorf("core: Query needs a SELECT")
			}
			return m.queryStmt(cr.rw.Query, cr.queryKey, bind...)
		}
		return nil, fmt.Errorf("core: Query needs a SELECT, got %T", st)
	}
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: Query needs a SELECT, got %T", st)
	}
	rw, err := m.Layout.Rewrite(tenantID, sel)
	if err != nil {
		return nil, err
	}
	return m.queryStmt(rw.Query, "", params...)
}

// Exec runs a logical INSERT, UPDATE, DELETE, supported DDL, or — on a
// session-backed mapper — transaction control for a tenant and returns
// the count of affected logical rows.
func (m *Mapper) Exec(tenantID int64, query string, params ...types.Value) (engine.Result, error) {
	defer m.gate(tenantID)()
	if m.Cache != nil {
		cr, bind, st, err := m.Cache.lookup(tenantID, query, params)
		if err != nil {
			return engine.Result{}, err
		}
		if cr != nil {
			if cr.rw.Query != nil {
				return engine.Result{}, fmt.Errorf("core: use Query for SELECT statements")
			}
			return m.execRewritten(cr, bind)
		}
		return m.execParsed(tenantID, st, params)
	}
	st, err := sql.Parse(query)
	if err != nil {
		return engine.Result{}, err
	}
	return m.execParsed(tenantID, st, params)
}

// execParsed runs an already-parsed logical statement through the full
// rewrite path (the uncached route; also everything the rewrite cache
// refuses: INSERT, DDL, transaction control).
func (m *Mapper) execParsed(tenantID int64, st sql.Statement, params []types.Value) (engine.Result, error) {
	// Transaction control is tenant-independent: no rewriting, straight
	// to the session.
	switch st.(type) {
	case *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt, *sql.SavepointStmt:
		if m.Session == nil {
			return engine.Result{}, fmt.Errorf("core: transaction control needs a session-backed mapper")
		}
		return m.Session.ExecStmt(st, "")
	}
	rw, err := m.Layout.Rewrite(tenantID, st)
	if err != nil {
		return engine.Result{}, err
	}
	if rw.Query != nil {
		return engine.Result{}, fmt.Errorf("core: use Query for SELECT statements")
	}
	return m.execRewritten(&cachedRewrite{rw: rw}, params)
}

// execRewritten executes a rewritten non-query statement's physical
// plan: Direct statements, then the two-phase RowQuery/PhaseB shape.
// Empty key strings fall back to the engine deriving keys itself.
func (m *Mapper) execRewritten(cr *cachedRewrite, params []types.Value) (engine.Result, error) {
	rw := cr.rw
	var affected int64
	for i, ps := range rw.Direct {
		key := ""
		if cr.directKeys != nil {
			key = cr.directKeys[i]
		}
		res, err := m.execStmt(ps, key, params...)
		if err != nil {
			return engine.Result{}, err
		}
		if rw.DirectIsCount && i == 0 {
			affected = res.RowsAffected
		}
	}
	if rw.Inserted > 0 {
		affected = rw.Inserted
	}
	if rw.RowQuery != nil {
		rows, err := m.queryStmt(rw.RowQuery, cr.rowQueryKey, params...)
		if err != nil {
			return engine.Result{}, err
		}
		affected = int64(len(rows.Data))
		if len(rows.Data) > 0 {
			// Phase (b) statements are built from phase (a)'s result
			// values — always literal-only, never parameterized.
			for _, ps := range rw.PhaseB(rows.Data) {
				if _, err := m.execStmt(ps, ""); err != nil {
					return engine.Result{}, err
				}
			}
		}
	}
	return engine.Result{RowsAffected: affected}, nil
}

// Do runs one logical statement of either kind for a tenant: SELECTs
// answer rows, everything else answers a Result. It is the server's
// batch entry point — one parse/cache lookup decides the shape instead
// of the caller pre-parsing to route between Query and Exec.
func (m *Mapper) Do(tenantID int64, query string, params ...types.Value) (engine.Result, *engine.Rows, error) {
	defer m.gate(tenantID)()
	if m.Cache != nil {
		cr, bind, st, err := m.Cache.lookup(tenantID, query, params)
		if err != nil {
			return engine.Result{}, nil, err
		}
		if cr != nil {
			if cr.rw.Query != nil {
				rows, err := m.queryStmt(cr.rw.Query, cr.queryKey, bind...)
				return engine.Result{}, rows, err
			}
			res, err := m.execRewritten(cr, bind)
			return res, nil, err
		}
		res, err := m.execParsed(tenantID, st, params)
		return res, nil, err
	}
	st, err := sql.Parse(query)
	if err != nil {
		return engine.Result{}, nil, err
	}
	if sel, ok := st.(*sql.SelectStmt); ok {
		rw, err := m.Layout.Rewrite(tenantID, sel)
		if err != nil {
			return engine.Result{}, nil, err
		}
		rows, err := m.queryStmt(rw.Query, "", params...)
		return engine.Result{}, rows, err
	}
	res, err := m.execParsed(tenantID, st, params)
	return res, nil, err
}

// RewriteSQL returns the physical SQL a logical statement maps to
// (phase (a) for two-phase DML), primarily for inspection and tests.
func (m *Mapper) RewriteSQL(tenantID int64, query string) ([]string, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	rw, err := m.Layout.Rewrite(tenantID, st)
	if err != nil {
		return nil, err
	}
	var out []string
	if rw.Query != nil {
		out = append(out, rw.Query.String())
	}
	for _, d := range rw.Direct {
		out = append(out, d.String())
	}
	if rw.RowQuery != nil {
		out = append(out, rw.RowQuery.String())
	}
	return out, nil
}

// Explain shows the physical plan of a rewritten logical SELECT.
func (m *Mapper) Explain(tenantID int64, query string) (string, error) {
	stmts, err := m.RewriteSQL(tenantID, query)
	if err != nil {
		return "", err
	}
	return m.DB.Explain(stmts[0])
}

// --- shared layout state -------------------------------------------------------

// state holds the tenant registry, table-ID map, and per-(tenant,table)
// logical row sequences shared by all layout implementations.
type state struct {
	mu       sync.RWMutex
	schema   *Schema
	tenants  map[int64]*Tenant
	tableIDs map[string]int
	rowSeq   map[string]int64
}

func newState(schema *Schema) *state {
	return &state{
		schema:   schema,
		tenants:  make(map[int64]*Tenant),
		tableIDs: schema.TableIDs(),
		rowSeq:   make(map[string]int64),
	}
}

func (st *state) tenant(id int64) (*Tenant, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	t, ok := st.tenants[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown tenant %d", id)
	}
	return t, nil
}

func (st *state) addTenant(t *Tenant) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.tenants[t.ID]; dup {
		return fmt.Errorf("core: tenant %d already registered", t.ID)
	}
	st.tenants[t.ID] = t
	return nil
}

func (st *state) tenantList() []*Tenant {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Tenant, 0, len(st.tenants))
	for _, t := range st.tenants {
		out = append(out, t)
	}
	return out
}

// tableID returns the numeric ID of a logical base table.
func (st *state) tableID(name string) (int, error) {
	id, ok := st.tableIDs[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("core: no logical table %s", name)
	}
	return id, nil
}

// nextRows reserves n consecutive logical row IDs for (tenant, table).
func (st *state) nextRows(tenantID int64, table string, n int64) int64 {
	key := fmt.Sprintf("%d/%s", tenantID, strings.ToLower(table))
	st.mu.Lock()
	defer st.mu.Unlock()
	first := st.rowSeq[key]
	st.rowSeq[key] = first + n
	return first
}

// --- logical statement analysis ------------------------------------------------

// tableUsage records which logical columns a statement touches for one
// FROM entry — step 1 of the paper's §6.1 compilation scheme.
type tableUsage struct {
	ref     *sql.NamedTable
	logical *Table // base table in the schema
	alias   string // effective alias in the query
	cols    map[string]bool
	star    bool
}

// use marks a column as referenced.
func (u *tableUsage) use(col string) { u.cols[strings.ToLower(col)] = true }

// analyzeSelect resolves the logical tables a SELECT references and
// which of their (tenant-specific) columns it uses. Derived tables are
// not descended into — the caller rewrites them recursively.
func analyzeSelect(s *Schema, tn *Tenant, sel *sql.SelectStmt) ([]*tableUsage, error) {
	var usages []*tableUsage
	var gather func(tr sql.TableRef) error
	gather = func(tr sql.TableRef) error {
		switch tr := tr.(type) {
		case *sql.NamedTable:
			lt := s.Table(tr.Name)
			if lt == nil {
				return fmt.Errorf("core: no logical table %s", tr.Name)
			}
			alias := tr.Alias
			if alias == "" {
				alias = tr.Name
			}
			usages = append(usages, &tableUsage{
				ref: tr, logical: lt, alias: alias, cols: map[string]bool{},
			})
		case *sql.JoinTable:
			if err := gather(tr.Left); err != nil {
				return err
			}
			return gather(tr.Right)
		case *sql.SubqueryTable:
			// handled by recursive rewrite; no usage entry
		}
		return nil
	}
	for _, tr := range sel.From {
		if err := gather(tr); err != nil {
			return nil, err
		}
	}

	// Tenant-specific column lists for unqualified resolution.
	logCols := map[*tableUsage][]Column{}
	for _, u := range usages {
		cols, err := s.LogicalColumns(tn, u.logical.Name)
		if err != nil {
			return nil, err
		}
		logCols[u] = cols
	}
	provides := func(u *tableUsage, name string) bool {
		for _, c := range logCols[u] {
			if strings.EqualFold(c.Name, name) {
				return true
			}
		}
		return false
	}

	markRef := func(cr *sql.ColumnRef) error {
		if cr.Table != "" {
			for _, u := range usages {
				if strings.EqualFold(u.alias, cr.Table) {
					if !provides(u, cr.Name) {
						return fmt.Errorf("core: table %s has no column %s for tenant %d", u.logical.Name, cr.Name, tn.ID)
					}
					u.use(cr.Name)
					return nil
				}
			}
			return nil // a derived-table alias; not ours to track
		}
		var owner *tableUsage
		for _, u := range usages {
			if provides(u, cr.Name) {
				if owner != nil {
					return fmt.Errorf("core: ambiguous column %s", cr.Name)
				}
				owner = u
			}
		}
		if owner != nil {
			owner.use(cr.Name)
		}
		return nil
	}

	var walkExpr func(e sql.Expr) error
	walkExpr = func(e sql.Expr) error {
		switch e := e.(type) {
		case nil:
			return nil
		case *sql.ColumnRef:
			return markRef(e)
		case *sql.BinaryExpr:
			if err := walkExpr(e.L); err != nil {
				return err
			}
			return walkExpr(e.R)
		case *sql.UnaryExpr:
			return walkExpr(e.X)
		case *sql.IsNullExpr:
			return walkExpr(e.X)
		case *sql.LikeExpr:
			if err := walkExpr(e.X); err != nil {
				return err
			}
			return walkExpr(e.Pattern)
		case *sql.CastExpr:
			return walkExpr(e.X)
		case *sql.FuncExpr:
			for _, a := range e.Args {
				if err := walkExpr(a); err != nil {
					return err
				}
			}
		case *sql.InExpr:
			if err := walkExpr(e.X); err != nil {
				return err
			}
			for _, i := range e.List {
				if err := walkExpr(i); err != nil {
					return err
				}
			}
			// IN-subqueries are rewritten recursively by the caller.
		}
		return nil
	}

	for _, it := range sel.Items {
		switch {
		case it.Star && it.StarQualifier == "":
			for _, u := range usages {
				u.star = true
			}
		case it.Star:
			for _, u := range usages {
				if strings.EqualFold(u.alias, it.StarQualifier) {
					u.star = true
				}
			}
		default:
			if err := walkExpr(it.Expr); err != nil {
				return nil, err
			}
		}
	}
	if err := walkExpr(sel.Where); err != nil {
		return nil, err
	}
	for _, g := range sel.GroupBy {
		if err := walkExpr(g); err != nil {
			return nil, err
		}
	}
	if err := walkExpr(sel.Having); err != nil {
		return nil, err
	}
	for _, o := range sel.OrderBy {
		if err := walkExpr(o.Expr); err != nil {
			return nil, err
		}
	}
	var walkJoins func(tr sql.TableRef) error
	walkJoins = func(tr sql.TableRef) error {
		if jt, ok := tr.(*sql.JoinTable); ok {
			if err := walkExpr(jt.On); err != nil {
				return err
			}
			if err := walkJoins(jt.Left); err != nil {
				return err
			}
			return walkJoins(jt.Right)
		}
		return nil
	}
	for _, tr := range sel.From {
		if err := walkJoins(tr); err != nil {
			return nil, err
		}
	}

	for _, u := range usages {
		if u.star {
			for _, c := range logCols[u] {
				u.use(c.Name)
			}
		}
		// Always include the key column: generic layouts anchor row
		// reconstruction on it.
		u.use(u.logical.Key)
	}
	return usages, nil
}

// usedColumns returns the tenant's logical columns of u's table that
// the statement references, in logical order.
func usedColumns(s *Schema, tn *Tenant, u *tableUsage) ([]Column, error) {
	all, err := s.LogicalColumns(tn, u.logical.Name)
	if err != nil {
		return nil, err
	}
	var out []Column
	for _, c := range all {
		if u.cols[strings.ToLower(c.Name)] {
			out = append(out, c)
		}
	}
	return out, nil
}

// --- small AST construction helpers ---------------------------------------------

func lit(v types.Value) sql.Expr { return &sql.Literal{Val: v} }

func intLit(n int64) sql.Expr { return lit(types.NewInt(n)) }

func colRef(qual, name string) *sql.ColumnRef { return &sql.ColumnRef{Table: qual, Name: name} }

func eq(l, r sql.Expr) sql.Expr { return &sql.BinaryExpr{Op: sql.OpEq, L: l, R: r} }

func and(conjs ...sql.Expr) sql.Expr {
	var out sql.Expr
	for _, c := range conjs {
		if c == nil {
			continue
		}
		if out == nil {
			out = c
		} else {
			out = &sql.BinaryExpr{Op: sql.OpAnd, L: out, R: c}
		}
	}
	return out
}

// inList builds `col IN (v1, v2, ...)`; a single value becomes `col = v1`.
func inList(col *sql.ColumnRef, vals []types.Value) sql.Expr {
	if len(vals) == 1 {
		return eq(col, lit(vals[0]))
	}
	in := &sql.InExpr{X: col}
	for _, v := range vals {
		in.List = append(in.List, lit(v))
	}
	return in
}

// typeSQL renders a column type for generated DDL.
func typeSQL(t types.ColumnType) string { return t.String() }

// buildCreateTable generates CREATE TABLE DDL text.
func buildCreateTable(name string, cols []Column) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(name)
	sb.WriteString(" (")
	for i, c := range cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name + " " + typeSQL(c.Type))
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// rewriteInSubqueries rewrites IN (SELECT ...) subqueries inside an
// expression through the layout's SELECT rewriter.
func rewriteInSubqueries(e sql.Expr, rw func(*sql.SelectStmt) (*sql.SelectStmt, error)) (sql.Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *sql.InExpr:
		if e.Subquery == nil {
			return e, nil
		}
		sub, err := rw(e.Subquery)
		if err != nil {
			return nil, err
		}
		return &sql.InExpr{X: e.X, Subquery: sub, Not: e.Not}, nil
	case *sql.BinaryExpr:
		l, err := rewriteInSubqueries(e.L, rw)
		if err != nil {
			return nil, err
		}
		r, err := rewriteInSubqueries(e.R, rw)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: e.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		x, err := rewriteInSubqueries(e.X, rw)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryExpr{Op: e.Op, X: x}, nil
	}
	return e, nil
}

// TenantByID resolves a registered tenant in a state registry.
func (st *state) TenantByID(id int64) (*Tenant, error) { return st.tenant(id) }

// Tenants lists the registered tenants (unordered).
func (st *state) Tenants() []*Tenant { return st.tenantList() }
