package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
)

// paperSchema is the running example of the paper's Figure 4: Account
// with a health-care extension (tenant 17) and an automotive extension
// (tenant 42).
func paperSchema() *Schema {
	return &Schema{
		Tables: []*Table{{
			Name: "Account",
			Key:  "Aid",
			Columns: []Column{
				{Name: "Aid", Type: types.IntType, NotNull: true, Indexed: true},
				{Name: "Name", Type: types.VarcharType(50)},
			},
		}},
		Extensions: []*Extension{
			{Name: "HealthcareAccount", Base: "Account", Columns: []Column{
				{Name: "Hospital", Type: types.VarcharType(50)},
				{Name: "Beds", Type: types.IntType},
			}},
			{Name: "AutomotiveAccount", Base: "Account", Columns: []Column{
				{Name: "Dealers", Type: types.IntType},
			}},
		},
	}
}

func paperTenants() []*Tenant {
	return []*Tenant{
		{ID: 17, Extensions: []string{"HealthcareAccount"}},
		{ID: 35},
		{ID: 42, Extensions: []string{"AutomotiveAccount"}},
	}
}

// allLayouts builds every layout (with extension support) over a fresh
// database each.
func allLayouts(t *testing.T, schema *Schema) map[string]*Mapper {
	t.Helper()
	out := map[string]*Mapper{}
	add := func(name string, l Layout, err error) {
		if err != nil {
			t.Fatalf("layout %s: %v", name, err)
		}
		db := engine.Open(engine.Config{})
		if err := l.Create(db, paperTenants()); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		out[name] = NewMapper(db, l)
	}
	pl, err := NewPrivateLayout(schema)
	add("private", pl, err)
	el, err := NewExtensionLayout(schema)
	add("extension", el, err)
	ul, err := NewUniversalLayout(schema, 16)
	add("universal", ul, err)
	pv, err := NewPivotLayout(schema, true)
	add("pivot", pv, err)
	ch, err := NewChunkLayout(schema, ChunkOptions{})
	add("chunk", ch, err)
	chf, err := NewChunkLayout(schema, ChunkOptions{Flattened: true})
	add("chunk-flat", chf, err)
	vl, err := NewVerticalLayout(schema, nil)
	add("vertical", vl, err)
	fl, err := NewChunkFoldingLayout(schema, FoldingOptions{
		ConventionalExtensions: []string{"HealthcareAccount"},
	})
	add("chunkfold", fl, err)
	return out
}

// loadPaperData inserts the Figure 4 example rows through the mapper.
func loadPaperData(t *testing.T, m *Mapper) {
	t.Helper()
	steps := []struct {
		tenant int64
		q      string
	}{
		{17, "INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (1, 'Acme', 'St. Mary', 135), (2, 'Gump', 'State', 1042)"},
		{35, "INSERT INTO Account (Aid, Name) VALUES (1, 'Ball')"},
		{42, "INSERT INTO Account (Aid, Name, Dealers) VALUES (1, 'Big', 65)"},
	}
	for _, s := range steps {
		if _, err := m.Exec(s.tenant, s.q); err != nil {
			t.Fatalf("%s load: %v", m.Layout.Name(), err)
		}
	}
}

// sortedRows canonicalizes a result set for comparison.
func sortedRows(rows *engine.Rows) []string {
	out := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Kind.String() + ":" + v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func queryAll(t *testing.T, m *Mapper, tenant int64, q string, params ...types.Value) []string {
	t.Helper()
	rows, err := m.Query(tenant, q, params...)
	if err != nil {
		t.Fatalf("%s: Query(%d, %q): %v", m.Layout.Name(), tenant, q, err)
	}
	return sortedRows(rows)
}

// TestPaperRunningExample drives the paper's Q1 through every layout.
func TestPaperRunningExample(t *testing.T) {
	for name, m := range allLayouts(t, paperSchema()) {
		t.Run(name, func(t *testing.T) {
			loadPaperData(t, m)
			rows, err := m.Query(17, "SELECT Beds FROM Account WHERE Hospital = 'State'")
			if err != nil {
				t.Fatal(err)
			}
			if len(rows.Data) != 1 || rows.Data[0][0].Int != 1042 {
				t.Errorf("Q1 = %+v", rows.Data)
			}
			// Tenant 35 sees only base columns.
			if _, err := m.Query(35, "SELECT Hospital FROM Account"); err == nil {
				t.Error("tenant 35 must not see health-care columns")
			}
			// Tenant 42 sees Dealers.
			rows, err = m.Query(42, "SELECT Name, Dealers FROM Account WHERE Aid = 1")
			if err != nil {
				t.Fatal(err)
			}
			if len(rows.Data) != 1 || rows.Data[0][0].Str != "Big" || rows.Data[0][1].Int != 65 {
				t.Errorf("tenant 42: %+v", rows.Data)
			}
			// Tenant isolation: tenant 35 sees exactly its one account.
			rows, err = m.Query(35, "SELECT COUNT(*) FROM Account")
			if err != nil {
				t.Fatal(err)
			}
			if rows.Data[0][0].Int != 1 {
				t.Errorf("tenant 35 count = %v", rows.Data[0][0])
			}
		})
	}
}

// TestLayoutEquivalence runs an identical randomized workload through
// every layout and cross-checks all query results against the Private
// layout (the semantics reference, since it is plain SQL over plain
// tables).
func TestLayoutEquivalence(t *testing.T) {
	schema := paperSchema()
	layouts := allLayouts(t, schema)
	ref := layouts["private"]

	r := rand.New(rand.NewSource(7))
	type op struct {
		tenant int64
		sql    string
	}
	var ops []op
	tenants := []int64{17, 35, 42}
	nextID := map[int64]int{17: 10, 35: 10, 42: 10}
	for i := 0; i < 120; i++ {
		tn := tenants[r.Intn(len(tenants))]
		switch r.Intn(10) {
		case 0, 1, 2, 3: // insert
			id := nextID[tn]
			nextID[tn]++
			var q string
			switch tn {
			case 17:
				q = fmt.Sprintf("INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (%d, 'n%d', 'h%d', %d)", id, id, id%5, r.Intn(1000))
			case 35:
				q = fmt.Sprintf("INSERT INTO Account (Aid, Name) VALUES (%d, 'n%d')", id, id)
			case 42:
				q = fmt.Sprintf("INSERT INTO Account (Aid, Name, Dealers) VALUES (%d, 'n%d', %d)", id, id, r.Intn(100))
			}
			ops = append(ops, op{tn, q})
		case 4, 5: // update
			ops = append(ops, op{tn, fmt.Sprintf("UPDATE Account SET Name = 'u%d' WHERE Aid = %d", i, 10+r.Intn(20))})
		case 6: // computed update touching base data
			ops = append(ops, op{tn, fmt.Sprintf("UPDATE Account SET Name = Name WHERE Aid > %d", 10+r.Intn(20))})
		case 7: // extension-column update (tenant-specific)
			switch tn {
			case 17:
				ops = append(ops, op{tn, fmt.Sprintf("UPDATE Account SET Beds = Beds + 1 WHERE Aid = %d", 10+r.Intn(20))})
			case 42:
				ops = append(ops, op{tn, fmt.Sprintf("UPDATE Account SET Dealers = %d WHERE Aid = %d", r.Intn(50), 10+r.Intn(20))})
			default:
				ops = append(ops, op{tn, fmt.Sprintf("UPDATE Account SET Name = 'z' WHERE Aid = %d", 10+r.Intn(20))})
			}
		case 8: // delete
			ops = append(ops, op{tn, fmt.Sprintf("DELETE FROM Account WHERE Aid = %d", 10+r.Intn(20))})
		case 9: // delete with NULL-safe predicate
			ops = append(ops, op{tn, "DELETE FROM Account WHERE Name LIKE 'zz%'"})
		}
	}

	for name, m := range layouts {
		for _, o := range ops {
			if _, err := m.Exec(o.tenant, o.sql); err != nil {
				t.Fatalf("%s: Exec(%d, %q): %v", name, o.tenant, o.sql, err)
			}
		}
	}

	queries := []struct {
		tenant int64
		q      string
	}{
		{17, "SELECT Aid, Name, Hospital, Beds FROM Account"},
		{17, "SELECT Name FROM Account WHERE Beds > 100"},
		{17, "SELECT Hospital, COUNT(*), SUM(Beds) FROM Account GROUP BY Hospital"},
		{17, "SELECT Aid FROM Account WHERE Name LIKE 'u%'"},
		{35, "SELECT Aid, Name FROM Account"},
		{35, "SELECT COUNT(*) FROM Account"},
		{42, "SELECT Aid, Name, Dealers FROM Account WHERE Dealers >= 0"},
		{42, "SELECT SUM(Dealers) FROM Account"},
		{17, "SELECT a.Name, b.Name FROM Account a, Account b WHERE a.Aid = b.Aid AND a.Beds > 500"},
		{17, "SELECT Aid FROM Account ORDER BY Aid DESC LIMIT 3"},
	}
	for name, m := range layouts {
		if name == "private" {
			continue
		}
		for _, qq := range queries {
			want := queryAll(t, ref, qq.tenant, qq.q)
			got := queryAll(t, m, qq.tenant, qq.q)
			if strings.Join(want, "\n") != strings.Join(got, "\n") {
				t.Errorf("%s diverges from private on tenant %d %q:\nwant %v\ngot  %v",
					name, qq.tenant, qq.q, want, got)
			}
		}
	}
}

// TestSelectStar checks star expansion exposes exactly the tenant's
// logical columns in every layout.
func TestSelectStar(t *testing.T) {
	for name, m := range allLayouts(t, paperSchema()) {
		loadPaperData(t, m)
		rows, err := m.Query(17, "SELECT * FROM Account WHERE Aid = 1")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows.Columns) != 4 {
			t.Errorf("%s: tenant 17 star columns = %v", name, rows.Columns)
		}
		rows, err = m.Query(35, "SELECT * FROM Account")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows.Columns) != 2 {
			t.Errorf("%s: tenant 35 star columns = %v", name, rows.Columns)
		}
		for _, c := range rows.Columns {
			lc := strings.ToLower(c)
			if lc == "tenant" || lc == "row" || lc == "chunk" || lc == "table" {
				t.Errorf("%s: meta-data column %s leaked", name, c)
			}
		}
	}
}

// TestTwoPhaseDML checks the §6.3 protocol details: computed SET
// expressions, multi-row updates with differing values, and deletes.
func TestTwoPhaseDML(t *testing.T) {
	for name, m := range allLayouts(t, paperSchema()) {
		loadPaperData(t, m)
		// Computed update over two rows with different results.
		res, err := m.Exec(17, "UPDATE Account SET Beds = Beds + Aid WHERE Beds IS NOT NULL")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.RowsAffected != 2 {
			t.Errorf("%s: affected %d", name, res.RowsAffected)
		}
		got := queryAll(t, m, 17, "SELECT Aid, Beds FROM Account")
		want := []string{"INTEGER:1|INTEGER:136", "INTEGER:2|INTEGER:1044"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: after computed update: %v", name, got)
		}
		// Cross-chunk expression: set a base column from an extension column.
		if _, err := m.Exec(17, "UPDATE Account SET Name = Hospital WHERE Aid = 1"); err != nil {
			t.Fatalf("%s cross-part update: %v", name, err)
		}
		rows, _ := m.Query(17, "SELECT Name FROM Account WHERE Aid = 1")
		if rows.Data[0][0].Str != "St. Mary" {
			t.Errorf("%s: cross-part update got %v", name, rows.Data[0][0])
		}
		// Delete and verify gone.
		res, err = m.Exec(17, "DELETE FROM Account WHERE Aid = 2")
		if err != nil || res.RowsAffected != 1 {
			t.Fatalf("%s delete: %v %d", name, err, res.RowsAffected)
		}
		rows, _ = m.Query(17, "SELECT COUNT(*) FROM Account")
		if rows.Data[0][0].Int != 1 {
			t.Errorf("%s: count after delete = %v", name, rows.Data[0][0])
		}
	}
}

// TestNullHandling exercises NULL extension values, which stress the
// pivot layout's absent-cell representation in particular.
func TestNullHandling(t *testing.T) {
	for name, m := range allLayouts(t, paperSchema()) {
		if _, err := m.Exec(17, "INSERT INTO Account (Aid, Name, Hospital, Beds) VALUES (1, 'A', NULL, NULL), (2, NULL, 'H', 5)"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := queryAll(t, m, 17, "SELECT Aid, Name, Hospital, Beds FROM Account")
		want := []string{"INTEGER:1|VARCHAR:A|NULL:NULL|NULL:NULL", "INTEGER:2|NULL:NULL|VARCHAR:H|INTEGER:5"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: %v", name, got)
		}
		rows, err := m.Query(17, "SELECT Aid FROM Account WHERE Beds IS NULL")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != 1 || rows.Data[0][0].Int != 1 {
			t.Errorf("%s: IS NULL: %+v", name, rows.Data)
		}
		// Update NULL -> value and value -> NULL.
		if _, err := m.Exec(17, "UPDATE Account SET Beds = 9 WHERE Aid = 1"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Exec(17, "UPDATE Account SET Beds = NULL WHERE Aid = 2"); err != nil {
			t.Fatal(err)
		}
		got = queryAll(t, m, 17, "SELECT Aid, Beds FROM Account")
		want = []string{"INTEGER:1|INTEGER:9", "INTEGER:2|NULL:NULL"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: NULL transitions: %v", name, got)
		}
	}
}

// TestUnknownTenantAndTable covers the error paths.
func TestUnknownTenantAndTable(t *testing.T) {
	for name, m := range allLayouts(t, paperSchema()) {
		if _, err := m.Query(99, "SELECT Name FROM Account"); err == nil {
			t.Errorf("%s: unknown tenant should fail", name)
		}
		if _, err := m.Query(17, "SELECT x FROM NoSuchTable"); err == nil {
			t.Errorf("%s: unknown table should fail", name)
		}
		if _, err := m.Exec(17, "INSERT INTO Account (NoCol) VALUES (1)"); err == nil {
			t.Errorf("%s: unknown column should fail", name)
		}
	}
}

// TestParamsThroughLayouts checks `?` parameters survive rewriting.
func TestParamsThroughLayouts(t *testing.T) {
	for name, m := range allLayouts(t, paperSchema()) {
		loadPaperData(t, m)
		rows, err := m.Query(17, "SELECT Name FROM Account WHERE Aid = ?", types.NewInt(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows.Data) != 1 || rows.Data[0][0].Str != "Gump" {
			t.Errorf("%s: param query: %+v", name, rows.Data)
		}
		if _, err := m.Exec(17, "UPDATE Account SET Beds = ? WHERE Aid = ?", types.NewInt(7), types.NewInt(1)); err != nil {
			t.Fatalf("%s: param update: %v", name, err)
		}
		rows, _ = m.Query(17, "SELECT Beds FROM Account WHERE Aid = 1")
		if rows.Data[0][0].Int != 7 {
			t.Errorf("%s: param update result: %v", name, rows.Data[0][0])
		}
	}
}

// TestRewriteSQLShapes spot-checks the physical SQL of the paper's
// examples.
func TestRewriteSQLShapes(t *testing.T) {
	layouts := allLayouts(t, paperSchema())
	q := "SELECT Beds FROM Account WHERE Hospital = 'State'"

	sqls, err := layouts["private"].RewriteSQL(17, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqls[0], "Account_t17") {
		t.Errorf("private rewrite: %s", sqls[0])
	}

	sqls, err = layouts["chunk"].RewriteSQL(17, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqls[0], "Tenant = 17") || !strings.Contains(sqls[0], "Chunk =") {
		t.Errorf("chunk rewrite lacks meta-data predicates: %s", sqls[0])
	}

	sqls, err = layouts["chunk-flat"].RewriteSQL(17, q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sqls[0], "(SELECT") {
		t.Errorf("flattened rewrite still nested: %s", sqls[0])
	}

	sqls, err = layouts["pivot"].RewriteSQL(17, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqls[0], "Pivot_") || !strings.Contains(sqls[0], "Col = ") {
		t.Errorf("pivot rewrite: %s", sqls[0])
	}

	sqls, err = layouts["universal"].RewriteSQL(17, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqls[0], "Universal") {
		t.Errorf("universal rewrite: %s", sqls[0])
	}
}
