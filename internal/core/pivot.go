package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// PivotLayout (Fig 4d) stores one physical row per logical *cell* in
// typed pivot tables keyed by (Tenant, Table, Col, Row). Reconstructing
// an n-column logical table costs n-1 aligning self-joins — the
// overhead the paper's §6 experiments quantify at chunk width 1.
//
// Following §3, a separate indexed flavor of each typed pivot table can
// be created; cells of Indexed logical columns are routed there so they
// gain a value index without taxing the rest.
type PivotLayout struct {
	s               *state
	separateIndexed bool
}

// NewPivotLayout builds the layout. separateIndexed enables the
// indexed pivot-table flavors for Indexed logical columns.
func NewPivotLayout(schema *Schema, separateIndexed bool) (*PivotLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &PivotLayout{s: newState(schema), separateIndexed: separateIndexed}, nil
}

// Name implements Layout.
func (l *PivotLayout) Name() string { return "pivot" }

// Schema implements Layout.
func (l *PivotLayout) Schema() *Schema { return l.s.schema }

func (l *PivotLayout) state() *state { return l.s }

// storageKind maps a logical type onto a pivot value type: integers,
// dates, and booleans share the int pivot; floats and strings get their
// own. (The paper's example uses int|str; dbl is the same idea.)
func storageKind(k types.Kind) (suffix, valCol string, valType types.ColumnType) {
	switch k {
	case types.KindInt, types.KindDate, types.KindBool:
		return "int", "Int", types.IntType
	case types.KindFloat:
		return "dbl", "Dbl", types.FloatType
	default:
		return "str", "Str", types.ColumnType{Kind: types.KindString}
	}
}

// pivotTableFor names the pivot table holding a column's cells.
func (l *PivotLayout) pivotTableFor(c Column) (name, valCol string) {
	suffix, valCol, _ := storageKind(c.Type.Kind)
	name = "Pivot_" + suffix
	if l.separateIndexed && c.Indexed {
		name += "_ix"
	}
	return name, valCol
}

// castBack wraps a stored value expression with the cast restoring the
// logical type, when they differ.
func castBack(e sql.Expr, c Column) sql.Expr {
	switch c.Type.Kind {
	case types.KindDate, types.KindBool:
		return &sql.CastExpr{X: e, Type: c.Type}
	}
	return e
}

// Create implements Layout.
func (l *PivotLayout) Create(db *engine.DB, tenants []*Tenant) error {
	flavors := []struct {
		suffix, valCol string
		valType        types.ColumnType
	}{
		{"int", "Int", types.IntType},
		{"dbl", "Dbl", types.FloatType},
		{"str", "Str", types.ColumnType{Kind: types.KindString}},
	}
	variants := []bool{false}
	if l.separateIndexed {
		variants = append(variants, true)
	}
	for _, f := range flavors {
		for _, indexed := range variants {
			name := "Pivot_" + f.suffix
			if indexed {
				name += "_ix"
			}
			cols := []Column{
				{Name: "Tenant", Type: types.IntType, NotNull: true},
				{Name: "Table", Type: types.IntType, NotNull: true},
				{Name: "Col", Type: types.IntType, NotNull: true},
				{Name: "Row", Type: types.IntType, NotNull: true},
				{Name: f.valCol, Type: f.valType},
			}
			if _, err := db.Exec(buildCreateTable(name, cols)); err != nil {
				return err
			}
			// The meta-data index: a partitioned B-tree on (Tenant,
			// Table, Col, Row), per §6.1's base-table access argument.
			ddl := fmt.Sprintf("CREATE UNIQUE INDEX %s_tcr ON %s (Tenant, Table, Col, Row)", name, name)
			if _, err := db.Exec(ddl); err != nil {
				return err
			}
			if indexed {
				ddl := fmt.Sprintf("CREATE INDEX %s_val ON %s (Tenant, Table, Col, %s)", name, name, f.valCol)
				if _, err := db.Exec(ddl); err != nil {
					return err
				}
			}
		}
	}
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

// AddTenant implements Layout: meta-data only.
func (l *PivotLayout) AddTenant(_ *engine.DB, t *Tenant) error {
	for _, bt := range l.s.schema.Tables {
		if _, err := l.s.schema.LogicalColumns(t, bt.Name); err != nil {
			return err
		}
	}
	return l.s.addTenant(t)
}

// ExtendTenant enables an extension on-line: pure meta-data.
func (l *PivotLayout) ExtendTenant(_ *engine.DB, tenantID int64, extName string) error {
	return extendMetadataOnly(l.s, tenantID, extName)
}

// extendMetadataOnly is the shared on-line extension path for layouts
// whose physical schema is tenant-independent.
func extendMetadataOnly(s *state, tenantID int64, extName string) error {
	tn, err := s.tenant(tenantID)
	if err != nil {
		return err
	}
	ext := s.schema.Extension(extName)
	if ext == nil {
		return fmt.Errorf("core: no extension %s", extName)
	}
	if tn.HasExtension(extName) {
		return fmt.Errorf("core: tenant %d already has extension %s", tenantID, extName)
	}
	probe := &Tenant{ID: tn.ID, Extensions: append(append([]string{}, tn.Extensions...), extName)}
	if _, err := s.schema.LogicalColumns(probe, ext.Base); err != nil {
		return err
	}
	s.mu.Lock()
	tn.Extensions = append(tn.Extensions, extName)
	s.mu.Unlock()
	return nil
}

// Rewrite implements Layout.
func (l *PivotLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	return genericRewrite(l, tenantID, st)
}

// colOrdinal returns the pivot Col number of a logical column.
func (l *PivotLayout) colOrdinal(tn *Tenant, table *Table, col string) (int, Column, error) {
	cols, err := l.s.schema.LogicalColumns(tn, table.Name)
	if err != nil {
		return 0, Column{}, err
	}
	for i, c := range cols {
		if strings.EqualFold(c.Name, col) {
			return i, c, nil
		}
	}
	return 0, Column{}, fmt.Errorf("core: no column %s in %s for tenant %d", col, table.Name, tn.ID)
}

// reconstruct implements reconstructor: the key column's cell anchors
// the row; every other referenced column contributes one aligning join
// on Row (LEFT for nullable columns, whose cells may be absent).
func (l *PivotLayout) reconstruct(tn *Tenant, table *Table, used []Column, withRow bool) (*sql.SelectStmt, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	// The key column must anchor; move it to the front.
	ordered := append([]Column(nil), used...)
	for i, c := range ordered {
		if strings.EqualFold(c.Name, table.Key) {
			ordered[0], ordered[i] = ordered[i], ordered[0]
			break
		}
	}
	if !strings.EqualFold(ordered[0].Name, table.Key) {
		return nil, fmt.Errorf("core: pivot reconstruction of %s lacks key %s", table.Name, table.Key)
	}

	sel := &sql.SelectStmt{}
	var from sql.TableRef
	for i, c := range ordered {
		alias := fmt.Sprintf("p%d", i)
		ord, _, err := l.colOrdinal(tn, table, c.Name)
		if err != nil {
			return nil, err
		}
		phys, valCol := l.pivotTableFor(c)
		meta := and(
			eq(colRef(alias, "Tenant"), intLit(tn.ID)),
			eq(colRef(alias, "Table"), intLit(int64(tid))),
			eq(colRef(alias, "Col"), intLit(int64(ord))),
		)
		ref := &sql.NamedTable{Name: phys, Alias: alias}
		if i == 0 {
			from = ref
			sel.Where = meta
		} else {
			jt := sql.InnerJoin
			if !c.NotNull {
				jt = sql.LeftJoin
			}
			on := and(meta, eq(colRef(alias, "Row"), colRef("p0", "Row")))
			from = &sql.JoinTable{Left: from, Right: ref, Type: jt, On: on}
		}
		sel.Items = append(sel.Items, sql.SelectItem{
			Expr:  castBack(colRef(alias, valCol), c),
			Alias: c.Name,
		})
	}
	// Restore the caller's column order.
	if !strings.EqualFold(used[0].Name, ordered[0].Name) {
		reordered := make([]sql.SelectItem, len(used))
		for i, c := range used {
			for _, it := range sel.Items {
				if strings.EqualFold(it.Alias, c.Name) {
					reordered[i] = it
					break
				}
			}
		}
		sel.Items = reordered
	}
	if withRow {
		sel.Items = append(sel.Items, sql.SelectItem{Expr: colRef("p0", "Row"), Alias: rowCol})
	}
	sel.From = []sql.TableRef{from}
	return sel, nil
}

// cellValue converts a logical value expression for storage: dates and
// booleans become integers.
func cellValue(e sql.Expr, c Column) sql.Expr {
	switch c.Type.Kind {
	case types.KindDate, types.KindBool:
		return &sql.CastExpr{X: e, Type: types.IntType}
	}
	return e
}

// insertRows implements reconstructor: one physical insert per cell,
// batched per pivot table. Literal NULL cells are simply not stored.
func (l *PivotLayout) insertRows(tn *Tenant, table *Table, cols []Column, rows [][]sql.Expr) ([]sql.Statement, error) {
	tid, err := l.s.tableID(table.Name)
	if err != nil {
		return nil, err
	}
	firstRow := l.s.nextRows(tn.ID, table.Name, int64(len(rows)))
	stmts := map[string]*sql.InsertStmt{}
	var order []string
	for ri, row := range rows {
		rowID := firstRow + int64(ri)
		for i, c := range cols {
			if litE, isLit := row[i].(*sql.Literal); isLit && litE.Val.IsNull() {
				continue // pivot tables do not store NULL cells
			}
			ord, _, err := l.colOrdinal(tn, table, c.Name)
			if err != nil {
				return nil, err
			}
			phys, valCol := l.pivotTableFor(c)
			st, ok := stmts[phys]
			if !ok {
				st = &sql.InsertStmt{Table: phys, Columns: []string{"Tenant", "Table", "Col", "Row", valCol}}
				stmts[phys] = st
				order = append(order, phys)
			}
			st.Rows = append(st.Rows, []sql.Expr{
				intLit(tn.ID), intLit(int64(tid)), intLit(int64(ord)), intLit(rowID),
				cellValue(row[i], c),
			})
		}
	}
	var out []sql.Statement
	for _, p := range order {
		out = append(out, stmts[p])
	}
	return out, nil
}

// storedValue converts a computed logical value for cell storage.
func storedValue(v types.Value) types.Value {
	switch v.Kind {
	case types.KindDate, types.KindBool:
		return types.NewInt(v.Int)
	}
	return v
}

// phaseBUpdate implements reconstructor: a cell update is a DELETE of
// the old cell plus an INSERT of the new one (which also handles
// NULL↔value transitions, since NULL cells are absent).
func (l *PivotLayout) phaseBUpdate(tn *Tenant, table *Table, setCols []Column, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	var out []sql.Statement
	for i, c := range setCols {
		ord, _, err := l.colOrdinal(tn, table, c.Name)
		if err != nil {
			continue
		}
		phys, valCol := l.pivotTableFor(c)
		meta := and(
			eq(colRef("", "Tenant"), intLit(tn.ID)),
			eq(colRef("", "Table"), intLit(int64(tid))),
			eq(colRef("", "Col"), intLit(int64(ord))),
		)
		out = append(out, &sql.DeleteStmt{
			Table: phys,
			Where: and(meta, inList(colRef("", "Row"), column(rows, 0))),
		})
		ins := &sql.InsertStmt{Table: phys, Columns: []string{"Tenant", "Table", "Col", "Row", valCol}}
		for _, r := range rows {
			v := r[i+1]
			if v.IsNull() {
				continue
			}
			ins.Rows = append(ins.Rows, []sql.Expr{
				intLit(tn.ID), intLit(int64(tid)), intLit(int64(ord)), lit(r[0]), lit(storedValue(v)),
			})
		}
		if len(ins.Rows) > 0 {
			out = append(out, ins)
		}
	}
	return out
}

// phaseBDelete implements reconstructor: remove every cell of the
// affected rows from every pivot table the tenant's table uses.
func (l *PivotLayout) phaseBDelete(tn *Tenant, table *Table, rows [][]types.Value) []sql.Statement {
	tid, _ := l.s.tableID(table.Name)
	cols, err := l.s.schema.LogicalColumns(tn, table.Name)
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	var out []sql.Statement
	for _, c := range cols {
		phys, _ := l.pivotTableFor(c)
		if seen[phys] {
			continue
		}
		seen[phys] = true
		out = append(out, &sql.DeleteStmt{
			Table: phys,
			Where: and(
				eq(colRef("", "Tenant"), intLit(tn.ID)),
				eq(colRef("", "Table"), intLit(int64(tid))),
				inList(colRef("", "Row"), column(rows, 0)),
			),
		})
	}
	return out
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *PivotLayout) TenantByID(id int64) (*Tenant, error) { return l.s.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *PivotLayout) Tenants() []*Tenant { return l.s.Tenants() }
