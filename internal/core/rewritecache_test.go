package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
)

// cachedMappers builds every layout twice over identical fresh
// databases: one mapper uncached, one with a shared RewriteCache.
func cachedMappers(t *testing.T) map[string][2]*Mapper {
	t.Helper()
	schema := paperSchema()
	plain := allLayouts(t, schema)
	cached := allLayouts(t, schema)
	out := map[string][2]*Mapper{}
	for name, cm := range cached {
		cm.Cache = NewRewriteCache(cm.DB, cm.Layout, 0)
		out[name] = [2]*Mapper{plain[name], cm}
	}
	return out
}

// TestRewriteCacheEquivalence drives an identical statement sequence
// through a cached and an uncached mapper on every layout and demands
// identical results at every step — the cache must be invisible except
// for speed.
func TestRewriteCacheEquivalence(t *testing.T) {
	for name, pair := range cachedMappers(t) {
		plain, cached := pair[0], pair[1]
		loadPaperData(t, plain)
		loadPaperData(t, cached)

		queries := []struct {
			tenant int64
			q      string
		}{
			{17, "SELECT Aid, Name, Hospital, Beds FROM Account WHERE Aid = 1"},
			{17, "SELECT Aid, Name, Hospital, Beds FROM Account WHERE Aid = 2"},
			{17, "SELECT COUNT(*) FROM Account WHERE Beds > 100"},
			{35, "SELECT Aid, Name FROM Account"},
			{42, "SELECT Name FROM Account WHERE Dealers = 65"},
			{42, "SELECT Name FROM Account WHERE Dealers = 9999"},
		}
		for _, qq := range queries {
			got := queryAll(t, cached, qq.tenant, qq.q)
			want := queryAll(t, plain, qq.tenant, qq.q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s: %q diverged:\ncached  %v\nuncached %v", name, qq.q, got, want)
			}
			// Run the cached query again so the second pass exercises the
			// raw-text hit path, not just the fill path.
			again := queryAll(t, cached, qq.tenant, qq.q)
			if fmt.Sprint(again) != fmt.Sprint(want) {
				t.Errorf("%s: %q diverged on cache hit:\ncached  %v\nuncached %v", name, qq.q, again, want)
			}
		}

		execs := []struct {
			tenant int64
			q      string
		}{
			{17, "UPDATE Account SET Beds = 200 WHERE Aid = 1"},
			{17, "UPDATE Account SET Beds = 300 WHERE Aid = 1"}, // same template, new literal
			{42, "UPDATE Account SET Dealers = Dealers + 1 WHERE Aid = 1"},
			{35, "DELETE FROM Account WHERE Aid = 99"}, // no-op delete
			{17, "UPDATE Account SET Name = 'AcmeX' WHERE Beds = 300"},
		}
		for _, e := range execs {
			rc, err := cached.Exec(e.tenant, e.q)
			if err != nil {
				t.Fatalf("%s: cached Exec(%q): %v", name, e.q, err)
			}
			rp, err := plain.Exec(e.tenant, e.q)
			if err != nil {
				t.Fatalf("%s: plain Exec(%q): %v", name, e.q, err)
			}
			if rc.RowsAffected != rp.RowsAffected {
				t.Errorf("%s: %q affected %d cached vs %d uncached", name, e.q, rc.RowsAffected, rp.RowsAffected)
			}
		}
		verify := "SELECT Aid, Name, Hospital, Beds FROM Account"
		if got, want := queryAll(t, cached, 17, verify), queryAll(t, plain, 17, verify); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: post-DML state diverged:\ncached  %v\nuncached %v", name, got, want)
		}
	}
}

// TestRewriteCacheHitAccounting verifies the canonicalization math: N
// statements sharing a template cost one rewrite, repeats cost nothing,
// and the hit rate reflects it.
func TestRewriteCacheHitAccounting(t *testing.T) {
	schema := paperSchema()
	l, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	m.Cache = NewRewriteCache(db, l, 0)

	// 8 distinct literal values, same template: 1 miss + 7 template hits.
	for i := 0; i < 8; i++ {
		q := fmt.Sprintf("SELECT Name FROM Account WHERE Aid = %d", i)
		if _, err := m.Query(35, q); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	s := m.Cache.Stats()
	if s.Misses != 1 || s.TemplateHits != 7 || s.Hits != 0 {
		t.Fatalf("after distinct literals: %+v", s)
	}
	// Repeats of the same raw texts: pure raw hits.
	for i := 0; i < 8; i++ {
		q := fmt.Sprintf("SELECT Name FROM Account WHERE Aid = %d", i)
		if _, err := m.Query(35, q); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	s = m.Cache.Stats()
	if s.Hits != 8 {
		t.Fatalf("after repeats: %+v", s)
	}
	if hr := s.HitRate(); hr < 0.9 {
		t.Fatalf("hit rate %.2f < 0.9: %+v", hr, s)
	}
	// Another tenant does not share entries (tenant is in the key).
	if _, err := m.Query(17, "SELECT Name FROM Account WHERE Aid = 0"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if s2 := m.Cache.Stats(); s2.Misses != 2 {
		t.Fatalf("cross-tenant lookup should miss: %+v", s2)
	}
	// INSERT stays uncacheable.
	if _, err := m.Exec(35, "INSERT INTO Account (Aid, Name) VALUES (7, 'x')"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if s3 := m.Cache.Stats(); s3.Uncacheable != 1 {
		t.Fatalf("INSERT should be uncacheable: %+v", s3)
	}
}

// TestRewriteCacheDDLKeepsWarm: physical DDL — an engine-level online
// ALTER, an unrelated CREATE TABLE — must NOT cold-start the rewrite
// cache. Layout rewrites depend only on the logical schema and tenant
// metadata, so bumping the catalog version is the plan cache's problem,
// not the rewrite cache's. This is the regression the old
// version-in-the-key scheme failed: one tenant's ALTER evicted every
// tenant's rewrites.
func TestRewriteCacheDDLKeepsWarm(t *testing.T) {
	schema := paperSchema()
	l, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	m.Cache = NewRewriteCache(db, l, 0)

	q := "SELECT Name FROM Account WHERE Aid = 1"
	for _, tenant := range []int64{35, 42} {
		if _, err := m.Query(tenant, q); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Query(tenant, q); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Cache.Stats()
	if before.Hits != 2 || before.Misses != 2 {
		t.Fatalf("warmup: %+v", before)
	}
	// Physical DDL bumps the catalog version; the rewrite cache must not
	// care. (The engine plan cache re-derives on its own.)
	if _, err := db.Exec("CREATE TABLE Unrelated (A INT)"); err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []int64{35, 42} {
		if _, err := m.Query(tenant, q); err != nil {
			t.Fatal(err)
		}
	}
	after := m.Cache.Stats()
	if after.Hits != before.Hits+2 || after.Misses != before.Misses {
		t.Fatalf("post-DDL lookups should stay warm: before %+v after %+v", before, after)
	}
	if after.HitRate() < 0.66 {
		t.Fatalf("hit rate regressed across DDL: %+v", after)
	}
}

// TestRewriteCacheInvalidateTable: bumping one (tenant, table)
// generation must make exactly that tenant's entries over that table
// miss, while the same statement stays warm for every other tenant and
// other tables of the same tenant stay warm too.
func TestRewriteCacheInvalidateTable(t *testing.T) {
	schema := paperSchema()
	l, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	m.Cache = NewRewriteCache(db, l, 0)

	qAcc := "SELECT Name FROM Account WHERE Aid = 1"
	for _, tenant := range []int64{35, 42} {
		if _, err := m.Query(tenant, qAcc); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Cache.Stats()

	m.Cache.InvalidateTable(35, "Account")

	// Tenant 35's Account entry refills; tenant 42's stays warm.
	if _, err := m.Query(35, qAcc); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(42, qAcc); err != nil {
		t.Fatal(err)
	}
	after := m.Cache.Stats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("tenant 35 should re-rewrite once: before %+v after %+v", before, after)
	}
	if after.Hits != before.Hits+1 {
		t.Fatalf("tenant 42 should stay warm: before %+v after %+v", before, after)
	}
	if after.Invalidated == 0 {
		t.Fatalf("stale entry should be counted: %+v", after)
	}
}

// TestRewriteCacheInvalidateTenant: a tenant-wide bump (what a layout
// move issues at cutover) cold-starts exactly one tenant.
func TestRewriteCacheInvalidateTenant(t *testing.T) {
	schema := paperSchema()
	l, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	m.Cache = NewRewriteCache(db, l, 0)

	q := "SELECT Name FROM Account WHERE Aid = 1"
	for _, tenant := range []int64{35, 42} {
		if _, err := m.Query(tenant, q); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Cache.Stats()
	m.Cache.InvalidateTenant(35)
	if _, err := m.Query(35, q); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(42, q); err != nil {
		t.Fatal(err)
	}
	after := m.Cache.Stats()
	if after.Misses != before.Misses+1 || after.Hits != before.Hits+1 {
		t.Fatalf("only tenant 35 should refill: before %+v after %+v", before, after)
	}
}

// TestRewriteCacheEviction: the LRU cap holds and evicted entries
// re-fill correctly.
func TestRewriteCacheEviction(t *testing.T) {
	schema := paperSchema()
	l, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	m.Cache = NewRewriteCache(db, l, 8)

	for round := 0; round < 3; round++ {
		for i := 0; i < 32; i++ {
			// Distinct templates (structure varies), defeating
			// canonical sharing on purpose.
			q := fmt.Sprintf("SELECT Name FROM Account WHERE Aid = %d AND Aid < %d + %d", i, i, i)
			if _, err := m.Query(35, q); err != nil {
				t.Fatalf("Query: %v", err)
			}
		}
	}
	if s := m.Cache.Stats(); s.Entries > 8 {
		t.Fatalf("cap exceeded: %+v", s)
	}
}

// TestRewriteCacheConcurrentTenants is the race test: many goroutines
// as different tenants sharing statement text, through one cache, with
// concurrent DML mixed in. Run under -race this proves the fill/alias/
// eviction paths and the shared template ASTs are data-race free.
func TestRewriteCacheConcurrentTenants(t *testing.T) {
	schema := paperSchema()
	l, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	cache := NewRewriteCache(db, l, 64)

	seed := NewMapper(db, l)
	for _, tn := range []int64{17, 35, 42} {
		if _, err := seed.Exec(tn, "INSERT INTO Account (Aid, Name) VALUES (1, 'a'), (2, 'b')"); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 12
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	tenants := []int64{17, 35, 42}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := NewMapper(db, l)
			m.Cache = cache
			tn := tenants[w%len(tenants)]
			for i := 0; i < iters; i++ {
				// Shared templates across workers and tenants.
				q := fmt.Sprintf("SELECT Name FROM Account WHERE Aid = %d", i%4)
				if _, err := m.Query(tn, q); err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				u := fmt.Sprintf("UPDATE Account SET Name = 'n%d' WHERE Aid = %d", i, i%4)
				if _, err := m.Exec(tn, u); err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := cache.Stats()
	if s.Hits+s.TemplateHits == 0 {
		t.Fatalf("no sharing happened: %+v", s)
	}
}

// TestRewriteCacheUserParams: statements that already carry `?` params
// cache under their raw text and bind the caller's values.
func TestRewriteCacheUserParams(t *testing.T) {
	schema := paperSchema()
	l, err := NewExtensionLayout(schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	if err := l.Create(db, paperTenants()); err != nil {
		t.Fatal(err)
	}
	m := NewMapper(db, l)
	m.Cache = NewRewriteCache(db, l, 0)
	if _, err := m.Exec(35, "INSERT INTO Account (Aid, Name) VALUES (1, 'Ball'), (2, 'Cube')"); err != nil {
		t.Fatal(err)
	}

	q := "SELECT Name FROM Account WHERE Aid = ?"
	for want, arg := range map[string]int64{"Ball": 1, "Cube": 2} {
		for i := 0; i < 2; i++ { // second pass = cache hit
			rows, err := m.Query(35, q, types.NewInt(arg))
			if err != nil {
				t.Fatal(err)
			}
			if len(rows.Data) != 1 || rows.Data[0][0].Str != want {
				t.Fatalf("arg %d pass %d: %v", arg, i, rows.Data)
			}
		}
	}
	s := m.Cache.Stats()
	if s.Misses != 1 || s.Hits != 3 {
		t.Fatalf("param statement accounting: %+v", s)
	}
}
