package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sql"
)

// errNotFlattenable signals that a query shape cannot be emitted as a
// flat single block (the paper notes the transformation "is not as
// clean" for complex shapes); the caller falls back to the generic
// nested form.
var errNotFlattenable = errors.New("core: query not flattenable")

// flattenedSelect emits the pre-flattened, predicate-ordered physical
// SQL of §6.1's Test 1: chunk references spliced directly into the
// outer FROM, aligning and meta-data conjuncts merged into WHERE in a
// deliberate order. This is what the transformation layer must produce
// for databases whose optimizer cannot unnest the generic form.
func (l *ChunkLayout) flattenedSelect(tn *Tenant, sel *sql.SelectStmt) (*sql.SelectStmt, error) {
	for _, tr := range sel.From {
		if _, ok := tr.(*sql.NamedTable); !ok {
			return nil, errNotFlattenable
		}
	}
	usages, err := analyzeSelect(l.s.schema, tn, sel)
	if err != nil {
		return nil, err
	}

	type mapped struct {
		u       *tableUsage
		a       *assignment
		groups  []*chunkGroup
		aliases map[int]string // group ID -> physical alias
	}
	var maps []*mapped
	var from []sql.TableRef
	var metaConjs, alignConjs []sql.Expr
	for ui, u := range usages {
		used, err := usedColumns(l.s.schema, tn, u)
		if err != nil {
			return nil, err
		}
		a, err := l.assignmentFor(tn.ID, u.logical.Name)
		if err != nil {
			return nil, err
		}
		groups, err := usedGroups(a, u.logical, used)
		if err != nil {
			return nil, err
		}
		tid, err := l.s.tableID(u.logical.Name)
		if err != nil {
			return nil, err
		}
		m := &mapped{u: u, a: a, groups: groups, aliases: map[int]string{}}
		var refs []sql.TableRef
		for gi, g := range groups {
			alias := fmt.Sprintf("t%dc%d", ui, gi)
			m.aliases[g.ID] = alias
			refs = append(refs, &sql.NamedTable{Name: g.Def.Name, Alias: alias})
			metaConjs = append(metaConjs, l.metaConjs(alias, tn.ID, tid, g)...)
			if l.opt.Trashcan && gi == 0 {
				metaConjs = append(metaConjs, eq(colRef(alias, delCol), intLit(0)))
			}
			if gi > 0 {
				anchor := m.aliases[groups[0].ID]
				alignConjs = append(alignConjs, eq(colRef(alias, "Row"), colRef(anchor, "Row")))
			}
		}
		if l.opt.MetadataFirst {
			// The "careless" emission of Test 1: chunk references in
			// reverse order, so a FROM-order-driven optimizer starts
			// from a data chunk instead of the selective anchor.
			for i, j := 0, len(refs)-1; i < j; i, j = i+1, j-1 {
				refs[i], refs[j] = refs[j], refs[i]
			}
		}
		from = append(from, refs...)
		maps = append(maps, m)
	}

	// Physical expression for a (usage, column) pair.
	physExpr := func(m *mapped, col string) (sql.Expr, error) {
		loc, ok := m.a.locate(col)
		if !ok {
			return nil, fmt.Errorf("core: column %s of %s is unassigned", col, m.u.logical.Name)
		}
		alias, ok := m.aliases[loc.group.ID]
		if !ok {
			return nil, fmt.Errorf("core: chunk of column %s not included", col)
		}
		var c Column
		for i, gc := range loc.group.Cols {
			if strings.EqualFold(gc.Name, col) {
				c = loc.group.Cols[i]
				break
			}
		}
		return chunkColExpr(alias, loc.phys, c), nil
	}
	provides := func(m *mapped, col string) bool {
		_, ok := m.a.locate(col)
		return ok
	}
	rewrite := func(e sql.Expr) (sql.Expr, error) {
		return mapColumnRefs(e, func(cr *sql.ColumnRef) (sql.Expr, error) {
			if cr.Table != "" {
				for _, m := range maps {
					if strings.EqualFold(m.u.alias, cr.Table) {
						return physExpr(m, cr.Name)
					}
				}
				return nil, fmt.Errorf("core: unknown alias %s", cr.Table)
			}
			var owner *mapped
			for _, m := range maps {
				if provides(m, cr.Name) {
					if owner != nil {
						return nil, fmt.Errorf("core: ambiguous column %s", cr.Name)
					}
					owner = m
				}
			}
			if owner == nil {
				return nil, fmt.Errorf("core: unknown column %s", cr.Name)
			}
			return physExpr(owner, cr.Name)
		})
	}

	out := &sql.SelectStmt{Distinct: sel.Distinct, From: from, Limit: sel.Limit}
	for _, it := range sel.Items {
		if it.Star {
			// Star projections keep the generic nested form, which
			// exposes logical column names naturally.
			return nil, errNotFlattenable
		}
		e, err := rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		alias := it.Alias
		if alias == "" {
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				alias = cr.Name
			}
		}
		out.Items = append(out.Items, sql.SelectItem{Expr: e, Alias: alias})
	}

	var userConjs []sql.Expr
	if sel.Where != nil {
		var raw []sql.Expr
		splitConjunctsCore(sel.Where, &raw)
		for _, c := range raw {
			c, err := rewriteInSubqueries(c, func(s *sql.SelectStmt) (*sql.SelectStmt, error) {
				return genericSelect(l, tn, s)
			})
			if err != nil {
				return nil, err
			}
			rc, err := rewrite(c)
			if err != nil {
				return nil, err
			}
			userConjs = append(userConjs, rc)
		}
	}
	if l.opt.MetadataFirst {
		out.Where = and(append(append(metaConjs, alignConjs...), userConjs...)...)
	} else {
		out.Where = and(append(append(userConjs, metaConjs...), alignConjs...)...)
	}

	for _, g := range sel.GroupBy {
		e, err := rewrite(g)
		if err != nil {
			return nil, err
		}
		out.GroupBy = append(out.GroupBy, e)
	}
	if sel.Having != nil {
		h, err := rewrite(sel.Having)
		if err != nil {
			return nil, err
		}
		out.Having = h
	}
	for _, o := range sel.OrderBy {
		e, err := rewrite(o.Expr)
		if err != nil {
			return nil, err
		}
		out.OrderBy = append(out.OrderBy, sql.OrderItem{Expr: e, Desc: o.Desc})
	}
	return out, nil
}

// splitConjunctsCore flattens AND trees (core-local copy; plan has its
// own unexported version).
func splitConjunctsCore(e sql.Expr, out *[]sql.Expr) {
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == sql.OpAnd {
		splitConjunctsCore(b.L, out)
		splitConjunctsCore(b.R, out)
		return
	}
	*out = append(*out, e)
}

// mapColumnRefs rebuilds an expression, replacing every column
// reference through fn.
func mapColumnRefs(e sql.Expr, fn func(*sql.ColumnRef) (sql.Expr, error)) (sql.Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *sql.ColumnRef:
		return fn(e)
	case *sql.Literal, *sql.Param:
		return e, nil
	case *sql.BinaryExpr:
		ln, err := mapColumnRefs(e.L, fn)
		if err != nil {
			return nil, err
		}
		rn, err := mapColumnRefs(e.R, fn)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: e.Op, L: ln, R: rn}, nil
	case *sql.UnaryExpr:
		x, err := mapColumnRefs(e.X, fn)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryExpr{Op: e.Op, X: x}, nil
	case *sql.IsNullExpr:
		x, err := mapColumnRefs(e.X, fn)
		if err != nil {
			return nil, err
		}
		return &sql.IsNullExpr{X: x, Not: e.Not}, nil
	case *sql.LikeExpr:
		x, err := mapColumnRefs(e.X, fn)
		if err != nil {
			return nil, err
		}
		p, err := mapColumnRefs(e.Pattern, fn)
		if err != nil {
			return nil, err
		}
		return &sql.LikeExpr{X: x, Pattern: p, Not: e.Not}, nil
	case *sql.CastExpr:
		x, err := mapColumnRefs(e.X, fn)
		if err != nil {
			return nil, err
		}
		return &sql.CastExpr{X: x, Type: e.Type}, nil
	case *sql.FuncExpr:
		out := &sql.FuncExpr{Name: e.Name, Star: e.Star}
		for _, a := range e.Args {
			an, err := mapColumnRefs(a, fn)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, an)
		}
		return out, nil
	case *sql.InExpr:
		x, err := mapColumnRefs(e.X, fn)
		if err != nil {
			return nil, err
		}
		out := &sql.InExpr{X: x, Not: e.Not, Subquery: e.Subquery}
		for _, i := range e.List {
			in, err := mapColumnRefs(i, fn)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, in)
		}
		return out, nil
	}
	return e, nil
}
