package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sql"
)

// Affinity accumulates column co-access statistics from a logical query
// log. The paper's §7 names this as the goal of its ongoing work:
// chunk-assignment algorithms "that take into account the logical
// schemas of tenants, the distribution of data within those schemas,
// and the associated application queries". Feeding an Affinity into
// ChunkOptions makes the assignment workload-aware: columns that are
// frequently queried together are packed into the same chunk, which
// reduces the number of aligning joins a reconstruction needs.
type Affinity struct {
	schema *Schema

	mu     sync.Mutex
	counts map[string]map[[2]string]int // table -> sorted column pair -> hits
	single map[string]map[string]int    // table -> column -> hits
}

// NewAffinity creates an empty statistics collector for a schema.
func NewAffinity(schema *Schema) *Affinity {
	return &Affinity{
		schema: schema,
		counts: map[string]map[[2]string]int{},
		single: map[string]map[string]int{},
	}
}

// Observe records one statement's column usage for a table.
func (a *Affinity) Observe(table string, cols []string) {
	key := strings.ToLower(table)
	norm := make([]string, 0, len(cols))
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c)
		if !seen[lc] {
			seen[lc] = true
			norm = append(norm, lc)
		}
	}
	sort.Strings(norm)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.counts[key] == nil {
		a.counts[key] = map[[2]string]int{}
		a.single[key] = map[string]int{}
	}
	for i, c1 := range norm {
		a.single[key][c1]++
		for _, c2 := range norm[i+1:] {
			a.counts[key][[2]string{c1, c2}]++
		}
	}
}

// ObserveSQL parses a logical SELECT and records, per referenced table,
// which of the tenant's columns it uses (step 1 of the §6.1 analysis
// reused as a statistics probe).
func (a *Affinity) ObserveSQL(tn *Tenant, query string) error {
	st, err := sql.Parse(query)
	if err != nil {
		return err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return fmt.Errorf("core: ObserveSQL takes SELECT statements")
	}
	usages, err := analyzeSelect(a.schema, tn, sel)
	if err != nil {
		return err
	}
	for _, u := range usages {
		var cols []string
		for c := range u.cols {
			cols = append(cols, c)
		}
		a.Observe(u.logical.Name, cols)
	}
	return nil
}

func (a *Affinity) pair(table, c1, c2 string) int {
	c1, c2 = strings.ToLower(c1), strings.ToLower(c2)
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counts[strings.ToLower(table)][[2]string{c1, c2}]
}

// OrderColumns reorders a column list so that strongly co-accessed
// columns are adjacent, which the sequential packing of assignColumns
// turns into shared chunks. The heuristic builds a chain greedily: it
// seeds with the hottest pair and repeatedly appends the unplaced
// column with the highest affinity to either chain end; columns never
// observed keep their declaration order at the tail. Deterministic for
// stable assignments across restarts.
func (a *Affinity) OrderColumns(table string, cols []Column) []Column {
	if len(cols) < 3 {
		return cols
	}
	byName := map[string]Column{}
	var names []string
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		byName[lc] = c
		names = append(names, lc)
	}
	// Hottest pair seeds the chain.
	bestA, bestB, bestN := "", "", 0
	for i, c1 := range names {
		for _, c2 := range names[i+1:] {
			if n := a.pair(table, c1, c2); n > bestN {
				bestA, bestB, bestN = c1, c2, n
			}
		}
	}
	if bestN == 0 {
		return cols // no statistics; keep declaration order
	}
	chain := []string{bestA, bestB}
	placed := map[string]bool{bestA: true, bestB: true}
	for len(chain) < len(names) {
		head, tail := chain[0], chain[len(chain)-1]
		var cand string
		candN := 0
		atTail := true
		for _, c := range names {
			if placed[c] {
				continue
			}
			if n := a.pair(table, tail, c); n > candN {
				cand, candN, atTail = c, n, true
			}
			if n := a.pair(table, head, c); n > candN {
				cand, candN, atTail = c, n, false
			}
		}
		if candN == 0 {
			break // rest keeps declaration order
		}
		placed[cand] = true
		if atTail {
			chain = append(chain, cand)
		} else {
			chain = append([]string{cand}, chain...)
		}
	}
	out := make([]Column, 0, len(cols))
	for _, c := range chain {
		out = append(out, byName[c])
	}
	for _, c := range cols {
		if !placed[strings.ToLower(c.Name)] {
			out = append(out, c)
		}
	}
	return out
}
