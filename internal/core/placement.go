package core

import (
	"encoding/binary"
	"hash/fnv"
)

// PlacementMap routes a multi-tenant workload across a replicated
// service: every write goes to the primary, while each tenant's reads
// are pinned to one member of the replica set. Pinning is by rendezvous
// (highest-random-weight) hashing, so the assignment is deterministic —
// any client holding the same map routes the same tenant to the same
// replica without coordination — and minimally disruptive: growing or
// shrinking the replica set only moves the tenants whose winner joined
// or left, about 1/n of them, instead of reshuffling everyone the way a
// modular hash would.
type PlacementMap struct {
	// Primary is the write master's address; it also serves reads for
	// tenants when the replica set is empty or entirely down.
	Primary string
	// Replicas are the read-replica addresses.
	Replicas []string
}

// WriteAddr is where a tenant's writes must go: always the primary.
func (p *PlacementMap) WriteAddr() string { return p.Primary }

// ReadAddr is the replica serving a tenant's reads, or the primary when
// there are no replicas.
func (p *PlacementMap) ReadAddr(tenant int64) string {
	return p.ReadAddrExcluding(tenant, nil)
}

// ReadAddrExcluding routes around replicas known to be down: the tenant
// lands on its highest-weight healthy replica, and on the primary only
// when none is left. Tenants on healthy replicas are unaffected by
// another replica's failure — the rendezvous property again.
func (p *PlacementMap) ReadAddrExcluding(tenant int64, down map[string]bool) string {
	best := ""
	var bestScore uint64
	for _, r := range p.Replicas {
		if down[r] {
			continue
		}
		s := placementScore(tenant, r)
		if best == "" || s > bestScore || (s == bestScore && r < best) {
			best, bestScore = r, s
		}
	}
	if best == "" {
		return p.Primary
	}
	return best
}

// placementScore is the rendezvous weight of (tenant, replica).
func placementScore(tenant int64, addr string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(tenant))
	h.Write(b[:])
	h.Write([]byte(addr))
	return h.Sum64()
}
