// Package core implements the paper's contribution: schema-mapping
// techniques for multi-tenant databases. Multiple single-tenant
// *logical* schemas — a shared base schema plus per-tenant extensions —
// are mapped onto one multi-tenant *physical* schema using any of the
// layouts from the paper's Figure 4:
//
//	Basic           shared tables + Tenant column (no extensibility)
//	Private         per-tenant physical tables            (Fig 4a)
//	Extension       shared base + shared extension tables (Fig 4b)
//	Universal       one generic wide table                (Fig 4c)
//	Pivot           one row per cell, typed pivot tables  (Fig 4d)
//	Chunk           typed multi-column chunk tables       (Fig 4e)
//	Chunk Folding   conventional + chunk tables mixed     (Fig 4f)
//	Vertical        one physical table per chunk          (Fig 12 baseline)
//
// The query-transformation layer (§6.1 of the paper) rewrites logical
// SQL into physical SQL; the DML transformation (§6.3) turns logical
// writes into the two-phase row-collection/update protocol.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Column is a logical column of a base table or extension.
type Column struct {
	Name    string
	Type    types.ColumnType
	NotNull bool
	// Indexed requests a value index on this column in layouts that
	// support per-column indexing (conventional tables, and the
	// indexed flavors of pivot/chunk tables).
	Indexed bool
}

// Table is a logical base table. Key names the entity-ID column, which
// must exist, be NOT NULL, and uniquely identify rows within a tenant —
// the testbed's schema follows this convention (§4.1) and generic
// layouts anchor row reconstruction on it.
type Table struct {
	Name    string
	Key     string
	Columns []Column
}

// Column returns the named column and its ordinal, or nil, -1.
func (t *Table) Column(name string) (*Column, int) {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return &t.Columns[i], i
		}
	}
	return nil, -1
}

// Extension is a named group of extra columns some tenants attach to a
// base table (e.g. the health-care extension of Account in the paper's
// running example).
type Extension struct {
	Name    string
	Base    string
	Columns []Column
}

// Schema is the application's logical schema: base tables shared by all
// tenants plus the catalogue of available extensions.
type Schema struct {
	Tables     []*Table
	Extensions []*Extension
}

// Table returns the named base table.
func (s *Schema) Table(name string) *Table {
	for _, t := range s.Tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

// Extension returns the named extension.
func (s *Schema) Extension(name string) *Extension {
	for _, e := range s.Extensions {
		if strings.EqualFold(e.Name, name) {
			return e
		}
	}
	return nil
}

// ExtensionsFor lists the extensions defined on a base table.
func (s *Schema) ExtensionsFor(base string) []*Extension {
	var out []*Extension
	for _, e := range s.Extensions {
		if strings.EqualFold(e.Base, base) {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks structural invariants: non-empty unique names, keys
// present and NOT NULL, extension bases resolvable, and no column
// collisions between a base table and its extensions.
func (s *Schema) Validate() error {
	if len(s.Tables) == 0 {
		return fmt.Errorf("core: schema has no tables")
	}
	seen := map[string]bool{}
	for _, t := range s.Tables {
		k := strings.ToLower(t.Name)
		if t.Name == "" || seen[k] {
			return fmt.Errorf("core: duplicate or empty table name %q", t.Name)
		}
		seen[k] = true
		if len(t.Columns) == 0 {
			return fmt.Errorf("core: table %s has no columns", t.Name)
		}
		cols := map[string]bool{}
		for _, c := range t.Columns {
			ck := strings.ToLower(c.Name)
			if c.Name == "" || cols[ck] {
				return fmt.Errorf("core: duplicate or empty column %q in %s", c.Name, t.Name)
			}
			cols[ck] = true
		}
		if t.Key == "" {
			return fmt.Errorf("core: table %s has no key column", t.Name)
		}
		kc, _ := t.Column(t.Key)
		if kc == nil {
			return fmt.Errorf("core: table %s key %s is not a column", t.Name, t.Key)
		}
		if !kc.NotNull {
			return fmt.Errorf("core: table %s key %s must be NOT NULL", t.Name, t.Key)
		}
	}
	extSeen := map[string]bool{}
	for _, e := range s.Extensions {
		k := strings.ToLower(e.Name)
		if e.Name == "" || extSeen[k] || seen[k] {
			return fmt.Errorf("core: duplicate or empty extension name %q", e.Name)
		}
		extSeen[k] = true
		base := s.Table(e.Base)
		if base == nil {
			return fmt.Errorf("core: extension %s has unknown base %q", e.Name, e.Base)
		}
		if len(e.Columns) == 0 {
			return fmt.Errorf("core: extension %s has no columns", e.Name)
		}
		for _, c := range e.Columns {
			if bc, _ := base.Column(c.Name); bc != nil {
				return fmt.Errorf("core: extension %s column %s collides with base %s", e.Name, c.Name, e.Base)
			}
		}
	}
	// Extension-vs-extension collisions only matter when one tenant
	// enables both; checked per tenant in LogicalColumns.
	return nil
}

// Tenant is one organization with a chosen set of extensions.
type Tenant struct {
	ID         int64
	Extensions []string
}

// HasExtension reports whether the tenant enabled the extension.
func (t *Tenant) HasExtension(name string) bool {
	for _, e := range t.Extensions {
		if strings.EqualFold(e, name) {
			return true
		}
	}
	return false
}

// LogicalColumns returns the columns of a tenant's view of a base
// table: base columns followed by the columns of each enabled extension
// on that base, in the tenant's extension order.
func (s *Schema) LogicalColumns(tn *Tenant, table string) ([]Column, error) {
	t := s.Table(table)
	if t == nil {
		return nil, fmt.Errorf("core: no logical table %s", table)
	}
	out := append([]Column(nil), t.Columns...)
	names := map[string]string{}
	for _, c := range t.Columns {
		names[strings.ToLower(c.Name)] = t.Name
	}
	for _, en := range tn.Extensions {
		e := s.Extension(en)
		if e == nil {
			return nil, fmt.Errorf("core: tenant %d references unknown extension %s", tn.ID, en)
		}
		if !strings.EqualFold(e.Base, table) {
			continue
		}
		for _, c := range e.Columns {
			k := strings.ToLower(c.Name)
			if prev, dup := names[k]; dup {
				return nil, fmt.Errorf("core: tenant %d: column %s of %s collides with %s", tn.ID, c.Name, en, prev)
			}
			names[k] = en
			out = append(out, c)
		}
	}
	return out, nil
}

// TableIDs assigns stable numeric IDs to base tables (sorted by name),
// used as the Table column value in generic structures.
func (s *Schema) TableIDs() map[string]int {
	names := make([]string, 0, len(s.Tables))
	for _, t := range s.Tables {
		names = append(names, t.Name)
	}
	sort.Slice(names, func(i, j int) bool {
		return strings.ToLower(names[i]) < strings.ToLower(names[j])
	})
	out := make(map[string]int, len(names))
	for i, n := range names {
		out[strings.ToLower(n)] = i
	}
	return out
}
