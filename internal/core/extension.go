package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

// ExtensionLayout (Fig 4b) shares base tables among all tenants and
// splits extensions into shared extension tables. Both carry Tenant and
// Row meta-data columns; logical rows are reconstructed by joining on
// Row. Consolidation is better than Private, but the table count still
// grows with the variety of extensions in use.
type ExtensionLayout struct {
	s *state
}

// NewExtensionLayout builds the layout for a logical schema.
func NewExtensionLayout(schema *Schema) (*ExtensionLayout, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &ExtensionLayout{s: newState(schema)}, nil
}

// Name implements Layout.
func (l *ExtensionLayout) Name() string { return "extension" }

// Schema implements Layout.
func (l *ExtensionLayout) Schema() *Schema { return l.s.schema }

func (l *ExtensionLayout) state() *state { return l.s }

// Create implements Layout: one shared physical table per base table
// and per extension.
func (l *ExtensionLayout) Create(db *engine.DB, tenants []*Tenant) error {
	meta := []Column{
		{Name: "Tenant", Type: types.IntType, NotNull: true},
		{Name: "Row", Type: types.IntType, NotNull: true},
	}
	for _, t := range l.s.schema.Tables {
		cols := append(append([]Column{}, meta...), t.Columns...)
		if _, err := db.Exec(buildCreateTable(t.Name, cols)); err != nil {
			return err
		}
		stmts := []string{
			fmt.Sprintf("CREATE UNIQUE INDEX %s_tr ON %s (Tenant, Row)", t.Name, t.Name),
			fmt.Sprintf("CREATE UNIQUE INDEX %s_tk ON %s (Tenant, %s)", t.Name, t.Name, t.Key),
		}
		for _, c := range t.Columns {
			if c.Indexed && c.Name != t.Key {
				stmts = append(stmts, fmt.Sprintf("CREATE INDEX %s_%s ON %s (Tenant, %s)", t.Name, c.Name, t.Name, c.Name))
			}
		}
		for _, ddl := range stmts {
			if _, err := db.Exec(ddl); err != nil {
				return err
			}
		}
	}
	for _, e := range l.s.schema.Extensions {
		cols := append(append([]Column{}, meta...), e.Columns...)
		if _, err := db.Exec(buildCreateTable(e.Name, cols)); err != nil {
			return err
		}
		if _, err := db.Exec(fmt.Sprintf("CREATE UNIQUE INDEX %s_tr ON %s (Tenant, Row)", e.Name, e.Name)); err != nil {
			return err
		}
		for _, c := range e.Columns {
			if c.Indexed {
				if _, err := db.Exec(fmt.Sprintf("CREATE INDEX %s_%s ON %s (Tenant, %s)", e.Name, c.Name, e.Name, c.Name)); err != nil {
					return err
				}
			}
		}
	}
	for _, tn := range tenants {
		if err := l.AddTenant(db, tn); err != nil {
			return err
		}
	}
	return nil
}

// AddTenant implements Layout: pure registration (the shared tables
// already exist), validating the tenant's extension set.
func (l *ExtensionLayout) AddTenant(_ *engine.DB, t *Tenant) error {
	for _, bt := range l.s.schema.Tables {
		if _, err := l.s.schema.LogicalColumns(t, bt.Name); err != nil {
			return err
		}
	}
	return l.s.addTenant(t)
}

// ExtendTenant enables an extension on-line: meta-data registration
// plus back-filling extension rows (all NULLs) for the tenant's
// existing logical rows so reconstruction joins keep matching.
func (l *ExtensionLayout) ExtendTenant(db *engine.DB, tenantID int64, extName string) error {
	tn, err := l.s.tenant(tenantID)
	if err != nil {
		return err
	}
	ext := l.s.schema.Extension(extName)
	if ext == nil {
		return fmt.Errorf("core: no extension %s", extName)
	}
	if tn.HasExtension(extName) {
		return fmt.Errorf("core: tenant %d already has extension %s", tenantID, extName)
	}
	rows, err := db.Query(fmt.Sprintf("SELECT Row FROM %s WHERE Tenant = %d", ext.Base, tenantID))
	if err != nil {
		return err
	}
	for _, r := range rows.Data {
		q := fmt.Sprintf("INSERT INTO %s (Tenant, Row) VALUES (%d, %d)", ext.Name, tenantID, r[0].Int)
		if _, err := db.Exec(q); err != nil {
			return err
		}
	}
	l.s.mu.Lock()
	tn.Extensions = append(tn.Extensions, extName)
	l.s.mu.Unlock()
	return nil
}

// Rewrite implements Layout.
func (l *ExtensionLayout) Rewrite(tenantID int64, st sql.Statement) (*Rewritten, error) {
	return genericRewrite(l, tenantID, st)
}

// colSource finds the physical table holding a logical column for a
// tenant: the base table or one of the tenant's extensions.
func (l *ExtensionLayout) colSource(tn *Tenant, table *Table, col string) (string, error) {
	if c, _ := table.Column(col); c != nil {
		return table.Name, nil
	}
	for _, en := range tn.Extensions {
		e := l.s.schema.Extension(en)
		if e == nil || !strings.EqualFold(e.Base, table.Name) {
			continue
		}
		for _, c := range e.Columns {
			if strings.EqualFold(c.Name, col) {
				return e.Name, nil
			}
		}
	}
	return "", fmt.Errorf("core: no column %s in %s for tenant %d", col, table.Name, tn.ID)
}

// tenantExtensionsOn lists the tenant's extensions of a base table.
func (l *ExtensionLayout) tenantExtensionsOn(tn *Tenant, table string) []*Extension {
	var out []*Extension
	for _, en := range tn.Extensions {
		e := l.s.schema.Extension(en)
		if e != nil && strings.EqualFold(e.Base, table) {
			out = append(out, e)
		}
	}
	return out
}

// reconstruct implements reconstructor: base table anchored, extension
// tables joined on (Tenant, Row).
func (l *ExtensionLayout) reconstruct(tn *Tenant, table *Table, used []Column, withRow bool) (*sql.SelectStmt, error) {
	// Which physical tables are needed, in deterministic order.
	srcAlias := map[string]string{}
	var srcOrder []string
	alias := func(phys string) string {
		k := strings.ToLower(phys)
		if a, ok := srcAlias[k]; ok {
			return a
		}
		a := fmt.Sprintf("s%d", len(srcOrder))
		if strings.EqualFold(phys, table.Name) {
			a = "b"
		}
		srcAlias[k] = a
		srcOrder = append(srcOrder, phys)
		return a
	}
	alias(table.Name) // anchor first

	sel := &sql.SelectStmt{}
	for _, c := range used {
		phys, err := l.colSource(tn, table, c.Name)
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, sql.SelectItem{
			Expr:  colRef(alias(phys), c.Name),
			Alias: c.Name,
		})
	}
	if withRow {
		sel.Items = append(sel.Items, sql.SelectItem{Expr: colRef("b", "Row"), Alias: rowCol})
	}

	// Flat conjunctive form (§6.1): base table plus extension tables
	// comma-joined with Row alignment in WHERE.
	conjs := []sql.Expr{eq(colRef("b", "Tenant"), intLit(tn.ID))}
	sel.From = append(sel.From, &sql.NamedTable{Name: table.Name, Alias: "b"})
	for _, phys := range srcOrder[1:] {
		a := srcAlias[strings.ToLower(phys)]
		sel.From = append(sel.From, &sql.NamedTable{Name: phys, Alias: a})
		conjs = append(conjs,
			eq(colRef(a, "Tenant"), intLit(tn.ID)),
			eq(colRef(a, "Row"), colRef("b", "Row")),
		)
	}
	sel.Where = and(conjs...)
	return sel, nil
}

// insertRows implements reconstructor: one batched INSERT per physical
// table; extension tables always receive a spine row so reconstruction
// joins do not drop logical rows with all-NULL extension data.
func (l *ExtensionLayout) insertRows(tn *Tenant, table *Table, cols []Column, rows [][]sql.Expr) ([]sql.Statement, error) {
	firstRow := l.s.nextRows(tn.ID, table.Name, int64(len(rows)))

	type target struct {
		stmt   *sql.InsertStmt
		colPos map[string]int // logical col (lower) -> position in stmt.Columns
	}
	targets := map[string]*target{}
	order := []string{table.Name}
	mk := func(phys string) *target {
		k := strings.ToLower(phys)
		if t, ok := targets[k]; ok {
			return t
		}
		t := &target{
			stmt:   &sql.InsertStmt{Table: phys, Columns: []string{"Tenant", "Row"}},
			colPos: map[string]int{},
		}
		targets[k] = t
		if !strings.EqualFold(phys, table.Name) {
			order = append(order, phys)
		}
		return t
	}
	mk(table.Name)
	for _, e := range l.tenantExtensionsOn(tn, table.Name) {
		mk(e.Name)
	}
	// Place provided columns.
	srcOf := make([]string, len(cols))
	for i, c := range cols {
		phys, err := l.colSource(tn, table, c.Name)
		if err != nil {
			return nil, err
		}
		srcOf[i] = phys
		t := mk(phys)
		t.colPos[strings.ToLower(c.Name)] = len(t.stmt.Columns)
		t.stmt.Columns = append(t.stmt.Columns, c.Name)
	}
	for ri, row := range rows {
		rowID := firstRow + int64(ri)
		for _, phys := range order {
			t := targets[strings.ToLower(phys)]
			vals := make([]sql.Expr, len(t.stmt.Columns))
			vals[0] = intLit(tn.ID)
			vals[1] = intLit(rowID)
			for i := 2; i < len(vals); i++ {
				vals[i] = lit(types.Null())
			}
			t.stmt.Rows = append(t.stmt.Rows, vals)
		}
		for i, expr := range row {
			t := targets[strings.ToLower(srcOf[i])]
			pos := t.colPos[strings.ToLower(cols[i].Name)]
			t.stmt.Rows[len(t.stmt.Rows)-1][pos] = expr
		}
	}
	var out []sql.Statement
	for _, phys := range order {
		out = append(out, targets[strings.ToLower(phys)].stmt)
	}
	return out, nil
}

// phaseBUpdate implements reconstructor.
func (l *ExtensionLayout) phaseBUpdate(tn *Tenant, table *Table, setCols []Column, rows [][]types.Value) []sql.Statement {
	// Group SET columns by physical table.
	groups := map[string][]int{} // phys -> indexes into setCols
	var order []string
	for i, c := range setCols {
		phys, err := l.colSource(tn, table, c.Name)
		if err != nil {
			continue // validated earlier
		}
		if _, ok := groups[strings.ToLower(phys)]; !ok {
			order = append(order, phys)
		}
		groups[strings.ToLower(phys)] = append(groups[strings.ToLower(phys)], i)
	}
	var out []sql.Statement
	if constantSets(rows, len(setCols)) {
		rowIDs := column(rows, 0)
		for _, phys := range order {
			up := &sql.UpdateStmt{Table: phys}
			for _, i := range groups[strings.ToLower(phys)] {
				up.Set = append(up.Set, sql.Assignment{Column: setCols[i].Name, Value: lit(rows[0][i+1])})
			}
			up.Where = and(eq(colRef("", "Tenant"), intLit(tn.ID)), inList(colRef("", "Row"), rowIDs))
			out = append(out, up)
		}
		return out
	}
	for _, r := range rows {
		for _, phys := range order {
			up := &sql.UpdateStmt{Table: phys}
			for _, i := range groups[strings.ToLower(phys)] {
				up.Set = append(up.Set, sql.Assignment{Column: setCols[i].Name, Value: lit(r[i+1])})
			}
			up.Where = and(eq(colRef("", "Tenant"), intLit(tn.ID)), eq(colRef("", "Row"), lit(r[0])))
			out = append(out, up)
		}
	}
	return out
}

// phaseBDelete implements reconstructor.
func (l *ExtensionLayout) phaseBDelete(tn *Tenant, table *Table, rows [][]types.Value) []sql.Statement {
	rowIDs := column(rows, 0)
	phys := []string{table.Name}
	for _, e := range l.tenantExtensionsOn(tn, table.Name) {
		phys = append(phys, e.Name)
	}
	var out []sql.Statement
	for _, p := range phys {
		out = append(out, &sql.DeleteStmt{
			Table: p,
			Where: and(eq(colRef("", "Tenant"), intLit(tn.ID)), inList(colRef("", "Row"), rowIDs)),
		})
	}
	return out
}

// TenantByID exposes the tenant registry (Migrator support).
func (l *ExtensionLayout) TenantByID(id int64) (*Tenant, error) { return l.s.TenantByID(id) }

// Tenants lists the registered tenants.
func (l *ExtensionLayout) Tenants() []*Tenant { return l.s.Tenants() }
