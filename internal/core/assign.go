package core

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// ChunkTableDef describes the shape of one generic chunk table: a name
// and an ordered list of typed data columns. Physical column names are
// generated per type (Int1, Str1, Dbl1, Date1, ...), matching the
// paper's Chunk_int|str example.
type ChunkTableDef struct {
	Name string
	Cols []types.ColumnType
	// ValueIndex adds a value index (Tenant, Table, Chunk, <col>) on
	// every data column — the paper's indexed ChunkIndex table that
	// mimics key/foreign-key indexes. The chunk-assignment algorithm
	// routes Indexed logical columns only to ValueIndex defs.
	ValueIndex bool
}

// PhysCols generates the data-column names of the def.
func (d *ChunkTableDef) PhysCols() []string {
	counts := map[types.Kind]int{}
	out := make([]string, len(d.Cols))
	for i, t := range d.Cols {
		counts[t.Kind]++
		out[i] = fmt.Sprintf("%s%d", kindPrefix(t.Kind), counts[t.Kind])
	}
	return out
}

func kindPrefix(k types.Kind) string {
	switch k {
	case types.KindInt:
		return "Int"
	case types.KindFloat:
		return "Dbl"
	case types.KindDate:
		return "Date"
	case types.KindBool:
		return "Bool"
	default:
		return "Str"
	}
}

// chunkStorageKind maps a logical column type onto the chunk-column
// kind that stores it. Booleans ride in integer columns.
func chunkStorageKind(k types.Kind) types.Kind {
	if k == types.KindBool {
		return types.KindInt
	}
	return k
}

// chunkGroup is one chunk of one tenant-table: a set of logical columns
// folded into a chunk table under a chunk ID.
type chunkGroup struct {
	ID   int
	Def  *ChunkTableDef
	Cols []Column // logical columns in this chunk
	Phys []string // physical column name per logical column
}

// colLoc locates a logical column inside an assignment.
type colLoc struct {
	group *chunkGroup
	phys  string
}

// assignment maps one tenant-table's logical columns onto chunks.
type assignment struct {
	groups []*chunkGroup
	loc    map[string]colLoc // lowercased logical name -> location
}

func (a *assignment) locate(col string) (colLoc, bool) {
	l, ok := a.loc[strings.ToLower(col)]
	return l, ok
}

// groupOf returns the group holding a logical column.
func (a *assignment) groupOf(col string) *chunkGroup {
	if l, ok := a.locate(col); ok {
		return l.group
	}
	return nil
}

// assignColumns partitions logical columns into chunks over the
// available chunk-table shapes (the paper's §3 Chunk Table mapping).
// The greedy heuristic repeatedly picks the def that packs the most of
// the remaining columns (ties: least wasted slots, then def order),
// assigns them a chunk ID, and recurses on the rest. startID offsets
// chunk IDs so on-line extensions append new chunks without disturbing
// existing data.
func assignColumns(cols []Column, defs []*ChunkTableDef, startID int) ([]*chunkGroup, error) {
	remaining := append([]Column(nil), cols...)
	var groups []*chunkGroup
	id := startID
	for len(remaining) > 0 {
		var best *ChunkTableDef
		var bestPacked []int
		for _, d := range defs {
			packed := packInto(remaining, d)
			switch {
			case len(packed) > len(bestPacked):
				best, bestPacked = d, packed
			case len(packed) == len(bestPacked) && best != nil &&
				len(packed) > 0 && len(d.Cols) < len(best.Cols):
				best, bestPacked = d, packed // less waste
			}
		}
		if len(bestPacked) == 0 {
			return nil, fmt.Errorf("core: no chunk table can store column %s (%s, indexed=%v)",
				remaining[0].Name, remaining[0].Type, remaining[0].Indexed)
		}
		g := &chunkGroup{ID: id, Def: best}
		id++
		// packInto returned indexes into remaining; map to def columns.
		phys := best.PhysCols()
		free := make([]bool, len(best.Cols))
		for i := range free {
			free[i] = true
		}
		taken := map[int]bool{}
		for _, ri := range bestPacked {
			c := remaining[ri]
			want := chunkStorageKind(c.Type.Kind)
			for di, dt := range best.Cols {
				if free[di] && dt.Kind == want {
					free[di] = false
					g.Cols = append(g.Cols, c)
					g.Phys = append(g.Phys, phys[di])
					break
				}
			}
			taken[ri] = true
		}
		var rest []Column
		for i, c := range remaining {
			if !taken[i] {
				rest = append(rest, c)
			}
		}
		remaining = rest
		groups = append(groups, g)
	}
	return groups, nil
}

// packInto returns the indexes of the remaining columns (in order) that
// fit into one instance of def, respecting type slots and the
// indexed-column routing rule.
func packInto(remaining []Column, def *ChunkTableDef) []int {
	slots := map[types.Kind]int{}
	for _, t := range def.Cols {
		slots[t.Kind]++
	}
	var out []int
	for i, c := range remaining {
		if c.Indexed && !def.ValueIndex {
			continue
		}
		want := chunkStorageKind(c.Type.Kind)
		if slots[want] > 0 {
			slots[want]--
			out = append(out, i)
		}
	}
	return out
}

// newAssignment builds the full assignment for a column list.
func newAssignment(cols []Column, defs []*ChunkTableDef) (*assignment, error) {
	groups, err := assignColumns(cols, defs, 0)
	if err != nil {
		return nil, err
	}
	a := &assignment{loc: map[string]colLoc{}}
	a.groups = groups
	for _, g := range groups {
		for i, c := range g.Cols {
			a.loc[strings.ToLower(c.Name)] = colLoc{group: g, phys: g.Phys[i]}
		}
	}
	return a, nil
}

// extend appends chunks for newly added columns.
func (a *assignment) extend(newCols []Column, defs []*ChunkTableDef) error {
	groups, err := assignColumns(newCols, defs, len(a.groups))
	if err != nil {
		return err
	}
	for _, g := range groups {
		a.groups = append(a.groups, g)
		for i, c := range g.Cols {
			a.loc[strings.ToLower(c.Name)] = colLoc{group: g, phys: g.Phys[i]}
		}
	}
	return nil
}

// UniformChunkDefs builds a standard pair of chunk-table shapes from a
// logical schema: an indexed single-int "ChunkIndex" (for keys and
// foreign keys) and a "ChunkData" table with width data columns whose
// type mix matches the schema's column population. This is the
// paper's §6.2 configuration generalized to arbitrary schemas.
func UniformChunkDefs(s *Schema, width int) []*ChunkTableDef {
	if width < 1 {
		width = 1
	}
	counts := map[types.Kind]int{}
	indexedKinds := map[types.Kind]bool{}
	total := 0
	add := func(cols []Column) {
		for _, c := range cols {
			if c.Indexed {
				indexedKinds[chunkStorageKind(c.Type.Kind)] = true
				continue // routed to an indexed def
			}
			counts[chunkStorageKind(c.Type.Kind)]++
			total++
		}
	}
	for _, t := range s.Tables {
		add(t.Columns)
	}
	for _, e := range s.Extensions {
		add(e.Columns)
	}
	if total == 0 {
		counts[types.KindString] = 1
		total = 1
	}
	// Apportion width slots across kinds by population, at least one
	// slot for every kind present.
	kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindDate, types.KindString}
	data := &ChunkTableDef{Name: "ChunkData"}
	assigned := 0
	for _, k := range kinds {
		if counts[k] == 0 {
			continue
		}
		n := width * counts[k] / total
		if n < 1 {
			n = 1
		}
		for i := 0; i < n && assigned < width; i++ {
			data.Cols = append(data.Cols, types.ColumnType{Kind: k})
			assigned++
		}
	}
	for assigned < width {
		data.Cols = append(data.Cols, types.ColumnType{Kind: types.KindString})
		assigned++
	}
	// One single-column indexed def per kind that has indexed columns
	// (the ChunkIndex tables of §6.2, generalized beyond integers).
	indexSuffix := map[types.Kind]string{
		types.KindInt: "Int", types.KindFloat: "Dbl",
		types.KindDate: "Date", types.KindString: "Str",
	}
	out := []*ChunkTableDef{}
	if len(indexedKinds) == 0 {
		indexedKinds[types.KindInt] = true // keys are always indexed ints somewhere
	}
	for _, k := range kinds {
		if indexedKinds[k] {
			out = append(out, &ChunkTableDef{
				Name:       "ChunkIndex" + indexSuffix[k],
				Cols:       []types.ColumnType{{Kind: k}},
				ValueIndex: true,
			})
		}
	}
	return append(out, data)
}
