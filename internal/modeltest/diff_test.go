package modeltest

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mvcc"
	"repro/internal/repl"
	"repro/internal/types"
)

var seedFlag = flag.Int64("modelseed", 0, "run the differential test with a single extra seed")

// classify maps an engine error onto the model's error classes.
func classify(err error) string {
	switch {
	case err == nil:
		return ClsOK
	case errors.Is(err, engine.ErrTxnAborted):
		return ClsAborted
	case errors.Is(err, mvcc.ErrWriteConflict):
		return ClsConflict
	case errors.Is(err, engine.ErrNoTxn):
		return ClsNoTxn
	case errors.Is(err, engine.ErrTxnOpen):
		return ClsTxnOpen
	case errors.Is(err, engine.ErrNoSavepoint):
		return ClsNoSavepoint
	case strings.Contains(err.Error(), "unique"):
		return ClsUnique
	default:
		return "other: " + err.Error()
	}
}

func fmtVal(v types.Value) string {
	switch v.Kind {
	case types.KindNull:
		return "NULL"
	case types.KindInt:
		return fmt.Sprintf("%d", v.Int)
	case types.KindString:
		return v.Str
	default:
		return fmt.Sprintf("%v", v)
	}
}

// harness drives one engine session and its model twin in lockstep.
type harness struct {
	t     *testing.T
	seed  int64
	step  int
	op    Op
	db    *engine.DB
	model *Model
	es    []*engine.Session
	ms    []*MSession
	// follower, when set, is a live replica fed from the primary's WAL
	// and held to the same model (see repl_diff_test.go).
	follower *repl.Follower
}

func (h *harness) failf(format string, args ...interface{}) {
	h.t.Fatalf("seed %d step %d [%s]: %s", h.seed, h.step, h.op, fmt.Sprintf(format, args...))
}

// apply runs op on engine session i and model session i and compares
// the outcome.
func (h *harness) apply(i int) {
	op := h.op
	es, ms := h.es[i], h.ms[i]
	switch op.Kind {
	case OpSelectPoint:
		rows, err := es.Query(fmt.Sprintf("SELECT v, bal FROM %s WHERE k = ?", op.Table), types.NewInt(op.K))
		want, wcls := ms.SelectPoint(op.Table, op.K)
		if got := classify(err); got != wcls {
			h.failf("error class = %s, model %s", got, wcls)
		}
		if err != nil {
			return
		}
		if len(rows.Data) != len(want) {
			h.failf("%d rows, model %d", len(rows.Data), len(want))
		}
		for r := range want {
			gv, gb := fmtVal(rows.Data[r][0]), fmtVal(rows.Data[r][1])
			wv, wb := want[r][0].(string), fmt.Sprintf("%d", want[r][1].(int64))
			if gv != wv || gb != wb {
				h.failf("row %d = (%s, %s), model (%s, %s)", r, gv, gb, wv, wb)
			}
		}
	case OpSelectRange:
		rows, err := es.Query(fmt.Sprintf(
			"SELECT k, bal FROM %s WHERE k >= ? AND k < ? ORDER BY k", op.Table),
			types.NewInt(op.Lo), types.NewInt(op.Hi))
		want, wcls := ms.SelectRange(op.Table, op.Lo, op.Hi)
		if got := classify(err); got != wcls {
			h.failf("error class = %s, model %s", got, wcls)
		}
		if err != nil {
			return
		}
		if len(rows.Data) != len(want) {
			h.failf("%d rows, model %d", len(rows.Data), len(want))
		}
		for r := range want {
			if rows.Data[r][0].Int != want[r][0] || rows.Data[r][1].Int != want[r][1] {
				h.failf("row %d = (%d, %d), model (%d, %d)", r,
					rows.Data[r][0].Int, rows.Data[r][1].Int, want[r][0], want[r][1])
			}
		}
	case OpSelectAgg:
		rows, err := es.Query(fmt.Sprintf("SELECT COUNT(*), SUM(bal) FROM %s", op.Table))
		wcount, wsum, wnull, wcls := ms.SelectAgg(op.Table)
		if got := classify(err); got != wcls {
			h.failf("error class = %s, model %s", got, wcls)
		}
		if err != nil {
			return
		}
		if rows.Data[0][0].Int != wcount {
			h.failf("COUNT = %d, model %d", rows.Data[0][0].Int, wcount)
		}
		gotNull := rows.Data[0][1].Kind == types.KindNull
		if gotNull != wnull || (!wnull && rows.Data[0][1].Int != wsum) {
			h.failf("SUM = %s, model sum=%d null=%v", fmtVal(rows.Data[0][1]), wsum, wnull)
		}
	default:
		h.applyExec(i)
	}
}

func (h *harness) applyExec(i int) {
	op := h.op
	es, ms := h.es[i], h.ms[i]
	var (
		affected int64
		cls      string
		q        string
		params   []types.Value
	)
	checkRows := false
	switch op.Kind {
	case OpBegin:
		q, cls = "BEGIN", ms.Begin()
	case OpCommit:
		q, cls = "COMMIT", ms.Commit()
	case OpRollback:
		q, cls = "ROLLBACK", ms.Rollback()
	case OpSavepoint:
		q = "SAVEPOINT " + op.Name
		cls = ms.Savepoint(op.Name)
	case OpRollbackTo:
		q = "ROLLBACK TO " + op.Name
		cls = ms.RollbackTo(op.Name)
	case OpInsert:
		q = fmt.Sprintf("INSERT INTO %s VALUES (?, ?, ?)", op.Table)
		params = []types.Value{types.NewInt(op.K), types.NewString(op.Str), types.NewInt(op.Delta)}
		affected, cls = ms.Insert(op.Table, op.K, op.Str, op.Delta)
		checkRows = true
	case OpUpdateBal:
		q = fmt.Sprintf("UPDATE %s SET bal = bal + ? WHERE k = ?", op.Table)
		params = []types.Value{types.NewInt(op.Delta), types.NewInt(op.K)}
		affected, cls = ms.UpdateBal(op.Table, op.K, op.Delta)
		checkRows = true
	case OpUpdateV:
		q = fmt.Sprintf("UPDATE %s SET v = ? WHERE k = ?", op.Table)
		params = []types.Value{types.NewString(op.Str), types.NewInt(op.K)}
		affected, cls = ms.UpdateV(op.Table, op.K, op.Str)
		checkRows = true
	case OpDelete:
		q = fmt.Sprintf("DELETE FROM %s WHERE k = ?", op.Table)
		params = []types.Value{types.NewInt(op.K)}
		affected, cls = ms.Delete(op.Table, op.K)
		checkRows = true
	case OpRangeUpdate:
		q = fmt.Sprintf("UPDATE %s SET bal = bal + ? WHERE k >= ? AND k < ?", op.Table)
		params = []types.Value{types.NewInt(op.Delta), types.NewInt(op.Lo), types.NewInt(op.Hi)}
		affected, cls = ms.RangeUpdateBal(op.Table, op.Lo, op.Hi, op.Delta)
		checkRows = true
	default:
		h.failf("unhandled op kind %d", op.Kind)
	}
	res, err := es.Exec(q, params...)
	if got := classify(err); got != cls {
		h.failf("error class = %s, model %s (err: %v)", got, cls, err)
	}
	if err == nil && checkRows && res.RowsAffected != affected {
		h.failf("rows affected = %d, model %d", res.RowsAffected, affected)
	}
}

// compareCommitted checks the engine's committed state (as an
// autocommit reader sees it) against the model's ground truth.
func (h *harness) compareCommitted() {
	h.compareCommittedOn(h.db, "primary")
}

// compareCommittedOn runs the committed-state check against any DB —
// the primary, or a replica that claims to have applied through the
// latest commit.
func (h *harness) compareCommittedOn(db *engine.DB, who string) {
	for _, table := range []string{"acct1", "acct2"} {
		rows, err := db.Query(fmt.Sprintf("SELECT k, v, bal FROM %s ORDER BY k", table))
		if err != nil {
			h.failf("%s committed-state query on %s: %v", who, table, err)
		}
		want := h.model.CommittedState(table)
		if len(rows.Data) != len(want) {
			h.failf("%s %s: %d committed rows, model %d", who, table, len(rows.Data), len(want))
		}
		for r := range want {
			gk, gv, gb := rows.Data[r][0].Int, fmtVal(rows.Data[r][1]), rows.Data[r][2].Int
			wk, wv, wb := want[r][0].(int64), want[r][1].(string), want[r][2].(int64)
			if gk != wk || gv != wv || gb != wb {
				h.failf("%s %s row %d = (%d, %s, %d), model (%d, %s, %d)",
					who, table, r, gk, gv, gb, wk, wv, wb)
			}
		}
	}
}

// runSeed drives one full differential run: 3 concurrent logical
// sessions, serialized statement-by-statement by a deterministic
// generator, until the model has completed at least minTxns
// transactions; the engine must agree on every statement outcome,
// every query result, the periodic committed snapshots, the final
// state, and the transaction counters.
func runSeed(t *testing.T, seed int64, minTxns int) {
	runSeedChurn(t, seed, minTxns, 0)
}

// runSeedChurn is runSeed with optional online-ALTER churn: every
// churnEvery steps the driver runs a full evolution cycle (ADD COLUMN,
// widen it, DROP it) on both tables, mid-stream, while sessions hold
// open transactions. The model knows nothing about schemas — which is
// the point: the workload never references the churned column, so
// every statement outcome and every committed state must be exactly
// what the model predicts, ALTERs or not. Transactions opened before a
// cycle keep planning under their snapshot's schema version; positional
// INSERTs keep working because a completed cycle leaves the visible
// column set unchanged (the dropped slot is not insertable).
func runSeedChurn(t *testing.T, seed int64, minTxns, churnEvery int) {
	runSeedReplicated(t, seed, minTxns, churnEvery, false)
}

// runSeedReplicated is runSeedChurn with an optional third participant:
// a live follower bootstrapped before the workload and caught up after
// every model-acknowledged commit. Once a commit's LSN is applied the
// replica must agree with the model (and therefore the primary) on the
// full committed state — the model/primary/replica parity check.
func runSeedReplicated(t *testing.T, seed int64, minTxns, churnEvery int, replicate bool) {
	const sessions = 3
	// A short conflict wait keeps the driver fast: statements are issued
	// serially, so every engine-side park (row wait or admission) runs
	// its full deadline before resolving exactly as the model predicts —
	// bounded waits and forced admission never change statement outcomes
	// under a serial schedule, only their latency.
	db := engine.Open(engine.Config{ConflictWait: 100 * time.Microsecond})
	model := NewModel("acct1", "acct2")
	for _, table := range []string{"acct1", "acct2"} {
		if _, err := db.Exec(fmt.Sprintf(
			"CREATE TABLE %s (k INTEGER NOT NULL, v VARCHAR(100), bal INTEGER)", table)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf(
			"CREATE UNIQUE INDEX %s_pk ON %s (k)", table, table)); err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < SeedRows; k++ {
			v := fmt.Sprintf("init-%04d", k)
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (?, ?, 100)", table),
				types.NewInt(k), types.NewString(v)); err != nil {
				t.Fatal(err)
			}
			model.Seed(table, k, v, 100)
		}
	}

	h := &harness{t: t, seed: seed, db: db, model: model}
	for i := 0; i < sessions; i++ {
		h.es = append(h.es, db.Session())
		h.ms = append(h.ms, model.Session())
	}
	if replicate {
		f, err := repl.Bootstrap(db)
		if err != nil {
			t.Fatalf("seed %d: bootstrap follower: %v", seed, err)
		}
		h.follower = f
	}
	gen := NewGenerator(seed)

	maxSteps := minTxns * 60
	cycles := 0
	lastCommits := 0
	for h.step = 1; h.step <= maxSteps; h.step++ {
		if model.Commits+model.Aborts >= minTxns {
			break
		}
		if churnEvery > 0 && h.step%churnEvery == 0 {
			cycles++
			for _, table := range []string{"acct1", "acct2"} {
				col := fmt.Sprintf("evo%d", cycles)
				for _, q := range []string{
					fmt.Sprintf("ALTER TABLE %s ADD COLUMN %s INTEGER", table, col),
					fmt.Sprintf("ALTER TABLE %s ALTER COLUMN %s TYPE FLOAT", table, col),
					fmt.Sprintf("ALTER TABLE %s DROP COLUMN %s", table, col),
				} {
					if _, err := db.Exec(q); err != nil {
						t.Fatalf("seed %d step %d: %s: %v", seed, h.step, q, err)
					}
				}
			}
		}
		i := gen.rng.Intn(sessions)
		h.op = gen.Next(h.ms[i])
		h.apply(i)
		if replicate && model.Commits > lastCommits {
			lastCommits = model.Commits
			h.syncFollower()
			if churnEvery == 0 {
				// No background writers: catching up must land exactly on
				// the primary's durable horizon.
				if got, want := h.follower.App.AppliedLSN(), db.WAL().DurableLSN(); got != want {
					h.failf("replica applied LSN %d, primary durable %d", got, want)
				}
			}
			h.compareCommittedOn(h.follower.DB, "replica")
		}
		if h.step%1000 == 0 {
			h.compareCommitted()
		}
	}
	if got := model.Commits + model.Aborts; got < minTxns {
		t.Fatalf("seed %d: only %d transactions finished in %d steps", seed, got, h.step)
	}

	// Wind down: settle every open transaction the same way on both.
	h.op = Op{Kind: OpRollback}
	for i := 0; i < sessions; i++ {
		if h.ms[i].InTxn() {
			h.apply(i)
		}
		if err := h.es[i].Close(); err != nil {
			t.Fatalf("seed %d: close session %d: %v", seed, i, err)
		}
	}
	if churnEvery > 0 {
		// Let every backfill drain (sessions are closed, so no snapshot
		// blocks the prune), then re-check: the background rewrites must
		// not have changed any committed logical state.
		if err := db.WaitBackfill(10 * time.Second); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	h.compareCommitted()
	if replicate {
		h.syncFollower()
		h.compareCommittedOn(h.follower.DB, "replica")
	}

	// The engine's transaction counters must match the model's exactly.
	st := db.Stats()
	if st.TxnCommits != int64(model.Commits) ||
		st.TxnAborts != int64(model.Aborts) ||
		st.TxnConflicts != int64(model.Conflict) {
		t.Errorf("seed %d: counters engine(commits=%d aborts=%d conflicts=%d) model(%d %d %d)",
			seed, st.TxnCommits, st.TxnAborts, st.TxnConflicts,
			model.Commits, model.Aborts, model.Conflict)
	}
	for _, table := range []string{"acct1", "acct2"} {
		tab, err := db.Catalog().Table(table)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.CheckInvariants(); err != nil {
			t.Errorf("seed %d: %s invariants: %v", seed, table, err)
		}
	}
	t.Logf("seed %d: %d steps, %d commits, %d aborts (%d conflicts)",
		seed, h.step, model.Commits, model.Aborts, model.Conflict)
}

// TestDifferentialSeeds is the acceptance run: three fixed seeds, at
// least 1000 transactions each, engine and model in lockstep.
func TestDifferentialSeeds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSeed(t, seed, 1000)
		})
	}
}

// TestDifferentialAlterChurn reruns the differential workload with an
// online-ALTER evolution cycle injected every 400 steps: the engine
// under active schema churn must stay statement-for-statement
// equivalent to a model that has never heard of ALTER, and the
// post-run backfill must leave committed state untouched.
func TestDifferentialAlterChurn(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSeedChurn(t, seed, 500, 400)
		})
	}
}

// TestDifferentialExtraSeed runs one more seed from -modelseed, for
// soak runs beyond the fixed set.
func TestDifferentialExtraSeed(t *testing.T) {
	if *seedFlag == 0 {
		t.Skip("pass -modelseed N to run an extra differential seed")
	}
	runSeed(t, *seedFlag, 1000)
}
