// Package modeltest checks the engine's transactional semantics
// against an executable model: a tiny in-memory multi-version database
// implementing snapshot isolation with first-updater-wins conflicts,
// driven in lockstep with the real engine over randomized multi-tenant
// transaction workloads. Any divergence — in rows affected, error
// class, query results, or final committed state — is a bug in one of
// the two, and the model is small enough to audit by eye.
//
// The engine's bounded-wait machinery (row waits, write-admission
// parks, forced admission — DESIGN.md §12) needs no new outcome
// classes here: the driver issues statements serially, so every
// engine-side park runs its full deadline and then resolves exactly as
// an immediate decision would — a rescued wait is ClsOK, an expired
// one ClsConflict. Bounded waiting changes statement latency, never
// statement outcome, under a serial schedule. What the model does
// mirror is lazy snapshot pinning: a transaction's beginTS freezes at
// its first observing statement (pin), not at BEGIN.
package modeltest

import "sort"

// Error classes the model predicts; the driver maps engine errors onto
// the same labels.
const (
	ClsOK          = "ok"
	ClsConflict    = "conflict"    // mvcc.ErrWriteConflict (txn rolled back if one was open)
	ClsAborted     = "aborted"     // statement refused: txn already conflict-aborted
	ClsNoTxn       = "notxn"       // COMMIT/ROLLBACK/SAVEPOINT outside a transaction
	ClsTxnOpen     = "txnopen"     // BEGIN inside a transaction
	ClsNoSavepoint = "nosavepoint" // ROLLBACK TO an unknown name
	ClsUnique      = "unique"      // unique-constraint violation (statement-level)
)

// ver is one committed version of a row. ts is the model's commit
// clock value; del marks a tombstone.
type ver struct {
	ts  uint64
	del bool
	v   string
	bal int64
}

// mtable holds the committed version lists of one table, newest last,
// keyed by the unique key column.
type mtable struct {
	vers map[int64][]ver
}

// ovEntry is one uncommitted write in a transaction's overlay.
type ovEntry struct {
	del bool
	v   string
	bal int64
}

// overlay maps table -> key -> uncommitted state.
type overlay map[string]map[int64]*ovEntry

func (o overlay) clone() overlay {
	c := make(overlay, len(o))
	for t, keys := range o {
		ck := make(map[int64]*ovEntry, len(keys))
		for k, e := range keys {
			cp := *e
			ck[k] = &cp
		}
		c[t] = ck
	}
	return c
}

func (o overlay) get(table string, k int64) *ovEntry {
	if keys, ok := o[table]; ok {
		return keys[k]
	}
	return nil
}

func (o overlay) put(table string, k int64, e *ovEntry) {
	keys, ok := o[table]
	if !ok {
		keys = make(map[int64]*ovEntry)
		o[table] = keys
	}
	keys[k] = e
}

// Model is the reference database: committed versions plus the
// uncommitted overlays of its sessions. All methods assume a single
// driver goroutine (the harness serializes every statement).
type Model struct {
	clock    uint64
	tables   map[string]*mtable
	sessions []*MSession

	// Transaction outcome counters, mirroring engine.Stats: only
	// session transactions count (autocommit statements do not).
	Commits  int // durable COMMITs (including read-only)
	Aborts   int // explicit ROLLBACKs + conflict aborts
	Conflict int // conflict-forced aborts (subset of Aborts)
}

// NewModel builds a model with the given tables, all empty.
func NewModel(tables ...string) *Model {
	m := &Model{tables: make(map[string]*mtable)}
	for _, t := range tables {
		m.tables[t] = &mtable{vers: make(map[int64][]ver)}
	}
	return m
}

// Seed installs a committed row at clock zero (visible to every
// snapshot), bypassing transaction machinery — the driver seeds the
// real database before any session begins.
func (m *Model) Seed(table string, k int64, v string, bal int64) {
	mt := m.tables[table]
	mt.vers[k] = append(mt.vers[k], ver{ts: 0, v: v, bal: bal})
}

// Session adds a connection to the model.
func (m *Model) Session() *MSession {
	s := &MSession{m: m, id: len(m.sessions)}
	m.sessions = append(m.sessions, s)
	return s
}

// visibleAt returns the newest version of (table, k) committed at or
// before snapshot ts, or nil.
func (m *Model) visibleAt(table string, k int64, ts uint64) *ver {
	vs := m.tables[table].vers[k]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].ts <= ts {
			return &vs[i]
		}
	}
	return nil
}

// newest returns the newest committed version of (table, k), or nil.
func (m *Model) newest(table string, k int64) *ver {
	vs := m.tables[table].vers[k]
	if len(vs) == 0 {
		return nil
	}
	return &vs[len(vs)-1]
}

// foreignWrite reports whether any other open transaction has an
// uncommitted write on (table, k) — the first-updater-wins "first
// updater is still active" case.
func (m *Model) foreignWrite(self *MSession, table string, k int64) bool {
	for _, s := range m.sessions {
		if s != self && s.inTxn && s.ov.get(table, k) != nil {
			return true
		}
	}
	return false
}

// keys returns every key that has either a committed version or an
// overlay entry visible to the reading session, sorted.
func (m *Model) keysFor(s *MSession, table string) []int64 {
	seen := map[int64]bool{}
	for k := range m.tables[table].vers {
		seen[k] = true
	}
	if s != nil && s.inTxn {
		for k := range s.ov[table] {
			seen[k] = true
		}
	}
	ks := make([]int64, 0, len(seen))
	for k := range seen {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// MSession mirrors engine.Session's transaction state machine.
type MSession struct {
	m       *Model
	id      int
	inTxn   bool
	aborted bool
	beginTS uint64
	pinned  bool // snapshot observed; beginTS frozen (lazy pinning)
	ov      overlay
	saves   []msave
}

type msave struct {
	name string
	ov   overlay
}

// InTxn mirrors engine.Session.InTxn (aborted still counts: the
// session owes a ROLLBACK).
func (s *MSession) InTxn() bool { return s.inTxn || s.aborted }

// Aborted reports the conflict-aborted state.
func (s *MSession) Aborted() bool { return s.aborted }

// pin freezes the transaction's snapshot at its first observation,
// mirroring the engine's lazy snapshot pinning (mvcc.Manager.Pin):
// BEGIN gives a provisional snapshot, and the first statement that
// could observe it re-stamps it at the current clock. Transaction
// control (SAVEPOINT, ROLLBACK TO) does not pin — it observes nothing
// beyond the session's own overlay.
func (s *MSession) pin() {
	if s.inTxn && !s.pinned {
		s.pinned = true
		s.beginTS = s.m.clock
	}
}

// read resolves (table, k) for this session: own overlay first, then
// the snapshot (or latest committed state outside a transaction).
func (s *MSession) read(table string, k int64) (string, int64, bool) {
	if s.inTxn {
		if e := s.ov.get(table, k); e != nil {
			if e.del {
				return "", 0, false
			}
			return e.v, e.bal, true
		}
		if v := s.m.visibleAt(table, k, s.beginTS); v != nil && !v.del {
			return v.v, v.bal, true
		}
		return "", 0, false
	}
	if v := s.m.newest(table, k); v != nil && !v.del {
		return v.v, v.bal, true
	}
	return "", 0, false
}

// --- transaction control ---

func (s *MSession) Begin() string {
	if s.aborted {
		return ClsAborted
	}
	if s.inTxn {
		return ClsTxnOpen
	}
	s.inTxn = true
	s.beginTS = s.m.clock // provisional until pinned
	s.pinned = false
	s.ov = make(overlay)
	s.saves = nil
	return ClsOK
}

func (s *MSession) Commit() string {
	if s.aborted {
		s.aborted = false
		return ClsAborted
	}
	if !s.inTxn {
		return ClsNoTxn
	}
	s.m.clock++
	ts := s.m.clock
	for table, keys := range s.ov {
		mt := s.m.tables[table]
		for k, e := range keys {
			mt.vers[k] = append(mt.vers[k], ver{ts: ts, del: e.del, v: e.v, bal: e.bal})
		}
	}
	s.m.Commits++
	s.clear()
	return ClsOK
}

func (s *MSession) Rollback() string {
	if s.aborted {
		s.aborted = false
		return ClsOK
	}
	if !s.inTxn {
		return ClsNoTxn
	}
	s.m.Aborts++
	s.clear()
	return ClsOK
}

func (s *MSession) Savepoint(name string) string {
	if s.aborted {
		return ClsAborted
	}
	if !s.inTxn {
		return ClsNoTxn
	}
	s.saves = append(s.saves, msave{name: name, ov: s.ov.clone()})
	return ClsOK
}

func (s *MSession) RollbackTo(name string) string {
	if s.aborted {
		return ClsAborted
	}
	if !s.inTxn {
		return ClsNoTxn
	}
	found := -1
	for i := len(s.saves) - 1; i >= 0; i-- {
		if s.saves[i].name == name {
			found = i
			break
		}
	}
	if found < 0 {
		return ClsNoSavepoint
	}
	// Later savepoints are destroyed; the named one survives (so its
	// snapshot must stay intact — restore from a fresh clone).
	s.saves = s.saves[:found+1]
	s.ov = s.saves[found].ov.clone()
	return ClsOK
}

func (s *MSession) clear() {
	s.inTxn = false
	s.aborted = false
	s.pinned = false
	s.ov = nil
	s.saves = nil
}

// conflictAbort rolls the open transaction back after a write-write
// conflict, mirroring the engine's forced abort.
func (s *MSession) conflictAbort() {
	s.m.Conflict++
	s.m.Aborts++
	s.clear()
	s.aborted = true
}

// --- DML ---

// writeConflicts decides first-updater-wins for an update/delete of a
// row this session can see: the newest committed version is newer than
// the snapshot, or another open transaction wrote the row.
func (s *MSession) writeConflicts(table string, k int64) bool {
	if s.m.foreignWrite(s, table, k) {
		return true
	}
	if s.inTxn {
		if n := s.m.newest(table, k); n != nil && n.ts > s.beginTS {
			return true
		}
	}
	return false
}

// Insert models INSERT INTO table VALUES (k, v, bal).
func (s *MSession) Insert(table string, k int64, v string, bal int64) (int64, string) {
	if s.aborted {
		return 0, ClsAborted
	}
	s.pin()
	// Unique check against current state, classified like the engine:
	// key held or shadowed by an uncommitted foreign write -> conflict;
	// committed live row (or own live write) -> violation.
	if s.m.foreignWrite(s, table, k) {
		if s.inTxn {
			s.conflictAbort()
		}
		return 0, ClsConflict
	}
	if s.inTxn {
		if e := s.ov.get(table, k); e != nil {
			if !e.del {
				return 0, ClsUnique
			}
			// Own uncommitted delete: the key is free again for this txn.
			s.ov.put(table, k, &ovEntry{v: v, bal: bal})
			return 1, ClsOK
		}
	}
	if n := s.m.newest(table, k); n != nil && !n.del {
		return 0, ClsUnique
	}
	if s.inTxn {
		s.ov.put(table, k, &ovEntry{v: v, bal: bal})
	} else {
		s.m.clock++
		mt := s.m.tables[table]
		mt.vers[k] = append(mt.vers[k], ver{ts: s.m.clock, v: v, bal: bal})
	}
	return 1, ClsOK
}

// UpdateBal models UPDATE table SET bal = bal + delta WHERE k = ?.
func (s *MSession) UpdateBal(table string, k, delta int64) (int64, string) {
	return s.pointWrite(table, k, func(e *ovEntry) { e.bal += delta })
}

// UpdateV models UPDATE table SET v = ? WHERE k = ?.
func (s *MSession) UpdateV(table string, k int64, v string) (int64, string) {
	return s.pointWrite(table, k, func(e *ovEntry) { e.v = v })
}

// Delete models DELETE FROM table WHERE k = ?.
func (s *MSession) Delete(table string, k int64) (int64, string) {
	return s.pointWrite(table, k, func(e *ovEntry) { e.del = true })
}

func (s *MSession) pointWrite(table string, k int64, mut func(*ovEntry)) (int64, string) {
	if s.aborted {
		return 0, ClsAborted
	}
	s.pin()
	v, bal, ok := s.read(table, k)
	if !ok {
		return 0, ClsOK // no visible row: zero rows affected, no conflict
	}
	if s.writeConflicts(table, k) {
		if s.inTxn {
			s.conflictAbort()
		}
		return 0, ClsConflict
	}
	e := &ovEntry{v: v, bal: bal}
	mut(e)
	if s.inTxn {
		s.ov.put(table, k, e)
		return 1, ClsOK
	}
	// Autocommit write: immediately committed.
	s.m.clock++
	mt := s.m.tables[table]
	mt.vers[k] = append(mt.vers[k], ver{ts: s.m.clock, del: e.del, v: e.v, bal: e.bal})
	return 1, ClsOK
}

// RangeUpdateBal models UPDATE table SET bal = bal + delta
// WHERE k >= lo AND k < hi: all visible matches mutate, and a conflict
// on any of them aborts the whole statement (and transaction).
func (s *MSession) RangeUpdateBal(table string, lo, hi, delta int64) (int64, string) {
	if s.aborted {
		return 0, ClsAborted
	}
	s.pin()
	var matched []int64
	for _, k := range s.m.keysFor(s, table) {
		if k >= lo && k < hi {
			if _, _, ok := s.read(table, k); ok {
				matched = append(matched, k)
			}
		}
	}
	for _, k := range matched {
		if s.writeConflicts(table, k) {
			if s.inTxn {
				s.conflictAbort()
			}
			return 0, ClsConflict
		}
	}
	for _, k := range matched {
		v, bal, _ := s.read(table, k)
		e := &ovEntry{v: v, bal: bal + delta}
		if s.inTxn {
			s.ov.put(table, k, e)
		}
	}
	if !s.inTxn && len(matched) > 0 {
		s.m.clock++
		mt := s.m.tables[table]
		for _, k := range matched {
			v := s.m.newest(table, k)
			mt.vers[k] = append(mt.vers[k], ver{ts: s.m.clock, v: v.v, bal: v.bal + delta})
		}
	}
	return int64(len(matched)), ClsOK
}

// --- queries ---

// SelectPoint models SELECT v, bal FROM table WHERE k = ?.
func (s *MSession) SelectPoint(table string, k int64) ([][2]interface{}, string) {
	if s.aborted {
		return nil, ClsAborted
	}
	s.pin()
	if v, bal, ok := s.read(table, k); ok {
		return [][2]interface{}{{v, bal}}, ClsOK
	}
	return nil, ClsOK
}

// SelectRange models SELECT k, bal FROM table WHERE k >= lo AND k < hi
// ORDER BY k.
func (s *MSession) SelectRange(table string, lo, hi int64) ([][2]int64, string) {
	if s.aborted {
		return nil, ClsAborted
	}
	s.pin()
	var out [][2]int64
	for _, k := range s.m.keysFor(s, table) {
		if k >= lo && k < hi {
			if _, bal, ok := s.read(table, k); ok {
				out = append(out, [2]int64{k, bal})
			}
		}
	}
	return out, ClsOK
}

// SelectAgg models SELECT COUNT(*), SUM(bal) FROM table. The second
// return is (sum, sumIsNull): SQL SUM over zero rows is NULL.
func (s *MSession) SelectAgg(table string) (count int64, sum int64, sumNull bool, cls string) {
	if s.aborted {
		return 0, 0, false, ClsAborted
	}
	s.pin()
	for _, k := range s.m.keysFor(s, table) {
		if _, bal, ok := s.read(table, k); ok {
			count++
			sum += bal
		}
	}
	return count, sum, count == 0, ClsOK
}

// CommittedState returns the committed rows of a table as sorted
// [k, v, bal] triples — the ground truth an autocommit reader must see.
func (m *Model) CommittedState(table string) [][3]interface{} {
	var out [][3]interface{}
	for _, k := range m.keysFor(nil, table) {
		if v := m.newest(table, k); v != nil && !v.del {
			out = append(out, [3]interface{}{k, v.v, v.bal})
		}
	}
	return out
}
