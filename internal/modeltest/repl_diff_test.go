package modeltest

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/repl"
	"repro/internal/wal"
)

// Replica-extended differential runs: the same three-session workload
// against the same model, plus a live follower fed from the primary's
// WAL. After every commit the model acknowledges, the follower catches
// up and its full committed state is held to the model's ground truth —
// a commit is never visible on the replica half-applied, and never
// missing once its LSN is applied.

// syncFollower pulls the follower to the primary's durable horizon,
// re-bootstrapping if a checkpoint truncated the history behind it.
func (h *harness) syncFollower() {
	if _, err := h.follower.CatchUp(h.db); err != nil {
		if !errors.Is(err, wal.ErrTruncatedHistory) {
			h.failf("replica catch-up: %v", err)
		}
		f, err := repl.Bootstrap(h.db)
		if err != nil {
			h.failf("replica re-bootstrap: %v", err)
		}
		h.follower = f
	}
}

// TestDifferentialReplicaSeeds is the replication parity acceptance
// run: three fixed seeds, at least 1000 transactions each, with the
// follower checked against the model after every single commit.
func TestDifferentialReplicaSeeds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSeedReplicated(t, seed, 1000, 0, true)
		})
	}
}

// TestDifferentialReplicaAlterChurn repeats the parity run under
// online-ALTER churn: evolution cycles (and their background backfills)
// stream through the same WAL, and the replica must keep matching the
// model after every commit while schemas change mid-stream.
func TestDifferentialReplicaAlterChurn(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSeedReplicated(t, seed, 500, 400, true)
		})
	}
}
