package modeltest

import (
	"fmt"
	"math/rand"
)

// OpKind enumerates the workload's statement shapes.
type OpKind int

// Statement shapes emitted by the generator.
const (
	OpBegin OpKind = iota
	OpCommit
	OpRollback
	OpSavepoint
	OpRollbackTo
	OpInsert
	OpUpdateBal
	OpUpdateV
	OpDelete
	OpRangeUpdate
	OpSelectPoint
	OpSelectRange
	OpSelectAgg
)

// Op is one generated statement.
type Op struct {
	Kind   OpKind
	Table  string
	K      int64  // point target / insert key
	Delta  int64  // bal increment
	Lo, Hi int64  // range bounds
	Str    string // VARCHAR payload
	Name   string // savepoint name
}

// String renders the op roughly as the SQL the driver issues.
func (o Op) String() string {
	switch o.Kind {
	case OpBegin:
		return "BEGIN"
	case OpCommit:
		return "COMMIT"
	case OpRollback:
		return "ROLLBACK"
	case OpSavepoint:
		return "SAVEPOINT " + o.Name
	case OpRollbackTo:
		return "ROLLBACK TO " + o.Name
	case OpInsert:
		return fmt.Sprintf("INSERT INTO %s VALUES (%d, %q, %d)", o.Table, o.K, o.Str, o.Delta)
	case OpUpdateBal:
		return fmt.Sprintf("UPDATE %s SET bal = bal + %d WHERE k = %d", o.Table, o.Delta, o.K)
	case OpUpdateV:
		return fmt.Sprintf("UPDATE %s SET v = %q WHERE k = %d", o.Table, o.Str, o.K)
	case OpDelete:
		return fmt.Sprintf("DELETE FROM %s WHERE k = %d", o.Table, o.K)
	case OpRangeUpdate:
		return fmt.Sprintf("UPDATE %s SET bal = bal + %d WHERE k >= %d AND k < %d", o.Table, o.Delta, o.Lo, o.Hi)
	case OpSelectPoint:
		return fmt.Sprintf("SELECT v, bal FROM %s WHERE k = %d", o.Table, o.K)
	case OpSelectRange:
		return fmt.Sprintf("SELECT k, bal FROM %s WHERE k >= %d AND k < %d ORDER BY k", o.Table, o.Lo, o.Hi)
	case OpSelectAgg:
		return fmt.Sprintf("SELECT COUNT(*), SUM(bal) FROM %s", o.Table)
	}
	return "?"
}

// Workload layout: each table is pre-seeded with keys [0, SeedRows).
// The stable prefix [0, StableKeys) is never deleted (inserts aimed
// there provoke unique violations and conflict classification); the
// volatile remainder takes deletes. Fresh inserts draw monotonically
// increasing keys from FreshBase up — never reused, so a fresh insert
// can only collide with concurrent work, not with history.
const (
	SeedRows   = 100
	StableKeys = 50
	FreshBase  = 10_000
)

// Generator produces a deterministic multi-tenant transaction
// workload from a seed. Ops are state-aware — the generator inspects
// the model session (in transaction? aborted?) to keep the mix
// productive — but every branch is taken with some probability, so
// error paths (BEGIN inside a txn, COMMIT outside, unknown savepoints,
// statements on an aborted txn) are exercised too.
type Generator struct {
	rng     *rand.Rand
	nextKey int64
}

// NewGenerator returns a generator for the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), nextKey: FreshBase}
}

func (g *Generator) table() string {
	if g.rng.Intn(2) == 0 {
		return "acct1"
	}
	return "acct2"
}

func (g *Generator) spName() string {
	return fmt.Sprintf("sp%d", g.rng.Intn(3))
}

// hotKey picks a pre-seeded key: mostly a narrow hot range to force
// write-write conflicts between sessions.
func (g *Generator) hotKey() int64 {
	if g.rng.Intn(100) < 60 {
		return int64(g.rng.Intn(8)) // hot spot
	}
	return int64(g.rng.Intn(SeedRows))
}

// Next produces the next op for a session, using its model-visible
// state to weight the choices.
func (g *Generator) Next(s *MSession) Op {
	r := g.rng.Intn(100)
	if s.Aborted() {
		// The txn owes a ROLLBACK; mostly pay it, sometimes poke the
		// aborted state with other statements to check error parity.
		switch {
		case r < 55:
			return Op{Kind: OpRollback}
		case r < 70:
			return Op{Kind: OpCommit}
		default:
			return g.stmt()
		}
	}
	if !s.InTxn() {
		switch {
		case r < 42:
			return Op{Kind: OpBegin}
		case r < 45:
			return Op{Kind: OpCommit} // error parity: no txn open
		case r < 47:
			return Op{Kind: OpSavepoint, Name: g.spName()}
		default:
			return g.stmt() // autocommit statement
		}
	}
	// Inside a transaction.
	switch {
	case r < 16:
		return Op{Kind: OpCommit}
	case r < 21:
		return Op{Kind: OpRollback}
	case r < 27:
		return Op{Kind: OpSavepoint, Name: g.spName()}
	case r < 33:
		return Op{Kind: OpRollbackTo, Name: g.spName()}
	default:
		return g.stmt()
	}
}

// stmt picks a data statement (valid in or out of a transaction).
func (g *Generator) stmt() Op {
	tab := g.table()
	r := g.rng.Intn(100)
	switch {
	case r < 26: // point balance update on a hot key
		return Op{Kind: OpUpdateBal, Table: tab, K: g.hotKey(), Delta: int64(g.rng.Intn(19) - 9)}
	case r < 36:
		return Op{Kind: OpUpdateV, Table: tab, K: g.hotKey(),
			Str: fmt.Sprintf("w-%06d", g.rng.Intn(1_000_000))}
	case r < 44: // delete in the volatile range only
		return Op{Kind: OpDelete, Table: tab, K: int64(StableKeys + g.rng.Intn(SeedRows-StableKeys))}
	case r < 54:
		g.nextKey++
		return Op{Kind: OpInsert, Table: tab, K: g.nextKey,
			Str: fmt.Sprintf("n-%06d", g.nextKey), Delta: int64(g.rng.Intn(200))}
	case r < 58: // insert aimed at a stable committed key: violation/conflict
		return Op{Kind: OpInsert, Table: tab, K: int64(g.rng.Intn(StableKeys)),
			Str: "dup", Delta: 1}
	case r < 64:
		lo := int64(g.rng.Intn(SeedRows))
		return Op{Kind: OpRangeUpdate, Table: tab, Lo: lo, Hi: lo + int64(1+g.rng.Intn(6)),
			Delta: int64(g.rng.Intn(9) - 4)}
	case r < 80:
		return Op{Kind: OpSelectPoint, Table: tab, K: g.hotKey()}
	case r < 92:
		lo := int64(g.rng.Intn(SeedRows + 20))
		return Op{Kind: OpSelectRange, Table: tab, Lo: lo, Hi: lo + int64(1+g.rng.Intn(30))}
	default:
		return Op{Kind: OpSelectAgg, Table: tab}
	}
}
