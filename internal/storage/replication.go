package storage

import "hash/crc32"

// This file is the storage surface replication needs: exact-ID page
// allocation (replaying a primary's KPageAlloc on a follower whose
// allocator never ran), a whole-disk snapshot for follower bootstrap,
// a pool-coherent pageLSN read for the streaming applier's replay
// guard, and live heap-page adoption.

// PageImage is one page of a disk snapshot: contents plus the
// out-of-band metadata (category, last stamped LSN) the page carries.
type PageImage struct {
	ID   PageID
	Cat  Category
	LSN  LSN
	Data []byte
}

// DiskImage is a point-in-time copy of a whole disk, sufficient to
// rebuild an identical one. The caller must quiesce writers (the engine
// holds its DDL fence exclusively and flushes first).
type DiskImage struct {
	PageSize int
	Next     uint64
	Pages    []PageImage
}

// Snapshot copies every allocated page and its metadata.
func (d *Disk) Snapshot() *DiskImage {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := &DiskImage{PageSize: d.pageSize, Next: d.next}
	for id, data := range d.pages {
		m := d.meta[id]
		img.Pages = append(img.Pages, PageImage{
			ID: id, Cat: d.cats[id], LSN: m.lsn,
			Data: append([]byte(nil), data...),
		})
	}
	return img
}

// RestoreDisk builds a disk from a snapshot (the follower bootstrap
// path). Checksums are recomputed from the copied contents.
func RestoreDisk(img *DiskImage) *Disk {
	d := NewDisk(img.PageSize)
	d.next = img.Next
	for _, p := range img.Pages {
		data := append([]byte(nil), p.Data...)
		d.pages[p.ID] = data
		d.cats[p.ID] = p.Cat
		d.meta[p.ID] = pageMeta{lsn: p.LSN, sum: crc32.Checksum(data, castagnoli)}
	}
	return d
}

// AllocAt reserves the page with exactly the given ID — the replay of a
// primary's KPageAlloc on a follower, whose allocator must end up
// assigning the same IDs the primary's did. Idempotent: an already
// allocated page is left untouched. The allocator cursor advances past
// id so organic allocations (which a replica never performs, but a
// promoted one would) cannot collide.
func (d *Disk) AllocAt(id PageID, cat Category) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrDiskCrashed
	}
	if uint64(id) > d.next {
		d.next = uint64(id)
	}
	if _, ok := d.pages[id]; ok {
		return nil
	}
	page := make([]byte, d.pageSize)
	d.pages[id] = page
	d.cats[id] = cat
	d.meta[id] = pageMeta{sum: crc32.Checksum(page, castagnoli)}
	return nil
}

// PageLSN returns the page's current LSN as the system sees it: the
// buffer pool's in-memory stamp when the page is cached (which may be
// ahead of disk for a dirty page), else the disk's durable stamp. The
// streaming applier's replay guard needs this view — recovery's
// disk-only read is correct only because recovery starts from a cold
// pool.
func (p *BufferPool) PageLSN(id PageID) LSN {
	s := p.shard(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		lsn := f.lsn
		s.mu.Unlock()
		return lsn
	}
	s.mu.Unlock()
	return p.disk.PageLSN(id)
}

// ReadSlot returns a copy of the live record bytes at (page, slot), or
// nil when the slot is dead or out of range — the streaming applier's
// pre-image read, taken immediately before it redoes an update or
// delete so the version chain can serve the old bytes to snapshots.
func ReadSlot(pool *BufferPool, page PageID, slot uint16) ([]byte, error) {
	buf, err := pool.Fetch(page, CatData)
	if err != nil {
		return nil, err
	}
	var out []byte
	if rec, gerr := Slotted(buf).Get(slot); gerr == nil {
		out = append([]byte(nil), rec...)
	}
	pool.Unpin(page, false)
	return out, nil
}

// AdoptPage appends an already-initialized page to the file — the live
// replay of a primary's KHeapNewPage, where the page was allocated and
// formatted through the redo path rather than through Insert.
// Idempotent: a page already in the list is left in place.
func (h *HeapFile) AdoptPage(id PageID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.pages {
		if p == id {
			return
		}
	}
	h.pages = append(h.pages, id)
	h.freeBytes = append(h.freeBytes, 0)
}
