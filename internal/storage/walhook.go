package storage

// This file defines the storage side of the write-ahead-logging
// contract. The wal package implements these interfaces; storage only
// ever talks to them, so there is no import cycle: wal imports storage,
// never the reverse.

// LSN is a log sequence number: the byte offset just past a log
// record's frame in the WAL stream. LSNs are strictly monotonic and
// survive log truncation (truncation only advances the stream's base).
// Zero means "no log record" — a page that has never been mutated under
// WAL, or a disk opened without one.
type LSN = uint64

// NoLSN is the zero LSN.
const NoLSN LSN = 0

// InfiniteLSN is larger than every real LSN; WALGate.OldestActiveLSN
// returns it when no statement is active.
const InfiniteLSN LSN = ^LSN(0)

// WALGate is the buffer pool's view of the write-ahead log. It enforces
// the two rules that make redo-only recovery sound:
//
//   - WAL-before-data: a dirty page may reach disk only after every log
//     record it reflects is durable (SyncTo forces the log if needed);
//   - no-steal: a page whose last mutation belongs to a still-active
//     statement may not reach disk at all, because an uncommitted
//     statement's effects on disk could not be undone by redo.
type WALGate interface {
	// DurableLSN returns the LSN up to which the log is durable.
	DurableLSN() LSN
	// SyncTo forces the log durable through at least lsn.
	SyncTo(lsn LSN) error
	// OldestActiveLSN returns the begin LSN of the oldest statement
	// still in flight, or InfiniteLSN when none is. Any page whose
	// pageLSN is at or past this point may reflect uncommitted work.
	OldestActiveLSN() LSN
}

// HeapLogger receives physiological redo records for heap-file page
// mutations. A statement scope (wal.Scope) implements it; each call
// appends one record and stamps the page's in-memory pageLSN. Methods
// are called with the mutated page still resident in the buffer pool.
type HeapLogger interface {
	// HeapNewPage records that the file grew by a freshly allocated,
	// slotted-initialized page. Doubles as the page's init record.
	HeapNewPage(page PageID) error
	// HeapInsert records an insert that landed in slot on page.
	HeapInsert(page PageID, slot uint16, rec []byte) error
	// HeapInsertAt records a restore of rec into a tombstoned slot.
	HeapInsertAt(page PageID, slot uint16, rec []byte) error
	// HeapDelete records a tombstoning of slot on page.
	HeapDelete(page PageID, slot uint16) error
	// HeapUpdate records an in-place rewrite of slot on page.
	HeapUpdate(page PageID, slot uint16, rec []byte) error
}
