package storage

import (
	"errors"
	"fmt"
	"sync"
)

// RID addresses a record: page plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// InsertMode selects the heap's placement policy. The paper attributes
// the Table 2 insert anomaly at schema variability 1.0 to DB2 switching
// between exactly these two methods.
type InsertMode uint8

const (
	// InsertBestFit finds the first page with enough free space,
	// producing a compactly stored relation.
	InsertBestFit InsertMode = iota
	// InsertAppend always appends to the last page, producing a
	// sparsely stored relation but touching fewer pages on insert.
	InsertAppend
)

// HeapFile stores a table's rows across slotted pages fetched through
// the buffer pool.
type HeapFile struct {
	mu    sync.Mutex
	pool  *BufferPool
	pages []PageID
	mode  InsertMode
	// freeBytes caches per-page free space for best-fit placement so
	// insert doesn't have to touch every page.
	freeBytes []int
	rows      int64

	// logger, when set, receives a redo record for every page mutation,
	// applied before the page is unpinned so the WAL stamp lands while
	// the frame cannot be evicted. A failed log call physically reverts
	// the mutation, keeping page state and log in agreement.
	logger HeapLogger

	// slotPin, when set, vetoes tombstone-slot reuse: Insert will not
	// place a fresh record into a dead slot the callback reports pinned.
	// The MVCC layer pins any RID with a live version chain — reusing it
	// would graft an unrelated row onto the chain.
	slotPin func(RID) bool
}

// NewHeapFile creates an empty heap file.
func NewHeapFile(pool *BufferPool, mode InsertMode) *HeapFile {
	return &HeapFile{pool: pool, mode: mode}
}

// RestoreHeapFile rebuilds a heap file over an existing page list (the
// recovery path). Call RecomputeMeta afterwards to rebuild the row
// count and free-space cache from the pages themselves.
func RestoreHeapFile(pool *BufferPool, mode InsertMode, pages []PageID) *HeapFile {
	return &HeapFile{
		pool:      pool,
		mode:      mode,
		pages:     append([]PageID(nil), pages...),
		freeBytes: make([]int, len(pages)),
	}
}

// SetLogger installs (or, with nil, removes) the WAL logger for this
// file. The engine swaps it per statement under the table's write lock.
func (h *HeapFile) SetLogger(lg HeapLogger) {
	h.mu.Lock()
	h.logger = lg
	h.mu.Unlock()
}

// log returns the current logger. Callers not already holding h.mu use
// this; Insert reads h.logger directly under its own lock.
// SetSlotPin installs (or clears, with nil) the tombstone-reuse veto.
func (h *HeapFile) SetSlotPin(pin func(RID) bool) {
	h.mu.Lock()
	h.slotPin = pin
	h.mu.Unlock()
}

func (h *HeapFile) log() HeapLogger {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.logger
}

// Pages returns a copy of the file's page list in file order.
func (h *HeapFile) Pages() []PageID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PageID(nil), h.pages...)
}

// Release detaches and returns the file's pages without freeing them —
// the WAL drop path, where physical frees must wait until the drop's
// commit record is durable.
func (h *HeapFile) Release() []PageID {
	h.mu.Lock()
	pages := h.pages
	h.pages, h.freeBytes, h.rows = nil, nil, 0
	h.mu.Unlock()
	return pages
}

// RecomputeMeta rebuilds the row count and free-space cache by scanning
// every page. Recovery calls it after replay, since those are derived
// values the log deliberately does not carry.
func (h *HeapFile) RecomputeMeta() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rows = 0
	for i, id := range h.pages {
		buf, err := h.pool.Fetch(id, CatData)
		if err != nil {
			return err
		}
		sp := Slotted(buf)
		h.freeBytes[i] = sp.ReclaimableSpace()
		n := int64(0)
		sp.LiveRecords(func(uint16, []byte) bool { n++; return true })
		h.rows += n
		h.pool.Unpin(id, false)
	}
	return nil
}

// NumPages returns the number of pages in the file.
func (h *HeapFile) NumPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pages)
}

// NumRows returns the live record count.
func (h *HeapFile) NumRows() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rows
}

// Insert stores rec and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	need := len(rec) + slotSize
	if need > h.pool.disk.PageSize()-pageHeader {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	try := func(i int) (RID, bool, error) {
		id := h.pages[i]
		buf, err := h.pool.Fetch(id, CatData)
		if err != nil {
			return RID{}, false, err
		}
		var avoid func(uint16) bool
		if h.slotPin != nil {
			avoid = func(slot uint16) bool { return h.slotPin(RID{Page: id, Slot: slot}) }
		}
		sp := Slotted(buf)
		slot, err := sp.InsertAvoiding(rec, avoid)
		if errors.Is(err, ErrPageFull) {
			h.freeBytes[i] = sp.ReclaimableSpace()
			h.pool.Unpin(id, false)
			return RID{}, false, nil
		}
		if err != nil {
			h.pool.Unpin(id, false)
			return RID{}, false, err
		}
		if h.logger != nil {
			if lerr := h.logger.HeapInsert(id, slot, rec); lerr != nil {
				_ = sp.Delete(slot)
				h.freeBytes[i] = sp.ReclaimableSpace()
				h.pool.Unpin(id, true)
				return RID{}, false, lerr
			}
		}
		h.freeBytes[i] = sp.ReclaimableSpace()
		h.pool.Unpin(id, true)
		h.rows++
		return RID{Page: id, Slot: slot}, true, nil
	}

	switch h.mode {
	case InsertBestFit:
		for i := range h.pages {
			if h.freeBytes[i] < need {
				continue
			}
			rid, ok, err := try(i)
			if err != nil {
				return RID{}, err
			}
			if ok {
				return rid, nil
			}
		}
	case InsertAppend:
		if n := len(h.pages); n > 0 && h.freeBytes[n-1] >= need {
			rid, ok, err := try(n - 1)
			if err != nil {
				return RID{}, err
			}
			if ok {
				return rid, nil
			}
		}
	}

	// Grow the file.
	id, buf, err := h.pool.NewPage(CatData)
	if err != nil {
		return RID{}, err
	}
	sp := InitSlotted(buf)
	if h.logger != nil {
		if lerr := h.logger.HeapNewPage(id); lerr != nil {
			// The unfiled page is left for recovery's orphan sweep; the
			// log only fails when the system is crashing anyway.
			h.pool.Unpin(id, true)
			return RID{}, lerr
		}
	}
	slot, err := sp.Insert(rec)
	if err != nil {
		h.pool.Unpin(id, true)
		return RID{}, err
	}
	if h.logger != nil {
		if lerr := h.logger.HeapInsert(id, slot, rec); lerr != nil {
			_ = sp.Delete(slot)
			h.pool.Unpin(id, true)
			return RID{}, lerr
		}
	}
	h.pages = append(h.pages, id)
	h.freeBytes = append(h.freeBytes, sp.ReclaimableSpace())
	h.pool.Unpin(id, true)
	h.rows++
	return RID{Page: id, Slot: slot}, nil
}

// Get copies the record at rid into a fresh slice.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	buf, err := h.pool.Fetch(rid.Page, CatData)
	if err != nil {
		return nil, err
	}
	rec, err := Slotted(buf).Get(rid.Slot)
	var out []byte
	if err == nil {
		out = append(out, rec...)
	}
	h.pool.Unpin(rid.Page, false)
	return out, err
}

// Update replaces the record at rid. If it no longer fits on its page
// the record is deleted and re-inserted; the (possibly new) RID is
// returned and the caller must fix any index entries.
func (h *HeapFile) Update(rid RID, rec []byte) (RID, error) {
	buf, err := h.pool.Fetch(rid.Page, CatData)
	if err != nil {
		return RID{}, err
	}
	sp := Slotted(buf)
	lg := h.log()
	var old []byte
	if lg != nil {
		// Keep the pre-image so a failed log call can physically revert.
		if o, gerr := sp.Get(rid.Slot); gerr == nil {
			old = append([]byte(nil), o...)
		}
	}
	uerr := sp.Update(rid.Slot, rec)
	if uerr == nil {
		if lg != nil {
			if lerr := lg.HeapUpdate(rid.Page, rid.Slot, rec); lerr != nil {
				if old != nil {
					_ = sp.Update(rid.Slot, old)
				}
				h.pool.Unpin(rid.Page, true)
				return RID{}, lerr
			}
		}
		h.noteFree(rid.Page, sp.ReclaimableSpace())
		h.pool.Unpin(rid.Page, true)
		return rid, nil
	}
	if !errors.Is(uerr, ErrPageFull) {
		h.pool.Unpin(rid.Page, false)
		return RID{}, uerr
	}
	// Relocate: insert the copy elsewhere first, then delete here on the
	// still-pinned page, so a failed insert leaves the record untouched
	// and the whole update is all-or-nothing. Insert cannot pick this
	// page: Update already proved the replacement does not fit even
	// after reclaiming the old record's bytes.
	newRID, err := h.Insert(rec)
	if err != nil {
		h.pool.Unpin(rid.Page, false)
		return RID{}, err
	}
	if err := sp.Delete(rid.Slot); err != nil {
		// Unreachable for a live slot; undo the insert to stay atomic.
		h.pool.Unpin(rid.Page, false)
		if derr := h.Delete(newRID); derr != nil {
			err = errors.Join(err, derr)
		}
		return RID{}, err
	}
	if lg != nil {
		if lerr := lg.HeapDelete(rid.Page, rid.Slot); lerr != nil {
			if old != nil {
				_ = sp.InsertAt(rid.Slot, old)
			}
			h.pool.Unpin(rid.Page, true)
			_ = h.Delete(newRID) // best effort; the log is crashing anyway
			return RID{}, lerr
		}
	}
	h.noteFree(rid.Page, sp.ReclaimableSpace())
	h.pool.Unpin(rid.Page, true)
	h.mu.Lock()
	h.rows-- // the relocating Insert incremented; net row count is unchanged
	h.mu.Unlock()
	return newRID, nil
}

// UpdateInPlace replaces the record at rid only if the replacement fits
// on its page; it returns ErrPageFull instead of relocating. The schema
// backfill worker uses it: relocation would hand the row a new RID,
// invalidating RIDs a concurrent statement gathered under its shared
// latch, so rows that no longer fit are left for a foreground DML write
// (which owns its latches end to end) to migrate.
func (h *HeapFile) UpdateInPlace(rid RID, rec []byte) error {
	buf, err := h.pool.Fetch(rid.Page, CatData)
	if err != nil {
		return err
	}
	sp := Slotted(buf)
	lg := h.log()
	var old []byte
	if lg != nil {
		// Keep the pre-image so a failed log call can physically revert.
		if o, gerr := sp.Get(rid.Slot); gerr == nil {
			old = append([]byte(nil), o...)
		}
	}
	if uerr := sp.Update(rid.Slot, rec); uerr != nil {
		h.pool.Unpin(rid.Page, false)
		return uerr
	}
	if lg != nil {
		if lerr := lg.HeapUpdate(rid.Page, rid.Slot, rec); lerr != nil {
			if old != nil {
				_ = sp.Update(rid.Slot, old)
			}
			h.pool.Unpin(rid.Page, true)
			return lerr
		}
	}
	h.noteFree(rid.Page, sp.ReclaimableSpace())
	h.pool.Unpin(rid.Page, true)
	return nil
}

// Reinsert restores rec at exactly rid, undoing a Delete. Statement
// rollback replays undo actions in LIFO order, so the slot is free and
// the page has the space the record occupied before.
func (h *HeapFile) Reinsert(rid RID, rec []byte) error {
	buf, err := h.pool.Fetch(rid.Page, CatData)
	if err != nil {
		return err
	}
	sp := Slotted(buf)
	if err := sp.InsertAt(rid.Slot, rec); err != nil {
		h.pool.Unpin(rid.Page, false)
		return err
	}
	if lg := h.log(); lg != nil {
		if lerr := lg.HeapInsertAt(rid.Page, rid.Slot, rec); lerr != nil {
			_ = sp.Delete(rid.Slot)
			h.pool.Unpin(rid.Page, true)
			return lerr
		}
	}
	h.noteFree(rid.Page, sp.ReclaimableSpace())
	h.pool.Unpin(rid.Page, true)
	h.mu.Lock()
	h.rows++
	h.mu.Unlock()
	return nil
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	buf, err := h.pool.Fetch(rid.Page, CatData)
	if err != nil {
		return err
	}
	sp := Slotted(buf)
	lg := h.log()
	var old []byte
	if lg != nil {
		if o, gerr := sp.Get(rid.Slot); gerr == nil {
			old = append([]byte(nil), o...)
		}
	}
	if err := sp.Delete(rid.Slot); err != nil {
		h.pool.Unpin(rid.Page, false)
		return err
	}
	if lg != nil {
		if lerr := lg.HeapDelete(rid.Page, rid.Slot); lerr != nil {
			if old != nil {
				_ = sp.InsertAt(rid.Slot, old)
			}
			h.pool.Unpin(rid.Page, true)
			return lerr
		}
	}
	h.noteFree(rid.Page, sp.ReclaimableSpace())
	h.pool.Unpin(rid.Page, true)
	h.mu.Lock()
	h.rows--
	h.mu.Unlock()
	return nil
}

func (h *HeapFile) noteFree(id PageID, free int) {
	h.mu.Lock()
	for i, p := range h.pages {
		if p == id {
			h.freeBytes[i] = free
			break
		}
	}
	h.mu.Unlock()
}

// Scan calls fn for every live record in file order. Returning false
// stops the scan. The rec slice is only valid during the callback.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) (bool, error)) error {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	for _, id := range pages {
		buf, err := h.pool.Fetch(id, CatData)
		if err != nil {
			return err
		}
		var cbErr error
		stop := false
		Slotted(buf).LiveRecords(func(slot uint16, rec []byte) bool {
			cont, err := fn(RID{Page: id, Slot: slot}, rec)
			if err != nil {
				cbErr = err
				return false
			}
			if !cont {
				stop = true
				return false
			}
			return true
		})
		h.pool.Unpin(id, false)
		if cbErr != nil {
			return cbErr
		}
		if stop {
			return nil
		}
	}
	return nil
}

// View calls fn with the record bytes at rid while the page stays
// pinned, avoiding Get's copy. The slice is only valid during the
// callback and must not be written to or retained.
func (h *HeapFile) View(rid RID, fn func(rec []byte) error) error {
	buf, err := h.pool.Fetch(rid.Page, CatData)
	if err != nil {
		return err
	}
	rec, err := Slotted(buf).Get(rid.Slot)
	if err == nil {
		err = fn(rec)
	}
	h.pool.Unpin(rid.Page, false)
	return err
}

// Scanner returns a pull-based iterator over the file's live records.
// It snapshots the page list at creation; each page is visited exactly
// once through the buffer pool and its live records are copied into a
// single reused arena, so no page stays pinned between calls and no
// per-record allocation happens after the first page.
func (h *HeapFile) Scanner() *HeapScanner {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	return &HeapScanner{h: h, pages: pages}
}

// HeapScanner iterates a heap file's records in file order.
//
// Aliasing contract: the record slices returned by Next and NextPage
// point into one arena that holds the current page's records and is
// overwritten when the scanner advances to the next page. Callers must
// finish with (or copy) every record of a page before pulling the next
// one; the executor decodes records immediately, so it never copies.
// Use either Next or NextPage on a given scanner, not both.
type HeapScanner struct {
	h     *HeapFile
	pages []PageID
	pi    int
	rids  []RID
	recs  [][]byte
	arena []byte
	i     int
	skip  func(RID) bool
}

// SetSkip installs a visibility filter: records whose RID the callback
// claims are omitted from the scan. Snapshot reads use it to hide rows
// with version chains (the chain, not the page, decides what a
// transaction sees for those RIDs; the caller enumerates the chains
// separately). Must be called before the first Next/NextPage.
func (s *HeapScanner) SetSkip(skip func(RID) bool) { s.skip = skip }

// NextPage loads every live record of the next non-empty page in one
// buffer-pool visit. The returned slices are reused by the following
// NextPage call (see the aliasing contract above). ok=false at the end
// of the file.
func (s *HeapScanner) NextPage() ([]RID, [][]byte, bool, error) {
	for s.pi < len(s.pages) {
		id := s.pages[s.pi]
		s.pi++
		buf, err := s.h.pool.Fetch(id, CatData)
		if err != nil {
			return nil, nil, false, err
		}
		// A page's live records never exceed the page size, so after this
		// reserve the appends below cannot reallocate the arena and every
		// handed-out sub-slice stays valid for the whole page.
		if cap(s.arena) < len(buf) {
			s.arena = make([]byte, 0, len(buf))
		}
		s.arena = s.arena[:0]
		s.rids = s.rids[:0]
		s.recs = s.recs[:0]
		Slotted(buf).LiveRecords(func(slot uint16, rec []byte) bool {
			if s.skip != nil && s.skip(RID{Page: id, Slot: slot}) {
				return true
			}
			off := len(s.arena)
			s.arena = append(s.arena, rec...)
			s.rids = append(s.rids, RID{Page: id, Slot: slot})
			s.recs = append(s.recs, s.arena[off:len(s.arena):len(s.arena)])
			return true
		})
		s.h.pool.Unpin(id, false)
		if len(s.recs) > 0 {
			return s.rids, s.recs, true, nil
		}
	}
	return nil, nil, false, nil
}

// Next returns the next record, or ok=false at the end. The returned
// slice aliases the scanner's page arena and is valid until the scan
// advances past the current page (see the aliasing contract above).
func (s *HeapScanner) Next() (RID, []byte, bool, error) {
	for s.i >= len(s.recs) {
		_, _, ok, err := s.NextPage()
		if err != nil || !ok {
			return RID{}, nil, false, err
		}
		s.i = 0
	}
	rid, rec := s.rids[s.i], s.recs[s.i]
	s.i++
	return rid, rec, true, nil
}

// Drop releases every page in the file.
func (h *HeapFile) Drop() error {
	h.mu.Lock()
	pages := h.pages
	h.pages = nil
	h.freeBytes = nil
	h.rows = 0
	h.mu.Unlock()
	for _, id := range pages {
		if err := h.pool.FreePage(id); err != nil {
			return err
		}
	}
	return nil
}
